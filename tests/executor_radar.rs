//! The radar pipeline through the real threaded executor: FIR pulse
//! compression, per-channel FFT, beamform combine, and a threshold
//! detector, with the tracker stage kept to a single instance as the
//! mapper requires.

use pipemap::chain::{Mapping, ModuleAssignment};
use pipemap::exec::kernels::{fft_inplace, fir_filter, Complex};
use pipemap::exec::{plan_from_mapping, run_pipeline, Data, Stage, ThreadBudget};

const CHANNELS: usize = 8;
const SAMPLES: usize = 256;

/// One dwell: `CHANNELS` real-valued channels of `SAMPLES` samples, with
/// a sinusoid of a known per-dwell frequency buried in a ramp.
fn dwell(seq: usize) -> Vec<Vec<f64>> {
    let freq_bin = 10 + (seq % 4) * 5;
    (0..CHANNELS)
        .map(|ch| {
            (0..SAMPLES)
                .map(|t| {
                    let phase =
                        2.0 * std::f64::consts::PI * freq_bin as f64 * t as f64 / SAMPLES as f64;
                    phase.sin() * (1.0 + 0.1 * ch as f64) + 0.001 * t as f64
                })
                .collect()
        })
        .collect()
}

fn stages() -> Vec<Stage> {
    let fir = Stage::new("pulse-fir", |d: (usize, Vec<Vec<f64>>), threads| {
        let (seq, channels) = d;
        // A light smoothing filter: keeps the tone detectable.
        let filtered = fir_filter(&channels, &[0.5, 0.3, 0.2], threads);
        (seq, filtered)
    });
    let doppler = Stage::new("doppler-fft", |d: (usize, Vec<Vec<f64>>), threads| {
        let (seq, channels) = d;
        let spectra = pipemap::exec::kernels::map_units(&channels, threads, |ch| {
            let mut buf: Vec<Complex> = ch.iter().map(|&x| Complex::new(x, 0.0)).collect();
            fft_inplace(&mut buf);
            buf
        });
        (seq, spectra)
    });
    let beamform = Stage::new("beamform", |d: (usize, Vec<Vec<Complex>>), _| {
        let (seq, spectra) = d;
        // Sum across channels per bin.
        let mut combined = vec![0.0f64; SAMPLES];
        for s in &spectra {
            for (b, x) in s.iter().enumerate() {
                combined[b] += x.norm_sq().sqrt();
            }
        }
        (seq, combined)
    });
    let detect = Stage::new("detect-track", |d: (usize, Vec<f64>), _| {
        let (seq, combined) = d;
        // Peak bin in the first half-spectrum (ignore DC and mirror).
        let peak = combined[1..SAMPLES / 2]
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i + 1)
            .unwrap();
        (seq, peak)
    });
    vec![fir, doppler, beamform, detect]
}

#[test]
fn radar_pipeline_detects_the_planted_tone() {
    // Map the four stages as the paper's mapper structures them: the
    // three front stages replicated, the stateful tracker single.
    let mapping = Mapping::new(vec![
        ModuleAssignment::new(0, 0, 3, 2),
        ModuleAssignment::new(1, 1, 3, 4),
        ModuleAssignment::new(2, 2, 2, 2),
        ModuleAssignment::new(3, 3, 1, 2),
    ]);
    let plan = plan_from_mapping(
        &mapping,
        stages(),
        ThreadBudget {
            total_threads: 4,
            model_procs: 16,
        },
    );
    let dwells = 16;
    let inputs: Vec<Data> = (0..dwells)
        .map(|i| Box::new((i, dwell(i))) as Data)
        .collect();
    let (outputs, stats) = run_pipeline(&plan, inputs);
    assert_eq!(stats.datasets, dwells);

    for out in outputs {
        let (seq, peak) = *out.downcast::<(usize, usize)>().unwrap();
        let expected = 10 + (seq % 4) * 5;
        assert_eq!(
            peak, expected,
            "dwell {seq}: detected bin {peak}, planted {expected}"
        );
    }
}

#[test]
fn radar_pipeline_preserves_dwell_order_under_replication() {
    let mapping = Mapping::new(vec![
        ModuleAssignment::new(0, 2, 4, 1), // fused front end, replicated
        ModuleAssignment::new(3, 3, 1, 1),
    ]);
    // Fuse fir + doppler + beamform into one stage for the first module.
    let fused = Stage::new("front", |d: (usize, Vec<Vec<f64>>), threads| {
        let (seq, channels) = d;
        let filtered = fir_filter(&channels, &[0.5, 0.3, 0.2], threads);
        let spectra = pipemap::exec::kernels::map_units(&filtered, threads, |ch| {
            let mut buf: Vec<Complex> = ch.iter().map(|&x| Complex::new(x, 0.0)).collect();
            fft_inplace(&mut buf);
            buf
        });
        let mut combined = vec![0.0f64; SAMPLES];
        for s in &spectra {
            for (b, x) in s.iter().enumerate() {
                combined[b] += x.norm_sq().sqrt();
            }
        }
        (seq, combined)
    });
    let detect = stages().pop().unwrap();
    let plan = plan_from_mapping(
        &mapping,
        vec![fused, detect],
        ThreadBudget {
            total_threads: 2,
            model_procs: 8,
        },
    );
    let inputs: Vec<Data> = (0..24usize)
        .map(|i| Box::new((i, dwell(i))) as Data)
        .collect();
    let (outputs, _) = run_pipeline(&plan, inputs);
    let seqs: Vec<usize> = outputs
        .into_iter()
        .map(|o| o.downcast::<(usize, usize)>().unwrap().0)
        .collect();
    assert_eq!(seqs, (0..24).collect::<Vec<_>>());
}
