//! Oracle tests: on every instance small enough to enumerate, the DP
//! solvers must match brute force exactly, and the solvers' reported
//! throughput must match the independent evaluator. Property-based via
//! proptest.

use pipemap::chain::{validate, ChainBuilder, Edge, Problem, Task};
use pipemap::core::{
    brute_force_assignment, brute_force_mapping, dp_assignment, dp_mapping, SolveError,
};
use pipemap::model::{MemoryReq, PolyEcom, PolyUnary};
use proptest::prelude::*;

/// Strategy: a random chain of `k` tasks with polynomial costs, optional
/// memory requirements and replicability flags.
fn arb_problem(max_k: usize, max_p: usize) -> impl Strategy<Value = Problem> {
    let task = (
        0.0..1.0f64,
        0.2..8.0f64,
        0.0..0.2f64,
        0.0..30.0f64,
        any::<bool>(),
    );
    let edge = (0.0..0.5f64, 0.0..1.5f64, 0.0..1.5f64, 0.0..0.1f64);
    (
        prop::collection::vec(task, 1..=max_k),
        prop::collection::vec(edge, max_k.saturating_sub(1)),
        2..=max_p,
    )
        .prop_map(|(tasks, edges, p)| {
            let k = tasks.len();
            let mut builder = ChainBuilder::new();
            for (i, (c1, c2, c3, mem, replicable)) in tasks.into_iter().enumerate() {
                let mut t = Task::new(format!("t{i}"), PolyUnary::new(c1, c2, c3))
                    .with_memory(MemoryReq::new(0.0, mem));
                if !replicable {
                    t = t.not_replicable();
                }
                builder = builder.task(t);
                if i + 1 < k {
                    let (e1, e2, e3, e4) = edges[i];
                    builder = builder.edge(Edge::new(
                        PolyUnary::new(e1 * 0.5, e1, 0.0),
                        PolyEcom::new(e1, e2, e3, e4, e4),
                    ));
                }
            }
            Problem::new(builder.build(), p, 10.0)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dp_assignment_matches_brute_force(problem in arb_problem(3, 8)) {
        let brute = brute_force_assignment(&problem);
        let dp = dp_assignment(&problem);
        match (brute, dp) {
            (Ok((b, _)), Ok((d, _))) => {
                prop_assert!(
                    (b.throughput - d.throughput).abs() <= 1e-9 * b.throughput.max(1.0),
                    "brute {} vs dp {}", b.throughput, d.throughput
                );
                validate(&problem, &d.mapping).expect("dp mapping valid");
            }
            (Err(SolveError::Infeasible), Err(SolveError::Infeasible)) => {}
            (b, d) => prop_assert!(false, "disagree: {b:?} vs {d:?}"),
        }
    }

    #[test]
    fn dp_mapping_matches_brute_force(problem in arb_problem(4, 7)) {
        let brute = brute_force_mapping(&problem);
        let dp = dp_mapping(&problem);
        match (brute, dp) {
            (Ok(b), Ok(d)) => {
                prop_assert!(
                    (b.throughput - d.throughput).abs() <= 1e-9 * b.throughput.max(1.0),
                    "brute {} ({:?}) vs dp {} ({:?})",
                    b.throughput, b.mapping, d.throughput, d.mapping
                );
                validate(&problem, &d.mapping).expect("dp mapping valid");
            }
            (Err(SolveError::Infeasible), Err(SolveError::Infeasible)) => {}
            (b, d) => prop_assert!(false, "disagree: {b:?} vs {d:?}"),
        }
    }

    #[test]
    fn dp_mapping_never_worse_than_fixed_singleton_assignment(problem in arb_problem(3, 8)) {
        // Clustering and replication are extra freedom: the full mapper
        // must dominate the assignment-only mapper.
        if let (Ok(full), Ok((assign, _))) = (dp_mapping(&problem), dp_assignment(&problem)) {
            prop_assert!(
                full.throughput >= assign.throughput - 1e-9 * assign.throughput.max(1.0),
                "full {} < assignment {}", full.throughput, assign.throughput
            );
        }
    }

    #[test]
    fn reported_throughput_matches_evaluator(problem in arb_problem(4, 7)) {
        if let Ok(sol) = dp_mapping(&problem) {
            let independent = pipemap::chain::throughput(&problem.chain, &sol.mapping);
            prop_assert!(
                (sol.throughput - independent).abs() <= 1e-12 * independent.abs().max(1.0)
            );
        }
    }

    #[test]
    fn free_replication_dp_dominates_policy_dp(problem in arb_problem(3, 8)) {
        match (dp_mapping(&problem), pipemap::core::dp_mapping_free(&problem)) {
            (Ok(policy), Ok(free)) => {
                validate(&problem, &free.mapping).expect("free mapping valid");
                let ok = if policy.throughput.is_infinite() {
                    free.throughput.is_infinite()
                } else {
                    free.throughput >= policy.throughput * (1.0 - 1e-9)
                };
                prop_assert!(
                    ok,
                    "free {} < policy {}",
                    free.throughput,
                    policy.throughput
                );
            }
            (Err(SolveError::Infeasible), Err(SolveError::Infeasible)) => {}
            (a, b) => prop_assert!(false, "feasibility disagreement: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn free_replication_dp_matches_exhaustive_two_task_oracle(
        works in prop::collection::vec((0.0..1.0f64, 0.2..5.0f64), 2..=2),
        ecom_fixed in 0.0..0.8f64,
        p in 2..=7usize,
    ) {
        let chain = ChainBuilder::new()
            .task(Task::new("a", PolyUnary::new(works[0].0, works[0].1, 0.0)))
            .edge(Edge::new(
                PolyUnary::new(ecom_fixed * 0.5, 0.0, 0.0),
                PolyEcom::new(ecom_fixed, 0.5, 0.5, 0.0, 0.0),
            ))
            .task(Task::new("b", PolyUnary::new(works[1].0, works[1].1, 0.0)))
            .build();
        let problem = Problem::new(chain, p, 1e12);
        let free = pipemap::core::dp_mapping_free(&problem).unwrap();
        // Oracle: every clustering × instance size × replication degree.
        let mut best = 0.0f64;
        for i1 in 1..=p {
            for r1 in 1..=(p / i1) {
                for i2 in 1..=p {
                    for r2 in 1..=(p / i2) {
                        if i1 * r1 + i2 * r2 > p {
                            continue;
                        }
                        let m = pipemap::chain::Mapping::new(vec![
                            pipemap::chain::ModuleAssignment::new(0, 0, r1, i1),
                            pipemap::chain::ModuleAssignment::new(1, 1, r2, i2),
                        ]);
                        best = best.max(pipemap::chain::throughput(&problem.chain, &m));
                    }
                }
            }
        }
        for inst in 1..=p {
            for r in 1..=(p / inst) {
                let m = pipemap::chain::Mapping::new(vec![
                    pipemap::chain::ModuleAssignment::new(0, 1, r, inst),
                ]);
                best = best.max(pipemap::chain::throughput(&problem.chain, &m));
            }
        }
        prop_assert!(
            (free.throughput - best).abs() <= 1e-6 * best.max(1e-12),
            "free {} vs oracle {}",
            free.throughput,
            best
        );
    }
}
