//! Shape-fidelity tests against the paper's evaluation (§6): the
//! structural facts of Tables 1 and 2 must hold on our machine model.
//! (These use the greedy path so they stay fast in debug builds; the
//! release-mode `table1`/`table2` binaries additionally run the DP, which
//! reaches the same mappings — the paper's own "key result".)

use pipemap::apps::{fft_hist, radar, stereo, FftHistConfig, RadarConfig, StereoConfig};
use pipemap::chain::Mapping;
use pipemap::core::{cluster_heuristic, GreedyOptions};
use pipemap::machine::{is_feasible, synthesize_problem, MachineConfig};
use pipemap::profile::training::fit_problem;
use pipemap::profile::TrainingConfig;
use pipemap::sim::{simulate, SimConfig};

fn fitted_fft_hist(n256: bool, machine: &MachineConfig) -> pipemap::chain::Problem {
    let cfg = if n256 {
        FftHistConfig::n256()
    } else {
        FftHistConfig::n512()
    };
    let truth = synthesize_problem(&fft_hist(cfg), machine);
    fit_problem(&truth, &TrainingConfig::for_procs(truth.total_procs))
}

#[test]
fn table1_256_reproduces_paper_clustering_and_replication() {
    for machine in [
        MachineConfig::iwarp_message(),
        MachineConfig::iwarp_systolic(),
    ] {
        let problem = fitted_fft_hist(true, &machine);
        let sol = cluster_heuristic(&problem, GreedyOptions::adaptive()).unwrap();
        // Paper Table 1: module 1 = {colffts}, module 2 = {rowffts, hist}.
        assert_eq!(
            sol.mapping.clustering(),
            vec![(0, 0), (1, 2)],
            "clustering mismatch on {:?}",
            machine.mode
        );
        let m1 = &sol.mapping.modules[0];
        let m2 = &sol.mapping.modules[1];
        // Paper: (p1, r1) = (3, 8) and (p2, r2) = (4, 10) for message
        // passing; systolic differed only slightly (3,6)(4,11). Require
        // instance sizes exactly and heavy replication.
        assert_eq!(m1.procs, 3, "module 1 instance size");
        assert_eq!(m2.procs, 4, "module 2 instance size");
        assert!(
            (6..=9).contains(&m1.replicas),
            "module 1 replication {} outside the paper band",
            m1.replicas
        );
        assert!(
            (9..=11).contains(&m2.replicas),
            "module 2 replication {} outside the paper band",
            m2.replicas
        );
        // Throughput magnitude near the paper's 14.6–14.7/s.
        assert!(
            (11.0..=18.0).contains(&sol.throughput),
            "throughput {:.2} far from the paper's 14.6",
            sol.throughput
        );
    }
}

#[test]
fn table1_512_memory_floors_suppress_replication() {
    let machine = MachineConfig::iwarp_message();
    let problem = fitted_fft_hist(false, &machine);
    let sol = cluster_heuristic(&problem, GreedyOptions::adaptive()).unwrap();
    // Paper Table 1 512×512: replication drops to r ∈ {1..3} because the
    // memory floors are ~4× higher.
    for m in &sol.mapping.modules {
        assert!(
            m.replicas <= 3,
            "512x512 module replicated {} times; paper band is 1..3",
            m.replicas
        );
        assert!(m.procs >= 5, "instances must be wide: {}", m.procs);
    }
    // Throughput magnitude near the paper's ~3/s.
    assert!(
        (1.8..=4.5).contains(&sol.throughput),
        "throughput {:.2} far from the paper's 3.14",
        sol.throughput
    );
}

#[test]
fn table2_predicted_vs_measured_within_paper_band() {
    // The paper's Table 2 shows |predicted − measured| between 0 and
    // 12%. Check the 256/message flagship configuration.
    let machine = MachineConfig::iwarp_message();
    let truth = synthesize_problem(&fft_hist(FftHistConfig::n256()), &machine);
    let fitted = fit_problem(&truth, &TrainingConfig::for_procs(64));
    let sol = cluster_heuristic(&fitted, GreedyOptions::adaptive()).unwrap();
    let sim = simulate(
        &truth.chain,
        &sol.mapping,
        &SimConfig::with_datasets(400).with_noise(0.04, 99),
    );
    let diff = 100.0 * (sim.throughput - sol.throughput).abs() / sol.throughput;
    assert!(diff <= 12.0, "predicted vs measured differ by {diff:.1}%");
}

#[test]
fn table2_optimal_beats_data_parallel_by_paper_factors() {
    // Paper Table 2: optimal/data-parallel between ~2 and ~9.
    let configs: Vec<(pipemap::machine::AppWorkload, MachineConfig)> = vec![
        (
            fft_hist(FftHistConfig::n256()),
            MachineConfig::iwarp_message(),
        ),
        (
            fft_hist(FftHistConfig::n512()),
            MachineConfig::iwarp_message(),
        ),
        (radar(RadarConfig::paper()), MachineConfig::iwarp_systolic()),
        (
            stereo(StereoConfig::paper()),
            MachineConfig::iwarp_systolic(),
        ),
    ];
    for (app, machine) in configs {
        let truth = synthesize_problem(&app, &machine);
        let fitted = fit_problem(&truth, &TrainingConfig::for_procs(truth.total_procs));
        let sol = cluster_heuristic(&fitted, GreedyOptions::adaptive()).unwrap();
        let optimal = simulate(&truth.chain, &sol.mapping, &SimConfig::with_datasets(300));
        let dp = simulate(
            &truth.chain,
            &Mapping::data_parallel(&truth),
            &SimConfig::with_datasets(300),
        );
        let ratio = optimal.throughput / dp.throughput;
        assert!(
            (1.5..=12.0).contains(&ratio),
            "{}: optimal/data-parallel ratio {ratio:.2} outside the paper's band",
            app.name
        );
    }
}

#[test]
fn feasibility_differences_mirror_the_paper() {
    // The paper's 512/systolic row is the one where machine constraints
    // changed the mapping (13-processor instances are impossible — 13 is
    // prime and exceeds the 8-wide array). Verify the constraint engine
    // reproduces that exact phenomenon.
    let machine = MachineConfig::iwarp_systolic();
    let thirteen = Mapping::new(vec![
        pipemap::chain::ModuleAssignment::new(0, 0, 2, 12),
        pipemap::chain::ModuleAssignment::new(1, 2, 3, 13),
    ]);
    assert!(!is_feasible(&machine, &thirteen).is_feasible());
    let twelve = Mapping::new(vec![
        pipemap::chain::ModuleAssignment::new(0, 0, 2, 12),
        pipemap::chain::ModuleAssignment::new(1, 2, 3, 12),
    ]);
    assert!(is_feasible(&machine, &twelve).is_feasible());
}

#[test]
fn radar_tracker_caps_throughput() {
    let machine = MachineConfig::iwarp_systolic();
    let truth = synthesize_problem(&radar(RadarConfig::paper()), &machine);
    let fitted = fit_problem(&truth, &TrainingConfig::for_procs(64));
    let sol = cluster_heuristic(&fitted, GreedyOptions::adaptive()).unwrap();
    // The stateful tracker must be a single instance.
    let track_module = sol
        .mapping
        .modules
        .iter()
        .find(|m| m.contains(3))
        .expect("tracker mapped");
    assert_eq!(track_module.replicas, 1, "tracker cannot replicate");
    // And the throughput magnitude is in the paper's regime (81/s).
    assert!(
        (35.0..=110.0).contains(&sol.throughput),
        "radar throughput {:.1}",
        sol.throughput
    );
}

#[test]
fn execution_style_profiling_yields_a_near_optimal_mapping() {
    // The paper's strict methodology — eight whole-program training
    // executions — carries more model error than per-function sampling,
    // and on FFT-Hist the top two clusterings sit within a few percent
    // of each other, so the chosen *structure* may flip to the runner-up.
    // What must hold is quality: evaluated on the ground truth, the
    // mapping chosen from 8 executions loses little against the mapping
    // chosen from dense profiles. (This mirrors the paper's observation
    // that "it is certainly possible to develop a more accurate model
    // that uses a larger number of executions".)
    let machine = MachineConfig::iwarp_message();
    let truth = synthesize_problem(&fft_hist(FftHistConfig::n256()), &machine);

    let dense = fit_problem(&truth, &TrainingConfig::for_procs(64));
    let reference = cluster_heuristic(&dense, GreedyOptions::adaptive()).unwrap();

    let eight = pipemap::profile::fit_problem_from_executions(
        &truth,
        None,
        pipemap::profile::FitOptions::default(),
    );
    let sol = cluster_heuristic(&eight, GreedyOptions::adaptive()).unwrap();

    // Compare both mappings under the *ground truth* costs.
    let truth_thr = |m: &Mapping| pipemap::chain::throughput(&truth.chain, m);
    let ref_thr = truth_thr(&reference.mapping);
    let eight_thr = truth_thr(&sol.mapping);
    assert!(
        eight_thr >= 0.90 * ref_thr,
        "8-execution mapping reaches {eight_thr:.2}/s vs dense-profile {ref_thr:.2}/s"
    );
}
