//! End-to-end integration: the full methodology (synthesise → profile →
//! fit → map → constrain → simulate) on a small machine, plus the real
//! threaded executor driving actual kernels under a mapping the tool
//! produced.

use pipemap::exec::kernels::{fft_cols, fft_rows, histogram, Complex, Matrix};
use pipemap::exec::{run_pipeline, Data, PipelinePlan, Stage, StagePlan};
use pipemap::machine::workload::TaskWorkload;
use pipemap::machine::{AppWorkload, EdgeWorkload, MachineConfig};
use pipemap::model::MemoryReq;
use pipemap::tool::{auto_map, render_report, MapperOptions};

fn small_app() -> AppWorkload {
    let mut front = TaskWorkload::parallel("front", 6e6, 64);
    front.memory = MemoryReq::new(4e3, 0.9e6);
    let mut mid = TaskWorkload::parallel("mid", 3e6, 64);
    mid.seq_flops = 2e5;
    mid.memory = MemoryReq::new(4e3, 0.5e6);
    let mut back = TaskWorkload::parallel("back", 2e6, 64);
    back.memory = MemoryReq::new(4e3, 0.4e6);
    AppWorkload::new(
        "three-stage",
        vec![front, mid, back],
        vec![EdgeWorkload::all_to_all(3e5), EdgeWorkload::aligned(3e5)],
    )
}

#[test]
fn full_methodology_on_small_machine() {
    let machine = MachineConfig::iwarp_message().with_geometry(4, 4);
    let report = auto_map(&small_app(), &machine, &MapperOptions::exact()).unwrap();

    // Every stage of the methodology produced coherent results.
    assert!(report.fit_accuracy.mean_rel_error < 0.15);
    let optimal = report.optimal.as_ref().expect("DP requested");
    assert!(optimal.throughput >= report.greedy.throughput - 1e-9);
    pipemap::chain::validate(&report.fitted, &optimal.mapping).unwrap();
    pipemap::chain::validate(&report.fitted, &report.greedy.mapping).unwrap();
    assert!(report.measured.throughput > 0.0);
    assert!(
        report.percent_difference().abs() < 20.0,
        "predicted vs measured {:+.1}%",
        report.percent_difference()
    );
    assert!(report.optimal_over_data_parallel() > 1.0);

    // The report renders without panicking and mentions the app.
    let text = render_report(&report);
    assert!(text.contains("three-stage"));
    assert!(text.contains("predicted"));
}

#[test]
fn mapper_options_control_the_pipeline() {
    let machine = MachineConfig::iwarp_message().with_geometry(4, 4);
    let no_dp = MapperOptions {
        run_dp: false,
        check_feasibility: false,
        ..MapperOptions::exact()
    };
    let report = auto_map(&small_app(), &machine, &no_dp).unwrap();
    assert!(report.optimal.is_none());
    assert!(report.feasible.is_none());
    // The chosen mapping falls back to greedy and is still simulatable.
    assert!(report.measured.throughput > 0.0);
}

#[test]
fn noisy_profiling_still_produces_good_mappings() {
    let machine = MachineConfig::iwarp_message().with_geometry(4, 4);
    let exact = auto_map(&small_app(), &machine, &MapperOptions::exact()).unwrap();
    let noisy_opts = MapperOptions {
        training_noise: Some((0.05, 7)),
        measurement_noise: None,
        ..MapperOptions::exact()
    };
    let noisy = auto_map(&small_app(), &machine, &noisy_opts).unwrap();
    // The mapping chosen from noisy profiles, evaluated on ground truth,
    // is within a modest factor of the exact-profile choice.
    let ratio = noisy.measured.throughput / exact.measured.throughput;
    assert!(
        ratio > 0.85,
        "noisy-profile mapping lost {:.0}% throughput",
        100.0 * (1.0 - ratio)
    );
}

#[test]
fn threaded_executor_runs_a_mapped_fft_hist() {
    // A miniature FFT-Hist (64×64) through the real executor with the
    // paper's clustering: {colffts} and {rowffts+hist} fused.
    let n = 64;
    let colffts = Stage::new("colffts", |mut m: Matrix, threads| {
        fft_cols(&mut m, threads);
        m
    });
    let fused = Stage::new("rowffts+hist", |mut m: Matrix, threads| {
        fft_rows(&mut m, threads);
        histogram(&m, 32, 1e6, threads)
    });
    let plan = PipelinePlan::new(vec![
        StagePlan::new(colffts, 2, 1),
        StagePlan::new(fused, 2, 1),
    ]);
    let count = 12;
    let inputs: Vec<Data> = (0..count)
        .map(|i| {
            Box::new(Matrix::from_fn(n, |r, c| {
                Complex::new(((r + c * 3 + i) % 17) as f64, 0.0)
            })) as Data
        })
        .collect();
    let (outputs, stats) = run_pipeline(&plan, inputs);
    assert_eq!(stats.datasets, count);
    assert_eq!(outputs.len(), count);
    for out in outputs {
        let hist = out.downcast::<Vec<u64>>().expect("histogram output");
        assert_eq!(hist.iter().sum::<u64>() as usize, n * n);
    }
}
