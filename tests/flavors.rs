//! Structural signatures: on workload families whose right answer is
//! known by construction, the mapper must produce the matching mapping
//! *shape* — the end-to-end sanity check that the cost model and the
//! optimiser pull in the same direction.

use pipemap::apps::{synthetic_chain, ChainFlavor};
use pipemap::core::{cluster_heuristic, GreedyOptions};
use pipemap::machine::{synthesize_problem, MachineConfig};
use pipemap::profile::training::fit_problem;
use pipemap::profile::TrainingConfig;

fn solve(flavor: ChainFlavor, k: usize) -> (pipemap::chain::Problem, pipemap::core::Solution) {
    let machine = MachineConfig::iwarp_message();
    let truth = synthesize_problem(&synthetic_chain(flavor, k), &machine);
    let fitted = fit_problem(&truth, &TrainingConfig::for_procs(truth.total_procs));
    let sol = cluster_heuristic(&fitted, GreedyOptions::adaptive()).expect("mappable");
    (fitted, sol)
}

#[test]
fn comm_bound_chains_fuse() {
    // All-to-all edges of 2 MB dwarf the computation: the mapper should
    // collapse the chain into very few modules.
    let (_, sol) = solve(ChainFlavor::CommBound, 6);
    assert!(
        sol.mapping.num_modules() <= 2,
        "expected aggressive fusion, got {} modules",
        sol.mapping.num_modules()
    );
}

#[test]
fn memory_bound_chains_replicate_little() {
    let (problem, sol) = solve(ChainFlavor::MemoryBound, 4);
    for m in &sol.mapping.modules {
        assert!(
            m.replicas <= 3,
            "memory floors should cap replication, got r={}",
            m.replicas
        );
        let floor = problem.module_floor(m.first, m.last).unwrap();
        assert!(m.procs >= floor);
    }
}

#[test]
fn alternating_chains_pin_the_stateful_tail() {
    let (_, sol) = solve(ChainFlavor::Alternating, 6);
    let tail = sol
        .mapping
        .modules
        .iter()
        .find(|m| m.contains(5))
        .expect("tail mapped");
    assert_eq!(tail.replicas, 1, "stateful tail must not replicate");
    // And at least one other module is replicated (the heavy stages
    // can't reach the tail's rate on one instance).
    assert!(
        sol.mapping.modules.iter().any(|m| m.replicas > 1),
        "expected replication of the non-stateful stages: {:?}",
        sol.mapping
    );
}

#[test]
fn compute_bound_chains_scale_with_k() {
    // Compute-bound chains should keep most of the machine busy: the
    // mapping's processors-in-use stay near 64 as the chain grows.
    for k in [2usize, 4, 8] {
        let (_, sol) = solve(ChainFlavor::ComputeBound, k);
        assert!(
            sol.mapping.total_procs() >= 56,
            "k={k}: only {} processors used",
            sol.mapping.total_procs()
        );
        assert!(sol.throughput > 0.0);
    }
}

#[test]
fn flavors_have_distinct_structures() {
    // The four flavors must not all map to the same shape — otherwise
    // the generator isn't exercising the decision space.
    let shapes: Vec<(usize, usize)> = [
        ChainFlavor::ComputeBound,
        ChainFlavor::CommBound,
        ChainFlavor::MemoryBound,
        ChainFlavor::Alternating,
    ]
    .into_iter()
    .map(|f| {
        let (_, sol) = solve(f, 4);
        let max_r = sol
            .mapping
            .modules
            .iter()
            .map(|m| m.replicas)
            .max()
            .unwrap();
        (sol.mapping.num_modules(), max_r)
    })
    .collect();
    let distinct: std::collections::HashSet<_> = shapes.iter().collect();
    assert!(
        distinct.len() >= 3,
        "flavors collapsed to too few shapes: {shapes:?}"
    );
}
