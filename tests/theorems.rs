//! Property tests of the paper's theorems and assumptions.
//!
//! * **Theorem 1** (§4.1): the modified greedy (grow only the bottleneck)
//!   is optimal when communication time is monotone non-decreasing in
//!   both endpoint processor counts.
//! * **Theorem 2** (§4.1): under convex costs with computation dominating
//!   communication, the greedy overallocates at most 2 processors per
//!   task, so a radius-2 backtracking pass recovers the optimum.
//! * **§3.2 assumption**: without superlinear speedup, maximal
//!   replication of an isolated module is never worse than any other
//!   replication of the same processor budget.

use pipemap::chain::{ChainBuilder, Edge, Mapping, ModuleAssignment, Problem, Task};
use pipemap::core::{dp_assignment, greedy_assignment, GreedyOptions, GreedyVariant};
use pipemap::model::{
    is_convex_unary, is_monotone_comm, max_replication, no_superlinear_speedup, PolyEcom,
    PolyUnary, UnaryCost,
};
use proptest::prelude::*;

/// Chains in the Theorem 1 regime: overhead-dominated communication
/// (monotone in both processor counts), convex execution.
fn arb_theorem1_problem() -> impl Strategy<Value = Problem> {
    let task = (0.0..0.5f64, 1.0..10.0f64);
    let edge = (0.01..0.3f64, 0.001..0.05f64);
    (
        prop::collection::vec(task, 2..=4),
        prop::collection::vec(edge, 3),
        4..=12usize,
    )
        .prop_map(|(tasks, edges, p)| {
            let k = tasks.len();
            let mut b = ChainBuilder::new();
            for (i, (c1, c2)) in tasks.into_iter().enumerate() {
                // No C3 term: execution decreasing and convex.
                b = b.task(Task::new(format!("t{i}"), PolyUnary::new(c1, c2, 0.0)));
                if i + 1 < k {
                    let (fixed, per_proc) = edges[i];
                    // Communication grows with both group sizes.
                    b = b.edge(Edge::new(
                        PolyUnary::new(fixed, 0.0, per_proc),
                        PolyEcom::new(fixed, 0.0, 0.0, per_proc, per_proc),
                    ));
                }
            }
            Problem::new(b.build(), p, 1e12).without_replication()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn theorem1_modified_greedy_is_optimal(problem in arb_theorem1_problem()) {
        // Verify the hypothesis actually holds for the generated chain.
        for e in 0..problem.chain.len() - 1 {
            prop_assert!(is_monotone_comm(&problem.chain.edge(e).ecom, problem.total_procs));
        }
        let opts = GreedyOptions {
            variant: GreedyVariant::BottleneckOnly,
            backtrack_radius: 0,
            adaptive_radius: false,
        };
        let (greedy, _) = greedy_assignment(&problem, opts).unwrap();
        let (optimal, _) = dp_assignment(&problem).unwrap();
        prop_assert!(
            (greedy.throughput - optimal.throughput).abs()
                <= 1e-9 * optimal.throughput.max(1.0),
            "greedy {} vs optimal {}",
            greedy.throughput,
            optimal.throughput
        );
    }

    #[test]
    fn theorem2_radius2_backtracking_recovers_optimum(
        seeds in prop::collection::vec((0.0..0.3f64, 2.0..10.0f64), 2..=3),
        comm in 0.001..0.01f64,
        p in 4..=12usize,
    ) {
        // Convex execution, communication two orders below computation
        // (the δ > 4 δc condition comfortably satisfied).
        let k = seeds.len();
        let mut b = ChainBuilder::new();
        for (i, (c1, c2)) in seeds.iter().enumerate() {
            b = b.task(Task::new(format!("t{i}"), PolyUnary::new(*c1, *c2, 0.0)));
            if i + 1 < k {
                b = b.edge(Edge::new(
                    PolyUnary::new(comm, 0.0, 0.0),
                    PolyEcom::new(comm, comm, comm, 0.0, 0.0),
                ));
            }
        }
        let problem = Problem::new(b.build(), p, 1e12).without_replication();
        for i in 0..k {
            prop_assert!(is_convex_unary(&problem.chain.task(i).exec, p));
        }
        let (greedy, _) =
            greedy_assignment(&problem, GreedyOptions::with_backtracking()).unwrap();
        let (optimal, _) = dp_assignment(&problem).unwrap();
        prop_assert!(
            (greedy.throughput - optimal.throughput).abs()
                <= 1e-9 * optimal.throughput.max(1.0),
            "greedy+bt {} vs optimal {}",
            greedy.throughput,
            optimal.throughput
        );
    }

    #[test]
    fn maximal_replication_dominates_for_isolated_modules(
        c1 in 0.0..2.0f64,
        c2 in 0.0..8.0f64,
        c3 in 0.0..0.1f64,
        p in 1..=24usize,
        floor in 1..=4usize,
    ) {
        // A single-task chain (no neighbours, so the §3.2 argument's
        // assumptions hold exactly), with the processor budget a multiple
        // of the floor. Under those conditions the claim is provable:
        // telescoping `f(m+1) ≥ f(m)·m/(m+1)` gives
        // `f(inst) ≥ f(floor)·floor/inst`, so any `(r, inst)` with
        // `r·inst ≤ p` has effective time
        // `f(inst)/r ≥ f(floor)·floor/(r·inst) ≥ f(floor)·floor/p`,
        // which is exactly the maximal-replication member's time.
        //
        // When the floor does NOT divide the budget the claim fails —
        // found by this very test: with floor 3 and 10 processors the
        // rule yields 3×3 (one processor idle) and loses to 1×10 on a
        // perfectly parallel task. Recorded in EXPERIMENTS.md; the
        // free-replication feasible search recovers such cases.
        let p = p - p % floor.max(1); // make the budget divisible
        prop_assume!(p >= floor.max(1));
        let exec = UnaryCost::Poly(PolyUnary::new(c1, c2, c3));
        prop_assume!(no_superlinear_speedup(&exec, p));
        let chain = ChainBuilder::new()
            .task(Task::new("t", exec).with_min_procs(floor))
            .build();
        let problem = Problem::new(chain, p, 1e12);
        let Some(maximal) = max_replication(p, floor, true) else {
            return Ok(()); // below floor: nothing to compare
        };
        let policy = Mapping::new(vec![ModuleAssignment::new(
            0, 0, maximal.instances, maximal.procs_per_instance,
        )]);
        let policy_thr = pipemap::chain::throughput(&problem.chain, &policy);
        for r in 1..=p {
            for procs in floor..=p {
                if r * procs > p {
                    continue;
                }
                let m = Mapping::new(vec![ModuleAssignment::new(0, 0, r, procs)]);
                let thr = pipemap::chain::throughput(&problem.chain, &m);
                // Infinite throughput (zero-cost task) ties with itself.
                let ok = if thr.is_infinite() {
                    policy_thr.is_infinite()
                } else {
                    policy_thr >= thr - 1e-9 * thr.max(1.0)
                };
                prop_assert!(
                    ok,
                    "best policy member ({policy_thr}) beaten by ({r}, {procs}) = {thr}"
                );
            }
        }
    }

    #[test]
    fn greedy_never_reports_invalid_mappings(
        works in prop::collection::vec(0.5..8.0f64, 1..=5),
        p in 2..=16usize,
    ) {
        let k = works.len();
        let mut b = ChainBuilder::new();
        for (i, w) in works.iter().enumerate() {
            b = b.task(Task::new(format!("t{i}"), PolyUnary::perfectly_parallel(*w)));
            if i + 1 < k {
                b = b.edge(Edge::new(
                    PolyUnary::zero(),
                    PolyEcom::new(0.05, 0.1, 0.1, 0.0, 0.0),
                ));
            }
        }
        let problem = Problem::new(b.build(), p, 1e12);
        prop_assume!(k <= p); // below k processors the problem is infeasible
        let (sol, assignment) = greedy_assignment(&problem, GreedyOptions::adaptive()).unwrap();
        pipemap::chain::validate(&problem, &sol.mapping).expect("valid");
        prop_assert!(assignment.total() <= p);
    }
}
