//! The simulator and the analytic throughput model must agree: for any
//! valid mapping of any chain, a noise-free simulated run converges to
//! `1 / max_i (f_i / r_i)` (§2.2) at steady state.

use pipemap::chain::{
    throughput, validate, ChainBuilder, Edge, Mapping, ModuleAssignment, Problem, Task,
};
use pipemap::model::{PolyEcom, PolyUnary};
use pipemap::sim::{simulate, SimConfig};
use proptest::prelude::*;

/// A random chain and a random *valid* mapping of it.
fn arb_mapped_chain() -> impl Strategy<Value = (Problem, Mapping)> {
    (
        prop::collection::vec((0.1..4.0f64, 0.0..1.0f64), 1..=4),
        prop::collection::vec((0.0..0.5f64, 0.0..1.0f64), 3),
        prop::collection::vec((1..=3usize, 1..=4usize), 4),
        prop::collection::vec(any::<bool>(), 3),
    )
        .prop_map(|(tasks, edges, allocs, cuts)| {
            let k = tasks.len();
            let mut b = ChainBuilder::new();
            for (i, (par, fixed)) in tasks.iter().enumerate() {
                b = b.task(Task::new(
                    format!("t{i}"),
                    PolyUnary::new(*fixed, *par, 0.0),
                ));
                if i + 1 < k {
                    let (c, v) = edges[i];
                    b = b.edge(Edge::new(
                        PolyUnary::new(c * 0.5, v * 0.5, 0.0),
                        PolyEcom::new(c, v, v, 0.0, 0.0),
                    ));
                }
            }
            // Build a clustering from the cut bits, then assign each
            // module its (replicas, procs) pair.
            let mut modules = Vec::new();
            let mut first = 0;
            let mut mi = 0;
            #[allow(clippy::needless_range_loop)] // i is also a task index
            for i in 0..k {
                let is_cut = i + 1 == k || cuts[i];
                if is_cut {
                    let (r, p) = allocs[mi % allocs.len()];
                    modules.push(ModuleAssignment::new(first, i, r, p));
                    first = i + 1;
                    mi += 1;
                }
            }
            let mapping = Mapping::new(modules);
            let total = mapping.total_procs();
            (Problem::new(b.build(), total.max(1), 1e12), mapping)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn simulator_converges_to_analytic_throughput((problem, mapping) in arb_mapped_chain()) {
        validate(&problem, &mapping).expect("constructed mapping is valid");
        let analytic = throughput(&problem.chain, &mapping);
        prop_assume!(analytic.is_finite() && analytic > 0.0);
        // Long window + generous warmup: replication batching causes an
        // O(r/N) window artifact; 2000 data sets keep it below 1%.
        let sim = simulate(&problem.chain, &mapping, &SimConfig::with_datasets(2000));
        let rel = (sim.throughput - analytic).abs() / analytic;
        prop_assert!(
            rel < 0.02,
            "sim {} vs analytic {} (rel {:.4})",
            sim.throughput,
            analytic,
            rel
        );
        // The pipeline can never beat the analytic bound by more than the
        // measurement artifact.
        prop_assert!(sim.throughput <= analytic * 1.02);
    }

    #[test]
    fn event_driven_and_forward_sweep_simulators_agree((problem, mapping) in arb_mapped_chain()) {
        // Two independent implementations of the execution model — the
        // closed-form forward sweep and the event-driven engine — must
        // produce identical schedules on every valid mapping.
        let cfg = SimConfig::with_datasets(300);
        let sweep = simulate(&problem.chain, &mapping, &cfg);
        let des = pipemap::sim::simulate_des(&problem.chain, &mapping, &cfg);
        let close = |a: f64, b: f64| {
            (a - b).abs() <= 1e-9 * a.abs().max(1.0) || (a.is_infinite() && b.is_infinite())
        };
        prop_assert!(
            close(sweep.throughput, des.throughput),
            "throughput: sweep {} vs des {}",
            sweep.throughput,
            des.throughput
        );
        prop_assert!(
            close(sweep.latency.mean, des.latency.mean),
            "latency: sweep {} vs des {}",
            sweep.latency.mean,
            des.latency.mean
        );
        prop_assert!(close(sweep.makespan, des.makespan));
    }

    #[test]
    fn unloaded_open_loop_latency_equals_analytic_latency((problem, mapping) in arb_mapped_chain()) {
        // Feed the pipeline far below saturation: every data set
        // traverses an empty pipeline, so its sojourn time is exactly
        // the analytic unloaded latency of pipemap-core.
        let analytic_thr = throughput(&problem.chain, &mapping);
        prop_assume!(analytic_thr.is_finite() && analytic_thr > 0.0);
        let unloaded = pipemap::core::latency(&problem.chain, &mapping);
        let slow_period = 10.0 * unloaded.max(1.0 / analytic_thr);
        let cfg = SimConfig::with_datasets(60).with_arrival_period(slow_period);
        let sim = simulate(&problem.chain, &mapping, &cfg);
        prop_assert!(
            (sim.latency.mean - unloaded).abs() <= 1e-9 * unloaded.max(1.0),
            "sim latency {} vs analytic {}",
            sim.latency.mean,
            unloaded
        );
    }

    #[test]
    fn utilization_is_bounded((problem, mapping) in arb_mapped_chain()) {
        let analytic = throughput(&problem.chain, &mapping);
        prop_assume!(analytic.is_finite() && analytic > 0.0);
        let sim = simulate(&problem.chain, &mapping, &SimConfig::with_datasets(400));
        for (i, u) in sim.utilization.iter().enumerate() {
            prop_assert!((0.0..=1.0 + 1e-9).contains(u), "module {i} utilization {u}");
        }
        // Latency is at least the sum of module response times.
        let total_response: f64 = (0..mapping.num_modules())
            .map(|i| pipemap::chain::module_response(&problem.chain, &mapping, i).total())
            .sum();
        // Transfers are counted in both neighbouring responses, so the
        // latency lower bound subtracts one copy of each transfer.
        let transfers: f64 = (1..mapping.num_modules())
            .map(|i| pipemap::chain::module_response(&problem.chain, &mapping, i).incoming)
            .sum();
        prop_assert!(
            sim.latency.min >= total_response - transfers - 1e-9,
            "latency {} below pipeline depth {}",
            sim.latency.min,
            total_response - transfers
        );
    }
}
