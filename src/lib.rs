//! # pipemap — optimal mapping of pipelines of data parallel tasks
//!
//! A Rust implementation and experimental reproduction of Subhlok &
//! Vondran, *Optimal Mapping of Sequences of Data Parallel Tasks*
//! (PPoPP 1995). This facade crate re-exports the whole workspace; see
//! the individual crates for the details:
//!
//! * [`model`] — cost-function forms, memory model, replication rules;
//! * [`chain`] — task chains, mappings, throughput evaluation;
//! * [`core`] — the optimal DP mappers, the greedy heuristic, and the
//!   latency / processor-count extensions;
//! * [`machine`] — the iWarp-like machine model and its feasibility
//!   constraints;
//! * [`sim`] — the pipeline simulator;
//! * [`profile`] — profiling and least-squares model fitting;
//! * [`apps`] — the paper's application suite;
//! * [`exec`] — a real threaded executor with real kernels;
//! * [`obs`] — metrics, span timing, and Chrome-trace export;
//! * [`tool`] — the end-to-end automatic mapping tool.
//!
//! ## Example
//!
//! ```
//! use pipemap::chain::{ChainBuilder, Edge, Problem, Task};
//! use pipemap::core::dp_mapping;
//! use pipemap::model::{PolyEcom, PolyUnary};
//!
//! // Two tasks, each f(p) = C1 + C2/p + C3·p, joined by a transfer
//! // whose cost depends on both endpoint group sizes.
//! let chain = ChainBuilder::new()
//!     .task(Task::new("produce", PolyUnary::new(0.01, 0.40, 0.0)))
//!     .edge(Edge::new(
//!         PolyUnary::new(0.002, 0.01, 0.0),              // co-located
//!         PolyEcom::new(0.004, 0.03, 0.03, 0.0, 0.0),    // split
//!     ))
//!     .task(Task::new("consume", PolyUnary::new(0.02, 0.60, 0.0)))
//!     .build();
//!
//! let problem = Problem::new(chain, 16, 1e9);
//! let solution = dp_mapping(&problem).expect("feasible");
//! assert!(solution.throughput > 0.0);
//! assert!(solution.mapping.total_procs() <= 16);
//! // The reported throughput is recomputed by the independent evaluator.
//! let check = pipemap::chain::throughput(&problem.chain, &solution.mapping);
//! assert!((solution.throughput - check).abs() < 1e-9);
//! ```

pub use pipemap_apps as apps;
pub use pipemap_chain as chain;
pub use pipemap_core as core;
pub use pipemap_exec as exec;
pub use pipemap_machine as machine;
pub use pipemap_model as model;
pub use pipemap_obs as obs;
pub use pipemap_profile as profile;
pub use pipemap_sim as sim;
pub use pipemap_tool as tool;
