//! The three objectives of pipeline mapping — throughput, latency, and
//! processor count — on one problem (the trade-off studied in the
//! paper's companion work, reference [14]).
//!
//! ```sh
//! cargo run --release --example three_objectives
//! ```

use pipemap::chain::{ChainBuilder, Edge, Problem, Task};
use pipemap::core::{best_latency_mapping, dp_mapping, latency, min_procs_mapping};
use pipemap::model::{PolyEcom, PolyUnary};
use pipemap::tool::render_mapping;

fn main() {
    // A video-analytics-style pipeline: ingest → detect → annotate.
    let chain = ChainBuilder::new()
        .task(Task::new("ingest", PolyUnary::new(0.005, 0.08, 0.0)))
        .edge(Edge::new(
            PolyUnary::new(0.002, 0.004, 0.0),
            PolyEcom::new(0.004, 0.02, 0.02, 0.0, 0.0),
        ))
        .task(Task::new("detect", PolyUnary::new(0.010, 0.60, 0.0005)))
        .edge(Edge::new(
            PolyUnary::new(0.001, 0.002, 0.0),
            PolyEcom::new(0.003, 0.01, 0.01, 0.0, 0.0),
        ))
        .task(Task::new("annotate", PolyUnary::new(0.004, 0.12, 0.0)))
        .build();
    let problem = Problem::new(chain, 48, 1e12);

    // 1. Maximum throughput (the paper's objective).
    let thr = dp_mapping(&problem).unwrap();
    println!(
        "max throughput : {}\n                 {:.1} frames/s, latency {:.3}s\n",
        render_mapping(&problem, &thr.mapping),
        thr.throughput,
        latency(&problem.chain, &thr.mapping)
    );

    // 2. Minimum latency subject to 60% of that throughput.
    let floor = 0.6 * thr.throughput;
    let lat = best_latency_mapping(&problem, floor).unwrap();
    println!(
        "min latency    : {}\n                 latency {:.3}s at {:.1} frames/s (floor {:.1})\n",
        render_mapping(&problem, &lat.mapping),
        lat.latency,
        lat.throughput,
        floor
    );

    // 3. Fewest processors sustaining a 30 frames/s camera.
    let target = 30.0;
    let procs = min_procs_mapping(&problem, target).unwrap();
    println!(
        "min processors : {}\n                 {} of 48 processors sustain {:.1} frames/s (target {:.0})",
        render_mapping(&problem, &procs.solution.mapping),
        procs.procs,
        procs.solution.throughput,
        target
    );
}
