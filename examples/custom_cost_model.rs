//! The mapping algorithms are independent of how costs are modelled (§5:
//! "they may be mathematical functions … or they may be defined pointwise
//! possibly using interpolation"). This example maps the same pipeline
//! three ways — polynomial costs, measured/tabulated costs, and arbitrary
//! closures — and shows the machinery is identical.
//!
//! ```sh
//! cargo run --release --example custom_cost_model
//! ```

use pipemap::chain::{ChainBuilder, Edge, Problem, Task};
use pipemap::core::dp_mapping;
use pipemap::model::{BinaryCost, PolyEcom, PolyUnary, Tabulated, UnaryCost};
use pipemap::tool::render_mapping;

fn solve(label: &str, problem: &Problem) {
    let s = dp_mapping(problem).expect("feasible");
    println!(
        "{label:<12} {}  -> {:.2}/s",
        render_mapping(problem, &s.mapping),
        s.throughput
    );
}

fn main() {
    let p = 16;
    println!("one pipeline, three cost representations, same mapper\n");

    // 1. Polynomial models (what the fitting pipeline produces).
    let poly = ChainBuilder::new()
        .task(Task::new("produce", PolyUnary::new(0.01, 0.24, 0.001)))
        .edge(Edge::new(
            PolyUnary::new(0.002, 0.01, 0.0),
            PolyEcom::new(0.004, 0.03, 0.03, 0.0, 0.0),
        ))
        .task(Task::new("consume", PolyUnary::new(0.02, 0.40, 0.002)))
        .build();
    solve(
        "polynomial",
        &Problem::new(poly, p, 1e12).without_replication(),
    );

    // 2. Tabulated profiles: measured at a few processor counts,
    //    interpolated in between — no functional form assumed.
    let produce = Tabulated::new(vec![
        (1, 0.251),
        (2, 0.132),
        (4, 0.073),
        (8, 0.044),
        (16, 0.031),
    ]);
    let consume = Tabulated::new(vec![
        (1, 0.422),
        (2, 0.224),
        (4, 0.125),
        (8, 0.077),
        (16, 0.057),
    ]);
    let table = ChainBuilder::new()
        .task(Task::new("produce", produce))
        .edge(Edge::new(
            UnaryCost::Zero,
            PolyEcom::new(0.004, 0.03, 0.03, 0.0, 0.0),
        ))
        .task(Task::new("consume", consume))
        .build();
    solve(
        "tabulated",
        &Problem::new(table, p, 1e12).without_replication(),
    );

    // 3. Arbitrary closures: here a cost with a cache-cliff step that no
    //    low-order polynomial represents.
    let cliff = UnaryCost::custom(|procs| {
        let base = 0.42 / procs as f64;
        // Working set fits in cache only from 4 processors up.
        if procs >= 4 {
            base
        } else {
            2.5 * base
        }
    });
    let custom = ChainBuilder::new()
        .task(Task::new("produce", PolyUnary::new(0.01, 0.24, 0.001)))
        .edge(Edge::new(
            UnaryCost::Zero,
            BinaryCost::custom(|s, r| 0.004 + 0.03 / s as f64 + 0.03 / r as f64),
        ))
        .task(Task::new("consume", cliff))
        .build();
    let problem = Problem::new(custom, p, 1e12).without_replication();
    solve("closures", &problem);
    println!("\n(the cache-cliff consumer is never given fewer than 4 processors:");
    let s = dp_mapping(&problem).unwrap();
    let consume_module = s
        .mapping
        .modules
        .iter()
        .find(|m| m.contains(1))
        .expect("consume is mapped");
    println!(" its instances got {} each)", consume_module.procs);
}
