//! Map the narrowband tracking radar pipeline with the automatic tool
//! and inspect the full report — including the machine-feasible mapping
//! and the replication limit imposed by the stateful tracker.
//!
//! ```sh
//! cargo run --release --example radar_tracking
//! ```

use pipemap::apps::{radar, RadarConfig};
use pipemap::machine::MachineConfig;
use pipemap::tool::{auto_map, render_report, MapperOptions};

fn main() {
    let app = radar(RadarConfig::paper());
    let machine = MachineConfig::iwarp_systolic();
    let options = MapperOptions {
        run_dp: false, // greedy path: fast and near-optimal here
        ..MapperOptions::default()
    };
    let report = auto_map(&app, &machine, &options).expect("radar is mappable");
    println!("{}", render_report(&report));

    println!("notes:");
    println!(" * detect-track keeps state across dwells, so it cannot replicate —");
    println!("   its single-instance response time caps pipeline throughput;");
    println!(" * the FFT stages have a grain of 10 (one unit per channel), so");
    println!("   beyond 10 processors an instance gains nothing: the mapper");
    println!("   replicates them instead of widening them.");
}
