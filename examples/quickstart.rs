//! Quickstart: define a chain of data parallel tasks, find its optimal
//! mapping, and inspect the result.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pipemap::chain::{ChainBuilder, Edge, Problem, Task};
use pipemap::core::{cluster_heuristic, dp_mapping, GreedyOptions};
use pipemap::model::{MemoryReq, PolyEcom, PolyUnary};
use pipemap::sim::{simulate, SimConfig};
use pipemap::tool::render_mapping;

fn main() {
    // A three-stage pipeline: decode → transform → encode, processing a
    // stream of frames. Execution times follow the paper's model
    // f(p) = C1 + C2/p + C3·p (fixed + parallel + per-processor cost).
    let chain = ChainBuilder::new()
        .task(
            Task::new("decode", PolyUnary::new(0.004, 0.120, 0.0002))
                .with_memory(MemoryReq::new(1e6, 24e6)),
        )
        .edge(Edge::new(
            // Redistribution if co-located; transfer if not.
            PolyUnary::new(0.001, 0.010, 0.0),
            PolyEcom::new(0.002, 0.020, 0.020, 0.0001, 0.0001),
        ))
        .task(
            Task::new("transform", PolyUnary::new(0.002, 0.300, 0.0001))
                .with_memory(MemoryReq::new(1e6, 32e6)),
        )
        .edge(Edge::new(
            PolyUnary::new(0.001, 0.008, 0.0),
            PolyEcom::new(0.002, 0.015, 0.015, 0.0001, 0.0001),
        ))
        .task(
            // The encoder keeps inter-frame state: not replicable.
            Task::new("encode", PolyUnary::new(0.010, 0.080, 0.0))
                .with_memory(MemoryReq::new(1e6, 8e6))
                .not_replicable(),
        )
        .build();

    // Map onto 32 processors with 16 MB of memory each.
    let problem = Problem::new(chain, 32, 16e6);

    // The optimal dynamic-programming mapper (clustering + replication +
    // allocation, §3 of the paper) …
    let optimal = dp_mapping(&problem).expect("problem is feasible");
    println!(
        "optimal mapping : {}  -> {:.1} frames/s",
        render_mapping(&problem, &optimal.mapping),
        optimal.throughput
    );

    // … and the fast greedy heuristic (§4), which is near-optimal in
    // practice at a fraction of the cost.
    let greedy = cluster_heuristic(&problem, GreedyOptions::adaptive()).unwrap();
    println!(
        "greedy mapping  : {}  -> {:.1} frames/s",
        render_mapping(&problem, &greedy.mapping),
        greedy.throughput
    );

    // Validate the analytic throughput in the pipeline simulator.
    let sim = simulate(
        &problem.chain,
        &optimal.mapping,
        &SimConfig::with_datasets(500),
    );
    println!(
        "simulated       : {:.1} frames/s over {} data sets (bottleneck utilisation {:.0}%)",
        sim.throughput,
        500,
        100.0 * sim.utilization.iter().cloned().fold(0.0, f64::max)
    );
}
