//! Multibaseline stereo end to end: the mapping tool plans the pipeline,
//! then the threaded executor runs real disparity computation on
//! synthetic camera images and recovers the planted depth.
//!
//! ```sh
//! cargo run --release --example stereo_vision
//! ```

use pipemap::apps::{stereo, StereoConfig};
use pipemap::exec::kernels::{disparity_differences, error_images, min_depth, Image};
use pipemap::exec::{run_pipeline, Data, PipelinePlan, Stage, StagePlan};
use pipemap::machine::MachineConfig;
use pipemap::tool::{auto_map, render_mapping, MapperOptions};

const W: usize = 128;
const H: usize = 64;
const DISPARITIES: usize = 8;
const TRUE_SHIFT: usize = 3;

/// A synthetic stereo pair with a known constant disparity.
fn camera_frame(seq: usize) -> (Image, Image) {
    let reference = Image::from_fn(W, H, |x, y| ((x * 13 + y * 7 + seq * 31) % 223) as u8);
    // left(x) = reference(x + TRUE_SHIFT): comparing left against
    // reference at disparity d matches exactly at d = TRUE_SHIFT.
    let left = Image::from_fn(W, H, |x, y| {
        if x + TRUE_SHIFT < W {
            reference.pixels[y * W + x + TRUE_SHIFT]
        } else {
            0
        }
    });
    (left, reference)
}

fn main() {
    // 1. Plan the mapping on the paper's machine model.
    let app = stereo(StereoConfig::paper());
    let machine = MachineConfig::iwarp_systolic();
    let options = MapperOptions {
        run_dp: false,
        ..MapperOptions::exact()
    };
    let report = auto_map(&app, &machine, &options).expect("stereo is mappable");
    println!(
        "planned mapping: {}  -> predicted {:.1} frames/s on the model machine\n",
        render_mapping(&report.fitted, report.chosen()),
        report.predicted_throughput
    );

    // 2. Execute the same structure for real: capture feeds a fused
    //    difference+error+min-depth module (the clustering the mapper
    //    chose), replicated across frames.
    let capture = Stage::new("capture", |seq: usize, _| camera_frame(seq));
    let fused = Stage::new(
        "difference+error+min-depth",
        |(left, reference): (Image, Image), threads| {
            let diffs = disparity_differences(&left, &reference, DISPARITIES, threads);
            let errors = error_images(&diffs, W, H, 1, threads);
            min_depth(&errors, W, H, threads)
        },
    );
    let plan = PipelinePlan::new(vec![
        StagePlan::new(capture, 1, 1),
        StagePlan::new(fused, 3, 2),
    ]);
    let frames: usize = 24;
    let inputs: Vec<Data> = (0..frames).map(|i| Box::new(i) as Data).collect();
    let (outputs, stats) = run_pipeline(&plan, inputs);
    println!(
        "executed {} frames at {:.1} frames/s on this machine",
        frames, stats.throughput
    );

    // 3. Check the recovered depth.
    let depth = outputs
        .into_iter()
        .next()
        .unwrap()
        .downcast::<Vec<u8>>()
        .unwrap();
    let interior: Vec<u8> = (4..H - 4)
        .flat_map(|y| (4..W - 12).map(move |x| (y, x)))
        .map(|(y, x)| depth[y * W + x])
        .collect();
    let correct = interior
        .iter()
        .filter(|&&d| d as usize == TRUE_SHIFT)
        .count();
    println!(
        "depth recovery: {}/{} interior pixels at the planted disparity {}",
        correct,
        interior.len(),
        TRUE_SHIFT
    );
    assert!(correct as f64 / interior.len() as f64 > 0.9);
}
