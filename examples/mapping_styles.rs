//! Figure 1 of the paper: the four ways to map a chain of data parallel
//! tasks onto a machine — pure data parallelism, pure task parallelism,
//! replicated data parallelism, and the mixed form — evaluated on one
//! chain so the trade-offs are visible.
//!
//! ```sh
//! cargo run --release --example mapping_styles
//! ```

use pipemap::chain::{throughput, ChainBuilder, Edge, Mapping, ModuleAssignment, Problem, Task};
use pipemap::core::dp_mapping;
use pipemap::model::{PolyEcom, PolyUnary};
use pipemap::sim::{simulate, SimConfig};

fn main() {
    // Four tasks with different scalability: t2 parallelises well, t4 is
    // dominated by fixed cost and — like a stateful output stage — cannot
    // be replicated, which is what forces a genuinely *mixed* optimum.
    let chain = ChainBuilder::new()
        .task(Task::new("t1", PolyUnary::new(0.02, 0.40, 0.001)))
        .edge(edge())
        .task(Task::new("t2", PolyUnary::new(0.01, 0.90, 0.001)))
        .edge(edge())
        .task(Task::new("t3", PolyUnary::new(0.02, 0.50, 0.001)))
        .edge(edge())
        .task(Task::new("t4", PolyUnary::new(0.08, 0.10, 0.0)).not_replicable())
        .build();
    let p = 16;
    let problem = Problem::new(chain, p, 1e12);

    println!("Figure 1: combinations of data and task parallel mappings");
    println!("(4-task chain on {p} processors)\n");

    // (a) Pure data parallel: one module on all processors.
    show(
        &problem,
        "(a) data parallel",
        Mapping::data_parallel(&problem),
    );

    // (b) Pure task parallel: one module per task.
    show(
        &problem,
        "(b) task parallel",
        Mapping::task_parallel(&[4, 6, 4, 2]),
    );

    // (c) Replicated data parallel: everything replicable as one module,
    // replicated four ways (the stateful t4 must stay a single instance).
    show(
        &problem,
        "(c) replicated (4x)",
        Mapping::new(vec![
            ModuleAssignment::new(0, 2, 4, 3),
            ModuleAssignment::new(3, 3, 1, 4),
        ]),
    );

    // (d) Mixed: what the optimal mapper actually picks.
    let optimal = dp_mapping(&problem).unwrap();
    show(&problem, "(d) optimal mixed", optimal.mapping.clone());
    println!(
        "\noptimal structure: {:?}",
        optimal
            .mapping
            .modules
            .iter()
            .map(|m| format!(
                "tasks {}..={} x{} on {}p",
                m.first, m.last, m.replicas, m.procs
            ))
            .collect::<Vec<_>>()
    );
}

fn edge() -> Edge {
    Edge::new(
        PolyUnary::new(0.002, 0.01, 0.0),
        PolyEcom::new(0.004, 0.02, 0.02, 0.0002, 0.0002),
    )
}

fn show(problem: &Problem, label: &str, mapping: Mapping) {
    let analytic = throughput(&problem.chain, &mapping);
    let sim = simulate(&problem.chain, &mapping, &SimConfig::with_datasets(400));
    println!(
        "{label:<22} analytic {analytic:>7.2}/s   simulated {:>7.2}/s   procs used {}",
        sim.throughput,
        mapping.total_procs()
    );
}
