//! The paper's FFT-Hist program, executed for real — with the *mapper in
//! the loop*: the automatic tool plans the structure on the machine
//! model, `plan_from_mapping` carries that structure onto this machine's
//! threads, and the executor runs actual FFTs and histograms through it.
//!
//! ```sh
//! cargo run --release --example fft_hist_pipeline
//! ```

use pipemap::apps::{fft_hist, FftHistConfig};
use pipemap::exec::kernels::{fft_cols, fft_rows, histogram, Complex, Matrix};
use pipemap::exec::{
    plan_from_mapping, run_pipeline, Data, PipelinePlan, Stage, StagePlan, ThreadBudget,
};
use pipemap::machine::MachineConfig;
use pipemap::tool::{auto_map, render_mapping, MapperOptions};

fn colffts_stage() -> Stage {
    Stage::new("colffts", |mut m: Matrix, threads| {
        fft_cols(&mut m, threads);
        m
    })
}

/// One fused stage per mapper module: clustering means the member tasks
/// run back to back in one address space.
fn fused_stage(first: usize, last: usize) -> Stage {
    Stage::new(
        format!("tasks{first}-{last}"),
        move |mut m: Matrix, threads| {
            // Tasks: 0 = colffts, 1 = rowffts, 2 = hist. Only the suffix
            // containing rowffts/hist is ever fused in practice, but handle
            // any contiguous range so arbitrary mapper output runs.
            let mut hist_out: Option<Vec<u64>> = None;
            for task in first..=last {
                match task {
                    0 => fft_cols(&mut m, threads),
                    1 => fft_rows(&mut m, threads),
                    2 => hist_out = Some(histogram(&m, 64, 1e7, threads)),
                    _ => unreachable!("FFT-Hist has 3 tasks"),
                }
            }
            hist_out.expect("the last module ends with hist")
        },
    )
}

fn inputs(n: usize, count: usize) -> Vec<Data> {
    (0..count)
        .map(|i| {
            let m = Matrix::from_fn(n, |r, c| {
                Complex::new(((r * 31 + c * 17 + i * 7) % 101) as f64 / 101.0, 0.0)
            });
            Box::new(m) as Data
        })
        .collect()
}

fn main() {
    let n = 256;
    let count = 48;
    let threads = std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(4);

    // 1. Let the tool map FFT-Hist on the paper's machine model.
    let app = fft_hist(FftHistConfig::n256());
    let machine = MachineConfig::iwarp_message();
    let options = MapperOptions {
        run_dp: false, // greedy reaches the same mapping here
        ..MapperOptions::exact()
    };
    let report = auto_map(&app, &machine, &options).expect("mappable");
    let mapping = report.chosen().clone();
    println!(
        "mapper chose: {}  ({:.1}/s predicted on the model machine)\n",
        render_mapping(&report.fitted, &mapping),
        report.predicted_throughput
    );

    // 2. Carry the structure onto this machine: one fused stage per
    //    module, the mapping's replication, processors → threads.
    assert_eq!(
        mapping.num_modules(),
        2,
        "FFT-Hist maps to {{colffts}} + {{rowffts+hist}}"
    );
    let stages: Vec<Stage> = mapping
        .modules
        .iter()
        .map(|m| {
            if m.first == 0 && m.last == 0 {
                colffts_stage()
            } else {
                fused_stage(m.first, m.last)
            }
        })
        .collect();
    let budget = ThreadBudget {
        total_threads: threads,
        model_procs: machine.total_procs(),
    };
    let plan = plan_from_mapping(&mapping, stages, budget);
    println!("executing {count} arrays of {n}x{n} complex on {threads} hardware threads");

    // 3. Run it, against a serial baseline.
    let serial = PipelinePlan::new(vec![
        StagePlan::serial(colffts_stage()),
        StagePlan::serial(fused_stage(1, 2)),
    ]);
    let (_, serial_stats) = run_pipeline(&serial, inputs(n, count));
    let (outputs, mapped_stats) = run_pipeline(&plan, inputs(n, count));
    println!(
        "serial pipeline : {:>6.2} arrays/s",
        serial_stats.throughput
    );
    println!(
        "mapped pipeline : {:>6.2} arrays/s  ({:.2}x)",
        mapped_stats.throughput,
        mapped_stats.throughput / serial_stats.throughput
    );

    // 4. Prove real work happened.
    let hist = outputs
        .into_iter()
        .next()
        .unwrap()
        .downcast::<Vec<u64>>()
        .unwrap();
    let total: u64 = hist.iter().sum();
    println!(
        "\nfirst histogram: {} points in {} bins; first bins: {:?}",
        total,
        hist.len(),
        &hist[..8.min(hist.len())]
    );
    assert_eq!(total as usize, n * n);
}
