#!/usr/bin/env bash
# Local CI: formatting, lints, and the tier-1 build+test gate.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (workspace, warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: release build + tests =="
cargo build --release
cargo test -q

echo "== workspace tests =="
cargo test --workspace -q

echo "== solver equivalence under forced thread counts =="
# The differential suite must hold regardless of the worker-pool size the
# environment imposes; 1 exercises the serial fallback, 4 oversubscribes
# small CI machines on purpose.
PIPEMAP_THREADS=1 cargo test -q -p pipemap-core --test equivalence
PIPEMAP_THREADS=4 cargo test -q -p pipemap-core --test equivalence

echo "== executor data plane: batching equivalence under forced thread counts =="
# Batched + pooled transport must be bit-identical to the unbatched
# reference path whatever the per-instance thread count.
PIPEMAP_THREADS=1 cargo test -q -p pipemap-exec --test batching
PIPEMAP_THREADS=4 cargo test -q -p pipemap-exec --test batching

echo "== executor stress smoke: sustained load for 2s =="
# A short open-loop run through the release binary; `pipemap load` exits
# nonzero when the pipeline completes no datasets, so success here means
# the data plane actually moved traffic under sustained load.
./target/release/pipemap load micro --duration 2s

echo "== bench-smoke: quick perf suite + schema check =="
BENCH_SMOKE_OUT=$(mktemp /tmp/pipemap-bench-smoke.XXXXXX.json)
trap 'rm -f "$BENCH_SMOKE_OUT"' EXIT
./target/release/pipemap bench --quick --out "$BENCH_SMOKE_OUT"
./target/release/pipemap bench --validate "$BENCH_SMOKE_OUT"
# Compare against the committed baseline when one exists. Warn-only:
# the quick suite on arbitrary CI hardware is indicative, not a gate —
# the real gate is `pipemap bench --compare` on like-for-like machines.
if [ -f BENCH_baseline.json ]; then
    ./target/release/pipemap bench --warn-only \
        --compare BENCH_baseline.json --against "$BENCH_SMOKE_OUT"
fi

echo "CI OK"
