#!/usr/bin/env bash
# Local CI: formatting, lints, and the tier-1 build+test gate.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (workspace, warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: release build + tests =="
cargo build --release
cargo test -q

echo "== workspace tests =="
cargo test --workspace -q

echo "CI OK"
