#!/usr/bin/env bash
# Local CI: formatting, lints, and the tier-1 build+test gate.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (workspace, warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: release build + tests =="
# --workspace matters: the repo root is itself a package, so a bare
# `cargo build` would build only the root lib and leave the `pipemap`
# binary the smoke steps below run stale (or missing on a clean tree).
cargo build --release --workspace
cargo test -q

echo "== workspace tests =="
cargo test --workspace -q

echo "== solver equivalence under forced thread counts =="
# The differential suite must hold regardless of the worker-pool size the
# environment imposes; 1 exercises the serial fallback, 4 oversubscribes
# small CI machines on purpose.
PIPEMAP_THREADS=1 cargo test -q -p pipemap-core --test equivalence
PIPEMAP_THREADS=4 cargo test -q -p pipemap-core --test equivalence

echo "== executor data plane: batching equivalence under forced thread counts =="
# Batched + pooled transport must be bit-identical to the unbatched
# reference path whatever the per-instance thread count.
PIPEMAP_THREADS=1 cargo test -q -p pipemap-exec --test batching
PIPEMAP_THREADS=4 cargo test -q -p pipemap-exec --test batching

echo "== journey completeness under forced thread counts =="
# Every sampled data set must leave a complete, monotone journey, and
# tracing must not perturb pipeline outputs, serial or multi-threaded.
PIPEMAP_THREADS=1 cargo test -q -p pipemap-exec --test journeys
PIPEMAP_THREADS=4 cargo test -q -p pipemap-exec --test journeys

echo "== executor stress smoke: sustained load for 2s =="
# A short open-loop run through the release binary; `pipemap load` exits
# nonzero when the pipeline completes no datasets, so success here means
# the data plane actually moved traffic under sustained load.
./target/release/pipemap load micro --duration 2s

echo "== doctor smoke: traced load run diagnosed drift-free =="
# Record sampled journeys from a short fft-hist load run, then have the
# doctor diagnose them. The fft-hist stages are genuinely heterogeneous
# (column FFT > row FFT > histogram), so the measured bottleneck must
# agree with the busy-time model and the report must be drift-free.
# `--fail-on-drift` makes disagreement a hard failure; the JSON report
# is also checked for structural well-formedness.
JOURNEY_SMOKE_OUT=$(mktemp /tmp/pipemap-journeys.XXXXXX.jsonl)
DOCTOR_SMOKE_OUT=$(mktemp /tmp/pipemap-doctor.XXXXXX.json)
trap 'rm -f "$JOURNEY_SMOKE_OUT" "$DOCTOR_SMOKE_OUT" "${UDS_SMOKE_CAL:-}" "${UDS_SMOKE_REPORT:-}" "${UDS_SMOKE_JOURNEYS:-}" "${UDS_SMOKE_DOCTOR:-}" "${BENCH_SMOKE_OUT:-}" "${LIVE_SMOKE_LOG:-}" "${TELEM_SMOKE_LOG:-}" "${TELEM_SMOKE_TOP:-}" "${EXPLAIN_SMOKE_SPEC:-}" "${EXPLAIN_SMOKE_OUT:-}" "${EXPLAIN_SMOKE_JOURNEYS:-}" "${RESOLVE_SMOKE_SPEC:-}" "${RESOLVE_SMOKE_JOURNEYS:-}" "${RESOLVE_SMOKE_DOCTOR:-}" "${RESOLVE_SMOKE_OUT:-}"; kill "${LIVE_SMOKE_PID:-}" "${TELEM_SMOKE_PID:-}" 2>/dev/null || true' EXIT
./target/release/pipemap load fft-hist --duration 2s --size 64 \
    --journey-out "$JOURNEY_SMOKE_OUT" --journey-sample 8
./target/release/pipemap doctor "$JOURNEY_SMOKE_OUT" \
    --report json --fail-on-drift > "$DOCTOR_SMOKE_OUT"
python3 - "$DOCTOR_SMOKE_OUT" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
assert r["schema"] == "pipemap-doctor/v1", r.get("schema")
assert r["complete"] > 0, "no complete journeys diagnosed"
assert r["drift"] is False, "smoke run reported drift"
assert len(r["stages"]) == 3, "expected the three fft-hist stages"
for s in r["stages"]:
    for comp in ("queue", "transport", "service", "batching"):
        assert s[comp]["mean_s"] >= 0, (s["name"], comp)
print("doctor smoke: %d journeys, drift-free" % r["complete"])
EOF

echo "== uds smoke: multi-process plane, calibrated f_ecom, cross-process doctor =="
# The out-of-process data plane end to end: fit the transport cost model
# from real cross-process runs, then drive the uds pipeline and check
# the calibrated closed-form prediction lands near what was measured
# (the tentpole acceptance bar is 15%; the gate is looser because a
# loaded CI box shifts both sides). Journeys recorded across four
# processes must stitch into complete, drift-free timelines. Both
# kernel-thread settings exercise the serial and forked kernel paths
# inside the workers.
UDS_SMOKE_CAL=$(mktemp /tmp/pipemap-uds-cal.XXXXXX.json)
UDS_SMOKE_REPORT=$(mktemp /tmp/pipemap-uds-report.XXXXXX.json)
UDS_SMOKE_JOURNEYS=$(mktemp /tmp/pipemap-uds-j.XXXXXX.jsonl)
UDS_SMOKE_DOCTOR=$(mktemp /tmp/pipemap-uds-doctor.XXXXXX.json)
./target/release/pipemap calibrate --out "$UDS_SMOKE_CAL" 2> /dev/null
for UDS_THREADS in 1 4; do
    PIPEMAP_THREADS=$UDS_THREADS ./target/release/pipemap load micro \
        --transport uds --duration 2s --size 1024 --threads "$UDS_THREADS" \
        --calibration "$UDS_SMOKE_CAL" --report json > "$UDS_SMOKE_REPORT"
    python3 - "$UDS_SMOKE_REPORT" "$UDS_THREADS" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
res = r["result"]
assert res["completed"] > 0, "uds run completed nothing"
assert len(r["links"]) == 5, "4 stages -> 5 boundary links"
assert r["links"][0]["items"] == res["completed"], "items lost on the first link"
ratio = res["achieved_over_predicted"]
assert 0.75 <= ratio <= 1.35, \
    "calibrated prediction off: achieved/predicted %.2f" % ratio
print("uds smoke (threads=%s): %d datasets, achieved/predicted %.2f"
      % (sys.argv[2], res["completed"], ratio))
EOF
done
PIPEMAP_THREADS=1 ./target/release/pipemap load fft-hist \
    --transport uds --duration 2s --size 64 \
    --journey-out "$UDS_SMOKE_JOURNEYS" --journey-sample 8 > /dev/null
./target/release/pipemap doctor "$UDS_SMOKE_JOURNEYS" \
    --report json --fail-on-drift > "$UDS_SMOKE_DOCTOR"
python3 - "$UDS_SMOKE_DOCTOR" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
assert r["complete"] > 0, "no complete cross-process journeys"
assert r["drift"] is False, "uds smoke reported drift"
assert len(r["stages"]) == 3, "expected the three fft-hist stages"
print("uds smoke: %d cross-process journeys, drift-free" % r["complete"])
EOF

echo "== explain smoke: decision provenance, exact margins, doctor --margins =="
# Solve a two-stage chain with full provenance, check the
# pipemap-explain/v1 report is well-formed (margins per stage, finite
# tightest margin on this knife-edge split), then close the loop: a
# seeded DES run of the same mapping doctored against those exact
# margins must come back drift-free with a nonzero exit reserved for a
# genuine margin crossing.
EXPLAIN_SMOKE_SPEC=$(mktemp /tmp/pipemap-explain.XXXXXX.pmap)
EXPLAIN_SMOKE_OUT=$(mktemp /tmp/pipemap-explain.XXXXXX.json)
EXPLAIN_SMOKE_JOURNEYS=$(mktemp /tmp/pipemap-explain-j.XXXXXX.jsonl)
cat > "$EXPLAIN_SMOKE_SPEC" <<'SPEC'
procs 12
mem_per_proc 1e9

task front
  exec poly 0.0 5.0 0.02
  replicable no

edge
  icom poly 0.0 0.05 0.0
  ecom poly 0.02 0.3 0.3 0.01 0.01

task back
  exec poly 0.05 3.0 0.02
  replicable no
SPEC
./target/release/pipemap explain "$EXPLAIN_SMOKE_SPEC" \
    --report json --out "$EXPLAIN_SMOKE_OUT" --robustness 6 --spread 0.02 > /dev/null
python3 - "$EXPLAIN_SMOKE_OUT" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
assert r["schema"] == "pipemap-explain/v1", r.get("schema")
assert len(r["stages"]) == 2, r["stages"]
for s in r["stages"]:
    m = s["margins"]
    for key in ("exec_up", "exec_down", "ecom_in_up", "ecom_in_down"):
        assert key in m, (key, s)
assert r["min_exec_up"] is not None and 1.0 < r["min_exec_up"] < 2.0, r["min_exec_up"]
# Perturbations inside the margin must cost nothing in the sampled study.
assert r["robustness"]["regret_max"] == 0, r["robustness"]
print("explain smoke: min margin %.1f%%" % ((r["min_exec_up"] - 1) * 100))
EOF
./target/release/pipemap simulate "$EXPLAIN_SMOKE_SPEC" "0-0:1x7,1-1:1x5" \
    --datasets 60 --noise 0.02 --seed 11 \
    --journey-out "$EXPLAIN_SMOKE_JOURNEYS" --journey-sample 1 > /dev/null
./target/release/pipemap doctor "$EXPLAIN_SMOKE_JOURNEYS" \
    --margins "$EXPLAIN_SMOKE_OUT" --fail-on-drift > /dev/null

echo "== resolve smoke: drift -> doctor factors -> incremental re-solve =="
# Close the re-planning loop end to end: simulate the explain-smoke chain
# with its front stage genuinely 2.5x slower than the spec predicts, have
# the doctor fit the drift factors and judge them against the explain
# smoke's exact margins (2.5x is provably outside the front stage's
# stability interval, whose upper crossing the explain smoke pins below
# 2.0x), then hand the doctor report to
# `pipemap resolve`, which re-prices the original spec and re-solves
# incrementally. The resolve command verifies bit-identity against a cold
# solve on every run and exits nonzero on mismatch, so this smoke fails
# hard if the incremental engine ever diverges. A second call exercises
# the margin short-circuit: a 1% drift strictly inside the exact
# stability interval must be answered with zero DP cells.
RESOLVE_SMOKE_SPEC=$(mktemp /tmp/pipemap-resolve.XXXXXX.pmap)
RESOLVE_SMOKE_JOURNEYS=$(mktemp /tmp/pipemap-resolve-j.XXXXXX.jsonl)
RESOLVE_SMOKE_DOCTOR=$(mktemp /tmp/pipemap-resolve-d.XXXXXX.json)
RESOLVE_SMOKE_OUT=$(mktemp /tmp/pipemap-resolve-o.XXXXXX.json)
cat > "$RESOLVE_SMOKE_SPEC" <<'SPEC'
procs 12
mem_per_proc 1e9

task front
  exec poly 0.0 12.5 0.05
  replicable no

edge
  icom poly 0.0 0.05 0.0
  ecom poly 0.02 0.3 0.3 0.01 0.01

task back
  exec poly 0.05 3.0 0.02
  replicable no
SPEC
./target/release/pipemap simulate "$RESOLVE_SMOKE_SPEC" "0-0:1x7,1-1:1x5" \
    --datasets 80 --noise 0.02 --seed 11 \
    --journey-out "$RESOLVE_SMOKE_JOURNEYS" --journey-sample 1 > /dev/null
./target/release/pipemap doctor "$RESOLVE_SMOKE_JOURNEYS" \
    --spec "$EXPLAIN_SMOKE_SPEC" --mapping "0-0:1x7,1-1:1x5" \
    --margins "$EXPLAIN_SMOKE_OUT" \
    --report json > "$RESOLVE_SMOKE_DOCTOR"
python3 - "$RESOLVE_SMOKE_DOCTOR" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
assert r["drift"] is True, "2.5x slower front stage must be flagged as drift"
f = r["recommendation"]["factors"]["service"]
assert f[0] is not None and 2.0 < f[0] < 3.0, f
print("resolve smoke: doctor fitted front service factor %.2fx" % f[0])
EOF
./target/release/pipemap resolve "$EXPLAIN_SMOKE_SPEC" --assignment \
    --doctor "$RESOLVE_SMOKE_DOCTOR" --report json > "$RESOLVE_SMOKE_OUT"
python3 - "$RESOLVE_SMOKE_OUT" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
assert r["schema"] == "pipemap-resolve/v1", r.get("schema")
assert r["verify_match"] is True, "incremental result diverged from cold solve"
assert r["mechanism"] == "suffix", r["mechanism"]
assert r["new"]["throughput"] == r["cold_throughput"], r
print("resolve smoke: suffix re-solve verified (%d cells, %.1fx)"
      % (r["cells"], r["speedup"]))
EOF
./target/release/pipemap resolve "$EXPLAIN_SMOKE_SPEC" --assignment \
    --drift exec:0=1.01 --report json > "$RESOLVE_SMOKE_OUT"
python3 - "$RESOLVE_SMOKE_OUT" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
assert r["verify_match"] is True, "short-circuit diverged from cold solve"
assert r["mechanism"] == "short-circuit", r["mechanism"]
assert r["cells"] == 0, "short-circuit must do no DP work"
print("resolve smoke: 1% in-margin drift short-circuited at 0 DP cells")
EOF

echo "== live-attach smoke: observatory endpoints over a held load run =="
# Serve the full observatory surface from a short micro load run (--hold
# keeps the server up after the datasets drain), attach `pipemap top`
# and the doctor to it over HTTP, and check that /model.json and
# /events.jsonl are well-formed. This is the end-to-end path a live
# operator takes; ports are OS-assigned so parallel CI runs don't clash.
LIVE_SMOKE_LOG=$(mktemp /tmp/pipemap-live-smoke.XXXXXX.log)
./target/release/pipemap load micro --datasets 20000 \
    --serve 127.0.0.1:0 --hold 30 2> "$LIVE_SMOKE_LOG" &
LIVE_SMOKE_PID=$!
LIVE_ADDR=""
for _ in $(seq 1 100); do
    LIVE_ADDR=$(sed -n 's#^serving metrics on http://\([^/]*\)/metrics.*#\1#p' "$LIVE_SMOKE_LOG")
    [ -n "$LIVE_ADDR" ] && break
    sleep 0.1
done
if [ -z "$LIVE_ADDR" ]; then
    echo "live smoke: server never announced an address" >&2
    cat "$LIVE_SMOKE_LOG" >&2
    exit 1
fi
./target/release/pipemap top --attach "$LIVE_ADDR" --once
./target/release/pipemap doctor --attach "$LIVE_ADDR" --model online > /dev/null
python3 - "$LIVE_ADDR" <<'EOF'
import json, sys, urllib.request
addr = sys.argv[1]
model = json.load(urllib.request.urlopen("http://%s/model.json" % addr, timeout=10))
assert model["model_schema"] == "pipemap-model/v1", model
assert model["journeys_ingested"] > 0, "observatory ingested no journeys"
assert model["stages"], "model published no stages"
for s in model["stages"]:
    for key in ("stage", "samples", "p", "mean_s", "drift", "fitted"):
        assert key in s, (key, s)
raw = urllib.request.urlopen("http://%s/events.jsonl" % addr, timeout=10).read()
lines = [json.loads(l) for l in raw.decode().splitlines() if l.strip()]
assert lines and lines[0].get("event_schema") == "pipemap-events/v1", lines[:1]
for e in lines[1:]:
    assert "kind" in e and "severity" in e and "t_us" in e, e
print("live smoke: %d stages modelled, %d events" % (len(model["stages"]), len(lines) - 1))
EOF
kill "$LIVE_SMOKE_PID" 2>/dev/null || true
wait "$LIVE_SMOKE_PID" 2>/dev/null || true

echo "== telemetry smoke: per-worker series over an observed uds load run =="
# The cross-process telemetry plane end to end: an observed uds load run
# (metrics server up) automatically lights the worker-side sidecar, so
# /metrics must carry per-pid worker families — items moved, CPU and RSS
# sampled from /proc, liveness — and `pipemap top` must render the
# per-process worker rows from the same snapshot. Both kernel-thread
# settings, like the uds smoke.
TELEM_SMOKE_LOG=$(mktemp /tmp/pipemap-telem-smoke.XXXXXX.log)
TELEM_SMOKE_TOP=$(mktemp /tmp/pipemap-telem-top.XXXXXX.txt)
for TELEM_THREADS in 1 4; do
    PIPEMAP_THREADS=$TELEM_THREADS ./target/release/pipemap load micro \
        --transport uds --datasets 20000 --threads "$TELEM_THREADS" \
        --serve 127.0.0.1:0 --hold 30 2> "$TELEM_SMOKE_LOG" &
    TELEM_SMOKE_PID=$!
    TELEM_ADDR=""
    for _ in $(seq 1 100); do
        TELEM_ADDR=$(sed -n 's#^serving metrics on http://\([^/]*\)/metrics.*#\1#p' "$TELEM_SMOKE_LOG")
        [ -n "$TELEM_ADDR" ] && break
        sleep 0.1
    done
    if [ -z "$TELEM_ADDR" ]; then
        echo "telemetry smoke: server never announced an address" >&2
        cat "$TELEM_SMOKE_LOG" >&2
        exit 1
    fi
    python3 - "$TELEM_ADDR" "$TELEM_THREADS" <<'EOF'
import sys, time, urllib.request
addr, threads = sys.argv[1], sys.argv[2]

def check():
    text = urllib.request.urlopen("http://%s/metrics" % addr, timeout=10).read().decode()
    lines = text.splitlines()
    def series(family):
        return [l for l in lines
                if l.startswith(family + "{") or l.startswith(family + "_total{")]
    items = series("pipemap_exec_worker_items")
    assert items, "no per-worker items series on /metrics"
    pids = {l.split('pid="')[1].split('"')[0] for l in items}
    assert len(pids) >= 2, "expected several worker pids, got %s" % pids
    moved = sum(float(l.rsplit(" ", 1)[1]) for l in items)
    assert moved > 0, "worker series report no items moved"
    for family in ("pipemap_exec_worker_cpu_pct", "pipemap_exec_worker_rss_bytes",
                   "pipemap_exec_worker_stale"):
        assert series(family), "missing %s series on /metrics" % family
    stale = [float(l.rsplit(" ", 1)[1]) for l in series("pipemap_exec_worker_stale")]
    assert all(s == 0.0 for s in stale), "clean run marked workers stale: %s" % stale
    return len(pids), moved

# The server announces before the datasets drain, so poll until the
# worker series settle instead of racing the run.
deadline = time.time() + 20
while True:
    try:
        npids, moved = check()
        break
    except AssertionError:
        if time.time() >= deadline:
            raise
        time.sleep(0.2)
print("telemetry smoke (threads=%s): %d worker pids, %d items via telemetry"
      % (threads, npids, moved))
EOF
    ./target/release/pipemap top --attach "$TELEM_ADDR" --once > "$TELEM_SMOKE_TOP"
    grep -q "workers (per process):" "$TELEM_SMOKE_TOP" || {
        echo "telemetry smoke: top rendered no worker rows" >&2
        cat "$TELEM_SMOKE_TOP" >&2
        exit 1
    }
    kill "$TELEM_SMOKE_PID" 2>/dev/null || true
    wait "$TELEM_SMOKE_PID" 2>/dev/null || true
done

echo "== bench-smoke: quick perf suite + schema check =="
BENCH_SMOKE_OUT=$(mktemp /tmp/pipemap-bench-smoke.XXXXXX.json)
./target/release/pipemap bench --quick --out "$BENCH_SMOKE_OUT"
./target/release/pipemap bench --validate "$BENCH_SMOKE_OUT"
# Compare against the committed baseline when one exists. Warn-only:
# the quick suite on arbitrary CI hardware is indicative, not a gate —
# the real gate is `pipemap bench --compare` on like-for-like machines.
if [ -f BENCH_baseline.json ]; then
    ./target/release/pipemap bench --warn-only \
        --compare BENCH_baseline.json --against "$BENCH_SMOKE_OUT"
fi

echo "CI OK"
