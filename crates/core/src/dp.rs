//! Optimal processor assignment by dynamic programming (§3.1–§3.2).
//!
//! Each task is its own module (no clustering); the algorithm finds the
//! per-task processor counts maximising throughput. The difficulty —
//! and the reason a simple "feed the slowest task" loop is not optimal —
//! is that a task's response time depends on the processor counts of its
//! *neighbours* through the external communication functions.
//!
//! ## Formulation
//!
//! Following the paper's Lemma 1, define
//!
//! ```text
//! V_j(p_total, p_last, p_next) =
//!     the best achievable bottleneck throughput over assignments of at
//!     most p_total processors to the subchain t_0..t_j, given that
//!     A(j) = p_last and the following task will receive p_next,
//! ```
//!
//! where the bottleneck includes the response of every task `t_0..t_j` —
//! the response of `t_j` itself is computable because `p_next` is part of
//! the state and the predecessor's count `q` is enumerated by the
//! recurrence:
//!
//! ```text
//! V_j(pt, pl, pn) = max_q min( V_{j-1}(pt − pl, q, pl),  1 / f_j(q, pl, pn) )
//! V_0(pt, pl, pn) = 1 / f_0(pl, pn)                       for pl ≤ pt
//! ```
//!
//! (The paper's function `F` excludes the last task's response and folds it
//! one level up; folding it at extension time when `q` is known is the same
//! computation.) Letting the base case accept `pl ≤ pt` implements the
//! "optimal assignment may not use all available processors" refinement:
//! slack is absorbed at the left end, and the value function is monotone in
//! `p_total` by induction.
//!
//! ## Replication (§3.2)
//!
//! With maximal replication, a task offered `p` processors runs
//! `r = ⌊p/p_min⌋` instances of `⌊p/r⌋` processors; every cost function is
//! evaluated at *instance* sizes and the response divides by `r`. The
//! tables in [`pipemap_chain::CostTable`] pre-compute the `p → (r, inst)`
//! map, so the recurrence is unchanged — exactly the paper's observation.
//!
//! ## Performance layer
//!
//! All knobs live on [`SolveOptions`] and change *nothing* about the
//! result (bit-identical throughput and assignment, see
//! `tests/equivalence.rs`):
//!
//! * **Dense tables** — inner loops index the flat rows/slabs of
//!   [`pipemap_model::DenseCostTable`] (via [`CostTable::dense`]); the
//!   predecessor scan over `q` walks the previous stage's value row and a
//!   pre-gathered `ecom` column contiguously.
//! * **Instance dedup** (`dedup`) — the `p_next` axis only distinguishes
//!   *instance sizes*: two successor offers with equal instance size are
//!   interchangeable for the subproblem. A replicable successor with floor
//!   1 collapses the whole axis to one slot.
//! * **Bound pruning** (`prune`) — the greedy heuristic's throughput is an
//!   admissible incumbent (its assignment is a feasible DP state, so the
//!   optimum is ≥ it). A cell whose single-task upper bound
//!   `1 / f_j(best ecom_in)` — or whose best reachable subchain value —
//!   falls below the incumbent cannot lie on the optimal path and is
//!   skipped; inner scans break once a cell reaches its own bound.
//! * **Parallel rows** (`par`) — each stage's `(pl)` rows are independent;
//!   [`crate::pool::run_strided`] computes them on scoped threads with
//!   per-thread buffers merged deterministically at the stage barrier.
//!
//! Complexity: `O(P⁴ k)` time worst case (the `pn` dimension of the final
//! stage is a single sentinel value, and per-stage work is
//! `pt × pl × pn × q ≤ P⁴`), `O(P² · slots)` memory per live stage.

use pipemap_chain::{Assignment, CostTable, Mapping, Problem};
use pipemap_model::Procs;

use crate::greedy;
use crate::options::SolveOptions;
use crate::pool::{self, CellStats};
use crate::provenance::{self, Provenance, StageCells};
use crate::solution::{Solution, SolveError};

/// Relative safety margin on the pruning incumbent: the greedy bound and
/// the DP cells accumulate the same three cost terms in different
/// association orders, so allow a few ulps of slack before declaring a
/// cell unreachable. Far larger than any association error, far smaller
/// than any real throughput gap.
const PRUNE_MARGIN: f64 = 1e-12;

/// Slot sentinel for "no entry" in a raw-offer → slot map.
const NO_SLOT: usize = usize::MAX;

/// The value + parent tables of one DP stage, kept for introspection
/// (Figure 4 of the paper illustrates exactly these subchain tables).
#[derive(Clone, Debug)]
pub struct DpStage {
    /// Task index `j` of this stage.
    pub task: usize,
    /// `value[(pt * nslots + slot) * P + (pl - 1)]` = best bottleneck
    /// throughput, or `f64::NEG_INFINITY` when the state is invalid. Use
    /// [`DpStage::get`] rather than indexing by hand: `slot` is the
    /// successor's axis slot (see module docs), not a raw `pn`.
    pub value: Vec<f64>,
    /// Parent table in the same layout: the maximising `q` (processors of
    /// task `j-1`).
    pub parent: Vec<u32>,
    /// Successor-axis width of this stage.
    nslots: usize,
    /// The problem's `P`.
    max_p: usize,
    /// Raw successor offer → axis slot; empty for the final (sentinel)
    /// stage.
    slot_of_raw: Vec<usize>,
}

impl DpStage {
    /// Value at `(p_total, p_last, p_next)`; `pn = 0` is the final stage's
    /// sentinel ("no next task"). Returns `-inf` for invalid states.
    pub fn get(&self, pt: usize, pl: usize, pn: usize) -> f64 {
        if pl < 1 || pl > self.max_p || pt > self.max_p {
            return f64::NEG_INFINITY;
        }
        let slot = if self.slot_of_raw.is_empty() {
            0 // sentinel stage: pn is ignored (the paper's φ)
        } else {
            match self.slot_of_raw.get(pn) {
                Some(&s) if s != NO_SLOT => s,
                _ => return f64::NEG_INFINITY,
            }
        };
        self.value[(pt * self.nslots + slot) * self.max_p + (pl - 1)]
    }
}

/// Introspection record of a DP run: per-stage tables plus the final
/// choice. Produced by [`dp_assignment_traced`].
#[derive(Clone, Debug)]
pub struct DpTrace {
    /// Stages in task order.
    pub stages: Vec<DpStage>,
    /// Chosen processors per task.
    pub assignment: Vec<Procs>,
    /// Optimal bottleneck throughput.
    pub throughput: f64,
    /// Per-stage cell statistics; populated only when
    /// [`SolveOptions::provenance`] is set.
    pub stage_cells: Vec<StageCells>,
    /// Total DP cells enumerated by this run (spliced-in stages of a
    /// warm-started run contribute nothing — this is the work actually
    /// done).
    pub cells: u64,
    /// Cells of that total skipped wholesale by pruning.
    pub cells_pruned: u64,
}

/// Warm-start state for [`run_dp_resumable`]: splice the retained tables
/// of a previous *unpruned, stage-keeping* solve for every stage left of
/// `frontier` and recompute only the invalidated suffix. The retained
/// prefix is exact (no `-inf` pruning holes), so a pruned suffix reading
/// it behaves exactly like a pruned cold solve: prefix cells below the
/// incumbent are floored out by the `sub <= best` skip instead of being
/// absent, which cannot change any on-path argmax (see `resolve.rs` for
/// the admissibility argument).
pub(crate) struct DpResume<'a> {
    /// First stage whose costs — or transitive inputs — changed; stages
    /// `0..frontier` are copied from `stages` verbatim.
    pub(crate) frontier: usize,
    /// Retained per-stage tables of the previous unpruned solve (all `k`).
    pub(crate) stages: &'a [DpStage],
    /// Admissible pruning incumbent in the DP's *internal* arithmetic
    /// (the previous optimum re-priced on the patched table), or
    /// `NEG_INFINITY` to fall back to the greedy bound.
    pub(crate) incumbent: f64,
}

/// The successor axis of one stage: which "next task offer" states are
/// distinguished. Entry `insts[slot]` is the successor's *instance* size
/// (0 = the "no next task" sentinel); `slot_of_raw[pn]` maps a raw
/// successor offer to its slot.
struct Axis {
    insts: Vec<Procs>,
    slot_of_raw: Vec<usize>,
}

impl Axis {
    fn sentinel() -> Self {
        Self {
            insts: vec![0],
            slot_of_raw: Vec::new(),
        }
    }

    /// Axis over the offers `floor..=p` of the task with instance map
    /// `inst_of`. With `dedup`, offers collapse to distinct instance
    /// sizes; otherwise every raw offer keeps its own slot (the faithful
    /// reference enumeration).
    fn for_task(inst_of: &[Procs], floor: Procs, p: Procs, dedup: bool) -> Self {
        let mut slot_of_raw = vec![NO_SLOT; p + 1];
        if dedup {
            let mut insts: Vec<Procs> = (floor..=p).map(|q| inst_of[q]).collect();
            insts.sort_unstable();
            insts.dedup();
            for q in floor..=p {
                slot_of_raw[q] = insts
                    .binary_search(&inst_of[q])
                    .expect("axis contains every instance size");
            }
            Self { insts, slot_of_raw }
        } else {
            let insts: Vec<Procs> = (floor..=p).map(|q| inst_of[q]).collect();
            for (slot, q) in (floor..=p).enumerate() {
                slot_of_raw[q] = slot;
            }
            Self { insts, slot_of_raw }
        }
    }

    fn len(&self) -> usize {
        self.insts.len()
    }
}

/// `1 / f_eff` with the conventions of the solvers: an infinitely slow
/// state contributes throughput 0 (dominated but legal), a zero-cost state
/// contributes `+inf`.
#[inline]
pub(crate) fn throughput_of(f_eff: f64) -> f64 {
    if f_eff.is_infinite() {
        if f_eff.is_sign_positive() {
            0.0
        } else {
            f64::NEG_INFINITY
        }
    } else if f_eff <= 0.0 {
        f64::INFINITY
    } else {
        1.0 / f_eff
    }
}

/// One computed stage row (a single `pl`), produced by a pool worker and
/// merged into the stage table at the barrier.
struct Row {
    /// `value[pt * nslots + slot]`.
    value: Vec<f64>,
    /// Same layout; empty for the base stage (no predecessor).
    parent: Vec<u32>,
    stats: CellStats,
}

pub(crate) fn run_dp(
    problem: &Problem,
    table: &CostTable,
    keep_stages: bool,
    opts: &SolveOptions,
) -> Result<DpTrace, SolveError> {
    run_dp_resumable(problem, table, keep_stages, opts, None)
}

pub(crate) fn run_dp_resumable(
    problem: &Problem,
    table: &CostTable,
    keep_stages: bool,
    opts: &SolveOptions,
    resume: Option<&DpResume<'_>>,
) -> Result<DpTrace, SolveError> {
    let rec = pipemap_obs::global();
    let _wall = rec.timer("solver.dp_assignment.wall_s");
    let _span = pipemap_obs::span!("dp_assignment", "solver");
    // Provenance harvesting reads the winning path back out of the stage
    // tables, so recording implies keeping them.
    let keep_stages = keep_stages || opts.provenance;

    let k = problem.num_tasks();
    let p = problem.total_procs;
    let dense = table.dense();

    let floors: Vec<Procs> = (0..k)
        .map(|i| problem.task_floor(i).ok_or(SolveError::Infeasible))
        .collect::<Result<_, _>>()?;
    if floors.iter().sum::<Procs>() > p {
        return Err(SolveError::Infeasible);
    }

    // Replication maps per task: offer → (instance size, instance count).
    let mut inst_of: Vec<Vec<Procs>> = vec![vec![0; p + 1]; k];
    let mut r_of: Vec<Vec<f64>> = vec![vec![0.0; p + 1]; k];
    for i in 0..k {
        for q in floors[i]..=p {
            let rep = table
                .module_replication(i, i, q)
                .expect("offer >= floor implies a replication exists");
            inst_of[i][q] = rep.procs_per_instance;
            r_of[i][q] = rep.instances as f64;
        }
    }

    // Successor axis of each stage.
    let axes: Vec<Axis> = (0..k)
        .map(|j| {
            if j + 1 == k {
                Axis::sentinel()
            } else {
                Axis::for_task(&inst_of[j + 1], floors[j + 1], p, opts.dedup)
            }
        })
        .collect();

    // Pruning incumbent: the greedy assignment is a feasible DP state
    // computed with the *same* response arithmetic, so the DP optimum is
    // ≥ its throughput — an admissible bound. A warm-started run may carry
    // its own incumbent (the previous optimum re-priced, also a feasible
    // state); both are admissible, so take whichever is tighter — after a
    // drift *on* the old bottleneck the old path's value can fall well
    // below what a fresh greedy finds.
    let bound = if opts.prune {
        let mut inc = greedy::incumbent_throughput(problem, table);
        if let Some(res) = resume {
            if res.incumbent.is_finite() && res.incumbent > inc {
                inc = res.incumbent;
            }
        }
        if inc.is_finite() && inc > 0.0 {
            inc * (1.0 - PRUNE_MARGIN)
        } else {
            f64::NEG_INFINITY
        }
    } else {
        f64::NEG_INFINITY
    };

    let threads = if opts.par {
        pool::thread_limit(opts.threads)
    } else {
        1
    };

    let mut stages: Vec<DpStage> = Vec::new();
    let mut all_parents: Vec<Vec<u32>> = Vec::new();
    let mut prev_value: Vec<f64> = Vec::new();
    let mut prev_rowmax: Vec<f64> = Vec::new();
    let mut totals = CellStats::default();
    let mut stage_cells: Vec<StageCells> = Vec::new();

    for j in 0..k {
        // Warm start: stages left of the invalidation frontier are exact
        // on the patched table — splice the retained tables instead of
        // recomputing them. Rebuilding rowmax at the frontier boundary
        // uses the identical fold as the cold path below.
        if let Some(res) = resume {
            if j < res.frontier {
                let st = &res.stages[j];
                if keep_stages {
                    stages.push(st.clone());
                }
                all_parents.push(st.parent.clone());
                if opts.provenance {
                    stage_cells.push(StageCells {
                        stage: j,
                        cells: 0,
                        pruned: 0,
                        lookups: 0,
                        skips: 0,
                    });
                }
                if j + 1 == res.frontier {
                    prev_value = st.value.clone();
                    if opts.prune {
                        let nslots = st.nslots;
                        let mut rowmax = vec![f64::NEG_INFINITY; (p + 1) * nslots];
                        for (i, m) in rowmax.iter_mut().enumerate() {
                            *m = st.value[i * p..(i + 1) * p]
                                .iter()
                                .fold(f64::NEG_INFINITY, |a, &b| a.max(b));
                        }
                        prev_rowmax = rowmax;
                    }
                }
                continue;
            }
        }
        let axis = &axes[j];
        let nslots = axis.len();
        let nslots_prev = if j > 0 { axes[j - 1].len() } else { 0 };
        let floor = floors[j];
        let rows = p - floor + 1;
        let out_slab = if j + 1 < k {
            Some(dense.ecom_slab(j))
        } else {
            None
        };

        // Pre-gather incoming-transfer columns, one per distinct instance
        // size of task j: eincol[q - 1] = ecom(j-1, inst_{j-1}(q), inst).
        // The q scan then walks both the previous value row and this
        // column contiguously. The paired scalar is the column minimum
        // over feasible q (for the cell's single-task bound).
        let mut eincols: Vec<Option<(Vec<f64>, f64)>> = vec![None; p + 1];
        if j > 0 {
            let in_slab = dense.ecom_slab(j - 1);
            for pl in floor..=p {
                let inst = inst_of[j][pl];
                if eincols[inst].is_some() {
                    continue;
                }
                let mut col = vec![f64::INFINITY; p];
                let mut min = f64::INFINITY;
                for q in floors[j - 1]..=p {
                    let c = in_slab[(inst_of[j - 1][q] - 1) * p + (inst - 1)];
                    col[q - 1] = c;
                    if c < min {
                        min = c;
                    }
                }
                eincols[inst] = Some((col, min));
            }
        }

        // Fewest successor processors mapping to each slot, for the
        // structural reachability prune (see the worker); empty when
        // unused.
        let min_raw: Vec<usize> = if opts.prune && j + 1 < k {
            let mut m = vec![usize::MAX; nslots];
            for q in 1..=p {
                let s = axis.slot_of_raw[q];
                if s != NO_SLOT && q < m[s] {
                    m[s] = q;
                }
            }
            m
        } else {
            Vec::new()
        };

        let worker = |ri: usize| -> Row {
            let pl = floor + ri;
            let inst = inst_of[j][pl];
            let r = r_of[j][pl];
            let e = dense.exec(j, inst);
            let mut value = vec![f64::NEG_INFINITY; (p + 1) * nslots];
            let mut parent = vec![0u32; if j == 0 { 0 } else { (p + 1) * nslots }];
            let mut st = CellStats::default();
            let (ein_col, ein_min) = if j > 0 {
                let (col, min) = eincols[inst]
                    .as_ref()
                    .expect("column built for every offer");
                (&col[..], *min)
            } else {
                (&[][..], 0.0)
            };
            let slot_prev = if j > 0 {
                axes[j - 1].slot_of_raw[pl]
            } else {
                NO_SLOT
            };

            for (s, &ne_inst) in axis.insts.iter().enumerate() {
                let eout = match out_slab {
                    Some(slab) if ne_inst != 0 => slab[(inst - 1) * p + (ne_inst - 1)],
                    _ => 0.0,
                };
                let nominal = (p + 1 - pl) as u64;
                // Structural reachability (the other half of `prune`): a
                // successor row reading this slot holds `min_raw[s]`
                // processors of its own, and the final stage is read by
                // the terminal scan at pt = P only — cells outside
                // [lo, hi] are never read by anything, so skipping them
                // is exact even without an incumbent.
                let (lo, hi) = if !opts.prune {
                    (pl, p)
                } else if j + 1 == k {
                    (p, p)
                } else {
                    (pl, p - min_raw[s].min(p))
                };
                if j == 0 {
                    // Base case: the response depends on (pl, slot) only.
                    let own = throughput_of((e + eout) / r);
                    st.cells += nominal;
                    if opts.prune && own < bound {
                        st.cells_pruned += nominal;
                        continue; // below the incumbent: never optimal
                    }
                    if hi < lo {
                        st.cells_pruned += nominal;
                        continue;
                    }
                    st.cells_pruned += nominal - (hi - lo + 1) as u64;
                    for pt in lo..=hi {
                        value[pt * nslots + s] = own;
                    }
                    continue;
                }
                // Upper bound on any candidate's own term: best possible
                // incoming transfer. If even that misses the incumbent,
                // the whole (pl, slot) row is off the optimal path.
                let cap = throughput_of(((e + ein_min) + eout) / r);
                st.cells += nominal;
                if opts.prune && cap < bound {
                    st.cells_pruned += nominal;
                    continue;
                }
                if hi < lo {
                    st.cells_pruned += nominal;
                    continue;
                }
                st.cells_pruned += nominal - (hi - lo + 1) as u64;
                let pfloor = floors[j - 1];
                for pt in lo..=hi {
                    let budget = pt - pl;
                    if budget < pfloor {
                        continue; // no feasible predecessor: stays -inf
                    }
                    let row_base = (budget * nslots_prev + slot_prev) * p;
                    if opts.prune && prev_rowmax[budget * nslots_prev + slot_prev] < bound {
                        // No reachable subchain value meets the incumbent.
                        st.cells_pruned += 1;
                        continue;
                    }
                    let prev_row = &prev_value[row_base..row_base + p];
                    // Start the running best at the pruning bound (`-∞`
                    // when pruning is off): sub-incumbent candidates can
                    // never sit on the optimal chain, so the `sub ≤ best`
                    // skip may drop them wholesale — the cell merely
                    // becomes `-∞` instead of carrying a value that is
                    // never reconstructed.
                    let mut best = bound;
                    let mut updated = false;
                    let mut best_q = 0u32;
                    for q in pfloor..=budget {
                        st.lookups += 1;
                        let sub = prev_row[q - 1];
                        if sub <= best {
                            st.qskips += 1;
                            continue; // min(sub, _) ≤ sub ≤ best
                        }
                        let own = throughput_of(((e + ein_col[q - 1]) + eout) / r);
                        let cand = sub.min(own);
                        if cand > best {
                            best = cand;
                            updated = true;
                            best_q = q as u32;
                            if opts.prune && best >= cap {
                                // Ties can't displace the first argmax
                                // (strict update), so nothing after this
                                // candidate changes the cell.
                                break;
                            }
                        }
                    }
                    value[pt * nslots + s] = if updated { best } else { f64::NEG_INFINITY };
                    parent[pt * nslots + s] = best_q;
                }
            }
            Row {
                value,
                parent,
                stats: st,
            }
        };

        let computed = pool::run_strided(threads, rows, worker);

        // Stage barrier: merge per-row buffers into the stage tables.
        let mut value = vec![f64::NEG_INFINITY; (p + 1) * nslots * p];
        let mut parent = vec![0u32; if j == 0 { 0 } else { (p + 1) * nslots * p }];
        let mut stage_st = CellStats::default();
        for (ri, row) in computed.into_iter().enumerate() {
            let pl = floor + ri;
            for pt in 0..=p {
                for s in 0..nslots {
                    let src = pt * nslots + s;
                    let dst = src * p + (pl - 1);
                    value[dst] = row.value[src];
                    if j > 0 {
                        parent[dst] = row.parent[src];
                    }
                }
            }
            stage_st.absorb(&row.stats);
        }
        totals.absorb(&stage_st);
        if opts.provenance {
            stage_cells.push(StageCells {
                stage: j,
                cells: stage_st.cells,
                pruned: stage_st.cells_pruned,
                lookups: stage_st.lookups,
                skips: stage_st.qskips,
            });
        }
        if opts.prune {
            // Row maxima over pl, used by the next stage's cell bound.
            let mut rowmax = vec![f64::NEG_INFINITY; (p + 1) * nslots];
            for (i, m) in rowmax.iter_mut().enumerate() {
                *m = value[i * p..(i + 1) * p]
                    .iter()
                    .fold(f64::NEG_INFINITY, |a, &b| a.max(b));
            }
            prev_rowmax = rowmax;
        }
        if keep_stages {
            stages.push(DpStage {
                task: j,
                value: value.clone(),
                parent: parent.clone(),
                nslots,
                max_p: p,
                slot_of_raw: axis.slot_of_raw.clone(),
            });
        }
        all_parents.push(parent);
        prev_value = value;
    }

    rec.add("solver.dp_assignment.cells", totals.cells);
    rec.add("solver.dp_assignment.lookups", totals.lookups);
    rec.add("solver.dp_assignment.pruned", totals.qskips);
    rec.add(pipemap_obs::names::SOLVER_CELLS_TOTAL, totals.cells);
    rec.add(pipemap_obs::names::SOLVER_CELLS_PRUNED, totals.cells_pruned);

    // Answer: best over pl of V_{k-1}(P, pl, φ); ties prefer fewer procs.
    // The final stage has the single sentinel slot.
    let mut best = f64::NEG_INFINITY;
    let mut best_pl = 0usize;
    for pl in floors[k - 1]..=p {
        let v = prev_value[p * p + (pl - 1)]; // (pt = P, slot 0) row
        if v > best {
            best = v;
            best_pl = pl;
        }
    }
    if best == f64::NEG_INFINITY {
        return Err(SolveError::Infeasible);
    }

    // Reconstruct right-to-left.
    let mut assignment = vec![0usize; k];
    let mut pt = p;
    let mut pl = best_pl;
    let mut slot = 0usize; // sentinel slot of the final stage
    for j in (0..k).rev() {
        assignment[j] = pl;
        if j > 0 {
            let nslots = axes[j].len();
            let q = all_parents[j][(pt * nslots + slot) * p + (pl - 1)] as usize;
            pt -= pl;
            slot = axes[j - 1].slot_of_raw[pl];
            pl = q;
        }
    }

    Ok(DpTrace {
        stages,
        assignment,
        throughput: best,
        stage_cells,
        cells: totals.cells,
        cells_pruned: totals.cells_pruned,
    })
}

/// [`run_dp`] with a defensive retry: if the pruned run reports
/// infeasibility (mathematically impossible when the incumbent is
/// admissible, but cheap to guard), rerun without pruning. The retry keeps
/// the warm-start splice — retained prefixes are exact regardless of
/// pruning.
pub(crate) fn run_dp_with_fallback(
    problem: &Problem,
    table: &CostTable,
    keep_stages: bool,
    opts: &SolveOptions,
    resume: Option<&DpResume<'_>>,
) -> Result<DpTrace, SolveError> {
    match run_dp_resumable(problem, table, keep_stages, opts, resume) {
        Err(SolveError::Infeasible) if opts.prune => {
            let unpruned = SolveOptions {
                prune: false,
                ..*opts
            };
            run_dp_resumable(problem, table, keep_stages, &unpruned, resume)
        }
        r => r,
    }
}

/// Optimal processor assignment for the unclustered problem: each task its
/// own module, replication per the problem's policy. Returns the optimal
/// [`Solution`] (throughput recomputed by the evaluator) and the chosen
/// per-task processor counts. Uses the default performance options; see
/// [`dp_assignment_with`].
pub fn dp_assignment(problem: &Problem) -> Result<(Solution, Assignment), SolveError> {
    dp_assignment_with(problem, &SolveOptions::default())
}

/// [`dp_assignment`] with explicit [`SolveOptions`]. Every option
/// combination returns bit-identical results; the options only trade
/// wall-clock time.
pub fn dp_assignment_with(
    problem: &Problem,
    opts: &SolveOptions,
) -> Result<(Solution, Assignment), SolveError> {
    let table = CostTable::build(problem);
    let trace = run_dp_with_fallback(problem, &table, false, opts, None)?;
    let assignment = Assignment(trace.assignment.clone());
    let mapping: Mapping = assignment
        .to_mapping(problem)
        .expect("DP respects per-task floors");
    let solution = Solution::from_mapping(problem, mapping);
    debug_assert!(
        (solution.throughput - trace.throughput).abs() <= 1e-9 * trace.throughput.abs().max(1.0)
            || (solution.throughput.is_infinite() && trace.throughput.is_infinite()),
        "DP internal value {} disagrees with evaluator {}",
        trace.throughput,
        solution.throughput
    );
    Ok((solution, assignment))
}

/// [`dp_assignment`] keeping every stage table for inspection (Figure 4).
/// Runs the reference enumeration so the tables cover every raw
/// `(pt, pl, pn)` state.
pub fn dp_assignment_traced(problem: &Problem) -> Result<DpTrace, SolveError> {
    let table = CostTable::build(problem);
    run_dp(problem, &table, true, &SolveOptions::reference())
}

/// [`dp_assignment`] recording full decision provenance: the winning DP
/// path (one [`crate::provenance::DecisionCell`] per task, with runner-up
/// predecessors) and per-stage cell statistics. Forces the unpruned scan
/// so runner-up values are exact — a pruned scan drops sub-incumbent
/// candidates wholesale (see [`SolveOptions::provenance`]); `par`, `dedup`
/// and `threads` are honoured as given. Results are bit-identical to
/// [`dp_assignment_with`].
pub fn dp_assignment_provenance(
    problem: &Problem,
    opts: &SolveOptions,
) -> Result<(Solution, Assignment, Provenance), SolveError> {
    let table = CostTable::build(problem);
    dp_assignment_provenance_on(problem, &table, opts)
}

/// [`dp_assignment_provenance`] against a caller-supplied cost table (e.g.
/// a [`crate::dp_cluster::SolveCtx`]'s), so multi-entry-point callers like
/// `pipemap explain` build the dense table once.
pub fn dp_assignment_provenance_on(
    problem: &Problem,
    table: &CostTable,
    opts: &SolveOptions,
) -> Result<(Solution, Assignment, Provenance), SolveError> {
    let opts = SolveOptions {
        prune: false,
        provenance: true,
        ..*opts
    };
    let trace = run_dp(problem, table, true, &opts)?;
    let prov = provenance::harvest_assignment(problem, table, &trace);
    let assignment = Assignment(trace.assignment.clone());
    let mapping: Mapping = assignment
        .to_mapping(problem)
        .expect("DP respects per-task floors");
    let solution = Solution::from_mapping(problem, mapping);
    Ok((solution, assignment, prov))
}

/// Per-stage cell statistics of a *pruned* assignment solve — the "what
/// did pruning skip" half of the `pipemap explain` heatmap (the exact
/// half comes from [`dp_assignment_provenance`]'s unpruned counts). The
/// solve itself is bit-identical to [`dp_assignment_with`]; only the
/// statistics are kept.
pub fn dp_assignment_pruned_stats(
    problem: &Problem,
    opts: &SolveOptions,
) -> Result<Vec<StageCells>, SolveError> {
    let table = CostTable::build(problem);
    dp_assignment_pruned_stats_on(problem, &table, opts)
}

/// [`dp_assignment_pruned_stats`] against a caller-supplied cost table.
pub fn dp_assignment_pruned_stats_on(
    problem: &Problem,
    table: &CostTable,
    opts: &SolveOptions,
) -> Result<Vec<StageCells>, SolveError> {
    let opts = SolveOptions {
        prune: true,
        provenance: true,
        ..*opts
    };
    let trace = run_dp_with_fallback(problem, table, false, &opts, None)?;
    Ok(trace.stage_cells)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipemap_chain::{throughput, ChainBuilder, Edge, Task};
    use pipemap_model::{MemoryReq, PolyEcom, PolyUnary};

    fn simple_chain(work: &[f64]) -> pipemap_chain::TaskChain {
        let mut b =
            ChainBuilder::new().task(Task::new("t0", PolyUnary::perfectly_parallel(work[0])));
        for (i, &w) in work.iter().enumerate().skip(1) {
            b = b
                .edge(Edge::free())
                .task(Task::new(format!("t{i}"), PolyUnary::perfectly_parallel(w)));
        }
        b.build()
    }

    #[test]
    fn single_task_uses_all_procs() {
        let p = Problem::new(simple_chain(&[8.0]), 4, 1e9).without_replication();
        let (s, a) = dp_assignment(&p).unwrap();
        assert_eq!(a.0, vec![4]);
        assert!((s.throughput - 0.5).abs() < 1e-12);
    }

    #[test]
    fn balanced_split_no_comm() {
        // Two identical perfectly-parallel tasks, no comm: split in half.
        let p = Problem::new(simple_chain(&[8.0, 8.0]), 8, 1e9).without_replication();
        let (s, a) = dp_assignment(&p).unwrap();
        assert_eq!(a.0, vec![4, 4]);
        assert!((s.throughput - 0.5).abs() < 1e-12);
    }

    #[test]
    fn proportional_split_no_comm() {
        // Work 12 vs 4 on 8 procs: best is 6/2 (bottleneck 2.0).
        let p = Problem::new(simple_chain(&[12.0, 4.0]), 8, 1e9).without_replication();
        let (s, a) = dp_assignment(&p).unwrap();
        assert_eq!(a.0, vec![6, 2]);
        assert!((s.throughput - 0.5).abs() < 1e-12);
    }

    #[test]
    fn may_leave_processors_idle() {
        // Fixed-cost task plus an overhead-heavy task: extra processors on
        // the second task only hurt. f1(p) = 1 + p/10: best at p = 1.
        let c = ChainBuilder::new()
            .task(Task::new("a", PolyUnary::new(2.0, 0.0, 0.0)))
            .edge(Edge::free())
            .task(Task::new("b", PolyUnary::new(0.0, 1.0, 0.1)))
            .build();
        let p = Problem::new(c, 16, 1e9).without_replication();
        let (s, a) = dp_assignment(&p).unwrap();
        // Task a: any count, 2.0. Task b: minimum at sqrt(1/0.1) ≈ 3;
        // f(3) = 1/3 + 0.3 = 0.633. Bottleneck is a at 2.0 regardless, so
        // anything with b's response ≤ 2 is optimal; throughput 0.5.
        assert!((s.throughput - 0.5).abs() < 1e-12);
        assert!(a.total() <= 16);
    }

    #[test]
    fn comm_aware_beats_comm_blind() {
        // Strong ecom penalty growing with sender procs: the optimum gives
        // the sender fewer processors than a comm-blind balance would.
        let c = ChainBuilder::new()
            .task(Task::new("a", PolyUnary::perfectly_parallel(8.0)))
            .edge(Edge::new(
                PolyUnary::zero(),
                PolyEcom::new(0.0, 0.0, 0.0, 0.5, 0.0),
            ))
            .task(Task::new("b", PolyUnary::perfectly_parallel(8.0)))
            .build();
        let p = Problem::new(c, 8, 1e9).without_replication();
        let (s, a) = dp_assignment(&p).unwrap();
        // Check optimality against explicit enumeration.
        let mut best = 0.0_f64;
        for pa in 1..=7usize {
            for pb in 1..=(8 - pa) {
                let m = Mapping::task_parallel(&[pa, pb]);
                best = best.max(throughput(&p.chain, &m));
            }
        }
        assert!((s.throughput - best).abs() < 1e-9);
        assert!(a.total() <= 8);
        // The ecom penalty (0.5·ps on both endpoints) caps the useful
        // sender size: a naive "all processors help" split of 8 would use
        // them all, but responses at [4,4] are 8/4 + 0.5·4 = 4.0 and any
        // larger sender is strictly worse on both tasks.
        assert!(a.procs(0) <= 4, "sender overallocated: {:?}", a.0);
    }

    #[test]
    fn replication_boosts_throughput() {
        // One task, fixed response 1s, floor 1: with replication on 8
        // procs → 8 instances → throughput 8.
        let c = ChainBuilder::new()
            .task(Task::new("t", PolyUnary::new(1.0, 0.0, 0.0)))
            .build();
        let with_rep = Problem::new(c.clone(), 8, 1e9);
        let (s, _) = dp_assignment(&with_rep).unwrap();
        assert!((s.throughput - 8.0).abs() < 1e-9);
        let without = Problem::new(c, 8, 1e9).without_replication();
        let (s2, _) = dp_assignment(&without).unwrap();
        assert!((s2.throughput - 1.0).abs() < 1e-9);
    }

    #[test]
    fn memory_floor_respected() {
        let c = ChainBuilder::new()
            .task(
                Task::new("a", PolyUnary::perfectly_parallel(4.0))
                    .with_memory(MemoryReq::new(0.0, 30.0)),
            )
            .edge(Edge::free())
            .task(Task::new("b", PolyUnary::perfectly_parallel(4.0)))
            .build();
        let p = Problem::new(c, 8, 10.0).without_replication(); // floor a = 3
        let (_, a) = dp_assignment(&p).unwrap();
        assert!(a.procs(0) >= 3);
    }

    #[test]
    fn infeasible_when_floors_exceed_budget() {
        let c = ChainBuilder::new()
            .task(Task::new("a", PolyUnary::zero()).with_memory(MemoryReq::new(0.0, 50.0)))
            .edge(Edge::free())
            .task(Task::new("b", PolyUnary::zero()).with_memory(MemoryReq::new(0.0, 50.0)))
            .build();
        let p = Problem::new(c, 8, 10.0); // floors 5 + 5 > 8
        assert_eq!(dp_assignment(&p).unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn infeasible_when_task_never_fits() {
        let c = ChainBuilder::new()
            .task(Task::new("a", PolyUnary::zero()).with_memory(MemoryReq::new(20.0, 0.0)))
            .build();
        let p = Problem::new(c, 8, 10.0);
        assert_eq!(dp_assignment(&p).unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn trace_exposes_stages() {
        let p = Problem::new(simple_chain(&[4.0, 4.0]), 4, 1e9).without_replication();
        let t = dp_assignment_traced(&p).unwrap();
        assert_eq!(t.stages.len(), 2);
        assert_eq!(t.assignment.len(), 2);
        assert_eq!(t.stages[0].task, 0);
        // The final stage's best value matches the reported throughput.
        assert!(t.throughput > 0.0);
        // The sentinel-stage accessor agrees with the answer: the best
        // get(P, pl, 0) over pl equals the optimum.
        let best = (1..=4)
            .map(|pl| t.stages[1].get(4, pl, 0))
            .fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(best, t.throughput);
    }

    #[test]
    fn option_combinations_agree_exactly() {
        let c = ChainBuilder::new()
            .task(Task::new("a", PolyUnary::new(0.1, 6.0, 0.02)))
            .edge(Edge::new(
                PolyUnary::zero(),
                PolyEcom::new(0.2, 1.0, 1.0, 0.05, 0.05),
            ))
            .task(Task::new("b", PolyUnary::new(0.0, 10.0, 0.01)))
            .edge(Edge::new(
                PolyUnary::zero(),
                PolyEcom::new(0.1, 0.5, 0.5, 0.02, 0.02),
            ))
            .task(Task::new("c", PolyUnary::perfectly_parallel(3.0)))
            .build();
        let p = Problem::new(c, 24, 1e9);
        let (reference, ra) = dp_assignment_with(&p, &SolveOptions::reference()).unwrap();
        for opts in [
            SolveOptions::default(),
            SolveOptions {
                par: false,
                ..SolveOptions::default()
            },
            SolveOptions {
                prune: false,
                ..SolveOptions::default()
            },
            SolveOptions {
                dedup: false,
                ..SolveOptions::default()
            },
            SolveOptions::with_threads(4),
        ] {
            let (s, a) = dp_assignment_with(&p, &opts).unwrap();
            assert_eq!(
                s.throughput.to_bits(),
                reference.throughput.to_bits(),
                "options {opts:?} changed the optimum"
            );
            assert_eq!(a.0, ra.0, "options {opts:?} changed the assignment");
        }
    }

    #[test]
    fn three_task_chain_with_comm_is_optimal_vs_enumeration() {
        let c = ChainBuilder::new()
            .task(Task::new("a", PolyUnary::perfectly_parallel(6.0)))
            .edge(Edge::new(
                PolyUnary::zero(),
                PolyEcom::new(0.2, 1.0, 1.0, 0.05, 0.05),
            ))
            .task(Task::new("b", PolyUnary::perfectly_parallel(10.0)))
            .edge(Edge::new(
                PolyUnary::zero(),
                PolyEcom::new(0.1, 0.5, 0.5, 0.02, 0.02),
            ))
            .task(Task::new("c", PolyUnary::perfectly_parallel(3.0)))
            .build();
        let p = Problem::new(c, 12, 1e9).without_replication();
        let (s, _) = dp_assignment(&p).unwrap();
        let mut best = 0.0_f64;
        for pa in 1..=12usize {
            for pb in 1..=12usize {
                for pc in 1..=12usize {
                    if pa + pb + pc > 12 {
                        continue;
                    }
                    let m = Mapping::task_parallel(&[pa, pb, pc]);
                    best = best.max(throughput(&p.chain, &m));
                }
            }
        }
        assert!(
            (s.throughput - best).abs() < 1e-9,
            "dp {} vs enumeration {}",
            s.throughput,
            best
        );
    }
}
