//! Optimal processor assignment by dynamic programming (§3.1–§3.2).
//!
//! Each task is its own module (no clustering); the algorithm finds the
//! per-task processor counts maximising throughput. The difficulty —
//! and the reason a simple "feed the slowest task" loop is not optimal —
//! is that a task's response time depends on the processor counts of its
//! *neighbours* through the external communication functions.
//!
//! ## Formulation
//!
//! Following the paper's Lemma 1, define
//!
//! ```text
//! V_j(p_total, p_last, p_next) =
//!     the best achievable bottleneck throughput over assignments of at
//!     most p_total processors to the subchain t_0..t_j, given that
//!     A(j) = p_last and the following task will receive p_next,
//! ```
//!
//! where the bottleneck includes the response of every task `t_0..t_j` —
//! the response of `t_j` itself is computable because `p_next` is part of
//! the state and the predecessor's count `q` is enumerated by the
//! recurrence:
//!
//! ```text
//! V_j(pt, pl, pn) = max_q min( V_{j-1}(pt − pl, q, pl),  1 / f_j(q, pl, pn) )
//! V_0(pt, pl, pn) = 1 / f_0(pl, pn)                       for pl ≤ pt
//! ```
//!
//! (The paper's function `F` excludes the last task's response and folds it
//! one level up; folding it at extension time when `q` is known is the same
//! computation.) Letting the base case accept `pl ≤ pt` implements the
//! "optimal assignment may not use all available processors" refinement:
//! slack is absorbed at the left end, and the value function is monotone in
//! `p_total` by induction.
//!
//! ## Replication (§3.2)
//!
//! With maximal replication, a task offered `p` processors runs
//! `r = ⌊p/p_min⌋` instances of `⌊p/r⌋` processors; every cost function is
//! evaluated at *instance* sizes and the response divides by `r`. The
//! tables in [`pipemap_chain::CostTable`] pre-compute the `p → (r, inst)`
//! map, so the recurrence is unchanged — exactly the paper's observation.
//!
//! Complexity: `O(P⁴ k)` time (the `pn` dimension of the final stage is a
//! single sentinel value, and per-stage work is `pt × pl × pn × q ≤ P⁴`),
//! `O(P³)` memory (two live stages).

use pipemap_chain::{Assignment, CostTable, Mapping, Problem};
use pipemap_model::Procs;

use crate::solution::{Solution, SolveError};

/// The value + parent tables of one DP stage, kept for introspection
/// (Figure 4 of the paper illustrates exactly these subchain tables).
#[derive(Clone, Debug)]
pub struct DpStage {
    /// Task index `j` of this stage.
    pub task: usize,
    /// `value[idx(pt, pl, pn)]` = best bottleneck throughput, or
    /// `f64::NEG_INFINITY` when the state is invalid.
    pub value: Vec<f64>,
    /// `parent[idx]` = the maximising `q` (processors of task `j-1`).
    pub parent: Vec<u32>,
}

/// Introspection record of a DP run: per-stage tables plus the final
/// choice. Produced by [`dp_assignment_traced`].
#[derive(Clone, Debug)]
pub struct DpTrace {
    /// Stages in task order.
    pub stages: Vec<DpStage>,
    /// Chosen processors per task.
    pub assignment: Vec<Procs>,
    /// Optimal bottleneck throughput.
    pub throughput: f64,
}

struct Dims {
    p: usize,
}

impl Dims {
    #[inline]
    fn idx(&self, pt: usize, pl: usize, pn: usize) -> usize {
        debug_assert!(pt <= self.p && pl <= self.p && pn <= self.p);
        (pt * (self.p + 1) + pl) * (self.p + 1) + pn
    }

    fn len(&self) -> usize {
        (self.p + 1) * (self.p + 1) * (self.p + 1)
    }
}

/// Sentinel `pn` index meaning "no next task" (the paper's φ).
const NO_NEXT: usize = 0;

/// Throughput contribution of task `j` when offered `pl` processors, its
/// predecessor `q` (0 = none) and successor `pn` (0 = none): `1 / f_j`
/// with `f_j` the replication-adjusted response. Returns 0.0 when the
/// response is infinite (below floor).
#[inline]
fn task_throughput(table: &CostTable, j: usize, q: usize, pl: usize, pn: usize) -> f64 {
    let prev_inst = if q == 0 {
        None
    } else {
        match table.task_instance_procs(j - 1, q) {
            Some(i) => Some(i),
            None => return f64::NEG_INFINITY, // predecessor below floor
        }
    };
    let next_inst = if pn == 0 {
        None
    } else {
        match table.task_instance_procs(j + 1, pn) {
            Some(i) => Some(i),
            None => return f64::NEG_INFINITY,
        }
    };
    let f = table.task_effective_response(j, pl, prev_inst, next_inst);
    if f.is_infinite() {
        if f.is_sign_positive() {
            0.0 // valid state, infinitely slow — dominated but not illegal
        } else {
            f64::NEG_INFINITY
        }
    } else if f <= 0.0 {
        f64::INFINITY // zero-cost task
    } else {
        1.0 / f
    }
}

fn run_dp(problem: &Problem, table: &CostTable, keep_stages: bool) -> Result<DpTrace, SolveError> {
    let rec = pipemap_obs::global();
    let _wall = rec.timer("solver.dp_assignment.wall_s");
    let _span = pipemap_obs::span!("dp_assignment", "solver");
    // Hot-loop counters accumulate locally and publish once at the end,
    // so instrumentation adds no atomics to the recurrence itself.
    let mut n_cells: u64 = 0;
    let mut n_lookups: u64 = 0;
    let mut n_pruned: u64 = 0;

    let k = problem.num_tasks();
    let p = problem.total_procs;
    let dims = Dims { p };

    let floors: Vec<Procs> = (0..k)
        .map(|i| problem.task_floor(i).ok_or(SolveError::Infeasible))
        .collect::<Result<_, _>>()?;
    if floors.iter().sum::<Procs>() > p {
        return Err(SolveError::Infeasible);
    }

    // pn values that matter for stage j: the sentinel for the last stage,
    // the successor's feasible range otherwise.
    let pn_range = |j: usize| -> Vec<usize> {
        if j + 1 == k {
            vec![NO_NEXT]
        } else {
            (floors[j + 1]..=p).collect()
        }
    };

    let mut stages: Vec<DpStage> = Vec::new();
    let mut prev_value: Vec<f64> = Vec::new();
    let mut all_parents: Vec<Vec<u32>> = Vec::new();

    for j in 0..k {
        let mut value = vec![f64::NEG_INFINITY; dims.len()];
        let mut parent = vec![0u32; dims.len()];
        let pns = pn_range(j);
        for pt in floors[j]..=p {
            for pl in floors[j]..=pt {
                for &pn in &pns {
                    n_cells += 1;
                    let v = if j == 0 {
                        task_throughput(table, 0, 0, pl, pn)
                    } else {
                        // Enumerate the predecessor's processors q.
                        let budget = pt - pl;
                        let mut best = f64::NEG_INFINITY;
                        let mut best_q = 0u32;
                        for q in floors[j - 1]..=budget {
                            n_lookups += 1;
                            let sub = prev_value[dims.idx(budget, q, pl)];
                            if sub <= best {
                                n_pruned += 1;
                                continue; // min(sub, _) ≤ sub ≤ best
                            }
                            let own = task_throughput(table, j, q, pl, pn);
                            let cand = sub.min(own);
                            if cand > best {
                                best = cand;
                                best_q = q as u32;
                            }
                        }
                        parent[dims.idx(pt, pl, pn)] = best_q;
                        best
                    };
                    value[dims.idx(pt, pl, pn)] = v;
                }
            }
        }
        all_parents.push(parent.clone());
        if keep_stages {
            stages.push(DpStage {
                task: j,
                value: value.clone(),
                parent: parent.clone(),
            });
        }
        prev_value = value;
    }

    rec.add("solver.dp_assignment.cells", n_cells);
    rec.add("solver.dp_assignment.lookups", n_lookups);
    rec.add("solver.dp_assignment.pruned", n_pruned);

    // Answer: best over pl of V_{k-1}(P, pl, φ); ties prefer fewer procs.
    let mut best = f64::NEG_INFINITY;
    let mut best_pl = 0usize;
    for pl in floors[k - 1]..=p {
        let v = prev_value[dims.idx(p, pl, NO_NEXT)];
        if v > best {
            best = v;
            best_pl = pl;
        }
    }
    if best == f64::NEG_INFINITY {
        return Err(SolveError::Infeasible);
    }

    // Reconstruct right-to-left.
    let mut assignment = vec![0usize; k];
    let mut pt = p;
    let mut pl = best_pl;
    let mut pn = NO_NEXT;
    for j in (0..k).rev() {
        assignment[j] = pl;
        if j > 0 {
            let q = all_parents[j][dims.idx(pt, pl, pn)] as usize;
            pt -= pl;
            pn = pl;
            pl = q;
        }
    }

    Ok(DpTrace {
        stages,
        assignment,
        throughput: best,
    })
}

/// Optimal processor assignment for the unclustered problem: each task its
/// own module, replication per the problem's policy. Returns the optimal
/// [`Solution`] (throughput recomputed by the evaluator) and the chosen
/// per-task processor counts.
pub fn dp_assignment(problem: &Problem) -> Result<(Solution, Assignment), SolveError> {
    let table = CostTable::build(problem);
    let trace = run_dp(problem, &table, false)?;
    let assignment = Assignment(trace.assignment.clone());
    let mapping: Mapping = assignment
        .to_mapping(problem)
        .expect("DP respects per-task floors");
    let solution = Solution::from_mapping(problem, mapping);
    debug_assert!(
        (solution.throughput - trace.throughput).abs() <= 1e-9 * trace.throughput.abs().max(1.0),
        "DP internal value {} disagrees with evaluator {}",
        trace.throughput,
        solution.throughput
    );
    Ok((solution, assignment))
}

/// [`dp_assignment`] keeping every stage table for inspection (Figure 4).
pub fn dp_assignment_traced(problem: &Problem) -> Result<DpTrace, SolveError> {
    let table = CostTable::build(problem);
    run_dp(problem, &table, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipemap_chain::{throughput, ChainBuilder, Edge, Task};
    use pipemap_model::{MemoryReq, PolyEcom, PolyUnary};

    fn simple_chain(work: &[f64]) -> pipemap_chain::TaskChain {
        let mut b =
            ChainBuilder::new().task(Task::new("t0", PolyUnary::perfectly_parallel(work[0])));
        for (i, &w) in work.iter().enumerate().skip(1) {
            b = b
                .edge(Edge::free())
                .task(Task::new(format!("t{i}"), PolyUnary::perfectly_parallel(w)));
        }
        b.build()
    }

    #[test]
    fn single_task_uses_all_procs() {
        let p = Problem::new(simple_chain(&[8.0]), 4, 1e9).without_replication();
        let (s, a) = dp_assignment(&p).unwrap();
        assert_eq!(a.0, vec![4]);
        assert!((s.throughput - 0.5).abs() < 1e-12);
    }

    #[test]
    fn balanced_split_no_comm() {
        // Two identical perfectly-parallel tasks, no comm: split in half.
        let p = Problem::new(simple_chain(&[8.0, 8.0]), 8, 1e9).without_replication();
        let (s, a) = dp_assignment(&p).unwrap();
        assert_eq!(a.0, vec![4, 4]);
        assert!((s.throughput - 0.5).abs() < 1e-12);
    }

    #[test]
    fn proportional_split_no_comm() {
        // Work 12 vs 4 on 8 procs: best is 6/2 (bottleneck 2.0).
        let p = Problem::new(simple_chain(&[12.0, 4.0]), 8, 1e9).without_replication();
        let (s, a) = dp_assignment(&p).unwrap();
        assert_eq!(a.0, vec![6, 2]);
        assert!((s.throughput - 0.5).abs() < 1e-12);
    }

    #[test]
    fn may_leave_processors_idle() {
        // Fixed-cost task plus an overhead-heavy task: extra processors on
        // the second task only hurt. f1(p) = 1 + p/10: best at p = 1.
        let c = ChainBuilder::new()
            .task(Task::new("a", PolyUnary::new(2.0, 0.0, 0.0)))
            .edge(Edge::free())
            .task(Task::new("b", PolyUnary::new(0.0, 1.0, 0.1)))
            .build();
        let p = Problem::new(c, 16, 1e9).without_replication();
        let (s, a) = dp_assignment(&p).unwrap();
        // Task a: any count, 2.0. Task b: minimum at sqrt(1/0.1) ≈ 3;
        // f(3) = 1/3 + 0.3 = 0.633. Bottleneck is a at 2.0 regardless, so
        // anything with b's response ≤ 2 is optimal; throughput 0.5.
        assert!((s.throughput - 0.5).abs() < 1e-12);
        assert!(a.total() <= 16);
    }

    #[test]
    fn comm_aware_beats_comm_blind() {
        // Strong ecom penalty growing with sender procs: the optimum gives
        // the sender fewer processors than a comm-blind balance would.
        let c = ChainBuilder::new()
            .task(Task::new("a", PolyUnary::perfectly_parallel(8.0)))
            .edge(Edge::new(
                PolyUnary::zero(),
                PolyEcom::new(0.0, 0.0, 0.0, 0.5, 0.0),
            ))
            .task(Task::new("b", PolyUnary::perfectly_parallel(8.0)))
            .build();
        let p = Problem::new(c, 8, 1e9).without_replication();
        let (s, a) = dp_assignment(&p).unwrap();
        // Check optimality against explicit enumeration.
        let mut best = 0.0_f64;
        for pa in 1..=7usize {
            for pb in 1..=(8 - pa) {
                let m = Mapping::task_parallel(&[pa, pb]);
                best = best.max(throughput(&p.chain, &m));
            }
        }
        assert!((s.throughput - best).abs() < 1e-9);
        assert!(a.total() <= 8);
        // The ecom penalty (0.5·ps on both endpoints) caps the useful
        // sender size: a naive "all processors help" split of 8 would use
        // them all, but responses at [4,4] are 8/4 + 0.5·4 = 4.0 and any
        // larger sender is strictly worse on both tasks.
        assert!(a.procs(0) <= 4, "sender overallocated: {:?}", a.0);
    }

    #[test]
    fn replication_boosts_throughput() {
        // One task, fixed response 1s, floor 1: with replication on 8
        // procs → 8 instances → throughput 8.
        let c = ChainBuilder::new()
            .task(Task::new("t", PolyUnary::new(1.0, 0.0, 0.0)))
            .build();
        let with_rep = Problem::new(c.clone(), 8, 1e9);
        let (s, _) = dp_assignment(&with_rep).unwrap();
        assert!((s.throughput - 8.0).abs() < 1e-9);
        let without = Problem::new(c, 8, 1e9).without_replication();
        let (s2, _) = dp_assignment(&without).unwrap();
        assert!((s2.throughput - 1.0).abs() < 1e-9);
    }

    #[test]
    fn memory_floor_respected() {
        let c = ChainBuilder::new()
            .task(
                Task::new("a", PolyUnary::perfectly_parallel(4.0))
                    .with_memory(MemoryReq::new(0.0, 30.0)),
            )
            .edge(Edge::free())
            .task(Task::new("b", PolyUnary::perfectly_parallel(4.0)))
            .build();
        let p = Problem::new(c, 8, 10.0).without_replication(); // floor a = 3
        let (_, a) = dp_assignment(&p).unwrap();
        assert!(a.procs(0) >= 3);
    }

    #[test]
    fn infeasible_when_floors_exceed_budget() {
        let c = ChainBuilder::new()
            .task(Task::new("a", PolyUnary::zero()).with_memory(MemoryReq::new(0.0, 50.0)))
            .edge(Edge::free())
            .task(Task::new("b", PolyUnary::zero()).with_memory(MemoryReq::new(0.0, 50.0)))
            .build();
        let p = Problem::new(c, 8, 10.0); // floors 5 + 5 > 8
        assert_eq!(dp_assignment(&p).unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn infeasible_when_task_never_fits() {
        let c = ChainBuilder::new()
            .task(Task::new("a", PolyUnary::zero()).with_memory(MemoryReq::new(20.0, 0.0)))
            .build();
        let p = Problem::new(c, 8, 10.0);
        assert_eq!(dp_assignment(&p).unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn trace_exposes_stages() {
        let p = Problem::new(simple_chain(&[4.0, 4.0]), 4, 1e9).without_replication();
        let t = dp_assignment_traced(&p).unwrap();
        assert_eq!(t.stages.len(), 2);
        assert_eq!(t.assignment.len(), 2);
        assert_eq!(t.stages[0].task, 0);
        // The final stage's best value matches the reported throughput.
        assert!(t.throughput > 0.0);
    }

    #[test]
    fn three_task_chain_with_comm_is_optimal_vs_enumeration() {
        let c = ChainBuilder::new()
            .task(Task::new("a", PolyUnary::perfectly_parallel(6.0)))
            .edge(Edge::new(
                PolyUnary::zero(),
                PolyEcom::new(0.2, 1.0, 1.0, 0.05, 0.05),
            ))
            .task(Task::new("b", PolyUnary::perfectly_parallel(10.0)))
            .edge(Edge::new(
                PolyUnary::zero(),
                PolyEcom::new(0.1, 0.5, 0.5, 0.02, 0.02),
            ))
            .task(Task::new("c", PolyUnary::perfectly_parallel(3.0)))
            .build();
        let p = Problem::new(c, 12, 1e9).without_replication();
        let (s, _) = dp_assignment(&p).unwrap();
        let mut best = 0.0_f64;
        for pa in 1..=12usize {
            for pb in 1..=12usize {
                for pc in 1..=12usize {
                    if pa + pb + pc > 12 {
                        continue;
                    }
                    let m = Mapping::task_parallel(&[pa, pb, pc]);
                    best = best.max(throughput(&p.chain, &m));
                }
            }
        }
        assert!(
            (s.throughput - best).abs() < 1e-9,
            "dp {} vs enumeration {}",
            s.throughput,
            best
        );
    }
}
