//! Exhaustive oracles for small instances.
//!
//! These enumerate the full search space — every clustering (a subset of
//! the `k−1` chain boundaries), every processor allocation, with the
//! policy's replication — and exist to *validate* the optimal algorithms:
//! on any instance small enough to enumerate, `dp_mapping` must match
//! [`brute_force_mapping`] exactly, and `dp_assignment` must match
//! [`brute_force_assignment`]. They also quantify how far the greedy
//! heuristic lands from the optimum.
//!
//! Both refuse instances whose search-space estimate exceeds a fixed
//! budget instead of silently running forever.

use pipemap_chain::{Assignment, Mapping, Problem};

use crate::cluster::contract_chain;
use crate::solution::{Solution, SolveError};

/// Upper bound on enumerated allocations per clustering before the oracle
/// refuses the instance.
const MAX_STATES: u64 = 50_000_000;

/// Estimate of the number of allocations for `modules` modules and `p`
/// processors: `C(p, modules)`-ish; we use the loose bound `p^modules`.
fn state_estimate(modules: usize, p: usize) -> u64 {
    (p as u64).saturating_pow(modules as u32)
}

/// Recursively enumerate per-module processor offers (each at least its
/// floor, total at most `budget`), calling `visit` with each complete
/// offer vector.
fn enumerate_allocations(
    floors: &[usize],
    budget: usize,
    offer: &mut Vec<usize>,
    visit: &mut impl FnMut(&[usize]),
) {
    let idx = offer.len();
    if idx == floors.len() {
        visit(offer);
        return;
    }
    // Remaining modules still need their floors.
    let reserve: usize = floors[idx + 1..].iter().sum();
    if budget < floors[idx] + reserve {
        return;
    }
    for p in floors[idx]..=(budget - reserve) {
        offer.push(p);
        enumerate_allocations(floors, budget - p, offer, visit);
        offer.pop();
    }
}

/// Exhaustive optimal processor assignment for the unclustered problem
/// (each task its own module, policy replication). The oracle for
/// [`crate::dp::dp_assignment`].
pub fn brute_force_assignment(problem: &Problem) -> Result<(Solution, Assignment), SolveError> {
    let k = problem.num_tasks();
    let p = problem.total_procs;
    if state_estimate(k, p) > MAX_STATES {
        return Err(SolveError::TooLarge {
            limit: "brute-force assignment state budget",
        });
    }
    let mut floors = Vec::with_capacity(k);
    for i in 0..k {
        floors.push(problem.task_floor(i).ok_or(SolveError::Infeasible)?);
    }
    if floors.iter().sum::<usize>() > p {
        return Err(SolveError::Infeasible);
    }

    let mut best: Option<(f64, Vec<usize>)> = None;
    let mut offer = Vec::with_capacity(k);
    enumerate_allocations(&floors, p, &mut offer, &mut |a| {
        let assignment = Assignment(a.to_vec());
        let Some(mapping) = assignment.to_mapping(problem) else {
            return;
        };
        let thr = pipemap_chain::throughput(&problem.chain, &mapping);
        if best.as_ref().is_none_or(|(b, _)| thr > *b) {
            best = Some((thr, a.to_vec()));
        }
    });
    let (_, a) = best.ok_or(SolveError::Infeasible)?;
    let assignment = Assignment(a);
    let mapping = assignment.to_mapping(problem).expect("floors respected");
    Ok((Solution::from_mapping(problem, mapping), assignment))
}

/// Enumerate every clustering of a chain of `k` tasks (all `2^(k-1)`
/// boundary subsets), as inclusive ranges.
pub fn all_clusterings(k: usize) -> Vec<Vec<(usize, usize)>> {
    assert!(k >= 1);
    let mut out = Vec::with_capacity(1 << (k - 1));
    for mask in 0u32..(1u32 << (k - 1)) {
        let mut clustering = Vec::new();
        let mut start = 0usize;
        for b in 0..k - 1 {
            if mask & (1 << b) != 0 {
                clustering.push((start, b));
                start = b + 1;
            }
        }
        clustering.push((start, k - 1));
        out.push(clustering);
    }
    out
}

/// Exhaustive optimal full mapping (clustering + replication +
/// allocation). The oracle for [`crate::dp_cluster::dp_mapping`].
pub fn brute_force_mapping(problem: &Problem) -> Result<Solution, SolveError> {
    let k = problem.num_tasks();
    let p = problem.total_procs;
    if k > 12 {
        return Err(SolveError::TooLarge {
            limit: "brute-force mapping requires k <= 12",
        });
    }

    let mut best: Option<(f64, Mapping)> = None;
    let mut any_feasible = false;
    for clustering in all_clusterings(k) {
        if state_estimate(clustering.len(), p) > MAX_STATES {
            return Err(SolveError::TooLarge {
                limit: "brute-force mapping state budget",
            });
        }
        let contracted = contract_chain(problem, &clustering);
        let floors: Option<Vec<usize>> = (0..clustering.len())
            .map(|i| contracted.problem.task_floor(i))
            .collect();
        let Some(floors) = floors else {
            continue;
        };
        if floors.iter().sum::<usize>() > p {
            continue;
        }
        any_feasible = true;
        let mut offer = Vec::with_capacity(clustering.len());
        enumerate_allocations(&floors, p, &mut offer, &mut |a| {
            let assignment = Assignment(a.to_vec());
            let Some(m) = assignment.to_mapping(&contracted.problem) else {
                return;
            };
            let thr = pipemap_chain::throughput(&contracted.problem.chain, &m);
            if best.as_ref().is_none_or(|(b, _)| thr > *b) {
                best = Some((thr, contracted.expand(&m)));
            }
        });
    }
    if !any_feasible {
        return Err(SolveError::Infeasible);
    }
    let (_, mapping) = best.ok_or(SolveError::Infeasible)?;
    Ok(Solution::from_mapping(problem, mapping))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::dp_assignment;
    use crate::dp_cluster::dp_mapping;
    use pipemap_chain::{ChainBuilder, Edge, Task};
    use pipemap_model::{MemoryReq, PolyEcom, PolyUnary};

    #[test]
    fn all_clusterings_counts() {
        assert_eq!(all_clusterings(1).len(), 1);
        assert_eq!(all_clusterings(2).len(), 2);
        assert_eq!(all_clusterings(4).len(), 8);
        // Every clustering covers the chain.
        for c in all_clusterings(4) {
            assert_eq!(c.first().unwrap().0, 0);
            assert_eq!(c.last().unwrap().1, 3);
            for w in c.windows(2) {
                assert_eq!(w[0].1 + 1, w[1].0);
            }
        }
    }

    #[test]
    fn enumerate_allocations_respects_floors_and_budget() {
        let mut seen = Vec::new();
        let mut offer = Vec::new();
        enumerate_allocations(&[2, 1], 5, &mut offer, &mut |a| seen.push(a.to_vec()));
        for a in &seen {
            assert!(a[0] >= 2 && a[1] >= 1);
            assert!(a[0] + a[1] <= 5);
        }
        // Count: p0 in 2..=4, p1 in 1..=(5-p0): 3 + 2 + 1 = 6.
        assert_eq!(seen.len(), 6);
    }

    #[test]
    fn brute_matches_dp_on_random_small_instances() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for trial in 0..25 {
            let k = rng.gen_range(1..=4);
            let p = rng.gen_range(k..=9);
            let mut b = ChainBuilder::new().task(Task::new(
                "t0",
                PolyUnary::new(
                    rng.gen_range(0.0..1.0),
                    rng.gen_range(0.5..8.0),
                    rng.gen_range(0.0..0.3),
                ),
            ));
            for i in 1..k {
                b = b
                    .edge(Edge::new(
                        PolyUnary::new(rng.gen_range(0.0..0.5), 0.0, 0.0),
                        PolyEcom::new(
                            rng.gen_range(0.0..1.0),
                            rng.gen_range(0.0..2.0),
                            rng.gen_range(0.0..2.0),
                            rng.gen_range(0.0..0.2),
                            rng.gen_range(0.0..0.2),
                        ),
                    ))
                    .task(Task::new(
                        format!("t{i}"),
                        PolyUnary::new(
                            rng.gen_range(0.0..1.0),
                            rng.gen_range(0.5..8.0),
                            rng.gen_range(0.0..0.3),
                        ),
                    ));
            }
            let chain = b.build();
            let problem = Problem::new(chain, p, 1e9).without_replication();

            let (bf, _) = brute_force_assignment(&problem).unwrap();
            let (dp, _) = dp_assignment(&problem).unwrap();
            assert!(
                (bf.throughput - dp.throughput).abs() <= 1e-9 * bf.throughput.max(1.0),
                "trial {trial}: assignment brute {} vs dp {}",
                bf.throughput,
                dp.throughput
            );

            let bf_map = brute_force_mapping(&problem).unwrap();
            let dp_map = dp_mapping(&problem).unwrap();
            assert!(
                (bf_map.throughput - dp_map.throughput).abs() <= 1e-9 * bf_map.throughput.max(1.0),
                "trial {trial}: mapping brute {} vs dp {}",
                bf_map.throughput,
                dp_map.throughput
            );
        }
    }

    #[test]
    fn brute_matches_dp_with_replication_and_memory() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(23);
        for trial in 0..20 {
            let k = rng.gen_range(1..=3);
            let p = rng.gen_range((2 * k).max(3)..=8);
            let mut tasks: Vec<Task> = Vec::new();
            for i in 0..k {
                let mut t = Task::new(
                    format!("t{i}"),
                    PolyUnary::new(rng.gen_range(0.1..1.0), rng.gen_range(0.5..6.0), 0.0),
                )
                .with_memory(MemoryReq::new(0.0, rng.gen_range(0.0..25.0)));
                if rng.gen_bool(0.25) {
                    t = t.not_replicable();
                }
                tasks.push(t);
            }
            let mut b = ChainBuilder::new().task(tasks[0].clone());
            for t in tasks.into_iter().skip(1) {
                b = b
                    .edge(Edge::new(
                        PolyUnary::new(rng.gen_range(0.0..0.3), 0.0, 0.0),
                        PolyEcom::new(
                            rng.gen_range(0.0..0.8),
                            rng.gen_range(0.0..1.5),
                            rng.gen_range(0.0..1.5),
                            0.0,
                            0.0,
                        ),
                    ))
                    .task(t);
            }
            let problem = Problem::new(b.build(), p, 10.0);
            let bf = brute_force_mapping(&problem);
            let dp = dp_mapping(&problem);
            match (bf, dp) {
                (Ok(bf), Ok(dp)) => assert!(
                    (bf.throughput - dp.throughput).abs() <= 1e-9 * bf.throughput.max(1.0),
                    "trial {trial}: brute {} ({:?}) vs dp {} ({:?})",
                    bf.throughput,
                    bf.mapping,
                    dp.throughput,
                    dp.mapping
                ),
                (Err(SolveError::Infeasible), Err(SolveError::Infeasible)) => {}
                (bf, dp) => panic!("trial {trial}: disagreement {bf:?} vs {dp:?}"),
            }
        }
    }

    #[test]
    fn too_large_is_refused() {
        let mut b = ChainBuilder::new().task(Task::new("t0", PolyUnary::zero()));
        for i in 1..8 {
            b = b
                .edge(Edge::free())
                .task(Task::new(format!("t{i}"), PolyUnary::zero()));
        }
        let p = Problem::new(b.build(), 512, 1e9);
        assert!(matches!(
            brute_force_assignment(&p),
            Err(SolveError::TooLarge { .. })
        ));
    }
}
