//! Processor minimisation: the third axis of the latency / throughput /
//! processors trade-off studied in the paper's companion work (\[14\]).
//!
//! Given a throughput target, find a mapping that meets it with the
//! fewest processors — what a system operator asks when a pipeline must
//! sustain a known input rate and the remaining processors should serve
//! other jobs.
//!
//! The implementation exploits a monotonicity fact: under the at-most
//! allocation semantics, the optimal throughput `T*(P)` is non-decreasing
//! in the processor budget `P` (any mapping valid for `P` is valid for
//! `P + 1`). So the minimal budget meeting a target is found by binary
//! search over `P`, solving the throughput DP at each probe.

use pipemap_chain::Problem;

use crate::dp_cluster::dp_mapping;
use crate::solution::{Solution, SolveError};

/// Result of a processor-minimisation query.
#[derive(Clone, Debug)]
pub struct ProcsSolution {
    /// Fewest processors meeting the target.
    pub procs: usize,
    /// The optimal mapping at that budget.
    pub solution: Solution,
}

/// The smallest processor budget `P ≤ problem.total_procs` whose optimal
/// mapping reaches `min_throughput`, with that mapping. Errors with
/// [`SolveError::Infeasible`] if even the full budget falls short.
pub fn min_procs_mapping(
    problem: &Problem,
    min_throughput: f64,
) -> Result<ProcsSolution, SolveError> {
    assert!(
        min_throughput > 0.0 && min_throughput.is_finite(),
        "throughput target must be positive and finite"
    );
    let solve_at = |p: usize| -> Result<Solution, SolveError> {
        let mut sub = problem.clone();
        sub.total_procs = p;
        dp_mapping(&sub)
    };

    // The full budget must reach the target at all.
    let full = solve_at(problem.total_procs)?;
    if full.throughput < min_throughput {
        return Err(SolveError::Infeasible);
    }

    // Binary search the smallest feasible budget. `lo` is always
    // infeasible-or-untested, `hi` always feasible.
    let mut lo = 0usize;
    let mut hi = problem.total_procs;
    let mut best = full;
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        match solve_at(mid) {
            Ok(sol) if sol.throughput >= min_throughput => {
                hi = mid;
                best = sol;
            }
            Ok(_) | Err(SolveError::Infeasible) => lo = mid,
            Err(e) => return Err(e),
        }
    }
    Ok(ProcsSolution {
        procs: hi,
        solution: best,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipemap_chain::{ChainBuilder, Edge, Task};
    use pipemap_model::{MemoryReq, PolyEcom, PolyUnary};

    fn problem(p: usize) -> Problem {
        let chain = ChainBuilder::new()
            .task(Task::new("a", PolyUnary::new(0.1, 2.0, 0.0)))
            .edge(Edge::new(
                PolyUnary::zero(),
                PolyEcom::new(0.05, 0.1, 0.1, 0.0, 0.0),
            ))
            .task(Task::new("b", PolyUnary::new(0.1, 3.0, 0.0)))
            .build();
        Problem::new(chain, p, 1e12).without_replication()
    }

    #[test]
    fn finds_the_minimal_budget() {
        let p = problem(32);
        // Verify by scanning: the returned budget is feasible and the
        // one below is not.
        let target = 1.2;
        let sol = min_procs_mapping(&p, target).unwrap();
        assert!(sol.solution.throughput >= target);
        assert!(sol.procs >= 2);
        let mut below = p.clone();
        below.total_procs = sol.procs - 1;
        match dp_mapping(&below) {
            Ok(s) => assert!(
                s.throughput < target,
                "budget {} already reaches {} (target {target})",
                sol.procs - 1,
                s.throughput
            ),
            Err(SolveError::Infeasible) => {}
            Err(e) => panic!("{e}"),
        }
    }

    #[test]
    fn minimal_budget_matches_linear_scan() {
        let p = problem(24);
        for target in [0.5, 1.0, 2.0] {
            let fast = min_procs_mapping(&p, target).unwrap();
            let mut scan = None;
            for budget in 1..=24 {
                let mut sub = p.clone();
                sub.total_procs = budget;
                if let Ok(s) = dp_mapping(&sub) {
                    if s.throughput >= target {
                        scan = Some(budget);
                        break;
                    }
                }
            }
            assert_eq!(Some(fast.procs), scan, "target {target}");
        }
    }

    #[test]
    fn unreachable_target_is_infeasible() {
        let p = problem(8);
        assert_eq!(
            min_procs_mapping(&p, 1e9).unwrap_err(),
            SolveError::Infeasible
        );
    }

    #[test]
    fn replication_lowers_the_required_budget() {
        // A non-scaling task: without replication no budget reaches 2/s;
        // with replication 2 processors do.
        let chain = ChainBuilder::new()
            .task(Task::new("flat", PolyUnary::new(1.0, 0.0, 0.0)))
            .build();
        let with = Problem::new(chain.clone(), 16, 1e12);
        let sol = min_procs_mapping(&with, 2.0).unwrap();
        assert_eq!(sol.procs, 2);
        let without = Problem::new(chain, 16, 1e12).without_replication();
        assert_eq!(
            min_procs_mapping(&without, 2.0).unwrap_err(),
            SolveError::Infeasible
        );
    }

    #[test]
    fn memory_floors_bound_the_budget_from_below() {
        let chain = ChainBuilder::new()
            .task(
                Task::new("big", PolyUnary::new(0.0, 1.0, 0.0))
                    .with_memory(MemoryReq::new(0.0, 50.0)),
            )
            .build();
        let p = Problem::new(chain, 16, 10.0); // floor 5
        let sol = min_procs_mapping(&p, 0.1).unwrap();
        assert!(sol.procs >= 5);
    }
}
