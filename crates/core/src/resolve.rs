//! Incremental warm-start re-solving (delta-aware DP).
//!
//! A cold solve prices every `(stage, budget, offer, next-size)` cell from
//! scratch. In the serving loop (ROADMAP item 1) the problem rarely
//! changes shape — the doctor reports that a handful of *costs* drifted by
//! fitted multiplicative factors. This module re-solves such re-priced
//! problems **bit-identically** to a cold solve at a fraction of the
//! cost, with three stacked mechanisms:
//!
//! 1. **Margin short-circuit.** `stability_margins` gives, per mapped
//!    stage, the exact multiplicative interval a single cost may drift
//!    within before a different solution becomes strictly better. A
//!    single-cost delta strictly inside its interval proves the old
//!    mapping still optimal: return it with **zero** DP work. This is
//!    only sound for *assignment* artifacts — the margins hold the
//!    clustering fixed, and for the assignment DP (all-singleton
//!    clustering) the fixed-clustering alternative space *is* the DP's
//!    full search space. Cluster artifacts always take mechanism 2.
//!
//!    Margins are *value*-level certificates, so on this path the
//!    throughput is bit-identical to a cold solve but the *mapping* may
//!    legitimately differ when the re-priced problem has several optima
//!    tied at the same value: the margin interval proves no alternative
//!    becomes strictly better, while the cold DP's deterministic
//!    first-argmax may hand a value-tied alternative the win (common
//!    under replication, where non-bottleneck stages sit on saturated
//!    plateaus). Either mapping is a true optimum; the two runs only
//!    disagree about which tied representative to report. Deltas that
//!    take the suffix path reproduce the cold argmax exactly, mapping
//!    included.
//! 2. **Suffix invalidation.** Both DPs sweep stages left to right and a
//!    stage's cells read only costs of tasks `0..=j` (plus the outgoing
//!    edge `j`). A delta therefore invalidates only stages at or right of
//!    its *frontier*: `exec` of task `d` → frontier `d`; `ecom` of edge
//!    `e` → frontier `e` (the stage ending at `e` charges it as its
//!    out-transfer); `icom` of edge `e` → frontier `e + 1` (internal only
//!    to modules ending at or after `e + 1`; fully inert for the
//!    assignment DP, whose modules are singletons). The retained dense
//!    cost table is patched in place ([`CostTable::rescale`], bitwise
//!    equal to rebuilding from the scaled cost functions) and only the
//!    invalidated suffix is recomputed, splicing the retained prefix
//!    tables verbatim.
//! 3. **Warm incumbent.** The previous optimum stays feasible (floors and
//!    memory are cost-independent), so its re-priced path value is an
//!    admissible pruning incumbent — almost always far tighter than the
//!    greedy bound a cold solve starts from. The value is computed with
//!    the DPs' *internal* arithmetic (the exact own-term expressions and
//!    the exact min-fold), never the public evaluator: the two agree only
//!    to ~1e-9 relative while the pruning margin is 1e-12, and an
//!    incumbent above the internal optimum would prune it.
//!
//! ## Why splicing an unpruned prefix into a pruned suffix is exact
//!
//! Retained artifact tables come from an unpruned, stage-keeping solve,
//! so every prefix cell holds its true value where a pruned cold run may
//! hold `-inf`. In the resumed pruned suffix the running best starts at
//! the incumbent bound and updates strictly, so a true value `<= bound`
//! behaves exactly like the pruned run's `-inf` (the `sub <= best` skip
//! drops it); row maxima over true values only fire the row skip *less*
//! often, after which the inner scan rejects each candidate anyway. Cells
//! on the re-priced optimum's path get identical `(value, parent)` in
//! both runs — the winning candidate's value is ≥ the optimum ≥ the
//! bound, and candidates a pruned run drops are `< bound`, so they can
//! never be the first argmax on-path. Identical terminal scans then
//! reconstruct identical mappings.

use pipemap_chain::{Assignment, ChainBuilder, CostTable, Edge, Mapping, Problem, Task};
use pipemap_model::{BinaryCost, Procs, UnaryCost};
use pipemap_obs::names;

use crate::dp::{self, DpResume, DpTrace};
use crate::dp_cluster::{self, ClusterResume, SolveCtx, Stage};
use crate::options::SolveOptions;
use crate::provenance::{self, MarginReport};
use crate::solution::{Solution, SolveError};

/// Per-cost multiplicative drift factors for one re-pricing: `exec[i]`
/// scales task `i`'s execution cost, `icom[e]` / `ecom[e]` scale edge
/// `e`'s internal / external communication costs. Factor `1.0` means
/// "unchanged"; all factors must be finite and positive.
#[derive(Clone, Debug, PartialEq)]
pub struct CostDeltas {
    exec: Vec<f64>,
    icom: Vec<f64>,
    ecom: Vec<f64>,
}

impl CostDeltas {
    /// The identity re-pricing for a `k`-task chain (all factors 1).
    pub fn identity(k: usize) -> Self {
        let edges = k.saturating_sub(1);
        Self {
            exec: vec![1.0; k],
            icom: vec![1.0; edges],
            ecom: vec![1.0; edges],
        }
    }

    /// Deltas from explicit factor vectors; lengths must match a `k`-task
    /// chain (`k`, `k-1`, `k-1`).
    pub fn new(exec: Vec<f64>, icom: Vec<f64>, ecom: Vec<f64>) -> Self {
        assert_eq!(
            icom.len(),
            exec.len().saturating_sub(1),
            "icom factors must cover every edge"
        );
        assert_eq!(
            ecom.len(),
            exec.len().saturating_sub(1),
            "ecom factors must cover every edge"
        );
        for &g in exec.iter().chain(&icom).chain(&ecom) {
            assert!(
                g.is_finite() && g > 0.0,
                "drift factor {g} must be finite and positive"
            );
        }
        Self { exec, icom, ecom }
    }

    /// Scale task `d`'s execution cost by `factor`.
    pub fn set_exec(&mut self, d: usize, factor: f64) {
        assert!(factor.is_finite() && factor > 0.0, "drift factor {factor}");
        self.exec[d] = factor;
    }

    /// Scale edge `e`'s internal-communication cost by `factor`.
    pub fn set_icom(&mut self, e: usize, factor: f64) {
        assert!(factor.is_finite() && factor > 0.0, "drift factor {factor}");
        self.icom[e] = factor;
    }

    /// Scale edge `e`'s external-communication cost by `factor`.
    pub fn set_ecom(&mut self, e: usize, factor: f64) {
        assert!(factor.is_finite() && factor > 0.0, "drift factor {factor}");
        self.ecom[e] = factor;
    }

    /// Per-task execution factors.
    pub fn exec(&self) -> &[f64] {
        &self.exec
    }

    /// Per-edge internal-communication factors.
    pub fn icom(&self) -> &[f64] {
        &self.icom
    }

    /// Per-edge external-communication factors.
    pub fn ecom(&self) -> &[f64] {
        &self.ecom
    }

    /// True when every factor is exactly 1 (re-pricing is a no-op).
    pub fn is_identity(&self) -> bool {
        self.exec
            .iter()
            .chain(&self.icom)
            .chain(&self.ecom)
            .all(|&g| g == 1.0)
    }

    /// Invalidation frontier for the *cluster* DP: the first stage (end
    /// task) whose DP cells can read a changed cost. `k` when nothing is
    /// invalidated.
    pub fn frontier(&self, k: usize) -> usize {
        let mut f = k;
        for (d, &g) in self.exec.iter().enumerate() {
            if g != 1.0 {
                f = f.min(d);
            }
        }
        for (e, &g) in self.ecom.iter().enumerate() {
            if g != 1.0 {
                f = f.min(e);
            }
        }
        for (e, &g) in self.icom.iter().enumerate() {
            if g != 1.0 {
                // Internal to modules containing edge e, which end at
                // task e+1 or later.
                f = f.min(e + 1);
            }
        }
        f
    }

    /// Invalidation frontier for the *assignment* DP, whose singleton
    /// modules never charge internal communication: icom deltas are
    /// inert.
    fn assignment_frontier(&self, k: usize) -> usize {
        let mut f = k;
        for (d, &g) in self.exec.iter().enumerate() {
            if g != 1.0 {
                f = f.min(d);
            }
        }
        for (e, &g) in self.ecom.iter().enumerate() {
            if g != 1.0 {
                f = f.min(e);
            }
        }
        f
    }

    fn check_tasks(&self, k: usize) {
        assert_eq!(self.exec.len(), k, "deltas sized for a different chain");
    }
}

/// Scale a unary cost by a constant factor (no-op clone for factor 1, so
/// identity deltas re-price to bitwise-equal cost functions).
fn scale_unary(c: &UnaryCost, factor: f64) -> UnaryCost {
    if factor == 1.0 {
        return c.clone();
    }
    let base = c.clone();
    UnaryCost::custom(move |p| base.eval(p) * factor)
}

/// Scale a binary cost by a constant factor.
fn scale_binary(c: &BinaryCost, factor: f64) -> BinaryCost {
    if factor == 1.0 {
        return c.clone();
    }
    let base = c.clone();
    BinaryCost::custom(move |s, r| base.eval(s, r) * factor)
}

/// Build the re-priced problem: every cost function scaled by its delta
/// factor, all structural metadata (memory, floors, replicability,
/// replication policy) preserved. The scaled functions evaluate as
/// `base(p) * factor`, bitwise identical to patching the corresponding
/// dense table rows in place — which is what lets the incremental solver
/// patch instead of rebuild.
pub fn reprice_problem(problem: &Problem, deltas: &CostDeltas) -> Problem {
    let chain = &problem.chain;
    deltas.check_tasks(chain.len());
    let mut b = ChainBuilder::new();
    for i in 0..chain.len() {
        let src = chain.task(i);
        let mut t = Task::new(src.name.clone(), scale_unary(&src.exec, deltas.exec[i]))
            .with_memory(src.memory);
        if !src.replicable {
            t = t.not_replicable();
        }
        if let Some(m) = src.min_procs {
            t = t.with_min_procs(m);
        }
        b = b.task(t);
        if i + 1 < chain.len() {
            let e = chain.edge(i);
            b = b.edge(Edge::new(
                scale_unary(&e.icom, deltas.icom[i]),
                scale_binary(&e.ecom, deltas.ecom[i]),
            ));
        }
    }
    let mut p = Problem::new(b.build(), problem.total_procs, problem.mem_per_proc);
    p.replication = problem.replication;
    p
}

/// Which solver produced the retained artifact.
enum ArtifactKind {
    /// Assignment DP (`dp_assignment*`): singleton clustering. Retains
    /// the full stage tables and the optimal per-task offers.
    Assignment { trace: DpTrace },
    /// Cluster DP (`dp_mapping*`): retains every `(end, length)` stage.
    Cluster { stages: Vec<Option<Stage>> },
}

/// Mechanism an incremental re-solve used.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResolveMechanism {
    /// The old mapping was proven still optimal without any DP work
    /// (identity deltas, assignment-inert deltas, or a single delta
    /// strictly inside its stability margin).
    ShortCircuit,
    /// The invalidated suffix was recomputed with a warm incumbent.
    Suffix,
}

/// Result of [`ResolveArtifact::resolve`].
#[derive(Clone, Debug)]
pub struct ResolveOutcome {
    /// The new optimum. Its throughput is bit-identical to a cold solve
    /// of the re-priced problem with the artifact's options; on the
    /// suffix path the mapping is bit-identical too, while a margin
    /// short-circuit may report a different *value-tied* optimum than
    /// the cold argmax when ties exist (see the module docs).
    pub solution: Solution,
    /// Which mechanism produced it.
    pub mechanism: ResolveMechanism,
    /// DP cells actually recomputed (0 for a short-circuit).
    pub cells: u64,
    /// First stage whose cells were invalidated (`k` when none were).
    pub frontier: usize,
    /// True when the new mapping differs from the artifact's.
    pub changed: bool,
}

/// Retained cold-solve artifact: the dense cost table, the DP value
/// tables, the optimal mapping, and (when tractable) its exact stability
/// margins. Build once after a cold solve, then [`resolve`] against
/// successive drift deltas.
///
/// The internal solve is forced unpruned and stage-keeping — pruned
/// tables have `-inf` holes and could not be spliced — while `par`,
/// `dedup` and `threads` are honoured as given. Re-solves run with the
/// *same* options verbatim: the stage-table layouts depend on `dedup`.
///
/// [`resolve`]: ResolveArtifact::resolve
pub struct ResolveArtifact {
    problem: Problem,
    opts: SolveOptions,
    ctx: SolveCtx,
    solution: Solution,
    margins: Option<MarginReport>,
    kind: ArtifactKind,
}

impl ResolveArtifact {
    /// Cold-solve `problem` with the cluster DP and retain everything a
    /// warm re-solve needs.
    pub fn build(problem: &Problem, opts: &SolveOptions) -> Result<Self, SolveError> {
        let ctx = SolveCtx::new(problem);
        let unpruned = SolveOptions {
            prune: false,
            provenance: false,
            ..*opts
        };
        let run = dp_cluster::run_cluster_dp(problem, &ctx, &unpruned, true, None)?;
        let margins = provenance::stability_margins(problem, &run.solution.mapping).ok();
        Ok(Self {
            problem: problem.clone(),
            opts: *opts,
            ctx,
            solution: run.solution,
            margins,
            kind: ArtifactKind::Cluster {
                stages: run.stages.expect("stages kept by the artifact solve"),
            },
        })
    }

    /// Cold-solve `problem` with the assignment DP (singleton clustering)
    /// and retain everything a warm re-solve needs. Only this artifact
    /// kind can fire the margin short-circuit (see module docs).
    pub fn build_assignment(problem: &Problem, opts: &SolveOptions) -> Result<Self, SolveError> {
        let ctx = SolveCtx::new(problem);
        let unpruned = SolveOptions {
            prune: false,
            provenance: false,
            ..*opts
        };
        let trace = dp::run_dp(problem, ctx.table(), true, &unpruned)?;
        let assignment = Assignment(trace.assignment.clone());
        let mapping: Mapping = assignment
            .to_mapping(problem)
            .expect("DP respects per-task floors");
        let solution = Solution::from_mapping(problem, mapping);
        let margins = provenance::stability_margins(problem, &solution.mapping).ok();
        Ok(Self {
            problem: problem.clone(),
            opts: *opts,
            ctx,
            solution,
            margins,
            kind: ArtifactKind::Assignment { trace },
        })
    }

    /// The artifact's (cold) optimum.
    pub fn solution(&self) -> &Solution {
        &self.solution
    }

    /// The problem the artifact was solved for.
    pub fn problem(&self) -> &Problem {
        &self.problem
    }

    /// The solve options re-solves will run with.
    pub fn options(&self) -> &SolveOptions {
        &self.opts
    }

    /// Exact stability margins of the retained mapping, when the margin
    /// engine could afford them (it has its own work limits).
    pub fn margins(&self) -> Option<&MarginReport> {
        self.margins.as_ref()
    }

    /// True for cluster-DP artifacts, false for assignment-DP ones.
    pub fn is_cluster(&self) -> bool {
        matches!(self.kind, ArtifactKind::Cluster { .. })
    }

    /// Re-solve the re-priced problem incrementally. The returned
    /// solution's throughput is bit-identical to a cold solve of
    /// [`reprice_problem`]`(problem, deltas)` with the artifact's
    /// options, and on the suffix path the mapping is bit-identical
    /// too. A margin short-circuit returns the (provably still optimal)
    /// old mapping, which can differ from the cold argmax only when the
    /// re-priced problem has several value-tied optima — see the module
    /// docs.
    pub fn resolve(&self, deltas: &CostDeltas) -> Result<ResolveOutcome, SolveError> {
        let rec = pipemap_obs::global();
        let _wall = rec.timer(names::SOLVER_RESOLVE_WALL_S);
        let _span = pipemap_obs::span!("resolve", "solver");
        let k = self.problem.num_tasks();
        let p = self.problem.total_procs;
        deltas.check_tasks(k);

        let frontier = match self.kind {
            ArtifactKind::Cluster { .. } => deltas.frontier(k),
            ArtifactKind::Assignment { .. } => deltas.assignment_frontier(k),
        };
        let repriced = reprice_problem(&self.problem, deltas);

        // Mechanism 1: nothing this solver reads changed, or the single
        // changed cost sits strictly inside its stability margin. Either
        // way the old mapping is provably the cold answer; only its
        // throughput needs re-evaluating on the re-priced costs.
        if frontier >= k || self.margin_short_circuit(deltas) {
            let solution = Solution::from_mapping(&repriced, self.solution.mapping.clone());
            return Ok(self.finish(solution, ResolveMechanism::ShortCircuit, 0, frontier));
        }

        // Mechanisms 2 + 3: patch the retained dense table in place
        // (bitwise equal to a cold build of the re-priced problem),
        // recompute only stages >= frontier, and seed pruning with the
        // old optimum's re-priced path value in internal arithmetic.
        let mut table = self.ctx.table().clone();
        table.rescale(&deltas.exec, &deltas.icom, &deltas.ecom);
        match &self.kind {
            ArtifactKind::Assignment { trace } => {
                let warm = warm_assignment(&table, p, &trace.assignment);
                let resume = DpResume {
                    frontier,
                    stages: &trace.stages,
                    incumbent: warm,
                };
                let t =
                    dp::run_dp_with_fallback(&repriced, &table, false, &self.opts, Some(&resume))?;
                let assignment = Assignment(t.assignment.clone());
                let mapping: Mapping = assignment
                    .to_mapping(&repriced)
                    .expect("DP respects per-task floors");
                let solution = Solution::from_mapping(&repriced, mapping);
                Ok(self.finish(solution, ResolveMechanism::Suffix, t.cells, frontier))
            }
            ArtifactKind::Cluster { stages } => {
                let ctx = SolveCtx::from_table(table, k, p);
                let warm = warm_mapping(ctx.table(), p, k, &self.solution.mapping);
                let resume = ClusterResume {
                    frontier,
                    stages,
                    incumbent: warm,
                };
                let run = dp_cluster::run_cluster_dp_with_fallback(
                    &repriced,
                    &ctx,
                    &self.opts,
                    false,
                    Some(&resume),
                )?;
                Ok(self.finish(run.solution, ResolveMechanism::Suffix, run.cells, frontier))
            }
        }
    }

    /// Mechanism-1 test: assignment artifact, margins available, exactly
    /// one effective non-unit delta, strictly inside its margin interval
    /// with a relative guard shaved off both ends. The guard covers the
    /// margin engine's ~1e-9 crossing resolution and keeps boundary-exact
    /// deltas (where an alternative ties and argmax order could flip) on
    /// the exact suffix path. Note the interval is a *value* certificate:
    /// firing guarantees the old mapping is still an optimum and its
    /// throughput matches a cold solve bitwise, but value-tied alternate
    /// optima may still win the cold argmax (module docs).
    fn margin_short_circuit(&self, deltas: &CostDeltas) -> bool {
        let ArtifactKind::Assignment { .. } = self.kind else {
            // Margins hold the clustering fixed; a different clustering
            // can overtake strictly inside the interval.
            return false;
        };
        let Some(margins) = &self.margins else {
            return false;
        };
        let k = self.problem.num_tasks();
        if margins.stages.len() != k {
            return false;
        }
        // Exactly one non-unit delta among the costs the assignment DP
        // reads (icom is inert for singleton modules — any number of
        // icom deltas rides along for free).
        enum Hit {
            Exec(usize, f64),
            Ecom(usize, f64),
        }
        let mut hit: Option<Hit> = None;
        for (d, &g) in deltas.exec.iter().enumerate() {
            if g != 1.0 {
                if hit.is_some() {
                    return false;
                }
                hit = Some(Hit::Exec(d, g));
            }
        }
        for (e, &g) in deltas.ecom.iter().enumerate() {
            if g != 1.0 {
                if hit.is_some() {
                    return false;
                }
                hit = Some(Hit::Ecom(e, g));
            }
        }
        let (down, up, g) = match hit {
            Some(Hit::Exec(d, g)) => {
                let s = &margins.stages[d];
                (s.exec_down, s.exec_up, g)
            }
            Some(Hit::Ecom(e, g)) => {
                // Edge e is stage e+1's incoming transfer.
                let s = &margins.stages[e + 1];
                (s.ecom_in_down, s.ecom_in_up, g)
            }
            None => return false, // identity: handled before us
        };
        strictly_inside(g, down, up)
    }

    fn finish(
        &self,
        solution: Solution,
        mechanism: ResolveMechanism,
        cells: u64,
        frontier: usize,
    ) -> ResolveOutcome {
        let rec = pipemap_obs::global();
        let changed = solution.mapping != self.solution.mapping;
        rec.add(names::SOLVER_RESOLVE_CELLS, cells);
        rec.gauge_set(
            names::SOLVER_RESOLVE_MECHANISM,
            match mechanism {
                ResolveMechanism::ShortCircuit => 0.0,
                ResolveMechanism::Suffix => 1.0,
            },
        );
        rec.gauge_set(names::SOLVER_RESOLVE_FRONTIER, frontier as f64);
        rec.gauge_set(
            names::SOLVER_RESOLVE_CHANGED,
            if changed { 1.0 } else { 0.0 },
        );
        ResolveOutcome {
            solution,
            mechanism,
            cells,
            frontier,
            changed,
        }
    }
}

/// Relative guard shaved off both ends of a stability interval before the
/// short-circuit may fire. The margin engine resolves crossings to about
/// 1e-9 relative; 1e-6 is comfortably beyond that and still admits
/// essentially the whole interval.
const MARGIN_GUARD: f64 = 1e-6;

/// `down * (1 + guard) < g < up * (1 - guard)`, with the conventions of
/// [`crate::StageMargin`]: `down == 0` means "never crosses downward",
/// `up == +inf` means "never crosses upward".
fn strictly_inside(g: f64, down: f64, up: f64) -> bool {
    if !(g.is_finite() && g > 0.0) {
        return false;
    }
    let above = if down <= 0.0 {
        true
    } else {
        g > down * (1.0 + MARGIN_GUARD)
    };
    let below = if up.is_finite() {
        g < up * (1.0 - MARGIN_GUARD)
    } else {
        true
    };
    above && below
}

/// Path value of `assignment` on `table` in the assignment DP's internal
/// arithmetic: the exact per-stage own-term expressions of `run_dp`,
/// folded with `min` (exact in floating point). Equals the DP value of
/// this assignment's path bit-for-bit, hence an admissible incumbent —
/// the optimum of the patched table is ≥ it. `NEG_INFINITY` when the
/// assignment is no longer realisable (cannot happen for pure cost
/// drift; defensive).
fn warm_assignment(table: &CostTable, p: usize, assignment: &[Procs]) -> f64 {
    let dense = table.dense();
    let k = assignment.len();
    let mut inst = vec![0usize; k];
    let mut r = vec![0.0f64; k];
    for j in 0..k {
        match table.module_replication(j, j, assignment[j]) {
            Some(rep) => {
                inst[j] = rep.procs_per_instance;
                r[j] = rep.instances as f64;
            }
            None => return f64::NEG_INFINITY,
        }
    }
    let mut worst = f64::INFINITY;
    for j in 0..k {
        let e = dense.exec(j, inst[j]);
        let eout = if j + 1 < k {
            dense.ecom_slab(j)[(inst[j] - 1) * p + (inst[j + 1] - 1)]
        } else {
            0.0
        };
        let own = if j == 0 {
            dp::throughput_of((e + eout) / r[j])
        } else {
            let ein = dense.ecom_slab(j - 1)[(inst[j - 1] - 1) * p + (inst[j] - 1)];
            dp::throughput_of(((e + ein) + eout) / r[j])
        };
        worst = worst.min(own);
    }
    worst
}

/// Path value of `mapping` on `table` in the cluster DP's internal
/// arithmetic (see [`warm_assignment`]): per module,
/// `cluster_thr(r, [cin +] exec + out)` with the exact association order
/// of `run_cluster_dp`'s candidate fold.
fn warm_mapping(table: &CostTable, p: usize, k: usize, mapping: &Mapping) -> f64 {
    let dense = table.dense();
    let mods = &mapping.modules;
    let mut worst = f64::INFINITY;
    for (mi, m) in mods.iter().enumerate() {
        let exec = table.module_exec(m.first, m.last, m.procs);
        let out = if m.last + 1 < k {
            dense.ecom_slab(m.last)[(m.procs - 1) * p + (mods[mi + 1].procs - 1)]
        } else {
            0.0
        };
        let base_f = exec + out;
        let thr = if m.first == 0 {
            dp_cluster::cluster_thr(m.replicas as f64, base_f)
        } else {
            let cin = dense.ecom_slab(m.first - 1)[(mods[mi - 1].procs - 1) * p + (m.procs - 1)];
            dp_cluster::cluster_thr(m.replicas as f64, cin + base_f)
        };
        worst = worst.min(thr);
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{dp_assignment_with, dp_mapping_with};
    use pipemap_model::{PolyEcom, PolyUnary};

    fn problem() -> Problem {
        let chain = ChainBuilder::new()
            .task(Task::new("a", PolyUnary::new(0.1, 6.0, 0.02)))
            .edge(Edge::new(
                PolyUnary::new(0.05, 0.0, 0.0),
                PolyEcom::new(0.2, 1.0, 1.0, 0.05, 0.05),
            ))
            .task(Task::new("b", PolyUnary::new(0.0, 10.0, 0.01)))
            .edge(Edge::new(
                PolyUnary::zero(),
                PolyEcom::new(0.1, 0.5, 0.5, 0.02, 0.02),
            ))
            .task(Task::new("c", PolyUnary::perfectly_parallel(3.0)))
            .build();
        Problem::new(chain, 20, 1e9)
    }

    #[test]
    fn identity_deltas_short_circuit() {
        let p = problem();
        let art = ResolveArtifact::build(&p, &SolveOptions::default()).unwrap();
        let out = art.resolve(&CostDeltas::identity(3)).unwrap();
        assert_eq!(out.mechanism, ResolveMechanism::ShortCircuit);
        assert_eq!(out.cells, 0);
        assert!(!out.changed);
        assert_eq!(
            out.solution.throughput.to_bits(),
            art.solution().throughput.to_bits()
        );
    }

    #[test]
    fn cluster_suffix_matches_cold_solve_bitwise() {
        let p = problem();
        let opts = SolveOptions::default();
        let art = ResolveArtifact::build(&p, &opts).unwrap();
        for (stage, factor) in [(0usize, 1.8), (1, 0.55), (2, 3.0)] {
            let mut d = CostDeltas::identity(3);
            d.set_exec(stage, factor);
            let out = art.resolve(&d).unwrap();
            let cold = dp_mapping_with(&reprice_problem(&p, &d), &opts).unwrap();
            assert_eq!(
                out.solution.throughput.to_bits(),
                cold.throughput.to_bits(),
                "exec drift {factor} at task {stage}"
            );
            assert_eq!(out.solution.mapping, cold.mapping);
            assert_eq!(out.mechanism, ResolveMechanism::Suffix);
        }
    }

    #[test]
    fn assignment_suffix_matches_cold_solve_bitwise() {
        let p = problem().without_replication();
        let opts = SolveOptions::default();
        let art = ResolveArtifact::build_assignment(&p, &opts).unwrap();
        let mut d = CostDeltas::identity(3);
        d.set_exec(1, 2.5);
        d.set_ecom(1, 0.4);
        let out = art.resolve(&d).unwrap();
        let (cold, _) = dp_assignment_with(&reprice_problem(&p, &d), &opts).unwrap();
        assert_eq!(out.solution.throughput.to_bits(), cold.throughput.to_bits());
        assert_eq!(out.solution.mapping, cold.mapping);
        assert_eq!(out.frontier, 1);
    }

    #[test]
    fn icom_deltas_are_inert_for_assignment_artifacts() {
        let p = problem().without_replication();
        let opts = SolveOptions::default();
        let art = ResolveArtifact::build_assignment(&p, &opts).unwrap();
        let mut d = CostDeltas::identity(3);
        d.set_icom(0, 5.0);
        d.set_icom(1, 0.1);
        let out = art.resolve(&d).unwrap();
        assert_eq!(out.mechanism, ResolveMechanism::ShortCircuit);
        assert_eq!(out.cells, 0);
        let (cold, _) = dp_assignment_with(&reprice_problem(&p, &d), &opts).unwrap();
        assert_eq!(out.solution.throughput.to_bits(), cold.throughput.to_bits());
        assert_eq!(out.solution.mapping, cold.mapping);
    }

    #[test]
    fn margin_short_circuit_fires_and_is_exact() {
        let p = problem().without_replication();
        let opts = SolveOptions::default();
        let art = ResolveArtifact::build_assignment(&p, &opts).unwrap();
        let margins = art.margins().expect("margins tractable at this size");
        // A tiny drift on the bottleneck stage's exec cost, well inside
        // its margin interval.
        let stage = margins.bottleneck;
        let up = margins.stages[stage].exec_up;
        let g = if up.is_finite() {
            1.0 + (up - 1.0).min(0.02) / 2.0
        } else {
            1.01
        };
        let mut d = CostDeltas::identity(3);
        d.set_exec(stage, g);
        let out = art.resolve(&d).unwrap();
        assert_eq!(
            out.mechanism,
            ResolveMechanism::ShortCircuit,
            "g = {g}, margin up = {up}"
        );
        assert_eq!(out.cells, 0);
        let (cold, _) = dp_assignment_with(&reprice_problem(&p, &d), &opts).unwrap();
        assert_eq!(out.solution.throughput.to_bits(), cold.throughput.to_bits());
        assert_eq!(out.solution.mapping, cold.mapping);
    }

    #[test]
    fn reprice_identity_is_bitwise_noop() {
        let p = problem();
        let q = reprice_problem(&p, &CostDeltas::identity(3));
        for procs in 1..=20 {
            for i in 0..3 {
                assert_eq!(
                    p.chain.task(i).exec.eval(procs).to_bits(),
                    q.chain.task(i).exec.eval(procs).to_bits()
                );
            }
        }
    }
}
