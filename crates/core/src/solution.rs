//! Solver result and error types.

use std::fmt;

use pipemap_chain::{throughput, Mapping, Problem};

/// A mapping produced by one of the solvers, together with the throughput
/// it is predicted to achieve.
#[derive(Clone, Debug, PartialEq)]
pub struct Solution {
    /// The mapping: clustering, replication, processor allocation.
    pub mapping: Mapping,
    /// Predicted throughput in data sets per second, recomputed from the
    /// mapping by `pipemap_chain::throughput` (never the solver's internal
    /// bookkeeping value).
    pub throughput: f64,
}

impl Solution {
    /// Wrap a mapping, computing its throughput from first principles.
    pub fn from_mapping(problem: &Problem, mapping: Mapping) -> Self {
        let throughput = throughput(&problem.chain, &mapping);
        Self {
            mapping,
            throughput,
        }
    }
}

/// Why a solver failed to produce a mapping.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SolveError {
    /// No valid mapping exists: some task cannot fit in memory at any
    /// processor count, or the singleton floors already exceed `P`.
    Infeasible,
    /// The instance is too large for this solver (used by the brute-force
    /// oracles to refuse exponential blow-ups).
    TooLarge {
        /// A human-readable bound that was exceeded.
        limit: &'static str,
    },
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Infeasible => write!(f, "no valid mapping exists for this problem"),
            SolveError::TooLarge { limit } => {
                write!(f, "instance exceeds this solver's limit: {limit}")
            }
        }
    }
}

impl std::error::Error for SolveError {}

#[cfg(test)]
mod tests {
    use super::*;
    use pipemap_chain::{ChainBuilder, ModuleAssignment, Task};
    use pipemap_model::PolyUnary;

    #[test]
    fn from_mapping_recomputes_throughput() {
        let c = ChainBuilder::new()
            .task(Task::new("t", PolyUnary::perfectly_parallel(4.0)))
            .build();
        let p = Problem::new(c, 8, 1e9);
        let m = Mapping::new(vec![ModuleAssignment::new(0, 0, 1, 4)]);
        let s = Solution::from_mapping(&p, m);
        assert!((s.throughput - 1.0).abs() < 1e-12);
    }

    #[test]
    fn errors_display() {
        assert!(SolveError::Infeasible.to_string().contains("no valid"));
        assert!(SolveError::TooLarge { limit: "k <= 8" }
            .to_string()
            .contains("k <= 8"));
    }
}
