//! Decision provenance and exact stability margins for the DP solvers.
//!
//! The solvers are exact but opaque: they return *the* optimal mapping and
//! nothing about how close the race was. This module records the winning
//! decision path (one [`DecisionCell`] per module, with the runner-up
//! predecessor choice) and derives, for each stage, the **exact stability
//! margin**: the multiplicative factor by which that stage's fitted
//! execution or communication cost can drift before the optimal mapping
//! changes. Margins are computed from the solver's own value tables plus a
//! backward (suffix) DP — no Monte-Carlo, no re-solving per probe point.
//!
//! ## How the margins are exact
//!
//! Scale one module's execution cost by a factor `γ`. Every candidate
//! mapping's throughput, as a function of `γ`, is the minimum of a constant
//! (the rest of its chain) and rational curves `r / (c + γ·d)` (the
//! module's own effective response, whose scaled term is `d`). The optimal
//! alternative *through a different local configuration* of stage `i` has
//! value `min(Wℓ, xℓ(γ))`, where the best completion `Wℓ` comes from
//! joining the forward value table `V_{i-1}` (everything left of the
//! stage) with a suffix table `S_{i+1}` (everything right of it) over the
//! processor split — both tables are `γ`-free because they exclude the
//! scaled stage. The chosen mapping's value is `min(C*, x*(γ))` with `C*`
//! the chosen rest-of-chain constant. The flip point is the first `γ` at
//! which some alternative strictly exceeds the chosen value; since every
//! curve is a hyperbola in `γ`, all pairwise crossings are closed-form and
//! the first flip is found by scanning the elementary intervals they
//! induce. The same construction with the scaled term on an edge's
//! external-communication cost (which appears in *both* adjacent modules'
//! responses) yields the communication margins.
//!
//! For a clustered mapping the chain is first contracted to one task per
//! module ([`crate::cluster::contract_chain`]), so margins answer "how far
//! can this *module's* cost drift before the allocation/replication
//! decision flips, holding the chosen clustering fixed". For singleton
//! mappings this is the full assignment-level question.

use pipemap_chain::{module_response, CostTable, Mapping, ModuleAssignment, Problem};
use pipemap_model::Procs;

use crate::cluster::contract_chain;
use crate::dp::{self, DpTrace};
use crate::options::SolveOptions;
use crate::solution::SolveError;

/// Margins refuse instances beyond this processor count: the joins are
/// polynomial but dense, and paper-scale problems sit far below it.
const MARGIN_MAX_PROCS: usize = 192;

/// Work-estimate ceiling (inner-loop iterations) across all margin joins.
/// Chains of non-replicable tasks keep one axis entry per raw offer, which
/// can push the edge joins toward `P⁵`; refuse rather than hang.
const MARGIN_WORK_LIMIT: u64 = 4_000_000_000;

/// Relative slack when testing whether an alternative *strictly* beats the
/// chosen mapping: value tables and the chain evaluator fold the same
/// costs in different association orders, so ignore ulp-level wins.
const REL_EPS: f64 = 1e-9;

/// Per-stage cell statistics of one DP run (the raw material of the
/// `pipemap explain` pruning heatmap).
#[derive(Clone, Copy, Debug, Default)]
pub struct StageCells {
    /// Stage identity: the task (assignment DP) or end-task (cluster DP)
    /// index.
    pub stage: usize,
    /// DP cells enumerated, including pruned ones.
    pub cells: u64,
    /// Cells skipped wholesale by bounds or reachability.
    pub pruned: u64,
    /// Inner candidate-scan value lookups.
    pub lookups: u64,
    /// Candidates skipped by the running-best test.
    pub skips: u64,
}

/// The best predecessor choice *other than* the chosen one at a decision
/// cell. Exact only when the solve ran unpruned (see
/// [`SolveOptions::provenance`]).
#[derive(Clone, Copy, Debug)]
pub struct RunnerUp {
    /// Length (in tasks) of the alternative previous module (always 1 for
    /// the assignment DP).
    pub prev_len: usize,
    /// Processors offered to the alternative previous module.
    pub prev_procs: usize,
    /// The subchain throughput that alternative would have achieved.
    pub value: f64,
}

/// One winning-path DP cell: the configuration the solver chose for one
/// module, and how it was reached.
#[derive(Clone, Debug)]
pub struct DecisionCell {
    /// Module index in pipeline order.
    pub index: usize,
    /// First task of the module (original chain indices).
    pub first: usize,
    /// Last task of the module.
    pub last: usize,
    /// Raw processors offered to the module.
    pub offer: usize,
    /// Replication degree chosen by the policy at this offer.
    pub instances: usize,
    /// Processors per instance.
    pub instance_procs: Procs,
    /// Processor budget (`pt`) at this cell.
    pub budget: usize,
    /// The cell's DP value: best bottleneck throughput of the subchain
    /// ending here.
    pub value: f64,
    /// Length of the chosen previous module (0 at the first module).
    pub chosen_prev_len: usize,
    /// Processors of the chosen previous module (0 at the first module).
    pub chosen_prev_procs: usize,
    /// Best alternative predecessor, if any candidate besides the chosen
    /// one was feasible.
    pub runner_up: Option<RunnerUp>,
    /// Module execution time at the instance size (internal comm folded
    /// in).
    pub exec_s: f64,
    /// Incoming external transfer at the chosen instance sizes.
    pub ecom_in_s: f64,
    /// Outgoing external transfer at the chosen instance sizes.
    pub ecom_out_s: f64,
}

impl DecisionCell {
    /// The module's response time `cin + exec + cout` (one instance).
    pub fn response_s(&self) -> f64 {
        self.ecom_in_s + self.exec_s + self.ecom_out_s
    }

    /// Effective response: response divided by the replication degree —
    /// the term the pipeline bottleneck takes its max over.
    pub fn effective_s(&self) -> f64 {
        self.response_s() / self.instances as f64
    }
}

/// Full decision provenance of one solve: the winning path plus per-stage
/// cell statistics.
#[derive(Clone, Debug)]
pub struct Provenance {
    /// Which solver produced this (`"dp_assignment"` or `"dp_mapping"`).
    pub algorithm: &'static str,
    /// The solve's optimal throughput (internal DP value).
    pub throughput: f64,
    /// Winning-path cells in pipeline order.
    pub cells: Vec<DecisionCell>,
    /// Per-stage cell statistics (pruning heatmap rows).
    pub stage_cells: Vec<StageCells>,
    /// Whether runner-up values are exact (unpruned scan). The entry
    /// points force this; a pruned trace would drop sub-incumbent
    /// candidates wholesale.
    pub exact_runner_ups: bool,
}

/// Exact stability margins of one mapped stage (one module).
#[derive(Clone, Debug)]
pub struct StageMargin {
    /// Module index in pipeline order.
    pub index: usize,
    /// First task (original chain indices).
    pub first: usize,
    /// Last task.
    pub last: usize,
    /// Raw processors offered to the module.
    pub offer: usize,
    /// Replication degree.
    pub instances: usize,
    /// Processors per instance.
    pub instance_procs: Procs,
    /// Module response time `cin + exec + cout` (one instance).
    pub response_s: f64,
    /// Effective response (response / instances).
    pub effective_s: f64,
    /// Bottleneck slack: this stage's throughput over the pipeline
    /// throughput (`1.0` at the bottleneck). How much this stage's
    /// *response* can grow before it becomes the bottleneck — a weaker,
    /// classical robustness number reported alongside the exact margins.
    pub slack: f64,
    /// Factor (≥ 1) the module's execution cost can grow before the
    /// optimal mapping changes; `inf` if it never does.
    pub exec_up: f64,
    /// Factor (≤ 1) the execution cost can shrink before the optimum
    /// changes; `0` if it never does.
    pub exec_down: f64,
    /// Factor (≥ 1) the incoming edge's external-communication cost can
    /// grow before the optimum changes (`inf` for the first module or
    /// when it never flips).
    pub ecom_in_up: f64,
    /// Factor (≤ 1) the incoming edge's cost can shrink before the
    /// optimum changes (`0` for the first module or when it never flips).
    pub ecom_in_down: f64,
    /// The raw offer of the alternative configuration this stage first
    /// flips to as its execution cost grows (when `exec_up` is finite).
    pub flip_offer: Option<usize>,
}

/// Exact stability margins of a mapping, one entry per module.
#[derive(Clone, Debug)]
pub struct MarginReport {
    /// Pipeline throughput of the analysed mapping.
    pub throughput: f64,
    /// Index of the bottleneck module.
    pub bottleneck: usize,
    /// Per-module margins in pipeline order.
    pub stages: Vec<StageMargin>,
}

impl MarginReport {
    /// The tightest upward execution margin across stages — the first
    /// drift factor at which *any* stage's growth flips the mapping.
    pub fn min_exec_up(&self) -> f64 {
        self.stages
            .iter()
            .map(|s| s.exec_up)
            .fold(f64::INFINITY, f64::min)
    }
}

/// `r / f` with the solvers' conventions: a zero-cost module is infinitely
/// fast, an infinitely slow one contributes throughput 0.
#[inline]
pub(crate) fn thr(r: f64, f: f64) -> f64 {
    if f <= 0.0 {
        f64::INFINITY
    } else if f.is_infinite() {
        0.0
    } else {
        r / f
    }
}

// ---------------------------------------------------------------------------
// Rational-curve first-crossing machinery.
//
// Every candidate value as a function of the drift factor γ is the minimum
// of curves `r / (c + γ·d)` (constants are `d = 0`). Two curves cross at
// most once at a closed-form γ, so the real line splits into elementary
// intervals on which the comparison of two min-families is constant.
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, Debug)]
struct Curve {
    r: f64,
    c: f64,
    d: f64,
}

impl Curve {
    fn constant(v: f64) -> Self {
        Curve {
            r: v,
            c: 1.0,
            d: 0.0,
        }
    }

    fn eval(&self, g: f64) -> f64 {
        let den = self.c + g * self.d;
        if den <= 0.0 {
            f64::INFINITY
        } else {
            self.r / den
        }
    }
}

fn family_min(curves: &[Curve], g: f64) -> f64 {
    curves
        .iter()
        .map(|c| c.eval(g))
        .fold(f64::INFINITY, f64::min)
}

/// Does the alternative strictly beat the chosen value at `g`? Strict with
/// relative slack so ulp-level association noise never reports a flip.
fn beats(alt: &[Curve], chosen: &[Curve], g: f64) -> bool {
    let a = family_min(alt, g);
    let b = family_min(chosen, g);
    if a.is_infinite() && b.is_infinite() {
        return false;
    }
    a > b * (1.0 + REL_EPS)
}

/// γ at which `u` and `v` cross: `r_u (c_v + γ d_v) = r_v (c_u + γ d_u)`.
fn push_crossing(u: &Curve, v: &Curve, out: &mut Vec<f64>) {
    let den = u.r * v.d - v.r * u.d;
    if den == 0.0 {
        return; // parallel or identical: no isolated crossing
    }
    let g = (v.r * u.c - u.r * v.c) / den;
    if g.is_finite() && g > 0.0 {
        out.push(g);
    }
}

fn all_crossings(alt: &[Curve], chosen: &[Curve]) -> Vec<f64> {
    let mut out = Vec::new();
    let all: Vec<&Curve> = alt.iter().chain(chosen.iter()).collect();
    for i in 0..all.len() {
        for j in i + 1..all.len() {
            push_crossing(all[i], all[j], &mut out);
        }
    }
    out
}

/// First γ ≥ 1 at which the alternative family strictly exceeds the chosen
/// family; `inf` if it never does. Returns the *interval edge* (the exact
/// indifference point), so the safe drift region is `[1, result)`.
fn first_flip_up(alt: &[Curve], chosen: &[Curve]) -> f64 {
    if alt.is_empty() {
        // No constraints at all: an unconstrained (infinitely fast)
        // alternative wins immediately unless the chosen is also
        // unconstrained.
        return if chosen.is_empty() {
            f64::INFINITY
        } else {
            1.0
        };
    }
    let mut bps = all_crossings(alt, chosen);
    bps.retain(|&g| g > 1.0);
    bps.sort_by(f64::total_cmp);
    let mut lo = 1.0;
    for &bp in &bps {
        if beats(alt, chosen, 0.5 * (lo + bp)) {
            return lo;
        }
        lo = bp;
    }
    if beats(alt, chosen, 2.0 * lo + 1.0) {
        return lo;
    }
    f64::INFINITY
}

/// Largest γ ≤ 1 at which the alternative family strictly exceeds the
/// chosen family as γ shrinks; `0` if it never does. The safe region is
/// `(result, 1]`.
fn first_flip_down(alt: &[Curve], chosen: &[Curve]) -> f64 {
    if alt.is_empty() {
        return if chosen.is_empty() { 0.0 } else { 1.0 };
    }
    let mut bps = all_crossings(alt, chosen);
    bps.retain(|&g| g > 0.0 && g < 1.0);
    bps.sort_by(f64::total_cmp);
    let mut hi = 1.0;
    for &bp in bps.iter().rev() {
        if beats(alt, chosen, 0.5 * (bp + hi)) {
            return hi;
        }
        hi = bp;
    }
    if beats(alt, chosen, 0.5 * hi) {
        return hi;
    }
    0.0
}

// ---------------------------------------------------------------------------
// Suffix (backward) DP.
// ---------------------------------------------------------------------------

/// Per-module axis data on the contracted chain.
struct ModInfo {
    floor: usize,
    /// Offer → instance size (`0` below the floor).
    inst_of: Vec<Procs>,
    /// Offer → replication degree.
    r_of: Vec<f64>,
    /// Distinct achievable instance sizes, sorted.
    insts: Vec<Procs>,
    /// Instance size → index into `insts` (`usize::MAX` otherwise).
    idx_of: Vec<usize>,
}

const NO_IDX: usize = usize::MAX;

impl ModInfo {
    fn build(table: &CostTable, i: usize, p: usize) -> Result<Self, SolveError> {
        let floor = table.module_floor(i, i).ok_or(SolveError::Infeasible)?;
        if floor > p {
            return Err(SolveError::Infeasible);
        }
        let mut inst_of = vec![0usize; p + 1];
        let mut r_of = vec![0.0f64; p + 1];
        for q in floor..=p {
            let rep = table
                .module_replication(i, i, q)
                .expect("offer >= floor implies a replication exists");
            inst_of[q] = rep.procs_per_instance;
            r_of[q] = rep.instances as f64;
        }
        let mut insts: Vec<usize> = inst_of[floor..=p].to_vec();
        insts.sort_unstable();
        insts.dedup();
        let mut idx_of = vec![NO_IDX; p + 1];
        for (x, &inst) in insts.iter().enumerate() {
            idx_of[inst] = x;
        }
        Ok(Self {
            floor,
            inst_of,
            r_of,
            insts,
            idx_of,
        })
    }
}

/// Instance-collapsed suffix table for module `j`:
/// `value[(bud * n_own + oi) * n_prev + pi]` = best min-throughput over
/// modules `j..k-1` on *at most* `bud` processors, module `j` running at
/// own-instance `insts_j[oi]`, its predecessor at instance
/// `insts_{j-1}[pi]`. Monotone non-decreasing in `bud`.
struct SuffixMax {
    value: Vec<f64>,
    n_own: usize,
    n_prev: usize,
}

fn build_suffix(table: &CostTable, info: &[ModInfo], k: usize, p: usize) -> Vec<Option<SuffixMax>> {
    let neg = f64::NEG_INFINITY;
    let mut suffix: Vec<Option<SuffixMax>> = (0..k).map(|_| None).collect();
    for j in (1..k).rev() {
        let own = &info[j];
        let prev = &info[j - 1];
        let n_own = own.insts.len();
        let n_prev = prev.insts.len();
        let mut value = vec![neg; (p + 1) * n_own * n_prev];
        for (pi, &pinst) in prev.insts.iter().enumerate() {
            for pj in own.floor..=p {
                let inst = own.inst_of[pj];
                let r = own.r_of[pj];
                let oi = own.idx_of[inst];
                let cin = table.ecom(j - 1, pinst, inst);
                if j + 1 == k {
                    let v = thr(r, table.exec(j, inst) + cin);
                    for bud in pj..=p {
                        let cell = &mut value[(bud * n_own + oi) * n_prev + pi];
                        if v > *cell {
                            *cell = v;
                        }
                    }
                } else {
                    let next = suffix[j + 1].as_ref().expect("built right-to-left");
                    // The own response depends on the successor only via
                    // its instance size; precompute per next-instance.
                    let own_thr: Vec<f64> = info[j + 1]
                        .insts
                        .iter()
                        .map(|&ni| thr(r, table.exec(j, inst) + cin + table.ecom(j, inst, ni)))
                        .collect();
                    for bud in pj..=p {
                        let bud2 = bud - pj;
                        let mut best = neg;
                        for (ni, &ot) in own_thr.iter().enumerate() {
                            let s = next.value[(bud2 * next.n_own + ni) * next.n_prev + oi];
                            if s == neg {
                                continue;
                            }
                            let cand = if ot < s { ot } else { s };
                            if cand > best {
                                best = cand;
                            }
                        }
                        let cell = &mut value[(bud * n_own + oi) * n_prev + pi];
                        if best > *cell {
                            *cell = best;
                        }
                    }
                }
            }
        }
        suffix[j] = Some(SuffixMax {
            value,
            n_own,
            n_prev,
        });
    }
    suffix
}

/// `max over s in 0..=total of min(a[s], b[total - s])` for monotone
/// non-decreasing `a` and `b` — the processor-split join. The optimum sits
/// where the two cross; binary-search it.
fn join_split(a: &[f64], b: &[f64], total: usize) -> f64 {
    let (mut lo, mut hi) = (0usize, total);
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        if a[mid] <= b[total - mid] {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    let mut best = a[lo].min(b[total - lo]);
    if lo < total {
        let c = a[lo + 1].min(b[total - lo - 1]);
        if c > best {
            best = c;
        }
    }
    best
}

// ---------------------------------------------------------------------------
// Margins.
// ---------------------------------------------------------------------------

/// Exact stability margins of `mapping` on `problem`.
///
/// The chain is contracted to the mapping's clustering (a no-op for
/// singleton mappings), so each reported stage is one module and the
/// margins hold the clustering fixed: they answer how far one module's
/// execution cost — or one edge's external-communication cost — can drift,
/// multiplicatively, before a *different allocation or replication* becomes
/// strictly better than the chosen mapping.
///
/// Errors with [`SolveError::TooLarge`] when the instance exceeds the
/// margin engine's processor or work budget, and
/// [`SolveError::Infeasible`] when the mapping's configurations cannot be
/// reproduced from the problem's replication policy (a mapping not
/// produced by the solvers on this problem).
pub fn stability_margins(problem: &Problem, mapping: &Mapping) -> Result<MarginReport, SolveError> {
    let rec = pipemap_obs::global();
    let _wall = rec.timer("solver.margins.wall_s");
    let _span = pipemap_obs::span!("stability_margins", "solver");

    let clustering: Vec<(usize, usize)> =
        mapping.modules.iter().map(|m| (m.first, m.last)).collect();
    let contracted = contract_chain(problem, &clustering);
    let cp = &contracted.problem;
    let k = cp.num_tasks();
    let p = cp.total_procs;
    if p > MARGIN_MAX_PROCS {
        return Err(SolveError::TooLarge {
            limit: "stability margins support P <= 192",
        });
    }
    let table = CostTable::build(cp);
    let info: Vec<ModInfo> = (0..k)
        .map(|i| ModInfo::build(&table, i, p))
        .collect::<Result<_, _>>()?;

    // Reproduce each module's raw offer from its (replicas, procs) pair.
    let mut offers = Vec::with_capacity(k);
    for (i, m) in mapping.modules.iter().enumerate() {
        let q = (info[i].floor..=p)
            .find(|&q| info[i].inst_of[q] == m.procs && info[i].r_of[q] == m.replicas as f64)
            .ok_or(SolveError::Infeasible)?;
        offers.push(q);
    }

    // Refuse instances whose joins would be excessively dense.
    let axis: Vec<u64> = info.iter().map(|m| m.insts.len() as u64).collect();
    let pp = p as u64;
    let mut work: u64 = 0;
    for j in 1..k {
        work = work.saturating_add(axis[j - 1] * pp * pp * axis.get(j + 1).copied().unwrap_or(1));
    }
    for i in 0..k {
        let ia = if i > 0 { axis[i - 1] } else { 1 };
        let ib = axis.get(i + 1).copied().unwrap_or(1);
        // Exec join: pl × (amax build + class pairs × log P).
        work = work.saturating_add(pp * (pp * pp + ia * ib * 8));
        if i > 0 {
            // Edge join: pa × pb × class pairs × log P, plus amax builds.
            let i2 = if i >= 2 { axis[i - 2] } else { 1 };
            work = work.saturating_add(pp * pp * i2 * ib * 8 + pp * pp * pp);
        }
    }
    if work > MARGIN_WORK_LIMIT {
        return Err(SolveError::TooLarge {
            limit: "stability margin work budget",
        });
    }

    // Chosen mapping's per-module throughputs on the contracted chain.
    let cmapping = Mapping::new(
        mapping
            .modules
            .iter()
            .enumerate()
            .map(|(i, m)| ModuleAssignment::new(i, i, m.replicas, m.procs))
            .collect(),
    );
    let breakdowns: Vec<_> = (0..k)
        .map(|i| module_response(&cp.chain, &cmapping, i))
        .collect();
    let thr_mod: Vec<f64> = breakdowns
        .iter()
        .map(|b| thr(b.replicas as f64, b.total()))
        .collect();
    let overall = thr_mod.iter().fold(f64::INFINITY, |a, &b| a.min(b));
    let bottleneck = thr_mod
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or(0);

    // Forward value tables (γ-free pieces left of each stage) and the
    // suffix tables (right of each stage).
    let fwd_opts = SolveOptions {
        prune: false,
        provenance: false,
        ..SolveOptions::default()
    };
    let trace = dp::run_dp(cp, &table, true, &fwd_opts)?;
    let suffix = build_suffix(&table, &info, k, p);

    let neg = f64::NEG_INFINITY;
    let mut stages_out = Vec::with_capacity(k);
    for i in 0..k {
        let m = &mapping.modules[i];
        let inst_star = m.procs;
        let r_star = m.replicas as f64;
        let e_star = table.exec(i, inst_star);
        let cin_star = if i > 0 {
            table.ecom(i - 1, mapping.modules[i - 1].procs, inst_star)
        } else {
            0.0
        };
        let cout_star = if i + 1 < k {
            table.ecom(i, inst_star, mapping.modules[i + 1].procs)
        } else {
            0.0
        };
        let rest_min = (0..k)
            .filter(|&j| j != i)
            .map(|j| thr_mod[j])
            .fold(f64::INFINITY, f64::min);
        let mut chosen = Vec::new();
        if rest_min.is_finite() {
            chosen.push(Curve::constant(rest_min));
        }
        chosen.push(Curve {
            r: r_star,
            c: cin_star + cout_star,
            d: e_star,
        });

        let mut exec_up = f64::INFINITY;
        let mut exec_down = 0.0f64;
        let mut flip_offer = None;

        for pl in info[i].floor..=p {
            let inst = info[i].inst_of[pl];
            let r = info[i].r_of[pl];
            let e = table.exec(i, inst);
            let total = p - pl;

            // Prefix rows: best V_{i-1}(b, ·, pl) per predecessor
            // instance class; monotone in b.
            let amax: Vec<Vec<f64>> = if i > 0 {
                let prev = &info[i - 1];
                let vstage = &trace.stages[i - 1];
                let mut rows = vec![vec![neg; p + 1]; prev.insts.len()];
                for q in prev.floor..=p {
                    let pi = prev.idx_of[prev.inst_of[q]];
                    let row = &mut rows[pi];
                    for (b, cell) in row.iter_mut().enumerate().take(total + 1) {
                        let v = vstage.get(b, q, pl);
                        if v > *cell {
                            *cell = v;
                        }
                    }
                }
                rows
            } else {
                Vec::new()
            };

            // Suffix rows: S_{i+1}(c, ·, inst) per successor instance
            // class; monotone in c.
            let brows: Vec<Vec<f64>> = if i + 1 < k {
                let stab = suffix[i + 1].as_ref().expect("suffix built for 1..k");
                let oi = info[i].idx_of[inst];
                (0..info[i + 1].insts.len())
                    .map(|ni| {
                        (0..=total)
                            .map(|c| stab.value[(c * stab.n_own + ni) * stab.n_prev + oi])
                            .collect()
                    })
                    .collect()
            } else {
                Vec::new()
            };

            let prev_classes: Vec<Option<usize>> = if i > 0 {
                (0..info[i - 1].insts.len()).map(Some).collect()
            } else {
                vec![None]
            };
            let next_classes: Vec<Option<usize>> = if i + 1 < k {
                (0..info[i + 1].insts.len()).map(Some).collect()
            } else {
                vec![None]
            };
            for &pc in &prev_classes {
                for &nc in &next_classes {
                    let w = match (pc, nc) {
                        (Some(pi), Some(ni)) => join_split(&amax[pi], &brows[ni], total),
                        (Some(pi), None) => amax[pi][total],
                        (None, Some(ni)) => brows[ni][total],
                        (None, None) => f64::INFINITY,
                    };
                    if w == neg {
                        continue;
                    }
                    let cin = pc.map_or(0.0, |pi| table.ecom(i - 1, info[i - 1].insts[pi], inst));
                    let cout = nc.map_or(0.0, |ni| table.ecom(i, inst, info[i + 1].insts[ni]));
                    let mut alt = Vec::new();
                    if w.is_finite() {
                        alt.push(Curve::constant(w));
                    }
                    alt.push(Curve {
                        r,
                        c: cin + cout,
                        d: e,
                    });
                    let up = first_flip_up(&alt, &chosen);
                    if up < exec_up {
                        exec_up = up;
                        flip_offer = Some(pl);
                    }
                    let down = first_flip_down(&alt, &chosen);
                    if down > exec_down {
                        exec_down = down;
                    }
                }
            }
        }

        // Incoming-edge communication margins: the scaled cost appears in
        // both adjacent modules' responses, so each candidate contributes
        // two hyperbolas sharing the scaled term.
        let (ecom_in_up, ecom_in_down) = if i == 0 {
            (f64::INFINITY, 0.0)
        } else {
            let a = i - 1;
            let ia_star = mapping.modules[a].procs;
            let ra_star = mapping.modules[a].replicas as f64;
            let ce_star = table.ecom(a, ia_star, inst_star);
            let ca0 = table.exec(a, ia_star)
                + if a > 0 {
                    table.ecom(a - 1, mapping.modules[a - 1].procs, ia_star)
                } else {
                    0.0
                };
            let cb0 = e_star + cout_star;
            let rest2 = (0..k)
                .filter(|&j| j != a && j != i)
                .map(|j| thr_mod[j])
                .fold(f64::INFINITY, f64::min);
            let mut chosen_e = Vec::new();
            if rest2.is_finite() {
                chosen_e.push(Curve::constant(rest2));
            }
            chosen_e.push(Curve {
                r: ra_star,
                c: ca0,
                d: ce_star,
            });
            chosen_e.push(Curve {
                r: r_star,
                c: cb0,
                d: ce_star,
            });

            let mut up = f64::INFINITY;
            let mut down = 0.0f64;
            for pa in info[a].floor..=p {
                let ia = info[a].inst_of[pa];
                let ra = info[a].r_of[pa];
                let ea = table.exec(a, ia);
                // Prefix rows left of module a, per its predecessor class.
                let amax2: Vec<Vec<f64>> = if a > 0 {
                    let pprev = &info[a - 1];
                    let vstage = &trace.stages[a - 1];
                    let mut rows = vec![vec![neg; p + 1]; pprev.insts.len()];
                    for q in pprev.floor..=p {
                        let pi = pprev.idx_of[pprev.inst_of[q]];
                        let row = &mut rows[pi];
                        for (bud, cell) in row.iter_mut().enumerate() {
                            let v = vstage.get(bud, q, pa);
                            if v > *cell {
                                *cell = v;
                            }
                        }
                    }
                    rows
                } else {
                    Vec::new()
                };
                for pb in info[i].floor..=p {
                    if pa + pb > p {
                        break;
                    }
                    let ib = info[i].inst_of[pb];
                    let rb = info[i].r_of[pb];
                    let eb = table.exec(i, ib);
                    let ce = table.ecom(a, ia, ib);
                    let total = p - pa - pb;
                    let brows: Vec<Vec<f64>> = if i + 1 < k {
                        let stab = suffix[i + 1].as_ref().expect("suffix built for 1..k");
                        let oi = info[i].idx_of[ib];
                        (0..info[i + 1].insts.len())
                            .map(|ni| {
                                (0..=total)
                                    .map(|c| stab.value[(c * stab.n_own + ni) * stab.n_prev + oi])
                                    .collect()
                            })
                            .collect()
                    } else {
                        Vec::new()
                    };
                    let prev_classes: Vec<Option<usize>> = if a > 0 {
                        (0..info[a - 1].insts.len()).map(Some).collect()
                    } else {
                        vec![None]
                    };
                    let next_classes: Vec<Option<usize>> = if i + 1 < k {
                        (0..info[i + 1].insts.len()).map(Some).collect()
                    } else {
                        vec![None]
                    };
                    for &pc in &prev_classes {
                        let ca =
                            ea + pc.map_or(0.0, |pi| table.ecom(a - 1, info[a - 1].insts[pi], ia));
                        for &nc in &next_classes {
                            let w = match (pc, nc) {
                                (Some(pi), Some(ni)) => join_split(&amax2[pi], &brows[ni], total),
                                (Some(pi), None) => amax2[pi][total],
                                (None, Some(ni)) => brows[ni][total],
                                (None, None) => f64::INFINITY,
                            };
                            if w == neg {
                                continue;
                            }
                            let cb =
                                eb + nc.map_or(0.0, |ni| table.ecom(i, ib, info[i + 1].insts[ni]));
                            let mut alt = Vec::new();
                            if w.is_finite() {
                                alt.push(Curve::constant(w));
                            }
                            alt.push(Curve {
                                r: ra,
                                c: ca,
                                d: ce,
                            });
                            alt.push(Curve {
                                r: rb,
                                c: cb,
                                d: ce,
                            });
                            let u = first_flip_up(&alt, &chosen_e);
                            if u < up {
                                up = u;
                            }
                            let d = first_flip_down(&alt, &chosen_e);
                            if d > down {
                                down = d;
                            }
                        }
                    }
                }
            }
            (up, down)
        };

        let slack = if overall > 0.0 && thr_mod[i].is_finite() {
            thr_mod[i] / overall
        } else {
            f64::INFINITY
        };
        stages_out.push(StageMargin {
            index: i,
            first: m.first,
            last: m.last,
            offer: offers[i],
            instances: m.replicas,
            instance_procs: m.procs,
            response_s: breakdowns[i].total(),
            effective_s: breakdowns[i].effective(),
            slack,
            exec_up,
            exec_down,
            ecom_in_up,
            ecom_in_down,
            flip_offer,
        });
    }

    let min_up = stages_out
        .iter()
        .map(|s| s.exec_up)
        .fold(f64::INFINITY, f64::min);
    if min_up.is_finite() {
        rec.gauge_set(pipemap_obs::names::SOLVER_MARGIN_MIN_UP, min_up);
    }

    Ok(MarginReport {
        throughput: overall,
        bottleneck,
        stages: stages_out,
    })
}

// ---------------------------------------------------------------------------
// Winning-path harvest for the assignment DP.
// ---------------------------------------------------------------------------

/// Rebuild the winning decision path of an (unpruned, stage-keeping)
/// assignment-DP trace: one [`DecisionCell`] per task with its chosen and
/// runner-up predecessor.
pub(crate) fn harvest_assignment(
    problem: &Problem,
    table: &CostTable,
    trace: &DpTrace,
) -> Provenance {
    let k = problem.num_tasks();
    let p = problem.total_procs;
    let floors: Vec<usize> = (0..k)
        .map(|i| problem.task_floor(i).expect("solved problem is feasible"))
        .collect();
    let inst = |i: usize, q: usize| -> usize {
        table
            .module_replication(i, i, q)
            .expect("offer >= floor implies a replication exists")
            .procs_per_instance
    };
    let mut cells: Vec<DecisionCell> = Vec::with_capacity(k);
    let mut pt = p;
    for j in (0..k).rev() {
        let pl = trace.assignment[j];
        let rep = table
            .module_replication(j, j, pl)
            .expect("assignment respects floors");
        let im = rep.procs_per_instance;
        let r = rep.instances as f64;
        let pn_raw = if j + 1 < k {
            trace.assignment[j + 1]
        } else {
            0
        };
        let value = trace.stages[j].get(pt, pl, pn_raw);
        let e = table.exec(j, im);
        let eout = if j + 1 < k {
            table.ecom(j, im, inst(j + 1, trace.assignment[j + 1]))
        } else {
            0.0
        };
        let (prev_procs, ein, runner_up) = if j > 0 {
            let q_star = trace.assignment[j - 1];
            let budget = pt - pl;
            let ein_star = table.ecom(j - 1, inst(j - 1, q_star), im);
            let mut alt_val = f64::NEG_INFINITY;
            let mut alt_q = 0usize;
            for q in floors[j - 1]..=budget {
                if q == q_star {
                    continue;
                }
                let sub = trace.stages[j - 1].get(budget, q, pl);
                if sub == f64::NEG_INFINITY {
                    continue;
                }
                let own = thr(r, (e + table.ecom(j - 1, inst(j - 1, q), im)) + eout);
                let cand = sub.min(own);
                if cand > alt_val {
                    alt_val = cand;
                    alt_q = q;
                }
            }
            let ru = (alt_val > f64::NEG_INFINITY).then_some(RunnerUp {
                prev_len: 1,
                prev_procs: alt_q,
                value: alt_val,
            });
            (q_star, ein_star, ru)
        } else {
            (0, 0.0, None)
        };
        cells.push(DecisionCell {
            index: j,
            first: j,
            last: j,
            offer: pl,
            instances: rep.instances,
            instance_procs: im,
            budget: pt,
            value,
            chosen_prev_len: usize::from(j > 0),
            chosen_prev_procs: prev_procs,
            runner_up,
            exec_s: e,
            ecom_in_s: ein,
            ecom_out_s: eout,
        });
        if j > 0 {
            pt -= pl;
        }
    }
    cells.reverse();
    Provenance {
        algorithm: "dp_assignment",
        throughput: trace.throughput,
        cells,
        stage_cells: trace.stage_cells.clone(),
        exact_runner_ups: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipemap_chain::{ChainBuilder, Edge, Task};
    use pipemap_model::{PolyEcom, PolyUnary};

    #[test]
    fn curve_crossing_is_exact() {
        // 2/(1+γ) crosses the constant 1 at γ = 1; an alternative pinned
        // at 0.9 beats the chosen once the chosen falls below it:
        // 2/(1+γ) = 0.9 → γ = 11/9.
        let chosen = vec![Curve {
            r: 2.0,
            c: 1.0,
            d: 1.0,
        }];
        let alt = vec![Curve::constant(0.9)];
        let up = first_flip_up(&alt, &chosen);
        assert!((up - 11.0 / 9.0).abs() < 1e-12, "up = {up}");
    }

    #[test]
    fn flip_down_finds_rest_bound() {
        // Chosen: min(1.0, 2/(1+γ)); alternative: min(1.5, 2/(1+γ)) —
        // identical own curve, better completion. Going down, the own
        // curve rises above 1.0 at γ = 1, where the alternative's better
        // completion starts to win.
        let chosen = vec![
            Curve::constant(1.0),
            Curve {
                r: 2.0,
                c: 1.0,
                d: 1.0,
            },
        ];
        let alt = vec![
            Curve::constant(1.5),
            Curve {
                r: 2.0,
                c: 1.0,
                d: 1.0,
            },
        ];
        assert_eq!(first_flip_up(&alt, &chosen), f64::INFINITY);
        let down = first_flip_down(&alt, &chosen);
        assert!((down - 1.0).abs() < 1e-12, "down = {down}");
    }

    #[test]
    fn join_split_matches_linear_scan() {
        let a = vec![f64::NEG_INFINITY, 0.1, 0.4, 0.4, 0.9, 1.3];
        let b = vec![0.0, 0.2, 0.5, 0.8, 0.8, 2.0];
        for total in 0..=5 {
            let brute = (0..=total)
                .map(|s| a[s].min(b[total - s]))
                .fold(f64::NEG_INFINITY, f64::max);
            assert_eq!(join_split(&a, &b, total), brute, "total = {total}");
        }
    }

    #[test]
    fn symmetric_split_margin_is_balanced() {
        // Two identical perfectly-parallel tasks on 8 procs, no comm: the
        // DP picks 4/4. Scaling task 0's exec by γ, the 5/3 split takes
        // over when min(5/(8γ), 3/8) > min(4/(8γ), 4/8), i.e. when the
        // rest bound 3/8 exceeds the chosen 4/(8γ):  γ > 4/3.
        let c = ChainBuilder::new()
            .task(Task::new("a", PolyUnary::perfectly_parallel(8.0)))
            .edge(Edge::free())
            .task(Task::new("b", PolyUnary::perfectly_parallel(8.0)))
            .build();
        let p = Problem::new(c, 8, 1e9).without_replication();
        let (sol, _) = crate::dp::dp_assignment(&p).unwrap();
        let rep = stability_margins(&p, &sol.mapping).unwrap();
        assert_eq!(rep.stages.len(), 2);
        let up = rep.stages[0].exec_up;
        assert!((up - 4.0 / 3.0).abs() < 1e-9, "exec_up = {up}");
        // Symmetric stage: same margin on the other side.
        let up1 = rep.stages[1].exec_up;
        assert!((up1 - 4.0 / 3.0).abs() < 1e-9, "exec_up = {up1}");
        // No incoming-edge cost at all: the edge margin never flips.
        assert_eq!(rep.stages[1].ecom_in_up, f64::INFINITY);
    }

    #[test]
    fn single_task_has_no_flip() {
        let c = ChainBuilder::new()
            .task(Task::new("only", PolyUnary::perfectly_parallel(4.0)))
            .build();
        let p = Problem::new(c, 4, 1e9).without_replication();
        let (sol, _) = crate::dp::dp_assignment(&p).unwrap();
        let rep = stability_margins(&p, &sol.mapping).unwrap();
        assert_eq!(rep.stages[0].exec_up, f64::INFINITY);
        assert_eq!(rep.stages[0].exec_down, 0.0);
        assert_eq!(rep.throughput, 1.0);
    }

    #[test]
    fn ecom_margin_flips_to_clustered_allocation() {
        // Two tasks, transfer cost grows with γ: at some point giving the
        // receiver fewer processors (cheaper transfer) must win. Use a
        // sender-procs-proportional ecom so allocations differ in cost.
        let c = ChainBuilder::new()
            .task(Task::new("a", PolyUnary::perfectly_parallel(8.0)))
            .edge(Edge::new(
                PolyUnary::zero(),
                PolyEcom::new(0.1, 0.0, 0.0, 0.08, 0.0),
            ))
            .task(Task::new("b", PolyUnary::perfectly_parallel(8.0)))
            .build();
        let p = Problem::new(c, 8, 1e9).without_replication();
        let (sol, _) = crate::dp::dp_assignment(&p).unwrap();
        let rep = stability_margins(&p, &sol.mapping).unwrap();
        let up = rep.stages[1].ecom_in_up;
        assert!(up.is_finite() && up > 1.0, "ecom_in_up = {up}");
    }
}
