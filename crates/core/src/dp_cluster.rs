//! Optimal mapping with clustering by dynamic programming (§3.3).
//!
//! The full mapping problem decides, jointly: where the module boundaries
//! fall, how many processors each module receives, and (via the §3.2 rule)
//! how far each module is replicated. The paper extends the assignment DP
//! with one extra state component — the *length* of the module following
//! the current subchain — because a module's memory requirement, and hence
//! its processor floor and replication degree, is known only once its full
//! extent is known.
//!
//! ## State space used here
//!
//! We carry the same information in a form that makes every folded response
//! exact under replication:
//!
//! ```text
//! V(j, L, pl, ne, pt) =
//!   best achievable bottleneck throughput over mappings of tasks 0..=j
//!   whose last module is M = [j−L+1 ..= j] with pl processors, given that
//!   the module following M has instance size ne (0 = none), using at most
//!   pt processors for tasks 0..=j.
//! ```
//!
//! The response of `M` itself is folded *at this level*: its extent and
//! processors give its replication `(r, inst)` from the tables; `ne` gives
//! the outgoing transfer; and the recurrence enumerates the previous
//! module's `(length, processors)` pair, which gives the incoming transfer
//! at exact instance sizes:
//!
//! ```text
//! V(j, L, pl, ne, pt) = max over (L', q) of
//!     min( V(j−L, L', q, inst(M), pt − pl),
//!          r_M / (ecom_in(inst', inst) + exec_M(inst) + ecom_out(inst, ne)) )
//! ```
//!
//! with the base case (module starting at task 0) accepting `pl ≤ pt` so
//! processors may be left idle. This is the paper's
//! `M_j(p_total, p_last, p_next, next_mod_length)` with the "next module"
//! collapsed to its instance size (two next-modules with equal instance
//! size are interchangeable for the subproblem, which is what lets the
//! paper's 4-argument table work) and the last module's own length kept
//! explicitly.
//!
//! Worst-case work is `O(k³ P⁴)` with `O(k² P³)` memory; the paper reports
//! `O(P⁴ k²)` counting its per-entry work as `O(P)` amortised. Either way
//! the cost is dominated by `P⁴`, and for the paper's scale (`P = 64`,
//! `k ≤ 5`) the solve completes in seconds; the greedy algorithm exists
//! precisely because this is too slow for large `P` or dynamic mapping.
//!
//! ## Performance layer
//!
//! [`dp_mapping_with`] exposes the same knobs as the assignment DP (see
//! [`crate::dp`] and [`SolveOptions`]); all of them preserve bit-identical
//! results:
//!
//! * the `ne` axis of each stage is restricted (under `dedup`) to the
//!   *achievable instance sizes* of modules starting at the next task —
//!   the only values the recurrence ever reads — instead of all of
//!   `1..=P`;
//! * whole `(pl, ne)` rows are skipped when the module's best possible
//!   response cannot reach the greedy incumbent (`prune`), individual
//!   cells are skipped when the processors they leave for the *rest* of
//!   the chain cannot sustain the incumbent (a cheapest-transfer
//!   branch-and-bound suffix bound — see [`suffix_bounds`]) or when no
//!   consumer can ever read them (structural reachability), the scan
//!   over a previous stage is skipped when that stage's row maximum
//!   cannot beat the running best, and the candidate loop breaks once a
//!   cell attains its own response cap;
//! * the `pl` rows of every `(j, L)` stage are computed on the scoped
//!   worker pool (`par`), reading the already-finished stages and the
//!   dense cost slabs, and merged deterministically at the stage barrier.

use std::sync::OnceLock;

use pipemap_chain::{CostTable, Mapping, ModuleAssignment, Problem};
use pipemap_model::Procs;

use crate::greedy;
use crate::options::SolveOptions;
use crate::pool::{self, CellStats};
use crate::provenance::{DecisionCell, Provenance, RunnerUp, StageCells};
use crate::solution::{Solution, SolveError};

/// Relative safety margin on the pruning incumbent (see `dp.rs`): the
/// greedy bound folds the same cost terms in a different association
/// order, so leave a few ulps of slack.
const PRUNE_MARGIN: f64 = 1e-12;

/// Packed parent record: the maximising previous-module choice.
#[derive(Clone, Copy, Debug, Default)]
struct Parent {
    prev_len: u16,
    prev_procs: u16,
}

/// Shared solver context for one cost table: the dense table plus
/// lazily-computed derived structures that several entry points need.
/// Today that is the branch-and-bound [`suffix_bounds`] table, which
/// `pipemap explain` used to recompute once per provenance / pruned-stats
/// / production solve; a `SolveCtx` computes it at most once.
pub struct SolveCtx {
    table: CostTable,
    k: usize,
    p: usize,
    suffix: OnceLock<Vec<f64>>,
}

impl SolveCtx {
    /// Build the cost table for `problem` and wrap it.
    pub fn new(problem: &Problem) -> Self {
        Self::from_table(
            CostTable::build(problem),
            problem.num_tasks(),
            problem.total_procs,
        )
    }

    /// Wrap an existing table (e.g. a retained table patched in place by
    /// the incremental re-solver). Derived caches start empty: they
    /// depend on the table's costs.
    pub fn from_table(table: CostTable, k: usize, p: usize) -> Self {
        Self {
            table,
            k,
            p,
            suffix: OnceLock::new(),
        }
    }

    /// The wrapped cost table.
    pub fn table(&self) -> &CostTable {
        &self.table
    }

    /// The cached suffix-bound table, computed on first use.
    fn suffix(&self) -> &[f64] {
        self.suffix
            .get_or_init(|| suffix_bounds(&self.table, self.k, self.p))
    }
}

/// Per-(j, L) stage table.
#[derive(Clone)]
pub(crate) struct Stage {
    /// `value[(s * (P+1) + pt) * P + (pl - 1)]`, where `s` is the slot of
    /// the next-module instance size on this stage's `ne` axis. The `pl`
    /// scan of the recurrence walks a row contiguously.
    value: Vec<f64>,
    /// Same layout.
    parent: Vec<Parent>,
    /// `rowmax[s * (P+1) + pt]` = max of the row over `pl` (only built
    /// when pruning: it bounds what any predecessor scan can contribute).
    rowmax: Vec<f64>,
    /// The module's processor floor (first feasible `pl`).
    floor: Procs,
}

/// The `ne` axis of stages whose subchain ends just before `start`:
/// the distinct instance sizes of modules beginning at task `start`.
struct NeAxis {
    insts: Vec<Procs>,
    /// instance size → slot (`usize::MAX` = never read).
    slot_of_inst: Vec<usize>,
    /// Per slot: the fewest processors any module starting at `start`
    /// needs to realise this instance size (`usize::MAX` when no module
    /// does). A consumer reading slot `s` holds at least `min_procs[s]`
    /// processors itself, so cells with `pt > P - min_procs[s]` can
    /// never be read — the structural half of the `prune` option.
    min_procs: Vec<usize>,
}

const NO_SLOT: usize = usize::MAX;

impl NeAxis {
    fn sentinel() -> Self {
        Self {
            insts: vec![0],
            slot_of_inst: Vec::new(),
            min_procs: vec![0],
        }
    }

    /// Axis for modules starting at `start` (< k). With `dedup`, only the
    /// instance sizes actually achievable by some `(last, pl)` pair;
    /// otherwise the raw `1..=P` enumeration of the reference path.
    fn for_start(table: &CostTable, start: usize, k: usize, p: Procs, dedup: bool) -> Self {
        // Fewest processors realising each instance size, over every
        // module `(start..=last, pl)`.
        let mut min_pl = vec![usize::MAX; p + 1];
        for last in start..k {
            let Some(floor) = table.module_floor(start, last) else {
                continue;
            };
            for pl in floor..=p {
                let rep = table
                    .module_replication(start, last, pl)
                    .expect("pl >= floor implies a replication exists");
                let m = &mut min_pl[rep.procs_per_instance];
                if pl < *m {
                    *m = pl;
                }
            }
        }
        if !dedup {
            let mut slot_of_inst = vec![NO_SLOT; p + 1];
            for (slot, inst) in (1..=p).enumerate() {
                slot_of_inst[inst] = slot;
            }
            return Self {
                insts: (1..=p).collect(),
                slot_of_inst,
                min_procs: (1..=p).map(|inst| min_pl[inst]).collect(),
            };
        }
        let mut insts = Vec::new();
        let mut slot_of_inst = vec![NO_SLOT; p + 1];
        let mut min_procs = Vec::new();
        for inst in 1..=p {
            if min_pl[inst] != usize::MAX {
                slot_of_inst[inst] = insts.len();
                insts.push(inst);
                min_procs.push(min_pl[inst]);
            }
        }
        Self {
            insts,
            slot_of_inst,
            min_procs,
        }
    }

    fn len(&self) -> usize {
        self.insts.len()
    }
}

/// `r / f` with the solver's conventions: a zero-cost module is infinitely
/// fast.
#[inline]
pub(crate) fn cluster_thr(r: f64, f: f64) -> f64 {
    if f <= 0.0 {
        f64::INFINITY
    } else {
        r / f
    }
}

/// Branch-and-bound suffix bounds.
///
/// `out[j * (P+1) + r]` bounds the throughput of *any* completion of a
/// partial mapping that ends at task `j` with `r` processors left for
/// tasks `j+1..k`: every later task `t` lives in some module covering it
/// on at most `r` processors, and that module's response time is at
/// least its execution time plus the *cheapest possible* incoming and
/// outgoing transfers at its instance size (the recurrence charges a
/// module `cin + exec + out`, and the actual neighbour sizes can only
/// cost more than the slab minima). Taking the minimum over the later
/// tasks gives an admissible upper bound, so a cell whose bound falls
/// below the incumbent cannot lie on the optimal path. In particular
/// `r = 0` (or `r` below every covering module's floor) yields `-∞` and
/// kills the provably dead full-budget cells of non-final stages. The
/// `j = k-1` row is unused (`+∞`: nothing remains).
fn suffix_bounds(table: &CostTable, k: usize, p: usize) -> Vec<f64> {
    let dense = table.dense();
    // Cheapest transfer on edge e for one fixed endpoint instance size:
    // in_min[e * P + (i-1)] = min over sender sizes of ecom(e)[s][i]
    // (module *receiving* on edge e with instance size i);
    // out_min[e * P + (i-1)] = min over receiver sizes of ecom(e)[i][r].
    let mut in_min = vec![f64::INFINITY; k.saturating_sub(1) * p];
    let mut out_min = vec![f64::INFINITY; k.saturating_sub(1) * p];
    for e in 0..k.saturating_sub(1) {
        let slab = dense.ecom_slab(e);
        for s in 0..p {
            for r in 0..p {
                let c = slab[s * p + r];
                let im = &mut in_min[e * p + r];
                if c < *im {
                    *im = c;
                }
                let om = &mut out_min[e * p + s];
                if c < *om {
                    *om = c;
                }
            }
        }
    }
    // task_ub[t * (P+1) + b]: best cheapest-transfer throughput over
    // every module covering task t on at most b processors.
    let mut task_ub = vec![f64::NEG_INFINITY; k * (p + 1)];
    for start in 0..k {
        for end in start..k {
            let Some(floor) = table.module_floor(start, end) else {
                continue;
            };
            if floor > p {
                continue;
            }
            for pl in floor..=p {
                let rep = table
                    .module_replication(start, end, pl)
                    .expect("pl >= floor implies a replication exists");
                let i = rep.procs_per_instance;
                let mut f = table.module_exec(start, end, i);
                if start > 0 {
                    f += in_min[(start - 1) * p + (i - 1)];
                }
                if end + 1 < k {
                    f += out_min[end * p + (i - 1)];
                }
                let thr = cluster_thr(rep.instances as f64, f);
                for t in start..=end {
                    let cell = &mut task_ub[t * (p + 1) + pl];
                    if thr > *cell {
                        *cell = thr;
                    }
                }
            }
        }
    }
    // Monotone closure over the budget axis ("at most b", not "exactly").
    for t in 0..k {
        for b in 1..=p {
            let prev = task_ub[t * (p + 1) + b - 1];
            let cell = &mut task_ub[t * (p + 1) + b];
            if prev > *cell {
                *cell = prev;
            }
        }
    }
    let mut suffix = vec![f64::INFINITY; k * (p + 1)];
    for j in (0..k.saturating_sub(1)).rev() {
        for r in 0..=p {
            let mut v = task_ub[(j + 1) * (p + 1) + r];
            if j + 2 < k {
                let rest = suffix[(j + 1) * (p + 1) + r];
                if rest < v {
                    v = rest;
                }
            }
            suffix[j * (p + 1) + r] = v;
        }
    }
    suffix
}

/// One computed row (a single `pl`) of a stage, layout `[s * (P+1) + pt]`.
struct Row {
    value: Vec<f64>,
    /// Empty for base-case stages (no predecessor).
    parent: Vec<Parent>,
    stats: CellStats,
}

/// A predecessor stage reachable by the current stage's recurrence: the
/// previous module has length `prev_len` and its table is `stage`.
struct PrevGroup<'a> {
    prev_len: usize,
    stage: &'a Stage,
    /// Instance size of the previous module at each offer `q`
    /// (`prev_inst[q - 1]`, valid for `q >= stage.floor`).
    prev_inst: Vec<Procs>,
}

/// Optimal full mapping (clustering + replication + allocation) of the
/// problem, with the default performance options. Optimal with respect to
/// the problem's replication policy and cost model; machine-geometry
/// feasibility is handled separately by `pipemap-machine`.
pub fn dp_mapping(problem: &Problem) -> Result<Solution, SolveError> {
    dp_mapping_with(problem, &SolveOptions::default())
}

/// [`dp_mapping`] with explicit [`SolveOptions`]. Every option combination
/// returns bit-identical results; the options only trade wall-clock time.
pub fn dp_mapping_with(problem: &Problem, opts: &SolveOptions) -> Result<Solution, SolveError> {
    let ctx = SolveCtx::new(problem);
    dp_mapping_ctx(problem, &ctx, opts)
}

/// [`dp_mapping_with`] against a shared [`SolveCtx`], reusing its cost
/// table and cached suffix bounds across entry points.
pub fn dp_mapping_ctx(
    problem: &Problem,
    ctx: &SolveCtx,
    opts: &SolveOptions,
) -> Result<Solution, SolveError> {
    run_cluster_dp_with_fallback(problem, ctx, opts, false, None).map(|run| run.solution)
}

/// [`run_cluster_dp`] with a defensive retry: an admissible incumbent can
/// never prune the optimum, but if the margin were ever wrong, fall back
/// to the exact path rather than mis-reporting infeasibility. The retry
/// keeps any warm-start splice — retained prefixes are exact regardless
/// of pruning.
pub(crate) fn run_cluster_dp_with_fallback(
    problem: &Problem,
    ctx: &SolveCtx,
    opts: &SolveOptions,
    keep_stages: bool,
    resume: Option<&ClusterResume<'_>>,
) -> Result<ClusterRun, SolveError> {
    match run_cluster_dp(problem, ctx, opts, keep_stages, resume) {
        Err(SolveError::Infeasible) if opts.prune => {
            let unpruned = SolveOptions {
                prune: false,
                ..*opts
            };
            run_cluster_dp(problem, ctx, &unpruned, keep_stages, resume)
        }
        r => r,
    }
}

/// [`dp_mapping`] recording full decision provenance: the winning DP path
/// (one [`DecisionCell`] per module, with runner-up predecessor choices)
/// and per-stage cell statistics. Forces the unpruned scan so runner-up
/// values are exact (see [`SolveOptions::provenance`]); `par`, `dedup` and
/// `threads` are honoured as given. Results are bit-identical to
/// [`dp_mapping_with`].
pub fn dp_mapping_provenance(
    problem: &Problem,
    opts: &SolveOptions,
) -> Result<(Solution, Provenance), SolveError> {
    let ctx = SolveCtx::new(problem);
    dp_mapping_provenance_ctx(problem, &ctx, opts)
}

/// [`dp_mapping_provenance`] against a shared [`SolveCtx`].
pub fn dp_mapping_provenance_ctx(
    problem: &Problem,
    ctx: &SolveCtx,
    opts: &SolveOptions,
) -> Result<(Solution, Provenance), SolveError> {
    let opts = SolveOptions {
        prune: false,
        provenance: true,
        ..*opts
    };
    let run = run_cluster_dp(problem, ctx, &opts, false, None)?;
    Ok((
        run.solution,
        run.provenance
            .expect("provenance recorded when the option is set"),
    ))
}

/// Per-stage cell statistics of a *pruned* cluster solve — the "what did
/// pruning skip" half of the `pipemap explain` heatmap (the exact half
/// comes from [`dp_mapping_provenance`]'s unpruned counts). The solve
/// itself is bit-identical to [`dp_mapping_with`]; only the statistics
/// are kept.
pub fn dp_mapping_pruned_stats(
    problem: &Problem,
    opts: &SolveOptions,
) -> Result<Vec<StageCells>, SolveError> {
    let ctx = SolveCtx::new(problem);
    dp_mapping_pruned_stats_ctx(problem, &ctx, opts)
}

/// [`dp_mapping_pruned_stats`] against a shared [`SolveCtx`].
pub fn dp_mapping_pruned_stats_ctx(
    problem: &Problem,
    ctx: &SolveCtx,
    opts: &SolveOptions,
) -> Result<Vec<StageCells>, SolveError> {
    let opts = SolveOptions {
        prune: true,
        provenance: true,
        ..*opts
    };
    let run = run_cluster_dp(problem, ctx, &opts, false, None)?;
    Ok(run
        .provenance
        .expect("provenance recorded when the option is set")
        .stage_cells)
}

/// Warm-start state for [`run_cluster_dp`]: splice the retained `(j, L)`
/// stage tables of a previous *unpruned, stage-keeping* solve for every
/// end task left of `frontier` and recompute only the invalidated suffix.
/// See `resolve.rs` for the admissibility argument.
pub(crate) struct ClusterResume<'a> {
    /// First end task whose costs — or transitive inputs — changed;
    /// stages with `j < frontier` are copied from `stages` verbatim.
    pub(crate) frontier: usize,
    /// Retained stage tables (`stage_key` layout, all `k * k` slots) of
    /// the previous unpruned solve.
    pub(crate) stages: &'a [Option<Stage>],
    /// Admissible pruning incumbent in the DP's *internal* arithmetic
    /// (the previous optimum re-priced on the patched table), or
    /// `NEG_INFINITY` to fall back to the greedy bound.
    pub(crate) incumbent: f64,
}

/// Result of one [`run_cluster_dp`] invocation.
pub(crate) struct ClusterRun {
    pub(crate) solution: Solution,
    pub(crate) provenance: Option<Provenance>,
    /// The full stage tables (`stage_key` layout), kept only when
    /// `keep_stages` was set — the retained artifact of a cold solve.
    pub(crate) stages: Option<Vec<Option<Stage>>>,
    /// DP cells enumerated by this run (spliced stages contribute none).
    pub(crate) cells: u64,
}

pub(crate) fn run_cluster_dp(
    problem: &Problem,
    ctx: &SolveCtx,
    opts: &SolveOptions,
    keep_stages: bool,
    resume: Option<&ClusterResume<'_>>,
) -> Result<ClusterRun, SolveError> {
    let rec = pipemap_obs::global();
    let _wall = rec.timer("solver.dp_mapping.wall_s");
    let _span = pipemap_obs::span!("dp_mapping", "solver");
    // Local accumulators, published once — no atomics in the recurrence.
    let mut totals = CellStats::default();

    let table = ctx.table();
    let dense = table.dense();
    let k = problem.num_tasks();
    let p = problem.total_procs;
    // Per-end-task cell statistics (summed over module lengths), kept only
    // under provenance for the explain pruning heatmap.
    let mut stage_stats: Vec<CellStats> = if opts.provenance {
        vec![CellStats::default(); k]
    } else {
        Vec::new()
    };

    // Admissible incumbent: the refined greedy assignment is an
    // all-singleton clustering, i.e. one feasible clustering, so the
    // mapping optimum is ≥ its throughput. (The exact assignment-DP value
    // is tighter still, but costs a full O(P³k) solve and in practice
    // buys only a couple of percentage points of extra pruning here.)
    // Singleton infeasibility does NOT imply mapping infeasibility — a
    // merged module's floor can be smaller than the sum of singleton
    // floors — so an Err simply disables pruning (incumbent 0). A
    // warm-started run may carry its own incumbent (the previous optimum
    // re-priced, also a feasible mapping); both are admissible, so take
    // whichever is tighter — after a drift *on* the old bottleneck the
    // old path's value can fall well below what a fresh greedy finds.
    let bound = if opts.prune {
        let mut inc = greedy::incumbent_throughput(problem, table);
        if let Some(res) = resume {
            if res.incumbent.is_finite() && res.incumbent > inc {
                inc = res.incumbent;
            }
        }
        if inc.is_finite() && inc > 0.0 {
            inc * (1.0 - PRUNE_MARGIN)
        } else {
            f64::NEG_INFINITY
        }
    } else {
        f64::NEG_INFINITY
    };

    let threads = if opts.par {
        pool::thread_limit(opts.threads)
    } else {
        1
    };

    // Cell-level branch & bound: only meaningful with a finite incumbent.
    // The bounds live on the shared ctx — entry points that solve the
    // same table repeatedly (explain, resolve) compute them once.
    let suffix_ub: &[f64] = if opts.prune && bound > f64::NEG_INFINITY && k > 1 {
        ctx.suffix()
    } else {
        &[]
    };

    // ne axes, one per possible next-module start (k = chain end).
    let axes: Vec<NeAxis> = (0..=k)
        .map(|start| {
            if start == k {
                NeAxis::sentinel()
            } else {
                NeAxis::for_start(table, start, k, p, opts.dedup)
            }
        })
        .collect();

    // stage_key(j, L) → index into `stages`; only L ≤ j+1 exist.
    let stage_key = |j: usize, l: usize| -> usize {
        debug_assert!(l >= 1 && l <= j + 1);
        j * k + (l - 1)
    };
    let mut stages: Vec<Option<Stage>> = (0..k * k).map(|_| None).collect();

    for j in 0..k {
        // Warm start: stages whose subchain ends left of the invalidation
        // frontier are exact on the patched table — splice the retained
        // tables instead of recomputing. Retained tables come from an
        // unpruned solve and carry no rowmax; materialise it with the
        // identical fold the cold path uses below.
        if let Some(res) = resume {
            if j < res.frontier {
                for l in 1..=j + 1 {
                    let key = stage_key(j, l);
                    let Some(st) = res.stages[key].as_ref() else {
                        continue;
                    };
                    let mut st = st.clone();
                    if opts.prune && st.rowmax.is_empty() {
                        st.rowmax = st
                            .value
                            .chunks_exact(p)
                            .map(|row| row.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b)))
                            .collect();
                    }
                    stages[key] = Some(st);
                }
                continue;
            }
        }
        for l in 1..=j + 1 {
            let first = j + 1 - l;
            let Some(floor) = table.module_floor(first, j) else {
                continue; // module can never fit: leave stage absent
            };
            if floor > p {
                continue;
            }
            let axis = &axes[j + 1];
            let nslots = axis.len();
            let rows = p - floor + 1;

            // Per-offer replication data for this module, shared read-only
            // by the row workers.
            let mut inst_of = vec![0usize; p + 1];
            let mut r_of = vec![0.0f64; p + 1];
            let mut exec_of = vec![0.0f64; p + 1];
            for pl in floor..=p {
                let rep = table
                    .module_replication(first, j, pl)
                    .expect("pl >= floor implies a replication exists");
                inst_of[pl] = rep.procs_per_instance;
                r_of[pl] = rep.instances as f64;
                exec_of[pl] = table.module_exec(first, j, rep.procs_per_instance);
            }
            let out_slab = if j + 1 < k {
                Some(dense.ecom_slab(j))
            } else {
                None
            };

            // Reachable predecessor stages, in the reference candidate
            // order (prev_len ascending), each with its offer → instance
            // map so workers only touch dense slabs.
            let mut groups: Vec<PrevGroup<'_>> = Vec::new();
            if first > 0 {
                for prev_len in 1..=first {
                    let Some(stage) = stages[stage_key(first - 1, prev_len)].as_ref() else {
                        continue;
                    };
                    let prev_first = first - prev_len;
                    let mut prev_inst = vec![0usize; p];
                    for q in stage.floor..=p {
                        let prep = table
                            .module_replication(prev_first, first - 1, q)
                            .expect("q >= floor");
                        prev_inst[q - 1] = prep.procs_per_instance;
                    }
                    groups.push(PrevGroup {
                        prev_len,
                        stage,
                        prev_inst,
                    });
                }
            }
            let in_slab = if first > 0 {
                Some(dense.ecom_slab(first - 1))
            } else {
                None
            };
            // Suffix bound row for this stage's end task; `None` for the
            // final task (nothing remains to bound).
            let suffix_row: Option<&[f64]> = if !suffix_ub.is_empty() && j + 1 < k {
                Some(&suffix_ub[j * (p + 1)..(j + 1) * (p + 1)])
            } else {
                None
            };

            let worker = |ri: usize| -> Row {
                let pl = floor + ri;
                let inst = inst_of[pl];
                let r = r_of[pl];
                let exec = exec_of[pl];
                let mut value = vec![f64::NEG_INFINITY; nslots * (p + 1)];
                let mut parent =
                    vec![Parent::default(); if first == 0 { 0 } else { nslots * (p + 1) }];
                let mut st = CellStats::default();

                // Incoming-transfer columns at this module size, one per
                // predecessor group: cin[gi * P + (q - 1)]. The q scan
                // walks the column and the group's value row contiguously.
                let mut cin = Vec::new();
                let mut min_cin = f64::INFINITY;
                let mut s_in = NO_SLOT;
                if first > 0 {
                    let slab = in_slab.expect("in_slab exists when first > 0");
                    cin = vec![f64::INFINITY; groups.len() * p];
                    for (gi, g) in groups.iter().enumerate() {
                        for q in g.stage.floor..=p {
                            let c = slab[(g.prev_inst[q - 1] - 1) * p + (inst - 1)];
                            cin[gi * p + (q - 1)] = c;
                            if c < min_cin {
                                min_cin = c;
                            }
                        }
                    }
                    s_in = axes[first].slot_of_inst[inst];
                    debug_assert_ne!(s_in, NO_SLOT, "own instance size on the in-axis");
                }

                for (s, &ne) in axis.insts.iter().enumerate() {
                    let out = match out_slab {
                        Some(slab) if ne != 0 => slab[(inst - 1) * p + (ne - 1)],
                        _ => 0.0,
                    };
                    let base_f = exec + out;
                    let nominal = (p + 1 - pl) as u64;

                    // Structural reachability (the other half of `prune`):
                    // a consumer module reading this slot holds at least
                    // `min_procs[s]` processors of its own, and final
                    // stages are read by the terminal scan at pt = P
                    // only — cells outside [lo, hi] are never read by
                    // anything, so skipping them is exact even without
                    // an incumbent.
                    let (lo, hi) = if !opts.prune {
                        (pl, p)
                    } else if j + 1 == k {
                        (p, p)
                    } else {
                        (pl, p - axis.min_procs[s].min(p))
                    };

                    if first == 0 {
                        // Base case: M is the leftmost module; slack allowed.
                        st.cells += nominal;
                        let thr = cluster_thr(r, base_f);
                        if opts.prune && thr < bound {
                            st.cells_pruned += nominal;
                            continue; // below the incumbent: never optimal
                        }
                        if hi < lo {
                            st.cells_pruned += nominal;
                            continue;
                        }
                        st.cells_pruned += nominal - (hi - lo + 1) as u64;
                        for pt in lo..=hi {
                            if let Some(sfx) = suffix_row {
                                if sfx[p - pt] < bound {
                                    st.cells_pruned += 1;
                                    continue; // rest of chain can't keep up
                                }
                            }
                            value[s * (p + 1) + pt] = thr;
                        }
                        continue;
                    }

                    // Best possible response of M at this (pl, ne): the
                    // cheapest incoming transfer over every predecessor.
                    // Below the incumbent, the whole row is off the
                    // optimal path.
                    let cap = cluster_thr(r, min_cin + base_f);
                    st.cells += nominal;
                    if opts.prune && cap < bound {
                        st.cells_pruned += nominal;
                        continue;
                    }
                    if hi < lo {
                        st.cells_pruned += nominal;
                        continue;
                    }
                    st.cells_pruned += nominal - (hi - lo + 1) as u64;

                    for pt in lo..=hi {
                        if let Some(sfx) = suffix_row {
                            // The P - pt processors left for tasks j+1..k
                            // cannot sustain the incumbent: no completion
                            // through this cell can be optimal.
                            if sfx[p - pt] < bound {
                                st.cells_pruned += 1;
                                continue;
                            }
                        }
                        let budget = pt - pl;
                        // Start the running best at the pruning bound
                        // (`-∞` when pruning is off): candidates at or
                        // below the incumbent can never sit on the
                        // optimal chain, so letting the `sub ≤ best` and
                        // row-max skips drop them wholesale is exact —
                        // sub-bound cells merely become `-∞` instead of
                        // carrying their (never reconstructed) value.
                        let mut best = bound;
                        let mut updated = false;
                        let mut best_parent = Parent::default();
                        'groups: for (gi, g) in groups.iter().enumerate() {
                            let pfloor = g.stage.floor;
                            if pfloor > budget {
                                continue;
                            }
                            if opts.prune && g.stage.rowmax[s_in * (p + 1) + budget] <= best {
                                // No value in this stage's row can strictly
                                // beat the running best: min(sub, ·) ≤ sub.
                                st.qskips += (budget - pfloor + 1) as u64;
                                continue;
                            }
                            let row_base = (s_in * (p + 1) + budget) * p;
                            let prev_row = &g.stage.value[row_base..row_base + p];
                            let col = &cin[gi * p..gi * p + p];
                            for q in pfloor..=budget {
                                st.lookups += 1;
                                let sub = prev_row[q - 1];
                                if sub <= best {
                                    st.qskips += 1;
                                    continue; // min(sub, _) cannot beat best
                                }
                                let f = col[q - 1] + base_f;
                                let thr = cluster_thr(r, f);
                                let cand = sub.min(thr);
                                if cand > best {
                                    best = cand;
                                    updated = true;
                                    best_parent = Parent {
                                        prev_len: g.prev_len as u16,
                                        prev_procs: q as u16,
                                    };
                                    if opts.prune && best >= cap {
                                        // Ties cannot displace the first
                                        // argmax (strict update), so later
                                        // candidates change nothing.
                                        break 'groups;
                                    }
                                }
                            }
                        }
                        value[s * (p + 1) + pt] = if updated { best } else { f64::NEG_INFINITY };
                        parent[s * (p + 1) + pt] = best_parent;
                    }
                }
                Row {
                    value,
                    parent,
                    stats: st,
                }
            };

            let computed = pool::run_strided(threads, rows, worker);

            // Stage barrier: merge per-row buffers into the stage table.
            let mut value = vec![f64::NEG_INFINITY; nslots * (p + 1) * p];
            let mut parent =
                vec![Parent::default(); if first == 0 { 0 } else { nslots * (p + 1) * p }];
            for (ri, row) in computed.into_iter().enumerate() {
                let pl = floor + ri;
                for src in 0..nslots * (p + 1) {
                    let dst = src * p + (pl - 1);
                    value[dst] = row.value[src];
                    if first > 0 {
                        parent[dst] = row.parent[src];
                    }
                }
                if opts.provenance {
                    stage_stats[j].absorb(&row.stats);
                }
                totals.absorb(&row.stats);
            }
            let rowmax = if opts.prune {
                value
                    .chunks_exact(p)
                    .map(|row| row.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b)))
                    .collect()
            } else {
                Vec::new()
            };
            drop(groups);
            stages[stage_key(j, l)] = Some(Stage {
                value,
                parent,
                rowmax,
                floor,
            });
        }
    }

    rec.add("solver.dp_mapping.cells", totals.cells);
    rec.add("solver.dp_mapping.lookups", totals.lookups);
    rec.add("solver.dp_mapping.pruned", totals.qskips);
    rec.add(pipemap_obs::names::SOLVER_CELLS_TOTAL, totals.cells);
    rec.add(pipemap_obs::names::SOLVER_CELLS_PRUNED, totals.cells_pruned);

    // Answer: best over the last module's (L, pl) at ne = 0, pt = P. The
    // final stages' ne axis is the single sentinel slot.
    let mut best = f64::NEG_INFINITY;
    let mut best_l = 0usize;
    let mut best_pl = 0usize;
    for l in 1..=k {
        let Some(stage) = stages[stage_key(k - 1, l)].as_ref() else {
            continue;
        };
        for pl in 1..=p {
            let v = stage.value[p * p + (pl - 1)]; // slot 0, pt = P
            if v > best {
                best = v;
                best_l = l;
                best_pl = pl;
            }
        }
    }
    if best == f64::NEG_INFINITY {
        return Err(SolveError::Infeasible);
    }

    // Reconstruct modules right-to-left, recording the visited cells for
    // the provenance harvest.
    let mut modules_rev: Vec<ModuleAssignment> = Vec::new();
    let mut path: Vec<PathCell> = Vec::new();
    let mut j = k - 1;
    let mut l = best_l;
    let mut pl = best_pl;
    let mut slot = 0usize; // sentinel slot of the final stages
    let mut pt = p;
    loop {
        let first = j + 1 - l;
        let rep = table
            .module_replication(first, j, pl)
            .expect("reconstructed module respects its floor");
        modules_rev.push(ModuleAssignment::new(
            first,
            j,
            rep.instances,
            rep.procs_per_instance,
        ));
        if opts.provenance {
            path.push(PathCell { j, l, pl, pt, slot });
        }
        if first == 0 {
            break;
        }
        let stage = stages[stage_key(j, l)].as_ref().expect("visited stage");
        let par = stage.parent[(slot * (p + 1) + pt) * p + (pl - 1)];
        slot = axes[first].slot_of_inst[rep.procs_per_instance];
        pt -= pl;
        j = first - 1;
        l = par.prev_len as usize;
        pl = par.prev_procs as usize;
    }
    modules_rev.reverse();
    let prov = if opts.provenance {
        Some(harvest_cluster(
            table,
            &stages,
            &axes,
            &stage_stats,
            &path,
            stage_key,
            p,
            best,
            !opts.prune,
        ))
    } else {
        None
    };
    let mapping = Mapping::new(modules_rev);
    let solution = Solution::from_mapping(problem, mapping);
    debug_assert!(
        (solution.throughput - best).abs() <= 1e-9 * best.abs().max(1.0)
            || (solution.throughput.is_infinite() && best.is_infinite()),
        "cluster DP internal value {} disagrees with evaluator {}",
        best,
        solution.throughput
    );
    Ok(ClusterRun {
        solution,
        provenance: prov,
        stages: keep_stages.then_some(stages),
        cells: totals.cells,
    })
}

/// One reconstructed cell of the winning path: module ending at task `j`
/// with length `l`, offered `pl` of a `pt` budget, read through successor
/// slot `slot`.
struct PathCell {
    j: usize,
    l: usize,
    pl: usize,
    pt: usize,
    slot: usize,
}

/// Rebuild [`DecisionCell`]s for the cluster DP's winning path by
/// re-scanning each visited cell's candidates (exact when the solve ran
/// unpruned — the entry point forces that).
#[allow(clippy::too_many_arguments)]
fn harvest_cluster(
    table: &CostTable,
    stages: &[Option<Stage>],
    axes: &[NeAxis],
    stage_stats: &[CellStats],
    path: &[PathCell],
    stage_key: impl Fn(usize, usize) -> usize,
    p: usize,
    throughput: f64,
    exact: bool,
) -> Provenance {
    let dense = table.dense();
    let mut cells: Vec<DecisionCell> = Vec::with_capacity(path.len());
    for pc in path {
        let first = pc.j + 1 - pc.l;
        let stage = stages[stage_key(pc.j, pc.l)]
            .as_ref()
            .expect("path visits existing stages");
        let value = stage.value[(pc.slot * (p + 1) + pc.pt) * p + (pc.pl - 1)];
        let rep = table
            .module_replication(first, pc.j, pc.pl)
            .expect("path offer respects the floor");
        let inst = rep.procs_per_instance;
        let r = rep.instances as f64;
        let ne = axes[pc.j + 1].insts[pc.slot];
        let out = if ne != 0 {
            dense.ecom_slab(pc.j)[(inst - 1) * p + (ne - 1)]
        } else {
            0.0
        };
        let exec = table.module_exec(first, pc.j, inst);
        let (chosen, ein, runner_up) = if first > 0 {
            let par = stage.parent[(pc.slot * (p + 1) + pc.pt) * p + (pc.pl - 1)];
            let budget = pc.pt - pc.pl;
            let in_slab = dense.ecom_slab(first - 1);
            let s_in = axes[first].slot_of_inst[inst];
            let mut ein_star = 0.0;
            let mut alt_val = f64::NEG_INFINITY;
            let mut alt = Parent::default();
            for prev_len in 1..=first {
                let Some(pstage) = stages[stage_key(first - 1, prev_len)].as_ref() else {
                    continue;
                };
                let prev_first = first - prev_len;
                for q in pstage.floor..=budget {
                    let sub = pstage.value[(s_in * (p + 1) + budget) * p + (q - 1)];
                    let prep = table
                        .module_replication(prev_first, first - 1, q)
                        .expect("q >= floor");
                    let cin = in_slab[(prep.procs_per_instance - 1) * p + (inst - 1)];
                    if prev_len == par.prev_len as usize && q == par.prev_procs as usize {
                        ein_star = cin;
                        continue; // the chosen candidate is not its own runner-up
                    }
                    if sub == f64::NEG_INFINITY {
                        continue;
                    }
                    let cand = sub.min(cluster_thr(r, cin + exec + out));
                    if cand > alt_val {
                        alt_val = cand;
                        alt = Parent {
                            prev_len: prev_len as u16,
                            prev_procs: q as u16,
                        };
                    }
                }
            }
            let ru = (alt_val > f64::NEG_INFINITY).then_some(RunnerUp {
                prev_len: alt.prev_len as usize,
                prev_procs: alt.prev_procs as usize,
                value: alt_val,
            });
            (par, ein_star, ru)
        } else {
            (Parent::default(), 0.0, None)
        };
        cells.push(DecisionCell {
            index: 0, // assigned after the reverse below
            first,
            last: pc.j,
            offer: pc.pl,
            instances: rep.instances,
            instance_procs: inst,
            budget: pc.pt,
            value,
            chosen_prev_len: chosen.prev_len as usize,
            chosen_prev_procs: chosen.prev_procs as usize,
            runner_up,
            exec_s: exec,
            ecom_in_s: ein,
            ecom_out_s: out,
        });
    }
    cells.reverse();
    for (i, cell) in cells.iter_mut().enumerate() {
        cell.index = i;
    }
    let stage_cells = stage_stats
        .iter()
        .enumerate()
        .map(|(stage, st)| StageCells {
            stage,
            cells: st.cells,
            pruned: st.cells_pruned,
            lookups: st.lookups,
            skips: st.qskips,
        })
        .collect();
    Provenance {
        algorithm: "dp_mapping",
        throughput,
        cells,
        stage_cells,
        exact_runner_ups: exact,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipemap_chain::{validate, ChainBuilder, Edge, Task, TaskChain};
    use pipemap_model::{MemoryReq, PolyEcom, PolyUnary};

    fn two_task_chain(ecom_fixed: f64) -> TaskChain {
        ChainBuilder::new()
            .task(Task::new("a", PolyUnary::perfectly_parallel(8.0)))
            .edge(Edge::new(
                PolyUnary::zero(),
                PolyEcom::new(ecom_fixed, 0.0, 0.0, 0.0, 0.0),
            ))
            .task(Task::new("b", PolyUnary::perfectly_parallel(8.0)))
            .build()
    }

    #[test]
    fn heavy_ecom_forces_clustering() {
        // External transfer costs 100s; internal is free. The only sane
        // mapping is one module.
        let p = Problem::new(two_task_chain(100.0), 8, 1e9).without_replication();
        let s = dp_mapping(&p).unwrap();
        assert_eq!(s.mapping.num_modules(), 1);
        assert_eq!(s.mapping.modules[0].procs, 8);
        assert!((s.throughput - 0.5).abs() < 1e-9);
        validate(&p, &s.mapping).unwrap();
    }

    #[test]
    fn free_comm_prefers_pipeline_split() {
        // No communication at all: splitting 8 procs 4/4 gives bottleneck
        // 2.0 (thr 0.5); clustering gives 16/8 = 2.0 as well — equal.
        // Add a tiny icom so clustering is strictly worse.
        let c = ChainBuilder::new()
            .task(Task::new("a", PolyUnary::perfectly_parallel(8.0)))
            .edge(Edge::new(PolyUnary::new(0.5, 0.0, 0.0), PolyEcom::zero()))
            .task(Task::new("b", PolyUnary::perfectly_parallel(8.0)))
            .build();
        let p = Problem::new(c, 8, 1e9).without_replication();
        let s = dp_mapping(&p).unwrap();
        assert_eq!(s.mapping.num_modules(), 2);
        assert!((s.throughput - 0.5).abs() < 1e-9);
    }

    #[test]
    fn replication_dominates_when_tasks_dont_scale() {
        // Fixed 1-second tasks that don't parallelise: cluster everything
        // into one module and replicate it 8 ways.
        let c = ChainBuilder::new()
            .task(Task::new("a", PolyUnary::new(1.0, 0.0, 0.0)))
            .edge(Edge::free())
            .task(Task::new("b", PolyUnary::new(1.0, 0.0, 0.0)))
            .build();
        let p = Problem::new(c, 8, 1e9);
        let s = dp_mapping(&p).unwrap();
        // One module of both tasks, replicated 8×: f = 2, eff = 0.25 →
        // throughput 4. Two singleton modules replicated 4× each: f = 1,
        // eff = 0.25 → also 4. Both optimal; throughput must be 4.
        assert!((s.throughput - 4.0).abs() < 1e-9, "got {}", s.throughput);
        validate(&p, &s.mapping).unwrap();
    }

    #[test]
    fn memory_floor_blocks_merging() {
        // Clustering would eliminate a costly transfer, but the merged
        // module's memory floor forces a large instance on which the
        // communication-heavy second task runs inefficiently — the §6.3
        // FFT-Hist effect in miniature.
        let c = ChainBuilder::new()
            .task(
                Task::new("fft", PolyUnary::perfectly_parallel(12.0))
                    .with_memory(MemoryReq::new(0.0, 60.0)),
            )
            .edge(Edge::new(
                PolyUnary::new(0.05, 0.0, 0.0),
                PolyEcom::new(0.1, 0.4, 0.4, 0.0, 0.0),
            ))
            .task(
                // Heavy per-processor overhead: slows badly on big groups.
                Task::new("hist", PolyUnary::new(0.0, 3.0, 0.45))
                    .with_memory(MemoryReq::new(0.0, 40.0)),
            )
            .build();
        let p = Problem::new(c, 16, 10.0); // floors: fft 6, hist 4, merged 10
        let s = dp_mapping(&p).unwrap();
        validate(&p, &s.mapping).unwrap();
        // Exhaustive check over both clusterings confirms separation wins.
        assert_eq!(
            s.mapping.num_modules(),
            2,
            "expected separate modules, got {:?} (thr {})",
            s.mapping,
            s.throughput
        );
    }

    #[test]
    fn single_task_problem() {
        let c = ChainBuilder::new()
            .task(Task::new("only", PolyUnary::perfectly_parallel(4.0)))
            .build();
        let p = Problem::new(c, 4, 1e9).without_replication();
        let s = dp_mapping(&p).unwrap();
        assert_eq!(s.mapping.num_modules(), 1);
        assert!((s.throughput - 1.0).abs() < 1e-12);
    }

    #[test]
    fn infeasible_problem_reported() {
        let c = ChainBuilder::new()
            .task(Task::new("big", PolyUnary::zero()).with_memory(MemoryReq::new(100.0, 0.0)))
            .build();
        let p = Problem::new(c, 8, 10.0);
        assert_eq!(dp_mapping(&p).unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn clustering_merges_when_floors_allow() {
        // Identical tasks with a transfer that is pure overhead and an
        // internal redistribution that is free: merging wins.
        let c = ChainBuilder::new()
            .task(Task::new("a", PolyUnary::perfectly_parallel(4.0)))
            .edge(Edge::aligned(PolyEcom::new(2.0, 0.0, 0.0, 0.0, 0.0)))
            .task(Task::new("b", PolyUnary::perfectly_parallel(4.0)))
            .edge(Edge::aligned(PolyEcom::new(2.0, 0.0, 0.0, 0.0, 0.0)))
            .task(Task::new("c", PolyUnary::perfectly_parallel(4.0)))
            .build();
        let p = Problem::new(c, 6, 1e9).without_replication();
        let s = dp_mapping(&p).unwrap();
        assert_eq!(s.mapping.num_modules(), 1);
        assert!((s.throughput - 0.5).abs() < 1e-9); // 12 units on 6 procs
    }

    #[test]
    fn uses_at_most_budget() {
        let c = two_task_chain(0.5);
        let p = Problem::new(c, 13, 1e9).without_replication();
        let s = dp_mapping(&p).unwrap();
        assert!(s.mapping.total_procs() <= 13);
        validate(&p, &s.mapping).unwrap();
    }

    #[test]
    fn feasible_by_merging_even_when_singletons_are_not() {
        // Singleton floors round up: each task needs ceil(45/10) = 5 of 9
        // processors, so no all-singleton mapping fits (5 + 5 > 9). The
        // merged module needs only ceil(90/10) = 9 ≤ 9. The greedy
        // incumbent fails here; the DP must still find the merged mapping
        // (pruning silently disabled, not an error).
        let c = ChainBuilder::new()
            .task(
                Task::new("a", PolyUnary::perfectly_parallel(4.0))
                    .with_memory(MemoryReq::new(0.0, 45.0)),
            )
            .edge(Edge::aligned(PolyEcom::zero()))
            .task(
                Task::new("b", PolyUnary::perfectly_parallel(4.0))
                    .with_memory(MemoryReq::new(0.0, 45.0)),
            )
            .build();
        let p = Problem::new(c, 9, 10.0).without_replication();
        let s = dp_mapping(&p).unwrap();
        assert_eq!(s.mapping.num_modules(), 1);
        validate(&p, &s.mapping).unwrap();
    }

    #[test]
    fn option_combinations_agree_exactly() {
        let c = ChainBuilder::new()
            .task(Task::new("a", PolyUnary::new(0.1, 6.0, 0.02)))
            .edge(Edge::new(
                PolyUnary::new(0.05, 0.0, 0.0),
                PolyEcom::new(0.2, 1.0, 1.0, 0.05, 0.05),
            ))
            .task(Task::new("b", PolyUnary::new(0.0, 10.0, 0.01)))
            .edge(Edge::new(
                PolyUnary::zero(),
                PolyEcom::new(0.1, 0.5, 0.5, 0.02, 0.02),
            ))
            .task(Task::new("c", PolyUnary::perfectly_parallel(3.0)))
            .build();
        let p = Problem::new(c, 20, 1e9);
        let reference = dp_mapping_with(&p, &SolveOptions::reference()).unwrap();
        for opts in [
            SolveOptions::default(),
            SolveOptions {
                par: false,
                ..SolveOptions::default()
            },
            SolveOptions {
                prune: false,
                ..SolveOptions::default()
            },
            SolveOptions {
                dedup: false,
                ..SolveOptions::default()
            },
            SolveOptions::with_threads(4),
        ] {
            let s = dp_mapping_with(&p, &opts).unwrap();
            assert_eq!(
                s.throughput.to_bits(),
                reference.throughput.to_bits(),
                "options {opts:?} changed the optimum"
            );
            assert_eq!(
                s.mapping, reference.mapping,
                "options {opts:?} changed the mapping"
            );
        }
    }
}
