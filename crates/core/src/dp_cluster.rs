//! Optimal mapping with clustering by dynamic programming (§3.3).
//!
//! The full mapping problem decides, jointly: where the module boundaries
//! fall, how many processors each module receives, and (via the §3.2 rule)
//! how far each module is replicated. The paper extends the assignment DP
//! with one extra state component — the *length* of the module following
//! the current subchain — because a module's memory requirement, and hence
//! its processor floor and replication degree, is known only once its full
//! extent is known.
//!
//! ## State space used here
//!
//! We carry the same information in a form that makes every folded response
//! exact under replication:
//!
//! ```text
//! V(j, L, pl, ne, pt) =
//!   best achievable bottleneck throughput over mappings of tasks 0..=j
//!   whose last module is M = [j−L+1 ..= j] with pl processors, given that
//!   the module following M has instance size ne (0 = none), using at most
//!   pt processors for tasks 0..=j.
//! ```
//!
//! The response of `M` itself is folded *at this level*: its extent and
//! processors give its replication `(r, inst)` from the tables; `ne` gives
//! the outgoing transfer; and the recurrence enumerates the previous
//! module's `(length, processors)` pair, which gives the incoming transfer
//! at exact instance sizes:
//!
//! ```text
//! V(j, L, pl, ne, pt) = max over (L', q) of
//!     min( V(j−L, L', q, inst(M), pt − pl),
//!          r_M / (ecom_in(inst', inst) + exec_M(inst) + ecom_out(inst, ne)) )
//! ```
//!
//! with the base case (module starting at task 0) accepting `pl ≤ pt` so
//! processors may be left idle. This is the paper's
//! `M_j(p_total, p_last, p_next, next_mod_length)` with the "next module"
//! collapsed to its instance size (two next-modules with equal instance
//! size are interchangeable for the subproblem, which is what lets the
//! paper's 4-argument table work) and the last module's own length kept
//! explicitly.
//!
//! Worst-case work is `O(k³ P⁴)` with `O(k² P³)` memory; the paper reports
//! `O(P⁴ k²)` counting its per-entry work as `O(P)` amortised. Either way
//! the cost is dominated by `P⁴`, and for the paper's scale (`P = 64`,
//! `k ≤ 5`) the solve completes in seconds; the greedy algorithm exists
//! precisely because this is too slow for large `P` or dynamic mapping.

use pipemap_chain::{CostTable, Mapping, ModuleAssignment, Problem};

use crate::solution::{Solution, SolveError};

/// Packed parent record: the maximising previous-module choice.
#[derive(Clone, Copy, Debug, Default)]
struct Parent {
    prev_len: u16,
    prev_procs: u16,
}

/// Per-(j, L) stage table.
struct Stage {
    /// `value[((pl-1) * (P+1) + ne) * (P+1) + pt]`.
    value: Vec<f64>,
    parent: Vec<Parent>,
}

struct StageDims {
    p: usize,
}

impl StageDims {
    #[inline]
    fn idx(&self, pl: usize, ne: usize, pt: usize) -> usize {
        debug_assert!(pl >= 1);
        ((pl - 1) * (self.p + 1) + ne) * (self.p + 1) + pt
    }

    fn len(&self) -> usize {
        self.p * (self.p + 1) * (self.p + 1)
    }
}

/// Optimal full mapping (clustering + replication + allocation) of the
/// problem. Optimal with respect to the problem's replication policy and
/// cost model; machine-geometry feasibility is handled separately by
/// `pipemap-machine`.
pub fn dp_mapping(problem: &Problem) -> Result<Solution, SolveError> {
    let rec = pipemap_obs::global();
    let _wall = rec.timer("solver.dp_mapping.wall_s");
    let _span = pipemap_obs::span!("dp_mapping", "solver");
    // Local accumulators, published once — no atomics in the recurrence.
    let mut n_cells: u64 = 0;
    let mut n_lookups: u64 = 0;
    let mut n_pruned: u64 = 0;

    let table = CostTable::build(problem);
    let k = problem.num_tasks();
    let p = problem.total_procs;
    let dims = StageDims { p };

    // stage_key(j, L) → index into `stages`; only L ≤ j+1 exist.
    let stage_key = |j: usize, l: usize| -> usize {
        debug_assert!(l >= 1 && l <= j + 1);
        j * k + (l - 1)
    };
    let mut stages: Vec<Option<Stage>> = (0..k * k).map(|_| None).collect();

    for j in 0..k {
        for l in 1..=j + 1 {
            let first = j + 1 - l;
            let Some(floor) = table.module_floor(first, j) else {
                continue; // module can never fit: leave stage absent
            };
            if floor > p {
                continue;
            }
            let mut value = vec![f64::NEG_INFINITY; dims.len()];
            let mut parent = vec![Parent::default(); dims.len()];

            // `ne` values worth computing: the sentinel for the chain end,
            // every possible next-module instance size otherwise.
            let ne_values: Vec<usize> = if j + 1 == k {
                vec![0]
            } else {
                (1..=p).collect()
            };

            for pl in floor..=p {
                let rep = table
                    .module_replication(first, j, pl)
                    .expect("pl >= floor implies a replication exists");
                let inst = rep.procs_per_instance;
                let r = rep.instances as f64;
                let exec = table.module_exec(first, j, inst);

                // Incoming-transfer cost per previous-module (length, q):
                // independent of ne and pt, so hoist it out of those loops.
                let mut in_cost: Vec<(usize, usize, f64)> = Vec::new();
                if first > 0 {
                    let in_edge = first - 1;
                    for prev_len in 1..=first {
                        let prev_first = first - prev_len;
                        let Some(pfloor) = table.module_floor(prev_first, first - 1) else {
                            continue;
                        };
                        for q in pfloor..=p {
                            let prep = table
                                .module_replication(prev_first, first - 1, q)
                                .expect("q >= pfloor");
                            let cin = table.ecom(in_edge, prep.procs_per_instance, inst);
                            in_cost.push((prev_len, q, cin));
                        }
                    }
                }

                for &ne in &ne_values {
                    let out = if ne == 0 {
                        0.0
                    } else {
                        table.ecom(j, inst, ne)
                    };
                    let base_f = exec + out;

                    if first == 0 {
                        // Base case: M is the leftmost module; slack allowed.
                        n_cells += (p + 1 - pl) as u64;
                        let thr = if base_f <= 0.0 {
                            f64::INFINITY
                        } else {
                            r / base_f
                        };
                        for pt in pl..=p {
                            value[dims.idx(pl, ne, pt)] = thr;
                        }
                    } else {
                        for pt in pl..=p {
                            n_cells += 1;
                            let budget = pt - pl;
                            let mut best = f64::NEG_INFINITY;
                            let mut best_parent = Parent::default();
                            for &(prev_len, q, cin) in &in_cost {
                                if q > budget {
                                    continue;
                                }
                                n_lookups += 1;
                                let sub_stage = stages[stage_key(first - 1, prev_len)]
                                    .as_ref()
                                    .expect("in_cost only lists existing stages");
                                let sub = sub_stage.value[dims.idx(q, inst, budget)];
                                if sub <= best {
                                    n_pruned += 1;
                                    continue; // min(sub, _) cannot beat best
                                }
                                let f = cin + base_f;
                                let thr = if f <= 0.0 { f64::INFINITY } else { r / f };
                                let cand = sub.min(thr);
                                if cand > best {
                                    best = cand;
                                    best_parent = Parent {
                                        prev_len: prev_len as u16,
                                        prev_procs: q as u16,
                                    };
                                }
                            }
                            let idx = dims.idx(pl, ne, pt);
                            value[idx] = best;
                            parent[idx] = best_parent;
                        }
                    }
                }
            }
            stages[stage_key(j, l)] = Some(Stage { value, parent });
        }
    }

    rec.add("solver.dp_mapping.cells", n_cells);
    rec.add("solver.dp_mapping.lookups", n_lookups);
    rec.add("solver.dp_mapping.pruned", n_pruned);

    // Answer: best over the last module's (L, pl) at ne = 0, pt = P.
    let mut best = f64::NEG_INFINITY;
    let mut best_l = 0usize;
    let mut best_pl = 0usize;
    for l in 1..=k {
        let Some(stage) = stages[stage_key(k - 1, l)].as_ref() else {
            continue;
        };
        for pl in 1..=p {
            let v = stage.value[dims.idx(pl, 0, p)];
            if v > best {
                best = v;
                best_l = l;
                best_pl = pl;
            }
        }
    }
    if best == f64::NEG_INFINITY {
        return Err(SolveError::Infeasible);
    }

    // Reconstruct modules right-to-left.
    let mut modules_rev: Vec<ModuleAssignment> = Vec::new();
    let mut j = k - 1;
    let mut l = best_l;
    let mut pl = best_pl;
    let mut ne = 0usize;
    let mut pt = p;
    loop {
        let first = j + 1 - l;
        let rep = table
            .module_replication(first, j, pl)
            .expect("reconstructed module respects its floor");
        modules_rev.push(ModuleAssignment::new(
            first,
            j,
            rep.instances,
            rep.procs_per_instance,
        ));
        if first == 0 {
            break;
        }
        let stage = stages[stage_key(j, l)].as_ref().expect("visited stage");
        let par = stage.parent[dims.idx(pl, ne, pt)];
        ne = rep.procs_per_instance;
        pt -= pl;
        j = first - 1;
        l = par.prev_len as usize;
        pl = par.prev_procs as usize;
    }
    modules_rev.reverse();
    let mapping = Mapping::new(modules_rev);
    let solution = Solution::from_mapping(problem, mapping);
    debug_assert!(
        (solution.throughput - best).abs() <= 1e-9 * best.abs().max(1.0)
            || (solution.throughput.is_infinite() && best.is_infinite()),
        "cluster DP internal value {} disagrees with evaluator {}",
        best,
        solution.throughput
    );
    Ok(solution)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipemap_chain::{validate, ChainBuilder, Edge, Task, TaskChain};
    use pipemap_model::{MemoryReq, PolyEcom, PolyUnary};

    fn two_task_chain(ecom_fixed: f64) -> TaskChain {
        ChainBuilder::new()
            .task(Task::new("a", PolyUnary::perfectly_parallel(8.0)))
            .edge(Edge::new(
                PolyUnary::zero(),
                PolyEcom::new(ecom_fixed, 0.0, 0.0, 0.0, 0.0),
            ))
            .task(Task::new("b", PolyUnary::perfectly_parallel(8.0)))
            .build()
    }

    #[test]
    fn heavy_ecom_forces_clustering() {
        // External transfer costs 100s; internal is free. The only sane
        // mapping is one module.
        let p = Problem::new(two_task_chain(100.0), 8, 1e9).without_replication();
        let s = dp_mapping(&p).unwrap();
        assert_eq!(s.mapping.num_modules(), 1);
        assert_eq!(s.mapping.modules[0].procs, 8);
        assert!((s.throughput - 0.5).abs() < 1e-9);
        validate(&p, &s.mapping).unwrap();
    }

    #[test]
    fn free_comm_prefers_pipeline_split() {
        // No communication at all: splitting 8 procs 4/4 gives bottleneck
        // 2.0 (thr 0.5); clustering gives 16/8 = 2.0 as well — equal.
        // Add a tiny icom so clustering is strictly worse.
        let c = ChainBuilder::new()
            .task(Task::new("a", PolyUnary::perfectly_parallel(8.0)))
            .edge(Edge::new(PolyUnary::new(0.5, 0.0, 0.0), PolyEcom::zero()))
            .task(Task::new("b", PolyUnary::perfectly_parallel(8.0)))
            .build();
        let p = Problem::new(c, 8, 1e9).without_replication();
        let s = dp_mapping(&p).unwrap();
        assert_eq!(s.mapping.num_modules(), 2);
        assert!((s.throughput - 0.5).abs() < 1e-9);
    }

    #[test]
    fn replication_dominates_when_tasks_dont_scale() {
        // Fixed 1-second tasks that don't parallelise: cluster everything
        // into one module and replicate it 8 ways.
        let c = ChainBuilder::new()
            .task(Task::new("a", PolyUnary::new(1.0, 0.0, 0.0)))
            .edge(Edge::free())
            .task(Task::new("b", PolyUnary::new(1.0, 0.0, 0.0)))
            .build();
        let p = Problem::new(c, 8, 1e9);
        let s = dp_mapping(&p).unwrap();
        // One module of both tasks, replicated 8×: f = 2, eff = 0.25 →
        // throughput 4. Two singleton modules replicated 4× each: f = 1,
        // eff = 0.25 → also 4. Both optimal; throughput must be 4.
        assert!((s.throughput - 4.0).abs() < 1e-9, "got {}", s.throughput);
        validate(&p, &s.mapping).unwrap();
    }

    #[test]
    fn memory_floor_blocks_merging() {
        // Clustering would eliminate a costly transfer, but the merged
        // module's memory floor forces a large instance on which the
        // communication-heavy second task runs inefficiently — the §6.3
        // FFT-Hist effect in miniature.
        let c = ChainBuilder::new()
            .task(
                Task::new("fft", PolyUnary::perfectly_parallel(12.0))
                    .with_memory(MemoryReq::new(0.0, 60.0)),
            )
            .edge(Edge::new(
                PolyUnary::new(0.05, 0.0, 0.0),
                PolyEcom::new(0.1, 0.4, 0.4, 0.0, 0.0),
            ))
            .task(
                // Heavy per-processor overhead: slows badly on big groups.
                Task::new("hist", PolyUnary::new(0.0, 3.0, 0.45))
                    .with_memory(MemoryReq::new(0.0, 40.0)),
            )
            .build();
        let p = Problem::new(c, 16, 10.0); // floors: fft 6, hist 4, merged 10
        let s = dp_mapping(&p).unwrap();
        validate(&p, &s.mapping).unwrap();
        // Exhaustive check over both clusterings confirms separation wins.
        assert_eq!(
            s.mapping.num_modules(),
            2,
            "expected separate modules, got {:?} (thr {})",
            s.mapping,
            s.throughput
        );
    }

    #[test]
    fn single_task_problem() {
        let c = ChainBuilder::new()
            .task(Task::new("only", PolyUnary::perfectly_parallel(4.0)))
            .build();
        let p = Problem::new(c, 4, 1e9).without_replication();
        let s = dp_mapping(&p).unwrap();
        assert_eq!(s.mapping.num_modules(), 1);
        assert!((s.throughput - 1.0).abs() < 1e-12);
    }

    #[test]
    fn infeasible_problem_reported() {
        let c = ChainBuilder::new()
            .task(Task::new("big", PolyUnary::zero()).with_memory(MemoryReq::new(100.0, 0.0)))
            .build();
        let p = Problem::new(c, 8, 10.0);
        assert_eq!(dp_mapping(&p).unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn clustering_merges_when_floors_allow() {
        // Identical tasks with a transfer that is pure overhead and an
        // internal redistribution that is free: merging wins.
        let c = ChainBuilder::new()
            .task(Task::new("a", PolyUnary::perfectly_parallel(4.0)))
            .edge(Edge::aligned(PolyEcom::new(2.0, 0.0, 0.0, 0.0, 0.0)))
            .task(Task::new("b", PolyUnary::perfectly_parallel(4.0)))
            .edge(Edge::aligned(PolyEcom::new(2.0, 0.0, 0.0, 0.0, 0.0)))
            .task(Task::new("c", PolyUnary::perfectly_parallel(4.0)))
            .build();
        let p = Problem::new(c, 6, 1e9).without_replication();
        let s = dp_mapping(&p).unwrap();
        assert_eq!(s.mapping.num_modules(), 1);
        assert!((s.throughput - 0.5).abs() < 1e-9); // 12 units on 6 procs
    }

    #[test]
    fn uses_at_most_budget() {
        let c = two_task_chain(0.5);
        let p = Problem::new(c, 13, 1e9).without_replication();
        let s = dp_mapping(&p).unwrap();
        assert!(s.mapping.total_procs() <= 13);
        validate(&p, &s.mapping).unwrap();
    }
}
