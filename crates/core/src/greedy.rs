//! The fast heuristic processor-assignment algorithm (§4.1).
//!
//! Starting from the memory floors, the greedy algorithm repeatedly finds
//! the *bottleneck* task (largest effective response time) and adds one
//! processor wherever it helps that bottleneck most — to the bottleneck
//! itself, or to one of its neighbours, whose processor counts enter the
//! bottleneck's response through the communication functions. Because
//! throughput is not monotone in the number of allocated processors, the
//! algorithm remembers the best assignment ever seen (`A_opt` in the
//! paper's Procedure `Greedy`).
//!
//! Variants:
//!
//! * [`GreedyVariant::Neighbors`] — the paper's main procedure;
//! * [`GreedyVariant::BottleneckOnly`] — Theorem 1's modification (only
//!   ever grow the bottleneck task), provably optimal when communication
//!   time is monotone in both endpoint processor counts;
//! * [`refine_assignment`] — a bounded local reallocation pass. Theorem 2
//!   bounds the greedy's overallocation by 2 processors per task under
//!   convexity and compute-dominance, so a radius-2 search recovers the
//!   optimum in that regime at `O(Pk + k²)` extra cost rather than the
//!   exponential full backtracking.
//!
//! Complexity of the core loop: at most `P` placements, each scanning `k`
//! tasks and evaluating ≤ 3 candidate assignments at `O(k)` apiece —
//! `O(Pk)` as stated in the paper (treating the candidate count as
//! constant).

use pipemap_chain::{Assignment, CostTable, Problem};
use pipemap_model::Procs;

use crate::solution::{Solution, SolveError};

/// Which tasks may receive the next processor.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum GreedyVariant {
    /// The paper's Procedure Greedy: bottleneck and both neighbours.
    #[default]
    Neighbors,
    /// Theorem 1's modified greedy: the bottleneck task only.
    BottleneckOnly,
}

/// Options for [`greedy_assignment`].
#[derive(Clone, Copy, Debug, Default)]
pub struct GreedyOptions {
    /// Candidate-set variant.
    pub variant: GreedyVariant,
    /// Radius of the post-pass reallocation search (0 disables it). With
    /// Theorem 2's hypotheses, radius 2 recovers the optimum.
    pub backtrack_radius: usize,
    /// Grow the backtracking radius to the largest task floor. Maximal
    /// replication quantises throughput: a module with floor `f` only
    /// gains an instance every `f` processors, so between multiples the
    /// one-processor greedy step sees a plateau — the §4.1 pathological
    /// case realised by replication. Moves of up to `f` processors see
    /// across the plateau.
    pub adaptive_radius: bool,
}

impl GreedyOptions {
    /// The paper's plain greedy procedure.
    pub fn paper() -> Self {
        Self {
            variant: GreedyVariant::Neighbors,
            backtrack_radius: 0,
            adaptive_radius: false,
        }
    }

    /// Greedy followed by the bounded backtracking pass (radius 2, the
    /// Theorem 2 bound).
    pub fn with_backtracking() -> Self {
        Self {
            variant: GreedyVariant::Neighbors,
            backtrack_radius: 2,
            adaptive_radius: false,
        }
    }

    /// Backtracking whose radius adapts to the replication quantum — the
    /// robust default for problems with memory floors above 1.
    pub fn adaptive() -> Self {
        Self {
            variant: GreedyVariant::Neighbors,
            backtrack_radius: 2,
            adaptive_radius: true,
        }
    }
}

/// Effective response time of task `i` under assignment `a` (per-task
/// offered processor counts), at instance granularity.
#[inline]
fn response(table: &CostTable, a: &[Procs], i: usize) -> f64 {
    let prev = if i == 0 {
        None
    } else {
        table.task_instance_procs(i - 1, a[i - 1])
    };
    let next = if i + 1 == a.len() {
        None
    } else {
        table.task_instance_procs(i + 1, a[i + 1])
    };
    // A neighbour below its floor makes this state invalid; floors are
    // granted up-front so this cannot happen inside the greedy loop.
    table.task_effective_response(i, a[i], prev, next)
}

/// Pipeline throughput of assignment `a`: `1 / max_i f_i`.
fn assignment_throughput(table: &CostTable, a: &[Procs]) -> f64 {
    let worst = (0..a.len())
        .map(|i| response(table, a, i))
        .fold(0.0_f64, f64::max);
    if worst <= 0.0 {
        f64::INFINITY
    } else if worst.is_infinite() {
        0.0
    } else {
        1.0 / worst
    }
}

/// Index of the slowest task (largest effective response).
fn bottleneck(table: &CostTable, a: &[Procs]) -> usize {
    let mut best = 0;
    let mut best_f = f64::NEG_INFINITY;
    for i in 0..a.len() {
        let f = response(table, a, i);
        if f > best_f {
            best_f = f;
            best = i;
        }
    }
    best
}

/// The greedy processor assignment (Procedure Greedy, §4.1). Returns the
/// best assignment seen and its solution under the problem's replication
/// policy.
pub fn greedy_assignment(
    problem: &Problem,
    options: GreedyOptions,
) -> Result<(Solution, Assignment), SolveError> {
    let table = CostTable::build(problem);
    greedy_assignment_with_table(problem, &table, options)
}

/// [`greedy_assignment`] against a pre-built [`CostTable`], so callers
/// that already materialised the tables (the DP solvers seeding their
/// pruning incumbent, batch sweeps) don't pay the build twice.
pub fn greedy_assignment_with_table(
    problem: &Problem,
    table: &CostTable,
    options: GreedyOptions,
) -> Result<(Solution, Assignment), SolveError> {
    let (best_a, _thr) = greedy_core(problem, table, options)?;
    let assignment = Assignment(best_a);
    let mapping = assignment
        .to_mapping(problem)
        .expect("greedy respects floors");
    Ok((Solution::from_mapping(problem, mapping), assignment))
}

/// The greedy's best throughput in the solvers' *internal* measure
/// (`1 / max_i f_i` over table responses), used by the DP solvers as the
/// admissible pruning incumbent. Returns `0.0` when the singleton
/// clustering is infeasible (the clustering DP may still find a merged
/// mapping, so infeasibility here must not abort the caller — it just
/// means "no incumbent, prune nothing").
pub(crate) fn incumbent_throughput(problem: &Problem, table: &CostTable) -> f64 {
    match greedy_core(problem, table, GreedyOptions::adaptive()) {
        Ok((_, thr)) => thr,
        Err(_) => 0.0,
    }
}

/// Core of the greedy: returns the refined best assignment and its
/// internal throughput (`assignment_throughput` of the result).
fn greedy_core(
    problem: &Problem,
    table: &CostTable,
    options: GreedyOptions,
) -> Result<(Vec<Procs>, f64), SolveError> {
    let rec = pipemap_obs::global();
    let _wall = rec.timer("solver.greedy.wall_s");
    let _span = pipemap_obs::span!("greedy_assignment", "solver");
    // Local accumulators, published once at the end (cheap hot loop).
    let mut n_placements: u64 = 0;
    let mut n_evals: u64 = 0;

    let k = problem.num_tasks();
    let p = problem.total_procs;

    // Step 1: grant every task its floor.
    let mut a: Vec<Procs> = Vec::with_capacity(k);
    for i in 0..k {
        a.push(problem.task_floor(i).ok_or(SolveError::Infeasible)?);
    }
    let used: Procs = a.iter().sum();
    if used > p {
        return Err(SolveError::Infeasible);
    }
    let mut available = p - used;

    let mut best_a = a.clone();
    let mut best_thr = assignment_throughput(table, &a);

    // Steps 2–3: place the remaining processors one at a time.
    while available > 0 {
        let slow = bottleneck(table, &a);
        let candidates: &[isize] = match options.variant {
            GreedyVariant::Neighbors => &[-1, 0, 1],
            GreedyVariant::BottleneckOnly => &[0],
        };
        let mut pick = slow;
        let mut pick_thr = f64::NEG_INFINITY;
        for &d in candidates {
            let Some(c) = slow.checked_add_signed(d) else {
                continue;
            };
            if c >= k {
                continue;
            }
            a[c] += 1;
            n_evals += 1;
            let thr = assignment_throughput(table, &a);
            a[c] -= 1;
            // Strict improvement wins; on ties prefer the bottleneck task
            // itself (d == 0 is scanned between the neighbours, so require
            // strict improvement to displace it once set).
            let better = thr > pick_thr || (thr == pick_thr && c == slow);
            if better {
                pick_thr = thr;
                pick = c;
            }
        }
        a[pick] += 1;
        available -= 1;
        n_placements += 1;
        if pick_thr > best_thr {
            best_thr = pick_thr;
            best_a = a.clone();
        }
    }

    // Step 4 + optional backtracking refinement.
    let mut radius = options.backtrack_radius;
    if options.adaptive_radius {
        let quantum = (0..k)
            .map(|i| problem.task_floor(i).unwrap_or(1))
            .max()
            .unwrap_or(1);
        radius = radius.max(quantum);
    }
    if radius > 0 {
        best_a = refine_assignment(problem, table, &best_a, radius);
        best_thr = assignment_throughput(table, &best_a);
    }
    rec.add("solver.greedy.placements", n_placements);
    rec.add("solver.greedy.evals", n_evals);

    Ok((best_a, best_thr))
}

/// Bounded local reallocation: repeatedly move up to `radius` processors
/// from one task to another (or drop them entirely) while it improves
/// throughput. With Theorem 2's hypotheses (convex costs, computation
/// dominating communication) and `radius = 2`, this recovers the optimum
/// from the greedy's result, because the greedy then overallocates at most
/// 2 processors to any task.
pub fn refine_assignment(
    problem: &Problem,
    table: &CostTable,
    assignment: &[Procs],
    radius: usize,
) -> Vec<Procs> {
    let k = assignment.len();
    let p = problem.total_procs;
    let floors: Vec<Procs> = (0..k)
        .map(|i| {
            problem
                .task_floor(i)
                .expect("assignment exists, so floors do")
        })
        .collect();

    /// One candidate local move: take `take` processors from `from` (if
    /// set) and give `give` processors to `to` (if set); the difference
    /// comes from / goes to the spare pool.
    #[derive(Clone, Copy)]
    struct Move {
        from: Option<(usize, Procs)>,
        to: Option<(usize, Procs)>,
    }

    fn apply(a: &mut [Procs], m: &Move, undo: bool) {
        if let Some((i, d)) = m.from {
            if undo {
                a[i] += d;
            } else {
                a[i] -= d;
            }
        }
        if let Some((j, d)) = m.to {
            if undo {
                a[j] -= d;
            } else {
                a[j] += d;
            }
        }
    }

    let rec = pipemap_obs::global();
    let mut n_moves: u64 = 0;
    let mut n_evals: u64 = 0;

    let mut a = assignment.to_vec();
    let mut thr = assignment_throughput(table, &a);
    // Each accepted move strictly improves throughput, so termination is
    // guaranteed; bound the rounds defensively anyway.
    for _round in 0..(k * p).max(8) {
        let spare = p - a.iter().sum::<Procs>();
        let mut candidates: Vec<Move> = Vec::new();
        for d in 1..=radius {
            for from in 0..k {
                if a[from] < floors[from] + d {
                    continue;
                }
                // Drop d processors entirely.
                candidates.push(Move {
                    from: Some((from, d)),
                    to: None,
                });
                // Transfer d processors to another task.
                for to in 0..k {
                    if to != from {
                        candidates.push(Move {
                            from: Some((from, d)),
                            to: Some((to, d)),
                        });
                    }
                }
            }
            // Grow a task from the spare pool.
            if d <= spare {
                for to in 0..k {
                    candidates.push(Move {
                        from: None,
                        to: Some((to, d)),
                    });
                }
            }
        }
        let mut best_move: Option<Move> = None;
        let mut best_thr = thr;
        for m in &candidates {
            n_evals += 1;
            apply(&mut a, m, false);
            let cand = assignment_throughput(table, &a);
            apply(&mut a, m, true);
            if cand > best_thr {
                best_thr = cand;
                best_move = Some(*m);
            }
        }
        match best_move {
            Some(m) => {
                apply(&mut a, &m, false);
                thr = best_thr;
                n_moves += 1;
            }
            None => break,
        }
    }
    rec.add("solver.greedy.refine_moves", n_moves);
    rec.add("solver.greedy.refine_evals", n_evals);
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::dp_assignment;
    use pipemap_chain::{ChainBuilder, Edge, Task, TaskChain};
    use pipemap_model::{MemoryReq, PolyEcom, PolyUnary};

    fn chain(work: &[f64]) -> TaskChain {
        let mut b =
            ChainBuilder::new().task(Task::new("t0", PolyUnary::perfectly_parallel(work[0])));
        for (i, &w) in work.iter().enumerate().skip(1) {
            b = b
                .edge(Edge::free())
                .task(Task::new(format!("t{i}"), PolyUnary::perfectly_parallel(w)));
        }
        b.build()
    }

    #[test]
    fn greedy_balances_identical_tasks() {
        let p = Problem::new(chain(&[8.0, 8.0]), 8, 1e9).without_replication();
        let (s, a) = greedy_assignment(&p, GreedyOptions::paper()).unwrap();
        assert_eq!(a.0, vec![4, 4]);
        assert!((s.throughput - 0.5).abs() < 1e-12);
    }

    #[test]
    fn greedy_matches_dp_without_comm() {
        // With zero communication cost the greedy is provably optimal.
        let p = Problem::new(chain(&[12.0, 4.0, 8.0]), 16, 1e9).without_replication();
        let (g, _) = greedy_assignment(&p, GreedyOptions::paper()).unwrap();
        let (d, _) = dp_assignment(&p).unwrap();
        assert!((g.throughput - d.throughput).abs() < 1e-9);
    }

    #[test]
    fn greedy_matches_dp_with_monotone_comm() {
        // Theorem 1 regime: overhead-dominated communication, monotone in
        // both processor counts; the modified greedy must be optimal.
        let c = ChainBuilder::new()
            .task(Task::new("a", PolyUnary::perfectly_parallel(9.0)))
            .edge(Edge::new(
                PolyUnary::zero(),
                PolyEcom::new(0.3, 0.0, 0.0, 0.05, 0.05),
            ))
            .task(Task::new("b", PolyUnary::perfectly_parallel(6.0)))
            .build();
        let p = Problem::new(c, 10, 1e9).without_replication();
        let opts = GreedyOptions {
            variant: GreedyVariant::BottleneckOnly,
            backtrack_radius: 0,
            adaptive_radius: false,
        };
        let (g, _) = greedy_assignment(&p, opts).unwrap();
        let (d, _) = dp_assignment(&p).unwrap();
        assert!(
            (g.throughput - d.throughput).abs() < 1e-9,
            "greedy {} vs dp {}",
            g.throughput,
            d.throughput
        );
    }

    #[test]
    fn greedy_respects_floors() {
        let c = ChainBuilder::new()
            .task(
                Task::new("a", PolyUnary::perfectly_parallel(1.0))
                    .with_memory(MemoryReq::new(0.0, 50.0)),
            )
            .edge(Edge::free())
            .task(Task::new("b", PolyUnary::perfectly_parallel(9.0)))
            .build();
        let p = Problem::new(c, 8, 10.0).without_replication(); // floor a = 5
        let (_, a) = greedy_assignment(&p, GreedyOptions::paper()).unwrap();
        assert!(a.procs(0) >= 5);
        assert!(a.total() <= 8);
    }

    #[test]
    fn greedy_infeasible() {
        let c = ChainBuilder::new()
            .task(Task::new("a", PolyUnary::zero()).with_memory(MemoryReq::new(0.0, 90.0)))
            .edge(Edge::free())
            .task(Task::new("b", PolyUnary::zero()).with_memory(MemoryReq::new(0.0, 90.0)))
            .build();
        let p = Problem::new(c, 16, 10.0);
        assert_eq!(
            greedy_assignment(&p, GreedyOptions::paper()).unwrap_err(),
            SolveError::Infeasible
        );
    }

    #[test]
    fn greedy_with_replication_matches_dp_on_flat_tasks() {
        // Non-scaling tasks, replication on: both should hit the maximal
        // replication throughput.
        let c = ChainBuilder::new()
            .task(Task::new("a", PolyUnary::new(1.0, 0.0, 0.0)))
            .edge(Edge::free())
            .task(Task::new("b", PolyUnary::new(1.0, 0.0, 0.0)))
            .build();
        let p = Problem::new(c, 8, 1e9);
        let (g, _) = greedy_assignment(&p, GreedyOptions::paper()).unwrap();
        let (d, _) = dp_assignment(&p).unwrap();
        assert!((g.throughput - d.throughput).abs() < 1e-9);
    }

    #[test]
    fn best_ever_assignment_is_returned() {
        // A task with overhead growth: throughput peaks mid-way through
        // the allocation loop; the returned assignment must be the peak,
        // not the final state.
        let c = ChainBuilder::new()
            .task(Task::new("a", PolyUnary::new(0.0, 4.0, 0.25)))
            .build();
        let p = Problem::new(c, 16, 1e9).without_replication();
        let (s, a) = greedy_assignment(&p, GreedyOptions::paper()).unwrap();
        // Optimal at p = 4: f = 1 + 1 = 2. Allocating all 16 would give
        // f = 0.25 + 4 = 4.25.
        assert_eq!(a.0, vec![4]);
        assert!((s.throughput - 0.5).abs() < 1e-9);
    }

    #[test]
    fn backtracking_can_only_improve() {
        let c = ChainBuilder::new()
            .task(Task::new("a", PolyUnary::perfectly_parallel(7.0)))
            .edge(Edge::new(
                PolyUnary::zero(),
                PolyEcom::new(0.2, 1.0, 1.0, 0.1, 0.1),
            ))
            .task(Task::new("b", PolyUnary::perfectly_parallel(5.0)))
            .build();
        let p = Problem::new(c, 12, 1e9).without_replication();
        let (plain, _) = greedy_assignment(&p, GreedyOptions::paper()).unwrap();
        let (bt, _) = greedy_assignment(&p, GreedyOptions::with_backtracking()).unwrap();
        assert!(bt.throughput >= plain.throughput - 1e-12);
    }

    #[test]
    fn refine_moves_overallocation_back() {
        let c = chain(&[8.0, 8.0]);
        let p = Problem::new(c, 8, 1e9).without_replication();
        let table = CostTable::build(&p);
        // Deliberately lopsided start: 6/2 (bottleneck 4.0).
        let refined = refine_assignment(&p, &table, &[6, 2], 2);
        let thr = assignment_throughput(&table, &refined);
        assert!((thr - 0.5).abs() < 1e-9, "refined {refined:?} thr {thr}");
    }
}
