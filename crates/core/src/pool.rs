//! A small std-only scoped-thread worker pool for the DP solvers.
//!
//! Each DP stage consists of independent cell rows (one row per processor
//! count of the stage's own module). [`run_strided`] partitions the rows
//! across `t` scoped threads in a deterministic strided fashion (worker
//! `w` computes rows `w, w + t, w + 2t, …`), collects each row's result
//! into a per-thread buffer, and merges the buffers back into row order
//! after the join — the stage barrier. Because every row is computed by
//! exactly one worker from read-only shared inputs and merged
//! single-threaded, results are **bitwise independent of the thread
//! count**; `threads == 1` degenerates to a plain loop with no spawn.
//!
//! No external dependencies (mirroring the std-only discipline of
//! `pipemap-obs`): just [`std::thread::scope`].

use std::thread;

/// Per-worker hot-loop counters, accumulated locally (plain integers, no
/// atomics in the recurrence) and summed at the stage barrier.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct CellStats {
    /// DP cells enumerated (including bound-pruned ones).
    pub cells: u64,
    /// Cells skipped wholesale by the incumbent bound.
    pub cells_pruned: u64,
    /// Subproblem value lookups (inner candidate scans).
    pub lookups: u64,
    /// Candidates skipped because their subvalue could not beat the
    /// running best (`min(sub, ·) ≤ sub ≤ best`).
    pub qskips: u64,
}

impl CellStats {
    pub fn absorb(&mut self, other: &CellStats) {
        self.cells += other.cells;
        self.cells_pruned += other.cells_pruned;
        self.lookups += other.lookups;
        self.qskips += other.qskips;
    }
}

/// Hard cap on pool width; beyond this the stage merge dominates.
pub const MAX_POOL_THREADS: usize = 16;

/// Resolve the effective worker count: an explicit request wins, then the
/// `PIPEMAP_THREADS` environment variable, then the machine's available
/// parallelism (capped at [`MAX_POOL_THREADS`]). Always ≥ 1.
pub fn thread_limit(requested: Option<usize>) -> usize {
    if let Some(n) = requested {
        return n.max(1);
    }
    if let Ok(s) = std::env::var("PIPEMAP_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(MAX_POOL_THREADS)
}

/// Compute `f(row)` for every `row` in `0..rows` on up to `threads`
/// scoped worker threads and return the results in row order.
///
/// `f` must be safe to call concurrently from several threads (`Sync`) and
/// must depend only on `row` — the pool guarantees each row is evaluated
/// exactly once, but not on which worker or in which global order.
pub fn run_strided<T, F>(threads: usize, rows: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let t = threads.max(1).min(rows.max(1));
    if t <= 1 {
        return (0..rows).map(f).collect();
    }
    let per_worker: Vec<Vec<(usize, T)>> = thread::scope(|s| {
        let f = &f;
        let handles: Vec<_> = (0..t)
            .map(|w| {
                s.spawn(move || {
                    (w..rows)
                        .step_by(t)
                        .map(|row| (row, f(row)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("pool worker panicked"))
            .collect()
    });
    // Merge at the barrier: scatter back to row order, single-threaded.
    let mut out: Vec<Option<T>> = (0..rows).map(|_| None).collect();
    for chunk in per_worker {
        for (row, value) in chunk {
            out[row] = Some(value);
        }
    }
    out.into_iter()
        .map(|v| v.expect("every row computed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_row_order_for_any_thread_count() {
        for t in [1, 2, 3, 7, 16, 64] {
            let got = run_strided(t, 23, |row| row * row);
            let want: Vec<usize> = (0..23).map(|r| r * r).collect();
            assert_eq!(got, want, "threads = {t}");
        }
    }

    #[test]
    fn zero_rows_is_fine() {
        let got: Vec<usize> = run_strided(4, 0, |r| r);
        assert!(got.is_empty());
    }

    #[test]
    fn explicit_request_wins() {
        assert_eq!(thread_limit(Some(3)), 3);
        assert_eq!(thread_limit(Some(0)), 1);
    }
}
