//! Clustering support: chain contraction and the §4.2 heuristic.
//!
//! Clustering is the coarse decision of the mapping problem. The §4.2
//! heuristic exploits the paper's observation that "mappings corresponding
//! to optimal or near optimal throughput have the same clustering":
//!
//! 1. run the greedy processor assignment once with every task in its own
//!    module, to get an approximate allocation;
//! 2. scan adjacent module pairs, merging when the merged configuration
//!    (on the pair's combined processors) improves predicted throughput,
//!    then check whether any merged module should be split again;
//! 3. re-run the greedy assignment on the resulting module chain to obtain
//!    the final allocation and replication.
//!
//! The mechanical piece is [`contract_chain`]: turning a clustering into a
//! derived problem whose "tasks" are the modules — execution costs compose
//! (members + internal redistributions), memory adds, replicability is
//! conjunctive, and the edges between modules are the original boundary
//! edges. Every assignment-level algorithm then runs unchanged on the
//! contracted problem, which is exactly how the paper's tool treats
//! modules and tasks uniformly.

use pipemap_chain::{ChainBuilder, Mapping, ModuleAssignment, Problem, Task, TaskChain};
use pipemap_model::{ComposedModule, UnaryCost};

use crate::greedy::{greedy_assignment, GreedyOptions};
use crate::solution::{Solution, SolveError};

/// A candidate clustering with per-module processor offers and the
/// throughput it evaluates to.
type ClusteringCandidate = (Vec<(usize, usize)>, Vec<usize>, f64);

/// A problem whose tasks are the modules of a clustering of the original
/// problem, plus the bookkeeping to expand solutions back.
#[derive(Clone, Debug)]
pub struct ContractedProblem {
    /// The derived problem (one task per module).
    pub problem: Problem,
    /// The clustering, as inclusive task ranges of the original chain.
    pub clustering: Vec<(usize, usize)>,
}

impl ContractedProblem {
    /// Expand a mapping of the contracted problem (whose module ranges are
    /// singletons over module-tasks) into a mapping of the original chain.
    ///
    /// # Panics
    ///
    /// Panics if `mapping` does not have exactly one singleton module per
    /// contracted task (the form produced by the assignment algorithms).
    pub fn expand(&self, mapping: &Mapping) -> Mapping {
        assert_eq!(mapping.num_modules(), self.clustering.len());
        let modules = mapping
            .modules
            .iter()
            .enumerate()
            .map(|(i, m)| {
                assert_eq!((m.first, m.last), (i, i), "expected singleton modules");
                let (first, last) = self.clustering[i];
                ModuleAssignment::new(first, last, m.replicas, m.procs)
            })
            .collect();
        Mapping::new(modules)
    }
}

/// Contract `problem` along `clustering` (a partition of the task indices
/// into consecutive inclusive ranges): each module becomes one task whose
/// execution cost is its members' execution plus internal redistributions,
/// whose memory is the members' sum, and which is replicable only if every
/// member is.
///
/// # Panics
///
/// Panics if `clustering` is not a left-to-right partition of the chain.
pub fn contract_chain(problem: &Problem, clustering: &[(usize, usize)]) -> ContractedProblem {
    let chain = &problem.chain;
    let mut expected = 0usize;
    for &(first, last) in clustering {
        assert_eq!(first, expected, "clustering must cover the chain in order");
        assert!(last >= first && last < chain.len());
        expected = last + 1;
    }
    assert_eq!(expected, chain.len(), "clustering must cover every task");

    let mut builder = ChainBuilder::new();
    for (mi, &(first, last)) in clustering.iter().enumerate() {
        let mut composed = ComposedModule::empty();
        let mut names: Vec<&str> = Vec::new();
        let mut min_procs = None;
        for i in first..=last {
            let t = chain.task(i);
            let joining = if i == first {
                UnaryCost::Zero
            } else {
                chain.edge(i - 1).icom.clone()
            };
            composed.push(t.exec.clone(), t.memory, t.replicable, &joining);
            names.push(&t.name);
            min_procs = match (min_procs, t.min_procs) {
                (None, m) => m,
                (m, None) => m,
                (Some(a), Some(b)) => Some(a.max(b)),
            };
        }
        let mut task =
            Task::new(names.join("+"), composed.exec().clone()).with_memory(composed.memory());
        if !composed.replicable() {
            task = task.not_replicable();
        }
        if let Some(m) = min_procs {
            task = task.with_min_procs(m);
        }
        builder = builder.task(task);
        if mi + 1 < clustering.len() {
            builder = builder.edge(chain.edge(last).clone());
        }
    }
    let contracted: TaskChain = builder.build();
    let mut derived = Problem::new(contracted, problem.total_procs, problem.mem_per_proc);
    derived.replication = problem.replication;
    ContractedProblem {
        problem: derived,
        clustering: clustering.to_vec(),
    }
}

/// Throughput of a clustering with the given per-module processor offers,
/// under the problem's replication policy. `None` if any module is below
/// its floor or over budget.
fn clustering_throughput(
    problem: &Problem,
    clustering: &[(usize, usize)],
    procs: &[usize],
) -> Option<f64> {
    let total: usize = procs.iter().sum();
    if total > problem.total_procs {
        return None;
    }
    let contracted = contract_chain(problem, clustering);
    let assignment = pipemap_chain::Assignment(procs.to_vec());
    let mapping = assignment.to_mapping(&contracted.problem)?;
    Some(pipemap_chain::throughput(
        &contracted.problem.chain,
        &mapping,
    ))
}

/// The full §4.2 heuristic: greedy assignment → merge scan → split scan →
/// greedy re-assignment on the final clustering. Returns the expanded
/// mapping on the original chain.
pub fn cluster_heuristic(
    problem: &Problem,
    options: GreedyOptions,
) -> Result<Solution, SolveError> {
    let k = problem.num_tasks();

    // Phase 1: approximate assignment with singleton clustering.
    let (_, assignment) = greedy_assignment(problem, options)?;
    let mut clustering: Vec<(usize, usize)> = (0..k).map(|i| (i, i)).collect();
    let mut procs: Vec<usize> = assignment.0.clone();

    // Phase 2a: merge scan. Merging modules i, i+1 pools their
    // processors. Each round evaluates *every* adjacent pair and applies
    // the best improving merge (best-improvement, not first-improvement:
    // a greedy left-to-right scan can commit to merging (t1, t2) and
    // thereby hide the better (t2, t3) merge).
    loop {
        let cur = clustering_throughput(problem, &clustering, &procs);
        let mut best: Option<ClusteringCandidate> = None;
        for i in 0..clustering.len().saturating_sub(1) {
            let mut mc = clustering.clone();
            let mut mp = procs.clone();
            let (f, _) = mc[i];
            let (_, l2) = mc[i + 1];
            mc[i] = (f, l2);
            mc.remove(i + 1);
            mp[i] += mp[i + 1];
            mp.remove(i + 1);
            if let Some(thr) = clustering_throughput(problem, &mc, &mp) {
                if best.as_ref().is_none_or(|b| thr > b.2) {
                    best = Some((mc, mp, thr));
                }
            }
        }
        match (cur, best) {
            (Some(c), Some((mc, mp, thr))) if thr > c => {
                clustering = mc;
                procs = mp;
            }
            (None, Some((mc, mp, _))) => {
                // The current split is infeasible (e.g. floors exceed the
                // budget); take any feasible merge.
                clustering = mc;
                procs = mp;
            }
            _ => break,
        }
    }

    // Phase 2b: split scan — check whether any merged module should be
    // separated again, splitting its processors as evenly as floors allow.
    let mut mi = 0;
    while mi < clustering.len() {
        let (first, last) = clustering[mi];
        if first == last {
            mi += 1;
            continue;
        }
        let cur = clustering_throughput(problem, &clustering, &procs);
        let mut best_split: Option<ClusteringCandidate> = None;
        for cut in first..last {
            // Split [first..=last] into [first..=cut] | [cut+1..=last].
            let mut sc = clustering.clone();
            sc[mi] = (first, cut);
            sc.insert(mi + 1, (cut + 1, last));
            let p = procs[mi];
            let f1 = problem.module_floor(first, cut);
            let f2 = problem.module_floor(cut + 1, last);
            let (Some(f1), Some(f2)) = (f1, f2) else {
                continue;
            };
            if f1 + f2 > p {
                continue;
            }
            // Even split, clamped to floors.
            let mut p1 = (p / 2).max(f1);
            if p - p1 < f2 {
                p1 = p - f2;
            }
            let p2 = p - p1;
            let mut sp = procs.clone();
            sp[mi] = p1;
            sp.insert(mi + 1, p2);
            if let Some(thr) = clustering_throughput(problem, &sc, &sp) {
                if best_split.as_ref().is_none_or(|b| thr > b.2) {
                    best_split = Some((sc, sp, thr));
                }
            }
        }
        if let (Some(c), Some((sc, sp, thr))) = (cur, best_split) {
            if thr > c {
                clustering = sc;
                procs = sp;
                continue; // re-examine the left part at the same index
            }
        }
        mi += 1;
    }

    // Phase 3: final greedy assignment on the contracted chain.
    let contracted = contract_chain(problem, &clustering);
    let (sol, _) = greedy_assignment(&contracted.problem, options)?;
    let expanded = contracted.expand(&sol.mapping);
    Ok(Solution::from_mapping(problem, expanded))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipemap_chain::{throughput, validate, Edge};
    use pipemap_model::{MemoryReq, PolyEcom, PolyUnary};

    /// Two perfectly-parallel tasks. With `merge_wins` the transfer is
    /// expensive and the internal redistribution free, so one module is
    /// best; otherwise the redistribution costs more than the transfer,
    /// so staying separate is best.
    fn mk_chain(merge_wins: bool) -> TaskChain {
        let (icom, ecom) = if merge_wins {
            (PolyUnary::zero(), PolyEcom::new(50.0, 0.0, 0.0, 0.0, 0.0))
        } else {
            (
                PolyUnary::new(0.5, 0.0, 0.0),
                PolyEcom::new(0.01, 0.0, 0.0, 0.0, 0.0),
            )
        };
        ChainBuilder::new()
            .task(Task::new("a", PolyUnary::perfectly_parallel(8.0)))
            .edge(Edge::new(icom, ecom))
            .task(Task::new("b", PolyUnary::perfectly_parallel(8.0)))
            .build()
    }

    #[test]
    fn contract_composes_costs() {
        let p = Problem::new(mk_chain(false), 8, 1e9);
        let c = contract_chain(&p, &[(0, 1)]);
        assert_eq!(c.problem.num_tasks(), 1);
        // Composed exec at 4 procs: 8/4 + icom(0.5) + 8/4 = 4.5.
        assert!((c.problem.chain.task(0).exec.eval(4) - 4.5).abs() < 1e-12);
        assert_eq!(c.problem.chain.task(0).name, "a+b");
    }

    #[test]
    fn contract_preserves_boundary_edges() {
        let chain = ChainBuilder::new()
            .task(Task::new("a", PolyUnary::perfectly_parallel(1.0)))
            .edge(Edge::new(
                PolyUnary::new(0.5, 0.0, 0.0),
                PolyEcom::new(2.0, 0.0, 0.0, 0.0, 0.0),
            ))
            .task(Task::new("b", PolyUnary::perfectly_parallel(1.0)))
            .edge(Edge::new(
                PolyUnary::new(0.25, 0.0, 0.0),
                PolyEcom::new(3.0, 0.0, 0.0, 0.0, 0.0),
            ))
            .task(Task::new("c", PolyUnary::perfectly_parallel(1.0)))
            .build();
        let p = Problem::new(chain, 8, 1e9);
        let c = contract_chain(&p, &[(0, 1), (2, 2)]);
        assert_eq!(c.problem.num_tasks(), 2);
        // The surviving edge is the original b→c edge.
        assert!((c.problem.chain.edge(0).ecom.eval(1, 1) - 3.0).abs() < 1e-12);
        // The a→b icom got folded into the first module's exec.
        assert!((c.problem.chain.task(0).exec.eval(1) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn contract_combines_memory_and_replicability() {
        let chain = ChainBuilder::new()
            .task(
                Task::new("a", PolyUnary::zero())
                    .with_memory(MemoryReq::new(1.0, 10.0))
                    .not_replicable(),
            )
            .edge(Edge::free())
            .task(Task::new("b", PolyUnary::zero()).with_memory(MemoryReq::new(2.0, 20.0)))
            .build();
        let p = Problem::new(chain, 8, 1e9);
        let c = contract_chain(&p, &[(0, 1)]);
        let t = c.problem.chain.task(0);
        assert_eq!(t.memory, MemoryReq::new(3.0, 30.0));
        assert!(!t.replicable);
    }

    #[test]
    #[should_panic(expected = "cover every task")]
    fn contract_rejects_bad_clustering() {
        let p = Problem::new(mk_chain(false), 8, 1e9);
        let _ = contract_chain(&p, &[(0, 0)]);
    }

    #[test]
    fn expand_roundtrip() {
        let p = Problem::new(mk_chain(false), 8, 1e9).without_replication();
        let c = contract_chain(&p, &[(0, 1)]);
        let m = Mapping::new(vec![ModuleAssignment::new(0, 0, 1, 8)]);
        let e = c.expand(&m);
        assert_eq!(e.modules[0].first, 0);
        assert_eq!(e.modules[0].last, 1);
        assert_eq!(e.modules[0].procs, 8);
        validate(&p, &e).unwrap();
    }

    #[test]
    fn heuristic_merges_under_heavy_ecom() {
        let p = Problem::new(mk_chain(true), 8, 1e9).without_replication();
        let s = cluster_heuristic(&p, GreedyOptions::paper()).unwrap();
        assert_eq!(s.mapping.num_modules(), 1);
        validate(&p, &s.mapping).unwrap();
        assert!((s.throughput - 0.5).abs() < 1e-9);
    }

    #[test]
    fn heuristic_keeps_split_under_light_ecom() {
        let p = Problem::new(mk_chain(false), 8, 1e9).without_replication();
        let s = cluster_heuristic(&p, GreedyOptions::paper()).unwrap();
        assert_eq!(s.mapping.num_modules(), 2);
        validate(&p, &s.mapping).unwrap();
    }

    #[test]
    fn contracted_throughput_matches_expanded_throughput() {
        let p = Problem::new(mk_chain(true), 8, 1e9).without_replication();
        let c = contract_chain(&p, &[(0, 1)]);
        let m = Mapping::new(vec![ModuleAssignment::new(0, 0, 1, 8)]);
        let contracted_thr = throughput(&c.problem.chain, &m);
        let expanded_thr = throughput(&p.chain, &c.expand(&m));
        assert!((contracted_thr - expanded_thr).abs() < 1e-12);
    }
}
