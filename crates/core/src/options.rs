//! Tuning knobs for the optimal DP solvers.
//!
//! All knobs are *performance-only*: every combination returns the same
//! optimal throughput and the same mapping, bit for bit (enforced by the
//! differential suite in `tests/equivalence.rs`). The default enables the
//! whole performance layer; [`SolveOptions::reference`] disables it and
//! reproduces the paper-faithful serial enumeration — useful as the
//! baseline when measuring speedups and as the differential oracle.
//!
//! The one non-performance knob is [`SolveOptions::provenance`]: it asks
//! the solver to *additionally* record the winning decision path and
//! per-stage cell statistics (see [`crate::provenance`]). It never changes
//! the solve's result either — recording observes the scan, it does not
//! steer it — and it is zero-cost when off (no tables are retained, no
//! stats are pushed).

/// Performance options for [`crate::dp_assignment_with`] and
/// [`crate::dp_mapping_with`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SolveOptions {
    /// Evaluate each DP stage's independent cell rows on a scoped-thread
    /// worker pool ([`crate::pool`]). Results are identical for any thread
    /// count: rows are partitioned deterministically and merged at the
    /// stage barrier.
    pub par: bool,
    /// Bound-based cell pruning: seed the DP with the greedy heuristic's
    /// throughput as an incumbent, skip cells whose single-module upper
    /// bound cannot reach it, and early-break inner processor scans once a
    /// cell's own bound is attained.
    pub prune: bool,
    /// Collapse the "next group size" DP axis to *distinct instance
    /// sizes*. Under replication two neighbour offers with equal instance
    /// size are interchangeable for the subproblem, so the deduplicated
    /// axis is often tiny (a replicable task with floor 1 always runs
    /// 1-processor instances).
    pub dedup: bool,
    /// Worker threads when `par` is set. `None` consults the
    /// `PIPEMAP_THREADS` environment variable, then
    /// `std::thread::available_parallelism()`.
    pub threads: Option<usize>,
    /// Record decision provenance: keep the winning path's DP cells,
    /// runner-up candidates, and per-stage cell/pruning statistics (the
    /// raw material of `pipemap explain`). Does not change results;
    /// zero-cost when off. Runner-up values are only exact when `prune`
    /// is off (a pruned scan drops sub-incumbent candidates wholesale),
    /// which is what [`crate::dp_assignment_provenance`] and
    /// [`crate::dp_mapping_provenance`] enforce.
    pub provenance: bool,
}

impl Default for SolveOptions {
    fn default() -> Self {
        Self {
            par: true,
            prune: true,
            dedup: true,
            threads: None,
            provenance: false,
        }
    }
}

impl SolveOptions {
    /// The serial, unpruned, undeduplicated enumeration — the faithful
    /// baseline path. Bit-identical results to [`Self::default`], at the
    /// full `O(P⁴)` cost.
    pub fn reference() -> Self {
        Self {
            par: false,
            prune: false,
            dedup: false,
            threads: None,
            provenance: false,
        }
    }

    /// Default options with an explicit worker-thread count.
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads: Some(threads),
            ..Self::default()
        }
    }

    /// Default options plus provenance recording with the unpruned scan
    /// (exact runner-ups). `par` and `dedup` stay on: both preserve full
    /// tables and bit-identical values.
    pub fn provenance() -> Self {
        Self {
            prune: false,
            provenance: true,
            ..Self::default()
        }
    }
}
