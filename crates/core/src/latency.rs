//! Latency evaluation and latency-constrained mapping.
//!
//! The paper optimises throughput and cites Vondran's companion work
//! ("Optimization of latency, throughput and processors for pipelines of
//! data parallel tasks", reference \[14\]) for the latency dimension. This
//! module implements that direction:
//!
//! * [`latency`] — the time one data set spends traversing the pipeline
//!   when it never waits: every module's execution plus every transfer
//!   *once* (a transfer occupies sender and receiver simultaneously, so
//!   although it appears in both modules' response times it elapses once
//!   on the data set's clock). Replication does not reduce latency —
//!   that is Figure 3's trade-off: response time per data set goes *up*
//!   with replication while throughput goes up too.
//! * [`best_latency_mapping`] — minimise pipeline latency subject to a
//!   throughput floor, over the same search space as the throughput DP
//!   (clustering × allocation × policy replication). The state space is
//!   identical to `dp_mapping`'s; only the objective changes from
//!   `max(min throughput)` to `min(sum of stage times)` with a
//!   throughput feasibility filter — so the solver doubles as an
//!   independent check of the DP state construction.

use pipemap_chain::{module_response, CostTable, Mapping, ModuleAssignment, Problem, TaskChain};

use crate::solution::SolveError;

/// Pipeline latency of one data set under `mapping`: the unloaded
/// traversal time (every module's receive + execute, with each transfer
/// counted once).
pub fn latency(chain: &TaskChain, mapping: &Mapping) -> f64 {
    let l = mapping.num_modules();
    let mut total = 0.0;
    for i in 0..l {
        let r = module_response(chain, mapping, i);
        // `incoming` covers the transfer from module i−1 exactly once;
        // `outgoing` would double-count it from the sender side.
        total += r.incoming + r.exec;
    }
    total
}

/// A latency-optimal mapping under a throughput floor.
#[derive(Clone, Debug)]
pub struct LatencySolution {
    /// The chosen mapping.
    pub mapping: Mapping,
    /// Its unloaded pipeline latency, seconds.
    pub latency: f64,
    /// Its steady-state throughput (≥ the requested floor).
    pub throughput: f64,
}

/// Minimise pipeline latency subject to `throughput ≥ min_throughput`,
/// over clusterings, allocations, and replication.
///
/// Dynamic program over module boundaries, as in [`crate::dp_cluster`],
/// but with two changes fitting the latency objective:
///
/// * the value is the *sum* of `incoming + exec` stage times of the
///   prefix (minimised), not the bottleneck;
/// * replication is a free per-module choice rather than the §3.2
///   maximal rule — replication never reduces latency, so the optimal
///   degree is the *smallest* `r` meeting the floor. Since a stage's
///   response `f = cin + exec + out` is a function of instance sizes
///   only, `r* = max(1, ⌈f · floor⌉)` is closed-form, and the state is
///   keyed by the module's *instance size* with `r*` folded into the
///   budget accounting at each transition.
pub fn best_latency_mapping(
    problem: &Problem,
    min_throughput: f64,
) -> Result<LatencySolution, SolveError> {
    assert!(
        min_throughput >= 0.0 && min_throughput.is_finite(),
        "throughput floor must be a finite non-negative rate"
    );
    let table = CostTable::build(problem);
    let k = problem.num_tasks();
    let p = problem.total_procs;

    // Smallest replication degree putting stage response `f` under the
    // floor; `None` if no degree ≤ max_r works or replication is not
    // allowed beyond 1.
    let required_r = |f: f64, replicable: bool, max_r: usize| -> Option<usize> {
        if min_throughput <= 0.0 {
            return Some(1);
        }
        let need = (f * min_throughput).ceil().max(1.0);
        if need > max_r as f64 {
            return None;
        }
        let r = need as usize;
        if r > 1 && !replicable {
            return None;
        }
        Some(r)
    };

    // Stage tables keyed by (end task j, module length L):
    // value[(inst-1, ne, pt)] = minimal prefix latency with the last
    // module at instance size `inst`, given the next module's instance
    // size `ne` (0 = none) and at most `pt` processors for the prefix.
    let idx =
        |inst: usize, ne: usize, pt: usize| -> usize { ((inst - 1) * (p + 1) + ne) * (p + 1) + pt };
    let stage_len = p * (p + 1) * (p + 1);
    let stage_key = |j: usize, l: usize| j * k + (l - 1);
    let mut value: Vec<Option<Vec<f64>>> = (0..k * k).map(|_| None).collect();
    let mut parent: Vec<Option<Vec<(u16, u16)>>> = (0..k * k).map(|_| None).collect();

    for j in 0..k {
        for l in 1..=j + 1 {
            let first = j + 1 - l;
            let Some(floor) = table.module_floor(first, j) else {
                continue;
            };
            if floor > p {
                continue;
            }
            let replicable = table.module_replicable(first, j);
            let mut v = vec![f64::INFINITY; stage_len];
            let mut par = vec![(0u16, 0u16); stage_len];
            let ne_values: Vec<usize> = if j + 1 == k {
                vec![0]
            } else {
                (1..=p).collect()
            };
            for inst in floor..=p {
                let exec = table.module_exec(first, j, inst);
                // Previous-module options: (prev_len, prev_inst, cin).
                let mut prev_opts: Vec<(usize, usize, f64)> = Vec::new();
                if first > 0 {
                    for prev_len in 1..=first {
                        let prev_first = first - prev_len;
                        let Some(pf) = table.module_floor(prev_first, first - 1) else {
                            continue;
                        };
                        for prev_inst in pf..=p {
                            prev_opts.push((
                                prev_len,
                                prev_inst,
                                table.ecom(first - 1, prev_inst, inst),
                            ));
                        }
                    }
                }
                for &ne in &ne_values {
                    let out = if ne == 0 {
                        0.0
                    } else {
                        table.ecom(j, inst, ne)
                    };
                    if first == 0 {
                        let f = exec + out;
                        let Some(r) = required_r(f, replicable, p / inst) else {
                            continue;
                        };
                        let spend = inst * r;
                        for pt in spend..=p {
                            let slot = &mut v[idx(inst, ne, pt)];
                            if exec < *slot {
                                *slot = exec;
                            }
                        }
                    } else {
                        for pt in inst..=p {
                            let mut best = f64::INFINITY;
                            let mut best_par = (0u16, 0u16);
                            for &(prev_len, prev_inst, cin) in &prev_opts {
                                let f = cin + exec + out;
                                let Some(r) = required_r(f, replicable, p / inst) else {
                                    continue;
                                };
                                let spend = inst * r;
                                if spend > pt {
                                    continue;
                                }
                                let budget = pt - spend;
                                let Some(sub_v) = value[stage_key(first - 1, prev_len)].as_ref()
                                else {
                                    continue;
                                };
                                if prev_inst > budget {
                                    continue;
                                }
                                let sub = sub_v[idx(prev_inst, inst, budget)];
                                if !sub.is_finite() {
                                    continue;
                                }
                                let cand = sub + cin + exec;
                                if cand < best {
                                    best = cand;
                                    best_par = (prev_len as u16, prev_inst as u16);
                                }
                            }
                            let slot = &mut v[idx(inst, ne, pt)];
                            if best < *slot {
                                *slot = best;
                                par[idx(inst, ne, pt)] = best_par;
                            }
                        }
                    }
                }
            }
            value[stage_key(j, l)] = Some(v);
            parent[stage_key(j, l)] = Some(par);
        }
    }

    // Answer.
    let mut best = f64::INFINITY;
    let mut best_l = 0;
    let mut best_inst = 0;
    for l in 1..=k {
        let Some(v) = value[stage_key(k - 1, l)].as_ref() else {
            continue;
        };
        for inst in 1..=p {
            let cand = v[idx(inst, 0, p)];
            if cand < best {
                best = cand;
                best_l = l;
                best_inst = inst;
            }
        }
    }
    if !best.is_finite() {
        return Err(SolveError::Infeasible);
    }

    // Reconstruct, recomputing each module's r* from its neighbours.
    let mut modules_rev: Vec<ModuleAssignment> = Vec::new();
    let (mut j, mut l, mut inst, mut ne, mut pt) = (k - 1, best_l, best_inst, 0usize, p);
    loop {
        let first = j + 1 - l;
        let replicable = table.module_replicable(first, j);
        let exec = table.module_exec(first, j, inst);
        let out = if ne == 0 {
            0.0
        } else {
            table.ecom(j, inst, ne)
        };
        let (prev_len, prev_inst) = if first == 0 {
            (0usize, 0usize)
        } else {
            let par = parent[stage_key(j, l)].as_ref().expect("visited stage")[idx(inst, ne, pt)];
            (par.0 as usize, par.1 as usize)
        };
        let cin = if first == 0 {
            0.0
        } else {
            table.ecom(first - 1, prev_inst, inst)
        };
        let r = required_r(cin + exec + out, replicable, p / inst)
            .expect("reconstruction follows feasible states");
        modules_rev.push(ModuleAssignment::new(first, j, r, inst));
        if first == 0 {
            break;
        }
        pt -= inst * r;
        ne = inst;
        j = first - 1;
        l = prev_len;
        inst = prev_inst;
    }
    modules_rev.reverse();
    let mapping = Mapping::new(modules_rev);
    let lat = latency(&problem.chain, &mapping);
    let thr = pipemap_chain::throughput(&problem.chain, &mapping);
    debug_assert!(
        (lat - best).abs() <= 1e-9 * best.max(1.0),
        "latency DP value {best} disagrees with evaluator {lat}"
    );
    Ok(LatencySolution {
        mapping,
        latency: lat,
        throughput: thr,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp_cluster::dp_mapping;
    use pipemap_chain::{validate, ChainBuilder, Edge, Task};
    use pipemap_model::{PolyEcom, PolyUnary};

    /// Fusing on all 8 procs gives stage time 1.0 + 0.2 + 1.0 = 2.2
    /// (throughput 0.455, latency 2.2); splitting 4/4 gives stage times
    /// 1.8 each (throughput 0.556) at latency 3.3 — so latency prefers
    /// fusion and a demanding throughput floor forces the split.
    fn chain() -> TaskChain {
        ChainBuilder::new()
            .task(Task::new("a", PolyUnary::new(0.5, 4.0, 0.0)))
            .edge(Edge::new(
                PolyUnary::new(0.2, 0.0, 0.0),
                PolyEcom::new(0.3, 0.0, 0.0, 0.0, 0.0),
            ))
            .task(Task::new("b", PolyUnary::new(0.5, 4.0, 0.0)))
            .build()
    }

    #[test]
    fn latency_counts_transfers_once() {
        let c = chain();
        let split = Mapping::new(vec![
            ModuleAssignment::new(0, 0, 1, 4),
            ModuleAssignment::new(1, 1, 1, 4),
        ]);
        // a(4) = 1.5, transfer = 0.3, b(4) = 1.5 → latency 3.3 (not 3.6,
        // which double-counting the transfer would give).
        assert!((latency(&c, &split) - 3.3).abs() < 1e-12);
        let fused = Mapping::new(vec![ModuleAssignment::new(0, 1, 1, 8)]);
        // a(8) + icom(0.2) + b(8) = 1.0 + 0.2 + 1.0.
        assert!((latency(&c, &fused) - 2.2).abs() < 1e-12);
    }

    #[test]
    fn replication_increases_latency_but_not_unloaded_transfer_count() {
        let c = chain();
        let single = Mapping::new(vec![ModuleAssignment::new(0, 1, 1, 8)]);
        let replicated = Mapping::new(vec![ModuleAssignment::new(0, 1, 4, 2)]);
        assert!(latency(&c, &replicated) > latency(&c, &single));
    }

    #[test]
    fn unconstrained_latency_prefers_fusion_here() {
        // With the expensive transfer, fusing minimises latency.
        let p = Problem::new(chain(), 8, 1e12).without_replication();
        let sol = best_latency_mapping(&p, 0.0).unwrap();
        assert_eq!(sol.mapping.num_modules(), 1);
        assert!((sol.latency - 2.2).abs() < 1e-9);
        validate(&p, &sol.mapping).unwrap();
    }

    #[test]
    fn throughput_floor_forces_structure() {
        // Fused on 8 procs: stage time 2.2 → throughput 0.4545. Demand
        // more: the mapper must split (pipelining halves the stage time)
        // even though that raises latency.
        let p = Problem::new(chain(), 8, 1e12).without_replication();
        let sol = best_latency_mapping(&p, 0.5).unwrap();
        assert!(sol.throughput >= 0.5 - 1e-9, "thr {}", sol.throughput);
        assert!(sol.latency > 2.2);
        validate(&p, &sol.mapping).unwrap();
    }

    #[test]
    fn infeasible_floor_reported() {
        let p = Problem::new(chain(), 8, 1e12).without_replication();
        // No mapping of this chain reaches 100 data sets/s on 8 procs.
        assert_eq!(
            best_latency_mapping(&p, 100.0).unwrap_err(),
            SolveError::Infeasible
        );
    }

    #[test]
    fn floor_at_throughput_optimum_is_achievable() {
        // Ask for exactly the throughput optimum: the latency mapper must
        // find something achieving it.
        let p = Problem::new(chain(), 8, 1e12).without_replication();
        let thr_opt = dp_mapping(&p).unwrap();
        let sol = best_latency_mapping(&p, thr_opt.throughput * (1.0 - 1e-9)).unwrap();
        assert!(sol.throughput >= thr_opt.throughput * (1.0 - 1e-6));
        // And its latency is no worse than the throughput-optimal
        // mapping's latency.
        assert!(sol.latency <= latency(&p.chain, &thr_opt.mapping) + 1e-9);
    }

    #[test]
    fn latency_with_replication_policy() {
        // Replication helps throughput but hurts latency: with a floor
        // demanding replication, the mapper should use it; without, not.
        let c = ChainBuilder::new()
            .task(Task::new("t", PolyUnary::new(1.0, 0.0, 0.0)))
            .build();
        let p = Problem::new(c, 4, 1e12);
        let relaxed = best_latency_mapping(&p, 0.9).unwrap();
        assert_eq!(relaxed.mapping.modules[0].replicas, 1);
        assert!((relaxed.latency - 1.0).abs() < 1e-9);
        let demanding = best_latency_mapping(&p, 3.5).unwrap();
        assert_eq!(demanding.mapping.modules[0].replicas, 4);
        assert!(demanding.throughput >= 3.5);
    }
}
