//! Optimal mapping with *free* replication degrees.
//!
//! The paper's §3.2 rule — replicate maximally subject to the memory
//! floor — lets the throughput DP treat replication as a function of the
//! processors offered to a module. Two failure modes of that rule were
//! surfaced by this reproduction's tests (see EXPERIMENTS.md): remainder
//! loss when the floor does not divide the offer, and neighbour coupling
//! (an instance's size appears in its *neighbours'* transfer costs, so
//! shattering a module into floor-sized instances can slow the modules
//! next to it).
//!
//! This solver removes the rule and optimises replication degrees
//! exactly, with a classic minimax decomposition:
//!
//! 1. **Feasibility subproblem.** For a candidate throughput `T`, every
//!    module must satisfy `f/r ≤ 1/T`, i.e. `r ≥ ⌈f·T⌉`, where the stage
//!    response `f = cin + exec + cout` depends only on *instance sizes*.
//!    So for fixed clustering and instance sizes the cheapest replication
//!    is closed-form, and the minimum total processor count that achieves
//!    `T` is a dynamic program over (module extent, instance size) — the
//!    same boundary decomposition as [`crate::dp_cluster`], with value =
//!    processors instead of throughput.
//! 2. **Binary search** on `T` over the achievable range. Feasible
//!    throughputs form a down-closed set (any mapping reaching `T` also
//!    reaches every `T' < T`), so bisection converges; we refine to a
//!    relative width of 2⁻⁴⁰ and return the mapping of the last feasible
//!    probe, whose *actual* evaluated throughput is reported.
//!
//! Cost: `O(log(1/ε) · k³ P³)` — for the paper's scale comparable to the
//! policy DP, and the result is never worse (also property-tested).

use pipemap_chain::{CostTable, Mapping, ModuleAssignment, Problem};

use crate::solution::{Solution, SolveError};

/// Minimum processors needed to reach throughput `t`, plus the mapping
/// achieving it; `None` if `t` is unreachable within the budget.
struct FeasibleProbe {
    mapping: Mapping,
}

/// One DP run of the feasibility subproblem. `None` if no mapping meets
/// the target within the processor budget.
fn min_procs_for_throughput(
    problem: &Problem,
    table: &CostTable,
    target: f64,
) -> Option<FeasibleProbe> {
    let k = problem.num_tasks();
    let p = problem.total_procs;

    // Smallest replication degree putting stage response `f` under 1/t.
    let required_r = |f: f64, replicable: bool, inst: usize| -> Option<usize> {
        if target <= 0.0 {
            return Some(1);
        }
        if !f.is_finite() {
            return None;
        }
        let need = (f * target).ceil().max(1.0);
        let max_r = p / inst;
        if need > max_r as f64 {
            return None;
        }
        let r = need as usize;
        if r > 1 && !replicable {
            return None;
        }
        Some(r)
    };

    // value[(j, L)][(inst-1) * (p+1) + ne] = min processors for the
    // prefix 0..=j whose last module [j-L+1..=j] has instance size
    // `inst`, given the next module's instance size `ne` (0 = none).
    let idx = |inst: usize, ne: usize| (inst - 1) * (p + 1) + ne;
    let stage_len = p * (p + 1);
    let stage_key = |j: usize, l: usize| j * k + (l - 1);
    let mut value: Vec<Option<Vec<usize>>> = (0..k * k).map(|_| None).collect();
    let mut parent: Vec<Option<Vec<(u16, u16)>>> = (0..k * k).map(|_| None).collect();
    const UNREACHABLE: usize = usize::MAX;

    // Shared across all stages: the raw `ne` enumeration and the chain-end
    // sentinel (no per-stage allocation).
    let all_ne: Vec<usize> = (1..=p).collect();
    let sentinel = [0usize];
    let dense = table.dense();

    for j in 0..k {
        for l in 1..=j + 1 {
            let first = j + 1 - l;
            let Some(floor) = table.module_floor(first, j) else {
                continue;
            };
            if floor > p {
                continue;
            }
            let replicable = table.module_replicable(first, j);
            let mut v = vec![UNREACHABLE; stage_len];
            let mut par = vec![(0u16, 0u16); stage_len];
            let ne_values: &[usize] = if j + 1 == k { &sentinel } else { &all_ne };
            // The predecessor (length, instance) pairs are the same for
            // every `inst` of this module; only the transfer cost differs,
            // and that is a dense-slab read.
            let mut prev_opts: Vec<(usize, usize)> = Vec::new();
            if first > 0 {
                for prev_len in 1..=first {
                    let prev_first = first - prev_len;
                    let Some(pf) = table.module_floor(prev_first, first - 1) else {
                        continue;
                    };
                    for prev_inst in pf..=p {
                        prev_opts.push((prev_len, prev_inst));
                    }
                }
            }
            let in_slab = if first > 0 {
                Some(dense.ecom_slab(first - 1))
            } else {
                None
            };
            for inst in floor..=p {
                let exec = table.module_exec(first, j, inst);
                for &ne in ne_values {
                    let out = if ne == 0 {
                        0.0
                    } else {
                        table.ecom(j, inst, ne)
                    };
                    if first == 0 {
                        if let Some(r) = required_r(exec + out, replicable, inst) {
                            let spend = inst * r;
                            if spend <= p {
                                let slot = &mut v[idx(inst, ne)];
                                if spend < *slot {
                                    *slot = spend;
                                }
                            }
                        }
                    } else {
                        let slab = in_slab.expect("in_slab exists when first > 0");
                        let mut best = UNREACHABLE;
                        let mut best_par = (0u16, 0u16);
                        for &(prev_len, prev_inst) in &prev_opts {
                            let cin = slab[(prev_inst - 1) * p + (inst - 1)];
                            let Some(r) = required_r(cin + exec + out, replicable, inst) else {
                                continue;
                            };
                            let spend = inst * r;
                            let Some(sub_v) = value[stage_key(first - 1, prev_len)].as_ref() else {
                                continue;
                            };
                            let sub = sub_v[idx(prev_inst, inst)];
                            if sub == UNREACHABLE {
                                continue;
                            }
                            let total = sub.saturating_add(spend);
                            if total <= p && total < best {
                                best = total;
                                best_par = (prev_len as u16, prev_inst as u16);
                            }
                        }
                        let slot = &mut v[idx(inst, ne)];
                        if best < *slot {
                            *slot = best;
                            par[idx(inst, ne)] = best_par;
                        }
                    }
                }
            }
            value[stage_key(j, l)] = Some(v);
            parent[stage_key(j, l)] = Some(par);
        }
    }

    // Best terminal state.
    let mut best = UNREACHABLE;
    let mut best_l = 0;
    let mut best_inst = 0;
    for l in 1..=k {
        let Some(v) = value[stage_key(k - 1, l)].as_ref() else {
            continue;
        };
        for inst in 1..=p {
            let cand = v[idx(inst, 0)];
            if cand < best {
                best = cand;
                best_l = l;
                best_inst = inst;
            }
        }
    }
    if best == UNREACHABLE {
        return None;
    }

    // Reconstruct, recomputing r from the neighbours at each hop.
    let mut modules_rev: Vec<ModuleAssignment> = Vec::new();
    let (mut j, mut l, mut inst, mut ne) = (k - 1, best_l, best_inst, 0usize);
    loop {
        let first = j + 1 - l;
        let replicable = table.module_replicable(first, j);
        let exec = table.module_exec(first, j, inst);
        let out = if ne == 0 {
            0.0
        } else {
            table.ecom(j, inst, ne)
        };
        let (prev_len, prev_inst) = if first == 0 {
            (0usize, 0usize)
        } else {
            let par = parent[stage_key(j, l)].as_ref().expect("visited stage")[idx(inst, ne)];
            (par.0 as usize, par.1 as usize)
        };
        let cin = if first == 0 {
            0.0
        } else {
            table.ecom(first - 1, prev_inst, inst)
        };
        let r = required_r(cin + exec + out, replicable, inst)
            .expect("reconstruction follows feasible states");
        modules_rev.push(ModuleAssignment::new(first, j, r, inst));
        if first == 0 {
            break;
        }
        ne = inst;
        j = first - 1;
        l = prev_len;
        inst = prev_inst;
    }
    modules_rev.reverse();
    Some(FeasibleProbe {
        mapping: Mapping::new(modules_rev),
    })
}

/// Optimal mapping with replication degrees chosen freely (each module
/// may use any `r ≥ 1` with `r × instance ≤ P`, subject to
/// replicability), rather than the §3.2 maximal rule. Never worse than
/// [`crate::dp_cluster::dp_mapping`]; strictly better when the rule's
/// remainder or neighbour-coupling losses bite.
pub fn dp_mapping_free(problem: &Problem) -> Result<Solution, SolveError> {
    let table = CostTable::build(problem);

    // Anchor: T = 0 must be feasible iff the problem is feasible at all.
    let Some(base) = min_procs_for_throughput(problem, &table, 0.0) else {
        return Err(SolveError::Infeasible);
    };
    let base_thr = pipemap_chain::throughput(&problem.chain, &base.mapping);
    if base_thr.is_infinite() {
        return Ok(Solution::from_mapping(problem, base.mapping));
    }

    // Find an infeasible upper bound by doubling.
    let mut lo = base_thr.max(1e-12);
    let mut best = base;
    let mut hi = lo * 2.0;
    let mut doublings = 0;
    while let Some(probe) = min_procs_for_throughput(problem, &table, hi) {
        best = probe;
        lo = hi;
        hi *= 2.0;
        doublings += 1;
        if doublings > 60 {
            // Effectively unbounded throughput (zero-cost stages).
            return Ok(Solution::from_mapping(problem, best.mapping));
        }
    }

    // Bisect to relative precision.
    for _ in 0..40 {
        let mid = 0.5 * (lo + hi);
        match min_procs_for_throughput(problem, &table, mid) {
            Some(probe) => {
                best = probe;
                lo = mid;
            }
            None => hi = mid,
        }
    }
    Ok(Solution::from_mapping(problem, best.mapping))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp_cluster::dp_mapping;
    use pipemap_chain::{validate, ChainBuilder, Edge, Task};
    use pipemap_model::{MemoryReq, PolyEcom, PolyUnary};

    #[test]
    fn recovers_the_remainder_loss_case() {
        // Floor 3, 10 processors, perfectly parallel task: the policy DP
        // is stuck at 3×3 (1.13/s); free replication reaches 1×10
        // (1.26/s). (EXPERIMENTS.md finding #4.)
        let chain = ChainBuilder::new()
            .task(Task::new("t", PolyUnary::perfectly_parallel(7.9548)).with_min_procs(3))
            .build();
        let problem = Problem::new(chain, 10, 1e12);
        let policy = dp_mapping(&problem).unwrap();
        let free = dp_mapping_free(&problem).unwrap();
        assert!(
            free.throughput > policy.throughput * 1.05,
            "free {} should beat policy {}",
            free.throughput,
            policy.throughput
        );
        // All 10 processors are put to work (for a perfectly parallel
        // task, 1×10 and 2×5 are equivalent optima).
        assert_eq!(free.mapping.total_procs(), 10);
        assert!((free.throughput - 10.0 / 7.9548).abs() < 1e-3);
    }

    #[test]
    fn never_worse_than_policy_dp_on_random_instances() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for trial in 0..20 {
            let k = rng.gen_range(1..=3);
            let p = rng.gen_range(3..=10);
            let mut b = ChainBuilder::new().task(random_task(&mut rng, 0));
            for i in 1..k {
                b = b
                    .edge(Edge::new(
                        PolyUnary::new(rng.gen_range(0.0..0.3), 0.0, 0.0),
                        PolyEcom::new(
                            rng.gen_range(0.0..0.6),
                            rng.gen_range(0.0..1.0),
                            rng.gen_range(0.0..1.0),
                            0.0,
                            0.0,
                        ),
                    ))
                    .task(random_task(&mut rng, i));
            }
            let problem = Problem::new(b.build(), p, 10.0);
            match (dp_mapping(&problem), dp_mapping_free(&problem)) {
                (Ok(policy), Ok(free)) => {
                    validate(&problem, &free.mapping).unwrap();
                    assert!(
                        free.throughput >= policy.throughput * (1.0 - 1e-9),
                        "trial {trial}: free {} < policy {}",
                        free.throughput,
                        policy.throughput
                    );
                }
                (Err(SolveError::Infeasible), Err(SolveError::Infeasible)) => {}
                (a, b) => panic!("trial {trial}: disagreement {a:?} vs {b:?}"),
            }
        }

        fn random_task(rng: &mut StdRng, i: usize) -> Task {
            let mut t = Task::new(
                format!("t{i}"),
                PolyUnary::new(rng.gen_range(0.0..0.8), rng.gen_range(0.2..5.0), 0.0),
            )
            .with_memory(MemoryReq::new(0.0, rng.gen_range(0.0..30.0)));
            if rng.gen_bool(0.25) {
                t = t.not_replicable();
            }
            t
        }
    }

    #[test]
    fn matches_brute_force_with_free_replication() {
        // Exhaustive oracle over clusterings × instance sizes ×
        // replication degrees for a tiny instance.
        let chain = ChainBuilder::new()
            .task(Task::new("a", PolyUnary::new(0.3, 2.0, 0.0)))
            .edge(Edge::new(
                PolyUnary::new(0.1, 0.0, 0.0),
                PolyEcom::new(0.2, 0.5, 0.5, 0.0, 0.0),
            ))
            .task(Task::new("b", PolyUnary::new(0.2, 3.0, 0.0)))
            .build();
        let p = 7;
        let problem = Problem::new(chain, p, 1e12);
        let free = dp_mapping_free(&problem).unwrap();

        let mut best = 0.0f64;
        // Split clustering.
        for i1 in 1..=p {
            for r1 in 1..=(p / i1) {
                for i2 in 1..=p {
                    for r2 in 1..=(p / i2) {
                        if i1 * r1 + i2 * r2 > p {
                            continue;
                        }
                        let m = Mapping::new(vec![
                            ModuleAssignment::new(0, 0, r1, i1),
                            ModuleAssignment::new(1, 1, r2, i2),
                        ]);
                        best = best.max(pipemap_chain::throughput(&problem.chain, &m));
                    }
                }
            }
        }
        // Fused clustering.
        for inst in 1..=p {
            for r in 1..=(p / inst) {
                let m = Mapping::new(vec![ModuleAssignment::new(0, 1, r, inst)]);
                best = best.max(pipemap_chain::throughput(&problem.chain, &m));
            }
        }
        assert!(
            (free.throughput - best).abs() <= 1e-6 * best,
            "free {} vs oracle {}",
            free.throughput,
            best
        );
    }

    #[test]
    fn respects_non_replicable_tasks() {
        let chain = ChainBuilder::new()
            .task(Task::new("flat", PolyUnary::new(1.0, 0.0, 0.0)).not_replicable())
            .build();
        let problem = Problem::new(chain, 8, 1e12);
        let free = dp_mapping_free(&problem).unwrap();
        assert_eq!(free.mapping.modules[0].replicas, 1);
        assert!((free.throughput - 1.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_problem_detected() {
        let chain = ChainBuilder::new()
            .task(Task::new("big", PolyUnary::zero()).with_memory(MemoryReq::new(100.0, 0.0)))
            .build();
        let problem = Problem::new(chain, 8, 10.0);
        assert_eq!(
            dp_mapping_free(&problem).unwrap_err(),
            SolveError::Infeasible
        );
    }

    #[test]
    fn zero_cost_chain_is_unbounded() {
        let chain = ChainBuilder::new()
            .task(Task::new("free", PolyUnary::zero()))
            .build();
        let problem = Problem::new(chain, 4, 1e12);
        let free = dp_mapping_free(&problem).unwrap();
        assert!(free.throughput.is_infinite());
    }
}
