//! # pipemap-core
//!
//! The mapping algorithms of Subhlok & Vondran, *Optimal Mapping of
//! Sequences of Data Parallel Tasks* (PPoPP 1995): given a chain of data
//! parallel tasks with execution/communication cost functions and `P`
//! processors, find the clustering, replication, and processor allocation
//! that maximises pipeline throughput.
//!
//! Four solver families are provided:
//!
//! * [`dp`] — the optimal dynamic-programming *processor assignment* for a
//!   fixed (singleton) clustering, §3.1–§3.2, `O(P⁴k)`;
//! * [`dp_cluster`] — the optimal *full mapping* including clustering,
//!   §3.3, `O(P⁴k²)` per the paper (see the module docs for the exact
//!   state space used here);
//! * [`greedy`] — the fast heuristic of §4 (`O(Pk)`), its Theorem-1
//!   "modified" variant, and the bounded-backtracking refinement justified
//!   by Theorem 2, plus the §4.2 merge/split clustering heuristic in
//!   [`cluster`];
//! * [`brute`] — exhaustive oracles for small instances, used to validate
//!   the optimal algorithms and to quantify the greedy gap.
//!
//! All solvers work on a [`pipemap_chain::Problem`] and return a
//! [`Solution`] whose throughput is recomputed from first principles by
//! `pipemap-chain`'s evaluator, so a solver bug cannot report a throughput
//! its own mapping does not achieve.
//!
//! Both optimal DP solvers carry a performance layer — dense shared cost
//! tables, bound-based cell pruning seeded by the greedy incumbent, and a
//! scoped-thread row pool ([`pool`]) — controlled by [`SolveOptions`].
//! Every option combination returns bit-identical results (enforced by
//! `tests/equivalence.rs`); [`SolveOptions::reference`] is the faithful
//! serial enumeration used as the speedup baseline.

pub mod brute;
pub mod cluster;
pub mod dp;
pub mod dp_cluster;
pub mod dp_free;
pub mod greedy;
pub mod latency;
pub mod options;
pub mod pool;
pub mod procs;
pub mod provenance;
pub mod resolve;
pub mod solution;

pub use brute::{brute_force_assignment, brute_force_mapping};
pub use cluster::{cluster_heuristic, contract_chain, ContractedProblem};
pub use dp::{
    dp_assignment, dp_assignment_provenance, dp_assignment_provenance_on,
    dp_assignment_pruned_stats, dp_assignment_pruned_stats_on, dp_assignment_with, DpStage,
    DpTrace,
};
pub use dp_cluster::{
    dp_mapping, dp_mapping_ctx, dp_mapping_provenance, dp_mapping_provenance_ctx,
    dp_mapping_pruned_stats, dp_mapping_pruned_stats_ctx, dp_mapping_with, SolveCtx,
};
pub use dp_free::dp_mapping_free;
pub use greedy::{
    greedy_assignment, greedy_assignment_with_table, refine_assignment, GreedyOptions,
    GreedyVariant,
};
pub use latency::{best_latency_mapping, latency, LatencySolution};
pub use options::SolveOptions;
pub use procs::{min_procs_mapping, ProcsSolution};
pub use provenance::{
    stability_margins, DecisionCell, MarginReport, Provenance, RunnerUp, StageCells, StageMargin,
};
pub use resolve::{reprice_problem, CostDeltas, ResolveArtifact, ResolveMechanism, ResolveOutcome};
pub use solution::{Solution, SolveError};
