//! Oracle validation of the decision-provenance layer.
//!
//! Two contracts are enforced here:
//!
//! 1. **Margins are exact.** [`stability_margins`] claims that scaling one
//!    stage's execution cost (or one edge's communication cost) by any
//!    factor strictly inside `(exec_down, exec_up)` leaves the analysed
//!    mapping optimal, and that stepping just outside flips the optimum.
//!    The brute-force solvers are the judge: at P ≤ 16 we rebuild the
//!    problem with the perturbation applied, enumerate every mapping, and
//!    check that the chosen mapping is exactly optimal 1% inside the
//!    margin and strictly beaten 1% outside it.
//!
//! 2. **Recording is free of side effects.** Solving with the provenance
//!    recorder on must return bit-identical throughput and the identical
//!    mapping to the plain solve at the same options — recording observes
//!    the DP, it never steers it (property test over random chains).

use pipemap_chain::{ChainBuilder, Edge, Mapping, Problem, Task};
use pipemap_core::{
    brute_force_assignment, contract_chain, dp_assignment, dp_assignment_provenance,
    dp_assignment_with, dp_mapping_provenance, dp_mapping_with, stability_margins, Solution,
    SolveOptions,
};
use pipemap_model::{MemoryReq, PolyEcom, PolyUnary};
use proptest::prelude::*;

/// One test chain: per-task `(c1, c2, c3, mem, replicable)` exec models and
/// per-edge `(icom scale, ecom (c1..c5))` communication models.
struct Spec {
    tasks: Vec<(f64, f64, f64, f64, bool)>,
    edges: Vec<(f64, [f64; 5])>,
    procs: usize,
    mem_per_proc: f64,
    replication: bool,
}

/// What to perturb when rebuilding the chain, in *contracted-stage* terms:
/// `Exec` scales every member task of `tasks` (plus the internal
/// communication between them), `Ecom` scales one boundary edge.
#[derive(Clone, Copy)]
enum Perturb {
    None,
    /// Scale the exec of original tasks `first..=last` by `gamma`.
    Exec {
        first: usize,
        last: usize,
        gamma: f64,
    },
    /// Scale original edge `e`'s communication (icom and ecom) by `gamma`.
    Ecom {
        edge: usize,
        gamma: f64,
    },
}

fn build(spec: &Spec, perturb: Perturb) -> Problem {
    let mut b = ChainBuilder::new();
    for (i, &(c1, c2, c3, mem, rep)) in spec.tasks.iter().enumerate() {
        let mut exec = PolyUnary::new(c1, c2, c3);
        if let Perturb::Exec { first, last, gamma } = perturb {
            if i >= first && i <= last {
                exec = exec.scale(gamma);
            }
        }
        let mut t = Task::new(format!("t{i}"), exec).with_memory(MemoryReq::new(0.0, mem));
        if !rep {
            t = t.not_replicable();
        }
        b = b.task(t);
        if i < spec.edges.len() {
            let (ic, ec) = spec.edges[i];
            let mut icom = PolyUnary::new(ic, 0.0, 0.0);
            let mut ecom = PolyEcom::new(ec[0], ec[1], ec[2], ec[3], ec[4]);
            let scale = match perturb {
                // A stage-exec perturbation covers the module's internal
                // redistribution too: icom of edges strictly inside the
                // member range is part of the contracted module's f_exec.
                Perturb::Exec { first, last, gamma } if i >= first && i < last => {
                    Some((gamma, 1.0))
                }
                Perturb::Ecom { edge, gamma } if i == edge => Some((gamma, gamma)),
                _ => None,
            };
            if let Some((gi, ge)) = scale {
                icom = icom.scale(gi);
                ecom = ecom.scale(ge);
            }
            b = b.edge(Edge::new(icom, ecom));
        }
    }
    let problem = Problem::new(b.build(), spec.procs, spec.mem_per_proc);
    if spec.replication {
        problem
    } else {
        problem.without_replication()
    }
}

/// Throughput the fixed `mapping` achieves on the perturbed problem vs the
/// best any mapping (with the same clustering) achieves. Clustering is the
/// margin report's frame of reference, so the oracle enumerates processor
/// assignments of the *contracted* chain.
fn oracle_vs_mapped(spec: &Spec, mapping: &Mapping, perturb: Perturb) -> (f64, f64) {
    let scaled = build(spec, perturb);
    let mapped = Solution::from_mapping(&scaled, mapping.clone()).throughput;
    let clustering: Vec<(usize, usize)> =
        mapping.modules.iter().map(|m| (m.first, m.last)).collect();
    let contracted = contract_chain(&scaled, &clustering);
    let (best, _) = brute_force_assignment(&contracted.problem).expect("oracle solves");
    (best.throughput, mapped)
}

/// Check every finite margin of `mapping` on `spec` against the oracle:
/// 1% inside the margin the mapping must still be exactly optimal, 1%
/// outside a different assignment must be strictly better. Returns the
/// number of (stage, direction) flips actually exercised.
fn check_margins_against_oracle(spec: &Spec, mapping: &Mapping) -> usize {
    let problem = build(spec, Perturb::None);
    let report = stability_margins(&problem, mapping).expect("margins computed");
    let mut flips = 0;
    for stage in &report.stages {
        let exec = Perturb::Exec {
            first: stage.first,
            last: stage.last,
            gamma: 1.0,
        };
        let with_gamma = |p: Perturb, g: f64| match p {
            Perturb::Exec { first, last, .. } => Perturb::Exec {
                first,
                last,
                gamma: g,
            },
            Perturb::Ecom { edge, .. } => Perturb::Ecom { edge, gamma: g },
            Perturb::None => unreachable!(),
        };
        let mut probes: Vec<(Perturb, f64, f64)> = vec![(exec, stage.exec_up, stage.exec_down)];
        if stage.index > 0 {
            // Incoming boundary edge of this stage in original-chain
            // numbering: the edge after the previous module's last task.
            let edge = stage.first - 1;
            let ecom = Perturb::Ecom { edge, gamma: 1.0 };
            probes.push((ecom, stage.ecom_in_up, stage.ecom_in_down));
        }
        for (probe, up, down) in probes {
            if up.is_finite() && up < 100.0 {
                // 1% inside: still exactly optimal. Clamp towards 1 so a
                // margin barely above 1 stays inside the open interval.
                let inside = (up * 0.99).max(1.0 + 0.5 * (up - 1.0));
                let (best, mapped) = oracle_vs_mapped(spec, mapping, with_gamma(probe, inside));
                assert!(
                    (best - mapped).abs() <= 1e-9 * best.abs().max(1.0),
                    "γ = {inside} inside up-margin {up} of stage {}: oracle {best} vs mapped {mapped}",
                    stage.index,
                );
                // 1% outside: strictly beaten.
                let outside = up * 1.01;
                let (best, mapped) = oracle_vs_mapped(spec, mapping, with_gamma(probe, outside));
                assert!(
                    best > mapped * (1.0 + 1e-9),
                    "γ = {outside} outside up-margin {up} of stage {}: oracle {best} vs mapped {mapped}",
                    stage.index,
                );
                flips += 1;
            }
            if down > 0.01 {
                let inside = (down * 1.01).min(1.0 - 0.5 * (1.0 - down));
                let (best, mapped) = oracle_vs_mapped(spec, mapping, with_gamma(probe, inside));
                assert!(
                    (best - mapped).abs() <= 1e-9 * best.abs().max(1.0),
                    "γ = {inside} inside down-margin {down} of stage {}: oracle {best} vs mapped {mapped}",
                    stage.index,
                );
                let outside = down * 0.99;
                let (best, mapped) = oracle_vs_mapped(spec, mapping, with_gamma(probe, outside));
                assert!(
                    best > mapped * (1.0 + 1e-9),
                    "γ = {outside} outside down-margin {down} of stage {}: oracle {best} vs mapped {mapped}",
                    stage.index,
                );
                flips += 1;
            }
        }
    }
    flips
}

#[test]
fn assignment_margins_match_brute_oracle() {
    let specs = [
        // Three unequal tasks, real transfer costs, no replication.
        Spec {
            tasks: vec![
                (0.1, 6.0, 0.0, 0.0, true),
                (0.0, 9.0, 0.05, 0.0, true),
                (0.2, 4.0, 0.0, 0.0, true),
            ],
            edges: vec![
                (0.01, [0.05, 0.4, 0.4, 0.01, 0.0]),
                (0.0, [0.1, 0.6, 0.2, 0.0, 0.02]),
            ],
            procs: 12,
            mem_per_proc: 1e9,
            replication: false,
        },
        // Replication with memory floors: offers change with the budget.
        Spec {
            tasks: vec![
                (0.05, 8.0, 0.0, 2.5, true),
                (0.3, 3.0, 0.02, 1.2, false),
                (0.0, 7.0, 0.0, 2.0, true),
            ],
            edges: vec![
                (0.0, [0.02, 0.5, 0.3, 0.0, 0.01]),
                (0.02, [0.0, 0.3, 0.5, 0.01, 0.0]),
            ],
            procs: 16,
            mem_per_proc: 1.0,
            replication: true,
        },
        // Four stages on a tight budget: down-margins engage.
        Spec {
            tasks: vec![
                (0.0, 5.0, 0.0, 0.0, true),
                (0.1, 2.0, 0.0, 0.0, true),
                (0.0, 6.0, 0.03, 0.0, true),
                (0.05, 3.0, 0.0, 0.0, true),
            ],
            edges: vec![
                (0.0, [0.05, 0.3, 0.3, 0.0, 0.0]),
                (0.01, [0.0, 0.5, 0.2, 0.02, 0.0]),
                (0.0, [0.1, 0.2, 0.4, 0.0, 0.01]),
            ],
            procs: 10,
            mem_per_proc: 1e9,
            replication: false,
        },
    ];
    let mut flips = 0;
    for spec in &specs {
        let problem = build(spec, Perturb::None);
        let (sol, _) = dp_assignment(&problem).expect("solvable");
        flips += check_margins_against_oracle(spec, &sol.mapping);
    }
    assert!(
        flips >= 6,
        "only {flips} margin flips exercised — specs too tame"
    );
}

#[test]
fn cluster_margins_match_brute_oracle_with_clustering_fixed() {
    // Light middle tasks joined by an expensive transfer, with per-proc
    // overhead making wide allocations costly: the cluster DP fuses the
    // middle pair but keeps the heavy ends separate, so the margin report
    // runs on a genuinely contracted problem ({0}, {1,2}, {3}).
    let spec = Spec {
        tasks: vec![
            (0.0, 7.0, 0.06, 0.0, true),
            (0.05, 1.0, 0.02, 0.0, true),
            (0.0, 1.2, 0.02, 0.0, true),
            (0.1, 6.0, 0.06, 0.0, true),
        ],
        edges: vec![
            (0.0, [0.02, 0.1, 0.1, 0.0, 0.0]),
            (0.01, [0.6, 1.0, 1.0, 0.05, 0.05]),
            (0.0, [0.02, 0.1, 0.1, 0.0, 0.0]),
        ],
        procs: 12,
        mem_per_proc: 1e9,
        replication: false,
    };
    let problem = build(&spec, Perturb::None);
    let (sol, prov) = dp_mapping_provenance(&problem, &SolveOptions::default()).expect("solvable");
    assert_eq!(prov.algorithm, "dp_mapping");
    assert_eq!(prov.cells.len(), sol.mapping.modules.len());
    assert!(
        sol.mapping.modules.len() < spec.tasks.len(),
        "spec intended to force clustering, got {:?}",
        sol.mapping.modules,
    );
    let flips = check_margins_against_oracle(&spec, &sol.mapping);
    assert!(flips >= 2, "only {flips} margin flips exercised");
}

/// A small random problem mirroring the equivalence-suite generator:
/// k ≤ 4 tasks, P ≤ 12, optional replication with memory floors.
fn arb_problem() -> impl Strategy<Value = Problem> {
    (
        prop::collection::vec(
            (
                0.0..1.0f64,
                0.1..6.0f64,
                0.0..0.1f64,
                0.0..20.0f64,
                any::<bool>(),
            ),
            1..5,
        ),
        prop::collection::vec((0.0..0.3f64, 0.0..1.2f64, 0.0..0.05f64), 4),
        3..13usize,
        any::<bool>(),
    )
        .prop_map(|(tasks, edges, p, replication)| {
            let k = tasks.len();
            let mut b = ChainBuilder::new();
            for (i, (c1, c2, c3, mem, rep)) in tasks.into_iter().enumerate() {
                let mut t = Task::new(format!("t{i}"), PolyUnary::new(c1, c2, c3))
                    .with_memory(MemoryReq::new(0.0, mem));
                if !rep {
                    t = t.not_replicable();
                }
                b = b.task(t);
                if i + 1 < k {
                    let (e1, e2, e3) = edges[i];
                    b = b.edge(Edge::new(
                        PolyUnary::new(e1 * 0.5, 0.0, 0.0),
                        PolyEcom::new(e1, e2, e2, e3, e3),
                    ));
                }
            }
            let problem = Problem::new(b.build(), p, 20.0);
            if replication {
                problem
            } else {
                problem.without_replication()
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Provenance recording must not perturb any solver result: same
    /// throughput bits, same mapping, and a plausibly-shaped record.
    #[test]
    fn provenance_recording_is_bit_identical(problem in arb_problem()) {
        let unpruned = SolveOptions { prune: false, ..SolveOptions::default() };

        match (
            dp_assignment_with(&problem, &unpruned),
            dp_assignment_provenance(&problem, &SolveOptions::default()),
        ) {
            (Ok((plain, assignment)), Ok((prov_sol, prov_assignment, prov))) => {
                prop_assert_eq!(
                    plain.throughput.to_bits(),
                    prov_sol.throughput.to_bits(),
                );
                prop_assert_eq!(&plain.mapping, &prov_sol.mapping);
                prop_assert_eq!(&assignment, &prov_assignment);
                prop_assert_eq!(prov.algorithm, "dp_assignment");
                prop_assert!(prov.exact_runner_ups);
                prop_assert_eq!(prov.cells.len(), plain.mapping.modules.len());
                prop_assert_eq!(prov.throughput.to_bits(), plain.throughput.to_bits());
                // Chosen beats (or ties) its own runner-up in every cell.
                for cell in &prov.cells {
                    if let Some(ru) = &cell.runner_up {
                        prop_assert!(ru.value <= cell.value + 1e-12);
                    }
                }
                let budget: usize = prov.cells.iter().map(|c| c.offer).sum();
                prop_assert!(budget <= problem.total_procs);
            }
            (Err(_), Err(_)) => {}
            (plain, prov) => prop_assert!(
                false,
                "solvability must not depend on recording: {:?} vs {:?}",
                plain.map(|(s, _)| s.throughput),
                prov.map(|(s, _, _)| s.throughput),
            ),
        }

        match (
            dp_mapping_with(&problem, &unpruned),
            dp_mapping_provenance(&problem, &SolveOptions::default()),
        ) {
            (Ok(plain), Ok((prov_sol, prov))) => {
                prop_assert_eq!(
                    plain.throughput.to_bits(),
                    prov_sol.throughput.to_bits(),
                );
                prop_assert_eq!(&plain.mapping, &prov_sol.mapping);
                prop_assert_eq!(prov.algorithm, "dp_mapping");
                prop_assert_eq!(prov.cells.len(), plain.mapping.modules.len());
            }
            (Err(_), Err(_)) => {}
            (plain, prov) => prop_assert!(
                false,
                "solvability must not depend on recording: {:?} vs {:?}",
                plain.map(|s| s.throughput),
                prov.map(|(s, _)| s.throughput),
            ),
        }

        // The flag alone (without the dedicated entry points, pruning
        // still on) must also leave the optimised path bit-identical.
        let flagged = SolveOptions { provenance: true, ..SolveOptions::default() };
        match (
            dp_assignment_with(&problem, &SolveOptions::default()),
            dp_assignment_with(&problem, &flagged),
        ) {
            (Ok((a, aa)), Ok((b, bb))) => {
                prop_assert_eq!(a.throughput.to_bits(), b.throughput.to_bits());
                prop_assert_eq!(&aa, &bb);
            }
            (Err(_), Err(_)) => {}
            _ => prop_assert!(false, "flag changed solvability"),
        }
    }

    /// Margins on random solvable chains are internally consistent:
    /// `exec_down ≤ 1 ≤ exec_up`, the bottleneck has slack 1, and the
    /// report's throughput matches the solver's.
    #[test]
    fn margin_reports_are_well_formed(problem in arb_problem()) {
        if let Ok((sol, _)) = dp_assignment(&problem) {
            let report = stability_margins(&problem, &sol.mapping).expect("margins");
            prop_assert!((report.throughput - sol.throughput).abs() <= 1e-9 * sol.throughput);
            prop_assert_eq!(report.stages.len(), sol.mapping.modules.len());
            for s in &report.stages {
                prop_assert!(s.exec_up >= 1.0, "exec_up = {} < 1", s.exec_up);
                prop_assert!(s.exec_down <= 1.0 + 1e-12, "exec_down = {} > 1", s.exec_down);
                prop_assert!(s.slack >= 1.0 - 1e-9, "slack = {} < 1", s.slack);
            }
            let b = &report.stages[report.bottleneck];
            prop_assert!((b.slack - 1.0).abs() <= 1e-9, "bottleneck slack = {}", b.slack);
        }
    }
}
