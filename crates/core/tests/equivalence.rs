//! Differential equivalence suite for the DP performance layer.
//!
//! The contract of [`SolveOptions`] is *bit-identical results*: pruning,
//! instance dedup, and the worker pool are pure wall-clock optimisations.
//! This suite enforces the contract three ways:
//!
//! 1. **Against the oracles** — on small random chains the reference
//!    serial DP, the full performance path, and the exhaustive brute-force
//!    enumeration must agree on the optimal throughput (property test).
//! 2. **Across the option matrix** — every combination of
//!    `{par, prune, dedup}` must return the same throughput *bits* and
//!    the same mapping as the reference path, on models large enough for
//!    pruning and dedup to actually engage (P = 32/64 with replication,
//!    convex response curves, real communication terms).
//! 3. **Across thread counts** — explicit 1/2/4-thread runs at P = 128
//!    must agree bitwise, proving the strided row partition and stage
//!    barrier merge are deterministic.
//!
//! `PIPEMAP_THREADS` only affects runs with `threads: None`; the explicit
//! matrix pins counts so CI can run the whole suite under
//! `PIPEMAP_THREADS=1` and `=4` (see ci.sh) without changing coverage.

use pipemap_chain::{ChainBuilder, Edge, Problem, Task};
use pipemap_core::{
    brute_force_assignment, brute_force_mapping, dp_assignment_with, dp_mapping_with, SolveOptions,
};
use pipemap_model::{MemoryReq, PolyEcom, PolyUnary};
use proptest::prelude::*;

/// A small random problem: k ≤ 3 tasks, P ≤ 8 — cheap enough for the
/// exhaustive oracles.
fn arb_small_problem() -> impl Strategy<Value = Problem> {
    (
        prop::collection::vec(
            (
                0.0..1.5f64,  // fixed work
                0.1..6.0f64,  // parallel work
                0.0..0.15f64, // per-proc overhead
                0.0..25.0f64, // distributed memory
                any::<bool>(),
            ),
            1..4,
        ),
        prop::collection::vec((0.0..0.4f64, 0.0..1.5f64, 0.0..0.08f64), 3),
        3..9usize,
        any::<bool>(),
    )
        .prop_map(|(tasks, edges, p, replication)| {
            let k = tasks.len();
            let mut b = ChainBuilder::new();
            for (i, (c1, c2, c3, mem, rep)) in tasks.into_iter().enumerate() {
                let mut t = Task::new(format!("t{i}"), PolyUnary::new(c1, c2, c3))
                    .with_memory(MemoryReq::new(0.0, mem));
                if !rep {
                    t = t.not_replicable();
                }
                b = b.task(t);
                if i + 1 < k {
                    let (e1, e2, e3) = edges[i];
                    b = b.edge(Edge::new(
                        PolyUnary::new(e1 * 0.5, 0.0, 0.0),
                        PolyEcom::new(e1, e2, e2, e3, e3),
                    ));
                }
            }
            let problem = Problem::new(b.build(), p, 20.0);
            if replication {
                problem
            } else {
                problem.without_replication()
            }
        })
}

/// A deterministic k-task chain with convex responses, real transfer
/// costs, and per-task memory floors — sized so that at large P both
/// pruning and replication dedup engage.
fn convex_chain(k: usize, seed: u64, mem_scale: f64) -> Problem {
    // Tiny deterministic LCG so the suite needs no RNG dependency and the
    // inputs are identical on every run and platform.
    let mut state = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f64) / ((1u64 << 31) as f64) // in [0, 2)
    };
    let mut b = ChainBuilder::new();
    for i in 0..k {
        let t = Task::new(
            format!("t{i}"),
            PolyUnary::new(0.05 * next(), 2.0 + 4.0 * next(), 0.01 * next()),
        )
        .with_memory(MemoryReq::new(0.0, mem_scale * next()));
        b = b.task(t);
        if i + 1 < k {
            b = b.edge(Edge::new(
                PolyUnary::new(0.02 * next(), 0.0, 0.0),
                PolyEcom::new(
                    0.05 * next(),
                    0.4 * next(),
                    0.4 * next(),
                    0.005 * next(),
                    0.005 * next(),
                ),
            ));
        }
    }
    Problem::new(b.build(), 1, 1.0) // placeholder; caller sets P below
}

fn with_budget(problem: Problem, p: usize, mem_per_proc: f64) -> Problem {
    Problem::new(problem.chain, p, mem_per_proc)
}

/// The option matrix exercised everywhere: reference, each knob alone,
/// everything on.
fn option_matrix() -> Vec<SolveOptions> {
    let on = SolveOptions::default();
    vec![
        SolveOptions::reference(),
        SolveOptions {
            par: true,
            ..SolveOptions::reference()
        },
        SolveOptions {
            prune: true,
            ..SolveOptions::reference()
        },
        SolveOptions {
            dedup: true,
            ..SolveOptions::reference()
        },
        SolveOptions { prune: false, ..on },
        SolveOptions { dedup: false, ..on },
        on,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Small chains: reference DP == optimised DP == brute force, for
    /// both the assignment and the full mapping problem.
    #[test]
    fn small_chains_match_brute_force(problem in arb_small_problem()) {
        let reference = dp_assignment_with(&problem, &SolveOptions::reference());
        let optimised = dp_assignment_with(&problem, &SolveOptions::default());
        let brute = brute_force_assignment(&problem);
        match (reference, optimised, brute) {
            (Ok((rs, ra)), Ok((os, oa)), Ok((bs, _))) => {
                prop_assert_eq!(rs.throughput.to_bits(), os.throughput.to_bits());
                prop_assert_eq!(ra.0, oa.0);
                prop_assert!(
                    (rs.throughput - bs.throughput).abs()
                        <= 1e-9 * bs.throughput.abs().max(1.0),
                    "dp {} vs brute {}", rs.throughput, bs.throughput
                );
            }
            (Err(a), Err(b), Err(c)) => {
                prop_assert_eq!(a, b);
                prop_assert_eq!(b, c);
            }
            (r, o, b) => prop_assert!(
                false,
                "feasibility disagreement: ref {:?} opt {:?} brute {:?}",
                r.map(|x| x.0.throughput),
                o.map(|x| x.0.throughput),
                b.map(|x| x.0.throughput)
            ),
        }

        let reference = dp_mapping_with(&problem, &SolveOptions::reference());
        let optimised = dp_mapping_with(&problem, &SolveOptions::default());
        let brute = brute_force_mapping(&problem);
        match (reference, optimised, brute) {
            (Ok(rs), Ok(os), Ok(bs)) => {
                prop_assert_eq!(rs.throughput.to_bits(), os.throughput.to_bits());
                prop_assert_eq!(rs.mapping, os.mapping);
                prop_assert!(
                    (rs.throughput - bs.throughput).abs()
                        <= 1e-9 * bs.throughput.abs().max(1.0),
                    "dp {} vs brute {}", rs.throughput, bs.throughput
                );
            }
            (Err(a), Err(b), Err(c)) => {
                prop_assert_eq!(a, b);
                prop_assert_eq!(b, c);
            }
            (r, o, b) => prop_assert!(
                false,
                "feasibility disagreement: ref {:?} opt {:?} brute {:?}",
                r.map(|x| x.throughput),
                o.map(|x| x.throughput),
                b.map(|x| x.throughput)
            ),
        }
    }
}

#[test]
fn assignment_option_matrix_agrees_at_p32_and_p64() {
    for (p, seed) in [(32usize, 7u64), (64, 11)] {
        let problem = with_budget(convex_chain(5, seed, 12.0), p, 8.0);
        let (rs, ra) = dp_assignment_with(&problem, &SolveOptions::reference())
            .expect("feasible convex chain");
        for opts in option_matrix() {
            let (s, a) = dp_assignment_with(&problem, &opts).expect("same feasibility");
            assert_eq!(
                s.throughput.to_bits(),
                rs.throughput.to_bits(),
                "P={p}: options {opts:?} changed the optimum ({} vs {})",
                s.throughput,
                rs.throughput
            );
            assert_eq!(a.0, ra.0, "P={p}: options {opts:?} changed the assignment");
        }
    }
}

#[test]
fn mapping_option_matrix_agrees_at_p32_and_p64() {
    for (p, seed) in [(32usize, 3u64), (64, 5)] {
        let problem = with_budget(convex_chain(4, seed, 10.0), p, 8.0);
        let rs =
            dp_mapping_with(&problem, &SolveOptions::reference()).expect("feasible convex chain");
        for opts in option_matrix() {
            let s = dp_mapping_with(&problem, &opts).expect("same feasibility");
            assert_eq!(
                s.throughput.to_bits(),
                rs.throughput.to_bits(),
                "P={p}: options {opts:?} changed the optimum ({} vs {})",
                s.throughput,
                rs.throughput
            );
            assert_eq!(
                s.mapping, rs.mapping,
                "P={p}: options {opts:?} changed the mapping"
            );
        }
    }
}

/// Thread-count determinism at P = 128 on a replication-friendly chain
/// (floor-1 tasks collapse the dedup axis, keeping the debug-mode run
/// fast). The reference here is the serial *optimised* path: the knob
/// under test is `par`/`threads` alone.
#[test]
fn thread_counts_agree_bitwise_at_p128() {
    let problem = with_budget(convex_chain(6, 13, 0.0), 128, 8.0);
    let serial = SolveOptions {
        par: false,
        ..SolveOptions::default()
    };
    let (rs, ra) = dp_assignment_with(&problem, &serial).expect("feasible");
    let rm = dp_mapping_with(&problem, &serial).expect("feasible");
    for threads in [1usize, 2, 4] {
        let opts = SolveOptions::with_threads(threads);
        let (s, a) = dp_assignment_with(&problem, &opts).expect("feasible");
        assert_eq!(
            s.throughput.to_bits(),
            rs.throughput.to_bits(),
            "threads={threads}"
        );
        assert_eq!(a.0, ra.0, "threads={threads}");
        let m = dp_mapping_with(&problem, &opts).expect("feasible");
        assert_eq!(
            m.throughput.to_bits(),
            rm.throughput.to_bits(),
            "threads={threads}"
        );
        assert_eq!(m.mapping, rm.mapping, "threads={threads}");
    }
}

/// The greedy incumbent must stay admissible — i.e. never above the DP
/// optimum — or pruning would be unsound. Checked across seeds at P = 64.
#[test]
fn greedy_incumbent_is_admissible() {
    for seed in 0..8u64 {
        let problem = with_budget(convex_chain(5, seed, 10.0), 64, 8.0);
        let greedy =
            pipemap_core::greedy_assignment(&problem, pipemap_core::GreedyOptions::adaptive());
        let (dp, _) = dp_assignment_with(&problem, &SolveOptions::reference()).expect("feasible");
        if let Ok((gs, _)) = greedy {
            assert!(
                gs.throughput <= dp.throughput * (1.0 + 1e-9),
                "seed {seed}: greedy {} exceeds DP optimum {}",
                gs.throughput,
                dp.throughput
            );
        }
    }
}
