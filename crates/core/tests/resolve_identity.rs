//! Differential suite for the incremental re-solver.
//!
//! The contract of [`ResolveArtifact::resolve`] is *bit-identical results*
//! to a cold solve of the re-priced problem with the artifact's options —
//! throughput always, and the mapping too whenever any DP work ran. A
//! margin short-circuit is a value-level certificate: it may report a
//! different *value-tied* optimum than the cold argmax when the re-priced
//! problem has several optima (see `resolve.rs` module docs), so on that
//! mechanism the suite requires bitwise-equal throughput and accepts the
//! old mapping as the tied representative. This suite enforces:
//!
//! 1. **Random multi-stage drift × the full option matrix** — random
//!    exec/icom/ecom factor vectors (a mix of unchanged and 0.5–2.0×
//!    drifted costs) re-solved incrementally must match
//!    `dp_mapping_with` / `dp_assignment_with` on
//!    [`reprice_problem`]`(problem, deltas)` in throughput bits, and in
//!    mapping except on a tied short-circuit, for every
//!    `{par, prune, dedup}` combination.
//! 2. **Margin boundaries** — a delta *exactly on* a stability-margin
//!    boundary (where an alternative ties and a naive short-circuit could
//!    return a stale argmax) must still be fully bit-identical: the
//!    guarded short-circuit refuses it and the suffix path answers
//!    exactly, mapping included.
//! 3. **In-margin single deltas** — strictly inside the margin interval
//!    the short-circuit fires with zero DP cells, its throughput is
//!    bit-identical to the cold solve, and its mapping matches unless the
//!    cold argmax picked a value-tied alternate optimum.

use pipemap_chain::{ChainBuilder, Edge, Problem, Task};
use pipemap_core::{
    dp_assignment_with, dp_mapping_with, reprice_problem, CostDeltas, ResolveArtifact,
    ResolveMechanism, SolveOptions,
};
use pipemap_model::{MemoryReq, PolyEcom, PolyUnary};
use proptest::prelude::*;

/// Deterministic convex chain, same construction as the equivalence
/// suite: every cost curve is convex with real transfer terms, so pruning
/// and dedup both engage.
fn convex_chain(k: usize, seed: u64, mem_scale: f64, p: usize, mem_per_proc: f64) -> Problem {
    let mut state = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f64) / ((1u64 << 31) as f64) // in [0, 2)
    };
    let mut b = ChainBuilder::new();
    for i in 0..k {
        let t = Task::new(
            format!("t{i}"),
            PolyUnary::new(0.05 * next(), 2.0 + 4.0 * next(), 0.01 * next()),
        )
        .with_memory(MemoryReq::new(0.0, mem_scale * next()));
        b = b.task(t);
        if i + 1 < k {
            b = b.edge(Edge::new(
                PolyUnary::new(0.02 * next(), 0.0, 0.0),
                PolyEcom::new(
                    0.05 * next(),
                    0.4 * next(),
                    0.4 * next(),
                    0.005 * next(),
                    0.005 * next(),
                ),
            ));
        }
    }
    Problem::new(b.build(), p, mem_per_proc)
}

/// The option matrix of the equivalence suite: reference, each knob
/// alone, everything on.
fn option_matrix() -> Vec<SolveOptions> {
    let on = SolveOptions::default();
    vec![
        SolveOptions::reference(),
        SolveOptions {
            par: true,
            ..SolveOptions::reference()
        },
        SolveOptions {
            prune: true,
            ..SolveOptions::reference()
        },
        SolveOptions {
            dedup: true,
            ..SolveOptions::reference()
        },
        SolveOptions { prune: false, ..on },
        SolveOptions { dedup: false, ..on },
        on,
    ]
}

/// A random factor vector: each slot unchanged with probability ~1/2,
/// else drifted within [0.5, 2.0].
fn arb_factors(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec((any::<bool>(), 0.5..2.0f64), n).prop_map(|v| {
        v.into_iter()
            .map(|(keep, g)| if keep { 1.0 } else { g })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Mechanism 2 + 3 under random multi-stage drift, across the full
    /// option matrix, for both artifact kinds.
    #[test]
    fn resolve_is_bit_identical_to_cold_solve(
        seed in 0u64..64,
        p in 10usize..22,
        exec in arb_factors(4),
        icom in arb_factors(3),
        ecom in arb_factors(3),
    ) {
        let problem = convex_chain(4, seed, 8.0, p, 8.0);
        let deltas = CostDeltas::new(exec, icom, ecom);
        let repriced = reprice_problem(&problem, &deltas);
        for opts in option_matrix() {
            let art = ResolveArtifact::build(&problem, &opts).expect("feasible convex chain");
            let out = art.resolve(&deltas).expect("re-priced chain stays feasible");
            let cold = dp_mapping_with(&repriced, &opts).expect("same feasibility");
            prop_assert_eq!(
                out.solution.throughput.to_bits(),
                cold.throughput.to_bits(),
                "cluster: options {:?} deltas {:?}: resolve {} vs cold {}",
                opts, &deltas, out.solution.throughput, cold.throughput
            );
            prop_assert_eq!(&out.solution.mapping, &cold.mapping);

            let art = ResolveArtifact::build_assignment(&problem, &opts)
                .expect("feasible convex chain");
            let out = art.resolve(&deltas).expect("re-priced chain stays feasible");
            let (cold, _) = dp_assignment_with(&repriced, &opts).expect("same feasibility");
            prop_assert_eq!(
                out.solution.throughput.to_bits(),
                cold.throughput.to_bits(),
                "assignment: options {:?} deltas {:?}: resolve {} vs cold {}",
                opts, &deltas, out.solution.throughput, cold.throughput
            );
            // A short-circuit may return a value-tied alternate optimum
            // (bitwise-equal throughput, asserted above); any mechanism
            // that ran DP work must reproduce the cold argmax exactly.
            if out.mechanism != ResolveMechanism::ShortCircuit {
                prop_assert_eq!(&out.solution.mapping, &cold.mapping);
            }
        }
    }
}

/// A delta exactly on a margin boundary must fall through to the exact
/// suffix path and still match the cold solve bitwise. Boundary factors
/// are where an alternative *ties* — precisely the spot where a naive
/// short-circuit could keep a stale argmax.
#[test]
fn margin_boundary_deltas_stay_bit_identical() {
    let opts = SolveOptions::default();
    for seed in 0..6u64 {
        let problem = convex_chain(4, seed, 8.0, 16, 8.0);
        let art = ResolveArtifact::build_assignment(&problem, &opts).expect("feasible");
        let Some(margins) = art.margins().cloned() else {
            continue;
        };
        let k = problem.num_tasks();
        let mut boundary_cases: Vec<CostDeltas> = Vec::new();
        for (i, s) in margins.stages.iter().enumerate() {
            for g in [s.exec_down, s.exec_up] {
                if g.is_finite() && g > 0.0 && g != 1.0 {
                    let mut d = CostDeltas::identity(k);
                    d.set_exec(i, g);
                    boundary_cases.push(d);
                }
            }
            if i > 0 {
                for g in [s.ecom_in_down, s.ecom_in_up] {
                    if g.is_finite() && g > 0.0 && g != 1.0 {
                        let mut d = CostDeltas::identity(k);
                        d.set_ecom(i - 1, g);
                        boundary_cases.push(d);
                    }
                }
            }
        }
        for d in boundary_cases {
            let out = art.resolve(&d).expect("feasible");
            let repriced = reprice_problem(&problem, &d);
            let (cold, _) = dp_assignment_with(&repriced, &opts).expect("feasible");
            assert_eq!(
                out.solution.throughput.to_bits(),
                cold.throughput.to_bits(),
                "seed {seed}: boundary deltas {d:?}"
            );
            assert_eq!(
                out.solution.mapping, cold.mapping,
                "seed {seed}: boundary deltas {d:?}"
            );
        }
    }
}

/// Strictly inside the margin interval the short-circuit must fire (zero
/// DP cells) and must still agree with the cold solve bitwise.
#[test]
fn in_margin_short_circuit_is_exact() {
    let opts = SolveOptions::default();
    let mut fired = 0usize;
    for seed in 0..6u64 {
        let problem = convex_chain(4, seed, 8.0, 16, 8.0);
        let art = ResolveArtifact::build_assignment(&problem, &opts).expect("feasible");
        let Some(margins) = art.margins().cloned() else {
            continue;
        };
        let k = problem.num_tasks();
        for (i, s) in margins.stages.iter().enumerate() {
            // Halfway between 1 and the upward crossing (or a token 1%
            // when it never crosses).
            let g = if s.exec_up.is_finite() {
                1.0 + (s.exec_up - 1.0) / 2.0
            } else {
                1.01
            };
            if !(g.is_finite() && g > 1.0) {
                continue;
            }
            let mut d = CostDeltas::identity(k);
            d.set_exec(i, g);
            let out = art.resolve(&d).expect("feasible");
            let repriced = reprice_problem(&problem, &d);
            let (cold, _) = dp_assignment_with(&repriced, &opts).expect("feasible");
            assert_eq!(
                out.solution.throughput.to_bits(),
                cold.throughput.to_bits(),
                "seed {seed} stage {i} g {g}"
            );
            if out.mechanism == ResolveMechanism::ShortCircuit {
                // The old mapping is provably still optimal; the cold
                // argmax may pick a value-tied alternative, which the
                // bitwise throughput equality above certifies.
                assert_eq!(out.cells, 0, "short-circuit must do no DP work");
                fired += 1;
            } else {
                assert_eq!(out.solution.mapping, cold.mapping);
            }
        }
    }
    assert!(
        fired > 0,
        "the margin short-circuit never fired across the sweep"
    );
}
