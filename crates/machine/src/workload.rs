//! Ground-truth cost synthesis from operation counts.
//!
//! Rather than inventing polynomial coefficients directly (which would make
//! fitting the §5 model a tautology), tasks and edges are described by
//! *what they compute and move*, and the machine model turns that into time
//! functions:
//!
//! * execution time includes a sequential part, a parallel part subject to
//!   **ceil-based grain imbalance** (`⌈grain/p⌉` work units on the busiest
//!   processor), a per-processor overhead, and optional internal
//!   collectives with **logarithmic** step counts;
//! * redistribution time follows the message/volume structure of the
//!   chosen [`TransferPattern`] — e.g. a transpose is an all-to-all whose
//!   per-processor message count grows with the *other* side's size.
//!
//! None of these shapes is exactly representable by the paper's 3- and
//! 5-term polynomials, so a least-squares fit of those polynomials has a
//! genuine residual — which is precisely how the paper's predicted-vs-
//! measured differences arise (§6.4, "inaccuracies in our modeling of
//! performance parameters").

use pipemap_model::{BinaryCost, MemoryReq, Procs, Seconds, UnaryCost};

use crate::config::MachineConfig;

/// The communication structure of a collective internal to one task.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CollectivePattern {
    /// Tree reduction / broadcast: `⌈log2 p⌉` steps, each moving `bytes`.
    Reduce,
    /// Full exchange among the task's processors: `p − 1` messages per
    /// processor, volume split across the group.
    AllToAll,
}

/// A collective performed inside a task on every data set (e.g. the
/// histogram merge in FFT-Hist's `hist` task).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Collective {
    /// Pattern of the collective.
    pub pattern: CollectivePattern,
    /// Payload bytes (per step for `Reduce`, total for `AllToAll`).
    pub bytes: f64,
}

/// Operation counts of one task per data set.
#[derive(Clone, Debug)]
pub struct TaskWorkload {
    /// Task name.
    pub name: String,
    /// Flops that do not parallelise (I/O framing, scalar control).
    pub seq_flops: f64,
    /// Flops that divide across processors.
    pub par_flops: f64,
    /// Number of independent work units the parallel flops split into
    /// (e.g. the number of columns for a column-FFT task). The busiest
    /// processor executes `⌈grain/p⌉` units.
    pub grain: u64,
    /// Extra flops *per processor* per data set (loop setup, boundary
    /// handling) — the source of the paper's `C3·p` term.
    pub overhead_flops_per_proc: f64,
    /// Optional internal collective.
    pub collective: Option<Collective>,
    /// Memory requirement.
    pub memory: MemoryReq,
    /// Whether distinct data sets may go to distinct instances.
    pub replicable: bool,
}

impl TaskWorkload {
    /// A purely parallel task with the given name, flops and grain.
    pub fn parallel(name: impl Into<String>, par_flops: f64, grain: u64) -> Self {
        Self {
            name: name.into(),
            seq_flops: 0.0,
            par_flops,
            grain: grain.max(1),
            overhead_flops_per_proc: 0.0,
            collective: None,
            memory: MemoryReq::none(),
            replicable: true,
        }
    }

    /// Ground-truth execution time on `p` processors of `machine`.
    pub fn exec_time(&self, machine: &MachineConfig, p: Procs) -> Seconds {
        if p == 0 {
            return f64::INFINITY;
        }
        let pf = p as f64;
        let units_on_busiest = self.grain.div_ceil(p as u64) as f64;
        let flops_per_unit = self.par_flops / self.grain as f64;
        let mut t = machine.flop_time
            * (self.seq_flops
                + units_on_busiest * flops_per_unit
                + self.overhead_flops_per_proc * pf);
        if let Some(c) = self.collective {
            if p > 1 {
                t += match c.pattern {
                    CollectivePattern::Reduce => {
                        let steps = (pf).log2().ceil();
                        steps * (machine.msg_overhead + c.bytes * machine.byte_time)
                    }
                    CollectivePattern::AllToAll => {
                        (pf - 1.0) * machine.msg_overhead
                            + (c.bytes / pf) * machine.byte_time
                            + machine.sync_overhead
                    }
                };
            }
        }
        t
    }

    /// The ground-truth execution time as a [`UnaryCost`] closure.
    pub fn exec_cost(&self, machine: &MachineConfig) -> UnaryCost {
        let w = self.clone();
        let m = *machine;
        UnaryCost::custom(move |p| w.exec_time(&m, p))
    }
}

/// How a data set is redistributed between two adjacent tasks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransferPattern {
    /// Both tasks use the same distribution: a cross-group transfer is a
    /// block-to-block copy, and the *internal* redistribution is free —
    /// the `rowffts → hist` situation that makes merging them attractive.
    Aligned,
    /// Full exchange (a transpose): every sender talks to every receiver;
    /// internally it is a full redistribution as well (the `colffts →
    /// rowffts` transpose whose "cost is comparable whether they are
    /// mapped together or separately", §6.3).
    AllToAll,
    /// The sending task's output is gathered/scattered through a root
    /// (e.g. a camera-capture task fanning out).
    Scatter,
}

/// Bytes-and-pattern description of one chain edge.
#[derive(Clone, Copy, Debug)]
pub struct EdgeWorkload {
    /// Total payload bytes per data set.
    pub bytes: f64,
    /// Redistribution pattern.
    pub pattern: TransferPattern,
}

impl EdgeWorkload {
    /// An aligned (same-distribution) edge.
    pub fn aligned(bytes: f64) -> Self {
        Self {
            bytes,
            pattern: TransferPattern::Aligned,
        }
    }

    /// A transpose / full-exchange edge.
    pub fn all_to_all(bytes: f64) -> Self {
        Self {
            bytes,
            pattern: TransferPattern::AllToAll,
        }
    }

    /// Ground-truth external transfer time from `ps` to `pr` processors.
    ///
    /// Send and receive sides both stay busy for the whole step (the §2.1
    /// model), so the cost is the maximum of the two sides' work plus a
    /// synchronisation constant.
    pub fn ecom_time(&self, machine: &MachineConfig, ps: Procs, pr: Procs) -> Seconds {
        if ps == 0 || pr == 0 {
            return f64::INFINITY;
        }
        let (s, r) = (ps as f64, pr as f64);
        let v = self.bytes;
        let (send, recv) = match self.pattern {
            TransferPattern::Aligned => {
                // Block-to-block: each sender reaches the receivers that
                // overlap its block: ~⌈pr/ps⌉ messages (and vice versa).
                let ms = (pr as u64).div_ceil(ps as u64) as f64;
                let mr = (ps as u64).div_ceil(pr as u64) as f64;
                (
                    ms * machine.msg_overhead + (v / s) * machine.byte_time,
                    mr * machine.msg_overhead + (v / r) * machine.byte_time,
                )
            }
            TransferPattern::AllToAll => (
                r * machine.msg_overhead + (v / s) * machine.byte_time,
                s * machine.msg_overhead + (v / r) * machine.byte_time,
            ),
            TransferPattern::Scatter => (
                r * machine.msg_overhead + v * machine.byte_time / s.min(r),
                machine.msg_overhead + (v / r) * machine.byte_time,
            ),
        };
        machine.sync_overhead + send.max(recv)
    }

    /// Ground-truth internal redistribution time on a shared group of `p`
    /// processors.
    pub fn icom_time(&self, machine: &MachineConfig, p: Procs) -> Seconds {
        if p == 0 {
            return f64::INFINITY;
        }
        let pf = p as f64;
        match self.pattern {
            // Same distribution on the same processors: no data moves.
            TransferPattern::Aligned => 0.0,
            TransferPattern::AllToAll => {
                if p == 1 {
                    0.0
                } else {
                    // Each processor both sends and receives its V/p
                    // slice, so the per-byte term is paid twice — which is
                    // what makes an in-place transpose on p processors
                    // "comparable" to an external one between two groups
                    // of ~p/2 (the §6.3 observation).
                    machine.sync_overhead
                        + (pf - 1.0) * machine.msg_overhead
                        + 2.0 * (self.bytes / pf) * machine.byte_time
                }
            }
            TransferPattern::Scatter => {
                if p == 1 {
                    0.0
                } else {
                    machine.sync_overhead
                        + (pf).log2().ceil() * machine.msg_overhead
                        + (self.bytes / pf) * machine.byte_time
                }
            }
        }
    }

    /// The ground-truth external cost as a [`BinaryCost`] closure.
    pub fn ecom_cost(&self, machine: &MachineConfig) -> BinaryCost {
        let w = *self;
        let m = *machine;
        BinaryCost::custom(move |ps, pr| w.ecom_time(&m, ps, pr))
    }

    /// The ground-truth internal cost as a [`UnaryCost`] closure.
    pub fn icom_cost(&self, machine: &MachineConfig) -> UnaryCost {
        let w = *self;
        let m = *machine;
        UnaryCost::custom(move |p| w.icom_time(&m, p))
    }
}

/// A whole application: `k` task workloads and `k−1` edge workloads.
#[derive(Clone, Debug)]
pub struct AppWorkload {
    /// Application name (used in reports).
    pub name: String,
    /// Task workloads in chain order.
    pub tasks: Vec<TaskWorkload>,
    /// Edge workloads between adjacent tasks.
    pub edges: Vec<EdgeWorkload>,
}

impl AppWorkload {
    /// Build, checking the chain shape.
    pub fn new(
        name: impl Into<String>,
        tasks: Vec<TaskWorkload>,
        edges: Vec<EdgeWorkload>,
    ) -> Self {
        assert!(!tasks.is_empty());
        assert_eq!(edges.len(), tasks.len() - 1);
        Self {
            name: name.into(),
            tasks,
            edges,
        }
    }
}

/// Sanity relation between the modes: systolic transfers of the same
/// payload are cheaper whenever message count dominates.
pub fn systolic_beats_message_for(edge: &EdgeWorkload, ps: Procs, pr: Procs) -> bool {
    let msg = edge.ecom_time(&MachineConfig::iwarp_message(), ps, pr);
    let sys = edge.ecom_time(&MachineConfig::iwarp_systolic(), ps, pr);
    sys <= msg
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> MachineConfig {
        MachineConfig::iwarp_message()
    }

    #[test]
    fn exec_scales_with_grain_imbalance() {
        let w = TaskWorkload::parallel("fft", 1e6, 16);
        let m = machine();
        // 16 units over 4 procs: 4 units each; over 5 procs: still ceil =
        // 4 → no improvement (the non-smooth step a polynomial can't fit).
        let t4 = w.exec_time(&m, 4);
        let t5 = w.exec_time(&m, 5);
        assert!((t4 - t5).abs() < 1e-15);
        let t8 = w.exec_time(&m, 8);
        assert!(t8 < t4);
        // Perfect halving from 4 to 8 (16 → 2 units).
        assert!((t8 - t4 / 2.0).abs() < 1e-12);
    }

    #[test]
    fn exec_includes_sequential_and_overhead() {
        let mut w = TaskWorkload::parallel("t", 0.0, 1);
        w.seq_flops = 1e6;
        w.overhead_flops_per_proc = 1e3;
        let m = machine();
        let t1 = w.exec_time(&m, 1);
        let t64 = w.exec_time(&m, 64);
        // Sequential part constant; overhead grows with p.
        assert!(t64 > t1);
        assert!((t1 - m.flop_time * (1e6 + 1e3)).abs() < 1e-12);
    }

    #[test]
    fn reduce_collective_is_logarithmic() {
        let mut w = TaskWorkload::parallel("hist", 0.0, 1);
        w.collective = Some(Collective {
            pattern: CollectivePattern::Reduce,
            bytes: 1024.0,
        });
        let m = machine();
        let base = |p: usize| w.exec_time(&m, p);
        // log2 steps: p=2 → 1 step, p=4 → 2, p=16 → 4.
        let step = m.msg_overhead + 1024.0 * m.byte_time;
        assert!((base(2) - step).abs() < 1e-12);
        assert!((base(4) - 2.0 * step).abs() < 1e-12);
        assert!((base(16) - 4.0 * step).abs() < 1e-12);
        assert_eq!(base(1), 0.0);
    }

    #[test]
    fn aligned_icom_is_free() {
        let e = EdgeWorkload::aligned(1e6);
        assert_eq!(e.icom_time(&machine(), 8), 0.0);
        // But the external transfer is not.
        assert!(e.ecom_time(&machine(), 4, 4) > 0.0);
    }

    #[test]
    fn transpose_icom_costs_roughly_like_balanced_ecom() {
        // §6.3: the transpose "cost is comparable whether they are mapped
        // together or separately".
        let e = EdgeWorkload::all_to_all(1e6);
        let m = machine();
        let internal = e.icom_time(&m, 8);
        let external = e.ecom_time(&m, 8, 8);
        let ratio = external / internal;
        assert!((0.5..=2.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn ecom_decreases_then_increases_with_group_size() {
        // Volume term shrinks with p, message count grows with p: the
        // non-monotone shape that motivates the paper's 5-term model.
        // (A 6.4 KB payload puts the turning point near p = 8 on this
        // machine: sqrt(V·byte_time / msg_overhead) ≈ 8.)
        let e = EdgeWorkload::all_to_all(6.4e3);
        let m = machine();
        let t2 = e.ecom_time(&m, 2, 2);
        let t8 = e.ecom_time(&m, 8, 8);
        let t64 = e.ecom_time(&m, 64, 64);
        assert!(t8 < t2, "parallelism should pay off early: {t2} vs {t8}");
        assert!(
            t64 > t8,
            "message overhead should dominate late: {t8} vs {t64}"
        );
    }

    #[test]
    fn systolic_cheaper_for_chatty_transfers() {
        let e = EdgeWorkload::all_to_all(64e3);
        assert!(systolic_beats_message_for(&e, 8, 8));
    }

    #[test]
    fn zero_procs_is_infinite() {
        let w = TaskWorkload::parallel("t", 1.0, 1);
        assert!(w.exec_time(&machine(), 0).is_infinite());
        let e = EdgeWorkload::aligned(1.0);
        assert!(e.ecom_time(&machine(), 0, 1).is_infinite());
        assert!(e.icom_time(&machine(), 0).is_infinite());
    }

    #[test]
    fn cost_closures_match_direct_calls() {
        let w = TaskWorkload::parallel("t", 1e6, 64);
        let e = EdgeWorkload::all_to_all(1e5);
        let m = machine();
        let ec = w.exec_cost(&m);
        let xc = e.ecom_cost(&m);
        let ic = e.icom_cost(&m);
        for p in 1..=16 {
            assert_eq!(ec.eval(p), w.exec_time(&m, p));
            assert_eq!(ic.eval(p), e.icom_time(&m, p));
            for q in 1..=16 {
                assert_eq!(xc.eval(p, q), e.ecom_time(&m, p, q));
            }
        }
    }

    #[test]
    #[should_panic]
    fn app_workload_shape_checked() {
        let _ = AppWorkload::new(
            "bad",
            vec![TaskWorkload::parallel("a", 1.0, 1)],
            vec![EdgeWorkload::aligned(1.0)],
        );
    }
}
