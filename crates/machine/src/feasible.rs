//! Machine-level feasibility of mappings and the feasible-optimal search.
//!
//! A mapping that is optimal under the cost model may still be impossible
//! to realise on the machine (§6.1): every module instance must occupy a
//! rectangular subarray, all instances must pack onto the array at once,
//! and in systolic mode the logical pathways connecting adjacent modules
//! must fit the per-link pathway limit. Table 1's "Optimal Feasible
//! Mapping" columns are the result of re-optimising under these
//! constraints; [`feasible_optimal`] reproduces that search by enumerating
//! `(processors, replicas)` choices per module in throughput order and
//! returning the best candidate that passes [`is_feasible`].

use pipemap_chain::{throughput, Mapping, ModuleAssignment, Problem};

use crate::config::{CommMode, MachineConfig};
use crate::pack::{pack_rectangles, PackRequest, Placement};

/// Outcome of a machine-feasibility check.
#[derive(Clone, Debug)]
pub enum Feasibility {
    /// A concrete placement exists.
    Feasible(Vec<Placement>),
    /// Provably or practically infeasible, with the reason.
    Infeasible(&'static str),
}

impl Feasibility {
    /// True for [`Feasibility::Feasible`].
    pub fn is_feasible(&self) -> bool {
        matches!(self, Feasibility::Feasible(_))
    }
}

/// Number of distinct (sender-instance, receiver-instance) pairs that
/// carry traffic between adjacent modules replicated `r1` and `r2` times:
/// data set `n` flows from instance `n mod r1` to instance `n mod r2`, so
/// the pairs repeat with period `lcm(r1, r2)`.
pub fn pathway_pairs(r1: usize, r2: usize) -> usize {
    fn gcd(a: usize, b: usize) -> usize {
        if b == 0 {
            a
        } else {
            gcd(b, a % b)
        }
    }
    r1 / gcd(r1, r2) * r2
}

/// Check whether `mapping` can be realised on `machine`: rectangular
/// instances must pack, and (systolic mode) the logical pathways
/// connecting adjacent modules' instances — routed XY over the concrete
/// placement — must not overload any physical link.
///
/// The pathway check runs in two stages: a cheap pre-filter (the pathway
/// pairs of a boundary must fit through the array's larger bisection),
/// then an exact per-link load check on the packed placement via
/// [`crate::route::pathway_load`].
pub fn is_feasible(machine: &MachineConfig, mapping: &Mapping) -> Feasibility {
    // Rectangle packing of every instance.
    let mut areas = Vec::new();
    for m in &mapping.modules {
        for _ in 0..m.replicas {
            areas.push(m.procs);
        }
    }
    let total: usize = areas.iter().sum();
    if total > machine.total_procs() {
        return Feasibility::Infeasible("mapping uses more processors than the array has");
    }
    // Systolic pathway budget across a bisection (cheap pre-filter).
    if machine.mode == CommMode::Systolic {
        let capacity = machine
            .max_pathways_per_link
            .saturating_mul(machine.rows.max(machine.cols));
        for w in mapping.modules.windows(2) {
            if pathway_pairs(w[0].replicas, w[1].replicas) > capacity {
                return Feasibility::Infeasible("pathway pairs exceed link capacity");
            }
        }
    }
    let placements = match pack_rectangles(&PackRequest::new(machine.rows, machine.cols, areas)) {
        Some(p) => p,
        None => return Feasibility::Infeasible("module instances do not pack as rectangles"),
    };
    // Exact pathway routing over the placement.
    if machine.mode == CommMode::Systolic && mapping.modules.len() > 1 {
        let groups = group_placements(mapping, &placements);
        let load = crate::route::pathway_load(&groups);
        if load.max_per_link > machine.max_pathways_per_link {
            return Feasibility::Infeasible("a physical link exceeds its pathway limit");
        }
    }
    Feasibility::Feasible(placements)
}

/// Group a flat placement list (item-indexed over the mapping's instances
/// in module order) into per-module placement vectors.
fn group_placements(mapping: &Mapping, placements: &[Placement]) -> Vec<Vec<Placement>> {
    let mut by_item: Vec<Option<Placement>> = vec![None; placements.len()];
    for p in placements {
        by_item[p.item] = Some(*p);
    }
    let mut groups = Vec::with_capacity(mapping.modules.len());
    let mut next = 0;
    for m in &mapping.modules {
        let mut g = Vec::with_capacity(m.replicas);
        for _ in 0..m.replicas {
            g.push(by_item[next].expect("every instance was placed"));
            next += 1;
        }
        groups.push(g);
    }
    groups
}

/// Options for [`feasible_optimal`].
#[derive(Clone, Copy, Debug)]
pub struct FeasibleSearch {
    /// Maximum number of candidate mappings to enumerate before giving up.
    pub max_candidates: usize,
    /// Check at most this many of the top-ranked candidates for
    /// feasibility (each check is a packing search).
    pub max_checks: usize,
}

impl Default for FeasibleSearch {
    fn default() -> Self {
        Self {
            max_candidates: 4_000_000,
            max_checks: 20_000,
        }
    }
}

/// Find the best machine-feasible mapping with the given clustering:
/// enumerate per-module `(procs-per-instance, replicas)` choices (bounded
/// by floors, replicability, and the processor budget), rank by model
/// throughput, and return the best candidate accepted by [`is_feasible`].
///
/// Returns `None` if no feasible candidate exists within the search
/// bounds. The clustering is taken as given (the paper fixes the
/// clustering from the unconstrained optimum before re-optimising the
/// quantitative decisions).
pub fn feasible_optimal(
    problem: &Problem,
    machine: &MachineConfig,
    clustering: &[(usize, usize)],
    search: FeasibleSearch,
) -> Option<(Mapping, f64)> {
    let p_total = problem.total_procs;
    // Per-module options: (procs_per_instance, replicas).
    let mut options: Vec<Vec<(usize, usize)>> = Vec::with_capacity(clustering.len());
    for &(first, last) in clustering {
        let floor = problem.module_floor(first, last)?;
        if floor > p_total {
            return None;
        }
        let replicable = problem
            .module_replication(first, last, p_total)
            .map(|r| r.instances > 1)
            .unwrap_or(false)
            || problem.chain.range_replicable(first, last);
        let mut opts = Vec::new();
        for procs in floor..=p_total {
            let max_r = if replicable { p_total / procs } else { 1 };
            for r in 1..=max_r {
                opts.push((procs, r));
            }
        }
        options.push(opts);
    }

    // Enumerate combinations with budget pruning.
    let mut candidates: Vec<Vec<(usize, usize)>> = Vec::new();
    let mut cur: Vec<(usize, usize)> = Vec::new();
    fn rec(
        options: &[Vec<(usize, usize)>],
        budget: usize,
        cur: &mut Vec<(usize, usize)>,
        out: &mut Vec<Vec<(usize, usize)>>,
        cap: usize,
    ) {
        if out.len() >= cap {
            return;
        }
        let idx = cur.len();
        if idx == options.len() {
            out.push(cur.clone());
            return;
        }
        for &(procs, r) in &options[idx] {
            let used = procs * r;
            if used > budget {
                continue;
            }
            cur.push((procs, r));
            rec(options, budget - used, cur, out, cap);
            cur.pop();
        }
    }
    rec(
        &options,
        p_total,
        &mut cur,
        &mut candidates,
        search.max_candidates,
    );

    // Rank by model throughput, descending.
    let mut ranked: Vec<(f64, Mapping)> = candidates
        .into_iter()
        .map(|combo| {
            let modules = clustering
                .iter()
                .zip(&combo)
                .map(|(&(first, last), &(procs, r))| ModuleAssignment::new(first, last, r, procs))
                .collect();
            let m = Mapping::new(modules);
            (throughput(&problem.chain, &m), m)
        })
        .collect();
    ranked.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));

    for (thr, mapping) in ranked.into_iter().take(search.max_checks) {
        if is_feasible(machine, &mapping).is_feasible() {
            return Some((mapping, thr));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipemap_chain::{ChainBuilder, Edge, Task};
    use pipemap_model::{MemoryReq, PolyEcom, PolyUnary};

    #[test]
    fn pathway_pairs_is_lcm() {
        assert_eq!(pathway_pairs(1, 1), 1);
        assert_eq!(pathway_pairs(2, 3), 6);
        assert_eq!(pathway_pairs(4, 6), 12);
        assert_eq!(pathway_pairs(8, 8), 8);
    }

    #[test]
    fn paper_mappings_are_feasible() {
        let msg = MachineConfig::iwarp_message();
        // Table 1 row 1: (3 procs × 8) + (4 procs × 10).
        let m = Mapping::new(vec![
            ModuleAssignment::new(0, 0, 8, 3),
            ModuleAssignment::new(1, 2, 10, 4),
        ]);
        assert!(is_feasible(&msg, &m).is_feasible());
        // Table 1 row 2 under systolic: (3×6) + (4×11).
        let sys = MachineConfig::iwarp_systolic();
        let m2 = Mapping::new(vec![
            ModuleAssignment::new(0, 0, 6, 3),
            ModuleAssignment::new(1, 2, 11, 4),
        ]);
        assert!(is_feasible(&sys, &m2).is_feasible());
    }

    #[test]
    fn prime_instance_size_infeasible() {
        let msg = MachineConfig::iwarp_message();
        // 13-processor instances cannot be rectangles on 8×8.
        let m = Mapping::new(vec![
            ModuleAssignment::new(0, 0, 2, 12),
            ModuleAssignment::new(1, 2, 3, 13),
        ]);
        assert!(!is_feasible(&msg, &m).is_feasible());
    }

    #[test]
    fn pathway_limit_rejects_extreme_replication() {
        let mut sys = MachineConfig::iwarp_systolic();
        sys.max_pathways_per_link = 1; // capacity 8
        let m = Mapping::new(vec![
            ModuleAssignment::new(0, 0, 8, 1),  // r = 8
            ModuleAssignment::new(1, 1, 56, 1), // r = 56 → lcm = 56 > 8
        ]);
        assert!(!is_feasible(&sys, &m).is_feasible());
    }

    #[test]
    fn overallocation_rejected() {
        let msg = MachineConfig::iwarp_message();
        let m = Mapping::new(vec![ModuleAssignment::new(0, 0, 1, 65)]);
        assert!(!is_feasible(&msg, &m).is_feasible());
    }

    fn toy_problem(procs: usize) -> Problem {
        let chain = ChainBuilder::new()
            .task(
                Task::new("a", PolyUnary::perfectly_parallel(10.0))
                    .with_memory(MemoryReq::new(0.0, 3.0)),
            )
            .edge(Edge::new(
                PolyUnary::zero(),
                PolyEcom::new(0.1, 0.5, 0.5, 0.0, 0.0),
            ))
            .task(
                Task::new("b", PolyUnary::perfectly_parallel(14.0))
                    .with_memory(MemoryReq::new(0.0, 4.0)),
            )
            .build();
        Problem::new(chain, procs, 1.0)
    }

    #[test]
    fn feasible_optimal_finds_a_packing() {
        let machine = MachineConfig::iwarp_message();
        let problem = toy_problem(machine.total_procs());
        let (mapping, thr) = feasible_optimal(
            &problem,
            &machine,
            &[(0, 0), (1, 1)],
            FeasibleSearch::default(),
        )
        .expect("some feasible mapping exists");
        assert!(thr > 0.0);
        assert!(is_feasible(&machine, &mapping).is_feasible());
        assert!(mapping.total_procs() <= 64);
    }

    #[test]
    fn feasible_optimal_never_beats_unconstrained() {
        let machine = MachineConfig::iwarp_message();
        let problem = toy_problem(machine.total_procs());
        let (_, feas_thr) = feasible_optimal(
            &problem,
            &machine,
            &[(0, 0), (1, 1)],
            FeasibleSearch::default(),
        )
        .unwrap();
        let unconstrained = pipemap_core_oracle(&problem);
        assert!(feas_thr <= unconstrained + 1e-9);
    }

    /// Small local oracle: best throughput over singleton-clustered
    /// (procs, replicas) combos without machine constraints.
    fn pipemap_core_oracle(problem: &Problem) -> f64 {
        let p = problem.total_procs;
        let mut best = 0.0_f64;
        for p1 in 1..=p {
            for r1 in 1..=(p / p1) {
                for p2 in 1..=p {
                    for r2 in 1..=(p / p2.max(1)) {
                        if p1 * r1 + p2 * r2 > p {
                            continue;
                        }
                        let m = Mapping::new(vec![
                            ModuleAssignment::new(0, 0, r1, p1),
                            ModuleAssignment::new(1, 1, r2, p2),
                        ]);
                        if problem.module_floor(0, 0).unwrap() <= p1
                            && problem.module_floor(1, 1).unwrap() <= p2
                        {
                            best = best.max(throughput(&problem.chain, &m));
                        }
                    }
                }
            }
        }
        best
    }
}
