//! # pipemap-machine
//!
//! A parametric model of a 2D processor-array multicomputer — the stand-in
//! for the 64-processor Intel iWarp on which the paper's experiments ran.
//!
//! The crate provides:
//!
//! * [`config`] — machine parameters: array geometry, per-flop time,
//!   per-message software overhead, per-byte link cost, and the two
//!   communication modes the paper evaluates (*message passing* and
//!   *systolic* pathway-based communication);
//! * [`workload`] — *ground-truth* cost generation: task workloads are
//!   described by operation counts (sequential/parallel flops, work grain,
//!   per-processor overhead, internal collectives) and edge workloads by
//!   transferred bytes and a redistribution pattern; the synthesised time
//!   functions contain ceil-based load imbalance and logarithmic collective
//!   terms, so the paper's polynomial model (§5) fits them *approximately*
//!   — reproducing the fitted-model error the paper reports;
//! * [`synth`] — assembling a [`pipemap_chain::Problem`] from workloads and
//!   a machine;
//! * [`pack`] / [`feasible`] — the Fx compiler's constraint that every
//!   module instance occupies a *rectangular subarray* (§6.1): rectangle
//!   packing onto the array, systolic pathway limits, and the
//!   "feasible-optimal" mapping search used for Table 1.

pub mod config;
pub mod feasible;
pub mod pack;
pub mod route;
pub mod synth;
pub mod workload;

pub use config::{CommMode, MachineConfig};
pub use feasible::{feasible_optimal, is_feasible, Feasibility, FeasibleSearch};
pub use pack::{pack_rectangles, PackRequest, Placement};
pub use route::{pathway_load, xy_route, PathwayLoad};
pub use synth::{synthesize_chain, synthesize_problem};
pub use workload::{AppWorkload, CollectivePattern, EdgeWorkload, TaskWorkload, TransferPattern};
