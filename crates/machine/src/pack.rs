//! Rectangle packing onto the processor array.
//!
//! The Fx compiler "allows only a rectangular subarray of processors to be
//! mapped to a module" (§6.1), and all modules must be placed on the array
//! simultaneously — so a mapping is machine-feasible only if one rectangle
//! per module *instance* (area = its processor count) can be packed into
//! the `rows × cols` grid without overlap. Some processor counts admit no
//! rectangle at all on a given array (e.g. 13 processors on an 8×8 array:
//! 13 is prime and 1×13 exceeds both dimensions) — this is precisely why
//! the paper's Table 1 reports a *feasible* optimal mapping different from
//! the unconstrained optimum for the 512×512/systolic configuration.
//!
//! Packing is exact-cover backtracking with a node budget: the first free
//! cell (row-major) must be the top-left corner of some rectangle, so the
//! branching factor is the number of distinct (area, shape) choices.

/// A packing request: rectangle areas to place (one per module instance).
#[derive(Clone, Debug)]
pub struct PackRequest {
    /// Grid rows.
    pub rows: usize,
    /// Grid columns.
    pub cols: usize,
    /// Required rectangle areas, one per instance.
    pub areas: Vec<usize>,
    /// Backtracking node budget (default via [`PackRequest::new`]).
    pub node_budget: u64,
}

impl PackRequest {
    /// A request with the default node budget (2 million nodes).
    pub fn new(rows: usize, cols: usize, areas: Vec<usize>) -> Self {
        Self {
            rows,
            cols,
            areas,
            node_budget: 2_000_000,
        }
    }
}

/// One placed rectangle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Placement {
    /// Index into the request's `areas`.
    pub item: usize,
    /// Top row of the rectangle.
    pub row: usize,
    /// Left column of the rectangle.
    pub col: usize,
    /// Rectangle height.
    pub height: usize,
    /// Rectangle width.
    pub width: usize,
}

/// The legal rectangle shapes `(h, w)` for `area` on a `rows × cols`
/// grid (`h·w = area`, `h ≤ rows`, `w ≤ cols`), widest first.
pub fn shapes(area: usize, rows: usize, cols: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for h in 1..=rows.min(area) {
        if area.is_multiple_of(h) {
            let w = area / h;
            if w <= cols {
                out.push((h, w));
            }
        }
    }
    out
}

struct Packer {
    rows: usize,
    cols: usize,
    /// One bitmask per row; bit `c` set means cell occupied.
    grid: Vec<u64>,
    nodes: u64,
    budget: u64,
}

impl Packer {
    fn fits(&self, row: usize, col: usize, h: usize, w: usize) -> bool {
        if row + h > self.rows || col + w > self.cols {
            return false;
        }
        let mask = (((1u128 << w) - 1) as u64) << col;
        self.grid[row..row + h].iter().all(|&r| r & mask == 0)
    }

    fn set(&mut self, row: usize, col: usize, h: usize, w: usize, occupied: bool) {
        let mask = (((1u128 << w) - 1) as u64) << col;
        for r in &mut self.grid[row..row + h] {
            if occupied {
                *r |= mask;
            } else {
                *r &= !mask;
            }
        }
    }

    fn first_free(&self) -> Option<(usize, usize)> {
        for (ri, &r) in self.grid.iter().enumerate() {
            let free = !r & (((1u128 << self.cols) - 1) as u64);
            if free != 0 {
                return Some((ri, free.trailing_zeros() as usize));
            }
        }
        None
    }

    /// `remaining[a]` = count of unplaced instances of area `a`.
    fn solve(
        &mut self,
        remaining: &mut Vec<(usize, usize)>, // (area, count), sorted desc by area
        placements: &mut Vec<(usize, usize, usize, usize, usize)>, // (area, row, col, h, w)
    ) -> bool {
        self.nodes += 1;
        if self.nodes > self.budget {
            return false;
        }
        if remaining.iter().all(|&(_, c)| c == 0) {
            return true;
        }
        let Some((row, col)) = self.first_free() else {
            return false; // items remain but the grid is full
        };
        for i in 0..remaining.len() {
            let (area, count) = remaining[i];
            if count == 0 {
                continue;
            }
            for (h, w) in shapes(area, self.rows, self.cols) {
                if !self.fits(row, col, h, w) {
                    continue;
                }
                self.set(row, col, h, w, true);
                remaining[i].1 -= 1;
                placements.push((area, row, col, h, w));
                if self.solve(remaining, placements) {
                    return true;
                }
                placements.pop();
                remaining[i].1 += 1;
                self.set(row, col, h, w, false);
            }
        }
        // Nothing can cover the first free cell: dead end. (Leaving the
        // cell permanently empty is allowed only if no instance could ever
        // use it, which we approximate by masking it off and recursing.)
        self.set(row, col, 1, 1, true);
        let ok = self.solve(remaining, placements);
        self.set(row, col, 1, 1, false);
        ok
    }
}

/// Pack the requested rectangles; `None` if no packing was found within
/// the node budget (either genuinely infeasible or budget-exhausted).
pub fn pack_rectangles(request: &PackRequest) -> Option<Vec<Placement>> {
    assert!(request.cols <= 64, "grid wider than 64 columns unsupported");
    let total: usize = request.areas.iter().sum();
    if total > request.rows * request.cols {
        return None;
    }
    // Any area with no legal shape is immediately infeasible.
    for &a in &request.areas {
        if a == 0 || shapes(a, request.rows, request.cols).is_empty() {
            return None;
        }
    }
    // Group identical areas (instances are interchangeable).
    let mut groups: Vec<(usize, usize)> = Vec::new();
    let mut sorted = request.areas.clone();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    for a in sorted {
        match groups.last_mut() {
            Some(g) if g.0 == a => g.1 += 1,
            _ => groups.push((a, 1)),
        }
    }

    let mut packer = Packer {
        rows: request.rows,
        cols: request.cols,
        grid: vec![0; request.rows],
        nodes: 0,
        budget: request.node_budget,
    };
    let mut placements = Vec::new();
    if !packer.solve(&mut groups, &mut placements) {
        return None;
    }

    // Re-attach original item indices by area.
    let mut by_area: std::collections::HashMap<usize, Vec<usize>> =
        std::collections::HashMap::new();
    for (i, &a) in request.areas.iter().enumerate() {
        by_area.entry(a).or_default().push(i);
    }
    let out = placements
        .into_iter()
        .map(|(area, row, col, h, w)| {
            let item = by_area.get_mut(&area).unwrap().pop().unwrap();
            Placement {
                item,
                row,
                col,
                height: h,
                width: w,
            }
        })
        .collect();
    Some(out)
}

/// Render a packing as an ASCII grid (instances labelled `A`, `B`, …),
/// used for the paper's Figure 6-style mapping diagrams.
pub fn render_packing(rows: usize, cols: usize, placements: &[Placement]) -> String {
    let mut grid = vec![vec!['.'; cols]; rows];
    for (n, p) in placements.iter().enumerate() {
        let label = char::from(b'A' + (n % 26) as u8);
        for row in grid.iter_mut().skip(p.row).take(p.height) {
            for cell in row.iter_mut().skip(p.col).take(p.width) {
                *cell = label;
            }
        }
    }
    grid.into_iter()
        .map(|row| row.into_iter().collect::<String>())
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_valid(rows: usize, cols: usize, areas: &[usize], ps: &[Placement]) {
        assert_eq!(ps.len(), areas.len());
        let mut grid = vec![vec![false; cols]; rows];
        let mut seen = vec![false; areas.len()];
        for p in ps {
            assert!(!seen[p.item]);
            seen[p.item] = true;
            assert_eq!(p.height * p.width, areas[p.item]);
            #[allow(clippy::needless_range_loop)] // r, c also name the cell
            for r in p.row..p.row + p.height {
                for c in p.col..p.col + p.width {
                    assert!(!grid[r][c], "overlap at ({r},{c})");
                    grid[r][c] = true;
                }
            }
        }
    }

    #[test]
    fn shapes_enumeration() {
        assert_eq!(shapes(4, 8, 8), vec![(1, 4), (2, 2), (4, 1)]);
        assert_eq!(shapes(13, 8, 8), vec![]); // prime > max dim
        assert_eq!(shapes(13, 13, 8), vec![(13, 1)]);
        assert_eq!(shapes(64, 8, 8), vec![(8, 8)]);
    }

    #[test]
    fn packs_paper_table1_row1() {
        // FFT-Hist 256/message optimal: 8 instances of 3 procs + 10
        // instances of 4 procs = 64 on the 8×8 array. The paper executed
        // this mapping, so it must pack.
        let mut areas = vec![3; 8];
        areas.extend(vec![4; 10]);
        let req = PackRequest::new(8, 8, areas.clone());
        let ps = pack_rectangles(&req).expect("paper's mapping must be feasible");
        assert_valid(8, 8, &areas, &ps);
    }

    #[test]
    fn paper_table1_512_message_needs_the_footnote() {
        // 512/message optimal: 1×20 + 3×14 = 62 of 64. The three 14s only
        // shape as 2×7/7×2 and the 20 as 4×5/5×4, and no arrangement of
        // all four fits an 8×8 array — which is exactly why Table 2 marks
        // this configuration with "measured results extrapolated from
        // execution with at least one less module instance".
        assert!(pack_rectangles(&PackRequest::new(8, 8, vec![20, 14, 14, 14])).is_none());
        // With one fewer instance of module 2 it packs, as the paper ran.
        let areas = vec![20, 14, 14];
        let ps = pack_rectangles(&PackRequest::new(8, 8, areas.clone())).unwrap();
        assert_valid(8, 8, &areas, &ps);
    }

    #[test]
    fn prime_13_is_infeasible_on_8x8() {
        // The Table 1 feasibility gap: a 13-processor module instance has
        // no rectangular shape on an 8×8 array.
        assert!(pack_rectangles(&PackRequest::new(8, 8, vec![13])).is_none());
        // But 12 has plenty.
        assert!(pack_rectangles(&PackRequest::new(8, 8, vec![12])).is_some());
    }

    #[test]
    fn overfull_request_rejected() {
        assert!(pack_rectangles(&PackRequest::new(4, 4, vec![10, 10])).is_none());
    }

    #[test]
    fn exact_tiling() {
        // Four 2×2s tile a 4×4 exactly.
        let areas = vec![4, 4, 4, 4];
        let ps = pack_rectangles(&PackRequest::new(4, 4, areas.clone())).unwrap();
        assert_valid(4, 4, &areas, &ps);
    }

    #[test]
    fn awkward_mix_with_holes() {
        // 3+3+5 = 11 on 4×4 (5 must be 1×... 5 is prime: 1×5 > 4 → no
        // shape → infeasible).
        assert!(pack_rectangles(&PackRequest::new(4, 4, vec![3, 3, 5])).is_none());
        // 3+3+6 = 12 on 4×4: 6 = 2×3; feasible with holes.
        let areas = vec![3, 3, 6];
        let ps = pack_rectangles(&PackRequest::new(4, 4, areas.clone())).unwrap();
        assert_valid(4, 4, &areas, &ps);
    }

    #[test]
    fn zero_area_rejected() {
        assert!(pack_rectangles(&PackRequest::new(4, 4, vec![0])).is_none());
    }

    #[test]
    fn render_shows_all_instances() {
        let areas = vec![4, 4];
        let ps = pack_rectangles(&PackRequest::new(2, 4, areas)).unwrap();
        let s = render_packing(2, 4, &ps);
        assert!(s.contains('A') && s.contains('B'));
        assert!(!s.contains('.'));
    }
}
