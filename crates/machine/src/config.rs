//! Machine parameters.
//!
//! The reference point is the Intel iWarp used in §6: an 8×8 array of
//! 20 MFLOPS cells with 40 MB/s links, programmable either through a
//! message-passing library (higher per-message software overhead) or
//! through *systolic* hardware pathways (near-zero per-message cost, but a
//! limited number of logical pathways may share a physical link — the
//! machine constraint the paper says made some mappings infeasible).

/// How inter-module data moves (§6.3 evaluates both).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CommMode {
    /// Library message passing: every message pays a software overhead.
    Message,
    /// Systolic pathways: tiny per-message cost, but at most
    /// [`MachineConfig::max_pathways_per_link`] logical pathways may cross
    /// one physical link.
    Systolic,
}

impl CommMode {
    /// Short label used in reports and tables.
    pub fn label(&self) -> &'static str {
        match self {
            CommMode::Message => "Message",
            CommMode::Systolic => "Systolic",
        }
    }
}

/// A 2D processor-array multicomputer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MachineConfig {
    /// Array rows.
    pub rows: usize,
    /// Array columns.
    pub cols: usize,
    /// Seconds per floating-point operation on one cell.
    pub flop_time: f64,
    /// Memory capacity per processor, bytes.
    pub mem_per_proc: f64,
    /// Communication mode.
    pub mode: CommMode,
    /// Per-message software overhead, seconds (mode-dependent).
    pub msg_overhead: f64,
    /// Per-byte transfer time through a link, seconds.
    pub byte_time: f64,
    /// Fixed synchronisation cost per transfer step, seconds.
    pub sync_overhead: f64,
    /// Systolic mode: maximum logical pathways per physical link.
    pub max_pathways_per_link: usize,
}

impl MachineConfig {
    /// Total processors.
    pub fn total_procs(&self) -> usize {
        self.rows * self.cols
    }

    /// An iWarp-like 8×8 array programmed with message passing:
    /// 20 MFLOPS cells, 40 MB/s links, ~30 µs per-message software cost.
    pub fn iwarp_message() -> Self {
        Self {
            rows: 8,
            cols: 8,
            flop_time: 50e-9,
            mem_per_proc: 0.5e6,
            mode: CommMode::Message,
            msg_overhead: 30e-6,
            // 40 MB/s links, but every transferred byte is also copied
            // into and out of message buffers by a 20 MHz cell — the
            // effective per-byte cost is dominated by those copies.
            byte_time: 300e-9,
            sync_overhead: 20e-6,
            max_pathways_per_link: usize::MAX,
        }
    }

    /// The same array using systolic pathways: per-message cost drops two
    /// orders of magnitude, but each physical link carries at most a few
    /// logical pathways.
    pub fn iwarp_systolic() -> Self {
        Self {
            mode: CommMode::Systolic,
            msg_overhead: 0.6e-6,
            sync_overhead: 2e-6,
            byte_time: 250e-9,
            // Calibrated so that every replication pattern the paper's
            // tool accepted fits under XY routing of a first-fit packing
            // (FFT-Hist 256/systolic at r = 6 × r = 11 routes 66 pathways
            // with a worst link load of 30), while runaway replication is
            // still rejected by the bisection pre-filter.
            max_pathways_per_link: 32,
            ..Self::iwarp_message()
        }
    }

    /// A Paragon-like 16×8 mesh: faster i860 cells (75 MFLOPS nominal,
    /// ~13 ns effective per flop at the same efficiency discount), more
    /// memory per node, but heavier message-passing software (NX ~70 µs
    /// per message) and 175 MB/s links shared through buffer copies.
    pub fn paragon() -> Self {
        Self {
            rows: 16,
            cols: 8,
            flop_time: 13e-9,
            mem_per_proc: 16e6,
            mode: CommMode::Message,
            msg_overhead: 70e-6,
            byte_time: 60e-9,
            sync_overhead: 40e-6,
            max_pathways_per_link: usize::MAX,
        }
    }

    /// A network-of-workstations target (PVM over Ethernet, §1's last
    /// listed target): few, fast nodes with very expensive messages —
    /// the regime where clustering dominates every other decision.
    pub fn workstation_cluster(nodes: usize) -> Self {
        Self {
            rows: 1,
            cols: nodes,
            flop_time: 20e-9,
            mem_per_proc: 64e6,
            mode: CommMode::Message,
            msg_overhead: 1e-3,
            byte_time: 800e-9,
            sync_overhead: 500e-6,
            max_pathways_per_link: usize::MAX,
        }
    }

    /// Change the per-processor memory capacity.
    pub fn with_memory(mut self, bytes: f64) -> Self {
        self.mem_per_proc = bytes;
        self
    }

    /// Change the array geometry.
    pub fn with_geometry(mut self, rows: usize, cols: usize) -> Self {
        self.rows = rows;
        self.cols = cols;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iwarp_has_64_processors() {
        assert_eq!(MachineConfig::iwarp_message().total_procs(), 64);
        assert_eq!(MachineConfig::iwarp_systolic().total_procs(), 64);
    }

    #[test]
    fn systolic_has_cheaper_messages() {
        let m = MachineConfig::iwarp_message();
        let s = MachineConfig::iwarp_systolic();
        assert!(s.msg_overhead < m.msg_overhead / 10.0);
        assert_eq!(s.mode, CommMode::Systolic);
        assert!(s.max_pathways_per_link < usize::MAX);
    }

    #[test]
    fn builders_compose() {
        let m = MachineConfig::iwarp_message()
            .with_memory(1e6)
            .with_geometry(4, 4);
        assert_eq!(m.total_procs(), 16);
        assert_eq!(m.mem_per_proc, 1e6);
    }

    #[test]
    fn labels() {
        assert_eq!(CommMode::Message.label(), "Message");
        assert_eq!(CommMode::Systolic.label(), "Systolic");
    }

    #[test]
    fn paragon_shape() {
        let m = MachineConfig::paragon();
        assert_eq!(m.total_procs(), 128);
        assert!(m.flop_time < MachineConfig::iwarp_message().flop_time);
        assert!(m.msg_overhead > MachineConfig::iwarp_message().msg_overhead);
    }

    #[test]
    fn workstation_cluster_is_a_row() {
        let m = MachineConfig::workstation_cluster(8);
        assert_eq!(m.total_procs(), 8);
        assert_eq!(m.rows, 1);
        // Messages are three orders dearer than on the array machines.
        assert!(m.msg_overhead >= 1e-3);
    }
}
