//! Assemble a mapping problem from an application workload and a machine.

use pipemap_chain::{ChainBuilder, Edge, Problem, Task, TaskChain};

use crate::config::MachineConfig;
use crate::workload::AppWorkload;

/// Build the ground-truth [`TaskChain`] of `app` on `machine`: every cost
/// function is the machine-level time model (closures over the operation
/// counts), not a fitted polynomial. This is what the simulator executes;
/// the profiling pipeline in `pipemap-profile` fits the paper's polynomial
/// model *to* these functions.
pub fn synthesize_chain(app: &AppWorkload, machine: &MachineConfig) -> TaskChain {
    let mut builder = ChainBuilder::new();
    for (i, tw) in app.tasks.iter().enumerate() {
        let mut task = Task::new(tw.name.clone(), tw.exec_cost(machine)).with_memory(tw.memory);
        if !tw.replicable {
            task = task.not_replicable();
        }
        builder = builder.task(task);
        if i < app.edges.len() {
            let ew = &app.edges[i];
            builder = builder.edge(Edge::new(ew.icom_cost(machine), ew.ecom_cost(machine)));
        }
    }
    builder.build()
}

/// Build the full mapping [`Problem`] for `app` on `machine` (all
/// processors, the machine's per-processor memory, maximal replication).
pub fn synthesize_problem(app: &AppWorkload, machine: &MachineConfig) -> Problem {
    Problem::new(
        synthesize_chain(app, machine),
        machine.total_procs(),
        machine.mem_per_proc,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{EdgeWorkload, TaskWorkload};
    use pipemap_model::MemoryReq;

    fn app() -> AppWorkload {
        let mut a = TaskWorkload::parallel("a", 1e6, 64);
        a.memory = MemoryReq::new(0.0, 1.2e6);
        let b = TaskWorkload::parallel("b", 2e6, 64);
        AppWorkload::new("test", vec![a, b], vec![EdgeWorkload::all_to_all(1e5)])
    }

    #[test]
    fn chain_mirrors_workload() {
        let m = MachineConfig::iwarp_message();
        let c = synthesize_chain(&app(), &m);
        assert_eq!(c.len(), 2);
        assert_eq!(c.task(0).name, "a");
        // Costs agree with the workload's ground truth.
        let tw = TaskWorkload::parallel("b", 2e6, 64);
        for p in 1..=16 {
            assert_eq!(c.task(1).exec.eval(p), tw.exec_time(&m, p));
        }
    }

    #[test]
    fn problem_uses_machine_resources() {
        let m = MachineConfig::iwarp_message();
        let p = synthesize_problem(&app(), &m);
        assert_eq!(p.total_procs, 64);
        assert_eq!(p.mem_per_proc, m.mem_per_proc);
        // Task a needs 1.2 MB distributed over 0.5 MB/proc cells → 3.
        assert_eq!(p.task_floor(0), Some(3));
    }

    #[test]
    fn non_replicable_flag_propagates() {
        let mut a = app();
        a.tasks[0].replicable = false;
        let p = synthesize_problem(&a, &MachineConfig::iwarp_message());
        assert!(!p.chain.task(0).replicable);
        assert!(p.chain.task(1).replicable);
    }
}
