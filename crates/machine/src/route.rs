//! Pathway routing over a concrete placement.
//!
//! In systolic mode, iWarp connects communicating module instances with
//! *logical pathways* laid over the physical mesh links, and "a limit on
//! the number of pathways that can pass through a physical communication
//! link" made some mappings infeasible (§6.1). Given an actual placement
//! of module instances (from the rectangle packer), this module routes
//! one pathway per communicating instance pair with dimension-ordered
//! (XY) routing — the standard mesh routing discipline — and reports the
//! maximum pathway load on any link, which [`crate::feasible`] compares
//! against the per-link limit.

use crate::pack::Placement;

/// A unidirectional mesh link between orthogonally adjacent cells.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Link {
    /// Source cell (row, col).
    pub from: (usize, usize),
    /// Destination cell (row, col), orthogonally adjacent to `from`.
    pub to: (usize, usize),
}

/// The centre cell of a placement (used as its pathway endpoint).
fn anchor(p: &Placement) -> (usize, usize) {
    (p.row + p.height / 2, p.col + p.width / 2)
}

/// The links of the XY route from `a` to `b`: move along the row to the
/// target column, then along the column to the target row.
pub fn xy_route(a: (usize, usize), b: (usize, usize)) -> Vec<Link> {
    let mut links = Vec::new();
    let (r0, mut c) = a;
    while c != b.1 {
        let next = if c < b.1 { c + 1 } else { c - 1 };
        links.push(Link {
            from: (r0, c),
            to: (r0, next),
        });
        c = next;
    }
    let mut r = r0;
    while r != b.0 {
        let next = if r < b.0 { r + 1 } else { r - 1 };
        links.push(Link {
            from: (r, c),
            to: (next, c),
        });
        r = next;
    }
    links
}

/// Pathway load analysis of a placed mapping.
#[derive(Clone, Debug)]
pub struct PathwayLoad {
    /// Number of pathways routed.
    pub pathways: usize,
    /// The largest number of pathways sharing one physical link.
    pub max_per_link: usize,
    /// Total link-hops used by all pathways.
    pub total_hops: usize,
}

/// Route one pathway per communicating instance pair between adjacent
/// modules and measure per-link pathway load.
///
/// `groups[m]` holds the placements of module `m`'s instances, in
/// instance order. Data set `n` flows from instance `n mod r_m` of
/// module `m` to instance `n mod r_{m+1}` of module `m+1`, so the
/// communicating pairs of the boundary are the distinct
/// `(n mod r_m, n mod r_{m+1})` combinations — `lcm(r_m, r_{m+1})` of
/// them.
pub fn pathway_load(groups: &[Vec<Placement>]) -> PathwayLoad {
    use std::collections::HashMap;
    let mut loads: HashMap<Link, usize> = HashMap::new();
    let mut pathways = 0;
    let mut total_hops = 0;
    for pair in groups.windows(2) {
        let (up, down) = (&pair[0], &pair[1]);
        if up.is_empty() || down.is_empty() {
            continue;
        }
        let period = lcm(up.len(), down.len());
        for n in 0..period {
            let a = anchor(&up[n % up.len()]);
            let b = anchor(&down[n % down.len()]);
            pathways += 1;
            for link in xy_route(a, b) {
                total_hops += 1;
                *loads.entry(link).or_insert(0) += 1;
            }
        }
    }
    PathwayLoad {
        pathways,
        max_per_link: loads.values().copied().max().unwrap_or(0),
        total_hops,
    }
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Least common multiple.
pub fn lcm(a: usize, b: usize) -> usize {
    if a == 0 || b == 0 {
        return 0;
    }
    a / gcd(a, b) * b
}

#[cfg(test)]
mod tests {
    use super::*;

    fn place(item: usize, row: usize, col: usize, h: usize, w: usize) -> Placement {
        Placement {
            item,
            row,
            col,
            height: h,
            width: w,
        }
    }

    #[test]
    fn xy_route_lengths_are_manhattan() {
        assert_eq!(xy_route((0, 0), (0, 0)).len(), 0);
        assert_eq!(xy_route((0, 0), (0, 3)).len(), 3);
        assert_eq!(xy_route((0, 0), (2, 0)).len(), 2);
        assert_eq!(xy_route((1, 1), (3, 4)).len(), 5);
        assert_eq!(xy_route((3, 4), (1, 1)).len(), 5);
    }

    #[test]
    fn xy_route_goes_column_first_then_row() {
        let links = xy_route((0, 0), (2, 2));
        // First two hops move along the row (column index changes).
        assert_eq!(links[0].from, (0, 0));
        assert_eq!(links[0].to, (0, 1));
        assert_eq!(links[1].to, (0, 2));
        assert_eq!(links[2].to, (1, 2));
        assert_eq!(links[3].to, (2, 2));
    }

    #[test]
    fn route_links_are_adjacent() {
        for (a, b) in [((0, 0), (3, 5)), ((4, 2), (0, 0)), ((2, 2), (2, 2))] {
            for l in xy_route(a, b) {
                let dr = l.from.0.abs_diff(l.to.0);
                let dc = l.from.1.abs_diff(l.to.1);
                assert_eq!(dr + dc, 1, "non-adjacent hop {l:?}");
            }
        }
    }

    #[test]
    fn single_pair_load() {
        let groups = vec![vec![place(0, 0, 0, 1, 1)], vec![place(1, 0, 3, 1, 1)]];
        let load = pathway_load(&groups);
        assert_eq!(load.pathways, 1);
        assert_eq!(load.total_hops, 3);
        assert_eq!(load.max_per_link, 1);
    }

    #[test]
    fn replicated_pairs_follow_round_robin() {
        // 2 upstream × 3 downstream instances → lcm = 6 pathways.
        let groups = vec![
            vec![place(0, 0, 0, 1, 1), place(1, 1, 0, 1, 1)],
            vec![
                place(2, 0, 3, 1, 1),
                place(3, 1, 3, 1, 1),
                place(4, 2, 3, 1, 1),
            ],
        ];
        let load = pathway_load(&groups);
        assert_eq!(load.pathways, 6);
        assert!(load.max_per_link >= 2, "shared first hops must stack");
    }

    #[test]
    fn colocated_anchors_use_no_links() {
        let groups = vec![
            vec![place(0, 0, 0, 2, 2)],
            vec![place(1, 0, 0, 2, 2)], // same anchor (1, 1)
        ];
        let load = pathway_load(&groups);
        assert_eq!(load.pathways, 1);
        assert_eq!(load.total_hops, 0);
        assert_eq!(load.max_per_link, 0);
    }

    #[test]
    fn lcm_basics() {
        assert_eq!(lcm(2, 3), 6);
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(1, 7), 7);
        assert_eq!(lcm(0, 5), 0);
    }

    #[test]
    fn anchors_are_inside_placements() {
        let p = place(0, 2, 3, 2, 4);
        let (r, c) = anchor(&p);
        assert!(r >= p.row && r < p.row + p.height);
        assert!(c >= p.col && c < p.col + p.width);
    }
}
