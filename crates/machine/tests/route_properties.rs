//! Property tests of the XY pathway router.

use pipemap_machine::pack::Placement;
use pipemap_machine::route::{lcm, pathway_load, xy_route};
use proptest::prelude::*;

fn place(item: usize, row: usize, col: usize) -> Placement {
    Placement {
        item,
        row,
        col,
        height: 1,
        width: 1,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn route_length_is_manhattan_distance(
        a in (0..12usize, 0..12usize),
        b in (0..12usize, 0..12usize),
    ) {
        let links = xy_route(a, b);
        let manhattan = a.0.abs_diff(b.0) + a.1.abs_diff(b.1);
        prop_assert_eq!(links.len(), manhattan);
        // The route is connected: each hop starts where the previous
        // ended, from `a` to `b`.
        let mut at = a;
        for l in &links {
            prop_assert_eq!(l.from, at);
            at = l.to;
        }
        if manhattan > 0 {
            prop_assert_eq!(at, b);
        }
    }

    #[test]
    fn load_conservation(
        ups in prop::collection::vec((0..8usize, 0..8usize), 1..5),
        downs in prop::collection::vec((0..8usize, 0..8usize), 1..5),
    ) {
        let up: Vec<Placement> = ups.iter().enumerate().map(|(i, &(r, c))| place(i, r, c)).collect();
        let down: Vec<Placement> = downs
            .iter()
            .enumerate()
            .map(|(i, &(r, c))| place(100 + i, r, c))
            .collect();
        let load = pathway_load(&[up.clone(), down.clone()]);
        // Pathway count is the round-robin period.
        prop_assert_eq!(load.pathways, lcm(up.len(), down.len()));
        // Total hops equal the sum of Manhattan distances over the pairs.
        let period = lcm(up.len(), down.len());
        let mut expect_hops = 0;
        for n in 0..period {
            let a = &up[n % up.len()];
            let b = &down[n % down.len()];
            expect_hops += a.row.abs_diff(b.row) + a.col.abs_diff(b.col);
        }
        prop_assert_eq!(load.total_hops, expect_hops);
        // Max per link cannot exceed total hops and is 0 iff no hops.
        prop_assert!(load.max_per_link <= load.total_hops);
        prop_assert_eq!(load.max_per_link == 0, load.total_hops == 0);
    }

    #[test]
    fn lcm_properties(a in 1..60usize, b in 1..60usize) {
        let l = lcm(a, b);
        prop_assert_eq!(l % a, 0);
        prop_assert_eq!(l % b, 0);
        prop_assert!(l <= a * b);
        prop_assert_eq!(lcm(a, b), lcm(b, a));
    }
}
