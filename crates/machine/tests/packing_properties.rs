//! Property tests of the rectangle packer and feasibility engine.

use pipemap_machine::pack::{pack_rectangles, render_packing, shapes, PackRequest};
use proptest::prelude::*;

/// Check a claimed packing: right count, exact areas, inside the grid,
/// no overlaps.
fn assert_packing_valid(rows: usize, cols: usize, areas: &[usize]) -> Result<bool, TestCaseError> {
    let req = PackRequest::new(rows, cols, areas.to_vec());
    let Some(placements) = pack_rectangles(&req) else {
        return Ok(false);
    };
    prop_assert_eq!(placements.len(), areas.len());
    let mut grid = vec![vec![false; cols]; rows];
    let mut seen = vec![false; areas.len()];
    for p in &placements {
        prop_assert!(!seen[p.item], "item placed twice");
        seen[p.item] = true;
        prop_assert_eq!(p.height * p.width, areas[p.item], "wrong area");
        prop_assert!(p.row + p.height <= rows && p.col + p.width <= cols);
        #[allow(clippy::needless_range_loop)] // r, c are also coordinates in the message
        for r in p.row..p.row + p.height {
            for c in p.col..p.col + p.width {
                prop_assert!(!grid[r][c], "overlap at ({}, {})", r, c);
                grid[r][c] = true;
            }
        }
    }
    Ok(true)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn packings_are_always_valid(
        rows in 2..8usize,
        cols in 2..8usize,
        areas in prop::collection::vec(1..12usize, 1..8),
    ) {
        let _ = assert_packing_valid(rows, cols, &areas)?;
    }

    #[test]
    fn single_rectangle_feasibility_equals_shape_existence(
        rows in 1..10usize,
        cols in 1..10usize,
        area in 1..80usize,
    ) {
        let can_pack = pack_rectangles(&PackRequest::new(rows, cols, vec![area])).is_some();
        let has_shape = !shapes(area, rows, cols).is_empty() && area <= rows * cols;
        prop_assert_eq!(can_pack, has_shape);
    }

    #[test]
    fn unit_squares_always_pack_up_to_capacity(
        rows in 1..8usize,
        cols in 1..8usize,
        n in 1..64usize,
    ) {
        let fits = n <= rows * cols;
        let packed =
            pack_rectangles(&PackRequest::new(rows, cols, vec![1; n])).is_some();
        prop_assert_eq!(packed, fits);
    }

    #[test]
    fn removing_an_item_preserves_feasibility(
        rows in 2..7usize,
        cols in 2..7usize,
        areas in prop::collection::vec(1..10usize, 2..7),
        drop_idx in 0..6usize,
    ) {
        // If the full set packs, any subset must pack too (monotonicity).
        if pack_rectangles(&PackRequest::new(rows, cols, areas.clone())).is_some() {
            let mut fewer = areas.clone();
            fewer.remove(drop_idx % fewer.len());
            prop_assert!(
                pack_rectangles(&PackRequest::new(rows, cols, fewer)).is_some(),
                "subset of a feasible packing became infeasible"
            );
        }
    }

    #[test]
    fn shapes_multiply_back_to_area(area in 1..200usize, rows in 1..16usize, cols in 1..16usize) {
        for (h, w) in shapes(area, rows, cols) {
            prop_assert_eq!(h * w, area);
            prop_assert!(h <= rows && w <= cols);
        }
    }

    #[test]
    fn render_marks_exactly_the_packed_cells(
        rows in 2..6usize,
        cols in 2..6usize,
        areas in prop::collection::vec(1..6usize, 1..5),
    ) {
        if let Some(p) = pack_rectangles(&PackRequest::new(rows, cols, areas.clone())) {
            let s = render_packing(rows, cols, &p);
            let filled = s.chars().filter(|c| c.is_ascii_alphabetic()).count();
            prop_assert_eq!(filled, areas.iter().sum::<usize>());
        }
    }
}
