//! Property tests of chain evaluation: the pre-computed cost tables must
//! agree with direct evaluation everywhere, and throughput must follow
//! the bottleneck formula exactly.

use pipemap_chain::{
    bottleneck_module, module_response, throughput, validate, ChainBuilder, CostTable, Edge,
    Mapping, ModuleAssignment, Problem, Task,
};
use pipemap_model::{MemoryReq, PolyEcom, PolyUnary};
use proptest::prelude::*;

fn arb_problem() -> impl Strategy<Value = Problem> {
    (
        prop::collection::vec(
            (
                0.0..2.0f64,
                0.0..8.0f64,
                0.0..0.2f64,
                0.0..40.0f64,
                any::<bool>(),
            ),
            1..6,
        ),
        prop::collection::vec((0.0..0.5f64, 0.0..2.0f64, 0.0..2.0f64, 0.0..0.1f64), 5),
        2..20usize,
    )
        .prop_map(|(tasks, edges, p)| {
            let k = tasks.len();
            let mut b = ChainBuilder::new();
            for (i, (c1, c2, c3, mem, rep)) in tasks.into_iter().enumerate() {
                let mut t = Task::new(format!("t{i}"), PolyUnary::new(c1, c2, c3))
                    .with_memory(MemoryReq::new(0.0, mem));
                if !rep {
                    t = t.not_replicable();
                }
                b = b.task(t);
                if i + 1 < k {
                    let (e1, e2, e3, e4) = edges[i];
                    b = b.edge(Edge::new(
                        PolyUnary::new(e1, e2 * 0.5, 0.0),
                        PolyEcom::new(e1, e2, e3, e4, e4),
                    ));
                }
            }
            Problem::new(b.build(), p, 25.0)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn cost_table_matches_direct_evaluation(problem in arb_problem()) {
        let table = CostTable::build(&problem);
        let chain = &problem.chain;
        for p in 1..=problem.total_procs {
            for i in 0..chain.len() {
                prop_assert!((table.exec(i, p) - chain.task(i).exec.eval(p)).abs() < 1e-9);
            }
            for e in 0..chain.len() - 1 {
                prop_assert!((table.icom(e, p) - chain.edge(e).icom.eval(p)).abs() < 1e-9);
                for q in (1..=problem.total_procs).step_by(3) {
                    prop_assert!(
                        (table.ecom(e, p, q) - chain.edge(e).ecom.eval(p, q)).abs() < 1e-9
                    );
                }
            }
        }
        // Module composition equals the summed members everywhere.
        for first in 0..chain.len() {
            for last in first..chain.len() {
                for p in (1..=problem.total_procs).step_by(2) {
                    let direct: f64 = (first..=last)
                        .map(|i| chain.task(i).exec.eval(p))
                        .sum::<f64>()
                        + (first..last).map(|e| chain.edge(e).icom.eval(p)).sum::<f64>();
                    prop_assert!((table.module_exec(first, last, p) - direct).abs() < 1e-9);
                }
                // Floors match the problem's computation.
                prop_assert_eq!(
                    table.module_floor(first, last),
                    problem.module_floor(first, last)
                );
            }
        }
    }

    #[test]
    fn throughput_is_exactly_the_bottleneck_formula(problem in arb_problem()) {
        // Build the singleton mapping at the floors if it fits.
        let k = problem.num_tasks();
        let mut modules = Vec::new();
        let mut used = 0;
        for i in 0..k {
            let f = problem.task_floor(i).unwrap();
            used += f;
            modules.push(ModuleAssignment::new(i, i, 1, f));
        }
        prop_assume!(used <= problem.total_procs);
        let mapping = Mapping::new(modules);
        validate(&problem, &mapping).unwrap();
        let thr = throughput(&problem.chain, &mapping);
        let worst = (0..k)
            .map(|i| module_response(&problem.chain, &mapping, i).effective())
            .fold(0.0f64, f64::max);
        if worst > 0.0 {
            prop_assert!((thr - 1.0 / worst).abs() <= 1e-12 * thr.abs().max(1.0));
        } else {
            prop_assert!(thr.is_infinite());
        }
        // The bottleneck index achieves the worst effective response.
        let b = bottleneck_module(&problem.chain, &mapping);
        let eff = module_response(&problem.chain, &mapping, b).effective();
        prop_assert!((eff - worst).abs() <= 1e-12 * worst.abs().max(1.0));
    }

    #[test]
    fn transfers_appear_in_both_neighbours(problem in arb_problem()) {
        let k = problem.num_tasks();
        prop_assume!(k >= 2);
        let per = problem.total_procs / k;
        prop_assume!(per >= 1);
        let floors_ok = (0..k).all(|i| problem.task_floor(i).is_some_and(|f| f <= per));
        prop_assume!(floors_ok);
        let mapping = Mapping::new(
            (0..k).map(|i| ModuleAssignment::new(i, i, 1, per)).collect(),
        );
        for i in 1..k {
            let out = module_response(&problem.chain, &mapping, i - 1).outgoing;
            let inc = module_response(&problem.chain, &mapping, i).incoming;
            prop_assert!((out - inc).abs() < 1e-12, "transfer asymmetry at edge {i}");
        }
    }

    #[test]
    fn validate_accepts_what_assignment_builds(problem in arb_problem()) {
        // Any assignment at/above floors within budget must validate.
        let k = problem.num_tasks();
        let mut total = 0;
        let mut floors = Vec::new();
        for i in 0..k {
            let f = problem.task_floor(i).unwrap();
            total += f;
            floors.push(f);
        }
        prop_assume!(total <= problem.total_procs);
        let assignment = pipemap_chain::Assignment(floors);
        let mapping = assignment.to_mapping(&problem).unwrap();
        prop_assert!(validate(&problem, &mapping).is_ok());
    }
}
