//! Structural and resource validation of mappings.

use std::fmt;

use pipemap_model::Procs;

use crate::mapping::Mapping;
use crate::problem::{Problem, ReplicationPolicy};

/// Why a mapping is invalid for a problem.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MappingError {
    /// The modules do not cover tasks `0..k` contiguously, in order.
    BadCoverage {
        /// Index of the first task not covered correctly.
        expected_first: usize,
    },
    /// Total processors over all instances exceed the budget.
    TooManyProcs {
        /// Processors the mapping consumes.
        used: Procs,
        /// Processors available.
        available: Procs,
    },
    /// A module instance received fewer processors than its memory floor.
    BelowFloor {
        /// Module index in the mapping.
        module: usize,
        /// Required minimum processors per instance.
        floor: Procs,
        /// Processors per instance in the mapping.
        procs: Procs,
    },
    /// A module can never run: its resident memory exceeds per-processor
    /// capacity at any count.
    NeverFits {
        /// Module index in the mapping.
        module: usize,
    },
    /// A module is replicated although it contains a non-replicable task
    /// or the policy forbids replication.
    ReplicationNotAllowed {
        /// Module index in the mapping.
        module: usize,
    },
}

impl fmt::Display for MappingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MappingError::BadCoverage { expected_first } => write!(
                f,
                "modules must cover the chain contiguously; coverage breaks at task {expected_first}"
            ),
            MappingError::TooManyProcs { used, available } => {
                write!(f, "mapping uses {used} processors but only {available} are available")
            }
            MappingError::BelowFloor { module, floor, procs } => write!(
                f,
                "module {module} has {procs} processors per instance, below its floor of {floor}"
            ),
            MappingError::NeverFits { module } => {
                write!(f, "module {module} cannot fit on any number of processors")
            }
            MappingError::ReplicationNotAllowed { module } => {
                write!(f, "module {module} is replicated but not replicable")
            }
        }
    }
}

impl std::error::Error for MappingError {}

/// Check that `mapping` is a valid solution shape for `problem`:
/// contiguous coverage, processor budget, per-module memory floors, and
/// replication legality. (It does *not* check machine-geometry feasibility;
/// that lives in `pipemap-machine`.)
pub fn validate(problem: &Problem, mapping: &Mapping) -> Result<(), MappingError> {
    // Coverage.
    let mut expected_first = 0;
    for m in &mapping.modules {
        if m.first != expected_first || m.last >= problem.num_tasks() {
            return Err(MappingError::BadCoverage { expected_first });
        }
        expected_first = m.last + 1;
    }
    if expected_first != problem.num_tasks() {
        return Err(MappingError::BadCoverage { expected_first });
    }

    // Budget.
    let used = mapping.total_procs();
    if used > problem.total_procs {
        return Err(MappingError::TooManyProcs {
            used,
            available: problem.total_procs,
        });
    }

    // Floors and replication.
    for (idx, m) in mapping.modules.iter().enumerate() {
        let Some(floor) = problem.module_floor(m.first, m.last) else {
            return Err(MappingError::NeverFits { module: idx });
        };
        if m.procs < floor {
            return Err(MappingError::BelowFloor {
                module: idx,
                floor,
                procs: m.procs,
            });
        }
        if m.replicas > 1 {
            let allowed = problem.replication == ReplicationPolicy::Maximal
                && problem.chain.range_replicable(m.first, m.last);
            if !allowed {
                return Err(MappingError::ReplicationNotAllowed { module: idx });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::ChainBuilder;
    use crate::edge::Edge;
    use crate::mapping::ModuleAssignment;
    use crate::task::Task;
    use pipemap_model::{MemoryReq, PolyUnary};

    fn problem() -> Problem {
        let t = |n: &str| {
            Task::new(n, PolyUnary::perfectly_parallel(1.0)).with_memory(MemoryReq::new(0.0, 20.0))
        };
        let c = ChainBuilder::new()
            .task(t("a"))
            .edge(Edge::free())
            .task(t("b").not_replicable())
            .edge(Edge::free())
            .task(t("c"))
            .build();
        Problem::new(c, 16, 10.0) // each task floor = 2
    }

    #[test]
    fn valid_mapping_passes() {
        let p = problem();
        let m = Mapping::new(vec![
            ModuleAssignment::new(0, 0, 2, 2),
            ModuleAssignment::new(1, 2, 1, 8),
        ]);
        assert_eq!(validate(&p, &m), Ok(()));
    }

    #[test]
    fn gap_in_coverage_detected() {
        let p = problem();
        let m = Mapping::new(vec![
            ModuleAssignment::new(0, 0, 1, 2),
            ModuleAssignment::new(2, 2, 1, 2),
        ]);
        assert_eq!(
            validate(&p, &m),
            Err(MappingError::BadCoverage { expected_first: 1 })
        );
    }

    #[test]
    fn missing_tail_detected() {
        let p = problem();
        let m = Mapping::new(vec![ModuleAssignment::new(0, 1, 1, 4)]);
        assert_eq!(
            validate(&p, &m),
            Err(MappingError::BadCoverage { expected_first: 2 })
        );
    }

    #[test]
    fn overlapping_modules_detected() {
        let p = problem();
        let m = Mapping::new(vec![
            ModuleAssignment::new(0, 1, 1, 4),
            ModuleAssignment::new(1, 2, 1, 4),
        ]);
        assert!(matches!(
            validate(&p, &m),
            Err(MappingError::BadCoverage { .. })
        ));
    }

    #[test]
    fn budget_enforced() {
        let p = problem();
        let m = Mapping::new(vec![
            ModuleAssignment::new(0, 0, 3, 3), // 9
            ModuleAssignment::new(1, 2, 1, 8), // 8 → 17 > 16
        ]);
        assert_eq!(
            validate(&p, &m),
            Err(MappingError::TooManyProcs {
                used: 17,
                available: 16
            })
        );
    }

    #[test]
    fn floor_enforced() {
        let p = problem();
        let m = Mapping::new(vec![
            ModuleAssignment::new(0, 0, 1, 1), // floor is 2
            ModuleAssignment::new(1, 2, 1, 8),
        ]);
        assert_eq!(
            validate(&p, &m),
            Err(MappingError::BelowFloor {
                module: 0,
                floor: 2,
                procs: 1
            })
        );
    }

    #[test]
    fn replication_of_nonreplicable_rejected() {
        let p = problem();
        let m = Mapping::new(vec![
            ModuleAssignment::new(0, 0, 1, 2),
            ModuleAssignment::new(1, 2, 2, 4), // contains non-replicable b
        ]);
        assert_eq!(
            validate(&p, &m),
            Err(MappingError::ReplicationNotAllowed { module: 1 })
        );
    }

    #[test]
    fn replication_under_disabled_policy_rejected() {
        let p = problem().without_replication();
        let m = Mapping::new(vec![
            ModuleAssignment::new(0, 0, 2, 2),
            ModuleAssignment::new(1, 2, 1, 8),
        ]);
        assert_eq!(
            validate(&p, &m),
            Err(MappingError::ReplicationNotAllowed { module: 0 })
        );
    }

    #[test]
    fn error_messages_render() {
        let e = MappingError::TooManyProcs {
            used: 9,
            available: 8,
        };
        assert!(e.to_string().contains("9"));
        assert!(e.to_string().contains("8"));
    }
}
