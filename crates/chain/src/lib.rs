//! # pipemap-chain
//!
//! Task-chain, mapping, and evaluation types for pipelines of data parallel
//! tasks, following §2 of Subhlok & Vondran (PPoPP 1995).
//!
//! A program is a linear chain of tasks `t1 → t2 → … → tk` acting on a
//! stream of data sets. Each [`Task`] carries an execution-time function, a
//! memory requirement, and a replicability flag; each [`Edge`] between
//! adjacent tasks carries an internal-communication function (used when the
//! endpoints share a processor group) and an external-communication function
//! (used when they run on disjoint groups).
//!
//! A [`Mapping`] clusters the chain into contiguous *modules* and gives each
//! module a replication degree and a per-instance processor count; the
//! [`eval`] module computes per-module response times and the pipeline
//! throughput `1 / max_i (f_i / r_i)`, and [`validate`] checks structural
//! and resource validity. [`tables::CostTable`] pre-evaluates all cost
//! functions over the processor range so the mapping algorithms in
//! `pipemap-core` run on O(1) lookups.

pub mod chain;
pub mod edge;
pub mod eval;
pub mod mapping;
pub mod problem;
pub mod tables;
pub mod task;
pub mod validate;

pub use chain::{ChainBuilder, TaskChain};
pub use edge::Edge;
pub use eval::{bottleneck_module, module_response, throughput, ResponseBreakdown};
pub use mapping::{Assignment, Mapping, ModuleAssignment};
pub use problem::{Problem, ReplicationPolicy};
pub use tables::CostTable;
pub use task::Task;
pub use validate::{validate, MappingError};

pub use pipemap_model::{Procs, Seconds};
