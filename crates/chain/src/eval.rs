//! Response-time and throughput evaluation of a mapping (§2.1–§2.2).
//!
//! The response time of a module is the total time one of its instances
//! spends on one data set: receiving the input from the previous module,
//! executing every member task (with internal redistributions between
//! members), and sending the output to the next module. Sender and receiver
//! groups are both occupied for the whole duration of a transfer, so the
//! boundary `ecom` appears in *both* adjacent modules' response times.
//!
//! With `r` replicated instances, each instance handles every `r`-th data
//! set, so the *effective* response — the time budget the module consumes
//! per data set at steady state — is `f / r`, and the pipeline throughput
//! is `1 / max_i (f_i / r_i)` with the maximiser called the *bottleneck*
//! module.

use pipemap_model::Seconds;

use crate::chain::TaskChain;
use crate::mapping::Mapping;

/// The components of one module's response time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ResponseBreakdown {
    /// Time to receive a data set from the previous module (0 for the
    /// first module, whose external input is folded into its execution).
    pub incoming: Seconds,
    /// Execution of all member tasks plus internal redistributions.
    pub exec: Seconds,
    /// Time to send the result to the next module (0 for the last).
    pub outgoing: Seconds,
    /// Replication degree of the module.
    pub replicas: usize,
}

impl ResponseBreakdown {
    /// The response time `f` of one instance per data set.
    pub fn total(&self) -> Seconds {
        self.incoming + self.exec + self.outgoing
    }

    /// The effective per-data-set time `f / r`.
    pub fn effective(&self) -> Seconds {
        self.total() / self.replicas as f64
    }
}

/// Response time of module `idx` of the mapping, broken into components.
///
/// All communication is evaluated at *instance* sizes: the transfer between
/// module `m-1` and `m` moves one data set from one instance of the
/// upstream module to one instance of the downstream module, so the group
/// sizes involved are `procs` per instance on each side (§3.2's effective
/// processor count).
///
/// # Panics
///
/// Panics if `idx` is out of range or the mapping's module ranges don't
/// match the chain (use [`crate::validate`] first for untrusted mappings).
pub fn module_response(chain: &TaskChain, mapping: &Mapping, idx: usize) -> ResponseBreakdown {
    let m = &mapping.modules[idx];
    let p = m.procs;

    let incoming = if idx == 0 {
        0.0
    } else {
        let prev = &mapping.modules[idx - 1];
        debug_assert_eq!(prev.last + 1, m.first, "modules must be contiguous");
        chain.edge(m.first - 1).ecom.eval(prev.procs, p)
    };

    let mut exec = 0.0;
    for l in m.first..=m.last {
        exec += chain.task(l).exec.eval(p);
        if l < m.last {
            exec += chain.edge(l).icom.eval(p);
        }
    }

    let outgoing = if idx + 1 == mapping.modules.len() {
        0.0
    } else {
        let next = &mapping.modules[idx + 1];
        chain.edge(m.last).ecom.eval(p, next.procs)
    };

    ResponseBreakdown {
        incoming,
        exec,
        outgoing,
        replicas: m.replicas,
    }
}

/// Pipeline throughput of the mapping in data sets per second:
/// `1 / max_i (f_i / r_i)`.
pub fn throughput(chain: &TaskChain, mapping: &Mapping) -> f64 {
    let worst = (0..mapping.modules.len())
        .map(|i| module_response(chain, mapping, i).effective())
        .fold(0.0_f64, f64::max);
    if worst <= 0.0 {
        f64::INFINITY
    } else {
        1.0 / worst
    }
}

/// Index of the bottleneck module (the one with the largest effective
/// response time; ties resolve to the leftmost).
pub fn bottleneck_module(chain: &TaskChain, mapping: &Mapping) -> usize {
    let mut best = 0;
    let mut best_t = f64::NEG_INFINITY;
    for i in 0..mapping.modules.len() {
        let t = module_response(chain, mapping, i).effective();
        if t > best_t {
            best_t = t;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::ChainBuilder;
    use crate::edge::Edge;
    use crate::mapping::ModuleAssignment;
    use crate::task::Task;
    use pipemap_model::{PolyEcom, PolyUnary};

    /// a --(icom 1, ecom c1+c2/ps+c3/pr)-- b --(free)-- c
    fn chain() -> TaskChain {
        ChainBuilder::new()
            .task(Task::new("a", PolyUnary::perfectly_parallel(8.0)))
            .edge(Edge::new(
                PolyUnary::new(1.0, 0.0, 0.0),
                PolyEcom::new(0.5, 2.0, 2.0, 0.0, 0.0),
            ))
            .task(Task::new("b", PolyUnary::perfectly_parallel(4.0)))
            .edge(Edge::free())
            .task(Task::new("c", PolyUnary::perfectly_parallel(2.0)))
            .build()
    }

    #[test]
    fn separate_modules_use_ecom() {
        let c = chain();
        let m = Mapping::new(vec![
            ModuleAssignment::new(0, 0, 1, 4),
            ModuleAssignment::new(1, 2, 1, 2),
        ]);
        let r0 = module_response(&c, &m, 0);
        // exec a on 4: 2.0; outgoing ecom(4, 2) = 0.5 + 0.5 + 1.0 = 2.0.
        assert!((r0.exec - 2.0).abs() < 1e-12);
        assert!((r0.outgoing - 2.0).abs() < 1e-12);
        assert_eq!(r0.incoming, 0.0);
        let r1 = module_response(&c, &m, 1);
        // incoming same transfer; exec b+c on 2: 2 + 1 = 3 (edge b-c free).
        assert!((r1.incoming - 2.0).abs() < 1e-12);
        assert!((r1.exec - 3.0).abs() < 1e-12);
        assert_eq!(r1.outgoing, 0.0);
        // Bottleneck is module 2 with f = 5.
        assert_eq!(bottleneck_module(&c, &m), 1);
        assert!((throughput(&c, &m) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn clustered_modules_use_icom() {
        let c = chain();
        let m = Mapping::new(vec![ModuleAssignment::new(0, 2, 1, 4)]);
        let r = module_response(&c, &m, 0);
        // exec = 8/4 + icom(1.0) + 4/4 + 0 + 2/4 = 2 + 1 + 1 + 0.5 = 4.5.
        assert!((r.exec - 4.5).abs() < 1e-12);
        assert_eq!(r.incoming, 0.0);
        assert_eq!(r.outgoing, 0.0);
        assert!((throughput(&c, &m) - 1.0 / 4.5).abs() < 1e-12);
    }

    #[test]
    fn replication_divides_effective_response() {
        let c = chain();
        let single = Mapping::new(vec![ModuleAssignment::new(0, 2, 1, 4)]);
        let double = Mapping::new(vec![ModuleAssignment::new(0, 2, 2, 4)]);
        let t1 = throughput(&c, &single);
        let t2 = throughput(&c, &double);
        assert!((t2 - 2.0 * t1).abs() < 1e-9);
    }

    #[test]
    fn comm_counts_in_both_neighbours() {
        let c = chain();
        let m = Mapping::new(vec![
            ModuleAssignment::new(0, 0, 1, 4),
            ModuleAssignment::new(1, 2, 1, 2),
        ]);
        let r0 = module_response(&c, &m, 0);
        let r1 = module_response(&c, &m, 1);
        assert!((r0.outgoing - r1.incoming).abs() < 1e-12);
    }

    #[test]
    fn effective_uses_replicas() {
        let b = ResponseBreakdown {
            incoming: 1.0,
            exec: 5.0,
            outgoing: 2.0,
            replicas: 4,
        };
        assert!((b.total() - 8.0).abs() < 1e-12);
        assert!((b.effective() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_cost_mapping_has_infinite_throughput() {
        let c = ChainBuilder::new()
            .task(Task::new("free", PolyUnary::zero()))
            .build();
        let m = Mapping::new(vec![ModuleAssignment::new(0, 0, 1, 1)]);
        assert!(throughput(&c, &m).is_infinite());
    }
}
