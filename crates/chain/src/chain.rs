//! The task chain: a linear sequence of tasks joined by communication edges.

use crate::edge::Edge;
use crate::task::Task;

/// A linear chain of data parallel tasks `t1 → t2 → … → tk` with a
/// communication [`Edge`] between each adjacent pair. The first task reads
/// external input and the last produces the final output (§2.1); any cost
/// of external I/O is folded into those tasks' execution functions.
#[derive(Clone, Debug)]
pub struct TaskChain {
    tasks: Vec<Task>,
    edges: Vec<Edge>,
}

impl TaskChain {
    /// Build a chain from tasks and the edges between them.
    ///
    /// # Panics
    ///
    /// Panics if `tasks` is empty or `edges.len() != tasks.len() - 1`.
    pub fn new(tasks: Vec<Task>, edges: Vec<Edge>) -> Self {
        assert!(!tasks.is_empty(), "a chain needs at least one task");
        assert_eq!(
            edges.len(),
            tasks.len() - 1,
            "a chain of k tasks has k-1 edges"
        );
        Self { tasks, edges }
    }

    /// Number of tasks `k`.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// False — a chain always has at least one task. Present for clippy's
    /// `len_without_is_empty` idiom.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Task `i` (0-based; the paper's `t_{i+1}`).
    pub fn task(&self, i: usize) -> &Task {
        &self.tasks[i]
    }

    /// All tasks.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// The edge between tasks `i` and `i + 1`.
    pub fn edge(&self, i: usize) -> &Edge {
        &self.edges[i]
    }

    /// All edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Index of the task with the given name, if any.
    pub fn task_index(&self, name: &str) -> Option<usize> {
        self.tasks.iter().position(|t| t.name == name)
    }

    /// True iff every task in `first..=last` is replicable (§2.2: a module
    /// is replicable only if composed exclusively of replicable tasks).
    pub fn range_replicable(&self, first: usize, last: usize) -> bool {
        self.tasks[first..=last].iter().all(|t| t.replicable)
    }
}

/// Incremental builder: alternate [`ChainBuilder::task`] and
/// [`ChainBuilder::edge`] calls, ending on a task.
#[derive(Default)]
pub struct ChainBuilder {
    tasks: Vec<Task>,
    edges: Vec<Edge>,
}

impl ChainBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a task. Must be the first call or follow an `edge` call.
    ///
    /// # Panics
    ///
    /// Panics if two tasks are appended without an edge between them.
    pub fn task(mut self, task: Task) -> Self {
        assert_eq!(
            self.tasks.len(),
            self.edges.len(),
            "two tasks appended without an edge between them"
        );
        self.tasks.push(task);
        self
    }

    /// Append the edge leading to the next task.
    ///
    /// # Panics
    ///
    /// Panics if called before any task or twice in a row.
    pub fn edge(mut self, edge: Edge) -> Self {
        assert_eq!(
            self.tasks.len(),
            self.edges.len() + 1,
            "edge must follow a task"
        );
        self.edges.push(edge);
        self
    }

    /// Finish the chain.
    ///
    /// # Panics
    ///
    /// Panics if the builder does not end on a task (or is empty).
    pub fn build(self) -> TaskChain {
        assert_eq!(
            self.tasks.len(),
            self.edges.len() + 1,
            "chain must end on a task"
        );
        TaskChain::new(self.tasks, self.edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipemap_model::PolyUnary;

    fn t(name: &str) -> Task {
        Task::new(name, PolyUnary::perfectly_parallel(1.0))
    }

    #[test]
    fn builder_roundtrip() {
        let c = ChainBuilder::new()
            .task(t("a"))
            .edge(Edge::free())
            .task(t("b"))
            .edge(Edge::free())
            .task(t("c"))
            .build();
        assert_eq!(c.len(), 3);
        assert_eq!(c.edges().len(), 2);
        assert_eq!(c.task_index("b"), Some(1));
        assert_eq!(c.task_index("zz"), None);
    }

    #[test]
    #[should_panic(expected = "without an edge")]
    fn builder_rejects_adjacent_tasks() {
        let _ = ChainBuilder::new().task(t("a")).task(t("b"));
    }

    #[test]
    #[should_panic(expected = "edge must follow a task")]
    fn builder_rejects_leading_edge() {
        let _ = ChainBuilder::new().edge(Edge::free());
    }

    #[test]
    #[should_panic(expected = "must end on a task")]
    fn builder_rejects_trailing_edge() {
        let _ = ChainBuilder::new().task(t("a")).edge(Edge::free()).build();
    }

    #[test]
    fn single_task_chain() {
        let c = ChainBuilder::new().task(t("solo")).build();
        assert_eq!(c.len(), 1);
        assert!(c.edges().is_empty());
        assert!(!c.is_empty());
    }

    #[test]
    fn range_replicable_respects_flags() {
        let c = ChainBuilder::new()
            .task(t("a"))
            .edge(Edge::free())
            .task(t("b").not_replicable())
            .edge(Edge::free())
            .task(t("c"))
            .build();
        assert!(c.range_replicable(0, 0));
        assert!(!c.range_replicable(0, 1));
        assert!(!c.range_replicable(1, 2));
        assert!(c.range_replicable(2, 2));
    }
}
