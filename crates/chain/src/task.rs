//! A single data parallel task in a chain.

use pipemap_model::{MemoryReq, Procs, UnaryCost};

/// A data parallel task: one stage of the pipeline.
///
/// The execution-time function `exec` is the paper's `f_exec_i(p)` — the
/// time the task spends computing one data set on `p` processors, excluding
/// inter-task communication (which lives on the [`crate::Edge`]s).
#[derive(Clone, Debug)]
pub struct Task {
    /// Human-readable name (e.g. `"colffts"`).
    pub name: String,
    /// Execution time as a function of the processor count.
    pub exec: UnaryCost,
    /// Memory requirement, which determines the minimum feasible processor
    /// count on a machine with a given per-processor capacity.
    pub memory: MemoryReq,
    /// Whether alternate data sets may be processed by distinct instances
    /// of this task (§2.2). The paper assumes replicability is known from a
    /// data-dependence analysis; a task keeping state across data sets
    /// (e.g. a running tracker) is not replicable.
    pub replicable: bool,
    /// Optional explicit floor on the processor count, combined (by max)
    /// with the memory-derived floor. Useful for algorithmic minimums such
    /// as "needs at least one processor per image".
    pub min_procs: Option<Procs>,
}

impl Task {
    /// A new task with the given name and execution cost; no memory
    /// requirement, replicable, no explicit floor.
    pub fn new(name: impl Into<String>, exec: impl Into<UnaryCost>) -> Self {
        Self {
            name: name.into(),
            exec: exec.into(),
            memory: MemoryReq::none(),
            replicable: true,
            min_procs: None,
        }
    }

    /// Set the memory requirement.
    pub fn with_memory(mut self, memory: MemoryReq) -> Self {
        self.memory = memory;
        self
    }

    /// Mark the task as non-replicable.
    pub fn not_replicable(mut self) -> Self {
        self.replicable = false;
        self
    }

    /// Set an explicit minimum processor count.
    pub fn with_min_procs(mut self, p: Procs) -> Self {
        self.min_procs = Some(p);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipemap_model::PolyUnary;

    #[test]
    fn builder_defaults() {
        let t = Task::new("fft", PolyUnary::perfectly_parallel(4.0));
        assert_eq!(t.name, "fft");
        assert!(t.replicable);
        assert_eq!(t.min_procs, None);
        assert_eq!(t.memory, MemoryReq::none());
        assert!((t.exec.eval(2) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn builder_modifiers() {
        let t = Task::new("hist", PolyUnary::zero())
            .with_memory(MemoryReq::new(1.0, 2.0))
            .not_replicable()
            .with_min_procs(4);
        assert!(!t.replicable);
        assert_eq!(t.min_procs, Some(4));
        assert_eq!(t.memory, MemoryReq::new(1.0, 2.0));
    }
}
