//! The mapping problem instance: a chain plus machine resources.

use pipemap_model::{max_replication, module_memory, MemoryReq, Procs, Replication};

use crate::chain::TaskChain;

/// Whether the mapper may replicate modules (§3.2). The paper treats
/// replication as an orthogonal capability: the DP and greedy algorithms
/// run unchanged, substituting *effective* processor counts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ReplicationPolicy {
    /// Modules always run as a single instance.
    Disabled,
    /// Replicable modules are replicated maximally subject to their memory
    /// floor (`r = ⌊p / p_min⌋`), the provably-profitable choice under the
    /// paper's no-superlinear-speedup assumption.
    #[default]
    Maximal,
}

/// An instance of the mapping problem: map `chain` onto `total_procs`
/// processors, each with `mem_per_proc` bytes of memory, under the given
/// replication policy. The goal is maximum throughput (data sets/second).
#[derive(Clone, Debug)]
pub struct Problem {
    /// The task chain to map.
    pub chain: TaskChain,
    /// Number of available processors `P`.
    pub total_procs: Procs,
    /// Memory capacity per processor, in bytes.
    pub mem_per_proc: f64,
    /// Replication policy.
    pub replication: ReplicationPolicy,
}

impl Problem {
    /// A new problem with maximal replication enabled.
    pub fn new(chain: TaskChain, total_procs: Procs, mem_per_proc: f64) -> Self {
        assert!(total_procs >= 1, "need at least one processor");
        assert!(mem_per_proc > 0.0, "memory capacity must be positive");
        Self {
            chain,
            total_procs,
            mem_per_proc,
            replication: ReplicationPolicy::Maximal,
        }
    }

    /// Disable replication.
    pub fn without_replication(mut self) -> Self {
        self.replication = ReplicationPolicy::Disabled;
        self
    }

    /// Number of tasks `k`.
    pub fn num_tasks(&self) -> usize {
        self.chain.len()
    }

    /// Minimum feasible processor count for a single task: the larger of
    /// the memory-derived floor and the task's explicit floor. `None` if
    /// the task cannot run at any processor count (resident memory exceeds
    /// capacity).
    pub fn task_floor(&self, i: usize) -> Option<Procs> {
        let t = self.chain.task(i);
        let mem_floor = t.memory.min_procs(self.mem_per_proc)?;
        Some(mem_floor.max(t.min_procs.unwrap_or(1)).max(1))
    }

    /// Memory requirement of the module holding tasks `first..=last`.
    pub fn module_memory(&self, first: usize, last: usize) -> MemoryReq {
        let members: Vec<MemoryReq> = (first..=last).map(|i| self.chain.task(i).memory).collect();
        module_memory(&members)
    }

    /// Minimum feasible processor count for the module `first..=last`:
    /// derived from the combined memory requirement and the members'
    /// explicit floors.
    pub fn module_floor(&self, first: usize, last: usize) -> Option<Procs> {
        let mem_floor = self
            .module_memory(first, last)
            .min_procs(self.mem_per_proc)?;
        let explicit = (first..=last)
            .filter_map(|i| self.chain.task(i).min_procs)
            .max()
            .unwrap_or(1);
        Some(mem_floor.max(explicit).max(1))
    }

    /// The replication the policy prescribes for the module `first..=last`
    /// when offered `p` processors: maximal under [`ReplicationPolicy::
    /// Maximal`] if every member is replicable, a single instance
    /// otherwise. `None` if `p` is below the module's floor.
    pub fn module_replication(&self, first: usize, last: usize, p: Procs) -> Option<Replication> {
        let floor = self.module_floor(first, last)?;
        let replicable = match self.replication {
            ReplicationPolicy::Disabled => false,
            ReplicationPolicy::Maximal => self.chain.range_replicable(first, last),
        };
        max_replication(p, floor, replicable)
    }

    /// True if the problem is feasible at all: every task can run and the
    /// sum of singleton floors does not exceed the processor budget. (A
    /// clustering can only *raise* per-module floors for its members, but
    /// clustering also reduces the number of modules; this check is the
    /// cheap necessary condition for the all-singleton mapping. The full
    /// mapping algorithms report infeasibility precisely.)
    pub fn singleton_feasible(&self) -> bool {
        let mut total = 0;
        for i in 0..self.num_tasks() {
            match self.task_floor(i) {
                Some(f) => total += f,
                None => return false,
            }
        }
        total <= self.total_procs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::ChainBuilder;
    use crate::edge::Edge;
    use crate::task::Task;
    use pipemap_model::PolyUnary;

    fn chain3(mem: f64) -> TaskChain {
        let t = |n: &str| {
            Task::new(n, PolyUnary::perfectly_parallel(1.0)).with_memory(MemoryReq::new(0.0, mem))
        };
        ChainBuilder::new()
            .task(t("a"))
            .edge(Edge::free())
            .task(t("b"))
            .edge(Edge::free())
            .task(t("c"))
            .build()
    }

    #[test]
    fn task_floor_from_memory() {
        let p = Problem::new(chain3(300.0), 16, 100.0);
        assert_eq!(p.task_floor(0), Some(3));
    }

    #[test]
    fn module_floor_grows_with_extent() {
        let p = Problem::new(chain3(300.0), 64, 100.0);
        assert_eq!(p.module_floor(0, 0), Some(3));
        assert_eq!(p.module_floor(0, 1), Some(6));
        assert_eq!(p.module_floor(0, 2), Some(9));
    }

    #[test]
    fn explicit_floor_dominates() {
        let t = Task::new("t", PolyUnary::zero()).with_min_procs(5);
        let c = ChainBuilder::new().task(t).build();
        let p = Problem::new(c, 16, 1e9);
        assert_eq!(p.task_floor(0), Some(5));
        assert_eq!(p.module_floor(0, 0), Some(5));
    }

    #[test]
    fn replication_respects_policy() {
        let prob = Problem::new(chain3(300.0), 64, 100.0);
        let r = prob.module_replication(0, 0, 24).unwrap();
        assert_eq!(r.instances, 8);
        let no_rep = prob.clone().without_replication();
        let r = no_rep.module_replication(0, 0, 24).unwrap();
        assert_eq!(r.instances, 1);
        assert_eq!(r.procs_per_instance, 24);
    }

    #[test]
    fn replication_requires_all_members_replicable() {
        let mk = |rep: bool| {
            let mut t = Task::new("t", PolyUnary::zero());
            if !rep {
                t = t.not_replicable();
            }
            t
        };
        let c = ChainBuilder::new()
            .task(mk(true))
            .edge(Edge::free())
            .task(mk(false))
            .build();
        let p = Problem::new(c, 16, 1e9);
        assert_eq!(p.module_replication(0, 0, 8).unwrap().instances, 8);
        assert_eq!(p.module_replication(0, 1, 8).unwrap().instances, 1);
    }

    #[test]
    fn below_floor_replication_is_none() {
        let p = Problem::new(chain3(300.0), 64, 100.0);
        assert!(p.module_replication(0, 0, 2).is_none());
    }

    #[test]
    fn singleton_feasibility() {
        assert!(Problem::new(chain3(300.0), 9, 100.0).singleton_feasible());
        assert!(!Problem::new(chain3(300.0), 8, 100.0).singleton_feasible());
        // Resident component larger than capacity: infeasible at any count.
        let t = Task::new("t", PolyUnary::zero()).with_memory(MemoryReq::new(200.0, 0.0));
        let c = ChainBuilder::new().task(t).build();
        assert!(!Problem::new(c, 64, 100.0).singleton_feasible());
    }
}
