//! Mappings: clustering + replication + processor allocation.

use pipemap_model::Procs;

use crate::problem::Problem;

/// One module of a mapping: the paper's triplet `(T, r, p)` — a contiguous
/// subsequence of tasks, a replication degree, and a per-instance processor
/// count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ModuleAssignment {
    /// Index of the first member task (0-based, inclusive).
    pub first: usize,
    /// Index of the last member task (inclusive).
    pub last: usize,
    /// Number of replicated instances `r`.
    pub replicas: usize,
    /// Processors assigned to each instance `p`.
    pub procs: Procs,
}

impl ModuleAssignment {
    /// A module holding tasks `first..=last` with `replicas` instances of
    /// `procs` processors each.
    pub fn new(first: usize, last: usize, replicas: usize, procs: Procs) -> Self {
        assert!(first <= last, "module range reversed");
        assert!(replicas >= 1, "module needs at least one instance");
        assert!(procs >= 1, "instance needs at least one processor");
        Self {
            first,
            last,
            replicas,
            procs,
        }
    }

    /// Number of member tasks.
    pub fn len(&self) -> usize {
        self.last - self.first + 1
    }

    /// Always false; present for the `len`/`is_empty` idiom.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Total processors consumed by all instances.
    pub fn total_procs(&self) -> Procs {
        self.replicas * self.procs
    }

    /// True if the module contains task `i`.
    pub fn contains(&self, i: usize) -> bool {
        (self.first..=self.last).contains(&i)
    }
}

/// A complete mapping of a chain: an ordered list of modules covering the
/// tasks left to right.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Mapping {
    /// Modules in chain order.
    pub modules: Vec<ModuleAssignment>,
}

impl Mapping {
    /// A mapping from an explicit module list.
    pub fn new(modules: Vec<ModuleAssignment>) -> Self {
        Self { modules }
    }

    /// Number of modules `l`.
    pub fn num_modules(&self) -> usize {
        self.modules.len()
    }

    /// Total processors consumed across all modules and instances.
    pub fn total_procs(&self) -> Procs {
        self.modules.iter().map(ModuleAssignment::total_procs).sum()
    }

    /// Index of the module containing task `i`, if any.
    pub fn module_of_task(&self, i: usize) -> Option<usize> {
        self.modules.iter().position(|m| m.contains(i))
    }

    /// The clustering as a list of `(first, last)` ranges, ignoring
    /// processors and replication — what §4.2 compares across candidate
    /// mappings.
    pub fn clustering(&self) -> Vec<(usize, usize)> {
        self.modules.iter().map(|m| (m.first, m.last)).collect()
    }

    /// Compact textual form `first-last:replicas x procs, …` — the format
    /// `pipemap-tool`'s mapping parser and the CLI accept.
    pub fn to_compact_string(&self) -> String {
        self.modules
            .iter()
            .map(|m| format!("{}-{}:{}x{}", m.first, m.last, m.replicas, m.procs))
            .collect::<Vec<_>>()
            .join(",")
    }

    /// The pure data parallel mapping of Figure 1(a): every task in one
    /// module on all `P` processors, no replication.
    pub fn data_parallel(problem: &Problem) -> Mapping {
        let k = problem.num_tasks();
        Mapping::new(vec![ModuleAssignment::new(
            0,
            k - 1,
            1,
            problem.total_procs,
        )])
    }

    /// A task parallel mapping of Figure 1(b): one module per task with the
    /// given per-task processor counts, no replication.
    pub fn task_parallel(procs: &[Procs]) -> Mapping {
        Mapping::new(
            procs
                .iter()
                .enumerate()
                .map(|(i, &p)| ModuleAssignment::new(i, i, 1, p))
                .collect(),
        )
    }
}

/// A processor assignment for the *unclustered* problem (§3.1): `A(i)` =
/// processors offered to task `i`, each task its own module. Replication,
/// when enabled, is derived from the policy (maximal per task).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Assignment(pub Vec<Procs>);

impl Assignment {
    /// Processors offered to task `i`.
    pub fn procs(&self, i: usize) -> Procs {
        self.0[i]
    }

    /// Total processors consumed.
    pub fn total(&self) -> Procs {
        self.0.iter().sum()
    }

    /// Convert to a [`Mapping`] under the problem's replication policy:
    /// task `i` becomes its own module with the policy-prescribed
    /// replication of its offered processors.
    ///
    /// Returns `None` if any task is offered fewer processors than its
    /// floor.
    pub fn to_mapping(&self, problem: &Problem) -> Option<Mapping> {
        let mut modules = Vec::with_capacity(self.0.len());
        for (i, &p) in self.0.iter().enumerate() {
            let rep = problem.module_replication(i, i, p)?;
            modules.push(ModuleAssignment::new(
                i,
                i,
                rep.instances,
                rep.procs_per_instance,
            ));
        }
        Some(Mapping::new(modules))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::ChainBuilder;
    use crate::edge::Edge;
    use crate::task::Task;
    use pipemap_model::{MemoryReq, PolyUnary};

    fn problem() -> Problem {
        let t = |n: &str| {
            Task::new(n, PolyUnary::perfectly_parallel(1.0)).with_memory(MemoryReq::new(0.0, 300.0))
        };
        let c = ChainBuilder::new()
            .task(t("a"))
            .edge(Edge::free())
            .task(t("b"))
            .build();
        Problem::new(c, 64, 100.0) // floors: 3 each
    }

    #[test]
    fn module_geometry() {
        let m = ModuleAssignment::new(1, 3, 2, 5);
        assert_eq!(m.len(), 3);
        assert_eq!(m.total_procs(), 10);
        assert!(m.contains(2));
        assert!(!m.contains(0));
        assert!(!m.contains(4));
    }

    #[test]
    #[should_panic(expected = "range reversed")]
    fn module_rejects_reversed_range() {
        let _ = ModuleAssignment::new(3, 1, 1, 1);
    }

    #[test]
    fn data_parallel_covers_all() {
        let p = problem();
        let m = Mapping::data_parallel(&p);
        assert_eq!(m.num_modules(), 1);
        assert_eq!(m.modules[0].first, 0);
        assert_eq!(m.modules[0].last, 1);
        assert_eq!(m.total_procs(), 64);
    }

    #[test]
    fn task_parallel_one_module_per_task() {
        let m = Mapping::task_parallel(&[4, 8]);
        assert_eq!(m.num_modules(), 2);
        assert_eq!(m.total_procs(), 12);
        assert_eq!(m.module_of_task(0), Some(0));
        assert_eq!(m.module_of_task(1), Some(1));
        assert_eq!(m.module_of_task(2), None);
    }

    #[test]
    fn assignment_to_mapping_applies_replication() {
        let p = problem();
        let a = Assignment(vec![24, 40]);
        let m = a.to_mapping(&p).unwrap();
        assert_eq!(m.modules[0].replicas, 8); // 24 / floor 3
        assert_eq!(m.modules[0].procs, 3);
        assert_eq!(m.modules[1].replicas, 13); // ⌊40/3⌋
        assert_eq!(m.modules[1].procs, 3); // ⌊40/13⌋
    }

    #[test]
    fn assignment_below_floor_fails() {
        let p = problem();
        assert!(Assignment(vec![2, 40]).to_mapping(&p).is_none());
    }

    #[test]
    fn compact_string_format() {
        let m = Mapping::new(vec![
            ModuleAssignment::new(0, 0, 8, 3),
            ModuleAssignment::new(1, 2, 10, 4),
        ]);
        assert_eq!(m.to_compact_string(), "0-0:8x3,1-2:10x4");
    }

    #[test]
    fn clustering_extraction() {
        let m = Mapping::new(vec![
            ModuleAssignment::new(0, 0, 1, 4),
            ModuleAssignment::new(1, 2, 2, 3),
        ]);
        assert_eq!(m.clustering(), vec![(0, 0), (1, 2)]);
    }
}
