//! Pre-evaluated cost tables.
//!
//! The DP algorithm evaluates response times `O(P⁴k)` times; evaluating a
//! `UnaryCost`/`BinaryCost` enum (or a user closure) in the innermost loop
//! would dominate the run time. [`CostTable`] materialises every cost
//! function once into a [`pipemap_model::DenseCostTable`] (flat rows for
//! unary costs, row-major `P×P` slabs for `ecom`), builds prefix sums over
//! the chain so a *module's* execution time is an O(1) lookup for any
//! extent and processor count (the §3.3 requirement), and caches memory
//! floors and replication decisions. The dense backing is shared read-only
//! with the solvers' worker threads via [`CostTable::dense`].

use pipemap_model::{max_replication, DenseCostTable, Procs, Replication, Seconds};

use crate::problem::{Problem, ReplicationPolicy};

/// Pre-evaluated execution, communication, memory-floor, and replication
/// tables for a [`Problem`] over processor counts `1..=P`.
#[derive(Clone, Debug)]
pub struct CostTable {
    k: usize,
    max_p: Procs,
    /// Flat per-point costs: `f_exec`, `f_icom` rows and `f_ecom` slabs,
    /// each cost function evaluated exactly once per argument.
    dense: DenseCostTable,
    /// `exec_prefix[p-1][i]` = Σ_{l<i} exec_l(p); length `k+1` per row.
    exec_prefix: Vec<Vec<Seconds>>,
    /// `icom_prefix[p-1][e]` = Σ_{d<e} icom_d(p); length `k` per row.
    icom_prefix: Vec<Vec<Seconds>>,
    /// `floor[first][last]` = module memory/explicit floor. The sentinel
    /// `usize::MAX` marks a module that cannot run at any processor count.
    floor: Vec<Vec<Procs>>,
    /// `replicable[first][last]` = policy allows replication of the module.
    replicable: Vec<Vec<bool>>,
    /// `rep[i][p-1]` = policy replication for the singleton module of task
    /// `i` offered `p` processors; `None` below the floor.
    rep: Vec<Vec<Option<Replication>>>,
}

impl CostTable {
    /// Evaluate all cost functions of `problem` over `1..=problem.total_procs`.
    pub fn build(problem: &Problem) -> Self {
        let chain = &problem.chain;
        let k = chain.len();
        let max_p = problem.total_procs;

        // Single evaluation pass over every cost function; everything
        // below reads the dense table, never the closures again.
        let dense = DenseCostTable::build(
            k,
            max_p,
            |i, p| chain.task(i).exec.eval(p),
            |e, p| chain.edge(e).icom.eval(p),
            |e, ps, pr| chain.edge(e).ecom.eval(ps, pr),
        );

        let mut exec_prefix = Vec::with_capacity(max_p);
        let mut icom_prefix = Vec::with_capacity(max_p);
        for p in 1..=max_p {
            let mut epfx = Vec::with_capacity(k + 1);
            epfx.push(0.0);
            for i in 0..k {
                epfx.push(epfx[i] + dense.exec(i, p));
            }
            exec_prefix.push(epfx);
            let mut ipfx = Vec::with_capacity(k);
            ipfx.push(0.0);
            for e in 0..k.saturating_sub(1) {
                ipfx.push(ipfx[e] + dense.icom(e, p));
            }
            icom_prefix.push(ipfx);
        }

        let mut floor = vec![vec![Procs::MAX; k]; k];
        let mut replicable = vec![vec![false; k]; k];
        for first in 0..k {
            for last in first..k {
                floor[first][last] = problem.module_floor(first, last).unwrap_or(Procs::MAX);
                replicable[first][last] = match problem.replication {
                    ReplicationPolicy::Disabled => false,
                    ReplicationPolicy::Maximal => chain.range_replicable(first, last),
                };
            }
        }

        let mut rep = vec![vec![None; max_p]; k];
        for (i, row) in rep.iter_mut().enumerate() {
            let fl = floor[i][i];
            for (pm1, slot) in row.iter_mut().enumerate() {
                let p = pm1 + 1;
                if fl != Procs::MAX && p >= fl {
                    *slot = max_replication(p, fl, replicable[i][i]);
                }
            }
        }

        Self {
            k,
            max_p,
            dense,
            exec_prefix,
            icom_prefix,
            floor,
            replicable,
            rep,
        }
    }

    /// The dense per-point cost tables backing this table. Solver inner
    /// loops borrow the flat rows / `ecom` slabs directly (the table is
    /// `Sync`, so worker threads share it read-only).
    #[inline]
    pub fn dense(&self) -> &DenseCostTable {
        &self.dense
    }

    /// Re-price the table in place by per-cost multiplicative factors:
    /// `exec[i]` scales task `i`'s execution row, `icom[e]` / `ecom[e]`
    /// scale edge `e`'s redistribution row / transfer slab (factor `1.0`
    /// leaves a cost untouched). Prefix sums are rebuilt with the same
    /// summation order as [`CostTable::build`], so the result is
    /// bit-identical to building a fresh table from a problem whose cost
    /// functions return `base(p) * factor`. Floors and replication are
    /// cost-independent and stay as built.
    ///
    /// Slices may be shorter than the chain; missing entries mean `1.0`.
    pub fn rescale(&mut self, exec: &[f64], icom: &[f64], ecom: &[f64]) {
        let at = |f: &[f64], i: usize| f.get(i).copied().unwrap_or(1.0);
        let mut unary_touched = false;
        for i in 0..self.k {
            let g = at(exec, i);
            if g != 1.0 {
                self.dense.scale_exec_row(i, g);
                unary_touched = true;
            }
        }
        for e in 0..self.k.saturating_sub(1) {
            let g = at(icom, e);
            if g != 1.0 {
                self.dense.scale_icom_row(e, g);
                unary_touched = true;
            }
            let g = at(ecom, e);
            if g != 1.0 {
                self.dense.scale_ecom_slab(e, g);
            }
        }
        if !unary_touched {
            return;
        }
        for p in 1..=self.max_p {
            let epfx = &mut self.exec_prefix[p - 1];
            epfx.clear();
            epfx.push(0.0);
            for i in 0..self.k {
                let prev = epfx[i];
                epfx.push(prev + self.dense.exec(i, p));
            }
            let ipfx = &mut self.icom_prefix[p - 1];
            ipfx.clear();
            ipfx.push(0.0);
            for e in 0..self.k.saturating_sub(1) {
                let prev = ipfx[e];
                ipfx.push(prev + self.dense.icom(e, p));
            }
        }
    }

    /// Number of tasks.
    pub fn num_tasks(&self) -> usize {
        self.k
    }

    /// Largest tabulated processor count (the problem's `P`).
    pub fn max_procs(&self) -> Procs {
        self.max_p
    }

    /// Execution time of task `i` on `p` processors.
    #[inline]
    pub fn exec(&self, i: usize, p: Procs) -> Seconds {
        self.dense.exec(i, p)
    }

    /// Internal redistribution time of edge `e` on `p` processors.
    #[inline]
    pub fn icom(&self, e: usize, p: Procs) -> Seconds {
        self.dense.icom(e, p)
    }

    /// External transfer time of edge `e` from `ps` senders to `pr`
    /// receivers.
    #[inline]
    pub fn ecom(&self, e: usize, ps: Procs, pr: Procs) -> Seconds {
        self.dense.ecom(e, ps, pr)
    }

    /// Execution time of the module `first..=last` on `p` processors:
    /// member executions plus internal redistributions, via prefix sums.
    #[inline]
    pub fn module_exec(&self, first: usize, last: usize, p: Procs) -> Seconds {
        debug_assert!(first <= last && last < self.k);
        let row = &self.exec_prefix[p - 1];
        let irow = &self.icom_prefix[p - 1];
        (row[last + 1] - row[first]) + (irow[last] - irow[first])
    }

    /// The module's processor floor, or `None` if the module can never run.
    pub fn module_floor(&self, first: usize, last: usize) -> Option<Procs> {
        let f = self.floor[first][last];
        (f != Procs::MAX).then_some(f)
    }

    /// True if the policy allows replicating the module `first..=last`.
    pub fn module_replicable(&self, first: usize, last: usize) -> bool {
        self.replicable[first][last]
    }

    /// Policy replication for the module `first..=last` offered `p`
    /// processors; `None` below the floor. Singleton modules hit a cache.
    pub fn module_replication(&self, first: usize, last: usize, p: Procs) -> Option<Replication> {
        if first == last {
            if p == 0 || p > self.max_p {
                return None;
            }
            return self.rep[first][p - 1];
        }
        let fl = self.floor[first][last];
        if fl == Procs::MAX || p < fl {
            return None;
        }
        max_replication(p, fl, self.replicable[first][last])
    }

    /// Effective (replication-adjusted) response time of the *singleton*
    /// module of task `i` offered `p` processors, with its neighbours'
    /// instance sizes `prev_inst` / `next_inst` (`None` at chain ends):
    /// `(ecom_in + exec + ecom_out)(instance sizes) / r`.
    ///
    /// Returns `+inf` below the task's floor — convenient as an "never pick
    /// this" value inside the optimisers.
    pub fn task_effective_response(
        &self,
        i: usize,
        p: Procs,
        prev_inst: Option<Procs>,
        next_inst: Option<Procs>,
    ) -> Seconds {
        let Some(rep) = self.module_replication(i, i, p) else {
            return f64::INFINITY;
        };
        let inst = rep.procs_per_instance;
        let mut f = self.exec(i, inst);
        if let Some(q) = prev_inst {
            f += self.ecom(i - 1, q, inst);
        }
        if let Some(n) = next_inst {
            f += self.ecom(i, inst, n);
        }
        f / rep.instances as f64
    }

    /// Instance size for task `i` offered `p` processors under the policy
    /// (the §3.2 "effective number of processors"), or `None` below floor.
    pub fn task_instance_procs(&self, i: usize, p: Procs) -> Option<Procs> {
        self.module_replication(i, i, p)
            .map(|r| r.procs_per_instance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::ChainBuilder;
    use crate::edge::Edge;
    use crate::task::Task;
    use pipemap_model::{MemoryReq, PolyEcom, PolyUnary};

    fn problem() -> Problem {
        let c = ChainBuilder::new()
            .task(
                Task::new("a", PolyUnary::perfectly_parallel(8.0))
                    .with_memory(MemoryReq::new(0.0, 30.0)),
            )
            .edge(Edge::new(
                PolyUnary::new(1.0, 0.0, 0.0),
                PolyEcom::new(0.5, 2.0, 2.0, 0.0, 0.0),
            ))
            .task(
                Task::new("b", PolyUnary::perfectly_parallel(4.0))
                    .with_memory(MemoryReq::new(0.0, 20.0)),
            )
            .edge(Edge::new(
                PolyUnary::new(0.25, 0.0, 0.0),
                PolyEcom::new(0.25, 1.0, 1.0, 0.0, 0.0),
            ))
            .task(Task::new("c", PolyUnary::perfectly_parallel(2.0)))
            .build();
        Problem::new(c, 16, 10.0) // floors: a → 3, b → 2, c → 1
    }

    #[test]
    fn tables_match_direct_evaluation() {
        let prob = problem();
        let t = CostTable::build(&prob);
        for p in 1..=16 {
            for i in 0..3 {
                let direct = prob.chain.task(i).exec.eval(p);
                assert!((t.exec(i, p) - direct).abs() < 1e-12, "exec {i} @ {p}");
            }
            for e in 0..2 {
                let direct = prob.chain.edge(e).icom.eval(p);
                assert!((t.icom(e, p) - direct).abs() < 1e-12, "icom {e} @ {p}");
                for q in 1..=16 {
                    let direct = prob.chain.edge(e).ecom.eval(p, q);
                    assert!(
                        (t.ecom(e, p, q) - direct).abs() < 1e-12,
                        "ecom {e} @ {p},{q}"
                    );
                }
            }
        }
    }

    #[test]
    fn module_exec_matches_sum() {
        let prob = problem();
        let t = CostTable::build(&prob);
        for p in 1..=16 {
            // Module [0..=2]: 8/p + 1 + 4/p + 0.25 + 2/p.
            let expect = 14.0 / p as f64 + 1.25;
            assert!((t.module_exec(0, 2, p) - expect).abs() < 1e-12);
            // Module [1..=2]: 4/p + 0.25 + 2/p.
            let expect = 6.0 / p as f64 + 0.25;
            assert!((t.module_exec(1, 2, p) - expect).abs() < 1e-12);
            // Singleton [1..=1] equals task exec.
            assert!((t.module_exec(1, 1, p) - t.exec(1, p)).abs() < 1e-12);
        }
    }

    #[test]
    fn floors_cached() {
        let t = CostTable::build(&problem());
        assert_eq!(t.module_floor(0, 0), Some(3));
        assert_eq!(t.module_floor(1, 1), Some(2));
        assert_eq!(t.module_floor(2, 2), Some(1));
        assert_eq!(t.module_floor(0, 1), Some(5));
        assert_eq!(t.module_floor(0, 2), Some(5));
    }

    #[test]
    fn infeasible_module_floor_is_none() {
        let c = ChainBuilder::new()
            .task(Task::new("t", PolyUnary::zero()).with_memory(MemoryReq::new(20.0, 0.0)))
            .build();
        let t = CostTable::build(&Problem::new(c, 8, 10.0));
        assert_eq!(t.module_floor(0, 0), None);
        assert_eq!(t.module_replication(0, 0, 8), None);
    }

    #[test]
    fn replication_cache_matches_problem() {
        let prob = problem();
        let t = CostTable::build(&prob);
        for i in 0..3 {
            for p in 1..=16 {
                assert_eq!(
                    t.module_replication(i, i, p),
                    prob.module_replication(i, i, p),
                    "task {i} @ {p}"
                );
            }
        }
    }

    #[test]
    fn effective_response_below_floor_is_infinite() {
        let t = CostTable::build(&problem());
        assert!(t.task_effective_response(0, 2, None, Some(1)).is_infinite());
    }

    #[test]
    fn effective_response_matches_manual() {
        let prob = problem();
        let t = CostTable::build(&prob);
        // Task b offered 4 procs, floor 2 → r = 2, inst = 2.
        let rep = t.module_replication(1, 1, 4).unwrap();
        assert_eq!(rep.instances, 2);
        assert_eq!(rep.procs_per_instance, 2);
        let f = t.task_effective_response(1, 4, Some(3), Some(1));
        let manual = (prob.chain.edge(0).ecom.eval(3, 2)
            + prob.chain.task(1).exec.eval(2)
            + prob.chain.edge(1).ecom.eval(2, 1))
            / 2.0;
        assert!((f - manual).abs() < 1e-12);
    }

    #[test]
    fn rescale_is_bitwise_equal_to_cold_build_from_scaled_costs() {
        use pipemap_model::{BinaryCost, UnaryCost};

        let prob = problem();
        let exec_g = [1.5, 1.0, 0.75];
        let icom_g = [2.0, 1.0];
        let ecom_g = [1.0, 0.625];

        let mut patched = CostTable::build(&prob);
        patched.rescale(&exec_g, &icom_g, &ecom_g);

        // The problem re-priced the way the incremental solver defines it:
        // each cost function evaluates as `base(args) * factor`.
        let mut b = ChainBuilder::new();
        for (i, g) in exec_g.iter().enumerate() {
            let base = prob.chain.task(i).exec.clone();
            let g = *g;
            let mut t = Task::new(
                prob.chain.task(i).name.clone(),
                UnaryCost::custom(move |p| base.eval(p) * g),
            );
            t.memory = prob.chain.task(i).memory;
            b = b.task(t);
            if i + 1 < exec_g.len() {
                let (icom_base, ecom_base) = {
                    let e = prob.chain.edge(i);
                    (e.icom.clone(), e.ecom.clone())
                };
                let (gi, ge) = (icom_g[i], ecom_g[i]);
                b = b.edge(Edge::new(
                    UnaryCost::custom(move |p| icom_base.eval(p) * gi),
                    BinaryCost::custom(move |s, r| ecom_base.eval(s, r) * ge),
                ));
            }
        }
        let scaled = Problem::new(b.build(), prob.total_procs, prob.mem_per_proc);
        let cold = CostTable::build(&scaled);

        for p in 1..=16 {
            for i in 0..3 {
                assert_eq!(
                    patched.exec(i, p).to_bits(),
                    cold.exec(i, p).to_bits(),
                    "exec {i} @ {p}"
                );
            }
            for e in 0..2 {
                assert_eq!(
                    patched.icom(e, p).to_bits(),
                    cold.icom(e, p).to_bits(),
                    "icom {e} @ {p}"
                );
                for q in 1..=16 {
                    assert_eq!(
                        patched.ecom(e, p, q).to_bits(),
                        cold.ecom(e, p, q).to_bits(),
                        "ecom {e} @ {p},{q}"
                    );
                }
            }
            // Prefix sums were rebuilt in build order, so module lookups
            // match to the bit too.
            for first in 0..3 {
                for last in first..3 {
                    assert_eq!(
                        patched.module_exec(first, last, p).to_bits(),
                        cold.module_exec(first, last, p).to_bits(),
                        "module [{first},{last}] @ {p}"
                    );
                }
            }
        }
    }

    #[test]
    fn single_task_chain_tables() {
        let c = ChainBuilder::new()
            .task(Task::new("only", PolyUnary::perfectly_parallel(4.0)))
            .build();
        let t = CostTable::build(&Problem::new(c, 8, 1e9));
        assert_eq!(t.num_tasks(), 1);
        let f = t.task_effective_response(0, 8, None, None);
        // floor 1 → 8 instances of 1 proc: f = 4.0 / 8.
        assert!((f - 0.5).abs() < 1e-12);
    }
}
