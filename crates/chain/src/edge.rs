//! Communication between adjacent tasks.

use pipemap_model::{BinaryCost, UnaryCost};

/// The communication step between two adjacent tasks in a chain.
///
/// The cost of moving a data set from `t_i` to `t_{i+1}` depends on whether
/// the two tasks share a processor group (§2.1):
///
/// * same group of `p` processors → `icom(p)`, a potential *internal
///   redistribution*;
/// * disjoint groups of `ps` and `pr` processors → `ecom(ps, pr)`, an
///   *external transfer* that occupies both groups for its whole duration.
#[derive(Clone, Debug, Default)]
pub struct Edge {
    /// Internal (same-group) redistribution cost `f_icom(p)`.
    pub icom: UnaryCost,
    /// External (cross-group) transfer cost `f_ecom(ps, pr)`.
    pub ecom: BinaryCost,
}

impl Edge {
    /// A new edge with the given internal and external costs.
    pub fn new(icom: impl Into<UnaryCost>, ecom: impl Into<BinaryCost>) -> Self {
        Self {
            icom: icom.into(),
            ecom: ecom.into(),
        }
    }

    /// A free edge (both costs zero) — the Choudhary-et-al. regime the
    /// paper argues against; useful as a baseline in experiments.
    pub fn free() -> Self {
        Self::default()
    }

    /// An edge whose internal redistribution is free (tasks use the same
    /// distribution, like `rowffts → hist` in FFT-Hist) but whose external
    /// transfer costs `ecom`.
    pub fn aligned(ecom: impl Into<BinaryCost>) -> Self {
        Self {
            icom: UnaryCost::Zero,
            ecom: ecom.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipemap_model::{PolyEcom, PolyUnary};

    #[test]
    fn free_edge_costs_nothing() {
        let e = Edge::free();
        assert_eq!(e.icom.eval(8), 0.0);
        assert_eq!(e.ecom.eval(3, 5), 0.0);
    }

    #[test]
    fn aligned_edge_has_zero_icom_only() {
        let e = Edge::aligned(PolyEcom::new(1.0, 0.0, 0.0, 0.0, 0.0));
        assert_eq!(e.icom.eval(8), 0.0);
        assert_eq!(e.ecom.eval(3, 5), 1.0);
    }

    #[test]
    fn new_edge_evaluates_both() {
        let e = Edge::new(
            PolyUnary::new(0.5, 0.0, 0.0),
            PolyEcom::new(1.0, 2.0, 0.0, 0.0, 0.0),
        );
        assert_eq!(e.icom.eval(4), 0.5);
        assert!((e.ecom.eval(2, 7) - 2.0).abs() < 1e-12);
    }
}
