//! Narrowband tracking radar (§6.4, Table 2; program described in the CMU
//! task-parallel suite).
//!
//! A data set is a dwell of 512 range samples × 10 channels of complex
//! data. The chain: pulse-compression FFTs per channel, beamforming
//! weight application, inverse FFTs, and a detection/tracking stage. The
//! tracker carries state between data sets (track files), so it is **not
//! replicable** — which is what caps the optimal throughput and makes the
//! radar's optimal/data-parallel ratio land in the middle of the paper's
//! range (4.28) rather than at FFT-Hist's extreme.
//!
//! The per-channel grain (10) is deliberately tiny: FFT stages stop
//! scaling at 10 processors, so the mapper must replicate them instead of
//! widening them — task parallelism with replication is the only road to
//! the paper's 81 data sets/second.

use pipemap_machine::workload::{Collective, CollectivePattern};
use pipemap_machine::{AppWorkload, EdgeWorkload, TaskWorkload};
use pipemap_model::MemoryReq;

/// Parameters of the radar instance.
#[derive(Clone, Copy, Debug)]
pub struct RadarConfig {
    /// Range samples per channel.
    pub samples: usize,
    /// Antenna channels.
    pub channels: usize,
    /// Effective flops per textbook FFT flop (see
    /// [`crate::FftHistConfig::fft_work_factor`]).
    pub fft_work_factor: f64,
    /// Sequential flops of the detection/tracking stage per data set.
    pub track_seq_flops: f64,
}

impl RadarConfig {
    /// The paper's 512×10×4 configuration.
    pub fn paper() -> Self {
        Self {
            samples: 512,
            channels: 10,
            fft_work_factor: 12.0,
            track_seq_flops: 240_000.0,
        }
    }

    /// FFT flops over all channels.
    pub fn fft_flops(&self) -> f64 {
        let n = self.samples as f64;
        self.channels as f64 * 5.0 * n * n.log2() * self.fft_work_factor
    }

    /// Bytes of one dwell (complex samples).
    pub fn dwell_bytes(&self) -> f64 {
        8.0 * (self.samples * self.channels) as f64
    }
}

/// Build the radar application workload.
pub fn radar(config: RadarConfig) -> AppWorkload {
    let dwell = config.dwell_bytes();
    let resident = 8e3;
    let overhead = 2_000.0;

    let ffts = TaskWorkload {
        name: "pulse-fft".into(),
        seq_flops: 0.0,
        par_flops: config.fft_flops(),
        grain: config.channels as u64,
        overhead_flops_per_proc: overhead,
        collective: None,
        memory: MemoryReq::new(resident, 2.0 * dwell),
        replicable: true,
    };

    let beamform = TaskWorkload {
        name: "beamform".into(),
        seq_flops: 0.0,
        par_flops: 6.0 * (config.samples * config.channels) as f64 * config.fft_work_factor,
        grain: config.channels as u64,
        overhead_flops_per_proc: overhead,
        collective: Some(Collective {
            // Combining across channels.
            pattern: CollectivePattern::Reduce,
            bytes: 8.0 * config.samples as f64,
        }),
        memory: MemoryReq::new(resident, dwell),
        replicable: true,
    };

    let iffts = TaskWorkload {
        name: "inverse-fft".into(),
        seq_flops: 0.0,
        par_flops: config.fft_flops(),
        grain: config.channels as u64,
        overhead_flops_per_proc: overhead,
        collective: None,
        memory: MemoryReq::new(resident, 2.0 * dwell),
        replicable: true,
    };

    let track = TaskWorkload {
        name: "detect-track".into(),
        seq_flops: config.track_seq_flops,
        par_flops: 2.0 * config.samples as f64 * config.fft_work_factor,
        grain: config.samples as u64,
        overhead_flops_per_proc: 500.0,
        collective: None,
        memory: MemoryReq::new(resident, dwell),
        // Track files persist across data sets: order matters.
        replicable: false,
    };

    AppWorkload::new(
        format!("Radar {}x{}x4", config.samples, config.channels),
        vec![ffts, beamform, iffts, track],
        vec![
            EdgeWorkload::aligned(dwell),
            EdgeWorkload::aligned(dwell),
            EdgeWorkload::all_to_all(dwell),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipemap_machine::{synthesize_problem, MachineConfig};

    #[test]
    fn tracker_is_not_replicable() {
        let app = radar(RadarConfig::paper());
        assert!(!app.tasks[3].replicable);
        assert!(app.tasks[..3].iter().all(|t| t.replicable));
    }

    #[test]
    fn memory_floors_are_small() {
        // The dwell is tiny (40 KB): every task fits on one processor.
        let p = synthesize_problem(
            &radar(RadarConfig::paper()),
            &MachineConfig::iwarp_systolic(),
        );
        for i in 0..4 {
            assert_eq!(p.task_floor(i), Some(1), "task {i}");
        }
    }

    #[test]
    fn fft_grain_limits_scaling() {
        let machine = MachineConfig::iwarp_systolic();
        let p = synthesize_problem(&radar(RadarConfig::paper()), &machine);
        let t10 = p.chain.task(0).exec.eval(10);
        let t40 = p.chain.task(0).exec.eval(40);
        // Beyond 10 processors the per-channel grain stops helping (only
        // the per-processor overhead moves).
        assert!(t40 >= t10 * 0.9, "t10={t10} t40={t40}");
    }

    #[test]
    fn tracker_time_sets_the_throughput_ceiling() {
        let machine = MachineConfig::iwarp_systolic();
        let p = synthesize_problem(&radar(RadarConfig::paper()), &machine);
        let t = p.chain.task(3).exec.eval(1);
        let ceiling = 1.0 / t;
        // The paper reports 81.2 data sets/second; the non-replicable
        // tracker must allow roughly that rate.
        assert!(
            (60.0..=110.0).contains(&ceiling),
            "tracker ceiling {ceiling:.1}/s"
        );
    }
}
