//! # pipemap-apps
//!
//! Task-chain definitions of the applications the paper evaluates (§6):
//!
//! * [`fft_hist`] — the FFT-Hist example program: a stream of `n × n`
//!   complex arrays through `colffts → rowffts → hist` (Figure 5), the
//!   program behind Tables 1 and 2;
//! * [`radar`] — narrowband tracking radar (512×10×4 data sets);
//! * [`stereo`] — multibaseline stereo (256×100 data sets, the program
//!   sketched in the paper's introduction).
//!
//! Each application is described by *operation counts and byte volumes*
//! (see `pipemap_machine::workload`), not by ready-made polynomial
//! coefficients, so the full pipeline — profile on the machine model, fit
//! the §5 polynomials, optimise, simulate — is exercised end to end. The
//! constants are calibrated so that on the default iWarp-like machine the
//! throughput magnitudes land near the paper's reported numbers; the
//! *shapes* (which tasks cluster, who replicates, who wins) follow from
//! the structure, not from tuning.

pub mod fft_hist;
pub mod radar;
pub mod stereo;
pub mod synthetic;

pub use fft_hist::{fft_hist, FftHistConfig};
pub use radar::{radar, RadarConfig};
pub use stereo::{stereo, StereoConfig};
pub use synthetic::{synthetic_chain, ChainFlavor};
