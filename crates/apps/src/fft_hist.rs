//! The FFT-Hist example program (§6.2, Figure 5).
//!
//! A stream of `n × n` complex arrays flows through three tasks:
//!
//! * `colffts` — 1D FFTs on the columns;
//! * `rowffts` — 1D FFTs on the rows (a transpose sits between the two);
//! * `hist` — statistical analysis and output, with a sequential analysis
//!   component and significant internal communication.
//!
//! The structural facts that drive the paper's optimal mapping:
//!
//! * `rowffts` and `hist` use the same data distribution → the edge
//!   between them is [`TransferPattern::Aligned`](pipemap_machine::TransferPattern::Aligned) (free internally), so
//!   merging them "eliminates the data transfer cost";
//! * the `colffts → rowffts` transpose is an all-to-all whose "cost is
//!   comparable whether they are mapped together or separately";
//! * merging `colffts` into the big module raises the combined memory
//!   floor, forcing larger instances on which `hist` (with its sequential
//!   part and collective) runs inefficiently.

use pipemap_machine::workload::{Collective, CollectivePattern};
use pipemap_machine::{AppWorkload, EdgeWorkload, TaskWorkload};
use pipemap_model::MemoryReq;

/// Parameters of an FFT-Hist instance.
#[derive(Clone, Copy, Debug)]
pub struct FftHistConfig {
    /// Array edge length `n` (the paper uses 256 and 512).
    pub n: usize,
    /// Effective flops per textbook FFT flop — calibration for the real
    /// cost of a butterfly (memory traffic, index arithmetic) on the
    /// reference machine. 1.0 means "peak-rate FFT".
    pub fft_work_factor: f64,
    /// Sequential analysis flops per array point in `hist` (output
    /// formatting, global statistics).
    pub hist_seq_flops_per_point: f64,
    /// Parallelisable flops per array point in `hist`.
    pub hist_par_flops_per_point: f64,
    /// Per-processor per-data-set overhead flops of the FFT tasks (loop
    /// startup, synchronisation).
    pub fft_overhead_flops_per_proc: f64,
}

impl FftHistConfig {
    /// The paper's 256 × 256 configuration.
    pub fn n256() -> Self {
        Self {
            n: 256,
            fft_work_factor: 12.0,
            hist_seq_flops_per_point: 61.0,
            hist_par_flops_per_point: 15.0,
            fft_overhead_flops_per_proc: 30_000.0,
        }
    }

    /// The paper's 512 × 512 configuration.
    pub fn n512() -> Self {
        Self {
            n: 512,
            ..Self::n256()
        }
    }

    /// Total textbook FFT flops for one pass (`5 n² log2 n`).
    pub fn fft_flops(&self) -> f64 {
        let n = self.n as f64;
        5.0 * n * n * n.log2() * self.fft_work_factor
    }

    /// Bytes of one `n × n` complex array (8-byte complex).
    pub fn array_bytes(&self) -> f64 {
        8.0 * (self.n * self.n) as f64
    }
}

/// Build the FFT-Hist application workload.
pub fn fft_hist(config: FftHistConfig) -> AppWorkload {
    let n = config.n;
    let points = (n * n) as f64;
    let array = config.array_bytes();
    let resident = 16e3;

    let colffts = TaskWorkload {
        name: "colffts".into(),
        seq_flops: 0.0,
        par_flops: config.fft_flops(),
        grain: n as u64,
        overhead_flops_per_proc: config.fft_overhead_flops_per_proc,
        collective: None,
        // Input + output array + transpose workspace: 20 bytes per point
        // (the extra 4 n² beyond in+out is the send staging buffer).
        memory: MemoryReq::new(resident, 2.5 * array),
        replicable: true,
    };

    let rowffts = TaskWorkload {
        name: "rowffts".into(),
        seq_flops: 0.0,
        par_flops: config.fft_flops(),
        grain: n as u64,
        overhead_flops_per_proc: config.fft_overhead_flops_per_proc,
        collective: None,
        memory: MemoryReq::new(resident, 2.0 * array),
        replicable: true,
    };

    let hist = TaskWorkload {
        name: "hist".into(),
        seq_flops: config.hist_seq_flops_per_point * points,
        par_flops: config.hist_par_flops_per_point * points,
        grain: n as u64,
        overhead_flops_per_proc: 10_000.0,
        collective: Some(Collective {
            pattern: CollectivePattern::AllToAll,
            bytes: array,
        }),
        memory: MemoryReq::new(resident, array),
        replicable: true,
    };

    AppWorkload::new(
        format!("FFT-Hist {n}x{n}"),
        vec![colffts, rowffts, hist],
        vec![
            // The transpose: full exchange of the array.
            EdgeWorkload::all_to_all(array),
            // Same distribution on both sides: free when clustered. When
            // the tasks are split, the transfer moves the complex
            // spectrum plus the magnitude plane hist's analysis starts
            // from — twice the raw array.
            EdgeWorkload::aligned(2.0 * array),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipemap_machine::{synthesize_problem, MachineConfig};

    #[test]
    fn shape_matches_figure5() {
        let app = fft_hist(FftHistConfig::n256());
        assert_eq!(app.tasks.len(), 3);
        assert_eq!(app.tasks[0].name, "colffts");
        assert_eq!(app.tasks[1].name, "rowffts");
        assert_eq!(app.tasks[2].name, "hist");
        assert_eq!(app.edges.len(), 2);
    }

    #[test]
    fn memory_floors_match_paper_table1() {
        // §6.3: each instance of module 1 (colffts) needs ≥ 3 processors
        // and module 2 (rowffts + hist) ≥ 4, for the 256² data set on the
        // 0.5 MB/processor machine.
        let machine = MachineConfig::iwarp_message();
        let p = synthesize_problem(&fft_hist(FftHistConfig::n256()), &machine);
        assert_eq!(p.module_floor(0, 0), Some(3), "colffts floor");
        assert_eq!(p.module_floor(1, 2), Some(4), "rowffts+hist floor");
    }

    #[test]
    fn memory_floors_512_force_low_replication() {
        let machine = MachineConfig::iwarp_message();
        let p = synthesize_problem(&fft_hist(FftHistConfig::n512()), &machine);
        let f1 = p.module_floor(0, 0).unwrap();
        let f2 = p.module_floor(1, 2).unwrap();
        // 4× the data → roughly 4× the floors: replication on 64
        // processors is limited to a handful of instances.
        assert!((10..=13).contains(&f1), "colffts floor {f1}");
        assert!((12..=16).contains(&f2), "module2 floor {f2}");
        assert!(64 / f1 <= 5);
        assert!(64 / f2 <= 4);
    }

    #[test]
    fn merging_raises_the_floor() {
        let machine = MachineConfig::iwarp_message();
        let p = synthesize_problem(&fft_hist(FftHistConfig::n256()), &machine);
        let merged = p.module_floor(0, 2).unwrap();
        let separate = p.module_floor(1, 2).unwrap();
        assert!(merged > separate, "merged {merged} vs module2 {separate}");
    }

    #[test]
    fn aligned_edge_is_free_internally() {
        let machine = MachineConfig::iwarp_message();
        let p = synthesize_problem(&fft_hist(FftHistConfig::n256()), &machine);
        assert_eq!(p.chain.edge(1).icom.eval(8), 0.0);
        assert!(p.chain.edge(0).icom.eval(8) > 0.0);
    }

    #[test]
    fn fft_flops_scale() {
        let c256 = FftHistConfig::n256();
        let c512 = FftHistConfig::n512();
        // 4× points × 9/8 log factor.
        let ratio = c512.fft_flops() / c256.fft_flops();
        assert!((ratio - 4.5).abs() < 1e-9);
    }
}
