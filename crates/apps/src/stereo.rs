//! Multibaseline stereo (§1, §6.4; Webb's parallel stereo program).
//!
//! "The first task captures three (or more) images from the cameras, the
//! second task computes a difference image for each of 16 disparity
//! levels, the third task computes an error image for each difference
//! image, and the final task performs a minimum reduction across error
//! images and computes the final depth image."
//!
//! The camera-capture stage is serialised on the frame grabber, so it is
//! not replicable; the disparity stages have a grain of 16 (one unit per
//! disparity level).

use pipemap_machine::workload::{Collective, CollectivePattern};
use pipemap_machine::{AppWorkload, EdgeWorkload, TaskWorkload};
use pipemap_model::MemoryReq;

/// Parameters of the stereo instance.
#[derive(Clone, Copy, Debug)]
pub struct StereoConfig {
    /// Image width.
    pub width: usize,
    /// Image height.
    pub height: usize,
    /// Number of disparity levels.
    pub disparities: usize,
    /// Number of cameras.
    pub cameras: usize,
    /// Effective flops per abstract image operation (machine calibration).
    pub work_factor: f64,
}

impl StereoConfig {
    /// The paper's 256×100 configuration with 16 disparities and 3
    /// cameras.
    pub fn paper() -> Self {
        Self {
            width: 256,
            height: 100,
            disparities: 16,
            cameras: 3,
            // Pixel arithmetic is simple integer work; the effective
            // per-operation inflation is far smaller than for an FFT
            // butterfly.
            work_factor: 3.0,
        }
    }

    /// Pixels per image.
    pub fn pixels(&self) -> f64 {
        (self.width * self.height) as f64
    }

    /// Bytes of one grayscale image (1-byte pixels).
    pub fn image_bytes(&self) -> f64 {
        self.pixels()
    }
}

/// Build the stereo application workload.
pub fn stereo(config: StereoConfig) -> AppWorkload {
    let pixels = config.pixels();
    let image = config.image_bytes();
    let disparity_volume = config.disparities as f64 * image;
    let resident = 8e3;

    let capture = TaskWorkload {
        name: "capture".into(),
        // Frame grabbing + de-bayer is serial per camera set.
        seq_flops: 3.4 * pixels * config.cameras as f64,
        par_flops: 1.0 * pixels * config.cameras as f64 * config.work_factor,
        grain: config.cameras as u64,
        overhead_flops_per_proc: 1_000.0,
        collective: None,
        memory: MemoryReq::new(resident, config.cameras as f64 * image),
        replicable: false,
    };

    let difference = TaskWorkload {
        name: "difference".into(),
        seq_flops: 0.0,
        par_flops: 4.0 * pixels * config.disparities as f64 * config.work_factor,
        grain: config.disparities as u64,
        overhead_flops_per_proc: 5_000.0,
        collective: None,
        memory: MemoryReq::new(resident, disparity_volume + image),
        replicable: true,
    };

    let error = TaskWorkload {
        name: "error".into(),
        seq_flops: 0.0,
        par_flops: 6.0 * pixels * config.disparities as f64 * config.work_factor,
        grain: config.disparities as u64,
        overhead_flops_per_proc: 5_000.0,
        collective: None,
        memory: MemoryReq::new(resident, 2.0 * disparity_volume),
        replicable: true,
    };

    let depth = TaskWorkload {
        name: "min-depth".into(),
        seq_flops: 0.4 * pixels,
        par_flops: 1.0 * pixels * config.disparities as f64 * config.work_factor,
        grain: config.disparities as u64,
        overhead_flops_per_proc: 2_000.0,
        collective: Some(Collective {
            pattern: CollectivePattern::Reduce,
            bytes: image,
        }),
        memory: MemoryReq::new(resident, disparity_volume),
        replicable: true,
    };

    AppWorkload::new(
        format!("Stereo {}x{}", config.width, config.height),
        vec![capture, difference, error, depth],
        vec![
            // Images fan out to the disparity workers.
            EdgeWorkload {
                bytes: config.cameras as f64 * image,
                pattern: pipemap_machine::TransferPattern::Scatter,
            },
            EdgeWorkload::aligned(disparity_volume),
            EdgeWorkload::aligned(disparity_volume),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipemap_machine::{synthesize_problem, MachineConfig};

    #[test]
    fn capture_is_serialised() {
        let app = stereo(StereoConfig::paper());
        assert!(!app.tasks[0].replicable);
        assert!(app.tasks[1..].iter().all(|t| t.replicable));
    }

    #[test]
    fn disparity_grain_is_16() {
        let app = stereo(StereoConfig::paper());
        assert_eq!(app.tasks[1].grain, 16);
        assert_eq!(app.tasks[2].grain, 16);
    }

    #[test]
    fn aligned_disparity_edges() {
        let machine = MachineConfig::iwarp_systolic();
        let p = synthesize_problem(&stereo(StereoConfig::paper()), &machine);
        assert_eq!(p.chain.edge(1).icom.eval(8), 0.0);
        assert_eq!(p.chain.edge(2).icom.eval(8), 0.0);
    }

    #[test]
    fn floors_are_modest() {
        let machine = MachineConfig::iwarp_systolic();
        let p = synthesize_problem(&stereo(StereoConfig::paper()), &machine);
        for i in 0..4 {
            let f = p.task_floor(i).unwrap();
            assert!(f <= 8, "task {i} floor {f}");
        }
    }

    #[test]
    fn capture_rate_is_near_paper_throughput() {
        // The serial capture stage caps throughput; the paper reports
        // 43.1 data sets/second for the optimal mapping.
        let machine = MachineConfig::iwarp_systolic();
        let p = synthesize_problem(&stereo(StereoConfig::paper()), &machine);
        let best_capture = (1..=16)
            .map(|procs| p.chain.task(0).exec.eval(procs))
            .fold(f64::INFINITY, f64::min);
        let ceiling = 1.0 / best_capture;
        assert!(
            (30.0..=70.0).contains(&ceiling),
            "capture ceiling {ceiling:.1}/s"
        );
    }
}
