//! Synthetic application families for benchmarking and stress tests.
//!
//! The paper's suite has three real programs with k ≤ 4 tasks; these
//! generators produce longer chains with controlled characteristics so
//! the algorithms' scaling and the ablations have workloads whose
//! "right answer" structure is known by construction.

use pipemap_machine::workload::{Collective, CollectivePattern};
use pipemap_machine::{AppWorkload, EdgeWorkload, TaskWorkload, TransferPattern};
use pipemap_model::MemoryReq;

/// What dominates the synthetic chain's cost.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChainFlavor {
    /// Large parallel flops, light edges: pure data parallelism nearly
    /// suffices and the mapper should build few, wide modules.
    ComputeBound,
    /// Heavy all-to-all edges relative to computation: clustering
    /// matters most and the mapper should fuse aggressively.
    CommBound,
    /// Large distributed arrays: memory floors cap replication, as in
    /// the paper's 512×512 configuration.
    MemoryBound,
    /// Alternating heavy/light stages with aligned edges: the classic
    /// pipeline shape where replication of the heavy stages wins.
    Alternating,
}

/// Deterministically generate a `k`-task chain of the given flavor.
///
/// The generator is seedless on purpose: benchmarks and tests get the
/// same workload every run, and variation comes from `k` and `flavor`.
pub fn synthetic_chain(flavor: ChainFlavor, k: usize) -> AppWorkload {
    assert!(k >= 1, "a chain needs at least one task");
    let mut tasks = Vec::with_capacity(k);
    let mut edges = Vec::with_capacity(k.saturating_sub(1));
    for i in 0..k {
        tasks.push(task_for(flavor, i, k));
        if i + 1 < k {
            edges.push(edge_for(flavor, i));
        }
    }
    AppWorkload::new(format!("synthetic-{flavor:?}-{k}"), tasks, edges)
}

fn task_for(flavor: ChainFlavor, i: usize, k: usize) -> TaskWorkload {
    // A deterministic, position-dependent spread of work sizes.
    let wave = 1.0 + 0.5 * ((i * 2654435761) % 7) as f64 / 6.0;
    match flavor {
        ChainFlavor::ComputeBound => TaskWorkload {
            name: format!("compute{i}"),
            seq_flops: 1e4,
            par_flops: 4e7 * wave,
            grain: 512,
            overhead_flops_per_proc: 2_000.0,
            collective: None,
            memory: MemoryReq::new(8e3, 64e3),
            replicable: true,
        },
        ChainFlavor::CommBound => TaskWorkload {
            name: format!("light{i}"),
            seq_flops: 1e4,
            par_flops: 4e6 * wave,
            grain: 256,
            overhead_flops_per_proc: 2_000.0,
            collective: Some(Collective {
                pattern: CollectivePattern::AllToAll,
                bytes: 2e5,
            }),
            memory: MemoryReq::new(8e3, 64e3),
            replicable: true,
        },
        ChainFlavor::MemoryBound => TaskWorkload {
            name: format!("big{i}"),
            seq_flops: 1e4,
            par_flops: 2e7 * wave,
            grain: 512,
            overhead_flops_per_proc: 2_000.0,
            collective: None,
            // Each task holds ~3 MB distributed: floors of ~6-7 on the
            // default 0.5 MB cells.
            memory: MemoryReq::new(8e3, 3e6),
            replicable: true,
        },
        ChainFlavor::Alternating => {
            let heavy = i.is_multiple_of(2);
            TaskWorkload {
                name: format!("{}{i}", if heavy { "heavy" } else { "light" }),
                seq_flops: if heavy { 2e6 } else { 1e4 },
                par_flops: if heavy { 3e7 } else { 2e6 },
                grain: 256,
                overhead_flops_per_proc: 2_000.0,
                collective: None,
                memory: MemoryReq::new(8e3, 128e3),
                // The final stage writes ordered output.
                replicable: i + 1 != k,
            }
        }
    }
}

fn edge_for(flavor: ChainFlavor, i: usize) -> EdgeWorkload {
    match flavor {
        ChainFlavor::ComputeBound => EdgeWorkload::aligned(64e3),
        ChainFlavor::CommBound => EdgeWorkload::all_to_all(2e6),
        ChainFlavor::MemoryBound => {
            if i.is_multiple_of(2) {
                EdgeWorkload::all_to_all(1e6)
            } else {
                EdgeWorkload::aligned(1e6)
            }
        }
        ChainFlavor::Alternating => EdgeWorkload {
            bytes: 3e5,
            pattern: TransferPattern::Aligned,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipemap_machine::{synthesize_problem, MachineConfig};

    #[test]
    fn generator_is_deterministic() {
        let a = synthetic_chain(ChainFlavor::CommBound, 5);
        let b = synthetic_chain(ChainFlavor::CommBound, 5);
        assert_eq!(a.tasks.len(), b.tasks.len());
        for (x, y) in a.tasks.iter().zip(&b.tasks) {
            assert_eq!(x.par_flops, y.par_flops);
            assert_eq!(x.name, y.name);
        }
    }

    #[test]
    fn shapes_are_well_formed() {
        for flavor in [
            ChainFlavor::ComputeBound,
            ChainFlavor::CommBound,
            ChainFlavor::MemoryBound,
            ChainFlavor::Alternating,
        ] {
            for k in [1usize, 2, 5, 8] {
                let app = synthetic_chain(flavor, k);
                assert_eq!(app.tasks.len(), k);
                assert_eq!(app.edges.len(), k - 1);
            }
        }
    }

    #[test]
    fn memory_bound_flavor_has_high_floors() {
        let machine = MachineConfig::iwarp_message();
        let p = synthesize_problem(&synthetic_chain(ChainFlavor::MemoryBound, 4), &machine);
        for i in 0..4 {
            assert!(p.task_floor(i).unwrap() >= 5, "task {i} floor too low");
        }
    }

    #[test]
    fn alternating_flavor_pins_the_tail() {
        let app = synthetic_chain(ChainFlavor::Alternating, 6);
        assert!(!app.tasks[5].replicable);
        assert!(app.tasks[..5].iter().all(|t| t.replicable));
    }

    #[test]
    fn flavors_are_mappable() {
        let machine = MachineConfig::iwarp_message();
        for flavor in [
            ChainFlavor::ComputeBound,
            ChainFlavor::CommBound,
            ChainFlavor::MemoryBound,
            ChainFlavor::Alternating,
        ] {
            let problem = synthesize_problem(&synthetic_chain(flavor, 4), &machine);
            let sol = pipemap_core_greedy(&problem).unwrap_or_else(|e| panic!("{flavor:?}: {e}"));
            assert!(sol > 0.0, "{flavor:?} throughput");
        }

        fn pipemap_core_greedy(
            problem: &pipemap_chain::Problem,
        ) -> Result<f64, Box<dyn std::error::Error>> {
            // Avoid a dev-dependency cycle: a floor-level singleton
            // mapping is enough to prove mappability.
            let k = problem.num_tasks();
            let mut modules = Vec::new();
            for i in 0..k {
                let f = problem.task_floor(i).ok_or("task never fits")?;
                modules.push(pipemap_chain::ModuleAssignment::new(i, i, 1, f));
            }
            let m = pipemap_chain::Mapping::new(modules);
            pipemap_chain::validate(problem, &m)?;
            Ok(pipemap_chain::throughput(&problem.chain, &m))
        }
    }
}
