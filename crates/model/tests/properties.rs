//! Property tests of the cost-model primitives.

use pipemap_model::{max_replication, MemoryReq, PolyEcom, PolyUnary, Tabulated, UnaryCost};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn poly_argmin_matches_exhaustive_scan(
        c1 in 0.0..10.0f64,
        c2 in 0.0..100.0f64,
        c3 in 0.0..5.0f64,
        lo in 1..32usize,
        span in 0..64usize,
    ) {
        let hi = lo + span;
        let f = PolyUnary::new(c1, c2, c3);
        let fast = f.argmin(lo, hi);
        let best_scan = (lo..=hi)
            .min_by(|&a, &b| f.eval(a).partial_cmp(&f.eval(b)).unwrap())
            .unwrap();
        prop_assert!(
            (f.eval(fast) - f.eval(best_scan)).abs() <= 1e-12 * f.eval(best_scan).max(1.0),
            "argmin {} ({}) vs scan {} ({})",
            fast, f.eval(fast), best_scan, f.eval(best_scan)
        );
    }

    #[test]
    fn poly_add_is_pointwise(
        a in (0.0..5.0f64, 0.0..5.0f64, 0.0..5.0f64),
        b in (0.0..5.0f64, 0.0..5.0f64, 0.0..5.0f64),
        p in 1..128usize,
    ) {
        let fa = PolyUnary::new(a.0, a.1, a.2);
        let fb = PolyUnary::new(b.0, b.1, b.2);
        let sum = fa.add(&fb);
        prop_assert!((sum.eval(p) - (fa.eval(p) + fb.eval(p))).abs() < 1e-12);
    }

    #[test]
    fn ecom_diagonal_identifies_groups(
        c in (0.0..2.0f64, 0.0..4.0f64, 0.0..4.0f64, 0.0..0.5f64, 0.0..0.5f64),
        p in 1..100usize,
    ) {
        let f = PolyEcom::new(c.0, c.1, c.2, c.3, c.4);
        prop_assert!((f.diagonal().eval(p) - f.eval(p, p)).abs() < 1e-12);
    }

    #[test]
    fn tabulated_stays_within_sample_hull(
        mut samples in prop::collection::vec((1..64usize, 0.1..100.0f64), 1..8),
        p in 1..128usize,
    ) {
        samples.sort_by_key(|s| s.0);
        samples.dedup_by_key(|s| s.0);
        let t = Tabulated::new(samples.clone());
        let v = t.eval(p);
        let lo = samples.iter().map(|s| s.1).fold(f64::INFINITY, f64::min);
        let hi = samples.iter().map(|s| s.1).fold(f64::NEG_INFINITY, f64::max);
        // Linear interpolation + clamped extrapolation can never leave
        // the sampled value range.
        prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12, "{v} outside [{lo}, {hi}]");
    }

    #[test]
    fn tabulated_hits_samples_exactly(
        mut samples in prop::collection::vec((1..64usize, 0.1..100.0f64), 1..8),
    ) {
        samples.sort_by_key(|s| s.0);
        samples.dedup_by_key(|s| s.0);
        let t = Tabulated::new(samples.clone());
        for (p, v) in samples {
            prop_assert!((t.eval(p) - v).abs() < 1e-12);
        }
    }

    #[test]
    fn replication_invariants(p in 0..256usize, floor in 0..16usize, replicable: bool) {
        match max_replication(p, floor, replicable) {
            None => prop_assert!(p < floor.max(1)),
            Some(r) => {
                prop_assert!(r.instances >= 1);
                prop_assert!(r.procs_per_instance >= floor.max(1));
                prop_assert!(r.total_procs() <= p);
                if !replicable {
                    prop_assert_eq!(r.instances, 1);
                    prop_assert_eq!(r.procs_per_instance, p);
                } else {
                    // Maximality: one more instance would break the floor.
                    prop_assert!(p / (r.instances + 1) < floor.max(1));
                    // Wasted processors are fewer than one instance.
                    prop_assert!(p - r.total_procs() < r.procs_per_instance.max(1) + r.instances);
                }
            }
        }
    }

    #[test]
    fn memory_min_procs_is_tight(
        resident in 0.0..500.0f64,
        distributed in 0.0..100_000.0f64,
        capacity in 1.0..2_000.0f64,
    ) {
        let m = MemoryReq::new(resident, distributed);
        match m.min_procs(capacity) {
            None => prop_assert!(resident > capacity || (resident == capacity && distributed > 0.0)),
            Some(p) => {
                prop_assert!(m.fits(p, capacity), "p_min {p} does not fit");
                if p > 1 {
                    prop_assert!(!m.fits(p - 1, capacity), "p_min {p} not tight");
                }
            }
        }
    }

    #[test]
    fn cost_sum_associates(
        coeffs in prop::collection::vec((0.0..3.0f64, 0.0..3.0f64, 0.0..0.5f64), 1..6),
        p in 1..64usize,
    ) {
        let costs: Vec<UnaryCost> = coeffs
            .iter()
            .map(|&(a, b, c)| UnaryCost::Poly(PolyUnary::new(a, b, c)))
            .collect();
        let left = costs
            .iter()
            .fold(UnaryCost::Zero, |acc, c| acc.add(c));
        let right = costs
            .iter()
            .rev()
            .fold(UnaryCost::Zero, |acc, c| acc.add(c));
        let direct: f64 = costs.iter().map(|c| c.eval(p)).sum();
        prop_assert!((left.eval(p) - direct).abs() < 1e-9);
        prop_assert!((right.eval(p) - direct).abs() < 1e-9);
    }
}
