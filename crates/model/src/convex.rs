//! Discrete shape checks for cost functions.
//!
//! The paper's optimality theorems for the greedy algorithm (§4.1) hold
//! under testable hypotheses:
//!
//! * **Theorem 1**: communication time increases monotonically with the
//!   number of processors involved — `f_ecom(i, j) ≤ f_ecom(i+x, j+y)` for
//!   `x, y ≥ 0`;
//! * **Theorem 2**: all computation and communication functions are
//!   *convex* (the improvement from each added processor shrinks), and
//!   computation dominates communication (`δ_exec > 4 · δ_comm`).
//!
//! §3.2's maximal-replication argument additionally assumes *no superlinear
//! speedup*: adding a processor to `k` processors cannot shrink the time by
//! more than the factor `k/(k+1)`.
//!
//! These helpers verify the hypotheses over a finite processor range so that
//! callers (tests, the mapping tool's diagnostics) can decide whether the
//! greedy result is provably optimal or merely heuristic.

use crate::cost::{BinaryCost, UnaryCost};
use crate::Procs;

/// Small tolerance for floating-point comparisons of times.
const EPS: f64 = 1e-9;

/// True if `f` is non-increasing in `p` over `[1, max_p]` (more processors
/// never slow the task down). Not required by the paper in general — the
/// `C3·p` overhead term violates it at large `p` — but useful to detect
/// compute-dominant regimes.
pub fn is_nonincreasing_unary(f: &UnaryCost, max_p: Procs) -> bool {
    (1..max_p).all(|p| f.eval(p + 1) <= f.eval(p) + EPS)
}

/// True if `f` is discretely convex on `[1, max_p]`: the decrease obtained
/// by each added processor is no larger than the decrease from the previous
/// addition, i.e. `f(p) - f(p+1) ≤ f(p-1) - f(p)` (Theorem 2, condition 1).
pub fn is_convex_unary(f: &UnaryCost, max_p: Procs) -> bool {
    (2..max_p).all(|p| {
        let d_prev = f.eval(p - 1) - f.eval(p);
        let d_next = f.eval(p) - f.eval(p + 1);
        d_next <= d_prev + EPS
    })
}

/// Theorem 1 hypothesis: external communication time is monotone
/// non-decreasing in *both* endpoint processor counts over `[1, max_p]²`.
pub fn is_monotone_comm(f: &BinaryCost, max_p: Procs) -> bool {
    for s in 1..=max_p {
        for r in 1..=max_p {
            let base = f.eval(s, r);
            if s < max_p && f.eval(s + 1, r) + EPS < base {
                return false;
            }
            if r < max_p && f.eval(s, r + 1) + EPS < base {
                return false;
            }
        }
    }
    true
}

/// §3.2 hypothesis: no superlinear speedup. Adding a processor to `p`
/// processors decreases the time by at most the factor `p/(p+1)`:
/// `f(p+1) ≥ f(p) · p/(p+1)`.
pub fn no_superlinear_speedup(f: &UnaryCost, max_p: Procs) -> bool {
    (1..max_p).all(|p| {
        let bound = f.eval(p) * (p as f64) / ((p + 1) as f64);
        f.eval(p + 1) + EPS >= bound
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poly::{PolyEcom, PolyUnary};
    use crate::table::Tabulated;

    #[test]
    fn perfectly_parallel_is_convex_and_not_superlinear() {
        let f = UnaryCost::Poly(PolyUnary::perfectly_parallel(64.0));
        assert!(is_convex_unary(&f, 64));
        assert!(no_superlinear_speedup(&f, 64));
        assert!(is_nonincreasing_unary(&f, 64));
    }

    #[test]
    fn overhead_term_breaks_monotonicity_but_not_convexity() {
        let f = UnaryCost::Poly(PolyUnary::new(0.0, 16.0, 1.0));
        assert!(!is_nonincreasing_unary(&f, 64));
        assert!(is_convex_unary(&f, 64));
    }

    #[test]
    fn superlinear_table_is_detected() {
        // Time drops from 10 to 2 when going from 2 to 3 processors:
        // 2 < 10 * 2/3, i.e. superlinear.
        let f = UnaryCost::Table(Tabulated::new(vec![(1, 12.0), (2, 10.0), (3, 2.0)]));
        assert!(!no_superlinear_speedup(&f, 3));
    }

    #[test]
    fn paper_counterexample_is_nonconvex() {
        // §4.1's extreme example: 2..9 processors have no effect, the 10th
        // improves dramatically. That step function is not convex.
        let f = UnaryCost::custom(|p| if p >= 10 { 1.0 } else { 50.0 });
        assert!(!is_convex_unary(&f, 16));
    }

    #[test]
    fn overhead_dominated_comm_is_monotone() {
        // Software overhead grows with both group sizes (the regime where
        // the paper says Theorem 1 applies).
        let f = BinaryCost::Poly(PolyEcom::new(1.0, 0.0, 0.0, 0.5, 0.5));
        assert!(is_monotone_comm(&f, 32));
    }

    #[test]
    fn bandwidth_dominated_comm_is_not_monotone() {
        let f = BinaryCost::Poly(PolyEcom::new(0.0, 10.0, 10.0, 0.0, 0.0));
        assert!(!is_monotone_comm(&f, 32));
    }

    #[test]
    fn zero_costs_satisfy_everything() {
        assert!(is_convex_unary(&UnaryCost::Zero, 64));
        assert!(no_superlinear_speedup(&UnaryCost::Zero, 64));
        assert!(is_monotone_comm(&BinaryCost::Zero, 16));
        assert!(is_nonincreasing_unary(&UnaryCost::Zero, 64));
    }
}
