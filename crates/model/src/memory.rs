//! The memory model (§3.2, §5).
//!
//! Each task requires a minimum number of processors `p_min` to execute,
//! driven by per-processor memory capacity. The paper measures memory for
//! "global and system variables, local variables, and compiler buffers"; we
//! model the same split as a *resident* component (replicated on every
//! processor — code, system state, scalar locals) and a *distributed*
//! component (the data arrays, divided across the processors of the
//! module). `p_min` matters twice in the mapping problem:
//!
//! * it bounds processor allocation from below, and
//! * it caps the replication degree of a module (§3.2: a module with `p`
//!   processors is replicated `⌊p / p_min⌋` times), which is why clustering
//!   two memory-hungry tasks can *reduce* throughput even when it removes a
//!   communication step — the paper's FFT-Hist analysis in §6.3 hinges on
//!   exactly this effect.

use crate::Procs;

/// Memory requirement of a task or module, in bytes.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct MemoryReq {
    /// Bytes replicated on every processor of the module (code, system
    /// variables, scalar locals, fixed compiler buffers).
    pub resident_bytes: f64,
    /// Bytes distributed across the processors of the module (array data).
    pub distributed_bytes: f64,
}

impl MemoryReq {
    /// A new memory requirement.
    pub const fn new(resident_bytes: f64, distributed_bytes: f64) -> Self {
        Self {
            resident_bytes,
            distributed_bytes,
        }
    }

    /// No memory requirement (always fits).
    pub const fn none() -> Self {
        Self::new(0.0, 0.0)
    }

    /// Bytes needed on each processor when the module runs on `p`
    /// processors.
    pub fn per_proc(&self, p: Procs) -> f64 {
        if p == 0 {
            return f64::INFINITY;
        }
        self.resident_bytes + self.distributed_bytes / p as f64
    }

    /// The minimum number of processors so that the per-processor
    /// requirement fits in `capacity_bytes`, or `None` if no processor count
    /// suffices (resident part alone exceeds capacity).
    pub fn min_procs(&self, capacity_bytes: f64) -> Option<Procs> {
        assert!(capacity_bytes > 0.0, "capacity must be positive");
        let avail = capacity_bytes - self.resident_bytes;
        if avail <= 0.0 {
            return if self.distributed_bytes <= 0.0 && self.resident_bytes <= capacity_bytes {
                Some(1)
            } else {
                None
            };
        }
        let p = (self.distributed_bytes / avail).ceil() as Procs;
        Some(p.max(1))
    }

    /// Combined requirement when tasks are clustered into one module: both
    /// components add, because a module holds all of its members' state at
    /// once. (This is the §3.3 assumption that a module's memory requirement
    /// is computable in O(1) from its members'.)
    pub fn combine(&self, other: &MemoryReq) -> MemoryReq {
        MemoryReq::new(
            self.resident_bytes + other.resident_bytes,
            self.distributed_bytes + other.distributed_bytes,
        )
    }

    /// True if the module fits on `p` processors of `capacity_bytes` each.
    pub fn fits(&self, p: Procs, capacity_bytes: f64) -> bool {
        self.per_proc(p) <= capacity_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_proc_divides_distributed_only() {
        let m = MemoryReq::new(100.0, 1000.0);
        assert!((m.per_proc(1) - 1100.0).abs() < 1e-9);
        assert!((m.per_proc(10) - 200.0).abs() < 1e-9);
        assert!(m.per_proc(0).is_infinite());
    }

    #[test]
    fn min_procs_basic() {
        // 1000 distributed, capacity 300, no resident: ceil(1000/300) = 4.
        assert_eq!(MemoryReq::new(0.0, 1000.0).min_procs(300.0), Some(4));
        // Resident eats into capacity: ceil(1000/(300-100)) = 5.
        assert_eq!(MemoryReq::new(100.0, 1000.0).min_procs(300.0), Some(5));
    }

    #[test]
    fn min_procs_at_least_one() {
        assert_eq!(MemoryReq::none().min_procs(1.0), Some(1));
        assert_eq!(MemoryReq::new(0.0, 0.5).min_procs(1.0), Some(1));
    }

    #[test]
    fn min_procs_impossible() {
        // Resident part alone exceeds capacity: never fits.
        assert_eq!(MemoryReq::new(400.0, 10.0).min_procs(300.0), None);
        // Resident exactly at capacity with no distributed data fits on 1.
        assert_eq!(MemoryReq::new(300.0, 0.0).min_procs(300.0), Some(1));
    }

    #[test]
    fn min_procs_is_tight() {
        let m = MemoryReq::new(50.0, 10_000.0);
        let cap = 1_000.0;
        let p = m.min_procs(cap).unwrap();
        assert!(m.fits(p, cap), "p_min must fit");
        if p > 1 {
            assert!(!m.fits(p - 1, cap), "p_min - 1 must not fit");
        }
    }

    #[test]
    fn combine_adds_components() {
        let a = MemoryReq::new(10.0, 100.0);
        let b = MemoryReq::new(5.0, 50.0);
        assert_eq!(a.combine(&b), MemoryReq::new(15.0, 150.0));
    }

    #[test]
    fn combine_raises_min_procs() {
        // The §6.3 effect: merging raises the memory floor.
        let cap = 100.0;
        let a = MemoryReq::new(0.0, 300.0);
        let b = MemoryReq::new(0.0, 300.0);
        assert_eq!(a.min_procs(cap), Some(3));
        assert_eq!(a.combine(&b).min_procs(cap), Some(6));
    }
}
