//! # pipemap-model
//!
//! Cost models for pipelines of data parallel tasks, following the execution
//! model of Subhlok & Vondran, *Optimal Mapping of Sequences of Data Parallel
//! Tasks* (PPoPP 1995), §2 and §5.
//!
//! A chain of tasks `t1 → t2 → … → tk` is characterised by three families of
//! time functions:
//!
//! * `f_exec_i(p)` — execution time of task `i` on `p` processors,
//! * `f_icom_{i→i+1}(p)` — *internal* communication (data redistribution)
//!   time when both tasks run on the **same** `p` processors,
//! * `f_ecom_{i→i+1}(ps, pr)` — *external* communication time when the tasks
//!   run on **disjoint** groups of `ps` (sender) and `pr` (receiver)
//!   processors.
//!
//! The paper's automatic tool models these as low-order polynomials in `p`
//! and `1/p` fitted from a handful of profiled executions (§5); this crate
//! provides those polynomial forms ([`PolyUnary`], [`PolyEcom`]), tabulated /
//! interpolated forms, and arbitrary user closures, behind the uniform
//! [`UnaryCost`] / [`BinaryCost`] evaluators. The mapping algorithms in
//! `pipemap-core` work with *any* of these — one of the paper's stated
//! advantages over mathematical-programming approaches.
//!
//! The crate also implements the paper's memory model (per-processor memory
//! requirements determine the minimum feasible processor count of a task or
//! module, §3.2/§5) and the *maximal replication* rule (§3.2): given `p`
//! processors and a floor of `p_min`, a replicable module is split into
//! `⌊p / p_min⌋` instances of `⌊p / r⌋` processors each, and its *effective*
//! response time is `f(p_instance) / r`.

pub mod compose;
pub mod convex;
pub mod cost;
pub mod memory;
pub mod poly;
pub mod replicate;
pub mod table;

pub use compose::{module_exec_time, module_memory, ComposedModule};
pub use convex::{
    is_convex_unary, is_monotone_comm, is_nonincreasing_unary, no_superlinear_speedup,
};
pub use cost::{BinaryCost, UnaryCost};
pub use memory::MemoryReq;
pub use poly::{PolyEcom, PolyUnary};
pub use replicate::{max_replication, Replication};
pub use table::{DenseCostTable, Tabulated, Tabulated2d};

/// Wall-clock time in seconds. All cost functions return this unit.
pub type Seconds = f64;

/// A processor count. Processor counts are always ≥ 1 when passed to cost
/// functions; evaluating a cost at `p = 0` is a caller bug and the
/// polynomial forms will return `+inf` to make such bugs loud rather than
/// silently producing a division by zero that propagates `NaN`.
pub type Procs = usize;
