//! Composition of task costs into module costs (§2.2, §3.3).
//!
//! "The execution and communication functions of the modules can be composed
//! from the corresponding functions of the tasks that constitute the
//! module." A module containing the contiguous tasks `t_i..t_j` running on
//! one group of `p` processors spends, per data set:
//!
//! ```text
//! exec_module(p) = Σ_{l=i..j} f_exec_l(p)  +  Σ_{l=i..j-1} f_icom_{l→l+1}(p)
//! ```
//!
//! — every member's execution plus the internal redistributions between
//! members. The module's *external* communication at its two boundaries is
//! just the boundary edges' `f_ecom`, and its memory requirement is the sum
//! of its members' (see [`crate::memory`]).
//!
//! §3.3 requires this composition to be O(1) during the clustering DP; the
//! [`ComposedModule`] builder keeps shallow sums so repeated composition
//! stays cheap, and `pipemap-chain` additionally maintains prefix tables for
//! strictly O(1) *evaluation* during the DP inner loops.

use crate::cost::UnaryCost;
use crate::memory::MemoryReq;
use crate::{Procs, Seconds};

/// Execution time of a module made of the given member tasks on `p`
/// processors: sum of member executions plus internal redistributions.
///
/// `execs` are the member tasks' `f_exec`; `internal_icoms` are the
/// `f_icom` of the edges *strictly inside* the module (one fewer than the
/// member count).
pub fn module_exec_time(execs: &[UnaryCost], internal_icoms: &[UnaryCost], p: Procs) -> Seconds {
    debug_assert!(
        execs.is_empty() || internal_icoms.len() == execs.len() - 1,
        "a module of n tasks has n-1 internal edges"
    );
    execs.iter().map(|f| f.eval(p)).sum::<Seconds>()
        + internal_icoms.iter().map(|f| f.eval(p)).sum::<Seconds>()
}

/// Memory requirement of a module: sum of its members'.
pub fn module_memory(members: &[MemoryReq]) -> MemoryReq {
    members
        .iter()
        .fold(MemoryReq::none(), |acc, m| acc.combine(m))
}

/// An incrementally-built module: tasks are appended on the right, costs
/// and memory compose in O(1) per appended task.
#[derive(Clone, Debug, Default)]
pub struct ComposedModule {
    exec: UnaryCost,
    memory: MemoryReq,
    len: usize,
    replicable: bool,
}

impl ComposedModule {
    /// An empty module (identity for composition).
    pub fn empty() -> Self {
        Self {
            exec: UnaryCost::Zero,
            memory: MemoryReq::none(),
            len: 0,
            replicable: true,
        }
    }

    /// A module containing a single task.
    pub fn single(exec: UnaryCost, memory: MemoryReq, replicable: bool) -> Self {
        Self {
            exec,
            memory,
            len: 1,
            replicable,
        }
    }

    /// Append a task on the right. `icom_joining` is the internal
    /// communication of the edge between the current last member and the
    /// appended task (ignored when the module was empty).
    pub fn push(
        &mut self,
        exec: UnaryCost,
        memory: MemoryReq,
        replicable: bool,
        icom_joining: &UnaryCost,
    ) {
        if self.len > 0 {
            self.exec = self.exec.add(icom_joining);
        }
        self.exec = self.exec.add(&exec);
        self.memory = self.memory.combine(&memory);
        self.replicable &= replicable;
        self.len += 1;
    }

    /// Combined execution time function (members + internal edges).
    pub fn exec(&self) -> &UnaryCost {
        &self.exec
    }

    /// Combined memory requirement.
    pub fn memory(&self) -> MemoryReq {
        self.memory
    }

    /// Number of member tasks.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no tasks have been appended.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True iff every member task is replicable (§2.2: only modules composed
    /// exclusively of replicable tasks are replicable).
    pub fn replicable(&self) -> bool {
        self.replicable
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poly::PolyUnary;

    fn pp(total: f64) -> UnaryCost {
        UnaryCost::Poly(PolyUnary::perfectly_parallel(total))
    }

    #[test]
    fn module_exec_sums_members_and_internal_edges() {
        let execs = vec![pp(8.0), pp(4.0)];
        let icoms = vec![UnaryCost::Poly(PolyUnary::new(1.0, 0.0, 0.0))];
        // On 4 procs: 2 + 1 + 1 = 4.
        assert!((module_exec_time(&execs, &icoms, 4) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn singleton_module_has_no_internal_comm() {
        let execs = vec![pp(8.0)];
        assert!((module_exec_time(&execs, &[], 2) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn module_memory_sums() {
        let m = module_memory(&[MemoryReq::new(1.0, 10.0), MemoryReq::new(2.0, 20.0)]);
        assert_eq!(m, MemoryReq::new(3.0, 30.0));
    }

    #[test]
    fn composed_module_incremental_matches_batch() {
        let execs = vec![pp(8.0), pp(4.0), pp(2.0)];
        let icoms = vec![
            UnaryCost::Poly(PolyUnary::new(0.5, 0.0, 0.0)),
            UnaryCost::Poly(PolyUnary::new(0.25, 0.0, 0.0)),
        ];
        let mut m = ComposedModule::empty();
        m.push(execs[0].clone(), MemoryReq::none(), true, &UnaryCost::Zero);
        m.push(execs[1].clone(), MemoryReq::none(), true, &icoms[0]);
        m.push(execs[2].clone(), MemoryReq::none(), true, &icoms[1]);
        for p in 1..=16 {
            let batch = module_exec_time(&execs, &icoms, p);
            assert!((m.exec().eval(p) - batch).abs() < 1e-12, "p = {p}");
        }
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn replicability_is_conjunctive() {
        let mut m = ComposedModule::empty();
        assert!(m.replicable());
        m.push(pp(1.0), MemoryReq::none(), true, &UnaryCost::Zero);
        assert!(m.replicable());
        m.push(pp(1.0), MemoryReq::none(), false, &UnaryCost::Zero);
        assert!(!m.replicable());
        m.push(pp(1.0), MemoryReq::none(), true, &UnaryCost::Zero);
        assert!(!m.replicable());
    }

    #[test]
    fn first_push_ignores_joining_icom() {
        let mut m = ComposedModule::empty();
        let heavy = UnaryCost::Poly(PolyUnary::new(100.0, 0.0, 0.0));
        m.push(pp(4.0), MemoryReq::none(), true, &heavy);
        assert!((m.exec().eval(1) - 4.0).abs() < 1e-12);
    }
}
