//! Polynomial cost-function forms from §5 of the paper.
//!
//! The paper models the execution time of a task on `p` processors as
//!
//! ```text
//! f_exec(p) = C1 + C2/p + C3·p
//! ```
//!
//! where `C1` captures fixed-cost sequential and replicated computation,
//! `C2/p` the perfectly parallel part, and `C3·p` overheads that grow with
//! the number of processors. Internal communication (redistribution on the
//! same processor group) uses the same three-term form. External
//! communication between a group of `ps` senders and `pr` receivers uses the
//! five-term form
//!
//! ```text
//! f_ecom(ps, pr) = C1 + C2/ps + C3/pr + C4·ps + C5·pr
//! ```

use crate::{Procs, Seconds};

/// Three-term polynomial `c1 + c2/p + c3·p` used for execution time and
/// internal (same-group) communication time.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct PolyUnary {
    /// Fixed cost independent of the processor count (sequential and
    /// replicated computation, fixed communication overhead).
    pub c1: f64,
    /// Coefficient of the `1/p` term: perfectly parallel work.
    pub c2: f64,
    /// Coefficient of the `p` term: per-processor overhead.
    pub c3: f64,
}

impl PolyUnary {
    /// A new three-term polynomial model.
    pub const fn new(c1: f64, c2: f64, c3: f64) -> Self {
        Self { c1, c2, c3 }
    }

    /// The zero function (no cost).
    pub const fn zero() -> Self {
        Self::new(0.0, 0.0, 0.0)
    }

    /// A perfectly parallel workload of `total` seconds of single-processor
    /// work: `f(p) = total / p`.
    pub const fn perfectly_parallel(total: f64) -> Self {
        Self::new(0.0, total, 0.0)
    }

    /// Evaluate at `p` processors. Returns `+inf` for `p = 0`.
    pub fn eval(&self, p: Procs) -> Seconds {
        if p == 0 {
            return f64::INFINITY;
        }
        let pf = p as f64;
        self.c1 + self.c2 / pf + self.c3 * pf
    }

    /// Pointwise sum of two models (used when composing tasks into modules:
    /// the per-data-set execution time of a module is the sum of its member
    /// tasks' execution times plus the internal communication between them).
    pub fn add(&self, other: &Self) -> Self {
        Self::new(self.c1 + other.c1, self.c2 + other.c2, self.c3 + other.c3)
    }

    /// Scale all coefficients by `k` (e.g. per-byte cost × message size).
    pub fn scale(&self, k: f64) -> Self {
        Self::new(self.c1 * k, self.c2 * k, self.c3 * k)
    }

    /// The processor count in `[lo, hi]` minimising the cost. With `c2, c3
    /// ≥ 0` the function is convex in `p` and the unconstrained minimiser is
    /// `sqrt(c2/c3)`; this helper is exact for any coefficients because it
    /// checks the clamped candidates and the interval ends.
    pub fn argmin(&self, lo: Procs, hi: Procs) -> Procs {
        assert!(lo >= 1 && lo <= hi, "invalid range [{lo}, {hi}]");
        let mut best = lo;
        let mut best_t = self.eval(lo);
        let consider = |p: Procs, best: &mut Procs, best_t: &mut Seconds| {
            if p >= lo && p <= hi {
                let t = self.eval(p);
                if t < *best_t {
                    *best = p;
                    *best_t = t;
                }
            }
        };
        consider(hi, &mut best, &mut best_t);
        if self.c3 > 0.0 && self.c2 > 0.0 {
            let x = (self.c2 / self.c3).sqrt();
            consider(x.floor().max(1.0) as Procs, &mut best, &mut best_t);
            consider(x.ceil().max(1.0) as Procs, &mut best, &mut best_t);
        }
        best
    }
}

/// Five-term polynomial `c1 + c2/ps + c3/pr + c4·ps + c5·pr` used for
/// external communication between disjoint processor groups.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct PolyEcom {
    /// Fixed communication overhead.
    pub c1: f64,
    /// Coefficient of `1/ps`: send-side parallelism.
    pub c2: f64,
    /// Coefficient of `1/pr`: receive-side parallelism.
    pub c3: f64,
    /// Coefficient of `ps`: send-side per-processor overhead.
    pub c4: f64,
    /// Coefficient of `pr`: receive-side per-processor overhead.
    pub c5: f64,
}

impl PolyEcom {
    /// A new five-term external-communication model.
    pub const fn new(c1: f64, c2: f64, c3: f64, c4: f64, c5: f64) -> Self {
        Self { c1, c2, c3, c4, c5 }
    }

    /// The zero function (no cost).
    pub const fn zero() -> Self {
        Self::new(0.0, 0.0, 0.0, 0.0, 0.0)
    }

    /// Evaluate for `ps` sending and `pr` receiving processors. Returns
    /// `+inf` if either count is zero.
    pub fn eval(&self, ps: Procs, pr: Procs) -> Seconds {
        if ps == 0 || pr == 0 {
            return f64::INFINITY;
        }
        let (s, r) = (ps as f64, pr as f64);
        self.c1 + self.c2 / s + self.c3 / r + self.c4 * s + self.c5 * r
    }

    /// Pointwise sum of two models.
    pub fn add(&self, other: &Self) -> Self {
        Self::new(
            self.c1 + other.c1,
            self.c2 + other.c2,
            self.c3 + other.c3,
            self.c4 + other.c4,
            self.c5 + other.c5,
        )
    }

    /// Scale all coefficients by `k`.
    pub fn scale(&self, k: f64) -> Self {
        Self::new(
            self.c1 * k,
            self.c2 * k,
            self.c3 * k,
            self.c4 * k,
            self.c5 * k,
        )
    }

    /// Collapse to the three-term internal form by identifying the sender
    /// and receiver groups (`ps = pr = p`). This is how a fitted external
    /// model is reused as a redistribution estimate when two tasks are
    /// clustered and no separate internal profile is available.
    pub fn diagonal(&self) -> PolyUnary {
        PolyUnary::new(self.c1, self.c2 + self.c3, self.c4 + self.c5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unary_eval_basic() {
        let f = PolyUnary::new(1.0, 8.0, 0.5);
        assert!((f.eval(1) - 9.5).abs() < 1e-12);
        assert!((f.eval(2) - (1.0 + 4.0 + 1.0)).abs() < 1e-12);
        assert!((f.eval(8) - (1.0 + 1.0 + 4.0)).abs() < 1e-12);
    }

    #[test]
    fn unary_zero_procs_is_infinite() {
        assert!(PolyUnary::new(1.0, 1.0, 1.0).eval(0).is_infinite());
        assert!(PolyEcom::new(1.0, 1.0, 1.0, 0.0, 0.0)
            .eval(0, 4)
            .is_infinite());
        assert!(PolyEcom::new(1.0, 1.0, 1.0, 0.0, 0.0)
            .eval(4, 0)
            .is_infinite());
    }

    #[test]
    fn unary_add_and_scale() {
        let a = PolyUnary::new(1.0, 2.0, 3.0);
        let b = PolyUnary::new(0.5, 0.5, 0.5);
        let s = a.add(&b);
        assert_eq!(s, PolyUnary::new(1.5, 2.5, 3.5));
        assert_eq!(a.scale(2.0), PolyUnary::new(2.0, 4.0, 6.0));
    }

    #[test]
    fn unary_argmin_interior() {
        // c2/p + c3*p minimised at sqrt(c2/c3) = sqrt(100/1) = 10.
        let f = PolyUnary::new(0.0, 100.0, 1.0);
        assert_eq!(f.argmin(1, 64), 10);
        // Clamped at range ends.
        assert_eq!(f.argmin(12, 64), 12);
        assert_eq!(f.argmin(1, 7), 7);
    }

    #[test]
    fn unary_argmin_monotone_cases() {
        // Pure parallel: more processors is always better.
        assert_eq!(PolyUnary::perfectly_parallel(10.0).argmin(1, 32), 32);
        // Pure overhead: fewer is better.
        assert_eq!(PolyUnary::new(0.0, 0.0, 1.0).argmin(1, 32), 1);
    }

    #[test]
    fn ecom_eval_basic() {
        let f = PolyEcom::new(1.0, 4.0, 8.0, 0.25, 0.125);
        let t = f.eval(2, 4);
        assert!((t - (1.0 + 2.0 + 2.0 + 0.5 + 0.5)).abs() < 1e-12);
    }

    #[test]
    fn ecom_diagonal_matches_identified_eval() {
        let f = PolyEcom::new(1.0, 4.0, 8.0, 0.25, 0.125);
        let d = f.diagonal();
        for p in 1..=32 {
            assert!((d.eval(p) - f.eval(p, p)).abs() < 1e-12, "p = {p}");
        }
    }

    #[test]
    fn perfectly_parallel_halves() {
        let f = PolyUnary::perfectly_parallel(12.0);
        assert!((f.eval(1) - 12.0).abs() < 1e-12);
        assert!((f.eval(2) - 6.0).abs() < 1e-12);
        assert!((f.eval(4) - 3.0).abs() < 1e-12);
    }
}
