//! Uniform cost-function evaluators.
//!
//! [`UnaryCost`] is a cost as a function of one processor count (execution
//! time, internal communication); [`BinaryCost`] is a cost as a function of
//! sender and receiver processor counts (external communication). Both are
//! closed under pointwise addition and scaling so that modules (clusters of
//! tasks) can compose their members' costs, and both admit arbitrary
//! user-supplied closures — the mapping algorithms never assume a particular
//! functional form.

use std::fmt;
use std::sync::Arc;

use crate::poly::{PolyEcom, PolyUnary};
use crate::table::{Tabulated, Tabulated2d};
use crate::{Procs, Seconds};

/// A cost as a function of a single processor count: `f(p)`.
///
/// Used for task execution time (`f_exec`) and internal communication /
/// redistribution time (`f_icom`).
#[derive(Clone, Default)]
pub enum UnaryCost {
    /// Identically zero.
    #[default]
    Zero,
    /// The paper's three-term polynomial `c1 + c2/p + c3·p`.
    Poly(PolyUnary),
    /// Pointwise samples with linear interpolation.
    Table(Tabulated),
    /// Pointwise sum of sub-costs.
    Sum(Vec<UnaryCost>),
    /// An arbitrary function of the processor count.
    Custom(Arc<dyn Fn(Procs) -> Seconds + Send + Sync>),
}

impl UnaryCost {
    /// Evaluate at `p` processors.
    pub fn eval(&self, p: Procs) -> Seconds {
        match self {
            UnaryCost::Zero => 0.0,
            UnaryCost::Poly(f) => f.eval(p),
            UnaryCost::Table(t) => t.eval(p),
            UnaryCost::Sum(parts) => parts.iter().map(|c| c.eval(p)).sum(),
            UnaryCost::Custom(f) => {
                if p == 0 {
                    f64::INFINITY
                } else {
                    f(p)
                }
            }
        }
    }

    /// Build from an arbitrary closure.
    pub fn custom(f: impl Fn(Procs) -> Seconds + Send + Sync + 'static) -> Self {
        UnaryCost::Custom(Arc::new(f))
    }

    /// Pointwise sum. Polynomials are folded algebraically; anything else
    /// becomes a [`UnaryCost::Sum`] node (still O(1)-composable as the
    /// paper's clustering step requires, since the sum is shallow).
    pub fn add(&self, other: &UnaryCost) -> UnaryCost {
        match (self, other) {
            (UnaryCost::Zero, c) | (c, UnaryCost::Zero) => c.clone(),
            (UnaryCost::Poly(a), UnaryCost::Poly(b)) => UnaryCost::Poly(a.add(b)),
            (UnaryCost::Sum(a), UnaryCost::Sum(b)) => {
                let mut v = a.clone();
                v.extend(b.iter().cloned());
                UnaryCost::Sum(v)
            }
            (UnaryCost::Sum(a), c) => {
                let mut v = a.clone();
                v.push(c.clone());
                UnaryCost::Sum(v)
            }
            (c, UnaryCost::Sum(b)) => {
                let mut v = vec![c.clone()];
                v.extend(b.iter().cloned());
                UnaryCost::Sum(v)
            }
            (a, b) => UnaryCost::Sum(vec![a.clone(), b.clone()]),
        }
    }

    /// True if this cost is identically zero (structural check only).
    pub fn is_zero(&self) -> bool {
        match self {
            UnaryCost::Zero => true,
            UnaryCost::Poly(f) => *f == PolyUnary::zero(),
            UnaryCost::Sum(parts) => parts.iter().all(UnaryCost::is_zero),
            _ => false,
        }
    }
}

impl From<PolyUnary> for UnaryCost {
    fn from(p: PolyUnary) -> Self {
        UnaryCost::Poly(p)
    }
}

impl From<Tabulated> for UnaryCost {
    fn from(t: Tabulated) -> Self {
        UnaryCost::Table(t)
    }
}

impl fmt::Debug for UnaryCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnaryCost::Zero => write!(f, "Zero"),
            UnaryCost::Poly(p) => write!(f, "Poly({p:?})"),
            UnaryCost::Table(t) => write!(f, "Table({} pts)", t.points().len()),
            UnaryCost::Sum(parts) => f.debug_tuple("Sum").field(parts).finish(),
            UnaryCost::Custom(_) => write!(f, "Custom(..)"),
        }
    }
}

/// A cost as a function of sender and receiver processor counts:
/// `f(ps, pr)`. Used for external communication (`f_ecom`).
#[derive(Clone, Default)]
pub enum BinaryCost {
    /// Identically zero.
    #[default]
    Zero,
    /// The paper's five-term polynomial.
    Poly(PolyEcom),
    /// Grid samples with bilinear interpolation.
    Table(Tabulated2d),
    /// Pointwise sum of sub-costs.
    Sum(Vec<BinaryCost>),
    /// An arbitrary function of `(ps, pr)`.
    Custom(Arc<dyn Fn(Procs, Procs) -> Seconds + Send + Sync>),
}

impl BinaryCost {
    /// Evaluate for `ps` senders and `pr` receivers.
    pub fn eval(&self, ps: Procs, pr: Procs) -> Seconds {
        match self {
            BinaryCost::Zero => 0.0,
            BinaryCost::Poly(f) => f.eval(ps, pr),
            BinaryCost::Table(t) => t.eval(ps, pr),
            BinaryCost::Sum(parts) => parts.iter().map(|c| c.eval(ps, pr)).sum(),
            BinaryCost::Custom(f) => {
                if ps == 0 || pr == 0 {
                    f64::INFINITY
                } else {
                    f(ps, pr)
                }
            }
        }
    }

    /// Build from an arbitrary closure.
    pub fn custom(f: impl Fn(Procs, Procs) -> Seconds + Send + Sync + 'static) -> Self {
        BinaryCost::Custom(Arc::new(f))
    }

    /// Pointwise sum (polynomials folded algebraically).
    pub fn add(&self, other: &BinaryCost) -> BinaryCost {
        match (self, other) {
            (BinaryCost::Zero, c) | (c, BinaryCost::Zero) => c.clone(),
            (BinaryCost::Poly(a), BinaryCost::Poly(b)) => BinaryCost::Poly(a.add(b)),
            (a, b) => BinaryCost::Sum(vec![a.clone(), b.clone()]),
        }
    }

    /// The unary cost obtained by identifying sender and receiver groups
    /// (`ps = pr = p`); used as a fallback internal-communication estimate.
    pub fn diagonal(&self) -> UnaryCost {
        match self {
            BinaryCost::Zero => UnaryCost::Zero,
            BinaryCost::Poly(f) => UnaryCost::Poly(f.diagonal()),
            other => {
                let c = other.clone();
                UnaryCost::custom(move |p| c.eval(p, p))
            }
        }
    }

    /// True if this cost is identically zero (structural check only).
    pub fn is_zero(&self) -> bool {
        match self {
            BinaryCost::Zero => true,
            BinaryCost::Poly(f) => *f == PolyEcom::zero(),
            BinaryCost::Sum(parts) => parts.iter().all(BinaryCost::is_zero),
            _ => false,
        }
    }
}

impl From<PolyEcom> for BinaryCost {
    fn from(p: PolyEcom) -> Self {
        BinaryCost::Poly(p)
    }
}

impl From<Tabulated2d> for BinaryCost {
    fn from(t: Tabulated2d) -> Self {
        BinaryCost::Table(t)
    }
}

impl fmt::Debug for BinaryCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BinaryCost::Zero => write!(f, "Zero"),
            BinaryCost::Poly(p) => write!(f, "Poly({p:?})"),
            BinaryCost::Table(_) => write!(f, "Table(..)"),
            BinaryCost::Sum(parts) => f.debug_tuple("Sum").field(parts).finish(),
            BinaryCost::Custom(_) => write!(f, "Custom(..)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_eval() {
        assert_eq!(UnaryCost::Zero.eval(1), 0.0);
        assert_eq!(BinaryCost::Zero.eval(3, 5), 0.0);
    }

    #[test]
    fn poly_addition_folds() {
        let a = UnaryCost::Poly(PolyUnary::new(1.0, 2.0, 3.0));
        let b = UnaryCost::Poly(PolyUnary::new(1.0, 2.0, 3.0));
        match a.add(&b) {
            UnaryCost::Poly(p) => assert_eq!(p, PolyUnary::new(2.0, 4.0, 6.0)),
            other => panic!("expected folded poly, got {other:?}"),
        }
    }

    #[test]
    fn add_zero_is_identity() {
        let a = UnaryCost::Poly(PolyUnary::new(1.0, 2.0, 3.0));
        let s = a.add(&UnaryCost::Zero);
        assert!((s.eval(4) - a.eval(4)).abs() < 1e-12);
        let b = BinaryCost::Poly(PolyEcom::new(1.0, 1.0, 1.0, 0.0, 0.0));
        let t = BinaryCost::Zero.add(&b);
        assert!((t.eval(2, 2) - b.eval(2, 2)).abs() < 1e-12);
    }

    #[test]
    fn sum_of_mixed_forms() {
        let a = UnaryCost::Poly(PolyUnary::perfectly_parallel(8.0));
        let b = UnaryCost::Table(Tabulated::new(vec![(1, 1.0), (8, 1.0)]));
        let s = a.add(&b);
        assert!((s.eval(8) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn custom_closure() {
        let c = UnaryCost::custom(|p| 1.0 / p as f64);
        assert!((c.eval(4) - 0.25).abs() < 1e-12);
        assert!(c.eval(0).is_infinite());
        let e = BinaryCost::custom(|s, r| (s + r) as f64);
        assert_eq!(e.eval(2, 3), 5.0);
        assert!(e.eval(0, 3).is_infinite());
    }

    #[test]
    fn binary_diagonal() {
        let e = BinaryCost::Poly(PolyEcom::new(1.0, 2.0, 4.0, 0.5, 0.25));
        let d = e.diagonal();
        for p in 1..=16 {
            assert!((d.eval(p) - e.eval(p, p)).abs() < 1e-12);
        }
    }

    #[test]
    fn is_zero_detection() {
        assert!(UnaryCost::Zero.is_zero());
        assert!(UnaryCost::Poly(PolyUnary::zero()).is_zero());
        assert!(!UnaryCost::Poly(PolyUnary::new(0.0, 1.0, 0.0)).is_zero());
        assert!(BinaryCost::Zero.is_zero());
        assert!(!BinaryCost::custom(|_, _| 0.0).is_zero());
    }
}
