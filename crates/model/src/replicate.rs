//! Replication arithmetic (§3.2).
//!
//! If `p` processors are available to a replicable module with memory floor
//! `p_min`, the paper shows that — under the assumption that execution and
//! communication functions exhibit no superlinear speedup — it is always
//! profitable to replicate *maximally*: split into `r = ⌊p / p_min⌋`
//! instances with the processors divided equally (`⌊p / r⌋` each; any
//! remainder processors are left idle, matching the "divided equally"
//! prescription). Alternate data sets go to distinct instances, so the
//! *effective* response time of the module is `f(p_instance) / r`.
//!
//! The mapping algorithms then run on *effective* processor counts: the
//! instance size is the number that enters every cost function, and the
//! replication degree only divides the response time.

use crate::Procs;

/// The replication decision for one module: how many instances and how many
/// processors each instance receives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Replication {
    /// Number of module instances processing alternate data sets.
    pub instances: usize,
    /// Processors allocated to each instance.
    pub procs_per_instance: Procs,
}

impl Replication {
    /// The trivial replication: one instance holding all `p` processors.
    pub const fn single(p: Procs) -> Self {
        Self {
            instances: 1,
            procs_per_instance: p,
        }
    }

    /// Total processors consumed (instances × instance size). May be less
    /// than the processors offered, when the division left a remainder.
    pub fn total_procs(&self) -> Procs {
        self.instances * self.procs_per_instance
    }
}

/// Maximal replication of a module given `p` offered processors, a memory
/// floor of `p_min` processors per instance, and whether the module's tasks
/// permit replication at all (§2.2: only modules composed exclusively of
/// replicable tasks are replicable).
///
/// Returns `None` when `p < p_min` (the module cannot run at all).
pub fn max_replication(p: Procs, p_min: Procs, replicable: bool) -> Option<Replication> {
    let p_min = p_min.max(1);
    if p < p_min {
        return None;
    }
    if !replicable {
        return Some(Replication::single(p));
    }
    let r = p / p_min;
    debug_assert!(r >= 1);
    Some(Replication {
        instances: r,
        procs_per_instance: p / r,
    })
}

/// Replication with an explicit cap on the number of instances (useful when
/// data-dependence limits the replication window, or to model the paper's
/// non-replicable case uniformly with `cap = 1`).
pub fn capped_replication(
    p: Procs,
    p_min: Procs,
    replicable: bool,
    cap: usize,
) -> Option<Replication> {
    let r = max_replication(p, p_min, replicable)?;
    let cap = cap.max(1);
    if r.instances <= cap {
        return Some(r);
    }
    Some(Replication {
        instances: cap,
        procs_per_instance: p / cap,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn below_floor_is_infeasible() {
        assert_eq!(max_replication(2, 3, true), None);
        assert_eq!(max_replication(0, 1, true), None);
    }

    #[test]
    fn non_replicable_keeps_one_instance() {
        let r = max_replication(24, 3, false).unwrap();
        assert_eq!(r, Replication::single(24));
    }

    #[test]
    fn paper_fft_hist_module1() {
        // §6.3: 24 processors, floor 3 → 8 instances of 3.
        let r = max_replication(24, 3, true).unwrap();
        assert_eq!(r.instances, 8);
        assert_eq!(r.procs_per_instance, 3);
    }

    #[test]
    fn paper_fft_hist_module2() {
        // §6.3: 40 processors, floor 4 → 10 instances of 4.
        let r = max_replication(40, 4, true).unwrap();
        assert_eq!(r.instances, 10);
        assert_eq!(r.procs_per_instance, 4);
    }

    #[test]
    fn remainder_processors_are_idle() {
        // 25 procs, floor 3 → r = 8, each instance ⌊25/8⌋ = 3, one idle.
        let r = max_replication(25, 3, true).unwrap();
        assert_eq!(r.instances, 8);
        assert_eq!(r.procs_per_instance, 3);
        assert_eq!(r.total_procs(), 24);
    }

    #[test]
    fn instance_size_at_least_floor() {
        for p in 1..200 {
            for p_min in 1..12 {
                if let Some(r) = max_replication(p, p_min, true) {
                    assert!(r.procs_per_instance >= p_min, "p={p} p_min={p_min}");
                    assert!(r.total_procs() <= p);
                    // Maximality: one more instance would break the floor.
                    assert!(
                        p / (r.instances + 1) < p_min,
                        "replication not maximal at p={p} p_min={p_min}"
                    );
                }
            }
        }
    }

    #[test]
    fn zero_floor_is_treated_as_one() {
        let r = max_replication(6, 0, true).unwrap();
        assert_eq!(r.instances, 6);
        assert_eq!(r.procs_per_instance, 1);
    }

    #[test]
    fn capped_replication_respects_cap() {
        let r = capped_replication(24, 3, true, 4).unwrap();
        assert_eq!(r.instances, 4);
        assert_eq!(r.procs_per_instance, 6);
        // Cap larger than maximal replication has no effect.
        let r2 = capped_replication(24, 3, true, 100).unwrap();
        assert_eq!(r2.instances, 8);
        // Cap of zero behaves like one.
        let r3 = capped_replication(24, 3, true, 0).unwrap();
        assert_eq!(r3.instances, 1);
        assert_eq!(r3.procs_per_instance, 24);
    }
}
