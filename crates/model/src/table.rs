//! Tabulated (pointwise) cost functions with linear interpolation.
//!
//! §5 of the paper notes that the mapping algorithms are independent of how
//! the time functions are represented: "they may be mathematical functions
//! … or they may be defined pointwise possibly using interpolation". These
//! types implement the pointwise representation. They are the natural fit
//! for measured profiles at a handful of processor counts.

use crate::{Procs, Seconds};

/// A unary cost function defined by samples `(p, t)` with linear
/// interpolation between samples and clamped extrapolation outside the
/// sampled range.
#[derive(Clone, Debug, PartialEq)]
pub struct Tabulated {
    /// Sample points, strictly increasing in `p`, all times finite.
    points: Vec<(Procs, Seconds)>,
}

impl Tabulated {
    /// Build from unsorted samples. Duplicate processor counts keep the
    /// last-provided time.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty, contains `p = 0`, or contains a
    /// non-finite time.
    pub fn new(mut points: Vec<(Procs, Seconds)>) -> Self {
        assert!(!points.is_empty(), "tabulated cost needs at least 1 sample");
        for &(p, t) in &points {
            assert!(p >= 1, "tabulated cost sampled at p = 0");
            assert!(t.is_finite(), "tabulated cost has non-finite time {t}");
        }
        points.sort_by_key(|&(p, _)| p);
        points.dedup_by_key(|&mut (p, _)| p);
        Self { points }
    }

    /// The sample points (sorted, deduplicated).
    pub fn points(&self) -> &[(Procs, Seconds)] {
        &self.points
    }

    /// Evaluate at `p` with interpolation / clamped extrapolation.
    pub fn eval(&self, p: Procs) -> Seconds {
        if p == 0 {
            return f64::INFINITY;
        }
        let pts = &self.points;
        if p <= pts[0].0 {
            return pts[0].1;
        }
        if p >= pts[pts.len() - 1].0 {
            return pts[pts.len() - 1].1;
        }
        // Find the bracketing pair by binary search on p.
        let idx = pts.partition_point(|&(q, _)| q < p);
        let (p1, t1) = pts[idx - 1];
        let (p2, t2) = pts[idx];
        if p1 == p {
            return t1;
        }
        let w = (p - p1) as f64 / (p2 - p1) as f64;
        t1 + w * (t2 - t1)
    }
}

/// A binary cost function (external communication) defined on a grid of
/// `(ps, pr)` samples with bilinear interpolation and clamped extrapolation.
#[derive(Clone, Debug, PartialEq)]
pub struct Tabulated2d {
    sender_axis: Vec<Procs>,
    receiver_axis: Vec<Procs>,
    /// Row-major: `times[si * receiver_axis.len() + ri]`.
    times: Vec<Seconds>,
}

impl Tabulated2d {
    /// Build from full-grid samples: `times[si][ri]` is the cost at
    /// `(sender_axis[si], receiver_axis[ri])`.
    ///
    /// # Panics
    ///
    /// Panics if either axis is empty or not strictly increasing, if any
    /// axis value is zero, or if `times` has the wrong shape or non-finite
    /// entries.
    pub fn new(sender_axis: Vec<Procs>, receiver_axis: Vec<Procs>, times: Vec<Seconds>) -> Self {
        assert!(!sender_axis.is_empty() && !receiver_axis.is_empty());
        assert!(sender_axis.windows(2).all(|w| w[0] < w[1]));
        assert!(receiver_axis.windows(2).all(|w| w[0] < w[1]));
        assert!(sender_axis[0] >= 1 && receiver_axis[0] >= 1);
        assert_eq!(times.len(), sender_axis.len() * receiver_axis.len());
        assert!(times.iter().all(|t| t.is_finite()));
        Self {
            sender_axis,
            receiver_axis,
            times,
        }
    }

    fn at(&self, si: usize, ri: usize) -> Seconds {
        self.times[si * self.receiver_axis.len() + ri]
    }

    /// Evaluate at `(ps, pr)` with bilinear interpolation.
    pub fn eval(&self, ps: Procs, pr: Procs) -> Seconds {
        if ps == 0 || pr == 0 {
            return f64::INFINITY;
        }
        let (si, sw) = bracket(&self.sender_axis, ps);
        let (ri, rw) = bracket(&self.receiver_axis, pr);
        let t00 = self.at(si, ri);
        let t01 = self.at(si, (ri + 1).min(self.receiver_axis.len() - 1));
        let t10 = self.at((si + 1).min(self.sender_axis.len() - 1), ri);
        let t11 = self.at(
            (si + 1).min(self.sender_axis.len() - 1),
            (ri + 1).min(self.receiver_axis.len() - 1),
        );
        let a = t00 + rw * (t01 - t00);
        let b = t10 + rw * (t11 - t10);
        a + sw * (b - a)
    }
}

/// Locate `p` in `axis`: returns `(index, weight)` such that the value lies
/// between `axis[index]` and `axis[index + 1]` with interpolation `weight`
/// in `[0, 1]`; clamps outside the range.
fn bracket(axis: &[Procs], p: Procs) -> (usize, f64) {
    if p <= axis[0] {
        return (0, 0.0);
    }
    if p >= axis[axis.len() - 1] {
        return (axis.len() - 1, 0.0);
    }
    let idx = axis.partition_point(|&q| q < p);
    let (p1, p2) = (axis[idx - 1], axis[idx]);
    if p1 == p {
        (idx - 1, 0.0)
    } else {
        (idx - 1, (p - p1) as f64 / (p2 - p1) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tabulated_exact_and_interpolated() {
        let t = Tabulated::new(vec![(1, 10.0), (4, 4.0), (8, 3.0)]);
        assert_eq!(t.eval(1), 10.0);
        assert_eq!(t.eval(4), 4.0);
        assert_eq!(t.eval(8), 3.0);
        // Interpolation between 1 and 4: at p=2, 10 + (1/3)(4-10) = 8.
        assert!((t.eval(2) - 8.0).abs() < 1e-12);
        // Clamped extrapolation.
        assert_eq!(t.eval(100), 3.0);
    }

    #[test]
    fn tabulated_unsorted_input_is_sorted() {
        let t = Tabulated::new(vec![(8, 3.0), (1, 10.0), (4, 4.0)]);
        assert_eq!(t.points(), &[(1, 10.0), (4, 4.0), (8, 3.0)]);
    }

    #[test]
    #[should_panic(expected = "at least 1 sample")]
    fn tabulated_empty_panics() {
        let _ = Tabulated::new(vec![]);
    }

    #[test]
    fn tabulated_single_point_is_constant() {
        let t = Tabulated::new(vec![(4, 7.0)]);
        assert_eq!(t.eval(1), 7.0);
        assert_eq!(t.eval(4), 7.0);
        assert_eq!(t.eval(64), 7.0);
    }

    #[test]
    fn tabulated2d_corners_and_center() {
        let t = Tabulated2d::new(
            vec![1, 4],
            vec![1, 4],
            vec![
                10.0, 6.0, // ps=1
                4.0, 2.0, // ps=4
            ],
        );
        assert_eq!(t.eval(1, 1), 10.0);
        assert_eq!(t.eval(1, 4), 6.0);
        assert_eq!(t.eval(4, 1), 4.0);
        assert_eq!(t.eval(4, 4), 2.0);
        // Bilinear centre: p=2.5 would be mid, but procs are integers;
        // at (2, 2) weights are 1/3 each.
        let w = 1.0 / 3.0;
        let a = 10.0 + w * (6.0 - 10.0);
        let b = 4.0 + w * (2.0 - 4.0);
        let expect = a + w * (b - a);
        assert!((t.eval(2, 2) - expect).abs() < 1e-12);
    }

    #[test]
    fn tabulated2d_clamps_out_of_range() {
        let t = Tabulated2d::new(vec![2, 4], vec![2, 4], vec![8.0, 6.0, 5.0, 3.0]);
        assert_eq!(t.eval(1, 1), 8.0);
        assert_eq!(t.eval(64, 64), 3.0);
        assert_eq!(t.eval(1, 64), 6.0);
    }

    #[test]
    fn zero_procs_is_infinite() {
        let t = Tabulated::new(vec![(1, 1.0)]);
        assert!(t.eval(0).is_infinite());
        let t2 = Tabulated2d::new(vec![1], vec![1], vec![1.0]);
        assert!(t2.eval(0, 1).is_infinite());
        assert!(t2.eval(1, 0).is_infinite());
    }
}
