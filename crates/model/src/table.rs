//! Tabulated (pointwise) cost functions with linear interpolation.
//!
//! §5 of the paper notes that the mapping algorithms are independent of how
//! the time functions are represented: "they may be mathematical functions
//! … or they may be defined pointwise possibly using interpolation". These
//! types implement the pointwise representation. They are the natural fit
//! for measured profiles at a handful of processor counts.

use crate::{Procs, Seconds};

/// A unary cost function defined by samples `(p, t)` with linear
/// interpolation between samples and clamped extrapolation outside the
/// sampled range.
#[derive(Clone, Debug, PartialEq)]
pub struct Tabulated {
    /// Sample points, strictly increasing in `p`, all times finite.
    points: Vec<(Procs, Seconds)>,
}

impl Tabulated {
    /// Build from unsorted samples. Duplicate processor counts keep the
    /// last-provided time.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty, contains `p = 0`, or contains a
    /// non-finite time.
    pub fn new(mut points: Vec<(Procs, Seconds)>) -> Self {
        assert!(!points.is_empty(), "tabulated cost needs at least 1 sample");
        for &(p, t) in &points {
            assert!(p >= 1, "tabulated cost sampled at p = 0");
            assert!(t.is_finite(), "tabulated cost has non-finite time {t}");
        }
        points.sort_by_key(|&(p, _)| p);
        points.dedup_by_key(|&mut (p, _)| p);
        Self { points }
    }

    /// The sample points (sorted, deduplicated).
    pub fn points(&self) -> &[(Procs, Seconds)] {
        &self.points
    }

    /// Evaluate at `p` with interpolation / clamped extrapolation.
    pub fn eval(&self, p: Procs) -> Seconds {
        if p == 0 {
            return f64::INFINITY;
        }
        let pts = &self.points;
        if p <= pts[0].0 {
            return pts[0].1;
        }
        if p >= pts[pts.len() - 1].0 {
            return pts[pts.len() - 1].1;
        }
        // Find the bracketing pair by binary search on p.
        let idx = pts.partition_point(|&(q, _)| q < p);
        let (p1, t1) = pts[idx - 1];
        let (p2, t2) = pts[idx];
        if p1 == p {
            return t1;
        }
        let w = (p - p1) as f64 / (p2 - p1) as f64;
        t1 + w * (t2 - t1)
    }
}

/// A binary cost function (external communication) defined on a grid of
/// `(ps, pr)` samples with bilinear interpolation and clamped extrapolation.
#[derive(Clone, Debug, PartialEq)]
pub struct Tabulated2d {
    sender_axis: Vec<Procs>,
    receiver_axis: Vec<Procs>,
    /// Row-major: `times[si * receiver_axis.len() + ri]`.
    times: Vec<Seconds>,
}

impl Tabulated2d {
    /// Build from full-grid samples: `times[si][ri]` is the cost at
    /// `(sender_axis[si], receiver_axis[ri])`.
    ///
    /// # Panics
    ///
    /// Panics if either axis is empty or not strictly increasing, if any
    /// axis value is zero, or if `times` has the wrong shape or non-finite
    /// entries.
    pub fn new(sender_axis: Vec<Procs>, receiver_axis: Vec<Procs>, times: Vec<Seconds>) -> Self {
        assert!(!sender_axis.is_empty() && !receiver_axis.is_empty());
        assert!(sender_axis.windows(2).all(|w| w[0] < w[1]));
        assert!(receiver_axis.windows(2).all(|w| w[0] < w[1]));
        assert!(sender_axis[0] >= 1 && receiver_axis[0] >= 1);
        assert_eq!(times.len(), sender_axis.len() * receiver_axis.len());
        assert!(times.iter().all(|t| t.is_finite()));
        Self {
            sender_axis,
            receiver_axis,
            times,
        }
    }

    fn at(&self, si: usize, ri: usize) -> Seconds {
        self.times[si * self.receiver_axis.len() + ri]
    }

    /// Evaluate at `(ps, pr)` with bilinear interpolation.
    pub fn eval(&self, ps: Procs, pr: Procs) -> Seconds {
        if ps == 0 || pr == 0 {
            return f64::INFINITY;
        }
        let (si, sw) = bracket(&self.sender_axis, ps);
        let (ri, rw) = bracket(&self.receiver_axis, pr);
        let t00 = self.at(si, ri);
        let t01 = self.at(si, (ri + 1).min(self.receiver_axis.len() - 1));
        let t10 = self.at((si + 1).min(self.sender_axis.len() - 1), ri);
        let t11 = self.at(
            (si + 1).min(self.sender_axis.len() - 1),
            (ri + 1).min(self.receiver_axis.len() - 1),
        );
        let a = t00 + rw * (t01 - t00);
        let b = t10 + rw * (t11 - t10);
        a + sw * (b - a)
    }
}

/// Fully materialised cost tables for a `k`-task chain over processor
/// counts `1..=max_p`: every `f_exec_i(p)` and `f_icom_e(p)` in a flat row,
/// every `f_ecom_e(ps, pr)` in a row-major `max_p × max_p` slab.
///
/// The optimal mapping DPs evaluate costs `O(P⁴)` times; evaluating a cost
/// enum (or user closure) in the innermost loop would dominate the solve.
/// A `DenseCostTable` is built **once per solve** — each cost function is
/// evaluated exactly once per relevant argument — and then shared read-only
/// (it is `Sync`) across the solver's worker threads, which index straight
/// into the flat storage.
#[derive(Clone, Debug)]
pub struct DenseCostTable {
    k: usize,
    max_p: Procs,
    /// `exec[i * max_p + (p - 1)]` = `f_exec_i(p)`.
    exec: Vec<Seconds>,
    /// `icom[e * max_p + (p - 1)]` = `f_icom_e(p)`.
    icom: Vec<Seconds>,
    /// `ecom[e * max_p² + (ps - 1) * max_p + (pr - 1)]` = `f_ecom_e(ps, pr)`.
    ecom: Vec<Seconds>,
}

impl DenseCostTable {
    /// Materialise the tables for a `k`-task chain by evaluating the given
    /// cost functions over `1..=max_p` (and the `max_p × max_p` grid for
    /// `ecom`). `exec_fn(i, p)` is the execution time of task `i`,
    /// `icom_fn(e, p)` / `ecom_fn(e, ps, pr)` the internal/external
    /// communication times of edge `e` (edges `0..k-1`).
    pub fn build(
        k: usize,
        max_p: Procs,
        mut exec_fn: impl FnMut(usize, Procs) -> Seconds,
        mut icom_fn: impl FnMut(usize, Procs) -> Seconds,
        mut ecom_fn: impl FnMut(usize, Procs, Procs) -> Seconds,
    ) -> Self {
        assert!(max_p >= 1, "dense cost table needs max_p >= 1");
        let edges = k.saturating_sub(1);
        let mut exec = Vec::with_capacity(k * max_p);
        for i in 0..k {
            for p in 1..=max_p {
                exec.push(exec_fn(i, p));
            }
        }
        let mut icom = Vec::with_capacity(edges * max_p);
        for e in 0..edges {
            for p in 1..=max_p {
                icom.push(icom_fn(e, p));
            }
        }
        let mut ecom = Vec::with_capacity(edges * max_p * max_p);
        for e in 0..edges {
            for ps in 1..=max_p {
                for pr in 1..=max_p {
                    ecom.push(ecom_fn(e, ps, pr));
                }
            }
        }
        Self {
            k,
            max_p,
            exec,
            icom,
            ecom,
        }
    }

    /// Number of tasks.
    pub fn num_tasks(&self) -> usize {
        self.k
    }

    /// Largest tabulated processor count.
    pub fn max_procs(&self) -> Procs {
        self.max_p
    }

    /// Execution time of task `i` on `p` processors.
    #[inline]
    pub fn exec(&self, i: usize, p: Procs) -> Seconds {
        debug_assert!(p >= 1 && p <= self.max_p);
        self.exec[i * self.max_p + (p - 1)]
    }

    /// The flat row `f_exec_i(1..=max_p)`; entry `p - 1` is the cost at `p`.
    #[inline]
    pub fn exec_row(&self, i: usize) -> &[Seconds] {
        &self.exec[i * self.max_p..(i + 1) * self.max_p]
    }

    /// Internal redistribution time of edge `e` on `p` processors.
    #[inline]
    pub fn icom(&self, e: usize, p: Procs) -> Seconds {
        debug_assert!(p >= 1 && p <= self.max_p);
        self.icom[e * self.max_p + (p - 1)]
    }

    /// The flat row `f_icom_e(1..=max_p)`.
    #[inline]
    pub fn icom_row(&self, e: usize) -> &[Seconds] {
        &self.icom[e * self.max_p..(e + 1) * self.max_p]
    }

    /// External transfer time of edge `e` from `ps` senders to `pr`
    /// receivers.
    #[inline]
    pub fn ecom(&self, e: usize, ps: Procs, pr: Procs) -> Seconds {
        debug_assert!(ps >= 1 && ps <= self.max_p && pr >= 1 && pr <= self.max_p);
        self.ecom[e * self.max_p * self.max_p + (ps - 1) * self.max_p + (pr - 1)]
    }

    /// The row-major `max_p × max_p` slab of edge `e`: entry
    /// `(ps - 1) * max_p + (pr - 1)` is the cost from `ps` senders to `pr`
    /// receivers. Solver inner loops index the slab directly so a scan over
    /// senders at a fixed receiver count walks memory contiguously.
    #[inline]
    pub fn ecom_slab(&self, e: usize) -> &[Seconds] {
        let n = self.max_p * self.max_p;
        &self.ecom[e * n..(e + 1) * n]
    }

    /// Scale every tabulated execution cost of task `i` by `factor`,
    /// in place. Produces bit-identical entries to rebuilding the table
    /// from a cost function returning `f_exec_i(p) * factor` (one f64
    /// multiply per entry, same operand order), which is what the
    /// incremental re-solver's delta patching relies on.
    pub fn scale_exec_row(&mut self, i: usize, factor: f64) {
        for v in &mut self.exec[i * self.max_p..(i + 1) * self.max_p] {
            *v *= factor;
        }
    }

    /// Scale every tabulated internal-redistribution cost of edge `e` by
    /// `factor`, in place. Same bit-identity contract as
    /// [`Self::scale_exec_row`].
    pub fn scale_icom_row(&mut self, e: usize, factor: f64) {
        for v in &mut self.icom[e * self.max_p..(e + 1) * self.max_p] {
            *v *= factor;
        }
    }

    /// Scale the whole `ecom` slab of edge `e` by `factor`, in place. Same
    /// bit-identity contract as [`Self::scale_exec_row`].
    pub fn scale_ecom_slab(&mut self, e: usize, factor: f64) {
        let n = self.max_p * self.max_p;
        for v in &mut self.ecom[e * n..(e + 1) * n] {
            *v *= factor;
        }
    }
}

/// Locate `p` in `axis`: returns `(index, weight)` such that the value lies
/// between `axis[index]` and `axis[index + 1]` with interpolation `weight`
/// in `[0, 1]`; clamps outside the range.
fn bracket(axis: &[Procs], p: Procs) -> (usize, f64) {
    if p <= axis[0] {
        return (0, 0.0);
    }
    if p >= axis[axis.len() - 1] {
        return (axis.len() - 1, 0.0);
    }
    let idx = axis.partition_point(|&q| q < p);
    let (p1, p2) = (axis[idx - 1], axis[idx]);
    if p1 == p {
        (idx - 1, 0.0)
    } else {
        (idx - 1, (p - p1) as f64 / (p2 - p1) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tabulated_exact_and_interpolated() {
        let t = Tabulated::new(vec![(1, 10.0), (4, 4.0), (8, 3.0)]);
        assert_eq!(t.eval(1), 10.0);
        assert_eq!(t.eval(4), 4.0);
        assert_eq!(t.eval(8), 3.0);
        // Interpolation between 1 and 4: at p=2, 10 + (1/3)(4-10) = 8.
        assert!((t.eval(2) - 8.0).abs() < 1e-12);
        // Clamped extrapolation.
        assert_eq!(t.eval(100), 3.0);
    }

    #[test]
    fn tabulated_unsorted_input_is_sorted() {
        let t = Tabulated::new(vec![(8, 3.0), (1, 10.0), (4, 4.0)]);
        assert_eq!(t.points(), &[(1, 10.0), (4, 4.0), (8, 3.0)]);
    }

    #[test]
    #[should_panic(expected = "at least 1 sample")]
    fn tabulated_empty_panics() {
        let _ = Tabulated::new(vec![]);
    }

    #[test]
    fn tabulated_single_point_is_constant() {
        let t = Tabulated::new(vec![(4, 7.0)]);
        assert_eq!(t.eval(1), 7.0);
        assert_eq!(t.eval(4), 7.0);
        assert_eq!(t.eval(64), 7.0);
    }

    #[test]
    fn tabulated2d_corners_and_center() {
        let t = Tabulated2d::new(
            vec![1, 4],
            vec![1, 4],
            vec![
                10.0, 6.0, // ps=1
                4.0, 2.0, // ps=4
            ],
        );
        assert_eq!(t.eval(1, 1), 10.0);
        assert_eq!(t.eval(1, 4), 6.0);
        assert_eq!(t.eval(4, 1), 4.0);
        assert_eq!(t.eval(4, 4), 2.0);
        // Bilinear centre: p=2.5 would be mid, but procs are integers;
        // at (2, 2) weights are 1/3 each.
        let w = 1.0 / 3.0;
        let a = 10.0 + w * (6.0 - 10.0);
        let b = 4.0 + w * (2.0 - 4.0);
        let expect = a + w * (b - a);
        assert!((t.eval(2, 2) - expect).abs() < 1e-12);
    }

    #[test]
    fn tabulated2d_clamps_out_of_range() {
        let t = Tabulated2d::new(vec![2, 4], vec![2, 4], vec![8.0, 6.0, 5.0, 3.0]);
        assert_eq!(t.eval(1, 1), 8.0);
        assert_eq!(t.eval(64, 64), 3.0);
        assert_eq!(t.eval(1, 64), 6.0);
    }

    #[test]
    fn zero_procs_is_infinite() {
        let t = Tabulated::new(vec![(1, 1.0)]);
        assert!(t.eval(0).is_infinite());
        let t2 = Tabulated2d::new(vec![1], vec![1], vec![1.0]);
        assert!(t2.eval(0, 1).is_infinite());
        assert!(t2.eval(1, 0).is_infinite());
    }

    #[test]
    fn dense_table_matches_generating_functions() {
        let (k, max_p) = (3usize, 5usize);
        let t = DenseCostTable::build(
            k,
            max_p,
            |i, p| (i + 1) as f64 / p as f64,
            |e, p| e as f64 + 0.1 * p as f64,
            |e, ps, pr| (e + 1) as f64 * (ps as f64 + 2.0 * pr as f64),
        );
        assert_eq!(t.num_tasks(), 3);
        assert_eq!(t.max_procs(), 5);
        for i in 0..k {
            for p in 1..=max_p {
                assert_eq!(t.exec(i, p), (i + 1) as f64 / p as f64);
                assert_eq!(t.exec_row(i)[p - 1], t.exec(i, p));
            }
        }
        for e in 0..k - 1 {
            for p in 1..=max_p {
                assert_eq!(t.icom(e, p), e as f64 + 0.1 * p as f64);
                assert_eq!(t.icom_row(e)[p - 1], t.icom(e, p));
            }
            for ps in 1..=max_p {
                for pr in 1..=max_p {
                    let expect = (e + 1) as f64 * (ps as f64 + 2.0 * pr as f64);
                    assert_eq!(t.ecom(e, ps, pr), expect);
                    assert_eq!(t.ecom_slab(e)[(ps - 1) * max_p + (pr - 1)], expect);
                }
            }
        }
    }

    #[test]
    fn scaled_rows_match_rebuilding_from_scaled_functions() {
        let (k, max_p) = (3usize, 6usize);
        let exec = |i: usize, p: usize| (i + 1) as f64 / (p as f64).sqrt() + 0.017;
        let icom = |e: usize, p: usize| e as f64 + 0.13 * p as f64;
        let ecom =
            |e: usize, ps: usize, pr: usize| (e + 1) as f64 * (ps as f64).ln_1p() + 0.7 * pr as f64;
        let mut patched = DenseCostTable::build(k, max_p, exec, icom, ecom);
        let (gi, ge) = (1.37, 0.82);
        patched.scale_exec_row(1, gi);
        patched.scale_icom_row(0, gi);
        patched.scale_ecom_slab(1, ge);
        let cold = DenseCostTable::build(
            k,
            max_p,
            |i, p| if i == 1 { exec(i, p) * gi } else { exec(i, p) },
            |e, p| if e == 0 { icom(e, p) * gi } else { icom(e, p) },
            |e, ps, pr| {
                if e == 1 {
                    ecom(e, ps, pr) * ge
                } else {
                    ecom(e, ps, pr)
                }
            },
        );
        for i in 0..k {
            for p in 1..=max_p {
                assert_eq!(patched.exec(i, p).to_bits(), cold.exec(i, p).to_bits());
            }
        }
        for e in 0..k - 1 {
            for p in 1..=max_p {
                assert_eq!(patched.icom(e, p).to_bits(), cold.icom(e, p).to_bits());
            }
            for ps in 1..=max_p {
                for pr in 1..=max_p {
                    assert_eq!(
                        patched.ecom(e, ps, pr).to_bits(),
                        cold.ecom(e, ps, pr).to_bits()
                    );
                }
            }
        }
    }

    #[test]
    fn dense_table_evaluates_each_point_once() {
        use std::cell::Cell;
        let execs = Cell::new(0usize);
        let ecoms = Cell::new(0usize);
        let t = DenseCostTable::build(
            2,
            4,
            |_, p| {
                execs.set(execs.get() + 1);
                p as f64
            },
            |_, _| 0.0,
            |_, ps, pr| {
                ecoms.set(ecoms.get() + 1);
                (ps + pr) as f64
            },
        );
        assert_eq!(execs.get(), 2 * 4);
        assert_eq!(ecoms.get(), 4 * 4);
        // Repeated lookups are pure indexing, no re-evaluation.
        for _ in 0..3 {
            assert_eq!(t.exec(1, 3), 3.0);
            assert_eq!(t.ecom(0, 2, 2), 4.0);
        }
        assert_eq!(execs.get(), 8);
        assert_eq!(ecoms.get(), 16);
    }
}
