//! The `pipemap load` sustained-load driver.
//!
//! Drives a real threaded pipeline (built from one of two built-in
//! workloads) at a target rate or open loop, via
//! [`pipemap_exec::run_load`], and reports achieved datasets/sec, p50/p99
//! end-to-end latency, per-stage backpressure, transport batching
//! effectiveness, and buffer-pool hit rate. The achieved throughput is
//! validated against the paper's closed form
//! `1 / max_i (s_i / r_i)` ([`pipemap_sim::steady_state_throughput`])
//! evaluated on the *measured* per-stage service means — the serving-side
//! counterpart of the predicted-vs-measured tables.
//!
//! Workloads:
//!
//! * `micro` — `stages` light integer-mixing stages over `len`-element
//!   `u64` buffers: per-dataset work is tiny, so the data plane (channel
//!   messages, allocation churn) dominates and batching/pooling effects
//!   are visible;
//! * `fft-hist` — the paper's FFT-Hist computation on `n×n` complex
//!   matrices (row FFTs → column FFTs → histogram): per-dataset work is
//!   real, so latency percentiles and backpressure are meaningful.

use pipemap_exec::kernels::{fft_cols, fft_rows, histogram, Complex, Matrix};
use pipemap_exec::{
    run_load, run_wire_load, BufferPool, Data, InstanceStats, Lease, LinkReport, LoadOptions,
    LoadReport, PipelinePlan, PipelineStats, PoolStats, Stage, StagePlan, TransportKind,
    WireKernel, WireLoadOptions, WirePlan, WireStagePlan,
};
use pipemap_obs::{EventLog, JourneyCollector, JourneyEvent, SloConfig, Value};
use pipemap_profile::TransportCalibration;
use std::time::Duration;

/// Which built-in pipeline to drive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Workload {
    /// Light integer-mixing stages (data-plane stress).
    Micro,
    /// FFT-Hist on complex matrices (real compute).
    FftHist,
}

impl Workload {
    /// Parse a workload name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "micro" => Some(Workload::Micro),
            "fft-hist" => Some(Workload::FftHist),
            _ => None,
        }
    }

    fn as_str(self) -> &'static str {
        match self {
            Workload::Micro => "micro",
            Workload::FftHist => "fft-hist",
        }
    }
}

/// Full configuration of one load run.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// The pipeline to drive.
    pub workload: Workload,
    /// Target rate (datasets/s); `None` = open loop.
    pub rate: Option<f64>,
    /// Stop feeding after this many seconds.
    pub duration_s: Option<f64>,
    /// Stop feeding after this many datasets.
    pub datasets: Option<usize>,
    /// Transport batch size (datasets per channel message).
    pub batch: usize,
    /// Batch latency bound, microseconds.
    pub flush_us: u64,
    /// Per-instance input queue depth, in messages.
    pub queue_depth: usize,
    /// Replicas per stage.
    pub replicas: usize,
    /// Threads per instance.
    pub threads: usize,
    /// Recycle payloads through a [`BufferPool`].
    pub pool: bool,
    /// Micro: number of stages. FFT-Hist: fixed 3-stage pipeline.
    pub stages: usize,
    /// Micro: buffer length (u64 elements). FFT-Hist: matrix edge.
    pub size: usize,
    /// Record per-dataset journey events into this collector.
    pub journeys: Option<JourneyCollector>,
    /// Emit SLO/backpressure events into this log.
    pub events: Option<EventLog>,
    /// Latency objective evaluated against every completed data set
    /// (needs `events` to land anywhere).
    pub slo: Option<SloConfig>,
    /// Which data plane carries the pipeline: threads in this process,
    /// or worker processes over Unix sockets.
    pub transport: TransportKind,
    /// Admission control: a token bucket capping the accepted rate.
    pub admit_rate: Option<f64>,
    /// Bounded-queue shedding: drop arrivals beyond this in-flight bound.
    pub shed_queue: Option<usize>,
    /// Calibrated transport cost; when present on a UDS run, the
    /// closed-form prediction includes the measured `f_ecom`.
    pub calibration: Option<TransportCalibration>,
    /// UDS journey sampling: record every n-th data set (0 = off). The
    /// in-process path samples through `journeys` instead.
    pub journey_sample: u64,
    /// UDS telemetry snapshot period, microseconds (0 = off): workers
    /// ship metric deltas, resource gauges, and sampled journeys back to
    /// the parent's global registry while the run is live.
    pub telemetry_us: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        Self {
            workload: Workload::Micro,
            rate: None,
            duration_s: Some(2.0),
            datasets: None,
            batch: 32,
            flush_us: 200,
            queue_depth: 4,
            replicas: 1,
            threads: 1,
            pool: true,
            stages: 4,
            size: 1024,
            journeys: None,
            events: None,
            slo: None,
            transport: TransportKind::InProc,
            admit_rate: None,
            shed_queue: None,
            calibration: None,
            journey_sample: 0,
            telemetry_us: 0,
        }
    }
}

impl LoadConfig {
    /// The reference data plane: unbatched transport, no pooling — the
    /// pre-batching executor, kept for A/B comparison.
    pub fn reference(mut self) -> Self {
        self.batch = 1;
        self.pool = false;
        self
    }
}

/// What one load run produced, ready for rendering.
#[derive(Clone, Debug)]
pub struct LoadSummary {
    /// The configuration that ran.
    pub config: LoadConfig,
    /// Stage names, in pipeline order.
    pub stage_names: Vec<String>,
    /// The driver's measurement.
    pub report: LoadReport,
    /// Closed-form throughput predicted from the measured per-stage
    /// service means (`NaN` when nothing completed).
    pub predicted_throughput: f64,
    /// Pool counters, when pooling was on.
    pub pool: Option<PoolStats>,
    /// Per-boundary wire counters (UDS runs only; empty in-process).
    pub wire_links: Vec<LinkReport>,
    /// Journey events gathered from the worker processes (UDS runs with
    /// `journey_sample > 0` only).
    pub wire_events: Vec<JourneyEvent>,
    /// Calibrated per-stage transport seconds folded into the
    /// prediction (empty when no calibration was applied).
    pub ecom_means: Vec<f64>,
}

const MIX_PRIME: u64 = 0x9E37_79B9_7F4A_7C15;

fn mix(v: &mut [u64], salt: u64) {
    for x in v.iter_mut() {
        *x = x.wrapping_mul(MIX_PRIME).rotate_left(13) ^ salt;
    }
}

fn fill(v: &mut [u64], seq: usize) {
    for (j, x) in v.iter_mut().enumerate() {
        *x = seq as u64 ^ ((j as u64) << 32);
    }
}

/// The micro workload's plan: `stages` mixing stages, pooled or plain
/// payloads. Exposed for the bench suite, which drives the same plan.
pub fn micro_plan(cfg: &LoadConfig) -> PipelinePlan {
    let stages = (0..cfg.stages.max(1))
        .map(|i| {
            let salt = i as u64 + 1;
            let stage = if cfg.pool {
                Stage::new(format!("mix{i}"), move |mut v: Lease<Vec<u64>>, _| {
                    mix(&mut v, salt);
                    v
                })
            } else {
                Stage::new(format!("mix{i}"), move |mut v: Vec<u64>, _| {
                    mix(&mut v, salt);
                    v
                })
            };
            StagePlan::new(stage, cfg.replicas.max(1), cfg.threads.max(1))
        })
        .collect();
    let plan = PipelinePlan::new(stages)
        .with_batch(cfg.batch.max(1))
        .with_flush_us(cfg.flush_us)
        .with_queue_depth(cfg.queue_depth.max(1));
    attach_observability(plan, cfg)
}

/// Attach whichever observability surfaces the config carries.
fn attach_observability(mut plan: PipelinePlan, cfg: &LoadConfig) -> PipelinePlan {
    if let Some(j) = &cfg.journeys {
        plan = plan.with_journeys(j.clone());
    }
    if let Some(log) = &cfg.events {
        plan = plan.with_events(log.clone());
        if let Some(slo) = cfg.slo {
            plan = plan.with_slo(slo);
        }
    }
    plan
}

/// The micro workload's source: fresh or pooled `len`-element buffers.
/// Exposed for the bench suite.
pub fn micro_source(
    len: usize,
    pool: Option<BufferPool>,
) -> impl FnMut(usize) -> Data + Send + 'static {
    move |seq| match &pool {
        Some(p) => {
            let mut lease = p.take(|| vec![0u64; len]);
            fill(&mut lease, seq);
            Box::new(lease) as Data
        }
        None => {
            let mut v = vec![0u64; len];
            fill(&mut v, seq);
            Box::new(v) as Data
        }
    }
}

/// The FFT-Hist workload's plan: row FFTs → column FFTs → histogram.
pub fn fft_hist_plan(cfg: &LoadConfig) -> PipelinePlan {
    let n = cfg.size.max(2).next_power_of_two();
    let max = n as f64;
    let stages = if cfg.pool {
        vec![
            Stage::new("fft_rows", |mut m: Lease<Matrix>, t| {
                fft_rows(&mut m, t);
                m
            }),
            Stage::new("fft_cols", |mut m: Lease<Matrix>, t| {
                fft_cols(&mut m, t);
                m
            }),
            // The lease drops here, returning the matrix to the pool.
            Stage::new("histogram", move |m: Lease<Matrix>, t| {
                histogram(&m, 64, max, t)
            }),
        ]
    } else {
        vec![
            Stage::new("fft_rows", |mut m: Matrix, t| {
                fft_rows(&mut m, t);
                m
            }),
            Stage::new("fft_cols", |mut m: Matrix, t| {
                fft_cols(&mut m, t);
                m
            }),
            Stage::new("histogram", move |m: Matrix, t| histogram(&m, 64, max, t)),
        ]
    };
    let plans = stages
        .into_iter()
        .map(|s| StagePlan::new(s, cfg.replicas.max(1), cfg.threads.max(1)))
        .collect();
    let plan = PipelinePlan::new(plans)
        .with_batch(cfg.batch.max(1))
        .with_flush_us(cfg.flush_us)
        .with_queue_depth(cfg.queue_depth.max(1));
    attach_observability(plan, cfg)
}

fn fft_hist_source(
    n: usize,
    pool: Option<BufferPool>,
) -> impl FnMut(usize) -> Data + Send + 'static {
    let n = n.max(2).next_power_of_two();
    move |seq| {
        let write = |m: &mut Matrix| {
            for r in 0..n {
                for c in 0..n {
                    m.data[r * n + c] =
                        Complex::new(((r * 31 + c * 17 + seq * 7) % 97) as f64 / 97.0, 0.0);
                }
            }
        };
        match &pool {
            Some(p) => {
                let mut lease = p.take(|| Matrix::zero(n));
                write(&mut lease);
                Box::new(lease) as Data
            }
            None => {
                let mut m = Matrix::zero(n);
                write(&mut m);
                Box::new(m) as Data
            }
        }
    }
}

/// The wire (multi-process) plan equivalent of the configured workload.
pub fn wire_plan_for(cfg: &LoadConfig) -> WirePlan {
    let kernels: Vec<WireKernel> = match cfg.workload {
        Workload::Micro => (0..cfg.stages.max(1))
            .map(|i| WireKernel::Mix { salt: i as u64 + 1 })
            .collect(),
        Workload::FftHist => {
            let n = cfg.size.max(2).next_power_of_two();
            vec![
                WireKernel::FftRows,
                WireKernel::FftCols,
                WireKernel::Histogram {
                    bins: 64,
                    max: n as f64,
                },
            ]
        }
    };
    let stages = kernels
        .into_iter()
        .map(|k| WireStagePlan::new(k, cfg.replicas.max(1), cfg.threads.max(1)))
        .collect();
    let mut plan = WirePlan::new(stages);
    plan.batch = cfg.batch.max(1);
    plan.flush_us = cfg.flush_us;
    plan.queue_depth = cfg.queue_depth.max(1);
    plan.journey_sample = cfg.journey_sample;
    plan.telemetry_us = cfg.telemetry_us;
    plan
}

/// Fill `buf` with data set `seq`'s input payload for the workload.
fn wire_payload(cfg: &LoadConfig, seq: u64, buf: &mut Vec<u8>) {
    match cfg.workload {
        Workload::Micro => {
            for j in 0..cfg.size {
                let w = seq ^ ((j as u64) << 32);
                buf.extend_from_slice(&w.to_le_bytes());
            }
        }
        Workload::FftHist => {
            let n = cfg.size.max(2).next_power_of_two();
            for r in 0..n {
                for c in 0..n {
                    let re = ((r * 31 + c * 17 + seq as usize * 7) % 97) as f64 / 97.0;
                    buf.extend_from_slice(&re.to_le_bytes());
                    buf.extend_from_slice(&0f64.to_le_bytes());
                }
            }
        }
    }
}

/// Run the configured load over worker processes and shape the result
/// into the same [`LoadSummary`] the in-process path produces.
fn run_uds_load(cfg: &LoadConfig) -> Result<LoadSummary, String> {
    let plan = wire_plan_for(cfg);
    let opts = WireLoadOptions {
        rate: cfg.rate,
        duration: cfg.duration_s.map(Duration::from_secs_f64),
        max_datasets: cfg.datasets.map(|n| n as u64),
        admit_rate: cfg.admit_rate,
        shed_queue: cfg.shed_queue.map(|n| n as u64),
    };
    let cfg2 = cfg.clone();
    let wlr = run_wire_load(&plan, move |seq, buf| wire_payload(&cfg2, seq, buf), opts)?;
    let run = &wlr.run;
    let nstages = run.stages.len();
    let elapsed = wlr.elapsed.max(1e-9);
    let busy: Vec<f64> = run.stages.iter().map(|s| s.service_s).collect();
    let recv_wait: Vec<f64> = run.stages.iter().map(|s| s.recv_wait_s).collect();
    let send_wait: Vec<f64> = run.stages.iter().map(|s| s.send_wait_s).collect();
    let utilization: Vec<f64> = run
        .stages
        .iter()
        .map(|s| s.service_s / (s.replicas.max(1) as f64 * elapsed))
        .collect();
    let instances: Vec<InstanceStats> = run
        .workers
        .iter()
        .map(|w| InstanceStats {
            stage: w.stage,
            instance: w.instance,
            recv_wait: w.recv_wait_s,
            busy: w.service_s,
            send_wait: w.send_wait_s,
            lifetime: w.lifetime_s,
        })
        .collect();
    let messages: u64 = run.links.iter().map(|l| l.frames).sum();
    let message_items: u64 = run.links.iter().map(|l| l.items).sum();
    let stats = PipelineStats {
        datasets: wlr.completed as usize,
        generated: wlr.generated as usize,
        elapsed: wlr.elapsed,
        throughput: wlr.throughput,
        busy,
        recv_wait,
        send_wait,
        utilization,
        source_wait: run.source_wait_s,
        messages,
        message_items,
        instances,
    };
    let report = LoadReport {
        offered: wlr.offered as usize,
        rejected: wlr.rejected as usize,
        shed: wlr.shed as usize,
        generated: wlr.generated as usize,
        completed: wlr.completed as usize,
        elapsed: wlr.elapsed,
        throughput: wlr.throughput,
        offered_rate: cfg.rate,
        latency: wlr.latency,
        stats,
    };
    let stage_names: Vec<String> = plan.stage_names();
    let replicas = plan.replicas();

    // Closed form over the measured per-item service means, with the
    // calibrated `f_ecom` folded in when a calibration is present: each
    // stage's outbound link prices as
    //   (per_msg · frames + per_byte · bytes) / items
    // — per-message overhead amortised over the coalescing the run
    // actually achieved.
    let service_means = run.service_means();
    let (predicted_throughput, ecom_means) = if wlr.completed == 0 {
        (f64::NAN, Vec::new())
    } else if let Some(cal) = &cfg.calibration {
        let ecom: Vec<f64> = (0..nstages)
            .map(|i| {
                // Link i+1 is stage i's outbound boundary (0 = source).
                run.links
                    .get(i + 1)
                    .map(|l| {
                        if l.items == 0 {
                            0.0
                        } else {
                            (cal.per_msg_s * l.frames as f64 + cal.per_byte_s * l.bytes as f64)
                                / l.items as f64
                        }
                    })
                    .unwrap_or(0.0)
            })
            .collect();
        (
            pipemap_sim::steady_state_throughput_with_ecom(&service_means, &ecom, &replicas),
            ecom,
        )
    } else {
        (
            pipemap_sim::steady_state_throughput(&service_means, &replicas),
            Vec::new(),
        )
    };

    Ok(LoadSummary {
        config: cfg.clone(),
        stage_names,
        report,
        predicted_throughput,
        pool: None,
        wire_links: run.links.clone(),
        wire_events: run.events.clone(),
        ecom_means,
    })
}

/// Run one configured load and summarise it.
///
/// # Panics
///
/// Panics if a UDS run fails outright (no workers, dead sockets); the
/// in-process path never errors.
pub fn run_configured_load(cfg: &LoadConfig) -> LoadSummary {
    try_run_configured_load(cfg).expect("load run failed")
}

/// [`run_configured_load`], with UDS engine failures surfaced as `Err`.
pub fn try_run_configured_load(cfg: &LoadConfig) -> Result<LoadSummary, String> {
    if cfg.transport == TransportKind::Uds {
        return run_uds_load(cfg);
    }
    // The shelf must cover the pipeline's in-flight window (stage queues
    // × batch × stages, plus transport buffers) or takes outrun returns
    // and the pool degenerates to plain allocation. 1024 payloads cover
    // every configuration the CLI exposes.
    let pool = cfg.pool.then(|| BufferPool::new(1024));
    let opts = LoadOptions {
        rate: cfg.rate,
        duration: cfg.duration_s.map(Duration::from_secs_f64),
        max_datasets: cfg.datasets,
        admit_rate: cfg.admit_rate,
        shed_queue: cfg.shed_queue,
    };
    let (plan, report) = match cfg.workload {
        Workload::Micro => {
            let plan = micro_plan(cfg);
            let report = run_load(&plan, micro_source(cfg.size, pool.clone()), &opts);
            (plan, report)
        }
        Workload::FftHist => {
            let plan = fft_hist_plan(cfg);
            let report = run_load(&plan, fft_hist_source(cfg.size, pool.clone()), &opts);
            (plan, report)
        }
    };
    let stage_names: Vec<String> = plan
        .stages
        .iter()
        .map(|sp| sp.stage.name.to_string())
        .collect();
    // Closed-form prediction from the measured service means: stage i's
    // mean seconds per dataset is its total busy time over the datasets
    // it served (every dataset passes through every stage once).
    let predicted_throughput = if report.completed > 0 {
        let means: Vec<f64> = report
            .stats
            .busy
            .iter()
            .map(|b| b / report.completed as f64)
            .collect();
        let replicas: Vec<usize> = plan.stages.iter().map(|sp| sp.replicas).collect();
        pipemap_sim::steady_state_throughput(&means, &replicas)
    } else {
        f64::NAN
    };
    if let Some(p) = &pool {
        p.publish();
    }
    Ok(LoadSummary {
        config: cfg.clone(),
        stage_names,
        report,
        predicted_throughput,
        pool: pool.map(|p| p.stats()),
        wire_links: Vec::new(),
        wire_events: Vec::new(),
        ecom_means: Vec::new(),
    })
}

/// Render a human-readable report.
pub fn render_load_summary(s: &LoadSummary) -> String {
    let r = &s.report;
    let cfg = &s.config;
    let mut out = String::new();
    out.push_str(&format!(
        "workload : {} over {} (batch {}, flush {}µs, queue {}, {}x{} per stage, pool {})\n",
        cfg.workload.as_str(),
        cfg.transport.as_str(),
        cfg.batch,
        cfg.flush_us,
        cfg.queue_depth,
        cfg.replicas,
        cfg.threads,
        if cfg.pool { "on" } else { "off" }
    ));
    match cfg.rate {
        Some(rate) => out.push_str(&format!("offered  : {rate:.1} datasets/s\n")),
        None => out.push_str("offered  : open loop (backpressure-limited)\n"),
    }
    out.push_str(&format!(
        "served   : {} datasets in {:.3}s -> {:.1} datasets/s\n",
        r.completed, r.elapsed, r.throughput
    ));
    if r.rejected > 0 || r.shed > 0 || cfg.admit_rate.is_some() || cfg.shed_queue.is_some() {
        out.push_str(&format!(
            "overload : {} offered, {} rejected (admission), {} shed (queue bound)\n",
            r.offered, r.rejected, r.shed
        ));
    }
    if s.predicted_throughput.is_finite() {
        let ratio = r.throughput / s.predicted_throughput;
        let with = if s.ecom_means.is_empty() {
            ""
        } else {
            " + calibrated f_ecom"
        };
        out.push_str(&format!(
            "predicted: {:.1} datasets/s from measured service means{with} (achieved/predicted {:.2})\n",
            s.predicted_throughput, ratio
        ));
    }
    out.push_str(&format!(
        "latency  : mean {:.6}s  p50 {:.6}s  p90 {:.6}s  p99 {:.6}s  max {:.6}s\n",
        r.latency.mean, r.latency.p50, r.latency.p90, r.latency.p99, r.latency.max
    ));
    out.push_str(&format!(
        "transport: {} messages carrying {} datasets (mean fill {:.2}); source blocked {:.3}s\n",
        r.stats.messages,
        r.stats.message_items,
        r.stats.mean_batch_fill(),
        r.stats.source_wait
    ));
    if let Some(p) = &s.pool {
        out.push_str(&format!(
            "pool     : {:.0}% hit rate ({} hits, {} misses, {} returns, {} discarded)\n",
            p.hit_rate() * 100.0,
            p.hits,
            p.misses,
            p.returns,
            p.discarded
        ));
    }
    let denom = (cfg.replicas.max(1) as f64) * r.elapsed.max(1e-9);
    for (i, name) in s.stage_names.iter().enumerate() {
        let ecom = s
            .ecom_means
            .get(i)
            .map(|e| format!("  f_ecom {:.2}µs/item", e * 1e6))
            .unwrap_or_default();
        out.push_str(&format!(
            "stage {i} ({name}): busy {:.0}%  starved {:.0}%  backpressured {:.0}%{ecom}\n",
            100.0 * r.stats.busy[i] / denom,
            100.0 * r.stats.recv_wait[i] / denom,
            100.0 * r.stats.send_wait[i] / denom,
        ));
    }
    for l in &s.wire_links {
        out.push_str(&format!(
            "link {}: {} frames carrying {} items ({:.1} bytes/item, fill {:.2})\n",
            l.label,
            l.frames,
            l.items,
            l.bytes_per_item(),
            if l.frames == 0 {
                0.0
            } else {
                l.items as f64 / l.frames as f64
            }
        ));
    }
    out
}

/// Render the machine-readable JSON report.
pub fn load_report_json(s: &LoadSummary) -> Value {
    let cfg = &s.config;
    let r = &s.report;
    let mut doc = Value::object();
    doc.set("workload", cfg.workload.as_str());

    let mut c = Value::object();
    c.set("transport", cfg.transport.as_str());
    if let Some(rate) = cfg.rate {
        c.set("rate", rate);
    }
    if let Some(a) = cfg.admit_rate {
        c.set("admit_rate", a);
    }
    if let Some(q) = cfg.shed_queue {
        c.set("shed_queue", q as f64);
    }
    if let Some(d) = cfg.duration_s {
        c.set("duration_s", d);
    }
    if let Some(n) = cfg.datasets {
        c.set("datasets", n as f64);
    }
    c.set("batch", cfg.batch as f64);
    c.set("flush_us", cfg.flush_us as f64);
    c.set("queue_depth", cfg.queue_depth as f64);
    c.set("replicas", cfg.replicas as f64);
    c.set("threads", cfg.threads as f64);
    c.set("pool", cfg.pool);
    c.set("stages", cfg.stages as f64);
    c.set("size", cfg.size as f64);
    doc.set("config", c);

    let mut res = Value::object();
    res.set("offered", r.offered as f64);
    res.set("rejected", r.rejected as f64);
    res.set("shed", r.shed as f64);
    res.set("generated", r.generated as f64);
    res.set("completed", r.completed as f64);
    res.set("elapsed_s", r.elapsed);
    res.set("throughput", r.throughput);
    if s.predicted_throughput.is_finite() {
        res.set("predicted_throughput", s.predicted_throughput);
        res.set(
            "achieved_over_predicted",
            r.throughput / s.predicted_throughput,
        );
    }
    let mut lat = Value::object();
    lat.set("mean_s", r.latency.mean);
    lat.set("p50_s", r.latency.p50);
    lat.set("p90_s", r.latency.p90);
    lat.set("p99_s", r.latency.p99);
    lat.set("max_s", r.latency.max);
    res.set("latency", lat);
    doc.set("result", res);

    let mut t = Value::object();
    t.set("messages", r.stats.messages as f64);
    t.set("message_items", r.stats.message_items as f64);
    t.set("mean_batch_fill", r.stats.mean_batch_fill());
    t.set("source_wait_s", r.stats.source_wait);
    doc.set("transport", t);

    if let Some(p) = &s.pool {
        let mut pv = Value::object();
        pv.set("hits", p.hits as f64);
        pv.set("misses", p.misses as f64);
        pv.set("returns", p.returns as f64);
        pv.set("discarded", p.discarded as f64);
        pv.set("hit_rate", p.hit_rate());
        doc.set("pool", pv);
    }

    let denom = (cfg.replicas.max(1) as f64) * r.elapsed.max(1e-9);
    let stages: Vec<Value> = s
        .stage_names
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let mut st = Value::object();
            st.set("name", name.as_str());
            st.set("busy_s", r.stats.busy[i]);
            st.set("recv_wait_s", r.stats.recv_wait[i]);
            st.set("send_wait_s", r.stats.send_wait[i]);
            st.set("utilization", r.stats.utilization[i]);
            st.set("backpressure", r.stats.send_wait[i] / denom);
            if let Some(e) = s.ecom_means.get(i) {
                st.set("ecom_s", *e);
            }
            st
        })
        .collect();
    doc.set("stages", Value::Array(stages));

    if !s.wire_links.is_empty() {
        let links: Vec<Value> = s
            .wire_links
            .iter()
            .map(|l| {
                let mut lv = Value::object();
                lv.set("link", l.label.as_str());
                lv.set("frames", l.frames as f64);
                lv.set("items", l.items as f64);
                lv.set("bytes", l.bytes as f64);
                lv.set("bytes_per_item", l.bytes_per_item());
                lv
            })
            .collect();
        doc.set("links", Value::Array(links));
    }
    doc
}

/// The model snapshot a load run's journey log carries: the closed-form
/// prediction over the *measured* per-stage service means (the executor
/// has no communication model, so predicted transport is zero). The
/// doctor compares journey-derived means against this, so on a healthy
/// run the drift verdict is clean by construction — it flips only when
/// the journey decomposition disagrees with the busy-time accounting.
pub fn measured_prediction(s: &LoadSummary) -> Option<pipemap_doctor::ModelPrediction> {
    if s.report.completed == 0 {
        return None;
    }
    let means: Vec<f64> = s
        .report
        .stats
        .busy
        .iter()
        .map(|b| b / s.report.completed as f64)
        .collect();
    let replicas = vec![s.config.replicas.max(1); s.stage_names.len()];
    Some(pipemap_doctor::ModelPrediction::from_measured(
        &s.stage_names,
        &replicas,
        &means,
    ))
}

/// One point of a rate ramp: offered vs achieved, with the overload
/// counters and tail latency at that rate.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// Offered rate of this step (datasets/s).
    pub offered_rate: f64,
    /// Achieved sink throughput (datasets/s).
    pub throughput: f64,
    /// Arrivals rejected by admission control.
    pub rejected: usize,
    /// Arrivals shed at the in-flight bound.
    pub shed: usize,
    /// p50 end-to-end latency (s).
    pub p50: f64,
    /// p99 end-to-end latency (s).
    pub p99: f64,
}

/// A full ramp sweep: the points in offered-rate order, plus the knee.
#[derive(Clone, Debug)]
pub struct RateSweep {
    /// One point per offered rate, ascending.
    pub points: Vec<SweepPoint>,
    /// The saturation knee: the highest offered rate the pipeline still
    /// kept up with (achieved ≥ 95% of offered). `None` when even the
    /// lowest rate saturated.
    pub knee: Option<f64>,
}

/// Fraction of the offered rate a point must achieve to count as
/// "keeping up" in the knee search.
pub const KNEE_KEEPUP: f64 = 0.95;

/// Ramp the offered rate from `lo` to `hi` across `steps` runs of the
/// configured load and locate the saturation knee. Each step reuses the
/// full config (transport, shedding, calibration) with only `rate`
/// swapped.
pub fn run_rate_sweep(
    cfg: &LoadConfig,
    lo: f64,
    hi: f64,
    steps: usize,
) -> Result<RateSweep, String> {
    if !lo.is_finite() || !hi.is_finite() || lo <= 0.0 || hi < lo || steps < 2 {
        return Err(format!(
            "bad sweep lo:hi:steps = {lo}:{hi}:{steps} (need 0 < lo <= hi, steps >= 2)"
        ));
    }
    let mut points = Vec::with_capacity(steps);
    for i in 0..steps {
        let rate = lo + (hi - lo) * i as f64 / (steps - 1) as f64;
        let step_cfg = LoadConfig {
            rate: Some(rate),
            ..cfg.clone()
        };
        let s = try_run_configured_load(&step_cfg)?;
        points.push(SweepPoint {
            offered_rate: rate,
            throughput: s.report.throughput,
            rejected: s.report.rejected,
            shed: s.report.shed,
            p50: s.report.latency.p50,
            p99: s.report.latency.p99,
        });
    }
    // The knee is the last rate the pipeline still kept up with; beyond
    // it the achieved curve flattens while offered keeps climbing.
    let knee = points
        .iter()
        .filter(|p| p.throughput >= KNEE_KEEPUP * p.offered_rate)
        .map(|p| p.offered_rate)
        .fold(None, |acc: Option<f64>, r| {
            Some(acc.map_or(r, |a| a.max(r)))
        });
    Ok(RateSweep { points, knee })
}

/// Render a human-readable sweep table.
pub fn render_rate_sweep(s: &RateSweep) -> String {
    let mut out = String::new();
    out.push_str("offered/s  achieved/s  keep-up  rejected  shed  p50_s      p99_s\n");
    for p in &s.points {
        out.push_str(&format!(
            "{:>9.1}  {:>10.1}  {:>6.2}   {:>8}  {:>4}  {:<9.6}  {:.6}\n",
            p.offered_rate,
            p.throughput,
            p.throughput / p.offered_rate.max(1e-9),
            p.rejected,
            p.shed,
            p.p50,
            p.p99
        ));
    }
    match s.knee {
        Some(k) => out.push_str(&format!(
            "knee     : {k:.1} datasets/s (last rate with achieved >= {:.0}% of offered)\n",
            KNEE_KEEPUP * 100.0
        )),
        None => out.push_str("knee     : below the lowest swept rate (saturated everywhere)\n"),
    }
    out
}

/// Machine-readable sweep report.
pub fn rate_sweep_json(cfg: &LoadConfig, s: &RateSweep) -> Value {
    let mut doc = Value::object();
    doc.set("workload", cfg.workload.as_str());
    doc.set("transport", cfg.transport.as_str());
    let points: Vec<Value> = s
        .points
        .iter()
        .map(|p| {
            let mut pv = Value::object();
            pv.set("offered_rate", p.offered_rate);
            pv.set("throughput", p.throughput);
            pv.set("rejected", p.rejected as f64);
            pv.set("shed", p.shed as f64);
            pv.set("p50_s", p.p50);
            pv.set("p99_s", p.p99);
            pv
        })
        .collect();
    doc.set("points", Value::Array(points));
    match s.knee {
        Some(k) => doc.set("knee_rate", k),
        None => doc.set("knee_rate", Value::Null),
    };
    doc
}

/// Parse a duration like `2`, `2s`, `2.5s`, or `250ms` into seconds.
pub fn parse_duration_s(s: &str) -> Option<f64> {
    let (num, scale) = if let Some(rest) = s.strip_suffix("ms") {
        (rest, 1e-3)
    } else if let Some(rest) = s.strip_suffix('s') {
        (rest, 1.0)
    } else {
        (s, 1.0)
    };
    let v: f64 = num.parse().ok()?;
    (v >= 0.0 && v.is_finite()).then_some(v * scale)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counted(n: usize, cfg: LoadConfig) -> LoadConfig {
        LoadConfig {
            duration_s: None,
            datasets: Some(n),
            ..cfg
        }
    }

    #[test]
    fn micro_load_reports_consistent_numbers() {
        // 2000 datasets is far beyond the pipeline's in-flight window,
        // so a sustained run must see pool hits regardless of timing.
        let cfg = counted(
            2000,
            LoadConfig {
                size: 64,
                ..LoadConfig::default()
            },
        );
        let s = run_configured_load(&cfg);
        assert_eq!(s.report.completed, 2000);
        assert_eq!(s.stage_names.len(), 4);
        assert!(s.report.throughput > 0.0);
        assert!(s.predicted_throughput > 0.0);
        let pool = s.pool.expect("pool on by default");
        assert_eq!(pool.hits + pool.misses, 2000);
        assert!(pool.hits > 0, "sustained run should recycle: {pool:?}");
        // Batched transport fills messages beyond one item.
        assert!(s.report.stats.mean_batch_fill() > 1.0);
        let text = render_load_summary(&s);
        assert!(text.contains("datasets/s"), "{text}");
        let json = load_report_json(&s);
        assert_eq!(
            json.get("result")
                .and_then(|r| r.get("completed"))
                .and_then(Value::as_f64),
            Some(2000.0)
        );
    }

    #[test]
    fn reference_config_disables_batching_and_pooling() {
        let cfg = counted(200, LoadConfig::default().reference());
        assert_eq!(cfg.batch, 1);
        assert!(!cfg.pool);
        let s = run_configured_load(&cfg);
        assert_eq!(s.report.completed, 200);
        assert!(s.pool.is_none());
        assert!((s.report.stats.mean_batch_fill() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fft_hist_load_runs() {
        let cfg = counted(
            40,
            LoadConfig {
                workload: Workload::FftHist,
                size: 16,
                ..LoadConfig::default()
            },
        );
        let s = run_configured_load(&cfg);
        assert_eq!(s.report.completed, 40);
        assert_eq!(s.stage_names, vec!["fft_rows", "fft_cols", "histogram"]);
        assert!(s.report.latency.p99 >= s.report.latency.p50);
    }

    #[test]
    fn duration_strings_parse() {
        assert_eq!(parse_duration_s("2"), Some(2.0));
        assert_eq!(parse_duration_s("2s"), Some(2.0));
        assert_eq!(parse_duration_s("250ms"), Some(0.25));
        assert_eq!(parse_duration_s("2.5s"), Some(2.5));
        assert_eq!(parse_duration_s("-1"), None);
        assert_eq!(parse_duration_s("x"), None);
    }
}
