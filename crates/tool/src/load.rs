//! The `pipemap load` sustained-load driver.
//!
//! Drives a real threaded pipeline (built from one of two built-in
//! workloads) at a target rate or open loop, via
//! [`pipemap_exec::run_load`], and reports achieved datasets/sec, p50/p99
//! end-to-end latency, per-stage backpressure, transport batching
//! effectiveness, and buffer-pool hit rate. The achieved throughput is
//! validated against the paper's closed form
//! `1 / max_i (s_i / r_i)` ([`pipemap_sim::steady_state_throughput`])
//! evaluated on the *measured* per-stage service means — the serving-side
//! counterpart of the predicted-vs-measured tables.
//!
//! Workloads:
//!
//! * `micro` — `stages` light integer-mixing stages over `len`-element
//!   `u64` buffers: per-dataset work is tiny, so the data plane (channel
//!   messages, allocation churn) dominates and batching/pooling effects
//!   are visible;
//! * `fft-hist` — the paper's FFT-Hist computation on `n×n` complex
//!   matrices (row FFTs → column FFTs → histogram): per-dataset work is
//!   real, so latency percentiles and backpressure are meaningful.

use pipemap_exec::kernels::{fft_cols, fft_rows, histogram, Complex, Matrix};
use pipemap_exec::{
    run_load, BufferPool, Data, Lease, LoadOptions, LoadReport, PipelinePlan, PoolStats, Stage,
    StagePlan,
};
use pipemap_obs::{EventLog, JourneyCollector, SloConfig, Value};
use std::time::Duration;

/// Which built-in pipeline to drive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Workload {
    /// Light integer-mixing stages (data-plane stress).
    Micro,
    /// FFT-Hist on complex matrices (real compute).
    FftHist,
}

impl Workload {
    /// Parse a workload name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "micro" => Some(Workload::Micro),
            "fft-hist" => Some(Workload::FftHist),
            _ => None,
        }
    }

    fn as_str(self) -> &'static str {
        match self {
            Workload::Micro => "micro",
            Workload::FftHist => "fft-hist",
        }
    }
}

/// Full configuration of one load run.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// The pipeline to drive.
    pub workload: Workload,
    /// Target rate (datasets/s); `None` = open loop.
    pub rate: Option<f64>,
    /// Stop feeding after this many seconds.
    pub duration_s: Option<f64>,
    /// Stop feeding after this many datasets.
    pub datasets: Option<usize>,
    /// Transport batch size (datasets per channel message).
    pub batch: usize,
    /// Batch latency bound, microseconds.
    pub flush_us: u64,
    /// Per-instance input queue depth, in messages.
    pub queue_depth: usize,
    /// Replicas per stage.
    pub replicas: usize,
    /// Threads per instance.
    pub threads: usize,
    /// Recycle payloads through a [`BufferPool`].
    pub pool: bool,
    /// Micro: number of stages. FFT-Hist: fixed 3-stage pipeline.
    pub stages: usize,
    /// Micro: buffer length (u64 elements). FFT-Hist: matrix edge.
    pub size: usize,
    /// Record per-dataset journey events into this collector.
    pub journeys: Option<JourneyCollector>,
    /// Emit SLO/backpressure events into this log.
    pub events: Option<EventLog>,
    /// Latency objective evaluated against every completed data set
    /// (needs `events` to land anywhere).
    pub slo: Option<SloConfig>,
}

impl Default for LoadConfig {
    fn default() -> Self {
        Self {
            workload: Workload::Micro,
            rate: None,
            duration_s: Some(2.0),
            datasets: None,
            batch: 32,
            flush_us: 200,
            queue_depth: 4,
            replicas: 1,
            threads: 1,
            pool: true,
            stages: 4,
            size: 1024,
            journeys: None,
            events: None,
            slo: None,
        }
    }
}

impl LoadConfig {
    /// The reference data plane: unbatched transport, no pooling — the
    /// pre-batching executor, kept for A/B comparison.
    pub fn reference(mut self) -> Self {
        self.batch = 1;
        self.pool = false;
        self
    }
}

/// What one load run produced, ready for rendering.
#[derive(Clone, Debug)]
pub struct LoadSummary {
    /// The configuration that ran.
    pub config: LoadConfig,
    /// Stage names, in pipeline order.
    pub stage_names: Vec<String>,
    /// The driver's measurement.
    pub report: LoadReport,
    /// Closed-form throughput predicted from the measured per-stage
    /// service means (`NaN` when nothing completed).
    pub predicted_throughput: f64,
    /// Pool counters, when pooling was on.
    pub pool: Option<PoolStats>,
}

const MIX_PRIME: u64 = 0x9E37_79B9_7F4A_7C15;

fn mix(v: &mut [u64], salt: u64) {
    for x in v.iter_mut() {
        *x = x.wrapping_mul(MIX_PRIME).rotate_left(13) ^ salt;
    }
}

fn fill(v: &mut [u64], seq: usize) {
    for (j, x) in v.iter_mut().enumerate() {
        *x = seq as u64 ^ ((j as u64) << 32);
    }
}

/// The micro workload's plan: `stages` mixing stages, pooled or plain
/// payloads. Exposed for the bench suite, which drives the same plan.
pub fn micro_plan(cfg: &LoadConfig) -> PipelinePlan {
    let stages = (0..cfg.stages.max(1))
        .map(|i| {
            let salt = i as u64 + 1;
            let stage = if cfg.pool {
                Stage::new(format!("mix{i}"), move |mut v: Lease<Vec<u64>>, _| {
                    mix(&mut v, salt);
                    v
                })
            } else {
                Stage::new(format!("mix{i}"), move |mut v: Vec<u64>, _| {
                    mix(&mut v, salt);
                    v
                })
            };
            StagePlan::new(stage, cfg.replicas.max(1), cfg.threads.max(1))
        })
        .collect();
    let plan = PipelinePlan::new(stages)
        .with_batch(cfg.batch.max(1))
        .with_flush_us(cfg.flush_us)
        .with_queue_depth(cfg.queue_depth.max(1));
    attach_observability(plan, cfg)
}

/// Attach whichever observability surfaces the config carries.
fn attach_observability(mut plan: PipelinePlan, cfg: &LoadConfig) -> PipelinePlan {
    if let Some(j) = &cfg.journeys {
        plan = plan.with_journeys(j.clone());
    }
    if let Some(log) = &cfg.events {
        plan = plan.with_events(log.clone());
        if let Some(slo) = cfg.slo {
            plan = plan.with_slo(slo);
        }
    }
    plan
}

/// The micro workload's source: fresh or pooled `len`-element buffers.
/// Exposed for the bench suite.
pub fn micro_source(
    len: usize,
    pool: Option<BufferPool>,
) -> impl FnMut(usize) -> Data + Send + 'static {
    move |seq| match &pool {
        Some(p) => {
            let mut lease = p.take(|| vec![0u64; len]);
            fill(&mut lease, seq);
            Box::new(lease) as Data
        }
        None => {
            let mut v = vec![0u64; len];
            fill(&mut v, seq);
            Box::new(v) as Data
        }
    }
}

/// The FFT-Hist workload's plan: row FFTs → column FFTs → histogram.
pub fn fft_hist_plan(cfg: &LoadConfig) -> PipelinePlan {
    let n = cfg.size.max(2).next_power_of_two();
    let max = n as f64;
    let stages = if cfg.pool {
        vec![
            Stage::new("fft_rows", |mut m: Lease<Matrix>, t| {
                fft_rows(&mut m, t);
                m
            }),
            Stage::new("fft_cols", |mut m: Lease<Matrix>, t| {
                fft_cols(&mut m, t);
                m
            }),
            // The lease drops here, returning the matrix to the pool.
            Stage::new("histogram", move |m: Lease<Matrix>, t| {
                histogram(&m, 64, max, t)
            }),
        ]
    } else {
        vec![
            Stage::new("fft_rows", |mut m: Matrix, t| {
                fft_rows(&mut m, t);
                m
            }),
            Stage::new("fft_cols", |mut m: Matrix, t| {
                fft_cols(&mut m, t);
                m
            }),
            Stage::new("histogram", move |m: Matrix, t| histogram(&m, 64, max, t)),
        ]
    };
    let plans = stages
        .into_iter()
        .map(|s| StagePlan::new(s, cfg.replicas.max(1), cfg.threads.max(1)))
        .collect();
    let plan = PipelinePlan::new(plans)
        .with_batch(cfg.batch.max(1))
        .with_flush_us(cfg.flush_us)
        .with_queue_depth(cfg.queue_depth.max(1));
    attach_observability(plan, cfg)
}

fn fft_hist_source(
    n: usize,
    pool: Option<BufferPool>,
) -> impl FnMut(usize) -> Data + Send + 'static {
    let n = n.max(2).next_power_of_two();
    move |seq| {
        let write = |m: &mut Matrix| {
            for r in 0..n {
                for c in 0..n {
                    m.data[r * n + c] =
                        Complex::new(((r * 31 + c * 17 + seq * 7) % 97) as f64 / 97.0, 0.0);
                }
            }
        };
        match &pool {
            Some(p) => {
                let mut lease = p.take(|| Matrix::zero(n));
                write(&mut lease);
                Box::new(lease) as Data
            }
            None => {
                let mut m = Matrix::zero(n);
                write(&mut m);
                Box::new(m) as Data
            }
        }
    }
}

/// Run one configured load and summarise it.
pub fn run_configured_load(cfg: &LoadConfig) -> LoadSummary {
    // The shelf must cover the pipeline's in-flight window (stage queues
    // × batch × stages, plus transport buffers) or takes outrun returns
    // and the pool degenerates to plain allocation. 1024 payloads cover
    // every configuration the CLI exposes.
    let pool = cfg.pool.then(|| BufferPool::new(1024));
    let opts = LoadOptions {
        rate: cfg.rate,
        duration: cfg.duration_s.map(Duration::from_secs_f64),
        max_datasets: cfg.datasets,
    };
    let (plan, report) = match cfg.workload {
        Workload::Micro => {
            let plan = micro_plan(cfg);
            let report = run_load(&plan, micro_source(cfg.size, pool.clone()), &opts);
            (plan, report)
        }
        Workload::FftHist => {
            let plan = fft_hist_plan(cfg);
            let report = run_load(&plan, fft_hist_source(cfg.size, pool.clone()), &opts);
            (plan, report)
        }
    };
    let stage_names: Vec<String> = plan
        .stages
        .iter()
        .map(|sp| sp.stage.name.to_string())
        .collect();
    // Closed-form prediction from the measured service means: stage i's
    // mean seconds per dataset is its total busy time over the datasets
    // it served (every dataset passes through every stage once).
    let predicted_throughput = if report.completed > 0 {
        let means: Vec<f64> = report
            .stats
            .busy
            .iter()
            .map(|b| b / report.completed as f64)
            .collect();
        let replicas: Vec<usize> = plan.stages.iter().map(|sp| sp.replicas).collect();
        pipemap_sim::steady_state_throughput(&means, &replicas)
    } else {
        f64::NAN
    };
    if let Some(p) = &pool {
        p.publish();
    }
    LoadSummary {
        config: cfg.clone(),
        stage_names,
        report,
        predicted_throughput,
        pool: pool.map(|p| p.stats()),
    }
}

/// Render a human-readable report.
pub fn render_load_summary(s: &LoadSummary) -> String {
    let r = &s.report;
    let cfg = &s.config;
    let mut out = String::new();
    out.push_str(&format!(
        "workload : {} (batch {}, flush {}µs, queue {}, {}x{} per stage, pool {})\n",
        cfg.workload.as_str(),
        cfg.batch,
        cfg.flush_us,
        cfg.queue_depth,
        cfg.replicas,
        cfg.threads,
        if cfg.pool { "on" } else { "off" }
    ));
    match cfg.rate {
        Some(rate) => out.push_str(&format!("offered  : {rate:.1} datasets/s\n")),
        None => out.push_str("offered  : open loop (backpressure-limited)\n"),
    }
    out.push_str(&format!(
        "served   : {} datasets in {:.3}s -> {:.1} datasets/s\n",
        r.completed, r.elapsed, r.throughput
    ));
    if s.predicted_throughput.is_finite() {
        let ratio = r.throughput / s.predicted_throughput;
        out.push_str(&format!(
            "predicted: {:.1} datasets/s from measured service means (achieved/predicted {:.2})\n",
            s.predicted_throughput, ratio
        ));
    }
    out.push_str(&format!(
        "latency  : mean {:.6}s  p50 {:.6}s  p90 {:.6}s  p99 {:.6}s  max {:.6}s\n",
        r.latency.mean, r.latency.p50, r.latency.p90, r.latency.p99, r.latency.max
    ));
    out.push_str(&format!(
        "transport: {} messages carrying {} datasets (mean fill {:.2}); source blocked {:.3}s\n",
        r.stats.messages,
        r.stats.message_items,
        r.stats.mean_batch_fill(),
        r.stats.source_wait
    ));
    if let Some(p) = &s.pool {
        out.push_str(&format!(
            "pool     : {:.0}% hit rate ({} hits, {} misses, {} returns, {} discarded)\n",
            p.hit_rate() * 100.0,
            p.hits,
            p.misses,
            p.returns,
            p.discarded
        ));
    }
    let denom = (cfg.replicas.max(1) as f64) * r.elapsed.max(1e-9);
    for (i, name) in s.stage_names.iter().enumerate() {
        out.push_str(&format!(
            "stage {i} ({name}): busy {:.0}%  starved {:.0}%  backpressured {:.0}%\n",
            100.0 * r.stats.busy[i] / denom,
            100.0 * r.stats.recv_wait[i] / denom,
            100.0 * r.stats.send_wait[i] / denom,
        ));
    }
    out
}

/// Render the machine-readable JSON report.
pub fn load_report_json(s: &LoadSummary) -> Value {
    let cfg = &s.config;
    let r = &s.report;
    let mut doc = Value::object();
    doc.set("workload", cfg.workload.as_str());

    let mut c = Value::object();
    if let Some(rate) = cfg.rate {
        c.set("rate", rate);
    }
    if let Some(d) = cfg.duration_s {
        c.set("duration_s", d);
    }
    if let Some(n) = cfg.datasets {
        c.set("datasets", n as f64);
    }
    c.set("batch", cfg.batch as f64);
    c.set("flush_us", cfg.flush_us as f64);
    c.set("queue_depth", cfg.queue_depth as f64);
    c.set("replicas", cfg.replicas as f64);
    c.set("threads", cfg.threads as f64);
    c.set("pool", cfg.pool);
    c.set("stages", cfg.stages as f64);
    c.set("size", cfg.size as f64);
    doc.set("config", c);

    let mut res = Value::object();
    res.set("generated", r.generated as f64);
    res.set("completed", r.completed as f64);
    res.set("elapsed_s", r.elapsed);
    res.set("throughput", r.throughput);
    if s.predicted_throughput.is_finite() {
        res.set("predicted_throughput", s.predicted_throughput);
        res.set(
            "achieved_over_predicted",
            r.throughput / s.predicted_throughput,
        );
    }
    let mut lat = Value::object();
    lat.set("mean_s", r.latency.mean);
    lat.set("p50_s", r.latency.p50);
    lat.set("p90_s", r.latency.p90);
    lat.set("p99_s", r.latency.p99);
    lat.set("max_s", r.latency.max);
    res.set("latency", lat);
    doc.set("result", res);

    let mut t = Value::object();
    t.set("messages", r.stats.messages as f64);
    t.set("message_items", r.stats.message_items as f64);
    t.set("mean_batch_fill", r.stats.mean_batch_fill());
    t.set("source_wait_s", r.stats.source_wait);
    doc.set("transport", t);

    if let Some(p) = &s.pool {
        let mut pv = Value::object();
        pv.set("hits", p.hits as f64);
        pv.set("misses", p.misses as f64);
        pv.set("returns", p.returns as f64);
        pv.set("discarded", p.discarded as f64);
        pv.set("hit_rate", p.hit_rate());
        doc.set("pool", pv);
    }

    let denom = (cfg.replicas.max(1) as f64) * r.elapsed.max(1e-9);
    let stages: Vec<Value> = s
        .stage_names
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let mut st = Value::object();
            st.set("name", name.as_str());
            st.set("busy_s", r.stats.busy[i]);
            st.set("recv_wait_s", r.stats.recv_wait[i]);
            st.set("send_wait_s", r.stats.send_wait[i]);
            st.set("utilization", r.stats.utilization[i]);
            st.set("backpressure", r.stats.send_wait[i] / denom);
            st
        })
        .collect();
    doc.set("stages", Value::Array(stages));
    doc
}

/// The model snapshot a load run's journey log carries: the closed-form
/// prediction over the *measured* per-stage service means (the executor
/// has no communication model, so predicted transport is zero). The
/// doctor compares journey-derived means against this, so on a healthy
/// run the drift verdict is clean by construction — it flips only when
/// the journey decomposition disagrees with the busy-time accounting.
pub fn measured_prediction(s: &LoadSummary) -> Option<pipemap_doctor::ModelPrediction> {
    if s.report.completed == 0 {
        return None;
    }
    let means: Vec<f64> = s
        .report
        .stats
        .busy
        .iter()
        .map(|b| b / s.report.completed as f64)
        .collect();
    let replicas = vec![s.config.replicas.max(1); s.stage_names.len()];
    Some(pipemap_doctor::ModelPrediction::from_measured(
        &s.stage_names,
        &replicas,
        &means,
    ))
}

/// Parse a duration like `2`, `2s`, `2.5s`, or `250ms` into seconds.
pub fn parse_duration_s(s: &str) -> Option<f64> {
    let (num, scale) = if let Some(rest) = s.strip_suffix("ms") {
        (rest, 1e-3)
    } else if let Some(rest) = s.strip_suffix('s') {
        (rest, 1.0)
    } else {
        (s, 1.0)
    };
    let v: f64 = num.parse().ok()?;
    (v >= 0.0 && v.is_finite()).then_some(v * scale)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counted(n: usize, cfg: LoadConfig) -> LoadConfig {
        LoadConfig {
            duration_s: None,
            datasets: Some(n),
            ..cfg
        }
    }

    #[test]
    fn micro_load_reports_consistent_numbers() {
        // 2000 datasets is far beyond the pipeline's in-flight window,
        // so a sustained run must see pool hits regardless of timing.
        let cfg = counted(
            2000,
            LoadConfig {
                size: 64,
                ..LoadConfig::default()
            },
        );
        let s = run_configured_load(&cfg);
        assert_eq!(s.report.completed, 2000);
        assert_eq!(s.stage_names.len(), 4);
        assert!(s.report.throughput > 0.0);
        assert!(s.predicted_throughput > 0.0);
        let pool = s.pool.expect("pool on by default");
        assert_eq!(pool.hits + pool.misses, 2000);
        assert!(pool.hits > 0, "sustained run should recycle: {pool:?}");
        // Batched transport fills messages beyond one item.
        assert!(s.report.stats.mean_batch_fill() > 1.0);
        let text = render_load_summary(&s);
        assert!(text.contains("datasets/s"), "{text}");
        let json = load_report_json(&s);
        assert_eq!(
            json.get("result")
                .and_then(|r| r.get("completed"))
                .and_then(Value::as_f64),
            Some(2000.0)
        );
    }

    #[test]
    fn reference_config_disables_batching_and_pooling() {
        let cfg = counted(200, LoadConfig::default().reference());
        assert_eq!(cfg.batch, 1);
        assert!(!cfg.pool);
        let s = run_configured_load(&cfg);
        assert_eq!(s.report.completed, 200);
        assert!(s.pool.is_none());
        assert!((s.report.stats.mean_batch_fill() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fft_hist_load_runs() {
        let cfg = counted(
            40,
            LoadConfig {
                workload: Workload::FftHist,
                size: 16,
                ..LoadConfig::default()
            },
        );
        let s = run_configured_load(&cfg);
        assert_eq!(s.report.completed, 40);
        assert_eq!(s.stage_names, vec!["fft_rows", "fft_cols", "histogram"]);
        assert!(s.report.latency.p99 >= s.report.latency.p50);
    }

    #[test]
    fn duration_strings_parse() {
        assert_eq!(parse_duration_s("2"), Some(2.0));
        assert_eq!(parse_duration_s("2s"), Some(2.0));
        assert_eq!(parse_duration_s("250ms"), Some(0.25));
        assert_eq!(parse_duration_s("2.5s"), Some(2.5));
        assert_eq!(parse_duration_s("-1"), None);
        assert_eq!(parse_duration_s("x"), None);
    }
}
