//! The live cost-model observatory: glue between journey tracing, the
//! online estimators, and the event/exposition surfaces.
//!
//! An [`Observatory`] ingests stitched journeys (from a live
//! [`JourneyCollector`] or a recorded [`JourneyLog`]), feeds each hop's
//! service time into a [`pipemap_profile::OnlineModel`], and on every
//! refit
//!
//! * publishes the fitted-vs-static model as JSON into a
//!   [`ModelPublisher`] (served at `/model.json`), and
//! * emits `residual_high` / `residual_recovered` events (with
//!   half-threshold hysteresis) into an [`EventLog`] as a stage's
//!   online-fitted cost departs from its static model.
//!
//! [`spawn_observatory`] runs the ingest→refit loop on a background
//! thread against a live collector, so `pipemap load --serve` exposes a
//! continuously refitted model while the run is in flight.
//! [`online_drift`] is the offline twin used by
//! `pipemap doctor --model online`: it refits from a recorded journey
//! log and localises the stage whose fitted cost drifted furthest from
//! the static prediction.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use pipemap_doctor::{JourneyLog, MarginSpec};
use pipemap_model::PolyUnary;
use pipemap_obs::{
    stitch, EventKind, EventLog, Journey, JourneyCollector, JourneyEvent, ModelPublisher, ObsEvent,
    Severity, Value,
};
use pipemap_profile::{OnlineConfig, OnlineModel};

/// Schema identifier stamped into `/model.json`.
pub const MODEL_SCHEMA: &str = pipemap_obs::schema::MODEL;

/// Observatory tuning.
#[derive(Clone, Debug)]
pub struct ObservatoryConfig {
    /// Processor count per stage used as the `p` of every exec
    /// observation (the executor's threads-per-instance; 1 when
    /// unknown).
    pub procs: Vec<usize>,
    /// Relative fitted-vs-static residual above which a stage fires
    /// `residual_high` (recovery at half of it).
    pub residual_threshold: f64,
    /// Exact per-stage stability margins from `pipemap explain` (via
    /// [`MarginSpec`]). When set, each refit also compares the signed
    /// fitted/static factor against the stage's `(exec_down, exec_up)`
    /// interval and fires a `margin_crossed` event the moment the fitted
    /// cost leaves it — i.e. the moment the deployed mapping is provably
    /// no longer optimal, which a fixed residual threshold can neither
    /// promise nor rule out.
    pub margins: Option<MarginSpec>,
    /// Estimator tuning (decay half-life, refit cadence).
    pub online: OnlineConfig,
}

impl Default for ObservatoryConfig {
    fn default() -> Self {
        Self {
            procs: Vec::new(),
            residual_threshold: 0.25,
            margins: None,
            online: OnlineConfig::default(),
        }
    }
}

/// Continuous model refit over a stream of journeys.
pub struct Observatory {
    model: OnlineModel,
    cfg: ObservatoryConfig,
    log: EventLog,
    publisher: ModelPublisher,
    residual_high: Vec<bool>,
    margin_crossed: Vec<bool>,
    ingested: u64,
    last_seq: Option<u64>,
}

impl Observatory {
    /// An observatory fitting against the given static per-stage models.
    /// `cfg.procs` is padded with 1s to the stage count.
    pub fn new(
        statics: &[PolyUnary],
        mut cfg: ObservatoryConfig,
        log: EventLog,
        publisher: ModelPublisher,
    ) -> Self {
        while cfg.procs.len() < statics.len() {
            cfg.procs.push(1);
        }
        Self {
            model: OnlineModel::new(statics, &[], cfg.online),
            residual_high: vec![false; statics.len()],
            margin_crossed: vec![false; statics.len()],
            cfg,
            log,
            publisher,
            ingested: 0,
            last_seq: None,
        }
    }

    /// An observatory for `stages` stages with no static model (the
    /// fitted model bootstraps purely from observations; residual events
    /// stay silent because there is nothing to drift from).
    pub fn without_statics(
        stages: usize,
        cfg: ObservatoryConfig,
        log: EventLog,
        publisher: ModelPublisher,
    ) -> Self {
        Self::new(
            &vec![PolyUnary::new(0.0, 0.0, 0.0); stages],
            cfg,
            log,
            publisher,
        )
    }

    /// Ingest from a raw (possibly repeated) collector snapshot: drop
    /// events at or below the sequence watermark *before* stitching, so
    /// a polling loop pays for the new tail of the ring, not the whole
    /// accumulated history every round.
    pub fn ingest_events(&mut self, events: &[JourneyEvent]) -> usize {
        let fresh: Vec<JourneyEvent> = match self.last_seq {
            None => events.to_vec(),
            Some(last) => events.iter().filter(|e| e.seq > last).copied().collect(),
        };
        if fresh.is_empty() {
            return 0;
        }
        self.ingest(&stitch(&fresh))
    }

    /// Feed every not-yet-seen journey's per-hop service times into the
    /// estimators. Journeys are identified by sequence number, so
    /// repeated snapshots of a growing collector ingest each data set
    /// once. Returns how many journeys were new.
    pub fn ingest(&mut self, journeys: &[Journey]) -> usize {
        let mut new = 0usize;
        for j in journeys {
            if self.last_seq.is_some_and(|last| j.seq <= last) {
                continue;
            }
            self.last_seq = Some(j.seq);
            new += 1;
            self.ingested += 1;
            for hop in &j.hops {
                let (Some(s0), Some(s1)) = (hop.service_start_us, hop.service_end_us) else {
                    continue;
                };
                let stage = hop.stage as usize;
                if stage >= self.model.num_stages() {
                    continue;
                }
                let p = self.cfg.procs.get(stage).copied().unwrap_or(1);
                self.model.observe_exec(stage, p, (s1 - s0) / 1e6);
            }
        }
        new
    }

    /// Refit every estimator, emit residual threshold crossings, and
    /// publish the fresh model JSON.
    pub fn refit_and_publish(&mut self) {
        self.model.refit();
        let t_us = self.log.now_us();
        for (i, est) in self.model.stages().iter().enumerate() {
            let Some(snap) = est.snapshot() else {
                continue;
            };
            // Drift is only meaningful against a positive static model.
            if snap.static_model.eval(snap.p) <= 0.0 {
                continue;
            }
            let thr = self.cfg.residual_threshold;
            if !self.residual_high[i] && snap.drift > thr {
                self.residual_high[i] = true;
                self.log.emit(ObsEvent {
                    t_us,
                    kind: EventKind::ResidualHigh,
                    severity: Severity::Warning,
                    stage: Some(i as u32),
                    value: snap.drift,
                    message: format!(
                        "stage {i}: online-fitted cost {:.1}% off the static model",
                        snap.drift * 100.0
                    ),
                });
            } else if self.residual_high[i] && snap.drift < thr * 0.5 {
                self.residual_high[i] = false;
                self.log.emit(ObsEvent {
                    t_us,
                    kind: EventKind::ResidualRecovered,
                    severity: Severity::Info,
                    stage: Some(i as u32),
                    value: snap.drift,
                    message: format!("stage {i}: fitted cost back within tolerance"),
                });
            }
            // Margin-aware alerting: the exact stability interval from the
            // solver, not a one-size-fits-all threshold. Crossing it means
            // the argmin has provably flipped — a different mapping now
            // wins under the fitted costs.
            let spec = self
                .cfg
                .margins
                .as_ref()
                .and_then(|m| m.stages.iter().find(|ms| ms.stage == i));
            if let Some(ms) = spec {
                let g = snap.factor;
                let crossed = g > ms.exec_up || g < ms.exec_down;
                if !self.margin_crossed[i] && crossed {
                    self.margin_crossed[i] = true;
                    let up = if ms.exec_up.is_finite() {
                        format!("{:.3}", ms.exec_up)
                    } else {
                        "inf".to_string()
                    };
                    self.log.emit(ObsEvent {
                        t_us,
                        kind: EventKind::MarginCrossed,
                        severity: Severity::Critical,
                        stage: Some(i as u32),
                        value: g,
                        message: format!(
                            "stage {i}: fitted cost {g:.3}x its static model, outside the \
                             exact stability interval ({:.3}, {up}) — the deployed mapping \
                             is no longer optimal",
                            ms.exec_down
                        ),
                    });
                } else if self.margin_crossed[i] && !crossed {
                    // Re-arm only once the factor is halfway back toward
                    // 1.0 inside the interval, so a cost oscillating on
                    // the margin edge fires once, not every refit.
                    let up_rearm = if ms.exec_up.is_finite() {
                        1.0 + 0.5 * (ms.exec_up - 1.0)
                    } else {
                        f64::INFINITY
                    };
                    let down_rearm = 1.0 - 0.5 * (1.0 - ms.exec_down);
                    if g < up_rearm && g > down_rearm {
                        self.margin_crossed[i] = false;
                    }
                }
            }
        }
        self.publisher.publish(self.model_json().to_json());
    }

    /// The current model as the `/model.json` document.
    pub fn model_json(&self) -> Value {
        let mut doc = Value::object();
        doc.set("model_schema", MODEL_SCHEMA);
        doc.set("journeys_ingested", self.ingested);
        let stages: Vec<Value> = self
            .model
            .stages()
            .iter()
            .enumerate()
            .map(|(i, est)| {
                let mut st = Value::object();
                st.set("stage", i as u64);
                match est.snapshot() {
                    Some(snap) => {
                        st.set("samples", snap.samples);
                        st.set("p", snap.p as u64);
                        st.set("mean_s", snap.mean_s);
                        st.set("sd_s", snap.sd_s);
                        st.set("drift", snap.drift);
                        st.set("factor", snap.factor);
                        st.set("fit_rel_err", snap.fit_rel_err);
                        st.set("confidence", snap.confidence);
                        st.set("static", poly_json(&snap.static_model));
                        st.set("fitted", poly_json(&snap.fitted));
                    }
                    None => {
                        st.set("samples", 0u64);
                        st.set("static", poly_json(&est.static_model()));
                    }
                }
                if let Some(ms) = self
                    .cfg
                    .margins
                    .as_ref()
                    .and_then(|m| m.stages.iter().find(|ms| ms.stage == i))
                {
                    // Non-finite bounds serialise as null: "no factor
                    // ever flips the mapping in that direction".
                    let mut margin = Value::object();
                    margin.set("exec_up", ms.exec_up);
                    margin.set("exec_down", ms.exec_down);
                    margin.set("ecom_in_up", ms.ecom_in_up);
                    margin.set("ecom_in_down", ms.ecom_in_down);
                    st.set("margin", margin);
                    st.set("margin_crossed", self.margin_crossed.get(i) == Some(&true));
                }
                st
            })
            .collect();
        doc.set("stages", Value::Array(stages));
        doc
    }

    /// The underlying estimators.
    pub fn model(&self) -> &OnlineModel {
        &self.model
    }

    /// Total journeys ingested so far.
    pub fn ingested(&self) -> u64 {
        self.ingested
    }
}

fn poly_json(p: &PolyUnary) -> Value {
    let mut o = Value::object();
    o.set("c1", p.c1);
    o.set("c2", p.c2);
    o.set("c3", p.c3);
    o
}

/// Handle to a background observatory loop; [`stop`](Self::stop) joins
/// it and returns the final [`Observatory`] state.
pub struct ObservatoryHandle {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<Observatory>>,
}

impl ObservatoryHandle {
    /// Signal the loop and wait for its final ingest+refit.
    pub fn stop(mut self) -> Observatory {
        self.stop.store(true, Ordering::Relaxed);
        self.handle
            .take()
            .expect("observatory joined once")
            .join()
            .expect("observatory thread panicked")
    }
}

/// Run `observatory` against a live collector on a background thread:
/// every `period`, snapshot the collector, ingest new journeys, refit,
/// and publish. A final round runs on stop, so short runs still land in
/// `/model.json`.
pub fn spawn_observatory(
    collector: JourneyCollector,
    mut observatory: Observatory,
    period: Duration,
) -> ObservatoryHandle {
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = stop.clone();
    let handle = std::thread::spawn(move || {
        let mut published = false;
        loop {
            let stopping = stop_flag.load(Ordering::Relaxed);
            let new = observatory.ingest_events(&collector.snapshot());
            // Refitting with nothing new republishes an identical model;
            // skip it (after the first publish) to keep the idle loop
            // off the CPU — on a saturated box this thread competes with
            // the very pipeline it watches.
            if new > 0 || stopping || !published {
                observatory.refit_and_publish();
                published = true;
            }
            if stopping {
                return observatory;
            }
            // Sleep in small slices so stop() never waits a full period.
            let mut remaining = period;
            while remaining > Duration::ZERO && !stop_flag.load(Ordering::Relaxed) {
                let slice = remaining.min(Duration::from_millis(20));
                std::thread::sleep(slice);
                remaining = remaining.saturating_sub(slice);
            }
        }
    });
    ObservatoryHandle {
        stop,
        handle: Some(handle),
    }
}

/// One stage's fitted-vs-static verdict from [`online_drift`].
#[derive(Clone, Debug)]
pub struct OnlineStageDrift {
    /// Stage index.
    pub stage: usize,
    /// Stage name from the log's model snapshot.
    pub name: String,
    /// Static (deployed) per-dataset service seconds.
    pub static_s: f64,
    /// Online-fitted service seconds at the operating point.
    pub fitted_s: f64,
    /// `|fitted − static| / static`.
    pub residual: f64,
    /// Fit confidence in `[0, 1]`.
    pub confidence: f64,
    /// Samples behind the fit.
    pub samples: u64,
}

/// `pipemap doctor --model online`: the drift verdict priced against the
/// online-fitted model.
#[derive(Clone, Debug)]
pub struct OnlineDrift {
    /// Per-stage verdicts, in pipeline order.
    pub stages: Vec<OnlineStageDrift>,
    /// The threshold a residual must clear to localise drift.
    pub threshold: f64,
    /// Stage with the largest above-threshold residual, if any.
    pub drifted: Option<usize>,
}

/// Refit an online model from a recorded journey log (exponential decay
/// weighting recent data sets) and localise the drifted stage. The
/// static baseline is the log's model snapshot when it carries one;
/// otherwise the whole-run mean per stage stands in, so the residual
/// reads "recent behaviour vs the run as a whole" — which is exactly
/// the question on a live scrape (those logs have no model header).
/// Returns `None` when the log has no usable service observations.
pub fn online_drift(log: &JourneyLog, cfg: OnlineConfig, threshold: f64) -> Option<OnlineDrift> {
    let journeys = stitch(&log.events);
    let (names, static_means) = match log.model.as_ref() {
        Some(m) => (
            m.stages.iter().map(|s| s.name.clone()).collect::<Vec<_>>(),
            m.stages.iter().map(|s| s.service_s).collect::<Vec<_>>(),
        ),
        None => {
            let means = whole_run_means(&journeys);
            if means.is_empty() {
                return None;
            }
            (
                (0..means.len()).map(|i| format!("stage{i}")).collect(),
                means,
            )
        }
    };
    let statics: Vec<PolyUnary> = static_means
        .iter()
        .map(|&s| PolyUnary::new(s, 0.0, 0.0))
        .collect();
    let mut observatory = Observatory::new(
        &statics,
        ObservatoryConfig {
            online: cfg,
            ..ObservatoryConfig::default()
        },
        EventLog::default(),
        ModelPublisher::default(),
    );
    observatory.ingest(&journeys);
    observatory.refit_and_publish();

    let mut stages = Vec::new();
    let mut drifted: Option<(usize, f64)> = None;
    for (i, est) in observatory.model().stages().iter().enumerate() {
        let name = names.get(i).cloned().unwrap_or_else(|| format!("stage{i}"));
        let static_s = static_means.get(i).copied().unwrap_or(0.0);
        let (fitted_s, residual, confidence, samples) = match est.snapshot() {
            Some(snap) => (
                snap.fitted.eval(snap.p),
                if static_s > 0.0 { snap.drift } else { 0.0 },
                snap.confidence,
                snap.samples,
            ),
            None => (static_s, 0.0, 0.0, 0),
        };
        if residual > threshold && drifted.is_none_or(|(_, r)| residual > r) {
            drifted = Some((i, residual));
        }
        stages.push(OnlineStageDrift {
            stage: i,
            name,
            static_s,
            fitted_s,
            residual,
            confidence,
            samples,
        });
    }
    Some(OnlineDrift {
        stages,
        threshold,
        drifted: drifted.map(|(i, _)| i),
    })
}

/// Unweighted per-stage mean service seconds over every complete hop.
fn whole_run_means(journeys: &[Journey]) -> Vec<f64> {
    let mut sum: Vec<f64> = Vec::new();
    let mut count: Vec<u64> = Vec::new();
    for j in journeys {
        for hop in &j.hops {
            let (Some(s0), Some(s1)) = (hop.service_start_us, hop.service_end_us) else {
                continue;
            };
            let stage = hop.stage as usize;
            if sum.len() <= stage {
                sum.resize(stage + 1, 0.0);
                count.resize(stage + 1, 0);
            }
            sum[stage] += (s1 - s0) / 1e6;
            count[stage] += 1;
        }
    }
    sum.iter()
        .zip(&count)
        .map(|(s, &c)| if c > 0 { s / c as f64 } else { 0.0 })
        .collect()
}

/// JSON form of an [`OnlineDrift`] report (the `online` key of the
/// doctor's JSON output).
pub fn online_drift_json(d: &OnlineDrift) -> Value {
    let mut doc = Value::object();
    doc.set("threshold", d.threshold);
    if let Some(s) = d.drifted {
        doc.set("drifted_stage", s as u64);
    }
    let stages: Vec<Value> = d
        .stages
        .iter()
        .map(|s| {
            let mut o = Value::object();
            o.set("stage", s.stage as u64);
            o.set("name", s.name.as_str());
            o.set("static_s", s.static_s);
            o.set("fitted_s", s.fitted_s);
            o.set("residual", s.residual);
            o.set("confidence", s.confidence);
            o.set("samples", s.samples);
            o
        })
        .collect();
    doc.set("stages", Value::Array(stages));
    doc
}

/// Human-readable rendering of an [`OnlineDrift`] report.
pub fn render_online_drift(d: &OnlineDrift) -> String {
    let mut out = String::from("online model (decay-weighted refit from journeys):\n");
    for s in &d.stages {
        out.push_str(&format!(
            "  stage {} ({}): static {:.6}s  fitted {:.6}s  residual {:>5.1}%  confidence {:.2}  ({} samples)\n",
            s.stage,
            s.name,
            s.static_s,
            s.fitted_s,
            s.residual * 100.0,
            s.confidence,
            s.samples
        ));
    }
    match d.drifted {
        Some(i) => out.push_str(&format!(
            "  drift localised: stage {i} ({}) is {:.1}% off its static model (> {:.0}% threshold) — re-solve the mapping\n",
            d.stages[i].name,
            d.stages[i].residual * 100.0,
            d.threshold * 100.0
        )),
        None => out.push_str(&format!(
            "  no stage exceeds the {:.0}% residual threshold — static model still holds\n",
            d.threshold * 100.0
        )),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipemap_obs::{EventLogConfig, JourneyConfig, JourneyKind};

    /// Synthesise a journey stream: `n` data sets over `service_s[stage]`
    /// seconds each, with stage `k`'s cost multiplied by `factor` from
    /// data set `after` onward.
    fn synth_events(
        n: usize,
        service_s: &[f64],
        after: usize,
        k: usize,
        factor: f64,
    ) -> Vec<pipemap_obs::JourneyEvent> {
        let col = JourneyCollector::new(JourneyConfig::default().with_capacity(64 * n));
        let mut sink = col.sink();
        let mut t = 0.0f64;
        for seq in 0..n {
            sink.record_at(t, JourneyKind::Source, seq, 0, 0, 0);
            for (stage, &s) in service_s.iter().enumerate() {
                let dur = if stage == k && seq >= after {
                    s * factor
                } else {
                    s
                };
                sink.record_at(t, JourneyKind::Enqueue, seq, stage as u32, 0, 0);
                sink.record_at(t, JourneyKind::Dequeue, seq, stage as u32, 0, 0);
                sink.record_at(t, JourneyKind::ServiceStart, seq, stage as u32, 0, 0);
                t += dur * 1e6;
                sink.record_at(t, JourneyKind::ServiceEnd, seq, stage as u32, 0, 0);
                sink.record_at(t, JourneyKind::Send, seq, stage as u32, 0, 0);
            }
            sink.record_at(t, JourneyKind::Sink, seq, service_s.len() as u32, 0, 0);
        }
        drop(sink);
        col.drain()
    }

    #[test]
    fn online_drift_without_model_header_uses_whole_run_baseline() {
        // No model snapshot (the live-scrape case): the whole-run mean is
        // the baseline, so a stage that triples mid-run still localises.
        let log = JourneyLog {
            source: "live".to_string(),
            sample: 1,
            dropped: 0,
            model: None,
            events: synth_events(120, &[0.010, 0.020], 60, 1, 3.0),
        };
        let cfg = OnlineConfig {
            half_life: 16.0,
            ..OnlineConfig::default()
        };
        let drift = online_drift(&log, cfg, 0.10).expect("journeys present");
        assert_eq!(drift.drifted, Some(1), "{drift:?}");
        assert_eq!(drift.stages[1].name, "stage1");
        // A log with no service events at all yields None.
        let empty = JourneyLog {
            source: "live".to_string(),
            sample: 1,
            dropped: 0,
            model: None,
            events: Vec::new(),
        };
        assert!(online_drift(&empty, OnlineConfig::default(), 0.10).is_none());
    }

    #[test]
    fn ingest_is_incremental_and_publishes_model_json() {
        let log = EventLog::default();
        let publisher = ModelPublisher::default();
        let mut obs = Observatory::new(
            &[
                PolyUnary::new(0.01, 0.0, 0.0),
                PolyUnary::new(0.02, 0.0, 0.0),
            ],
            ObservatoryConfig::default(),
            log,
            publisher.clone(),
        );
        let events = synth_events(50, &[0.01, 0.02], usize::MAX, 0, 1.0);
        let journeys = stitch(&events);
        assert_eq!(obs.ingest(&journeys), 50);
        // Re-ingesting the same snapshot is a no-op.
        assert_eq!(obs.ingest(&journeys), 0);
        obs.refit_and_publish();
        let doc = Value::parse(&publisher.current()).expect("valid model json");
        assert_eq!(
            doc.get("model_schema").and_then(Value::as_str),
            Some(MODEL_SCHEMA)
        );
        let stages = doc.get("stages").and_then(Value::as_array).unwrap();
        assert_eq!(stages.len(), 2);
        let mean = stages[0].get("mean_s").and_then(Value::as_f64).unwrap();
        assert!((mean - 0.01).abs() < 1e-9, "mean {mean}");
    }

    #[test]
    fn residual_events_fire_once_with_hysteresis() {
        let log = EventLog::new(EventLogConfig::default());
        let mut obs = Observatory::new(
            &[PolyUnary::new(0.01, 0.0, 0.0)],
            ObservatoryConfig::default(),
            log.clone(),
            ModelPublisher::default(),
        );
        // All samples 3x the static cost: residual ≈ 2.0 ≫ 0.25.
        let journeys = stitch(&synth_events(60, &[0.03], 0, 0, 1.0));
        obs.ingest(&journeys);
        obs.refit_and_publish();
        obs.refit_and_publish(); // second refit must not re-fire
        let events = log.snapshot();
        let high: Vec<_> = events
            .iter()
            .filter(|e| e.kind == EventKind::ResidualHigh)
            .collect();
        assert_eq!(high.len(), 1, "{events:?}");
        assert_eq!(high[0].stage, Some(0));
    }

    #[test]
    fn margin_crossed_fires_once_and_lands_in_model_json() {
        use pipemap_doctor::StageMarginSpec;
        let margins = MarginSpec {
            stages: vec![StageMarginSpec {
                stage: 0,
                exec_up: 1.5,
                exec_down: 0.5,
                ecom_in_up: f64::INFINITY,
                ecom_in_down: 0.0,
            }],
        };
        let log = EventLog::new(EventLogConfig::default());
        let publisher = ModelPublisher::default();
        let mut obs = Observatory::new(
            &[PolyUnary::new(0.01, 0.0, 0.0)],
            ObservatoryConfig {
                margins: Some(margins.clone()),
                // Park the residual threshold out of the way so this test
                // watches only the margin path.
                residual_threshold: 1e9,
                ..ObservatoryConfig::default()
            },
            log.clone(),
            publisher.clone(),
        );
        // 1.3x the static cost: 30% residual, but inside (0.5, 1.5) —
        // the margin engine stays quiet where a fixed 10–25% threshold
        // would have paged.
        obs.ingest(&stitch(&synth_events(40, &[0.013], 0, 0, 1.0)));
        obs.refit_and_publish();
        assert!(
            !log.snapshot()
                .iter()
                .any(|e| e.kind == EventKind::MarginCrossed),
            "inside-margin drift must not fire"
        );
        // Drift past exec_up = 1.5: fires exactly once across refits.
        obs.ingest(&stitch(&synth_events(200, &[0.02], 40, 0, 1.0)));
        obs.refit_and_publish();
        obs.refit_and_publish();
        let crossed: Vec<_> = log
            .snapshot()
            .into_iter()
            .filter(|e| e.kind == EventKind::MarginCrossed)
            .collect();
        assert_eq!(crossed.len(), 1, "{crossed:?}");
        assert_eq!(crossed[0].stage, Some(0));
        assert_eq!(crossed[0].severity, Severity::Critical);
        assert!(crossed[0].value > 1.5, "factor {}", crossed[0].value);
        assert!(
            crossed[0].message.contains("stability interval"),
            "{}",
            crossed[0].message
        );
        let doc = Value::parse(&publisher.current()).expect("valid model json");
        let stage = &doc.get("stages").and_then(Value::as_array).unwrap()[0];
        assert_eq!(
            stage.get("margin_crossed").and_then(Value::as_bool),
            Some(true)
        );
        let m = stage.get("margin").expect("margin block");
        assert_eq!(m.get("exec_up").and_then(Value::as_f64), Some(1.5));
        assert!(
            m.get("ecom_in_up").is_some_and(Value::is_null),
            "infinite bound serialises as null"
        );
        let factor = stage.get("factor").and_then(Value::as_f64).unwrap();
        assert!(factor > 1.5, "factor {factor}");
    }

    #[test]
    fn online_drift_localises_a_perturbed_stage() {
        use pipemap_doctor::ModelPrediction;
        // Static model says [10ms, 20ms, 5ms]; stage 1 triples mid-run.
        let events = synth_events(120, &[0.010, 0.020, 0.005], 60, 1, 3.0);
        let log = JourneyLog {
            source: "test".to_string(),
            sample: 1,
            dropped: 0,
            model: Some(ModelPrediction::from_measured(
                &["a".into(), "b".into(), "c".into()],
                &[1, 1, 1],
                &[0.010, 0.020, 0.005],
            )),
            events,
        };
        // A 16-sample half-life forgets the pre-perturbation regime
        // quickly enough for the fit to track the new cost.
        let cfg = OnlineConfig {
            half_life: 16.0,
            ..OnlineConfig::default()
        };
        let drift = online_drift(&log, cfg, 0.10).expect("model present");
        assert_eq!(drift.drifted, Some(1), "{drift:?}");
        // The decayed fit tracks the *perturbed* cost within 10%.
        let fitted = drift.stages[1].fitted_s;
        assert!(
            (fitted - 0.060).abs() / 0.060 < 0.10,
            "fitted {fitted} vs perturbed truth 0.060"
        );
        // Unperturbed stages stay close to their statics.
        assert!(drift.stages[0].residual < 0.05);
        assert!(drift.stages[2].residual < 0.05);
        let text = render_online_drift(&drift);
        assert!(text.contains("drift localised: stage 1"), "{text}");
        let json = online_drift_json(&drift);
        assert_eq!(json.get("drifted_stage").and_then(Value::as_f64), Some(1.0));
    }
}
