//! Robustness of a chosen mapping to model error.
//!
//! §6.4 argues that "the inaccuracies in predicting an optimal mapping
//! for a practical system are small as compared to the benefits that are
//! obtained by choosing a good mapping". This module quantifies that:
//! perturb every fitted cost function by an independent systematic
//! factor (a model that is consistently x% off for one task or edge),
//! re-solve on the perturbed model, and measure the *regret* — how much
//! throughput the original mapping loses against the perturbed-model
//! optimum, evaluated under the perturbed costs. A regret near zero
//! across trials means the mapping decision is insensitive to model
//! error of that magnitude.

use pipemap_chain::{throughput, Mapping, Problem};
use pipemap_core::{cluster_heuristic, reprice_problem, CostDeltas, GreedyOptions, SolveError};
use pipemap_sim::{NoiseModel, Summary};

/// Result of a robustness study.
#[derive(Clone, Debug)]
pub struct Robustness {
    /// Per-trial regret: `1 − thr(mapping) / thr(perturbed optimum)`,
    /// both evaluated under the perturbed model. 0 = still optimal.
    pub regret: Summary,
    /// Trials in which the perturbed model's optimal *clustering*
    /// differs from the mapping's.
    pub clustering_changes: usize,
    /// Number of trials run.
    pub trials: usize,
}

/// Build a perturbed copy of the problem: every cost function scaled by
/// an independent factor drawn from `noise`. The scaling goes through
/// the re-solver's [`CostDeltas`]/[`reprice_problem`] path, so a trial's
/// perturbation is exactly a drift vector the incremental solver could
/// re-plan against. Noise factors are drawn in chain order: task `i`'s
/// execution, then edge `i`'s redistribution and transfer.
pub fn perturb_problem(problem: &Problem, noise: &mut NoiseModel) -> Problem {
    let k = problem.num_tasks();
    let mut deltas = CostDeltas::identity(k);
    for i in 0..k {
        deltas.set_exec(i, noise.factor());
        if i + 1 < k {
            deltas.set_icom(i, noise.factor());
            deltas.set_ecom(i, noise.factor());
        }
    }
    reprice_problem(problem, &deltas)
}

/// Measure the regret of `mapping` under `trials` independent model
/// perturbations of relative spread `spread`.
pub fn robustness(
    problem: &Problem,
    mapping: &Mapping,
    spread: f64,
    trials: usize,
    seed: u64,
) -> Result<Robustness, SolveError> {
    assert!(trials >= 1, "need at least one trial");
    let mut noise = NoiseModel::new(spread, seed);
    let mut regrets = Vec::with_capacity(trials);
    let mut clustering_changes = 0;
    for _ in 0..trials {
        let perturbed = perturb_problem(problem, &mut noise);
        let optimum = cluster_heuristic(&perturbed, GreedyOptions::adaptive())?;
        let ours = throughput(&perturbed.chain, mapping);
        let best = optimum.throughput.max(ours);
        let regret = if best > 0.0 && best.is_finite() {
            (1.0 - ours / best).max(0.0)
        } else {
            0.0
        };
        regrets.push(regret);
        if optimum.mapping.clustering() != mapping.clustering() {
            clustering_changes += 1;
        }
    }
    Ok(Robustness {
        regret: Summary::of(&regrets).expect("trials >= 1"),
        clustering_changes,
        trials,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipemap_chain::{ChainBuilder, Edge, Task};
    use pipemap_core::dp_mapping;
    use pipemap_model::{PolyEcom, PolyUnary};

    fn problem() -> Problem {
        let chain = ChainBuilder::new()
            .task(Task::new("a", PolyUnary::new(0.1, 3.0, 0.01)))
            .edge(Edge::new(
                PolyUnary::new(0.02, 0.1, 0.0),
                PolyEcom::new(0.05, 0.4, 0.4, 0.002, 0.002),
            ))
            .task(Task::new("b", PolyUnary::new(0.2, 5.0, 0.01)))
            .build();
        Problem::new(chain, 16, 1e12)
    }

    #[test]
    fn zero_perturbation_means_zero_regret() {
        let p = problem();
        let opt = dp_mapping(&p).unwrap();
        let r = robustness(&p, &opt.mapping, 0.0, 4, 1).unwrap();
        assert!(r.regret.max < 1e-9, "{:?}", r);
        assert_eq!(r.clustering_changes, 0);
    }

    #[test]
    fn perturbation_scales_costs_correctly() {
        let p = problem();
        let mut noise = NoiseModel::new(0.5, 3);
        let q = perturb_problem(&p, &mut noise);
        // The perturbed costs are pointwise proportional to the originals
        // (one factor per function).
        for i in 0..p.num_tasks() {
            let f1 = q.chain.task(i).exec.eval(1) / p.chain.task(i).exec.eval(1);
            for procs in 2..=16 {
                let f = q.chain.task(i).exec.eval(procs) / p.chain.task(i).exec.eval(procs);
                assert!((f - f1).abs() < 1e-9, "task {i} factor drifts");
            }
            assert!((0.5..=1.5).contains(&f1), "factor {f1} out of range");
        }
    }

    #[test]
    fn small_model_error_keeps_small_regret() {
        // The §6.4 claim at our scale: 10% model error costs far less
        // than the mapping's advantage over data parallelism.
        let p = problem();
        let opt = dp_mapping(&p).unwrap();
        let r = robustness(&p, &opt.mapping, 0.10, 12, 7).unwrap();
        assert!(
            r.regret.mean < 0.10,
            "mean regret {:.3} too high",
            r.regret.mean
        );
    }

    #[test]
    fn metadata_preserved_in_perturbation() {
        let chain = ChainBuilder::new()
            .task(
                Task::new("s", PolyUnary::new(1.0, 0.0, 0.0))
                    .not_replicable()
                    .with_min_procs(2),
            )
            .build();
        let p = Problem::new(chain, 8, 1e12);
        let mut noise = NoiseModel::new(0.2, 5);
        let q = perturb_problem(&p, &mut noise);
        assert!(!q.chain.task(0).replicable);
        assert_eq!(q.chain.task(0).min_procs, Some(2));
    }
}
