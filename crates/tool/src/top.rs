//! `pipemap top`: a live terminal dashboard over the observatory
//! surfaces (std-only ANSI, no curses).
//!
//! Two modes:
//!
//! * `--attach <addr>` scrapes a running observatory
//!   (`/snapshot.json`, `/model.json`, `/events.jsonl`) — the surface
//!   `pipemap load --serve <addr>` exposes — and redraws every
//!   `--interval`. `--once` renders a single frame with no screen
//!   control, which is what CI uses to assert the surface is live.
//! * without `--attach`, it drives a short local micro load with an
//!   in-process observatory and renders that — a zero-setup demo.
//!
//! Everything between "bytes in" and "frame out" is pure
//! ([`parse_frame`], [`TopState::observe`], [`render_frame`]), so the
//! dashboard logic is unit-testable without a terminal or a socket.

use std::collections::VecDeque;
use std::io::Write as _;
use std::time::{Duration, Instant};

use pipemap_obs::{parse_events_jsonl_since, ObsEvent, Severity, Value};

/// Sparkline ramp, lowest to highest.
const SPARK: [char; 9] = [' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// How many samples each sparkline remembers.
const HISTORY: usize = 32;

/// How many recent events the feed shows.
const EVENT_FEED: usize = 8;

/// Connect attempts before an attach gives up (50 ms initial backoff,
/// doubling, capped at 500 ms — a touch over 3 s in total).
pub const ATTACH_ATTEMPTS: u32 = 10;

/// How `pipemap top` runs.
#[derive(Clone, Debug)]
pub struct TopConfig {
    /// Observatory address to scrape; `None` drives a local demo load.
    pub attach: Option<String>,
    /// Seconds between frames.
    pub interval_s: f64,
    /// Render one frame and exit (no ANSI screen control).
    pub once: bool,
    /// Local mode: how long the demo load runs.
    pub duration_s: f64,
}

impl Default for TopConfig {
    fn default() -> Self {
        Self {
            attach: None,
            interval_s: 1.0,
            once: false,
            duration_s: 5.0,
        }
    }
}

// ---------------------------------------------------------------------------
// HTTP plumbing (shared with `pipemap doctor --attach`).

/// Minimal HTTP GET against a live observatory (std-only; the server
/// answers with `Connection: close`, so read-to-end is the body).
/// Errors carry a `retryable` flag: connect refusals are worth retrying
/// (the server may not be listening yet), protocol errors are not.
fn http_get_once(addr: &str, path: &str) -> Result<String, (bool, String)> {
    use std::io::Read;
    let mut stream = std::net::TcpStream::connect(addr)
        .map_err(|e| (true, format!("cannot connect to {addr}: {e}")))?;
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .map_err(|e| (false, format!("cannot send request to {addr}: {e}")))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| (false, format!("cannot read response from {addr}: {e}")))?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| (false, format!("{addr}{path}: malformed HTTP response")))?;
    let status = head.lines().next().unwrap_or("");
    if !status.contains(" 200 ") {
        return Err((false, format!("{addr}{path}: {status}")));
    }
    Ok(body.to_string())
}

/// One-shot GET (no retry).
pub fn http_get(addr: &str, path: &str) -> Result<String, String> {
    http_get_once(addr, path).map_err(|(_, e)| e)
}

/// GET with bounded retry on connect failure: `attempts` tries with
/// doubling backoff from 50 ms capped at 500 ms. An endpoint started
/// moments ago (`load --serve` in the background) becomes reachable
/// within the window; a dead address fails with a clear summary instead
/// of an instant one-shot error. Non-connect errors never retry.
pub fn http_get_retry(addr: &str, path: &str, attempts: u32) -> Result<String, String> {
    let mut backoff = Duration::from_millis(50);
    let mut last = String::new();
    for attempt in 1..=attempts.max(1) {
        match http_get_once(addr, path) {
            Ok(body) => return Ok(body),
            Err((false, e)) => return Err(e),
            Err((true, e)) => last = e,
        }
        if attempt < attempts.max(1) {
            std::thread::sleep(backoff);
            backoff = (backoff * 2).min(Duration::from_millis(500));
        }
    }
    Err(format!(
        "gave up connecting to {addr} after {} attempts (~{:.1}s): {last}",
        attempts.max(1),
        // 50+100+200+400+500×(n−5) ms for the default schedule.
        (0..attempts.max(1).saturating_sub(1))
            .map(|i| (50u64 << i.min(4)).min(500) as f64 / 1e3)
            .sum::<f64>(),
    ))
}

// ---------------------------------------------------------------------------
// Frame parsing: /snapshot.json → per-stage gauges.

/// One stage's cumulative numbers extracted from a metrics snapshot.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StageGauge {
    /// Stage index.
    pub stage: usize,
    /// Stage name (from the service histogram's metric name).
    pub name: String,
    /// Data sets served (service histogram count).
    pub served: u64,
    /// Mean service seconds over the whole run.
    pub mean_s: f64,
    /// p99 service seconds over the whole run.
    pub p99_s: f64,
    /// Cumulative busy microseconds (summed across replicas).
    pub busy_us: u64,
    /// Cumulative receive-starved microseconds.
    pub recv_wait_us: u64,
    /// Cumulative send-blocked microseconds.
    pub send_wait_us: u64,
}

/// One worker *process*'s numbers, extracted from the telemetry-fed
/// `exec.worker.s{s}i{i}.p{pid}.*` series of a UDS run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WorkerGauge {
    /// Stage index.
    pub stage: usize,
    /// Replica (instance) index within the stage.
    pub instance: usize,
    /// Worker process id.
    pub pid: u32,
    /// Data sets served so far.
    pub items: u64,
    /// p99 service seconds over the whole run.
    pub service_p99_s: f64,
    /// CPU utilisation of the worker process, percent (from /proc).
    pub cpu_pct: f64,
    /// Resident set size, bytes (from /proc).
    pub rss_bytes: f64,
    /// Fraction of the last telemetry interval spent serving.
    pub busy_frac: f64,
    /// Fraction of the last interval spent starved for input.
    pub starved_frac: f64,
    /// Journey events the worker's ring dropped.
    pub journey_dropped: u64,
    /// Whether the parent marked this series stale (worker died or its
    /// telemetry channel broke mid-run).
    pub stale: bool,
}

/// One parsed `/snapshot.json` scrape.
#[derive(Clone, Debug, Default)]
pub struct Frame {
    /// Data sets that reached the sink.
    pub completed: u64,
    /// Cumulative end-to-end p99 latency, seconds.
    pub latency_p99_s: f64,
    /// Per-stage gauges, in stage order.
    pub stages: Vec<StageGauge>,
    /// Per-worker-process gauges (UDS runs with telemetry), ordered by
    /// (stage, instance, pid). Empty on in-process runs.
    pub workers: Vec<WorkerGauge>,
}

/// Split `exec.stage{i}.<rest>` into `(i, rest)`.
fn stage_metric(name: &str) -> Option<(usize, &str)> {
    let rest = name.strip_prefix("exec.stage")?;
    let dot = rest.find('.')?;
    let idx: usize = rest[..dot].parse().ok()?;
    Some((idx, &rest[dot + 1..]))
}

/// Split `exec.worker.s{s}i{i}.p{pid}.<rest>` into `(s, i, pid, rest)`.
fn worker_metric(name: &str) -> Option<(usize, usize, u32, &str)> {
    let rest = name.strip_prefix("exec.worker.s")?;
    let (si, rest) = rest.split_once('i')?;
    let (ii, rest) = rest.split_once('.')?;
    let rest = rest.strip_prefix('p')?;
    let (pid, rest) = rest.split_once('.')?;
    Some((si.parse().ok()?, ii.parse().ok()?, pid.parse().ok()?, rest))
}

fn stage_slot(stages: &mut Vec<StageGauge>, i: usize) -> &mut StageGauge {
    if stages.len() <= i {
        stages.resize_with(i + 1, StageGauge::default);
    }
    let g = &mut stages[i];
    g.stage = i;
    g
}

/// Extract the dashboard's numbers from a `/snapshot.json` document.
/// Unknown metrics are ignored, so the parser tolerates snapshots from
/// richer or older producers.
pub fn parse_frame(snapshot: &Value) -> Frame {
    let mut frame = Frame::default();
    let mut workers: std::collections::BTreeMap<(usize, usize, u32), WorkerGauge> =
        std::collections::BTreeMap::new();
    fn worker_slot(
        workers: &mut std::collections::BTreeMap<(usize, usize, u32), WorkerGauge>,
        s: usize,
        i: usize,
        pid: u32,
    ) -> &mut WorkerGauge {
        workers.entry((s, i, pid)).or_insert_with(|| WorkerGauge {
            stage: s,
            instance: i,
            pid,
            ..WorkerGauge::default()
        })
    }
    if let Some(counters) = snapshot.get("counters").and_then(Value::as_object) {
        for (name, v) in counters {
            let Some(v) = v.as_f64() else { continue };
            if name == "exec.datasets.completed" {
                frame.completed = v as u64;
            } else if let Some((i, rest)) = stage_metric(name) {
                let g = stage_slot(&mut frame.stages, i);
                match rest {
                    "busy_us" => g.busy_us = v as u64,
                    "recv_wait_us" => g.recv_wait_us = v as u64,
                    "send_wait_us" => g.send_wait_us = v as u64,
                    _ => {}
                }
            } else if let Some((s, i, pid, rest)) = worker_metric(name) {
                let w = worker_slot(&mut workers, s, i, pid);
                match rest {
                    "items" => w.items = v as u64,
                    "journey_dropped" => w.journey_dropped = v as u64,
                    _ => {}
                }
            }
        }
    }
    if let Some(gauges) = snapshot.get("gauges").and_then(Value::as_object) {
        for (name, v) in gauges {
            let Some(v) = v.as_f64() else { continue };
            if let Some((s, i, pid, rest)) = worker_metric(name) {
                let w = worker_slot(&mut workers, s, i, pid);
                match rest {
                    "cpu_pct" => w.cpu_pct = v,
                    "rss_bytes" => w.rss_bytes = v,
                    "busy_frac" => w.busy_frac = v,
                    "starved_frac" => w.starved_frac = v,
                    "stale" => w.stale = v != 0.0,
                    _ => {}
                }
            }
        }
    }
    if let Some(hists) = snapshot.get("histograms").and_then(Value::as_object) {
        for (name, h) in hists {
            if name == "exec.load.latency_s" {
                frame.latency_p99_s = h.get("p99").and_then(Value::as_f64).unwrap_or(0.0);
            } else if let Some((i, rest)) = stage_metric(name) {
                let Some(stage_name) = rest.strip_suffix(".service_s") else {
                    continue;
                };
                let g = stage_slot(&mut frame.stages, i);
                g.name = stage_name.to_string();
                g.served = h.get("count").and_then(Value::as_f64).unwrap_or(0.0) as u64;
                g.mean_s = h.get("mean").and_then(Value::as_f64).unwrap_or(0.0);
                g.p99_s = h.get("p99").and_then(Value::as_f64).unwrap_or(0.0);
            } else if let Some((s, i, pid, "service_s")) = worker_metric(name) {
                let w = worker_slot(&mut workers, s, i, pid);
                w.service_p99_s = h.get("p99").and_then(Value::as_f64).unwrap_or(0.0);
            }
        }
    }
    frame.workers = workers.into_values().collect();
    frame
}

// ---------------------------------------------------------------------------
// Rate derivation and history.

/// Per-frame rates derived from two consecutive scrapes.
#[derive(Clone, Debug, Default)]
pub struct Rates {
    /// Data sets per second at the sink.
    pub throughput: f64,
    /// Per-stage busy cores (Δbusy / Δwall; >1 with replicas).
    pub busy: Vec<f64>,
    /// Per-stage starved-core fraction.
    pub starved: Vec<f64>,
    /// Per-stage send-blocked-core fraction.
    pub blocked: Vec<f64>,
}

/// Rolling dashboard state: the previous scrape plus bounded history
/// rings feeding the sparklines.
#[derive(Debug, Default)]
pub struct TopState {
    prev: Option<(f64, Frame)>,
    thr_hist: VecDeque<f64>,
    busy_hist: Vec<VecDeque<f64>>,
}

impl TopState {
    /// Fold in a scrape taken at `t_s` (any monotonic clock) and return
    /// the rates since the previous one (zeros on the first call).
    pub fn observe(&mut self, t_s: f64, frame: &Frame) -> Rates {
        let mut rates = Rates {
            busy: vec![0.0; frame.stages.len()],
            starved: vec![0.0; frame.stages.len()],
            blocked: vec![0.0; frame.stages.len()],
            ..Rates::default()
        };
        if let Some((t0, prev)) = &self.prev {
            let dt = (t_s - t0).max(1e-9);
            rates.throughput = (frame.completed.saturating_sub(prev.completed)) as f64 / dt;
            for (i, g) in frame.stages.iter().enumerate() {
                let d = |now: u64, before: u64| now.saturating_sub(before) as f64 / 1e6 / dt;
                let p = prev.stages.get(i);
                rates.busy[i] = d(g.busy_us, p.map_or(0, |p| p.busy_us));
                rates.starved[i] = d(g.recv_wait_us, p.map_or(0, |p| p.recv_wait_us));
                rates.blocked[i] = d(g.send_wait_us, p.map_or(0, |p| p.send_wait_us));
            }
        }
        push_capped(&mut self.thr_hist, rates.throughput);
        while self.busy_hist.len() < frame.stages.len() {
            self.busy_hist.push(VecDeque::new());
        }
        for (i, b) in rates.busy.iter().enumerate() {
            push_capped(&mut self.busy_hist[i], *b);
        }
        self.prev = Some((t_s, frame.clone()));
        rates
    }

    /// Throughput history, oldest first.
    pub fn throughput_history(&self) -> Vec<f64> {
        self.thr_hist.iter().copied().collect()
    }

    /// Stage `i`'s busy-core history, oldest first.
    pub fn busy_history(&self, i: usize) -> Vec<f64> {
        self.busy_hist
            .get(i)
            .map(|h| h.iter().copied().collect())
            .unwrap_or_default()
    }
}

fn push_capped(ring: &mut VecDeque<f64>, v: f64) {
    if ring.len() == HISTORY {
        ring.pop_front();
    }
    ring.push_back(v);
}

/// Render values as a sparkline scaled to their own maximum.
pub fn sparkline(values: &[f64]) -> String {
    let max = values.iter().copied().fold(0.0f64, f64::max);
    values
        .iter()
        .map(|&v| {
            if max <= 0.0 || !v.is_finite() {
                SPARK[0]
            } else {
                let idx = (v / max * (SPARK.len() - 1) as f64).round() as usize;
                SPARK[idx.min(SPARK.len() - 1)]
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Rendering.

/// Render one full dashboard frame (no ANSI control codes — the caller
/// decides whether to clear the screen first).
pub fn render_frame(
    title: &str,
    frame: &Frame,
    rates: &Rates,
    state: &TopState,
    model: &Value,
    events: &[ObsEvent],
) -> String {
    let mut out = String::new();
    out.push_str(&format!("pipemap top — {title}\n"));
    out.push_str(&format!(
        "throughput {:>9.1} ds/s  {}\n",
        rates.throughput,
        sparkline(&state.throughput_history())
    ));
    out.push_str(&format!(
        "completed  {:>9}       p99 latency {:.3} ms (run)\n",
        frame.completed,
        frame.latency_p99_s * 1e3
    ));
    out.push_str(
        "stage  name          served        busy  starv%  block%     p99 ms  busy cores\n",
    );
    for (i, g) in frame.stages.iter().enumerate() {
        out.push_str(&format!(
            "{:<6} {:<12}  {:>10}  {:>8.2}  {:>5.1}  {:>6.1}  {:>9.3}  {}\n",
            g.stage,
            g.name,
            g.served,
            rates.busy.get(i).copied().unwrap_or(0.0),
            rates.starved.get(i).copied().unwrap_or(0.0) * 100.0,
            rates.blocked.get(i).copied().unwrap_or(0.0) * 100.0,
            g.p99_s * 1e3,
            sparkline(&state.busy_history(i)),
        ));
    }
    out.push_str(&render_workers(&frame.workers));
    out.push_str(&render_model(model));
    out.push_str(&render_events(events));
    out
}

/// The per-worker-process section (UDS runs with telemetry). Absent
/// series render nothing, so in-process dashboards are unchanged.
fn render_workers(workers: &[WorkerGauge]) -> String {
    if workers.is_empty() {
        return String::new();
    }
    let mut out = String::from(
        "workers (per process):\n\
         stage  inst  pid          items    cpu%   rss MB   busy%  starv%   p99 ms  drop  state\n",
    );
    for w in workers {
        out.push_str(&format!(
            "{:<6} {:<5} {:<8} {:>9}  {:>6.1}  {:>7.1}  {:>6.1}  {:>6.1}  {:>7.3}  {:>4}  {}\n",
            w.stage,
            w.instance,
            w.pid,
            w.items,
            w.cpu_pct,
            w.rss_bytes / (1024.0 * 1024.0),
            w.busy_frac * 100.0,
            w.starved_frac * 100.0,
            w.service_p99_s * 1e3,
            w.journey_dropped,
            if w.stale { "STALE" } else { "live" },
        ));
    }
    out
}

/// The fitted-model section from a `/model.json` document.
fn render_model(model: &Value) -> String {
    let Some(stages) = model.get("stages").and_then(Value::as_array) else {
        return "model: (not published yet)\n".to_string();
    };
    let ingested = model
        .get("journeys_ingested")
        .and_then(Value::as_f64)
        .unwrap_or(0.0);
    let mut out = format!("model ({ingested:.0} journeys ingested):\n");
    for st in stages {
        let idx = st.get("stage").and_then(Value::as_f64).unwrap_or(-1.0);
        let samples = st.get("samples").and_then(Value::as_f64).unwrap_or(0.0);
        if samples == 0.0 {
            out.push_str(&format!("  stage {idx:.0}: no samples yet\n"));
            continue;
        }
        let mean = st.get("mean_s").and_then(Value::as_f64).unwrap_or(0.0);
        let drift = st.get("drift").and_then(Value::as_f64).unwrap_or(0.0);
        let conf = st.get("confidence").and_then(Value::as_f64).unwrap_or(0.0);
        out.push_str(&format!(
            "  stage {idx:.0}: fitted mean {:.6}s  drift {:>5.1}%  confidence {conf:.2}  (n={samples:.0}){}\n",
            mean,
            drift * 100.0,
            render_margin(st)
        ));
    }
    out
}

/// The margin column of one model stage: the signed drift factor against
/// the exact stability interval, when the producer was given one.
fn render_margin(st: &Value) -> String {
    let Some(m) = st.get("margin") else {
        return String::new();
    };
    let factor = st.get("factor").and_then(Value::as_f64).unwrap_or(1.0);
    let bound = |key: &str, absent: f64| m.get(key).and_then(Value::as_f64).unwrap_or(absent);
    let down = bound("exec_down", 0.0);
    let up = bound("exec_up", f64::INFINITY);
    let up_str = if up.is_finite() {
        format!("{up:.2}")
    } else {
        "inf".to_string()
    };
    let verdict = if st.get("margin_crossed").and_then(Value::as_bool) == Some(true) {
        "CROSSED"
    } else {
        "ok"
    };
    format!("  margin {factor:.2}x in ({down:.2}, {up_str}) {verdict}")
}

/// The scrolling event feed (most recent last).
fn render_events(events: &[ObsEvent]) -> String {
    if events.is_empty() {
        return "events: (none)\n".to_string();
    }
    let mut out = format!(
        "events (last {} of {}):\n",
        EVENT_FEED.min(events.len()),
        events.len()
    );
    let tail = &events[events.len().saturating_sub(EVENT_FEED)..];
    for e in tail {
        let stage = match e.stage {
            Some(s) => format!("stage {s}"),
            None => "-".to_string(),
        };
        let sev = match e.severity {
            Severity::Info => "INFO",
            Severity::Warning => "WARN",
            Severity::Critical => "CRIT",
        };
        out.push_str(&format!(
            "  {:>9.3}s  {:<4}  {:<20}  {:<8}  {}\n",
            e.t_us / 1e6,
            sev,
            e.kind.as_str(),
            stage,
            e.message
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// The two run modes.

/// Scrape one frame's worth of documents from a live observatory. The
/// event feed is fetched through the `?since=` cursor, so each poll pays
/// for the new tail of the ring, not the whole history; the returned
/// cursor feeds the next scrape.
fn scrape(
    addr: &str,
    attempts: u32,
    since: u64,
) -> Result<(Frame, Value, Vec<ObsEvent>, u64), String> {
    let snap_text = http_get_retry(addr, "/snapshot.json", attempts)?;
    let snap = Value::parse(&snap_text)
        .map_err(|e| format!("{addr}/snapshot.json: invalid JSON: {e:?}"))?;
    // Model and events are best-effort: an endpoint that predates the
    // observatory (plain `--serve`) still gets the utilization table.
    let model = http_get(addr, "/model.json")
        .ok()
        .and_then(|t| Value::parse(&t).ok())
        .unwrap_or_else(Value::object);
    let (events, next_since) = http_get(addr, &format!("/events.jsonl?since={since}"))
        .ok()
        .and_then(|t| parse_events_jsonl_since(&t, since).ok())
        .unwrap_or((Vec::new(), since));
    Ok((parse_frame(&snap), model, events, next_since))
}

fn emit(text: &str, clear: bool) {
    let mut stdout = std::io::stdout().lock();
    if clear {
        let _ = stdout.write_all(b"\x1b[2J\x1b[H");
    }
    let _ = stdout.write_all(text.as_bytes());
    let _ = stdout.flush();
}

/// Attached mode: scrape-and-redraw until interrupted (or once).
fn run_attached(cfg: &TopConfig, addr: &str) -> Result<(), String> {
    let started = Instant::now();
    let mut state = TopState::default();
    // First contact retries while the endpoint comes up; after that a
    // vanished endpoint is a clean exit condition, not a hang.
    let mut attempts = ATTACH_ATTEMPTS;
    // The feed accumulates tail-only fetches across polls; the cursor
    // self-corrects if the endpoint restarts (a stale cursor returns the
    // whole ring plus a fresh cursor).
    let mut since = 0u64;
    let mut feed: Vec<ObsEvent> = Vec::new();
    loop {
        let (frame, model, fresh, next_since) = scrape(addr, attempts, since)?;
        attempts = 1;
        since = next_since;
        feed.extend(fresh);
        let keep = feed.len().saturating_sub(4 * EVENT_FEED);
        feed.drain(..keep);
        let rates = state.observe(started.elapsed().as_secs_f64(), &frame);
        let text = render_frame(
            &format!("attached to {addr}"),
            &frame,
            &rates,
            &state,
            &model,
            &feed,
        );
        emit(&text, !cfg.once);
        if cfg.once {
            return Ok(());
        }
        std::thread::sleep(Duration::from_secs_f64(cfg.interval_s.max(0.05)));
    }
}

/// Local mode: drive a short micro load with an in-process observatory
/// and render it live.
fn run_local(cfg: &TopConfig) -> Result<(), String> {
    use crate::load::{run_configured_load, LoadConfig};
    use crate::observatory::{spawn_observatory, Observatory, ObservatoryConfig};
    use pipemap_obs::{EventLog, JourneyCollector, JourneyConfig, ModelPublisher, SloConfig};

    // The executor records into the process-global registry; install one
    // if no other observability flag already did.
    pipemap_obs::install_global(pipemap_obs::Registry::new());
    let events = EventLog::default();
    let journeys = JourneyCollector::new(JourneyConfig::default());
    let publisher = ModelPublisher::default();
    let load_cfg = LoadConfig {
        duration_s: Some(cfg.duration_s.max(0.1)),
        size: 256,
        journeys: Some(journeys.clone()),
        events: Some(events.clone()),
        slo: Some(SloConfig::default()),
        ..LoadConfig::default()
    };
    let observatory = Observatory::without_statics(
        load_cfg.stages,
        ObservatoryConfig::default(),
        events.clone(),
        publisher.clone(),
    );
    let obs_handle = spawn_observatory(journeys, observatory, Duration::from_millis(250));
    let load = std::thread::spawn(move || run_configured_load(&load_cfg));

    let started = Instant::now();
    let mut state = TopState::default();
    loop {
        let done = load.is_finished();
        let snap = match pipemap_obs::global_registry() {
            Some(r) => r.snapshot().to_json(),
            None => Value::object(),
        };
        let model = Value::parse(&publisher.current()).unwrap_or_else(|_| Value::object());
        let evs = events.snapshot();
        let frame = parse_frame(&snap);
        let rates = state.observe(started.elapsed().as_secs_f64(), &frame);
        let text = render_frame("local micro load", &frame, &rates, &state, &model, &evs);
        emit(&text, !cfg.once);
        if cfg.once || done {
            break;
        }
        std::thread::sleep(Duration::from_secs_f64(cfg.interval_s.max(0.05)));
    }
    load.join()
        .map_err(|_| "load thread panicked".to_string())?;
    obs_handle.stop();
    Ok(())
}

/// Run `pipemap top` to completion.
pub fn run_top(cfg: &TopConfig) -> Result<(), String> {
    match &cfg.attach {
        Some(addr) => run_attached(cfg, addr),
        None => run_local(cfg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot_doc() -> Value {
        Value::parse(
            r#"{
              "counters": {
                "exec.datasets.completed": 1000,
                "exec.stage0.busy_us": 500000,
                "exec.stage0.recv_wait_us": 100000,
                "exec.stage0.send_wait_us": 50000,
                "exec.stage1.busy_us": 900000
              },
              "gauges": {},
              "histograms": {
                "exec.load.latency_s": {"count": 1000, "sum": 2.0, "mean": 0.002, "p50": 0.001, "p95": 0.004, "p99": 0.005, "max": 0.01},
                "exec.stage0.mix0.service_s": {"count": 1000, "sum": 0.5, "mean": 0.0005, "p50": 0.0004, "p95": 0.001, "p99": 0.002, "max": 0.003},
                "exec.stage1.mix1.service_s": {"count": 990, "sum": 0.9, "mean": 0.0009, "p50": 0.0008, "p95": 0.001, "p99": 0.002, "max": 0.003}
              }
            }"#,
        )
        .expect("valid snapshot")
    }

    #[test]
    fn parses_stage_rows_from_snapshot() {
        let frame = parse_frame(&snapshot_doc());
        assert_eq!(frame.completed, 1000);
        assert_eq!(frame.stages.len(), 2);
        assert_eq!(frame.stages[0].name, "mix0");
        assert_eq!(frame.stages[0].served, 1000);
        assert_eq!(frame.stages[0].busy_us, 500_000);
        assert_eq!(frame.stages[0].recv_wait_us, 100_000);
        assert_eq!(frame.stages[1].name, "mix1");
        assert_eq!(frame.stages[1].busy_us, 900_000);
        assert!((frame.latency_p99_s - 0.005).abs() < 1e-12);
    }

    #[test]
    fn rates_derive_from_consecutive_frames() {
        let mut state = TopState::default();
        let f0 = parse_frame(&snapshot_doc());
        let r0 = state.observe(0.0, &f0);
        assert_eq!(r0.throughput, 0.0); // first frame has no baseline
                                        // One second later: +500 datasets, stage 0 busy another 0.8 s.
        let mut f1 = f0.clone();
        f1.completed += 500;
        f1.stages[0].busy_us += 800_000;
        let r1 = state.observe(1.0, &f1);
        assert!((r1.throughput - 500.0).abs() < 1e-9);
        assert!((r1.busy[0] - 0.8).abs() < 1e-9);
        assert_eq!(state.throughput_history().len(), 2);
    }

    fn worker_snapshot_doc() -> Value {
        Value::parse(
            r#"{
              "counters": {
                "exec.worker.s0i0.p4242.items": 600,
                "exec.worker.s0i1.p4243.items": 400,
                "exec.worker.s1i0.p4244.items": 1000,
                "exec.worker.s1i0.p4244.journey_dropped": 7
              },
              "gauges": {
                "exec.worker.s0i0.p4242.cpu_pct": 85.5,
                "exec.worker.s0i0.p4242.rss_bytes": 10485760,
                "exec.worker.s0i0.p4242.busy_frac": 0.72,
                "exec.worker.s0i0.p4242.starved_frac": 0.11,
                "exec.worker.s0i0.p4242.stale": 0,
                "exec.worker.s1i0.p4244.stale": 1
              },
              "histograms": {
                "exec.worker.s0i0.p4242.service_s": {"count": 600, "sum": 0.3, "mean": 0.0005, "p50": 0.0004, "p95": 0.001, "p99": 0.002, "max": 0.003}
              }
            }"#,
        )
        .expect("valid snapshot")
    }

    #[test]
    fn parses_worker_rows_from_telemetry_series() {
        let frame = parse_frame(&worker_snapshot_doc());
        assert_eq!(frame.workers.len(), 3);
        let w = &frame.workers[0];
        assert_eq!((w.stage, w.instance, w.pid), (0, 0, 4242));
        assert_eq!(w.items, 600);
        assert!((w.cpu_pct - 85.5).abs() < 1e-9);
        assert!((w.rss_bytes - 10_485_760.0).abs() < 1e-9);
        assert!((w.busy_frac - 0.72).abs() < 1e-9);
        assert!((w.service_p99_s - 0.002).abs() < 1e-12);
        assert!(!w.stale);
        let dead = &frame.workers[2];
        assert_eq!((dead.stage, dead.instance, dead.pid), (1, 0, 4244));
        assert_eq!(dead.journey_dropped, 7);
        assert!(dead.stale);
    }

    #[test]
    fn renders_worker_rows_with_stale_marking() {
        let frame = parse_frame(&worker_snapshot_doc());
        let text = render_workers(&frame.workers);
        assert!(text.contains("workers (per process):"), "{text}");
        assert!(text.contains("4242"), "{text}");
        assert!(text.contains("live"), "{text}");
        assert!(text.contains("STALE"), "{text}");
        // In-process snapshots have no worker series and add no section.
        assert_eq!(render_workers(&[]), "");
        let plain = parse_frame(&snapshot_doc());
        assert!(plain.workers.is_empty());
    }

    #[test]
    fn sparkline_scales_to_max() {
        let s = sparkline(&[0.0, 0.5, 1.0]);
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars.len(), 3);
        assert_eq!(chars[0], SPARK[0]);
        assert_eq!(chars[2], *SPARK.last().unwrap());
        assert_eq!(sparkline(&[0.0, 0.0]), "  "); // all-zero guard
    }

    #[test]
    fn renders_a_frame_with_model_and_events() {
        let mut state = TopState::default();
        let frame = parse_frame(&snapshot_doc());
        let rates = state.observe(0.0, &frame);
        let model = Value::parse(
            r#"{"model_schema":"pipemap-model/v1","journeys_ingested":42,
               "stages":[{"stage":0,"samples":42,"mean_s":0.0005,"drift":0.3,"confidence":0.9,
                          "static":{"c1":0.0004,"c2":0,"c3":0},"fitted":{"c1":0.0005,"c2":0,"c3":0}}]}"#,
        )
        .unwrap();
        let events = vec![pipemap_obs::ObsEvent {
            t_us: 1.5e6,
            kind: pipemap_obs::EventKind::ResidualHigh,
            severity: Severity::Warning,
            stage: Some(0),
            value: 0.3,
            message: "stage 0 drifting".to_string(),
        }];
        let text = render_frame("test", &frame, &rates, &state, &model, &events);
        assert!(text.contains("pipemap top — test"), "{text}");
        assert!(text.contains("mix0"), "{text}");
        assert!(text.contains("42 journeys ingested"), "{text}");
        assert!(text.contains("drift  30.0%"), "{text}");
        assert!(text.contains("residual_high"), "{text}");
        assert!(text.contains("WARN"), "{text}");
    }

    #[test]
    fn model_margin_column_renders_interval_and_verdict() {
        let model = Value::parse(
            r#"{"model_schema":"pipemap-model/v1","journeys_ingested":10,
               "stages":[
                 {"stage":0,"samples":10,"mean_s":0.002,"drift":0.6,"confidence":0.8,
                  "factor":1.60,"margin":{"exec_up":1.25,"exec_down":0.80},
                  "margin_crossed":true,
                  "static":{"c1":0.001,"c2":0,"c3":0},"fitted":{"c1":0.002,"c2":0,"c3":0}},
                 {"stage":1,"samples":10,"mean_s":0.001,"drift":0.05,"confidence":0.8,
                  "factor":1.05,"margin":{"exec_up":null,"exec_down":0.5},
                  "margin_crossed":false,
                  "static":{"c1":0.001,"c2":0,"c3":0},"fitted":{"c1":0.001,"c2":0,"c3":0}}
               ]}"#,
        )
        .unwrap();
        let text = render_model(&model);
        assert!(
            text.contains("margin 1.60x in (0.80, 1.25) CROSSED"),
            "{text}"
        );
        assert!(text.contains("margin 1.05x in (0.50, inf) ok"), "{text}");
    }

    #[test]
    fn event_cursor_parser_accumulates_the_tail() {
        // A cursor-bearing dump: header next_since plus per-line seq.
        let text = "{\"event_schema\":\"pipemap-events/v1\",\"dropped\":0,\"next_since\":7}\n\
             {\"seq\":7,\"t_us\":1000000,\"kind\":\"residual_high\",\"severity\":\"warning\",\"stage\":0,\"value\":0.5,\"message\":\"m\"}\n";
        let (events, next) = parse_events_jsonl_since(text, 3).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(next, 7);
        // An empty tail keeps the cursor where it was.
        let empty = "{\"event_schema\":\"pipemap-events/v1\",\"dropped\":0,\"next_since\":7}\n";
        let (events, next) = parse_events_jsonl_since(empty, 7).unwrap();
        assert!(events.is_empty());
        assert_eq!(next, 7);
    }

    #[test]
    fn retry_gives_up_with_a_clear_error() {
        // A port from the ephemeral range with no listener: connect
        // refuses instantly, so even 3 attempts are fast.
        let err = http_get_retry("127.0.0.1:1", "/snapshot.json", 3)
            .expect_err("nothing listens on port 1");
        assert!(err.contains("gave up connecting"), "{err}");
        assert!(err.contains("after 3 attempts"), "{err}");
    }
}
