//! The `pipemap bench` perf-regression suite.
//!
//! Runs a fixed set of workloads — the three solvers on a synthetic chain
//! and the radar application, the full `auto_map` methodology measured in
//! the simulator, and a short real-threads executor run — and emits a
//! schema-versioned JSON document (`BENCH_<git-sha>.json`) of named
//! metrics. A later run compares itself against a committed baseline with
//! [`compare_bench`]: each metric carries a *direction* (whether lower or
//! higher is better) and an absolute *slack* below which changes are
//! noise, and a regression verdict requires both the relative threshold
//! and the slack to be exceeded.
//!
//! Wall-clock metrics (`*.wall_s`, executor throughput) are inherently
//! noisy, which is why the default threshold is generous (30%) and every
//! timed section runs `iters` times keeping the best. Model-derived
//! metrics (solver throughput, DP cell counts, simulated throughput and
//! latency) are deterministic and act as precise canaries for solver or
//! simulator quality regressions.

use std::time::Instant;

use pipemap_apps::{radar, synthetic_chain, ChainFlavor, RadarConfig};
use pipemap_chain::Problem;
use pipemap_core::{
    cluster_heuristic, dp_assignment, dp_assignment_with, dp_mapping, dp_mapping_provenance,
    dp_mapping_with, reprice_problem, CostDeltas, GreedyOptions, ResolveArtifact, ResolveMechanism,
    Solution, SolveOptions,
};
use pipemap_exec::kernels::{fft_cols, fft_rows, histogram, Complex, Matrix};
use pipemap_exec::{run_pipeline, PipelinePlan, Stage, StagePlan, TransportKind};
use pipemap_machine::MachineConfig;
use pipemap_obs::Value;

use crate::load::{micro_plan, micro_source, run_configured_load, LoadConfig};
use crate::mapper::{auto_map, MapperOptions};

/// Schema identifier stamped into every bench document.
pub const BENCH_SCHEMA: &str = pipemap_obs::schema::BENCH;

/// Default relative-change threshold for regression verdicts.
pub const DEFAULT_THRESHOLD: f64 = 0.30;

/// Options for [`run_bench_suite`].
#[derive(Clone, Copy, Debug, Default)]
pub struct BenchOptions {
    /// Shrink every workload (fewer data sets, one timing iteration) so
    /// the suite finishes in seconds — used by CI's bench-smoke step.
    pub quick: bool,
}

/// Short git commit hash of the working tree, or `"unknown"` outside a
/// repository.
pub fn git_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Whether lower or higher values of a metric are better.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Smaller is better (wall time, error, latency).
    Lower,
    /// Larger is better (throughput, cells/s).
    Higher,
}

impl Direction {
    fn as_str(self) -> &'static str {
        match self {
            Direction::Lower => "lower",
            Direction::Higher => "higher",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "lower" => Some(Direction::Lower),
            "higher" => Some(Direction::Higher),
            _ => None,
        }
    }
}

fn metric(value: f64, unit: &str, direction: Direction, slack: f64) -> Value {
    let mut o = Value::object();
    o.set("value", value);
    o.set("unit", unit);
    o.set("direction", direction.as_str());
    o.set("slack", slack);
    o
}

/// Best (minimum) wall time over `iters` runs of `f`, in seconds, along
/// with the result of the fastest run.
fn time_best<R>(iters: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let iters = iters.max(1);
    let mut best: Option<(f64, R)> = None;
    for _ in 0..iters {
        let t0 = Instant::now();
        let r = f();
        let dt = t0.elapsed().as_secs_f64();
        if best.as_ref().map(|(b, _)| dt < *b).unwrap_or(true) {
            best = Some((dt, r));
        }
    }
    best.expect("iters >= 1")
}

/// Counter delta observed in the global registry while `f` runs.
fn counted<R>(name: &str, f: impl FnOnce() -> R) -> (u64, R) {
    let read = || -> u64 {
        pipemap_obs::global_registry()
            .and_then(|r| r.snapshot().counter(name))
            .unwrap_or(0)
    };
    let before = read();
    let r = f();
    (read().saturating_sub(before), r)
}

fn bench_solvers(metrics: &mut Value, label: &str, problem: &Problem, iters: usize) {
    // Greedy heuristic: wall time + model throughput + evals/s.
    let (wall, (evals, sol)) = time_best(iters, || {
        counted("solver.greedy.evals", || {
            cluster_heuristic(problem, GreedyOptions::adaptive()).expect("greedy solves")
        })
    });
    push_solver_metrics(
        metrics,
        &format!("solver.greedy.{label}"),
        wall,
        evals,
        &sol,
    );

    // DP over assignments (fixed clustering dimension).
    let (wall, (cells, sol)) = time_best(iters, || {
        counted("solver.dp_assignment.cells", || {
            dp_assignment(problem).expect("dp_assignment solves").0
        })
    });
    push_solver_metrics(
        metrics,
        &format!("solver.dp_assignment.{label}"),
        wall,
        cells,
        &sol,
    );

    // Full DP mapper (clustering + replication + assignment).
    let (wall, (cells, sol)) = time_best(iters, || {
        counted("solver.dp_mapping.cells", || {
            dp_mapping(problem).expect("dp_mapping solves")
        })
    });
    push_solver_metrics(
        metrics,
        &format!("solver.dp_mapping.{label}"),
        wall,
        cells,
        &sol,
    );
}

fn push_solver_metrics(metrics: &mut Value, prefix: &str, wall: f64, work: u64, sol: &Solution) {
    metrics.set(
        format!("{prefix}.wall_s"),
        metric(wall, "s", Direction::Lower, 0.02),
    );
    if work > 0 {
        metrics.set(
            format!("{prefix}.cells_per_s"),
            metric(work as f64 / wall.max(1e-9), "1/s", Direction::Higher, 0.0),
        );
    }
    // Model throughput of the returned solution: deterministic, so zero
    // slack — any drop is a solver-quality regression.
    metrics.set(
        format!("{prefix}.throughput"),
        metric(sol.throughput, "datasets/s", Direction::Higher, 0.0),
    );
}

/// The large-P DP cases exercising the solver performance layer (dense
/// tables + pruning + dedup + worker pool). Metric names are fixed at the
/// full-mode sizes; quick mode shrinks the machine so CI's bench-smoke
/// stays fast but still compares like-for-like against a quick baseline.
fn bench_scaled_dp(metrics: &mut Value, opts: &BenchOptions) {
    let iters = if opts.quick { 1 } else { 3 };

    // dp_mapping at P = 128 (quick: 32), k = 8 (quick: 6) — optimised
    // path vs. the serial unpruned reference, which is the pre-layer
    // solver. Identical optima are asserted, so the speedup metric can
    // never be bought with a wrong answer.
    let (rows, cols, k) = if opts.quick { (4, 8, 6) } else { (8, 16, 8) };
    let machine = MachineConfig::iwarp_message().with_geometry(rows, cols);
    let chain = synthetic_chain(ChainFlavor::Alternating, k);
    let problem = pipemap_machine::synthesize_problem(&chain, &machine);

    let (wall, (total, (pruned, sol))) = time_best(iters, || {
        counted(pipemap_obs::names::SOLVER_CELLS_TOTAL, || {
            counted(pipemap_obs::names::SOLVER_CELLS_PRUNED, || {
                dp_mapping_with(&problem, &SolveOptions::default()).expect("dp_mapping solves")
            })
        })
    });
    // Best-of-2 (quick: 1): the reference solve is the longest timed
    // section in the suite, so a single sample would make the speedup
    // ratio hostage to scheduler noise.
    let (ref_wall, ref_sol) = time_best(if opts.quick { 1 } else { 2 }, || {
        dp_mapping_with(&problem, &SolveOptions::reference()).expect("dp_mapping solves")
    });
    assert_eq!(
        sol.throughput.to_bits(),
        ref_sol.throughput.to_bits(),
        "optimised dp_mapping diverged from the reference path"
    );
    let prefix = "solver.dp_mapping_p128";
    metrics.set(
        format!("{prefix}.wall_s"),
        metric(wall, "s", Direction::Lower, 0.05),
    );
    metrics.set(
        format!("{prefix}.reference_wall_s"),
        metric(ref_wall, "s", Direction::Lower, 0.5),
    );
    metrics.set(
        format!("{prefix}.speedup"),
        metric(ref_wall / wall.max(1e-9), "x", Direction::Higher, 1.0),
    );
    metrics.set(
        format!("{prefix}.throughput"),
        metric(sol.throughput, "datasets/s", Direction::Higher, 0.0),
    );
    metrics.set(
        format!("{prefix}.cells_total"),
        metric(total as f64, "cells", Direction::Lower, 0.0),
    );
    metrics.set(
        format!("{prefix}.pruned_frac"),
        metric(
            pruned as f64 / (total as f64).max(1.0),
            "frac",
            Direction::Higher,
            0.05,
        ),
    );

    // dp_assignment at P = 256 (quick: 64) — optimised path only; the
    // serial reference's O(P⁴k) enumeration is impractical at this scale,
    // which is the point of the case. Exactness at large P is covered by
    // the equivalence suite.
    let (rows, cols, k) = if opts.quick { (4, 16, 6) } else { (16, 16, 8) };
    let machine = MachineConfig::iwarp_message().with_geometry(rows, cols);
    let chain = synthetic_chain(ChainFlavor::Alternating, k);
    let problem = pipemap_machine::synthesize_problem(&chain, &machine);
    let (wall, (total, (pruned, sol))) = time_best(iters, || {
        counted(pipemap_obs::names::SOLVER_CELLS_TOTAL, || {
            counted(pipemap_obs::names::SOLVER_CELLS_PRUNED, || {
                dp_assignment_with(&problem, &SolveOptions::default())
                    .expect("dp_assignment solves")
                    .0
            })
        })
    });
    let prefix = "solver.dp_assignment_p256";
    metrics.set(
        format!("{prefix}.wall_s"),
        metric(wall, "s", Direction::Lower, 0.05),
    );
    metrics.set(
        format!("{prefix}.throughput"),
        metric(sol.throughput, "datasets/s", Direction::Higher, 0.0),
    );
    metrics.set(
        format!("{prefix}.cells_total"),
        metric(total as f64, "cells", Direction::Lower, 0.0),
    );
    metrics.set(
        format!("{prefix}.pruned_frac"),
        metric(
            pruned as f64 / (total as f64).max(1.0),
            "frac",
            Direction::Higher,
            0.05,
        ),
    );
}

/// Incremental re-solve vs. cold re-solve after single-stage cost drift.
///
/// Two suites, both against retained artifacts built once (untimed — the
/// artifact is the state the serving loop already holds):
///
/// **Headline (`median_x`):** the assignment DP at P = 128 (quick: 32)
/// with replication, one small in-margin exec drift per stage. Every
/// drift sits strictly inside its exact stability interval, so the
/// margin short-circuit answers from the retained margins alone — zero
/// DP cells against a full cold re-solve. Throughput bit-identity with
/// the cold solve is asserted per stage (the margin certificate is
/// value-level: the cold argmax may return a value-tied alternate
/// mapping, which the bitwise throughput equality certifies). The
/// reported speedup is the median over the per-stage suite, and full
/// mode enforces the ≥ 10x floor outright.
///
/// **Suffix (`suffix_median_x`):** the cluster DP on the same geometry
/// with 1.25x drifts — far outside any margin, so every re-solve takes
/// the suffix path. Full bit-identity (throughput *and* mapping) of
/// every pair is asserted, so the speedup can never be bought with a
/// wrong answer. Early-stage drifts invalidate almost the whole table
/// (warm incumbent only), late-stage drifts almost none of it; the
/// median summarises both.
fn bench_resolve_speedup(metrics: &mut Value, opts: &BenchOptions) {
    let median = |v: &mut Vec<f64>| {
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    };
    let prefix = "solver.resolve_speedup";
    let solve = SolveOptions::default();

    // Headline suite: margin short-circuit at P = 128 (quick: 32).
    let (rows, cols, k) = if opts.quick { (4, 8, 6) } else { (8, 16, 8) };
    let machine = MachineConfig::iwarp_message().with_geometry(rows, cols);
    let chain = synthetic_chain(ChainFlavor::Alternating, k);
    let problem = pipemap_machine::synthesize_problem(&chain, &machine);
    let artifact = ResolveArtifact::build_assignment(&problem, &solve).expect("artifact builds");
    let margins = artifact
        .margins()
        .expect("margins tractable with replication at this size")
        .clone();

    let mut speedups = Vec::with_capacity(k);
    let mut sc_cells = 0u64;
    let mut sc_wall = f64::INFINITY;
    let mut short_circuits = 0usize;
    for stage in 0..k {
        // A small drift strictly inside the stage's stability interval:
        // halfway to the upward crossing, capped at 2%, falling back to
        // the downward side when the interval admits no upward drift.
        let s = &margins.stages[stage];
        let g = if s.exec_up > 1.0 {
            let room = if s.exec_up.is_finite() {
                (s.exec_up - 1.0) / 2.0
            } else {
                f64::INFINITY
            };
            1.0 + room.min(0.02)
        } else if s.exec_down < 1.0 && s.exec_down >= 0.0 {
            1.0 - ((1.0 - s.exec_down) / 2.0).min(0.02)
        } else {
            continue; // empty interval: nothing to short-circuit
        };
        let mut d = CostDeltas::identity(k);
        d.set_exec(stage, g);
        let (warm_wall, out) = time_best(1, || artifact.resolve(&d).expect("resolve"));
        let repriced = reprice_problem(&problem, &d);
        let (cold_wall, (cold, _)) = time_best(1, || {
            dp_assignment_with(&repriced, &solve).expect("cold re-solve")
        });
        assert_eq!(
            out.solution.throughput.to_bits(),
            cold.throughput.to_bits(),
            "incremental re-solve diverged from the cold solve at stage {stage} (g = {g})"
        );
        // Mapping bit-identity holds except when a short-circuit meets a
        // value-tied alternate optimum (certified by the throughput
        // assert above).
        if out.mechanism != ResolveMechanism::ShortCircuit {
            assert_eq!(out.solution.mapping, cold.mapping);
        } else {
            short_circuits += 1;
            sc_cells = sc_cells.max(out.cells);
            sc_wall = sc_wall.min(warm_wall);
        }
        speedups.push(cold_wall / warm_wall.max(1e-9));
    }
    assert!(
        speedups.len() > k / 2,
        "margin intervals admitted too few in-margin drifts ({} of {k})",
        speedups.len()
    );
    assert!(
        short_circuits > speedups.len() / 2,
        "most in-margin drifts must short-circuit ({short_circuits} of {})",
        speedups.len()
    );
    let median_x = median(&mut speedups);
    if !opts.quick {
        // The acceptance floor for the P = 128 single-stage-drift suite.
        assert!(
            median_x >= 10.0,
            "median resolve speedup {median_x:.1}x below the 10x floor"
        );
    }
    metrics.set(
        format!("{prefix}.median_x"),
        metric(median_x, "x", Direction::Higher, 5.0),
    );
    metrics.set(
        format!("{prefix}.shortcircuit_cells"),
        metric(sc_cells as f64, "cells", Direction::Lower, 0.0),
    );
    metrics.set(
        format!("{prefix}.shortcircuit_wall_s"),
        metric(sc_wall, "s", Direction::Lower, 0.001),
    );

    // Suffix suite: cluster DP, drifts far outside any margin.
    let artifact = ResolveArtifact::build(&problem, &solve).expect("artifact builds");
    let mut speedups = Vec::with_capacity(k);
    let mut resolve_walls = Vec::with_capacity(k);
    let mut cold_walls = Vec::with_capacity(k);
    for stage in 0..k {
        let mut d = CostDeltas::identity(k);
        d.set_exec(stage, 1.25);
        let (warm_wall, out) = time_best(1, || artifact.resolve(&d).expect("resolve"));
        let repriced = reprice_problem(&problem, &d);
        let (cold_wall, cold) = time_best(1, || {
            dp_mapping_with(&repriced, &solve).expect("cold re-solve")
        });
        assert_eq!(
            out.solution.throughput.to_bits(),
            cold.throughput.to_bits(),
            "incremental re-solve diverged from the cold solve at stage {stage}"
        );
        assert_eq!(out.solution.mapping, cold.mapping);
        speedups.push(cold_wall / warm_wall.max(1e-9));
        resolve_walls.push(warm_wall);
        cold_walls.push(cold_wall);
    }
    metrics.set(
        format!("{prefix}.suffix_median_x"),
        metric(median(&mut speedups), "x", Direction::Higher, 2.0),
    );
    metrics.set(
        format!("{prefix}.wall_s"),
        metric(median(&mut resolve_walls), "s", Direction::Lower, 0.01),
    );
    metrics.set(
        format!("{prefix}.cold_wall_s"),
        metric(median(&mut cold_walls), "s", Direction::Lower, 0.05),
    );
}

fn bench_end_to_end(metrics: &mut Value, opts: &BenchOptions) {
    let app = radar(RadarConfig::paper());
    let machine = MachineConfig::iwarp_message();
    let mapper_opts = if opts.quick {
        MapperOptions {
            sim_datasets: 120,
            measurement_runs: 1,
            ..MapperOptions::default()
        }
    } else {
        MapperOptions::default()
    };
    let t0 = Instant::now();
    let report = auto_map(&app, &machine, &mapper_opts).expect("auto_map radar");
    let wall = t0.elapsed().as_secs_f64();

    metrics.set(
        "e2e.radar.wall_s",
        metric(wall, "s", Direction::Lower, 0.25),
    );
    // Simulated quantities are virtual-time and deterministic given the
    // fixed seeds in MapperOptions — tight canaries.
    metrics.set(
        "e2e.radar.measured_throughput",
        metric(
            report.measured.throughput,
            "datasets/s",
            Direction::Higher,
            0.0,
        ),
    );
    metrics.set(
        "e2e.radar.pred_error_pct",
        metric(
            report.percent_difference().abs(),
            "%",
            Direction::Lower,
            3.0,
        ),
    );
    metrics.set(
        "e2e.radar.latency_p50_s",
        metric(report.measured.latency.p50, "s", Direction::Lower, 0.0),
    );
    metrics.set(
        "e2e.radar.latency_p99_s",
        metric(report.measured.latency.p99, "s", Direction::Lower, 0.0),
    );
    metrics.set(
        "e2e.radar.fit_error_pct",
        metric(
            report.fit_accuracy.mean_rel_error * 100.0,
            "%",
            Direction::Lower,
            1.0,
        ),
    );
}

fn bench_executor(metrics: &mut Value, opts: &BenchOptions) {
    let (n, datasets) = if opts.quick { (64, 12) } else { (128, 48) };
    let plan = PipelinePlan::new(vec![
        StagePlan::new(
            Stage::new("fft_rows", |mut m: Matrix, t| {
                fft_rows(&mut m, t);
                m
            }),
            1,
            2,
        ),
        StagePlan::new(
            Stage::new("fft_cols", |mut m: Matrix, t| {
                fft_cols(&mut m, t);
                m
            }),
            1,
            2,
        ),
        StagePlan::new(
            Stage::new("histogram", move |m: Matrix, t| {
                histogram(&m, 64, n as f64, t)
            }),
            1,
            1,
        ),
    ])
    .with_queue_depth(2);
    let inputs: Vec<pipemap_exec::Data> = (0..datasets)
        .map(|d| {
            let m = Matrix::from_fn(n, |r, c| {
                Complex::new(((r * 31 + c * 17 + d * 7) % 97) as f64 / 97.0, 0.0)
            });
            Box::new(m) as pipemap_exec::Data
        })
        .collect();
    let (outputs, stats) = run_pipeline(&plan, inputs);
    assert_eq!(outputs.len(), datasets);

    metrics.set(
        "exec.fft_hist.throughput",
        metric(stats.throughput, "datasets/s", Direction::Higher, 1.0),
    );
    metrics.set(
        "exec.fft_hist.elapsed_s",
        metric(stats.elapsed, "s", Direction::Lower, 0.05),
    );
}

/// The executor data-plane cases: open-loop sustained load on the micro
/// pipeline, optimised path (batched transport + buffer pool) against
/// the unbatched/unpooled reference data plane *measured in the same
/// run* — like the solver suite's serial reference, the speedup metric
/// compares two configurations of the same binary, so it cannot drift
/// with machine load between runs. Bit-identical outputs between the
/// two transports are asserted here on a small prefix (and across
/// replication degrees by the batching property test).
fn bench_executor_dataplane(metrics: &mut Value, opts: &BenchOptions) {
    let n = if opts.quick { 1_500 } else { 12_000 };
    let base = LoadConfig {
        duration_s: None,
        datasets: Some(n),
        stages: 4,
        size: 512,
        ..LoadConfig::default()
    };

    // Output bit-equality: the batched transport must reorder nothing.
    {
        let plain = LoadConfig {
            pool: false,
            ..base.clone()
        };
        let unbatched = LoadConfig {
            batch: 1,
            ..plain.clone()
        };
        let inputs = |cfg: &LoadConfig| -> Vec<pipemap_exec::Data> {
            let mut src = micro_source(cfg.size, None);
            (0..64).map(&mut src).collect()
        };
        let (a, _) = run_pipeline(&micro_plan(&plain), inputs(&plain));
        let (b, _) = run_pipeline(&micro_plan(&unbatched), inputs(&unbatched));
        for (i, (x, y)) in a.into_iter().zip(b).enumerate() {
            let x = x.downcast::<Vec<u64>>().expect("micro output");
            let y = y.downcast::<Vec<u64>>().expect("micro output");
            assert_eq!(x, y, "batched output diverged at dataset {i}");
        }
    }

    // Reference data plane first, optimised second, same process.
    let reference = run_configured_load(&base.clone().reference());
    let optimised = run_configured_load(&base);
    assert_eq!(reference.report.completed, n);
    assert_eq!(optimised.report.completed, n);

    let prefix = "exec.throughput_pipeline";
    metrics.set(
        format!("{prefix}.throughput"),
        metric(
            optimised.report.throughput,
            "datasets/s",
            Direction::Higher,
            500.0,
        ),
    );
    metrics.set(
        format!("{prefix}.reference_throughput"),
        metric(
            reference.report.throughput,
            "datasets/s",
            Direction::Higher,
            500.0,
        ),
    );
    metrics.set(
        format!("{prefix}.speedup"),
        metric(
            optimised.report.throughput / reference.report.throughput.max(1e-9),
            "x",
            Direction::Higher,
            1.0,
        ),
    );
    metrics.set(
        format!("{prefix}.latency_p99_s"),
        metric(optimised.report.latency.p99, "s", Direction::Lower, 0.005),
    );

    // Replicated stages under batched + pooled load: round-robin fan-out
    // means each destination's buffer fills at 1/r the rate, so this
    // case keeps the mean batch fill and pool hit rate honest when
    // messages split across instances.
    let replicated = run_configured_load(&LoadConfig {
        datasets: Some(n / 2),
        replicas: 3,
        queue_depth: 2,
        ..base
    });
    assert_eq!(replicated.report.completed, n / 2);
    let pool = replicated.pool.expect("pooled config");
    let prefix = "exec.throughput_batched";
    metrics.set(
        format!("{prefix}.throughput"),
        metric(
            replicated.report.throughput,
            "datasets/s",
            Direction::Higher,
            500.0,
        ),
    );
    metrics.set(
        format!("{prefix}.mean_batch_fill"),
        metric(
            replicated.report.stats.mean_batch_fill(),
            "datasets/msg",
            Direction::Higher,
            0.5,
        ),
    );
    metrics.set(
        format!("{prefix}.pool_hit_rate"),
        metric(pool.hit_rate(), "frac", Direction::Higher, 0.05),
    );
}

/// Framed-UDS transport A/B: the same drain-worker measurement taken
/// coalesced (batch 32, one `writev` per frame) and naive (one frame
/// per item), in the same process — like the data-plane case, the
/// speedup ratio compares two configurations of the same binary and
/// cannot drift with machine load between runs. Small payloads are
/// where coalescing matters (per-frame cost dominates), so the case
/// uses 64-byte items and asserts the ≥ 2x floor outright; the drain
/// worker's checksum (inside `measure_transport`) certifies that every
/// byte arrived intact on both arms. Probe-gated: skipped under
/// harnesses that cannot re-execute themselves as a worker (e.g. the
/// libtest runner), which is why the quick-suite unit test does not
/// require these metrics.
fn bench_transport_uds(metrics: &mut Value, opts: &BenchOptions) {
    if !pipemap_exec::worker_probe() {
        eprintln!("bench: skipping exec.transport_uds.* (no worker binary available)");
        return;
    }
    let messages = if opts.quick { 20_000 } else { 60_000 };
    let bytes = 64usize;
    let iters = if opts.quick { 2 } else { 3 };
    let best = |batch: usize| -> f64 {
        (0..iters)
            .map(|_| {
                pipemap_exec::measure_transport(bytes, messages, batch)
                    .expect("transport measurement")
                    .seconds_per_message
            })
            .fold(f64::INFINITY, f64::min)
    };
    let coalesced = best(32);
    let naive = best(1);
    let speedup = naive / coalesced.max(1e-12);
    assert!(
        speedup >= 2.0,
        "coalesced UDS transport only {speedup:.2}x over per-item frames \
         ({:.3}µs vs {:.3}µs per message) — below the 2x floor",
        coalesced * 1e6,
        naive * 1e6
    );
    let prefix = "exec.transport_uds";
    metrics.set(
        format!("{prefix}.per_msg_us"),
        metric(coalesced * 1e6, "us", Direction::Lower, 0.5),
    );
    metrics.set(
        format!("{prefix}.naive_per_msg_us"),
        metric(naive * 1e6, "us", Direction::Lower, 1.5),
    );
    metrics.set(
        format!("{prefix}.coalesce_speedup"),
        metric(speedup, "x", Direction::Higher, 1.0),
    );
}

/// Tail latency under sustained overload: the micro pipeline offered
/// 2x its measured capacity, once with backpressure only (every queue
/// full, p99 is the whole pipeline's buffered depth) and once with
/// bounded-queue shedding — the overload discipline keeps admitted
/// data sets' p99 near the unloaded service time by refusing the rest
/// at the door. Capacity is probed open-loop in the same process, so
/// the offered rate tracks the machine and the improvement ratio is an
/// A/B of the same binary under the same load.
fn bench_p99_under_overload(metrics: &mut Value, opts: &BenchOptions) {
    let duration = if opts.quick { 0.5 } else { 1.5 };
    let base = LoadConfig {
        duration_s: Some(if opts.quick { 0.3 } else { 0.5 }),
        datasets: None,
        stages: 4,
        size: 512,
        queue_depth: 64,
        ..LoadConfig::default()
    };
    let capacity = run_configured_load(&base).report.throughput;
    let offered = capacity * 2.0;
    let overload = LoadConfig {
        duration_s: Some(duration),
        rate: Some(offered),
        ..base
    };
    let unbounded = run_configured_load(&overload);
    let shed = run_configured_load(&LoadConfig {
        shed_queue: Some(256),
        ..overload
    });
    assert!(
        shed.report.shed > 0,
        "2x overload with a 256-deep bound shed nothing (capacity {capacity:.0}/s)"
    );
    assert!(shed.report.completed > 0 && unbounded.report.completed > 0);
    let p99_shed = shed.report.latency.p99;
    let p99_unbounded = unbounded.report.latency.p99;
    let prefix = "exec.p99_under_overload";
    metrics.set(
        format!("{prefix}.p99_s"),
        metric(p99_shed, "s", Direction::Lower, 0.02),
    );
    metrics.set(
        format!("{prefix}.unbounded_p99_s"),
        metric(p99_unbounded, "s", Direction::Lower, 0.2),
    );
    // The ratio swings with co-located machine load (observed 5-16x on
    // the CI box), so the slack is sized to the spread, not the mean.
    metrics.set(
        format!("{prefix}.improvement_x"),
        metric(
            p99_unbounded / p99_shed.max(1e-9),
            "x",
            Direction::Higher,
            8.0,
        ),
    );
    metrics.set(
        format!("{prefix}.shed_frac"),
        metric(
            shed.report.shed as f64 / (shed.report.offered as f64).max(1.0),
            "frac",
            Direction::Higher,
            1.0,
        ),
    );
}

/// Journey-tracing overhead on the sustained-load micro pipeline: the
/// same configuration is run with sampled journey recording enabled and
/// disabled *in the same process*, so the overhead fraction compares two
/// modes of the same binary and cannot drift with machine load between
/// runs. The committed baseline pins `overhead_frac` near zero with a
/// 2% slack — sampled tracing costing more than that is a regression.
/// Cost of decision-provenance recording inside the clustering DP:
/// the same unpruned solve with and without the recorder. Both arms run
/// at `prune: false` because that is what the provenance entry point
/// forces (pruned cells have no exact runner-ups), so the ratio isolates
/// the recorder itself rather than the pruning it disables. Identical
/// optima are asserted; the committed baseline pins the recording tax
/// under a 5% wall-clock overhead.
fn bench_provenance_overhead(metrics: &mut Value, opts: &BenchOptions) {
    let (rows, cols, k) = if opts.quick { (4, 8, 6) } else { (8, 16, 8) };
    let machine = MachineConfig::iwarp_message().with_geometry(rows, cols);
    let chain = synthetic_chain(ChainFlavor::Alternating, k);
    let problem = pipemap_machine::synthesize_problem(&chain, &machine);
    let off = SolveOptions {
        prune: false,
        ..SolveOptions::default()
    };

    // Paired trials with alternating order, scored by the median of
    // per-pair wall ratios (same reasoning as the journey-overhead
    // case: a couple-percent delta needs noise cancellation).
    let pairs = if opts.quick { 3 } else { 5 };
    let mut wall_off: f64 = f64::INFINITY;
    let mut wall_on: f64 = f64::INFINITY;
    let mut ratios = Vec::new();
    let mut thr_pair = (0.0f64, 0.0f64);
    for pair in 0..pairs {
        let run_off = || {
            time_best(1, || {
                dp_mapping_with(&problem, &off).expect("dp_mapping solves")
            })
        };
        let run_on = || {
            time_best(1, || {
                dp_mapping_provenance(&problem, &off).expect("dp_mapping solves")
            })
        };
        let ((b, sol_off), (t, (sol_on, prov))) = if pair % 2 == 0 {
            let b = run_off();
            (b, run_on())
        } else {
            let t = run_on();
            (run_off(), t)
        };
        assert!(
            !prov.cells.is_empty(),
            "provenance arm recorded no decision cells"
        );
        thr_pair = (sol_off.throughput, sol_on.throughput);
        wall_off = wall_off.min(b);
        wall_on = wall_on.min(t);
        ratios.push(t / b.max(1e-9));
    }
    assert_eq!(
        thr_pair.0.to_bits(),
        thr_pair.1.to_bits(),
        "provenance recording changed the optimum"
    );
    ratios.sort_by(f64::total_cmp);
    let median_ratio = ratios[ratios.len() / 2];
    let prefix = "solver.provenance_overhead";
    metrics.set(
        format!("{prefix}.wall_s"),
        metric(wall_on, "s", Direction::Lower, 0.1),
    );
    metrics.set(
        format!("{prefix}.baseline_wall_s"),
        metric(wall_off, "s", Direction::Lower, 0.1),
    );
    metrics.set(
        format!("{prefix}.overhead_frac"),
        metric(
            (median_ratio - 1.0).max(0.0),
            "frac",
            Direction::Lower,
            0.05,
        ),
    );
}

fn bench_journey_overhead(metrics: &mut Value, opts: &BenchOptions) {
    // Longer streams than the dataplane case: the A/B delta being
    // bounded here is a couple of percent, which runs of a few
    // milliseconds cannot resolve above scheduler noise.
    let n = if opts.quick { 40_000 } else { 120_000 };
    let base = LoadConfig {
        duration_s: None,
        datasets: Some(n),
        stages: 4,
        size: 512,
        ..LoadConfig::default()
    };

    // Paired trials with alternating order, scored by the median of
    // per-pair throughput ratios: a single short run cannot resolve a
    // couple-percent delta above scheduler noise on a small CI box, a
    // pair cancels drift slower than one run, alternating order cancels
    // warmup bias, and the median rejects the odd preempted outlier.
    let run_base = |base: &LoadConfig| {
        let r = run_configured_load(base);
        assert_eq!(r.report.completed, n);
        r.report.throughput
    };
    let run_traced = |base: &LoadConfig| {
        let journeys = pipemap_obs::JourneyCollector::new(
            pipemap_obs::JourneyConfig::default().with_sample(32),
        );
        let r = run_configured_load(&LoadConfig {
            journeys: Some(journeys.clone()),
            ..base.clone()
        });
        assert_eq!(r.report.completed, n);
        // The traced runs must actually have produced journeys, or the
        // A/B comparison is vacuous.
        let stitched = pipemap_obs::stitch(&journeys.drain());
        assert!(
            stitched.iter().any(|j| j.complete(base.stages)),
            "traced run produced no complete journeys"
        );
        r.report.throughput
    };

    let mut thr_base: f64 = 0.0;
    let mut thr_traced: f64 = 0.0;
    let mut ratios = Vec::new();
    for pair in 0..5 {
        let (b, t) = if pair % 2 == 0 {
            let b = run_base(&base);
            (b, run_traced(&base))
        } else {
            let t = run_traced(&base);
            (run_base(&base), t)
        };
        thr_base = thr_base.max(b);
        thr_traced = thr_traced.max(t);
        ratios.push(t / b.max(1e-9));
    }
    ratios.sort_by(f64::total_cmp);
    let median_ratio = ratios[ratios.len() / 2];
    let prefix = "obs.journey_overhead";
    metrics.set(
        format!("{prefix}.throughput"),
        metric(thr_traced, "datasets/s", Direction::Higher, 500.0),
    );
    metrics.set(
        format!("{prefix}.baseline_throughput"),
        metric(thr_base, "datasets/s", Direction::Higher, 500.0),
    );
    metrics.set(
        format!("{prefix}.overhead_frac"),
        metric(
            (1.0 - median_ratio).max(0.0),
            "frac",
            Direction::Lower,
            0.02,
        ),
    );
}

/// Cost of the full live observatory — sampled journeys, SLO/alert
/// event log, and a background thread refitting the online cost model
/// from the stream — versus a plain run of the same load. Same paired
/// alternating-order median-of-ratios scoring as
/// [`bench_journey_overhead`]; the committed baseline pins the whole
/// observatory under a 2% throughput tax.
fn bench_estimator_overhead(metrics: &mut Value, opts: &BenchOptions) {
    let n = if opts.quick { 40_000 } else { 120_000 };
    let base = LoadConfig {
        duration_s: None,
        datasets: Some(n),
        stages: 4,
        size: 512,
        ..LoadConfig::default()
    };

    let run_base = |base: &LoadConfig| {
        let r = run_configured_load(base);
        assert_eq!(r.report.completed, n);
        r.report.throughput
    };
    let run_observed = |base: &LoadConfig| {
        let journeys = pipemap_obs::JourneyCollector::new(
            pipemap_obs::JourneyConfig::default().with_sample(32),
        );
        let events = pipemap_obs::EventLog::default();
        let publisher = pipemap_obs::ModelPublisher::default();
        let observatory = crate::observatory::Observatory::without_statics(
            base.stages,
            crate::observatory::ObservatoryConfig::default(),
            events.clone(),
            publisher.clone(),
        );
        let handle = crate::observatory::spawn_observatory(
            journeys.clone(),
            observatory,
            std::time::Duration::from_millis(250),
        );
        let r = run_configured_load(&LoadConfig {
            journeys: Some(journeys.clone()),
            events: Some(events.clone()),
            slo: Some(pipemap_obs::SloConfig::default()),
            ..base.clone()
        });
        let observatory = handle.stop();
        assert_eq!(r.report.completed, n);
        // The observed runs must actually have exercised the estimators,
        // or the A/B comparison is vacuous.
        assert!(
            observatory.ingested() > 0,
            "observatory ingested no journeys during the observed run"
        );
        r.report.throughput
    };

    let mut thr_base: f64 = 0.0;
    let mut thr_observed: f64 = 0.0;
    let mut ratios = Vec::new();
    for pair in 0..5 {
        let (b, t) = if pair % 2 == 0 {
            let b = run_base(&base);
            (b, run_observed(&base))
        } else {
            let t = run_observed(&base);
            (run_base(&base), t)
        };
        thr_base = thr_base.max(b);
        thr_observed = thr_observed.max(t);
        ratios.push(t / b.max(1e-9));
    }
    ratios.sort_by(f64::total_cmp);
    let median_ratio = ratios[ratios.len() / 2];
    let prefix = "obs.estimator_overhead";
    metrics.set(
        format!("{prefix}.throughput"),
        metric(thr_observed, "datasets/s", Direction::Higher, 500.0),
    );
    metrics.set(
        format!("{prefix}.baseline_throughput"),
        metric(thr_base, "datasets/s", Direction::Higher, 500.0),
    );
    metrics.set(
        format!("{prefix}.overhead_frac"),
        metric(
            (1.0 - median_ratio).max(0.0),
            "frac",
            Direction::Lower,
            0.02,
        ),
    );
}

/// Cost of the cross-process telemetry plane on the UDS data plane:
/// the same worker-process pipeline run with per-worker delta shipping
/// on (at the 100ms period observed runs use) and off. Same
/// paired alternating-order median-of-ratios scoring as
/// [`bench_journey_overhead`]; the committed baseline pins the
/// sidecar's throughput tax — under 3% on a quiet machine, with the
/// regression slack sized to the CI box's noise floor (see below).
/// Probe-gated like the transport case:
/// skipped under harnesses that cannot re-execute themselves as a
/// worker (e.g. the libtest runner).
fn bench_telemetry_overhead(metrics: &mut Value, _opts: &BenchOptions) {
    if !pipemap_exec::worker_probe() {
        eprintln!("bench: skipping exec.telemetry_overhead.* (no worker binary available)");
        return;
    }
    let base = LoadConfig {
        duration_s: Some(0.5),
        datasets: None,
        stages: 4,
        size: 512,
        transport: TransportKind::Uds,
        ..LoadConfig::default()
    };

    let run_plain = |base: &LoadConfig| {
        let r = run_configured_load(base);
        assert!(r.report.completed > 0, "plain uds run completed nothing");
        r.report.throughput
    };
    let run_telemetry = |base: &LoadConfig| {
        let r = run_configured_load(&LoadConfig {
            telemetry_us: 100_000,
            ..base.clone()
        });
        assert!(
            r.report.completed > 0,
            "telemetry uds run completed nothing"
        );
        // The telemetry arm must actually have shipped worker series
        // into the parent registry, or the A/B comparison is vacuous.
        let snap = pipemap_obs::global_registry()
            .expect("bench installs a global registry")
            .snapshot();
        assert!(
            snap.counters
                .iter()
                .any(|(k, _)| k.starts_with(pipemap_obs::names::EXEC_WORKER_PREFIX)),
            "telemetry arm shipped no exec.worker.* series"
        );
        r.report.throughput
    };

    // The uds arms are the noisiest A/B in the suite: 5 processes on
    // arbitrary CI hardware, where a preemption burst can shave 5%+ off
    // either arm of a pair. Preemption only ever *lowers* throughput,
    // so each arm takes the best of two runs — the max estimates what
    // the arm can do, the ratio of maxes estimates the true tax — and
    // the median over 5 pairs rejects what best-of-2 lets through.
    // Both modes run the full schedule; a quick-mode median of 3 short
    // windows lets one preempted pair set the score.
    let best2 = |run: &dyn Fn(&LoadConfig) -> f64| run(&base).max(run(&base));
    let pairs = 5;
    let mut thr_base: f64 = 0.0;
    let mut thr_telemetry: f64 = 0.0;
    let mut ratios = Vec::new();
    for pair in 0..pairs {
        let (b, t) = if pair % 2 == 0 {
            let b = best2(&run_plain);
            (b, best2(&run_telemetry))
        } else {
            let t = best2(&run_telemetry);
            (best2(&run_plain), t)
        };
        thr_base = thr_base.max(b);
        thr_telemetry = thr_telemetry.max(t);
        ratios.push(t / b.max(1e-9));
    }
    ratios.sort_by(f64::total_cmp);
    let median_ratio = ratios[ratios.len() / 2];
    let prefix = "exec.telemetry_overhead";
    metrics.set(
        format!("{prefix}.throughput"),
        metric(thr_telemetry, "datasets/s", Direction::Higher, 500.0),
    );
    metrics.set(
        format!("{prefix}.baseline_throughput"),
        metric(thr_base, "datasets/s", Direction::Higher, 500.0),
    );
    // On a quiet machine the tax sits under 3%; on the loaded 1-core CI
    // box the measurement itself resolves no finer than ~8% (the plain
    // arm's capacity drifts that much between suite runs), so — like
    // p99_under_overload.improvement_x — the slack is sized to the
    // box's spread, not the quiet-machine mean. A gross regression
    // (say a 20% tax) still flags.
    metrics.set(
        format!("{prefix}.overhead_frac"),
        metric(
            (1.0 - median_ratio).max(0.0),
            "frac",
            Direction::Lower,
            0.08,
        ),
    );
}

/// Run the whole suite and return the bench document.
pub fn run_bench_suite(opts: &BenchOptions) -> Value {
    // Solver counters flow through the global registry; install one if
    // the process has none yet (install is first-wins, so this is safe
    // even if a server already installed its own).
    pipemap_obs::install_global(pipemap_obs::Registry::new());
    let iters = if opts.quick { 1 } else { 3 };

    let mut metrics = Value::object();

    let machine = if opts.quick {
        MachineConfig::iwarp_message().with_geometry(4, 4)
    } else {
        MachineConfig::iwarp_message()
    };
    let k = if opts.quick { 6 } else { 8 };
    let synth = synthetic_chain(ChainFlavor::Alternating, k);
    let synth_problem = pipemap_machine::synthesize_problem(&synth, &machine);
    bench_solvers(&mut metrics, "synthetic", &synth_problem, iters);

    let radar_problem = pipemap_machine::synthesize_problem(
        &radar(RadarConfig::paper()),
        &MachineConfig::iwarp_message(),
    );
    bench_solvers(&mut metrics, "radar", &radar_problem, iters);

    bench_scaled_dp(&mut metrics, opts);
    bench_resolve_speedup(&mut metrics, opts);
    bench_provenance_overhead(&mut metrics, opts);
    bench_end_to_end(&mut metrics, opts);
    bench_executor(&mut metrics, opts);
    bench_executor_dataplane(&mut metrics, opts);
    bench_transport_uds(&mut metrics, opts);
    bench_p99_under_overload(&mut metrics, opts);
    bench_journey_overhead(&mut metrics, opts);
    bench_estimator_overhead(&mut metrics, opts);
    bench_telemetry_overhead(&mut metrics, opts);

    let mut doc = Value::object();
    doc.set("schema", BENCH_SCHEMA);
    doc.set("git_sha", git_sha());
    doc.set("quick", opts.quick);
    doc.set("iters", iters);
    doc.set(
        "threads_available",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    );
    doc.set("metrics", metrics);
    doc
}

/// Parse a `pipemap-bench/vN` schema string into its version number.
fn bench_schema_version(schema: &str) -> Option<u64> {
    schema
        .strip_prefix("pipemap-bench/v")
        .and_then(|v| v.parse().ok())
}

/// Check that `doc` is a structurally valid bench document.
///
/// Schema versions are compared numerically so a stale committed baseline
/// fails with an actionable message instead of a generic mismatch.
pub fn validate_bench(doc: &Value) -> Result<(), String> {
    let schema = doc
        .get("schema")
        .and_then(Value::as_str)
        .ok_or("missing 'schema' string")?;
    if schema != BENCH_SCHEMA {
        let current = bench_schema_version(BENCH_SCHEMA).expect("BENCH_SCHEMA is well-formed");
        return Err(match bench_schema_version(schema) {
            Some(v) if v < current => format!(
                "schema '{schema}' is older than the current '{BENCH_SCHEMA}' — \
                 regenerate the baseline with `pipemap bench`"
            ),
            Some(_) => format!(
                "schema '{schema}' is newer than '{BENCH_SCHEMA}' and not supported \
                 by this binary — update the tool"
            ),
            None => format!("schema '{schema}' is not the supported '{BENCH_SCHEMA}'"),
        });
    }
    doc.get("git_sha")
        .and_then(Value::as_str)
        .ok_or("missing 'git_sha' string")?;
    let metrics = doc
        .get("metrics")
        .ok_or("missing 'metrics' object")?
        .as_object()
        .ok_or("'metrics' is not an object")?;
    if metrics.is_empty() {
        return Err("'metrics' is empty".into());
    }
    for (name, m) in metrics {
        let value = m
            .get("value")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("metric '{name}': missing numeric 'value'"))?;
        if !value.is_finite() {
            return Err(format!("metric '{name}': value {value} is not finite"));
        }
        m.get("unit")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("metric '{name}': missing 'unit'"))?;
        let dir = m
            .get("direction")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("metric '{name}': missing 'direction'"))?;
        if Direction::parse(dir).is_none() {
            return Err(format!(
                "metric '{name}': direction '{dir}' is neither 'lower' nor 'higher'"
            ));
        }
        let slack = m
            .get("slack")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("metric '{name}': missing numeric 'slack'"))?;
        if !slack.is_finite() || slack < 0.0 {
            return Err(format!("metric '{name}': slack {slack} is invalid"));
        }
    }
    Ok(())
}

/// Verdict for one metric in a comparison.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Within threshold/slack.
    Ok,
    /// Changed beyond threshold in the good direction.
    Improved,
    /// Changed beyond threshold in the bad direction.
    Regressed,
    /// Present in the baseline but missing from the current run — counted
    /// as a regression so metrics cannot silently disappear.
    Missing,
    /// Present only in the current run (informational).
    New,
}

impl Verdict {
    fn as_str(self) -> &'static str {
        match self {
            Verdict::Ok => "ok",
            Verdict::Improved => "improved",
            Verdict::Regressed => "REGRESSED",
            Verdict::Missing => "MISSING",
            Verdict::New => "new",
        }
    }
}

/// One row of a comparison.
#[derive(Clone, Debug)]
pub struct MetricVerdict {
    /// Metric name.
    pub name: String,
    /// The metric's unit, for rendering values without a schema lookup.
    pub unit: String,
    /// Baseline value (`None` for [`Verdict::New`]).
    pub baseline: Option<f64>,
    /// Current value (`None` for [`Verdict::Missing`]).
    pub current: Option<f64>,
    /// Signed relative change in percent (current vs baseline).
    pub change_pct: f64,
    /// The verdict.
    pub verdict: Verdict,
}

/// Result of [`compare_bench`].
#[derive(Clone, Debug)]
pub struct CompareResult {
    /// Per-metric rows, in baseline order (new metrics appended).
    pub verdicts: Vec<MetricVerdict>,
    /// Relative threshold the verdicts used.
    pub threshold: f64,
}

impl CompareResult {
    /// Names of the regressed (or missing) metrics.
    pub fn regressions(&self) -> Vec<&str> {
        self.verdicts
            .iter()
            .filter(|v| matches!(v.verdict, Verdict::Regressed | Verdict::Missing))
            .map(|v| v.name.as_str())
            .collect()
    }

    /// One line per regressed or missing metric, naming the unit and
    /// both values — so the failure message is actionable without
    /// rerunning with `--table`.
    pub fn regression_details(&self) -> Vec<String> {
        self.verdicts
            .iter()
            .filter(|v| matches!(v.verdict, Verdict::Regressed | Verdict::Missing))
            .map(|v| match (v.baseline, v.current) {
                (Some(b), Some(c)) => format!(
                    "{}: {b:.4} -> {c:.4} {} ({:+.1}%)",
                    v.name, v.unit, v.change_pct
                ),
                (Some(b), None) => {
                    format!("{}: {b:.4} {} -> missing from current run", v.name, v.unit)
                }
                _ => format!("{}: no baseline value", v.name),
            })
            .collect()
    }

    /// Names of metrics present in the baseline but absent from the
    /// current run (a subset of [`regressions`](Self::regressions)).
    pub fn missing(&self) -> Vec<&str> {
        self.verdicts
            .iter()
            .filter(|v| v.verdict == Verdict::Missing)
            .map(|v| v.name.as_str())
            .collect()
    }

    /// Render the comparison as an aligned text table plus a one-line
    /// summary.
    pub fn render(&self) -> String {
        let name_w = self
            .verdicts
            .iter()
            .map(|v| v.name.len())
            .max()
            .unwrap_or(6)
            .max(6);
        let mut out = format!(
            "{:<name_w$}  {:>12}  {:>12}  {:>8}  verdict\n",
            "metric", "baseline", "current", "change"
        );
        let num = |v: Option<f64>| match v {
            Some(x) => format!("{x:.4}"),
            None => "-".to_string(),
        };
        for v in &self.verdicts {
            let change = if v.baseline.is_some() && v.current.is_some() {
                format!("{:+.1}%", v.change_pct)
            } else {
                "-".to_string()
            };
            out.push_str(&format!(
                "{:<name_w$}  {:>12}  {:>12}  {:>8}  {}\n",
                v.name,
                num(v.baseline),
                num(v.current),
                change,
                v.verdict.as_str()
            ));
        }
        let regressed = self.regressions().len();
        let improved = self
            .verdicts
            .iter()
            .filter(|v| v.verdict == Verdict::Improved)
            .count();
        out.push_str(&format!(
            "\n{} metrics compared at threshold {:.0}%: {} regressed, {} improved\n",
            self.verdicts
                .iter()
                .filter(|v| v.verdict != Verdict::New)
                .count(),
            self.threshold * 100.0,
            regressed,
            improved
        ));
        // A missing metric is easy to misread as "covered": name the
        // culprits so the failure is actionable from the output alone.
        let missing = self.missing();
        if !missing.is_empty() {
            out.push_str(&format!(
                "missing from the current run: {}\n",
                missing.join(", ")
            ));
        }
        out
    }
}

fn metric_fields(m: &Value) -> Option<(f64, Direction, f64)> {
    Some((
        m.get("value").and_then(Value::as_f64)?,
        Direction::parse(m.get("direction").and_then(Value::as_str)?)?,
        m.get("slack").and_then(Value::as_f64).unwrap_or(0.0),
    ))
}

/// Compare `current` against `baseline`. `threshold` is the relative
/// change (fraction of the baseline value) beyond which a change counts;
/// a change must also exceed the metric's absolute `slack` to matter.
pub fn compare_bench(
    current: &Value,
    baseline: &Value,
    threshold: Option<f64>,
) -> Result<CompareResult, String> {
    validate_bench(baseline).map_err(|e| format!("baseline: {e}"))?;
    validate_bench(current).map_err(|e| format!("current: {e}"))?;
    let threshold = threshold.unwrap_or(DEFAULT_THRESHOLD);
    let base_metrics = baseline.get("metrics").unwrap().as_object().unwrap();
    let cur_metrics = current.get("metrics").unwrap().as_object().unwrap();

    let unit_of = |m: &Value| {
        m.get("unit")
            .and_then(Value::as_str)
            .expect("validated")
            .to_string()
    };
    let mut verdicts = Vec::new();
    for (name, bm) in base_metrics {
        let (bv, bdir, bslack) = metric_fields(bm).expect("validated");
        let Some(cm) = cur_metrics.iter().find(|(n, _)| n == name).map(|(_, m)| m) else {
            verdicts.push(MetricVerdict {
                name: name.clone(),
                unit: unit_of(bm),
                baseline: Some(bv),
                current: None,
                change_pct: 0.0,
                verdict: Verdict::Missing,
            });
            continue;
        };
        let (cv, _, cslack) = metric_fields(cm).expect("validated");
        let slack = bslack.max(cslack);
        // Positive `worse` means the current value moved in the bad
        // direction by that amount.
        let worse = match bdir {
            Direction::Lower => cv - bv,
            Direction::Higher => bv - cv,
        };
        let rel = worse / bv.abs().max(1e-12);
        let verdict = if worse > slack && rel > threshold {
            Verdict::Regressed
        } else if -worse > slack && -rel > threshold {
            Verdict::Improved
        } else {
            Verdict::Ok
        };
        verdicts.push(MetricVerdict {
            name: name.clone(),
            unit: unit_of(bm),
            baseline: Some(bv),
            current: Some(cv),
            change_pct: (cv - bv) / bv.abs().max(1e-12) * 100.0,
            verdict,
        });
    }
    for (name, cm) in cur_metrics {
        if base_metrics.iter().any(|(n, _)| n == name) {
            continue;
        }
        let (cv, _, _) = metric_fields(cm).expect("validated");
        verdicts.push(MetricVerdict {
            name: name.clone(),
            unit: unit_of(cm),
            baseline: None,
            current: Some(cv),
            change_pct: 0.0,
            verdict: Verdict::New,
        });
    }
    Ok(CompareResult {
        verdicts,
        threshold,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(entries: &[(&str, f64, Direction, f64)]) -> Value {
        let mut metrics = Value::object();
        for (name, value, dir, slack) in entries {
            metrics.set(*name, metric(*value, "u", *dir, *slack));
        }
        let mut d = Value::object();
        d.set("schema", BENCH_SCHEMA);
        d.set("git_sha", "test");
        d.set("metrics", metrics);
        d
    }

    #[test]
    fn compare_flags_injected_regression() {
        let baseline = doc(&[
            ("a.wall_s", 1.0, Direction::Lower, 0.02),
            ("b.throughput", 100.0, Direction::Higher, 0.0),
        ]);
        // a regresses (2x slower), b regresses (half throughput).
        let current = doc(&[
            ("a.wall_s", 2.0, Direction::Lower, 0.02),
            ("b.throughput", 50.0, Direction::Higher, 0.0),
        ]);
        let r = compare_bench(&current, &baseline, None).unwrap();
        assert_eq!(r.regressions(), vec!["a.wall_s", "b.throughput"]);
        let rendered = r.render();
        assert!(rendered.contains("REGRESSED"), "{rendered}");
        // The detail lines carry unit and both values, so a CI failure
        // message is actionable without rerunning with --table.
        let details = r.regression_details();
        assert_eq!(details.len(), 2);
        assert_eq!(details[0], "a.wall_s: 1.0000 -> 2.0000 u (+100.0%)");
        assert_eq!(details[1], "b.throughput: 100.0000 -> 50.0000 u (-50.0%)");
    }

    #[test]
    fn compare_respects_direction_slack_and_threshold() {
        let baseline = doc(&[
            ("fast.wall_s", 0.010, Direction::Lower, 0.05),
            ("thr", 100.0, Direction::Higher, 0.0),
        ]);
        // fast.wall_s triples but stays inside the 50ms slack; thr improves.
        let current = doc(&[
            ("fast.wall_s", 0.030, Direction::Lower, 0.05),
            ("thr", 200.0, Direction::Higher, 0.0),
        ]);
        let r = compare_bench(&current, &baseline, None).unwrap();
        assert!(r.regressions().is_empty(), "{:?}", r.verdicts);
        assert_eq!(r.verdicts[1].verdict, Verdict::Improved);
        // A tighter threshold alone still cannot beat the slack...
        let r = compare_bench(&current, &baseline, Some(0.01)).unwrap();
        assert!(r.regressions().is_empty());
        // ...but without slack it is a regression.
        let baseline = doc(&[("fast.wall_s", 0.010, Direction::Lower, 0.0)]);
        let current = doc(&[("fast.wall_s", 0.030, Direction::Lower, 0.0)]);
        let r = compare_bench(&current, &baseline, None).unwrap();
        assert_eq!(r.regressions(), vec!["fast.wall_s"]);
    }

    #[test]
    fn missing_metric_is_a_regression_and_new_is_not() {
        let baseline = doc(&[("gone", 1.0, Direction::Lower, 0.0)]);
        let current = doc(&[("fresh", 1.0, Direction::Lower, 0.0)]);
        let r = compare_bench(&current, &baseline, None).unwrap();
        assert_eq!(r.regressions(), vec!["gone"]);
        assert_eq!(r.missing(), vec!["gone"]);
        assert_eq!(r.verdicts.len(), 2);
        assert_eq!(r.verdicts[1].verdict, Verdict::New);
        // The rendered report must name the missing metric, not just
        // count it as a regression.
        let rendered = r.render();
        assert!(
            rendered.contains("missing from the current run: gone"),
            "{rendered}"
        );
        assert_eq!(
            r.regression_details(),
            vec!["gone: 1.0000 u -> missing from current run".to_string()]
        );
    }

    #[test]
    fn validate_catches_malformed_documents() {
        assert!(validate_bench(&Value::object()).is_err());
        let mut d = doc(&[("m", 1.0, Direction::Lower, 0.0)]);
        assert!(validate_bench(&d).is_ok());
        d.set("schema", "pipemap-bench/v999");
        assert!(validate_bench(&d).is_err());
        // Bad direction string.
        let mut metrics = Value::object();
        let mut m = Value::object();
        m.set("value", 1.0);
        m.set("unit", "s");
        m.set("direction", "sideways");
        m.set("slack", 0.0);
        metrics.set("m", m);
        let mut d = Value::object();
        d.set("schema", BENCH_SCHEMA);
        d.set("git_sha", "x");
        d.set("metrics", metrics);
        assert!(validate_bench(&d).is_err());
    }

    #[test]
    fn validate_distinguishes_stale_future_and_garbage_schemas() {
        let mut d = doc(&[("m", 1.0, Direction::Lower, 0.0)]);
        d.set("schema", "pipemap-bench/v0");
        let err = validate_bench(&d).unwrap_err();
        assert!(err.contains("older than"), "{err}");
        assert!(err.contains("regenerate the baseline"), "{err}");

        d.set("schema", "pipemap-bench/v999");
        let err = validate_bench(&d).unwrap_err();
        assert!(err.contains("newer than"), "{err}");

        d.set("schema", "not-a-bench-doc/v1");
        let err = validate_bench(&d).unwrap_err();
        assert!(err.contains("not the supported"), "{err}");
    }

    #[test]
    fn quick_suite_produces_a_valid_self_comparable_document() {
        let doc = run_bench_suite(&BenchOptions { quick: true });
        validate_bench(&doc).expect("suite output validates");
        // Round-trips through JSON.
        let parsed = Value::parse(&doc.to_json_pretty()).unwrap();
        validate_bench(&parsed).unwrap();
        // Self-comparison has no regressions (identical values).
        let r = compare_bench(&parsed, &doc, None).unwrap();
        assert!(r.regressions().is_empty(), "{}", r.render());
        // The suite covers all three solvers, e2e, and the executor.
        let metrics = parsed.get("metrics").unwrap().as_object().unwrap();
        for prefix in [
            "solver.greedy.synthetic.",
            "solver.dp_assignment.synthetic.",
            "solver.dp_mapping.synthetic.",
            "solver.greedy.radar.",
            "solver.dp_assignment.radar.",
            "solver.dp_mapping.radar.",
            "solver.dp_mapping_p128.",
            "solver.dp_assignment_p256.",
            "e2e.radar.",
            "exec.fft_hist.",
            "exec.throughput_pipeline.",
            "exec.throughput_batched.",
            "exec.p99_under_overload.",
            "obs.journey_overhead.",
            "obs.estimator_overhead.",
        ] {
            assert!(
                metrics.iter().any(|(n, _)| n.starts_with(prefix)),
                "no metric with prefix {prefix}"
            );
        }
    }
}
