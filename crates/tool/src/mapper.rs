//! The automatic mapper.

use pipemap_chain::{Mapping, Problem};
use pipemap_core::{cluster_heuristic, dp_mapping, GreedyOptions, Solution, SolveError};
use pipemap_machine::{feasible_optimal, AppWorkload, FeasibleSearch, MachineConfig};
use pipemap_profile::training::fit_problem;
use pipemap_profile::{model_accuracy, AccuracyReport, TrainingConfig};
use pipemap_sim::{simulate, SimConfig, SimResult};

/// Options for [`auto_map`].
#[derive(Clone, Debug)]
pub struct MapperOptions {
    /// Measurement noise injected into the training runs (spread, seed);
    /// `None` profiles exactly.
    pub training_noise: Option<(f64, u64)>,
    /// Noise injected into the "measured" simulation runs.
    pub measurement_noise: Option<(f64, u64)>,
    /// Data sets pushed through the simulator per measurement.
    pub sim_datasets: usize,
    /// Independent noisy measurement runs (different seeds). The report's
    /// `measured` is the first run; `measured_spread` summarises all.
    pub measurement_runs: usize,
    /// Run the (slower) optimal DP mapper in addition to the greedy
    /// heuristic.
    pub run_dp: bool,
    /// Search for the best machine-feasible variant of the optimal
    /// clustering.
    pub check_feasibility: bool,
    /// Profile with the paper's whole-program "8 executions" (staggered
    /// assignments; see `pipemap_profile::executions`) instead of
    /// per-function sampling.
    pub execution_profiling: bool,
}

impl Default for MapperOptions {
    fn default() -> Self {
        Self {
            training_noise: Some((0.03, 0x7ea)),
            measurement_noise: Some((0.04, 0x5eed)),
            sim_datasets: 400,
            measurement_runs: 3,
            run_dp: true,
            check_feasibility: true,
            execution_profiling: false,
        }
    }
}

impl MapperOptions {
    /// Exact profiling and measurement (no noise) — for validation tests.
    pub fn exact() -> Self {
        Self {
            training_noise: None,
            measurement_noise: None,
            ..Self::default()
        }
    }
}

/// Everything the tool learned about one application on one machine.
#[derive(Clone, Debug)]
pub struct MappingReport {
    /// Application name.
    pub app: String,
    /// The machine mapped onto.
    pub machine: MachineConfig,
    /// Ground-truth problem (machine-level costs).
    pub truth: Problem,
    /// Fitted-polynomial problem the mappers ran on.
    pub fitted: Problem,
    /// Fit accuracy versus ground truth (the paper's "<10% average").
    pub fit_accuracy: AccuracyReport,
    /// Optimal mapping from the DP (on the fitted model), if requested.
    pub optimal: Option<Solution>,
    /// Mapping from the greedy clustering heuristic (on the fitted model).
    pub greedy: Solution,
    /// Best machine-feasible mapping with the optimal clustering, with its
    /// model-predicted throughput.
    pub feasible: Option<(Mapping, f64)>,
    /// Predicted throughput of the chosen mapping (fitted model).
    pub predicted_throughput: f64,
    /// Simulated ("measured") throughput of the chosen mapping on the
    /// ground-truth costs (first measurement run).
    pub measured: SimResult,
    /// Throughput across all measurement runs (spread is zero when no
    /// noise is configured or `measurement_runs` is 1).
    pub measured_spread: pipemap_sim::Summary,
    /// Simulated throughput of the pure data parallel mapping (Figure
    /// 1(a)) on the ground-truth costs.
    pub data_parallel: SimResult,
}

impl MappingReport {
    /// The mapping the tool would hand to the compiler: the feasible
    /// optimum if available, else the unconstrained optimum, else greedy.
    pub fn chosen(&self) -> &Mapping {
        if let Some((m, _)) = &self.feasible {
            return m;
        }
        if let Some(s) = &self.optimal {
            return &s.mapping;
        }
        &self.greedy.mapping
    }

    /// Percent difference between measured and predicted throughput
    /// (Table 2's convention).
    pub fn percent_difference(&self) -> f64 {
        pipemap_sim::stats::percent_difference(self.measured.throughput, self.predicted_throughput)
    }

    /// Ratio of optimal to data parallel measured throughput (Table 2's
    /// last column).
    pub fn optimal_over_data_parallel(&self) -> f64 {
        self.measured.throughput / self.data_parallel.throughput
    }
}

/// Run the full mapping methodology for `app` on `machine`.
pub fn auto_map(
    app: &AppWorkload,
    machine: &MachineConfig,
    options: &MapperOptions,
) -> Result<MappingReport, SolveError> {
    let truth = pipemap_machine::synthesize_problem(app, machine);

    // 1–2: profile + fit.
    let fitted = if options.execution_profiling {
        pipemap_profile::fit_problem_from_executions(
            &truth,
            options.training_noise,
            Default::default(),
        )
    } else {
        let mut training = TrainingConfig::for_procs(truth.total_procs);
        if let Some((s, seed)) = options.training_noise {
            training = training.with_noise(s, seed);
        }
        fit_problem(&truth, &training)
    };
    let fit_accuracy = model_accuracy(&truth.chain, &fitted.chain, truth.total_procs);

    // 3: map on the fitted model.
    let greedy = cluster_heuristic(&fitted, GreedyOptions::adaptive())?;
    let optimal = if options.run_dp {
        Some(dp_mapping(&fitted)?)
    } else {
        None
    };
    let best_model_solution = optimal.as_ref().unwrap_or(&greedy);

    // 4: machine constraints.
    let feasible = if options.check_feasibility {
        feasible_optimal(
            &fitted,
            machine,
            &best_model_solution.mapping.clustering(),
            FeasibleSearch::default(),
        )
    } else {
        None
    };
    let (chosen_mapping, predicted_throughput) = match &feasible {
        Some((m, thr)) => (m.clone(), *thr),
        None => (
            best_model_solution.mapping.clone(),
            best_model_solution.throughput,
        ),
    };

    // 5: measure by simulation on ground truth.
    let mut sim_cfg = SimConfig::with_datasets(options.sim_datasets);
    if let Some((s, seed)) = options.measurement_noise {
        sim_cfg = sim_cfg.with_noise(s, seed);
    }
    let runs = options.measurement_runs.max(1);
    let seed = options.measurement_noise.map(|(_, s)| s).unwrap_or(0);
    let replicated =
        pipemap_sim::replicate_simulation(&truth.chain, &chosen_mapping, &sim_cfg, runs, seed);
    let measured_spread = replicated.throughput;
    let measured = replicated
        .runs
        .into_iter()
        .next()
        .expect("at least one run");
    let dp_mapping_style = Mapping::data_parallel(&truth);
    let data_parallel = simulate(&truth.chain, &dp_mapping_style, &sim_cfg);

    Ok(MappingReport {
        app: app.name.clone(),
        machine: *machine,
        truth,
        fitted,
        fit_accuracy,
        optimal,
        greedy,
        feasible,
        predicted_throughput,
        measured,
        measured_spread,
        data_parallel,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipemap_machine::workload::TaskWorkload;
    use pipemap_machine::EdgeWorkload;
    use pipemap_model::MemoryReq;

    /// A small synthetic app on a 4×4 machine so debug-mode tests stay
    /// fast (the full 8×8 solves run in the release-mode benches).
    fn small_app() -> AppWorkload {
        let mut a = TaskWorkload::parallel("front", 4e6, 32);
        a.memory = MemoryReq::new(4e3, 0.6e6);
        let mut b = TaskWorkload::parallel("back", 6e6, 32);
        b.seq_flops = 1e5;
        b.memory = MemoryReq::new(4e3, 0.8e6);
        AppWorkload::new("small", vec![a, b], vec![EdgeWorkload::all_to_all(2e5)])
    }

    fn small_machine() -> MachineConfig {
        MachineConfig::iwarp_message().with_geometry(4, 4)
    }

    #[test]
    fn auto_map_end_to_end_exact() {
        let report = auto_map(&small_app(), &small_machine(), &MapperOptions::exact()).unwrap();
        // Fit is good. (The paper's "<10% average" was measured at the
        // operating points of a set of sample mappings; our accuracy
        // report averages uniformly over the whole processor grid,
        // including extreme corners like a 1→16 transfer, so the bar here
        // is slightly wider.)
        assert!(
            report.fit_accuracy.mean_rel_error < 0.15,
            "fit error {:?}",
            report.fit_accuracy
        );
        // The optimal beats or ties the greedy on the fitted model.
        let opt = report.optimal.as_ref().unwrap();
        assert!(opt.throughput >= report.greedy.throughput - 1e-9);
        // Predicted and measured agree within the paper's envelope.
        let diff = report.percent_difference().abs();
        assert!(diff < 15.0, "predicted vs measured off by {diff:.1}%");
        // Task+data parallel beats pure data parallel.
        assert!(
            report.optimal_over_data_parallel() > 1.0,
            "ratio {}",
            report.optimal_over_data_parallel()
        );
    }

    #[test]
    fn auto_map_with_noise_still_coheres() {
        let report = auto_map(&small_app(), &small_machine(), &MapperOptions::default()).unwrap();
        let diff = report.percent_difference().abs();
        assert!(diff < 25.0, "predicted vs measured off by {diff:.1}%");
        assert!(report.measured.throughput > 0.0);
    }

    #[test]
    fn chosen_prefers_feasible() {
        let report = auto_map(&small_app(), &small_machine(), &MapperOptions::exact()).unwrap();
        if let Some((m, _)) = report.feasible.as_ref() {
            assert_eq!(report.chosen(), m);
        }
    }

    #[test]
    fn greedy_only_mode() {
        let opts = MapperOptions {
            run_dp: false,
            check_feasibility: false,
            ..MapperOptions::exact()
        };
        let report = auto_map(&small_app(), &small_machine(), &opts).unwrap();
        assert!(report.optimal.is_none());
        assert!(report.feasible.is_none());
        assert_eq!(report.chosen(), &report.greedy.mapping);
    }
}
