//! `pipemap` — command-line automatic mapping tool.
//!
//! ```text
//! pipemap map <spec-file> [--greedy-only] [--latency-floor <thr>]
//! pipemap demo <fft-hist-256|fft-hist-512|radar|stereo> [--systolic]
//! pipemap template
//! ```
//!
//! `map` reads a pipeline description (see `pipemap template` for the
//! format), finds the optimal and greedy mappings, and prints them.
//! `demo` runs the full paper methodology (profile → fit → map →
//! constrain → simulate) on one of the built-in applications.

use std::process::ExitCode;
use std::time::Duration;

use pipemap_apps::{fft_hist, radar, stereo, FftHistConfig, RadarConfig, StereoConfig};
use pipemap_core::{
    best_latency_mapping, cluster_heuristic, dp_mapping, dp_mapping_free, min_procs_mapping,
    GreedyOptions,
};
use pipemap_machine::MachineConfig;
use pipemap_obs::{FlightRecorder, MetricsServer, RecorderConfig};
use pipemap_tool::bench::{compare_bench, git_sha, run_bench_suite, validate_bench, BenchOptions};
use pipemap_tool::spec::parse_spec;
use pipemap_tool::{
    auto_map, demo_report_json, map_report_json, mapping_json, render_mapping, render_report,
    simulate_report_json, MapperOptions,
};

const USAGE: &str = "\
pipemap — optimal mapping of pipelines of data parallel tasks

USAGE:
    pipemap map <spec-file> [--greedy-only] [--latency-floor <thr>]
                            [--min-procs <thr>] [--report json]
                            [--calibration <file> --edge-bytes <b1,b2,..>]
    pipemap calibrate [--sizes <b1,b2,..>] [--messages <n>] [--batch <B>]
                      [--out <file>]
    pipemap explain <spec-file> [--assignment] [--report json]
                    [--out <file>] [--trace-out <file>]
                    [--robustness <trials>] [--spread <frac>] [--seed <n>]
    pipemap simulate <spec-file> <mapping> [--datasets <n>] [--noise <spread>]
                     [--seed <n>] [--report json] [--journey-out <file>]
                     [--journey-sample <n>] [--serve <addr>]
                     [--hold <secs>] [--recorder-out <file>]
    pipemap demo <fft-hist-256|fft-hist-512|radar|stereo> [--systolic]
                 [--metrics] [--trace-out <file>] [--serve <addr>]
                 [--hold <secs>] [--recorder-out <file>]
    pipemap bench [--quick] [--out <file>] [--compare <baseline.json>]
                  [--against <current.json>] [--threshold <frac>]
                  [--warn-only] [--validate <file>]
    pipemap load [micro|fft-hist] [--rate <ds/s | lo:hi:steps>]
                 [--duration <secs|Nms>] [--transport inproc|uds]
                 [--admit-rate <ds/s>] [--shed-queue <n>]
                 [--calibration <file>]
                 [--datasets <n>] [--batch <B>] [--flush-us <us>]
                 [--queue-depth <d>] [--stages <k>] [--size <n>]
                 [--replicas <r>] [--threads <t>] [--no-pool] [--reference]
                 [--report json] [--journey-out <file>] [--journey-sample <n>]
                 [--serve <addr>] [--hold <secs>] [--recorder-out <file>]
    pipemap doctor <journeys.jsonl> [--attach <addr>] [--report json]
                   [--model static|online] [--fail-on-drift]
                   [--margins <explain.json>]
                   [--threshold <frac>] [--min-samples <n>]
                   [--spec <file> --mapping <m>] [--trace-out <file>]
                   [--serve <addr>] [--hold <secs>] [--recorder-out <file>]
    pipemap resolve <spec-file> [--assignment]
                    [--drift <exec|icom|ecom>:<idx>=<factor>]...
                    [--doctor <report.json>] [--report json]
    pipemap top [--attach <addr>] [--once] [--interval <secs|Nms>]
                [--duration <secs|Nms>]
    pipemap fit <fft-hist-256|fft-hist-512|radar|stereo> [--systolic]
    pipemap template

COMMANDS:
    map       read a pipeline spec and print its optimal mapping
              (--report json emits a machine-readable report including
              solver counters: DP cells, lookups, prunings, wall time).
              --calibration + --edge-bytes re-price every edge's external
              transfer with the *measured* transport cost from
              'pipemap calibrate': edge i costs per_msg + per_byte * b_i
              seconds, so the mapping optimises against the transport the
              machine actually has instead of the spec's assumed f_ecom
    calibrate measure real cross-process transport cost: push messages of
              each --sizes payload through a spawned worker over a Unix
              socket, fit t(B) = per_msg_s + per_byte_s*B by least
              squares, and print (or --out write) the
              pipemap-calibration/v1 JSON that 'map --calibration' and
              'load --calibration' consume
    explain   solve with full decision provenance and print *why*: the
              winning DP path with each stage's runner-up alternative,
              exact stability margins (how far each stage's fitted
              exec/transfer cost can drift before the optimum flips —
              closed form from the value tables, no sampling), marginal
              throughput contributions, and a pruning heatmap.
              --report json emits the pipemap-explain/v1 document that
              'doctor --margins' and the observatory consume (--out
              writes it to a file as well); --trace-out writes the
              decision path as a Chrome trace; --robustness <trials>
              cross-checks the exact margins with the §6.4 Monte-Carlo
              study (--spread sets the perturbation, default 0.10);
              --assignment explains the per-task assignment DP instead
              of the clustering DP
    simulate  run a given mapping (e.g. '0-0:8x3,1-2:10x4') through the
              pipeline simulator and report measured throughput
              (--seed makes a --noise run reproducible; --report json
              emits a deterministic machine-readable report)
    demo      run the full profile→fit→map→simulate methodology on a
              built-in application from the paper; --metrics prints a
              JSON report (per-stage utilisation, recv/send wait,
              predicted-vs-measured error, solver metrics) and
              --trace-out writes a Chrome trace of the measured run
              (open in Perfetto / chrome://tracing)
    bench     run the fixed perf suite (solvers, end-to-end methodology,
              threaded executor) and write BENCH_<git-sha>.json;
              --compare prints per-metric verdicts against a baseline and
              exits nonzero on regression, naming each regressed metric
              with its unit and baseline -> current values (--threshold
              overrides the default 30% relative change; --warn-only
              never fails);
              --validate checks a bench file against the schema
    load      drive a real threaded pipeline at a target rate (or open
              loop) and report achieved datasets/s, p50/p99 end-to-end
              latency, per-stage backpressure, batching fill, and buffer
              pool hit rate; the achieved rate is checked against the
              closed form 1/max(s_i/r_i) on the measured service means.
              --reference runs the unbatched/unpooled data plane for A/B
              comparison; stop conditions combine (--duration default 2s);
              --journey-out records sampled per-dataset journeys (enqueue/
              dequeue/service/send per stage) to a JSONL file for 'doctor'.
              With --serve the run exposes the full observatory surface:
              journeys at /journeys.jsonl, SLO burn-rate and backpressure
              events at /events.jsonl, and a continuously refitted online
              cost model at /model.json (for 'top' and 'doctor --attach').
              --transport uds runs the pipeline as worker *processes*
              over Unix sockets (bit-identical output, measured per-link
              frame/byte counters); an *observed* uds run (--serve or
              --recorder-out) also streams per-worker telemetry — live
              counters, service histograms, CPU/RSS sampled from /proc,
              and journey events — into the parent's registry as
              exec.worker.s<stage>i<inst>.p<pid>.* series, labelled
              per process on /metrics and rendered by 'top'; a worker
              whose stream dies is marked stale rather than dropped;
              --admit-rate caps the accepted rate
              with a token bucket and --shed-queue drops arrivals beyond
              an in-flight bound (rejected/shed are reported);
              --calibration folds the measured f_ecom into the predicted
              throughput; --rate lo:hi:steps ramps the offered rate and
              reports the saturation knee (last rate with achieved >=
              95% of offered)
    doctor    explain a run from its journey trace: per-stage latency
              decomposition (queue wait vs transport vs service vs
              batching delay), per-dataset critical path, measured vs
              model-predicted service means with 95% confidence
              intervals, and a drift verdict when the measured bottleneck
              is not the one the DP solver predicted (recommending a
              re-solve). Reads a --journey-out file, or scrapes a live
              run's /journeys.jsonl via --attach <addr>. --spec/--mapping
              rebuild the prediction from a spec instead of the file
              header; --fail-on-drift exits nonzero on drift;
              --model online refits the cost model from the journeys
              themselves (recent data sets weighted heaviest) and
              localises the stage whose live cost drifted from the static
              model — catching mid-run changes whole-run means dilute;
              --margins <explain.json> replaces the fixed near-tie
              threshold with each stage's exact stability interval from
              'explain --report json': quiet while drift provably cannot
              flip the mapping, flagged the moment it can;
              --trace-out writes the journeys as a Chrome trace with flow
              arrows stitching each data set across stages
    resolve   incremental warm-start re-solve: build the retained solver
              artifact (dense cost table, DP value tables, optimal
              mapping, exact stability margins) from the spec, apply a
              cost-drift vector, and re-solve only what the drift
              invalidated — throughput bit-identical to a cold solve of
              the re-priced problem, verified on every run (a margin
              short-circuit may keep the old mapping when the cold argmax
              ties it at the same value). Drift comes from
              repeated --drift factors (task index for exec, edge index
              for icom/ecom), or from --doctor <report.json>: the fitted
              per-module service/transport factors a 'doctor --report
              json' run recommends are collapsed onto the artifact's own
              mapping (explicit --drift factors override on top).
              Reports old vs new mapping, the mechanism fired
              (short-circuit vs suffix), DP cells recomputed, the
              invalidation frontier, and the wall-clock speedup over the
              verification cold solve; --assignment uses the per-task
              assignment DP instead of the clustering DP
    top       live terminal dashboard: per-stage throughput/utilization
              sparklines, a per-process worker table when the run ships
              cross-process telemetry (items, CPU%, RSS, busy/starved,
              p99, liveness), the online-fitted cost model with
              residuals, and a scrolling event feed. --attach scrapes a --serve
              endpoint (e.g. a 'load --serve' run); without it, drives a
              short local micro load. --once prints a single frame and
              exits (CI-friendly); --interval sets the refresh cadence
    fit       profile a built-in application on the machine model and
              print its fitted polynomial spec (pipe to a file, then use
              'map' / 'simulate' on it)
    template  print an annotated spec file to start from

OBSERVABILITY (simulate, demo, load, doctor):
    --serve <addr>        expose live OpenMetrics on http://<addr>/metrics
                          (plus /snapshot.json, /recorder.jsonl, and —
                          per command — /journeys.jsonl, /events.jsonl,
                          /model.json) while the command runs; <addr>
                          like 127.0.0.1:9184, port 0 picks a free port
                          (printed to stderr)
    --hold <secs>         keep the server up this long after the run
                          (default with --serve: hold until interrupted)
    --recorder-out <f>    write flight-recorder samples (counter rates,
                          gauges over time) as JSON lines to <f>
";

const TEMPLATE: &str = "\
# pipemap pipeline spec
# time model: f(p) = C1 + C2/p + C3*p   (see the paper, section 5)

procs 64              # available processors
mem_per_proc 500000   # bytes per processor
replication on        # 'off' disables module replication

task front
  exec poly 0.02 1.50 0.001      # C1 C2 C3
  memory 16000 1310720           # resident distributed (bytes)

edge
  icom poly 0.0 0.04 0.0         # redistribution when co-located
  ecom poly 0.002 0.08 0.08 0 0  # transfer(ps, pr) when split

task back
  exec table 1:0.50 4:0.16 16:0.07   # measured profile, interpolated
  replicable no                      # stateful: single instance only
  min_procs 2
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Hidden worker dispatch: `pipemap __worker ...` re-enters this very
    // binary as a data-plane worker process (see exec::worker_command).
    if args.first().map(String::as_str) == Some("__worker") {
        std::process::exit(pipemap_exec::worker_main(&args[1..]));
    }
    match args.first().map(String::as_str) {
        Some("map") => cmd_map(&args[1..]),
        Some("calibrate") => cmd_calibrate(&args[1..]),
        Some("explain") => cmd_explain(&args[1..]),
        Some("simulate") => cmd_simulate(&args[1..]),
        Some("demo") => cmd_demo(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("load") => cmd_load(&args[1..]),
        Some("doctor") => cmd_doctor(&args[1..]),
        Some("resolve") => cmd_resolve(&args[1..]),
        Some("top") => cmd_top(&args[1..]),
        Some("fit") => cmd_fit(&args[1..]),
        Some("template") => {
            print!("{TEMPLATE}");
            ExitCode::SUCCESS
        }
        Some("--help") | Some("-h") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown command '{other}'\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_map(args: &[String]) -> ExitCode {
    let mut file = None;
    let mut greedy_only = false;
    let mut latency_floor: Option<f64> = None;
    let mut procs_target: Option<f64> = None;
    let mut report_fmt: Option<String> = None;
    let mut calibration_file: Option<String> = None;
    let mut edge_bytes: Option<Vec<f64>> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--greedy-only" => greedy_only = true,
            "--calibration" => match it.next() {
                Some(v) => calibration_file = Some(v.clone()),
                None => {
                    eprintln!("--calibration needs a file path");
                    return ExitCode::FAILURE;
                }
            },
            "--edge-bytes" => {
                let parsed: Option<Vec<f64>> = it
                    .next()
                    .and_then(|v| v.split(',').map(|b| b.trim().parse::<f64>().ok()).collect());
                match parsed {
                    Some(v) if !v.is_empty() && v.iter().all(|b| *b >= 0.0) => {
                        edge_bytes = Some(v);
                    }
                    _ => {
                        eprintln!("--edge-bytes needs a comma-separated byte list like 8192,1024");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--report" => match it.next() {
                Some(v) => report_fmt = Some(v.clone()),
                None => {
                    eprintln!("--report needs a format (json)");
                    return ExitCode::FAILURE;
                }
            },
            "--latency-floor" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) => latency_floor = Some(v),
                None => {
                    eprintln!("--latency-floor needs a numeric throughput");
                    return ExitCode::FAILURE;
                }
            },
            "--min-procs" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) => procs_target = Some(v),
                None => {
                    eprintln!("--min-procs needs a numeric throughput target");
                    return ExitCode::FAILURE;
                }
            },
            other if file.is_none() => file = Some(other.to_string()),
            other => {
                eprintln!("unexpected argument '{other}'");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(file) = file else {
        eprintln!("map needs a spec file\n\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(&file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut problem = match parse_spec(&text) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{file}:{e}");
            return ExitCode::FAILURE;
        }
    };

    // Re-price external transfers from a measured transport calibration:
    // edge i's f_ecom becomes the constant per_msg + per_byte * bytes_i,
    // replacing the spec's assumed polynomial.
    match (&calibration_file, &edge_bytes) {
        (None, None) => {}
        (Some(path), Some(bytes)) => {
            let cal = match std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {path}: {e}"))
                .and_then(|t| pipemap_profile::TransportCalibration::parse(&t))
            {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            let nedges = problem.chain.edges().len();
            if bytes.len() != nedges {
                eprintln!(
                    "--edge-bytes has {} entries but the chain has {nedges} edges",
                    bytes.len()
                );
                return ExitCode::FAILURE;
            }
            let tasks = problem.chain.tasks().to_vec();
            let edges: Vec<pipemap_chain::Edge> = problem
                .chain
                .edges()
                .iter()
                .zip(bytes)
                .map(|(e, b)| {
                    pipemap_chain::Edge::new(
                        e.icom.clone(),
                        pipemap_model::PolyEcom::new(cal.ecom_seconds(*b), 0.0, 0.0, 0.0, 0.0),
                    )
                })
                .collect();
            problem.chain = pipemap_chain::TaskChain::new(tasks, edges);
        }
        _ => {
            eprintln!("--calibration and --edge-bytes must be given together");
            return ExitCode::FAILURE;
        }
    }

    let json = match report_fmt.as_deref() {
        None => false,
        Some("json") => true,
        Some(other) => {
            eprintln!("unsupported report format '{other}' (only 'json')");
            return ExitCode::FAILURE;
        }
    };
    if json {
        // Count solver work (DP cells, lookups, prunings, wall time) in
        // the global metrics registry; snapshotted into the report below.
        pipemap_obs::install_global(pipemap_obs::Registry::new());
    }

    if !json {
        println!(
            "{}: {} tasks on {} processors ({} bytes/proc)\n",
            file,
            problem.num_tasks(),
            problem.total_procs,
            problem.mem_per_proc
        );
    }
    let greedy = match cluster_heuristic(&problem, GreedyOptions::adaptive()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("mapping failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut solutions = vec![("greedy", greedy)];
    if !greedy_only {
        match dp_mapping(&problem) {
            Ok(optimal) => solutions.push(("optimal", optimal)),
            Err(e) => eprintln!("optimal mapping failed: {e}"),
        }
        // Free replication degrees (an extension beyond the paper's
        // maximal-replication rule): report only when it differs.
        if let Ok(free) = dp_mapping_free(&problem) {
            solutions.push(("free_replication", free));
        }
    }
    let latency_sol = latency_floor.and_then(|floor| match best_latency_mapping(&problem, floor) {
        Ok(sol) => Some((floor, sol)),
        Err(e) => {
            eprintln!("no mapping reaches {floor} data sets/s: {e}");
            None
        }
    });
    let procs_sol = procs_target.and_then(|target| match min_procs_mapping(&problem, target) {
        Ok(sol) => Some((target, sol)),
        Err(e) => {
            eprintln!("no budget reaches {target} data sets/s: {e}");
            None
        }
    });

    if json {
        let metrics = pipemap_obs::global_registry().map(|r| r.snapshot());
        let mut doc = map_report_json(&file, &problem, &solutions, metrics.as_ref());
        if let Some((floor, sol)) = &latency_sol {
            let mut o = pipemap_obs::Value::object();
            o.set("mapping", mapping_json(&problem, &sol.mapping));
            o.set("latency_s", sol.latency);
            o.set("throughput", sol.throughput);
            o.set("floor", *floor);
            doc.set("latency", o);
        }
        if let Some((target, sol)) = &procs_sol {
            let mut o = pipemap_obs::Value::object();
            o.set("mapping", mapping_json(&problem, &sol.solution.mapping));
            o.set("procs", sol.procs);
            o.set("throughput", sol.solution.throughput);
            o.set("target", *target);
            doc.set("min_procs", o);
        }
        println!("{}", doc.to_json_pretty());
        return ExitCode::SUCCESS;
    }

    for (label, sol) in &solutions {
        let tag = match *label {
            "greedy" => "greedy   ",
            "optimal" => "optimal  ",
            _ => "free-rep ",
        };
        println!(
            "{tag}: {}  -> {:.3} data sets/s",
            render_mapping(&problem, &sol.mapping),
            sol.throughput
        );
    }
    if let Some((floor, sol)) = &latency_sol {
        println!(
            "latency  : {}  -> {:.3}s latency at {:.3} data sets/s (floor {:.3})",
            render_mapping(&problem, &sol.mapping),
            sol.latency,
            sol.throughput,
            floor
        );
    }
    if let Some((target, sol)) = &procs_sol {
        println!(
            "procs    : {}  -> {} processors sustain {:.3} data sets/s (target {:.3})",
            render_mapping(&problem, &sol.solution.mapping),
            sol.procs,
            sol.solution.throughput,
            target
        );
    }
    ExitCode::SUCCESS
}

fn cmd_calibrate(args: &[String]) -> ExitCode {
    let mut sizes: Vec<usize> = vec![1024, 8192, 65536, 262144];
    let mut messages: u64 = 2048;
    let mut batch: usize = 32;
    let mut out: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--sizes" => {
                let parsed: Option<Vec<usize>> = it
                    .next()
                    .and_then(|v| v.split(',').map(|b| b.trim().parse().ok()).collect());
                match parsed {
                    Some(v) if v.len() >= 2 => sizes = v,
                    _ => {
                        eprintln!("--sizes needs >= 2 comma-separated payload sizes");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--messages" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) if v >= 1 => messages = v,
                _ => {
                    eprintln!("--messages needs an integer >= 1");
                    return ExitCode::FAILURE;
                }
            },
            "--batch" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) if v >= 1 => batch = v,
                _ => {
                    eprintln!("--batch needs an integer >= 1");
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match it.next() {
                Some(v) => out = Some(v.clone()),
                None => {
                    eprintln!("--out needs a file path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unexpected argument '{other}'");
                return ExitCode::FAILURE;
            }
        }
    }
    if !pipemap_exec::worker_probe() {
        eprintln!("calibrate: worker binary not reachable (set PIPEMAP_WORKER_BIN)");
        return ExitCode::FAILURE;
    }
    let mut samples = Vec::with_capacity(sizes.len());
    for &size in &sizes {
        match pipemap_exec::measure_transport(size, messages, batch) {
            Ok(m) => {
                eprintln!(
                    "calibrate: {size} B x {messages} msgs -> {:.3} µs/msg ({:.3}s total)",
                    m.seconds_per_message * 1e6,
                    m.elapsed_s
                );
                samples.push(pipemap_profile::CalibrationSample {
                    payload_bytes: size as f64,
                    seconds_per_message: m.seconds_per_message,
                });
            }
            Err(e) => {
                eprintln!("calibrate: measuring {size} B failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(cal) = pipemap_profile::TransportCalibration::fit(&samples) else {
        eprintln!("calibrate: fit failed (need >= 2 distinct payload sizes)");
        return ExitCode::FAILURE;
    };
    eprintln!(
        "calibrate: per_msg {:.3} µs, per_byte {:.4} ns (r2 {:.4})",
        cal.per_msg_s * 1e6,
        cal.per_byte_s * 1e9,
        cal.r2
    );
    let doc = cal.to_json();
    match &out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &doc) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote calibration to {path}");
        }
        None => print!("{doc}"),
    }
    ExitCode::SUCCESS
}

/// Shared `--serve` / `--hold` / `--recorder-out` flags.
#[derive(Clone, Debug, Default)]
struct ObsFlags {
    serve: Option<String>,
    hold: Option<f64>,
    recorder_out: Option<String>,
}

impl ObsFlags {
    /// Try to consume one observability flag; `Ok(true)` if `arg` was
    /// one of ours.
    fn try_parse(
        &mut self,
        arg: &str,
        it: &mut std::slice::Iter<'_, String>,
    ) -> Result<bool, String> {
        match arg {
            "--serve" => {
                self.serve = Some(it.next().ok_or("--serve needs an address")?.clone());
            }
            "--hold" => {
                let v = it
                    .next()
                    .and_then(|v| v.parse::<f64>().ok())
                    .ok_or("--hold needs a duration in seconds")?;
                self.hold = Some(v);
            }
            "--recorder-out" => {
                self.recorder_out =
                    Some(it.next().ok_or("--recorder-out needs a file path")?.clone());
            }
            _ => return Ok(false),
        }
        Ok(true)
    }

    fn active(&self) -> bool {
        self.serve.is_some() || self.recorder_out.is_some()
    }
}

fn cmd_explain(args: &[String]) -> ExitCode {
    use pipemap_tool::{explain, explain_json, explain_trace_json, render_explanation};
    let mut file: Option<String> = None;
    let mut report_fmt: Option<String> = None;
    let mut out: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut opts = pipemap_tool::ExplainOptions::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--assignment" => opts.cluster = false,
            "--report" => match it.next() {
                Some(v) => report_fmt = Some(v.clone()),
                None => {
                    eprintln!("--report needs a format (json)");
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match it.next() {
                Some(v) => out = Some(v.clone()),
                None => {
                    eprintln!("--out needs a file path");
                    return ExitCode::FAILURE;
                }
            },
            "--trace-out" => match it.next() {
                Some(v) => trace_out = Some(v.clone()),
                None => {
                    eprintln!("--trace-out needs a file path");
                    return ExitCode::FAILURE;
                }
            },
            "--robustness" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(v) if v > 0 => opts.robustness_trials = Some(v),
                _ => {
                    eprintln!("--robustness needs a positive trial count");
                    return ExitCode::FAILURE;
                }
            },
            "--spread" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v >= 0.0 && v.is_finite() => opts.spread = v,
                _ => {
                    eprintln!("--spread needs a non-negative fraction (e.g. 0.1)");
                    return ExitCode::FAILURE;
                }
            },
            "--seed" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(v) => opts.seed = v,
                None => {
                    eprintln!("--seed needs an integer");
                    return ExitCode::FAILURE;
                }
            },
            other if file.is_none() && !other.starts_with('-') => file = Some(other.to_string()),
            other => {
                eprintln!("unexpected argument '{other}'");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(file) = file else {
        eprintln!("explain needs a spec file\n\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let json = match report_fmt.as_deref() {
        None => false,
        Some("json") => true,
        Some(other) => {
            eprintln!("unsupported report format '{other}' (only 'json')");
            return ExitCode::FAILURE;
        }
    };
    let text = match std::fs::read_to_string(&file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let problem = match parse_spec(&text) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{file}:{e}");
            return ExitCode::FAILURE;
        }
    };
    // Margins land in the global registry as solver.margin.* gauges.
    pipemap_obs::install_global(pipemap_obs::Registry::new());
    let ex = match explain(&problem, &opts) {
        Ok(ex) => ex,
        Err(e) => {
            eprintln!("explain failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let doc = explain_json(&file, &problem, &ex);
    if let Some(path) = &out {
        if let Err(e) = std::fs::write(path, doc.to_json_pretty()) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote margin spec to {path} (feed to 'doctor --margins')");
    }
    if let Some(path) = &trace_out {
        let trace = explain_trace_json(&problem, &ex);
        if let Err(e) = std::fs::write(path, trace.to_json_pretty()) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote decision trace to {path}");
    }
    if json {
        println!("{}", doc.to_json_pretty());
    } else {
        print!("{}", render_explanation(&problem, &ex));
    }
    ExitCode::SUCCESS
}

fn cmd_resolve(args: &[String]) -> ExitCode {
    use pipemap_core::{CostDeltas, ResolveArtifact, SolveOptions};
    use pipemap_tool::{doctor_factors, parse_drift, render_resolve, resolve_report_json};
    let mut file: Option<String> = None;
    let mut assignment = false;
    let mut drift_specs: Vec<String> = Vec::new();
    let mut doctor_file: Option<String> = None;
    let mut report_fmt: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--assignment" => assignment = true,
            "--drift" => match it.next() {
                Some(v) => drift_specs.push(v.clone()),
                None => {
                    eprintln!("--drift needs a spec like exec:1=1.5");
                    return ExitCode::FAILURE;
                }
            },
            "--doctor" => match it.next() {
                Some(v) => doctor_file = Some(v.clone()),
                None => {
                    eprintln!("--doctor needs a report file (from 'doctor --report json')");
                    return ExitCode::FAILURE;
                }
            },
            "--report" => match it.next() {
                Some(v) => report_fmt = Some(v.clone()),
                None => {
                    eprintln!("--report needs a format (json)");
                    return ExitCode::FAILURE;
                }
            },
            other if file.is_none() && !other.starts_with('-') => file = Some(other.to_string()),
            other => {
                eprintln!("unexpected argument '{other}'");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(file) = file else {
        eprintln!("resolve needs a spec file\n\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let json = match report_fmt.as_deref() {
        None => false,
        Some("json") => true,
        Some(other) => {
            eprintln!("unsupported report format '{other}' (only 'json')");
            return ExitCode::FAILURE;
        }
    };
    if drift_specs.is_empty() && doctor_file.is_none() {
        eprintln!("resolve needs a drift source: --drift factors and/or --doctor <report.json>");
        return ExitCode::FAILURE;
    }
    let text = match std::fs::read_to_string(&file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let problem = match parse_spec(&text) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{file}:{e}");
            return ExitCode::FAILURE;
        }
    };
    // solver.resolve.* counters and gauges land in the global registry.
    pipemap_obs::install_global(pipemap_obs::Registry::new());
    let artifact = match if assignment {
        ResolveArtifact::build_assignment(&problem, &SolveOptions::default())
    } else {
        ResolveArtifact::build(&problem, &SolveOptions::default())
    } {
        Ok(a) => a,
        Err(e) => {
            eprintln!("cold solve failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Doctor factors first (per-module, collapsed onto the artifact's
    // own mapping), then explicit --drift factors override on top.
    let k = problem.num_tasks();
    let mut deltas = CostDeltas::identity(k);
    if let Some(path) = &doctor_file {
        let doc = match std::fs::read_to_string(path) {
            Ok(t) => match pipemap_obs::Value::parse(&t) {
                Ok(v) => v,
                Err(e) => {
                    eprintln!("cannot parse {path}: {e}");
                    return ExitCode::FAILURE;
                }
            },
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let (service, transport) = match doctor_factors(&doc) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("{path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        deltas =
            pipemap_doctor::stage_deltas(&artifact.solution().mapping, k, &service, &transport);
    }
    match parse_drift(k, &drift_specs) {
        Ok(explicit) => {
            for (i, &g) in explicit.exec().iter().enumerate() {
                if g != 1.0 {
                    deltas.set_exec(i, g);
                }
            }
            for (e, &g) in explicit.icom().iter().enumerate() {
                if g != 1.0 {
                    deltas.set_icom(e, g);
                }
            }
            for (e, &g) in explicit.ecom().iter().enumerate() {
                if g != 1.0 {
                    deltas.set_ecom(e, g);
                }
            }
        }
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    }
    let run = match pipemap_tool::run_resolve_on(&artifact, &deltas) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("resolve failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if json {
        println!(
            "{}",
            resolve_report_json(&problem, &run, &deltas).to_json_pretty()
        );
    } else {
        print!("{}", render_resolve(&problem, &run));
    }
    if run.verified {
        ExitCode::SUCCESS
    } else {
        eprintln!("resolve result does not match the cold solve — this is a bug");
        ExitCode::FAILURE
    }
}

/// Install the global registry and start the flight recorder and metrics
/// server the flags ask for. A journey collector, when given, is exposed
/// at `/journeys.jsonl` so `pipemap doctor --attach` can scrape a live
/// run; an event log and model publisher likewise back `/events.jsonl`
/// and `/model.json` for `pipemap top --attach`. Returns
/// `(flight, server)`.
fn start_observability(
    flags: &ObsFlags,
    journeys: Option<&pipemap_obs::JourneyCollector>,
    events: Option<&pipemap_obs::EventLog>,
    model: Option<&pipemap_obs::ModelPublisher>,
) -> Result<(Option<FlightRecorder>, Option<MetricsServer>), String> {
    if !flags.active() {
        return Ok((None, None));
    }
    pipemap_obs::install_global(pipemap_obs::Registry::new());
    let registry = pipemap_obs::global_registry().expect("registry installed");
    // Sample fast enough that short runs still record a useful timeline.
    let flight = FlightRecorder::start(
        registry,
        RecorderConfig {
            interval: Duration::from_millis(50),
            ..RecorderConfig::default()
        },
    );
    let server = match &flags.serve {
        Some(addr) => {
            let s = pipemap_obs::serve_observatory(
                addr.as_str(),
                registry,
                Some(&flight),
                journeys,
                events,
                model,
            )
            .map_err(|e| format!("cannot serve metrics on {addr}: {e}"))?;
            let mut routes = String::from("/snapshot.json, /recorder.jsonl");
            if journeys.is_some() {
                routes.push_str(", /journeys.jsonl");
            }
            if events.is_some() {
                routes.push_str(", /events.jsonl");
            }
            if model.is_some() {
                routes.push_str(", /model.json");
            }
            eprintln!(
                "serving metrics on http://{}/metrics (also {routes})",
                s.addr()
            );
            Some(s)
        }
        None => None,
    };
    Ok((Some(flight), server))
}

/// Finish an observed run: take a final sample, write the recorder dump,
/// and honour `--hold` before shutting the server down.
fn finish_observability(
    flags: &ObsFlags,
    mut flight: Option<FlightRecorder>,
    server: Option<MetricsServer>,
) -> Result<(), String> {
    if let Some(f) = flight.as_mut() {
        f.stop();
    }
    if let (Some(f), Some(path)) = (flight.as_ref(), flags.recorder_out.as_deref()) {
        std::fs::write(path, f.to_jsonl()).map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!(
            "wrote flight-recorder samples to {path} ({} samples)",
            f.samples().len()
        );
    }
    if let Some(mut s) = server {
        match flags.hold {
            Some(secs) => std::thread::sleep(Duration::from_secs_f64(secs.max(0.0))),
            None => {
                eprintln!("run finished; holding metrics server open (Ctrl-C to exit)");
                loop {
                    std::thread::sleep(Duration::from_secs(3600));
                }
            }
        }
        s.shutdown();
    }
    Ok(())
}

fn cmd_simulate(args: &[String]) -> ExitCode {
    let mut positional = Vec::new();
    let mut datasets = 400usize;
    let mut noise: Option<f64> = None;
    let mut seed = 0x51e5u64;
    let mut report_fmt: Option<String> = None;
    let mut journey_out: Option<String> = None;
    let mut journey_sample = 1u64;
    let mut obs_flags = ObsFlags::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match obs_flags.try_parse(a, &mut it) {
            Ok(true) => continue,
            Ok(false) => {}
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
        match a.as_str() {
            "--datasets" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => datasets = v,
                None => {
                    eprintln!("--datasets needs an integer");
                    return ExitCode::FAILURE;
                }
            },
            "--journey-out" => match it.next() {
                Some(v) => journey_out = Some(v.clone()),
                None => {
                    eprintln!("--journey-out needs a file path");
                    return ExitCode::FAILURE;
                }
            },
            "--journey-sample" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) if v >= 1 => journey_sample = v,
                _ => {
                    eprintln!("--journey-sample needs an integer >= 1");
                    return ExitCode::FAILURE;
                }
            },
            "--noise" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => noise = Some(v),
                None => {
                    eprintln!("--noise needs a spread in [0, 1)");
                    return ExitCode::FAILURE;
                }
            },
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => {
                    eprintln!("--seed needs an integer");
                    return ExitCode::FAILURE;
                }
            },
            "--report" => match it.next() {
                Some(v) => report_fmt = Some(v.clone()),
                None => {
                    eprintln!("--report needs a format (json)");
                    return ExitCode::FAILURE;
                }
            },
            other => positional.push(other.to_string()),
        }
    }
    let json = match report_fmt.as_deref() {
        None => false,
        Some("json") => true,
        Some(other) => {
            eprintln!("unsupported report format '{other}' (only 'json')");
            return ExitCode::FAILURE;
        }
    };
    let [file, mapping_str] = positional.as_slice() else {
        eprintln!("simulate needs: <spec-file> <mapping>\n\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let problem = match parse_spec(&text) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{file}:{e}");
            return ExitCode::FAILURE;
        }
    };
    let mapping = match pipemap_tool::spec::parse_mapping(mapping_str) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("bad mapping: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = pipemap_chain::validate(&problem, &mapping) {
        eprintln!("mapping invalid for this problem: {e}");
        return ExitCode::FAILURE;
    }
    // Journeys are recorded in virtual simulated time; the same doctor
    // pipeline that reads real-executor journeys analyses them.
    let journeys = journey_out.as_ref().map(|_| {
        pipemap_obs::JourneyCollector::new(
            pipemap_obs::JourneyConfig::default().with_sample(journey_sample),
        )
    });
    let (flight, server) = match start_observability(&obs_flags, journeys.as_ref(), None, None) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let analytic = pipemap_chain::throughput(&problem.chain, &mapping);
    let mut cfg = pipemap_sim::SimConfig::with_datasets(datasets);
    if let Some(s) = noise {
        cfg = cfg.with_noise(s, seed);
    }
    if let Some(col) = &journeys {
        cfg = cfg.with_journeys(col.clone());
    }
    let result = pipemap_sim::simulate(&problem.chain, &mapping, &cfg);
    if let (Some(path), Some(col)) = (&journey_out, &journeys) {
        let log = pipemap_doctor::JourneyLog {
            source: "simulate".to_string(),
            sample: col.sample(),
            dropped: col.dropped(),
            model: Some(pipemap_doctor::ModelPrediction::from_chain(
                &problem.chain,
                &mapping,
            )),
            events: col.snapshot(),
        };
        if let Err(e) = std::fs::write(path, log.to_jsonl()) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "wrote {} journey events to {path} (1-in-{} sampling)",
            log.events.len(),
            log.sample
        );
    }
    if json {
        let doc = simulate_report_json(
            file, &problem, &mapping, datasets, noise, seed, analytic, &result,
        );
        println!("{}", doc.to_json_pretty());
    } else {
        println!("mapping  : {}", render_mapping(&problem, &mapping));
        println!("analytic : {analytic:.3} data sets/s");
        println!(
            "simulated: {:.3} data sets/s over {} data sets",
            result.throughput, datasets
        );
        println!(
            "latency  : mean {:.3}s  p50 {:.3}s  p90 {:.3}s  p99 {:.3}s",
            result.latency.mean, result.latency.p50, result.latency.p90, result.latency.p99
        );
        for (i, u) in result.utilization.iter().enumerate() {
            println!("module {i}: utilisation {:.0}%", 100.0 * u);
        }
    }
    if let Err(e) = finish_observability(&obs_flags, flight, server) {
        eprintln!("{e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn builtin_app(name: Option<&str>) -> Option<pipemap_machine::AppWorkload> {
    match name {
        Some("fft-hist-256") => Some(fft_hist(FftHistConfig::n256())),
        Some("fft-hist-512") => Some(fft_hist(FftHistConfig::n512())),
        Some("radar") => Some(radar(RadarConfig::paper())),
        Some("stereo") => Some(stereo(StereoConfig::paper())),
        _ => None,
    }
}

fn cmd_fit(args: &[String]) -> ExitCode {
    let systolic = args.iter().any(|a| a == "--systolic");
    let machine = if systolic {
        MachineConfig::iwarp_systolic()
    } else {
        MachineConfig::iwarp_message()
    };
    let Some(app) = builtin_app(args.first().map(String::as_str)) else {
        eprintln!("unknown app; pick fft-hist-256, fft-hist-512, radar, stereo");
        return ExitCode::FAILURE;
    };
    let truth = pipemap_machine::synthesize_problem(&app, &machine);
    let fitted = pipemap_profile::training::fit_problem(
        &truth,
        &pipemap_profile::TrainingConfig::for_procs(truth.total_procs),
    );
    match pipemap_tool::render_spec(&fitted) {
        Ok(text) => {
            print!("{text}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cannot serialise fitted model: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_demo(args: &[String]) -> ExitCode {
    let mut systolic = false;
    let mut metrics = false;
    let mut trace_out: Option<String> = None;
    let mut name: Option<String> = None;
    let mut obs_flags = ObsFlags::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match obs_flags.try_parse(a, &mut it) {
            Ok(true) => continue,
            Ok(false) => {}
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
        match a.as_str() {
            "--systolic" => systolic = true,
            "--metrics" => metrics = true,
            "--trace-out" => match it.next() {
                Some(v) => trace_out = Some(v.clone()),
                None => {
                    eprintln!("--trace-out needs a file path");
                    return ExitCode::FAILURE;
                }
            },
            other if name.is_none() => name = Some(other.to_string()),
            other => {
                eprintln!("unexpected argument '{other}'");
                return ExitCode::FAILURE;
            }
        }
    }
    let machine = if systolic {
        MachineConfig::iwarp_systolic()
    } else {
        MachineConfig::iwarp_message()
    };
    let Some(app) = builtin_app(name.as_deref()) else {
        eprintln!("unknown demo; pick fft-hist-256, fft-hist-512, radar, stereo");
        return ExitCode::FAILURE;
    };
    if metrics {
        // Capture solver counters and wall-time histograms while the
        // mappers run; snapshotted into the JSON report.
        pipemap_obs::install_global(pipemap_obs::Registry::new());
    }
    let (mut flight, server) = match start_observability(&obs_flags, None, None, None) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let options = MapperOptions::default();
    let report = match auto_map(&app, &machine, &options) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("demo failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Traced re-run of the chosen mapping on the ground-truth costs (same
    // noise seed as the first measurement run) — the run the per-stage
    // metrics and the Chrome trace describe.
    let traced = (metrics || trace_out.is_some()).then(|| {
        let mut cfg = pipemap_sim::SimConfig::with_datasets(options.sim_datasets).with_trace();
        if let Some((s, seed)) = options.measurement_noise {
            cfg = cfg.with_noise(s, seed);
        }
        pipemap_sim::simulate(&report.truth.chain, report.chosen(), &cfg)
    });
    if let Some(path) = &trace_out {
        let trace = traced
            .as_ref()
            .and_then(|r| r.trace.as_ref())
            .expect("trace collected");
        // With a flight recorder running, append its counter tracks
        // (wall-clock timeline) to the simulated-time slices; stop it
        // first so the dump includes a final sample.
        let doc = match flight.as_mut() {
            Some(f) => {
                f.stop();
                let (events, lanes) = pipemap_sim::trace_events(trace);
                pipemap_obs::chrome_trace_with_counters(&events, &lanes, f.counter_track_events())
            }
            None => pipemap_sim::chrome_trace_json(trace),
        };
        if let Err(e) = std::fs::write(path, doc.to_json_pretty()) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "wrote Chrome trace to {path} ({} activities)",
            trace.activities.len()
        );
    }
    if metrics {
        let snapshot = pipemap_obs::global_registry().map(|r| r.snapshot());
        let traced = traced.as_ref().expect("traced run exists");
        println!(
            "{}",
            demo_report_json(&report, traced, snapshot.as_ref()).to_json_pretty()
        );
    } else {
        println!("{}", render_report(&report));
    }
    if let Err(e) = finish_observability(&obs_flags, flight, server) {
        eprintln!("{e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn cmd_load(args: &[String]) -> ExitCode {
    use pipemap_exec::TransportKind;
    use pipemap_tool::{
        load_report_json, parse_duration_s, rate_sweep_json, render_load_summary,
        render_rate_sweep, run_rate_sweep, try_run_configured_load, LoadConfig, Workload,
    };
    let mut cfg = LoadConfig::default();
    let mut duration_set = false;
    let mut reference = false;
    let mut report_fmt: Option<String> = None;
    let mut journey_out: Option<String> = None;
    let mut journey_sample = 1u64;
    let mut sweep: Option<(f64, f64, usize)> = None;
    let mut obs_flags = ObsFlags::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match obs_flags.try_parse(a, &mut it) {
            Ok(true) => continue,
            Ok(false) => {}
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
        macro_rules! numeric {
            ($what:literal) => {
                match it.next().and_then(|v| v.parse().ok()) {
                    Some(v) => v,
                    None => {
                        eprintln!(concat!($what, " needs a number"));
                        return ExitCode::FAILURE;
                    }
                }
            };
        }
        match a.as_str() {
            "--rate" => {
                let Some(v) = it.next() else {
                    eprintln!("--rate needs a rate or a lo:hi:steps ramp");
                    return ExitCode::FAILURE;
                };
                if v.contains(':') {
                    // Ramp syntax: sweep the offered rate lo..hi in steps.
                    let parts: Vec<&str> = v.split(':').collect();
                    let parsed = (parts.len() == 3)
                        .then(|| {
                            Some((
                                parts[0].parse::<f64>().ok()?,
                                parts[1].parse::<f64>().ok()?,
                                parts[2].parse::<usize>().ok()?,
                            ))
                        })
                        .flatten();
                    match parsed {
                        Some((lo, hi, steps)) if lo > 0.0 && hi >= lo && steps >= 2 => {
                            sweep = Some((lo, hi, steps));
                        }
                        _ => {
                            eprintln!(
                                "--rate ramp must be lo:hi:steps with 0 < lo <= hi, steps >= 2"
                            );
                            return ExitCode::FAILURE;
                        }
                    }
                } else {
                    match v.parse::<f64>() {
                        Ok(r) if r > 0.0 && !r.is_nan() => cfg.rate = Some(r),
                        _ => {
                            eprintln!("--rate must be positive");
                            return ExitCode::FAILURE;
                        }
                    }
                }
            }
            "--transport" => match it.next().map(String::as_str).and_then(TransportKind::parse) {
                Some(t) => cfg.transport = t,
                None => {
                    eprintln!("--transport must be 'inproc' or 'uds'");
                    return ExitCode::FAILURE;
                }
            },
            "--admit-rate" => {
                let r: f64 = numeric!("--admit-rate");
                if r <= 0.0 || r.is_nan() {
                    eprintln!("--admit-rate must be positive");
                    return ExitCode::FAILURE;
                }
                cfg.admit_rate = Some(r);
            }
            "--shed-queue" => {
                let q: usize = numeric!("--shed-queue");
                if q == 0 {
                    eprintln!("--shed-queue must be >= 1");
                    return ExitCode::FAILURE;
                }
                cfg.shed_queue = Some(q);
            }
            "--calibration" => {
                let Some(path) = it.next() else {
                    eprintln!("--calibration needs a file path");
                    return ExitCode::FAILURE;
                };
                let cal = std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read {path}: {e}"))
                    .and_then(|t| pipemap_profile::TransportCalibration::parse(&t));
                match cal {
                    Ok(c) => cfg.calibration = Some(c),
                    Err(e) => {
                        eprintln!("{e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--duration" => match it.next().map(String::as_str).and_then(parse_duration_s) {
                Some(v) => {
                    cfg.duration_s = Some(v);
                    duration_set = true;
                }
                None => {
                    eprintln!("--duration needs a duration like 2, 2s, or 250ms");
                    return ExitCode::FAILURE;
                }
            },
            "--datasets" => {
                cfg.datasets = Some(numeric!("--datasets"));
                // A dataset count is a complete stop condition by itself.
                if !duration_set {
                    cfg.duration_s = None;
                }
            }
            "--batch" => cfg.batch = numeric!("--batch"),
            "--flush-us" => cfg.flush_us = numeric!("--flush-us"),
            "--queue-depth" => cfg.queue_depth = numeric!("--queue-depth"),
            "--stages" => cfg.stages = numeric!("--stages"),
            "--size" => cfg.size = numeric!("--size"),
            "--replicas" => cfg.replicas = numeric!("--replicas"),
            "--threads" => cfg.threads = numeric!("--threads"),
            "--no-pool" => cfg.pool = false,
            "--reference" => reference = true,
            "--journey-out" => match it.next() {
                Some(v) => journey_out = Some(v.clone()),
                None => {
                    eprintln!("--journey-out needs a file path");
                    return ExitCode::FAILURE;
                }
            },
            "--journey-sample" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) if v >= 1 => journey_sample = v,
                _ => {
                    eprintln!("--journey-sample needs an integer >= 1");
                    return ExitCode::FAILURE;
                }
            },
            "--report" => match it.next() {
                Some(v) => report_fmt = Some(v.clone()),
                None => {
                    eprintln!("--report needs a format (json)");
                    return ExitCode::FAILURE;
                }
            },
            other => match Workload::parse(other) {
                Some(w) => cfg.workload = w,
                None => {
                    eprintln!("unexpected argument '{other}' (workloads: micro, fft-hist)");
                    return ExitCode::FAILURE;
                }
            },
        }
    }
    if reference {
        cfg = cfg.reference();
    }
    let json = match report_fmt.as_deref() {
        None => false,
        Some("json") => true,
        Some(other) => {
            eprintln!("unsupported report format '{other}' (only 'json')");
            return ExitCode::FAILURE;
        }
    };
    if cfg.batch == 0 || cfg.queue_depth == 0 || cfg.stages == 0 {
        eprintln!("--batch, --queue-depth, and --stages must be >= 1");
        return ExitCode::FAILURE;
    }
    let uds = cfg.transport == TransportKind::Uds;
    if uds && !pipemap_exec::worker_probe() {
        eprintln!("--transport uds: worker binary not reachable (set PIPEMAP_WORKER_BIN)");
        return ExitCode::FAILURE;
    }

    // Ramp mode: sweep the offered rate and report the saturation knee.
    if let Some((lo, hi, steps)) = sweep {
        return match run_rate_sweep(&cfg, lo, hi, steps) {
            Ok(s) => {
                if json {
                    println!("{}", rate_sweep_json(&cfg, &s).to_json_pretty());
                } else {
                    print!("{}", render_rate_sweep(&s));
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        };
    }

    // Journey tracing: hand every worker thread a sampled sink; the
    // collector also backs /journeys.jsonl when --serve is up, so a
    // doctor can attach to the live run — serving implies collecting.
    // A UDS run samples inside the worker *processes* instead (the
    // events come back in the run's stats channel), so no collector.
    let journeys = (!uds && (journey_out.is_some() || obs_flags.serve.is_some())).then(|| {
        pipemap_obs::JourneyCollector::new(
            pipemap_obs::JourneyConfig::default().with_sample(journey_sample),
        )
    });
    cfg.journeys = journeys.clone();
    if uds && (journey_out.is_some() || obs_flags.active()) {
        cfg.journey_sample = journey_sample;
    }
    // An observed UDS run lights up the cross-process telemetry plane:
    // each worker ships metric deltas, /proc resource gauges, and its
    // sampled journey events back over the telemetry socket, aggregated
    // into the global registry under exec.worker.* so /metrics and
    // `pipemap top` see inside the worker processes. The parent-side
    // sink is sample=1: the workers already sampled.
    let telemetry_journeys = (uds && obs_flags.active()).then(|| {
        cfg.telemetry_us = 100_000;
        let col = pipemap_obs::JourneyCollector::new(
            pipemap_obs::JourneyConfig::default().with_sample(1),
        );
        pipemap_exec::install_telemetry_journeys(col.sink());
        col
    });
    // A served run also gets the full observatory surface: SLO/alert
    // events at /events.jsonl and the online-fitted model at /model.json.
    let (events, publisher) = if obs_flags.serve.is_some() {
        (
            Some(pipemap_obs::EventLog::default()),
            Some(pipemap_obs::ModelPublisher::default()),
        )
    } else {
        (None, None)
    };
    cfg.events = events.clone();
    if events.is_some() {
        cfg.slo = Some(pipemap_obs::SloConfig::default());
    }
    let (flight, server) = match start_observability(
        &obs_flags,
        journeys.as_ref().or(telemetry_journeys.as_ref()),
        events.as_ref(),
        publisher.as_ref(),
    ) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    // The online observatory: a background thread polling the journey
    // collector, refitting the per-stage cost estimators, and publishing
    // the fitted model (with residual events) while the load runs.
    let observatory = match (&journeys, &events, &publisher) {
        (Some(j), Some(log), Some(p)) => {
            let stages = match cfg.workload {
                Workload::Micro => cfg.stages.max(1),
                Workload::FftHist => 3,
            };
            let obs = pipemap_tool::Observatory::without_statics(
                stages,
                pipemap_tool::ObservatoryConfig {
                    procs: vec![cfg.threads.max(1); stages],
                    ..pipemap_tool::ObservatoryConfig::default()
                },
                log.clone(),
                p.clone(),
            );
            Some(pipemap_tool::spawn_observatory(
                j.clone(),
                obs,
                Duration::from_millis(250),
            ))
        }
        _ => None,
    };
    let summary = match try_run_configured_load(&cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("load run failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Final ingest+refit so even a short run lands in /model.json before
    // --hold keeps the surface up for scrapers.
    if let Some(h) = observatory {
        h.stop();
    }
    if telemetry_journeys.is_some() {
        pipemap_exec::uninstall_telemetry_journeys();
    }
    // Sampling completeness as a first-class metric: ring overflows on
    // either collector mean the journey timeline under-represents the
    // run, so scrapers (and the doctor) can see how much was lost.
    let journeys_dropped = journeys.as_ref().map_or(0, |c| c.dropped())
        + telemetry_journeys.as_ref().map_or(0, |c| c.dropped());
    pipemap_obs::global().add(pipemap_obs::names::JOURNEY_DROPPED, journeys_dropped);
    if let Some(path) = &journey_out {
        let (sample, events, dropped) = if uds {
            (journey_sample, summary.wire_events.clone(), 0)
        } else if let Some(col) = &journeys {
            (col.sample(), col.snapshot(), col.dropped())
        } else {
            (journey_sample, Vec::new(), 0)
        };
        let log = pipemap_doctor::JourneyLog {
            source: "load".to_string(),
            sample,
            dropped,
            model: pipemap_tool::measured_prediction(&summary),
            events,
        };
        if let Err(e) = std::fs::write(path, log.to_jsonl()) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "wrote {} journey events to {path} (1-in-{} sampling, {} dropped)",
            log.events.len(),
            log.sample,
            dropped
        );
    }
    if json {
        println!("{}", load_report_json(&summary).to_json_pretty());
    } else {
        print!("{}", render_load_summary(&summary));
    }
    if let Err(e) = finish_observability(&obs_flags, flight, server) {
        eprintln!("{e}");
        return ExitCode::FAILURE;
    }
    // A load run that served nothing is a failure — CI's stress smoke
    // relies on this to catch a wedged executor.
    if summary.report.completed == 0 && cfg.datasets != Some(0) {
        eprintln!("load run completed 0 datasets");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn cmd_top(args: &[String]) -> ExitCode {
    use pipemap_tool::{parse_duration_s, run_top, TopConfig};
    let mut cfg = TopConfig::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--attach" => match it.next() {
                Some(v) => cfg.attach = Some(v.clone()),
                None => {
                    eprintln!("--attach needs an address like 127.0.0.1:9184");
                    return ExitCode::FAILURE;
                }
            },
            "--once" => cfg.once = true,
            "--interval" => match it.next().map(String::as_str).and_then(parse_duration_s) {
                Some(v) if v > 0.0 => cfg.interval_s = v,
                _ => {
                    eprintln!("--interval needs a positive duration like 1, 0.5s, or 250ms");
                    return ExitCode::FAILURE;
                }
            },
            "--duration" => match it.next().map(String::as_str).and_then(parse_duration_s) {
                Some(v) if v > 0.0 => cfg.duration_s = v,
                _ => {
                    eprintln!("--duration needs a positive duration like 5, 5s, or 500ms");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unexpected argument '{other}'");
                return ExitCode::FAILURE;
            }
        }
    }
    match run_top(&cfg) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_doctor(args: &[String]) -> ExitCode {
    use pipemap_doctor::{
        diagnose_log_with_margins, publish, render, report_json, DoctorOptions, JourneyLog,
        MarginSpec, ModelPrediction,
    };
    let mut file: Option<String> = None;
    let mut attach: Option<String> = None;
    let mut margins_file: Option<String> = None;
    let mut report_fmt: Option<String> = None;
    let mut model_mode: Option<String> = None;
    let mut fail_on_drift = false;
    let mut spec: Option<String> = None;
    let mut mapping_str: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut opts = DoctorOptions::default();
    let mut obs_flags = ObsFlags::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match obs_flags.try_parse(a, &mut it) {
            Ok(true) => continue,
            Ok(false) => {}
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
        match a.as_str() {
            "--attach" => match it.next() {
                Some(v) => attach = Some(v.clone()),
                None => {
                    eprintln!("--attach needs an address like 127.0.0.1:9184");
                    return ExitCode::FAILURE;
                }
            },
            "--fail-on-drift" => fail_on_drift = true,
            "--margins" => match it.next() {
                Some(v) => margins_file = Some(v.clone()),
                None => {
                    eprintln!("--margins needs a 'pipemap explain --report json' file");
                    return ExitCode::FAILURE;
                }
            },
            "--model" => match it.next() {
                Some(v) => model_mode = Some(v.clone()),
                None => {
                    eprintln!("--model needs a mode (static or online)");
                    return ExitCode::FAILURE;
                }
            },
            "--threshold" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v >= 0.0 && v.is_finite() => opts.margin = v,
                _ => {
                    eprintln!("--threshold needs a non-negative fraction (e.g. 0.1)");
                    return ExitCode::FAILURE;
                }
            },
            "--min-samples" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => opts.min_samples = v,
                None => {
                    eprintln!("--min-samples needs an integer");
                    return ExitCode::FAILURE;
                }
            },
            "--spec" => match it.next() {
                Some(v) => spec = Some(v.clone()),
                None => {
                    eprintln!("--spec needs a spec file");
                    return ExitCode::FAILURE;
                }
            },
            "--mapping" => match it.next() {
                Some(v) => mapping_str = Some(v.clone()),
                None => {
                    eprintln!("--mapping needs a mapping like '0-0:8x3,1-2:10x4'");
                    return ExitCode::FAILURE;
                }
            },
            "--trace-out" => match it.next() {
                Some(v) => trace_out = Some(v.clone()),
                None => {
                    eprintln!("--trace-out needs a file path");
                    return ExitCode::FAILURE;
                }
            },
            "--report" => match it.next() {
                Some(v) => report_fmt = Some(v.clone()),
                None => {
                    eprintln!("--report needs a format (json)");
                    return ExitCode::FAILURE;
                }
            },
            other if file.is_none() && !other.starts_with('-') => file = Some(other.to_string()),
            other => {
                eprintln!("unexpected argument '{other}'");
                return ExitCode::FAILURE;
            }
        }
    }
    let json = match report_fmt.as_deref() {
        None => false,
        Some("json") => true,
        Some(other) => {
            eprintln!("unsupported report format '{other}' (only 'json')");
            return ExitCode::FAILURE;
        }
    };
    let online_mode = match model_mode.as_deref() {
        None | Some("static") => false,
        Some("online") => true,
        Some(other) => {
            eprintln!("unsupported model mode '{other}' (static or online)");
            return ExitCode::FAILURE;
        }
    };
    let text = match (&file, &attach) {
        (Some(path), None) => match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        // Bounded retry with backoff: an endpoint started moments ago
        // (e.g. `load --serve` backgrounded by a script) becomes
        // reachable within the window instead of failing hard.
        (None, Some(addr)) => {
            match pipemap_tool::http_get_retry(
                addr,
                "/journeys.jsonl",
                pipemap_tool::ATTACH_ATTEMPTS,
            ) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        _ => {
            eprintln!("doctor needs exactly one of <journeys.jsonl> or --attach <addr>\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let mut log = match JourneyLog::parse(&text) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("bad journey log: {e}");
            return ExitCode::FAILURE;
        }
    };
    // --spec/--mapping rebuild the prediction from the fitted model
    // instead of trusting the snapshot the producer stamped (e.g. to ask
    // "does this trace fit the spec I *thought* I deployed?").
    match (&spec, &mapping_str) {
        (Some(spec_path), Some(mstr)) => {
            let spec_text = match std::fs::read_to_string(spec_path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot read {spec_path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let problem = match parse_spec(&spec_text) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("{spec_path}:{e}");
                    return ExitCode::FAILURE;
                }
            };
            let mapping = match pipemap_tool::spec::parse_mapping(mstr) {
                Ok(m) => m,
                Err(e) => {
                    eprintln!("bad mapping: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if let Err(e) = pipemap_chain::validate(&problem, &mapping) {
                eprintln!("mapping invalid for this problem: {e}");
                return ExitCode::FAILURE;
            }
            log.model = Some(ModelPrediction::from_chain(&problem.chain, &mapping));
        }
        (None, None) => {}
        _ => {
            eprintln!("--spec and --mapping must be given together");
            return ExitCode::FAILURE;
        }
    }
    // --margins replaces the fixed near-tie threshold with each stage's
    // exact stability interval from a `pipemap explain` report: drift is
    // flagged exactly when a fitted cost escapes the interval within
    // which the deployed mapping is provably still optimal.
    let margin_spec: Option<MarginSpec> = match &margins_file {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match MarginSpec::parse(&text) {
                Ok(s) => Some(s),
                Err(e) => {
                    eprintln!("{path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => None,
    };
    let (flight, server) = match start_observability(&obs_flags, None, None, None) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let report = diagnose_log_with_margins(&log, margin_spec.as_ref(), &opts);
    // --model online: refit the per-stage cost estimators from the
    // journeys themselves (16-dataset half-life, so recent behaviour
    // dominates) and price drift as the fitted-vs-static residual. This
    // localises a mid-stream cost change that the whole-run means the
    // static verdict averages over would dilute.
    let online = if online_mode {
        let cfg = pipemap_profile::OnlineConfig {
            half_life: 16.0,
            ..pipemap_profile::OnlineConfig::default()
        };
        match pipemap_tool::online_drift(&log, cfg, opts.margin) {
            Some(d) => Some(d),
            None => {
                eprintln!("--model online found no service observations in the journeys");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };
    if obs_flags.active() {
        publish(&report, &pipemap_obs::global());
    }
    if let Some(path) = &trace_out {
        let names: Vec<String> = match &log.model {
            Some(m) => m.stages.iter().map(|s| s.name.clone()).collect(),
            None => (0..report.stages.len())
                .map(|i| format!("stage{i}"))
                .collect(),
        };
        let doc = pipemap_obs::chrome_flow_trace(&log.events, &names);
        if let Err(e) = std::fs::write(path, doc.to_json_pretty()) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote journey flow trace to {path}");
    }
    if json {
        let mut doc = report_json(&report);
        if let Some(d) = &online {
            doc.set("online", pipemap_tool::online_drift_json(d));
        }
        println!("{}", doc.to_json_pretty());
    } else {
        print!("{}", render(&report));
        if let Some(d) = &online {
            print!("{}", pipemap_tool::render_online_drift(d));
        }
    }
    if let Err(e) = finish_observability(&obs_flags, flight, server) {
        eprintln!("{e}");
        return ExitCode::FAILURE;
    }
    if report.complete == 0 {
        eprintln!("no complete journeys in the input — nothing to diagnose");
        return ExitCode::FAILURE;
    }
    let online_drifted = online.as_ref().is_some_and(|d| d.drifted.is_some());
    if fail_on_drift && (report.drift == Some(true) || online_drifted) {
        eprintln!("drift detected (exit forced by --fail-on-drift)");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn read_bench_file(path: &str) -> Result<pipemap_obs::Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    pipemap_obs::Value::parse(&text).map_err(|e| format!("{path}: invalid JSON: {e:?}"))
}

fn cmd_bench(args: &[String]) -> ExitCode {
    let mut quick = false;
    let mut out: Option<String> = None;
    let mut baseline: Option<String> = None;
    let mut against: Option<String> = None;
    let mut threshold: Option<f64> = None;
    let mut warn_only = false;
    let mut validate: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--warn-only" => warn_only = true,
            "--out" => match it.next() {
                Some(v) => out = Some(v.clone()),
                None => {
                    eprintln!("--out needs a file path");
                    return ExitCode::FAILURE;
                }
            },
            "--compare" => match it.next() {
                Some(v) => baseline = Some(v.clone()),
                None => {
                    eprintln!("--compare needs a baseline bench file");
                    return ExitCode::FAILURE;
                }
            },
            "--against" => match it.next() {
                Some(v) => against = Some(v.clone()),
                None => {
                    eprintln!("--against needs a bench file");
                    return ExitCode::FAILURE;
                }
            },
            "--threshold" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v > 0.0 => threshold = Some(v),
                _ => {
                    eprintln!("--threshold needs a positive fraction (e.g. 0.3)");
                    return ExitCode::FAILURE;
                }
            },
            "--validate" => match it.next() {
                Some(v) => validate = Some(v.clone()),
                None => {
                    eprintln!("--validate needs a bench file");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unexpected argument '{other}'");
                return ExitCode::FAILURE;
            }
        }
    }

    // Pure validation mode: no suite run.
    if let Some(path) = &validate {
        let doc = match read_bench_file(path) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        return match validate_bench(&doc) {
            Ok(()) => {
                println!("{path}: valid {}", pipemap_tool::BENCH_SCHEMA);
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{path}: {e}");
                ExitCode::FAILURE
            }
        };
    }

    // Current document: a file (--against) or a fresh suite run.
    let current = match &against {
        Some(path) => match read_bench_file(path) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        },
        None => {
            eprintln!(
                "running bench suite{} ...",
                if quick { " (quick)" } else { "" }
            );
            let doc = run_bench_suite(&BenchOptions { quick });
            let path = out
                .clone()
                .unwrap_or_else(|| format!("BENCH_{}.json", git_sha()));
            if let Err(e) = std::fs::write(&path, doc.to_json_pretty() + "\n") {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {path}");
            doc
        }
    };

    let Some(baseline_path) = &baseline else {
        // No comparison asked for: print the metric values.
        if let Some(metrics) = current.get("metrics").and_then(|m| m.as_object()) {
            for (name, m) in metrics {
                let v = m.get("value").and_then(pipemap_obs::Value::as_f64);
                let unit = m
                    .get("unit")
                    .and_then(pipemap_obs::Value::as_str)
                    .unwrap_or("");
                println!("{name} = {} {unit}", v.unwrap_or(f64::NAN));
            }
        }
        return ExitCode::SUCCESS;
    };
    let base = match read_bench_file(baseline_path) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    match compare_bench(&current, &base, threshold) {
        Ok(result) => {
            print!("{}", result.render());
            let regressions = result.regressions();
            if regressions.is_empty() {
                ExitCode::SUCCESS
            } else if warn_only {
                eprintln!("warn-only: ignoring {} regression(s)", regressions.len());
                ExitCode::SUCCESS
            } else {
                // Each line names the unit and both values, so the
                // failure is diagnosable from CI output alone.
                eprintln!("perf regression in {} metric(s):", regressions.len());
                for line in result.regression_details() {
                    eprintln!("  {line}");
                }
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
