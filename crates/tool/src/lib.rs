//! # pipemap-tool
//!
//! The end-to-end automatic mapping tool — the role the paper's
//! implementation plays inside the Fx compiler (§6). One call to
//! [`auto_map`] runs the whole methodology:
//!
//! 1. **profile**: time the application's tasks and communication steps on
//!    a small training set of executions (on the machine model);
//! 2. **fit**: derive the §5 polynomial cost models by least squares and
//!    check their accuracy against ground truth;
//! 3. **map**: run the optimal DP mapper and the fast greedy heuristic on
//!    the fitted models, and compare them;
//! 4. **constrain**: find the best mapping that satisfies the machine's
//!    rectangular-subarray (and systolic pathway) constraints;
//! 5. **measure**: execute the chosen mappings in the pipeline simulator
//!    on the *ground-truth* costs, with noise, producing the numbers a
//!    real run would give.
//!
//! [`render`] turns the results into the paper's table rows and the
//! Figure 6-style array diagram.

pub mod bench;
pub mod explain;
pub mod load;
pub mod mapper;
pub mod markdown;
pub mod observatory;
pub mod render;
pub mod report;
pub mod resolve;
pub mod sensitivity;
pub mod spec;
pub mod top;

pub use bench::{
    compare_bench, git_sha, run_bench_suite, validate_bench, BenchOptions, CompareResult,
    BENCH_SCHEMA,
};
pub use explain::{
    explain, explain_json, explain_trace_json, render_explanation, ExplainOptions, Explanation,
    EXPLAIN_SCHEMA,
};
pub use load::{
    load_report_json, measured_prediction, parse_duration_s, rate_sweep_json, render_load_summary,
    render_rate_sweep, run_configured_load, run_rate_sweep, try_run_configured_load, wire_plan_for,
    LoadConfig, LoadSummary, RateSweep, SweepPoint, Workload, KNEE_KEEPUP,
};
pub use mapper::{auto_map, MapperOptions, MappingReport};
pub use markdown::{report_markdown, table2_header, table2_row};
pub use observatory::{
    online_drift, online_drift_json, render_online_drift, spawn_observatory, Observatory,
    ObservatoryConfig, ObservatoryHandle, OnlineDrift, OnlineStageDrift, MODEL_SCHEMA,
};
pub use render::{render_mapping, render_placement, render_report};
pub use report::{
    demo_report_json, map_report_json, mapping_json, simulate_report_json, stage_metrics_json,
};
pub use resolve::{
    doctor_factors, parse_drift, render_resolve, resolve_report_json, run_resolve, run_resolve_on,
    ResolveRun, RESOLVE_SCHEMA,
};
pub use sensitivity::{perturb_problem, robustness, Robustness};
pub use spec::{parse_mapping, parse_spec, render_spec, SpecError};
pub use top::{
    http_get, http_get_retry, parse_frame, render_frame, run_top, sparkline, Frame, StageGauge,
    TopConfig, TopState, ATTACH_ATTEMPTS,
};
