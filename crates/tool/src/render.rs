//! Text rendering of mappings and reports.

use pipemap_chain::{Mapping, Problem};
use pipemap_machine::pack::render_packing;
use pipemap_machine::{is_feasible, Feasibility, MachineConfig};

use crate::mapper::MappingReport;

/// One-line description of a mapping: `[a+b: 8 x 3p | c: 10 x 4p]`.
pub fn render_mapping(problem: &Problem, mapping: &Mapping) -> String {
    let parts: Vec<String> = mapping
        .modules
        .iter()
        .map(|m| {
            let names: Vec<&str> = (m.first..=m.last)
                .map(|i| problem.chain.task(i).name.as_str())
                .collect();
            format!("{}: {} x {}p", names.join("+"), m.replicas, m.procs)
        })
        .collect();
    format!("[{}]", parts.join(" | "))
}

/// Figure 6-style diagram: the mapping's instances placed on the
/// processor array (letters label instances; `.` is an idle processor).
/// Returns a message instead when the mapping cannot be placed.
pub fn render_placement(machine: &MachineConfig, mapping: &Mapping) -> String {
    match is_feasible(machine, mapping) {
        Feasibility::Feasible(placements) => {
            render_packing(machine.rows, machine.cols, &placements)
        }
        Feasibility::Infeasible(reason) => format!("(not placeable: {reason})"),
    }
}

/// Multi-line human-readable report of one [`auto_map`] run.
///
/// [`auto_map`]: crate::mapper::auto_map
pub fn render_report(report: &MappingReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "=== {} on {}x{} ({}) ===\n",
        report.app,
        report.machine.rows,
        report.machine.cols,
        report.machine.mode.label()
    ));
    out.push_str(&format!(
        "model fit: mean err {:.1}%, max err {:.1}% over {} points\n",
        report.fit_accuracy.mean_rel_error * 100.0,
        report.fit_accuracy.max_rel_error * 100.0,
        report.fit_accuracy.points
    ));
    if let Some(opt) = &report.optimal {
        out.push_str(&format!(
            "optimal (DP):   {}  -> {:.2}/s (model)\n",
            render_mapping(&report.fitted, &opt.mapping),
            opt.throughput
        ));
    }
    out.push_str(&format!(
        "greedy:         {}  -> {:.2}/s (model)\n",
        render_mapping(&report.fitted, &report.greedy.mapping),
        report.greedy.throughput
    ));
    if let Some((m, thr)) = &report.feasible {
        out.push_str(&format!(
            "feasible:       {}  -> {:.2}/s (model)\n",
            render_mapping(&report.fitted, m),
            thr
        ));
    }
    out.push_str(&format!(
        "predicted {:.2}/s, measured {:.2}/s ({:+.2}%), data-parallel {:.2}/s (ratio {:.2})\n",
        report.predicted_throughput,
        report.measured.throughput,
        report.percent_difference(),
        report.data_parallel.throughput,
        report.optimal_over_data_parallel()
    ));
    out.push_str("placement:\n");
    out.push_str(&render_placement(&report.machine, report.chosen()));
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipemap_chain::{ChainBuilder, ModuleAssignment, Task};
    use pipemap_model::PolyUnary;

    fn problem() -> Problem {
        let c = ChainBuilder::new()
            .task(Task::new("a", PolyUnary::perfectly_parallel(1.0)))
            .edge(pipemap_chain::Edge::free())
            .task(Task::new("b", PolyUnary::perfectly_parallel(1.0)))
            .build();
        Problem::new(c, 16, 1e9)
    }

    #[test]
    fn mapping_renders_names_and_counts() {
        let p = problem();
        let m = Mapping::new(vec![
            ModuleAssignment::new(0, 0, 2, 3),
            ModuleAssignment::new(1, 1, 1, 8),
        ]);
        let s = render_mapping(&p, &m);
        assert_eq!(s, "[a: 2 x 3p | b: 1 x 8p]");
        let merged = Mapping::new(vec![ModuleAssignment::new(0, 1, 4, 4)]);
        assert_eq!(render_mapping(&p, &merged), "[a+b: 4 x 4p]");
    }

    #[test]
    fn placement_renders_grid_or_reason() {
        let machine = MachineConfig::iwarp_message().with_geometry(4, 4);
        let m = Mapping::new(vec![
            ModuleAssignment::new(0, 0, 2, 4),
            ModuleAssignment::new(1, 1, 1, 8),
        ]);
        let s = render_placement(&machine, &m);
        assert!(s.contains('A'), "grid should show instances: {s}");
        let too_big = Mapping::new(vec![ModuleAssignment::new(0, 1, 1, 99)]);
        let s = render_placement(&machine, &too_big);
        assert!(s.contains("not placeable"));
    }
}
