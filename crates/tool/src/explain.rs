//! `pipemap explain` — why did the solver pick this mapping, and how far
//! can reality drift before the choice is wrong?
//!
//! One [`explain`] call runs the DP with decision provenance (the winning
//! path with exact runner-up alternatives), derives the mapping's exact
//! stability margins (the multiplicative drift factor each stage's fitted
//! execution / transfer cost tolerates before the argmin flips — from the
//! value tables, no sampling), and runs a second, *pruned* solve whose
//! per-stage cell statistics become the pruning heatmap. The result
//! renders three ways: an ANSI table ([`render_explanation`]), the
//! `pipemap-explain/v1` JSON document ([`explain_json`]) that
//! `pipemap doctor --margins` and the observatory consume, and a Chrome
//! trace of the decision path ([`explain_trace_json`]).
//!
//! `--robustness` cross-checks the exact analysis with the §6.4
//! Monte-Carlo study ([`crate::sensitivity::robustness`]): perturb every
//! fitted cost, re-solve, measure regret. The exact margins bound what a
//! *single* cost may do; the sampled regret prices simultaneous drift.

use pipemap_chain::Problem;
use pipemap_core::{
    dp_assignment_provenance_on, dp_assignment_pruned_stats_on, dp_mapping_provenance_ctx,
    dp_mapping_pruned_stats_ctx, stability_margins, MarginReport, Provenance, Solution, SolveCtx,
    SolveError, SolveOptions, StageCells,
};
use pipemap_obs::Value;

use crate::sensitivity::{robustness, Robustness};

/// Schema identifier stamped into `--report json` output.
pub const EXPLAIN_SCHEMA: &str = pipemap_obs::schema::EXPLAIN;

/// How [`explain`] runs.
#[derive(Clone, Copy, Debug)]
pub struct ExplainOptions {
    /// Explain the full clustering DP (`dp_mapping`). `false` explains
    /// the task-per-module assignment DP instead.
    pub cluster: bool,
    /// Monte-Carlo robustness trials to run alongside the exact margins
    /// (`None` skips the study).
    pub robustness_trials: Option<usize>,
    /// Relative spread of the per-cost perturbation factors in the
    /// robustness study.
    pub spread: f64,
    /// Seed of the robustness study's noise stream.
    pub seed: u64,
}

impl Default for ExplainOptions {
    fn default() -> Self {
        Self {
            cluster: true,
            robustness_trials: None,
            spread: 0.10,
            seed: 0x5eed,
        }
    }
}

/// Everything `pipemap explain` knows about one solve.
#[derive(Clone, Debug)]
pub struct Explanation {
    /// Which solver ran (`"dp_assignment"` or `"dp_mapping"`).
    pub algorithm: &'static str,
    /// The optimal solution being explained.
    pub solution: Solution,
    /// The winning DP path with exact runner-up alternatives (unpruned
    /// solve).
    pub provenance: Provenance,
    /// Exact per-stage stability margins of the chosen mapping.
    pub margins: MarginReport,
    /// Pipeline throughput gained if the stage's cost vanished — nonzero
    /// only at the unique bottleneck, where it reads "what the next
    /// binding stage would allow". One entry per module.
    pub marginal_thr: Vec<f64>,
    /// Per-stage cell statistics of the *pruned* production solve (the
    /// heatmap's "what pruning skipped"); same stage order as the
    /// provenance's unpruned statistics.
    pub pruned_cells: Vec<StageCells>,
    /// The Monte-Carlo robustness study, when asked for.
    pub robustness: Option<Robustness>,
    /// Spread the study ran at.
    pub spread: f64,
}

/// Pipeline throughput with stage `i` removed from the bottleneck max,
/// minus the actual throughput: the marginal gain of making stage `i`
/// free. Zero everywhere except at a unique bottleneck.
fn marginal_gains(margins: &MarginReport) -> Vec<f64> {
    let n = margins.stages.len();
    (0..n)
        .map(|i| {
            let rest = margins
                .stages
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, s)| s.effective_s)
                .fold(0.0f64, f64::max);
            let without = if rest > 0.0 {
                1.0 / rest
            } else {
                f64::INFINITY
            };
            let gain = without - margins.throughput;
            if gain.is_finite() {
                gain.max(0.0)
            } else {
                f64::INFINITY
            }
        })
        .collect()
}

/// Solve `problem` with full decision provenance and derive the chosen
/// mapping's exact stability margins, plus the pruned solve's cell
/// statistics for the heatmap. Publishes per-stage
/// `solver.margin.stage<i>.exec_up` / `.ecom_in_up` gauges (and, via the
/// margin engine itself, `solver.margin.min_exec_up`) to the global
/// recorder.
pub fn explain(problem: &Problem, opts: &ExplainOptions) -> Result<Explanation, SolveError> {
    let solve = SolveOptions::default();
    // One context for both solves: the cost table is evaluated once and
    // the cluster DP's suffix bounds are computed once and shared between
    // the provenance (unpruned) and heatmap (pruned) runs.
    let ctx = SolveCtx::new(problem);
    let (algorithm, solution, provenance) = if opts.cluster {
        let (s, p) = dp_mapping_provenance_ctx(problem, &ctx, &solve)?;
        ("dp_mapping", s, p)
    } else {
        let (s, _, p) = dp_assignment_provenance_on(problem, ctx.table(), &solve)?;
        ("dp_assignment", s, p)
    };
    let pruned_cells = if opts.cluster {
        dp_mapping_pruned_stats_ctx(problem, &ctx, &solve)?
    } else {
        dp_assignment_pruned_stats_on(problem, ctx.table(), &solve)?
    };
    let margins = stability_margins(problem, &solution.mapping)?;
    let rec = pipemap_obs::global();
    for s in &margins.stages {
        if s.exec_up.is_finite() {
            rec.gauge_set(
                &format!("solver.margin.stage{}.exec_up", s.index),
                s.exec_up,
            );
        }
        if s.ecom_in_up.is_finite() {
            rec.gauge_set(
                &format!("solver.margin.stage{}.ecom_in_up", s.index),
                s.ecom_in_up,
            );
        }
    }
    let marginal_thr = marginal_gains(&margins);
    let robustness = match opts.robustness_trials {
        Some(trials) => Some(robustness(
            problem,
            &solution.mapping,
            opts.spread,
            trials.max(1),
            opts.seed,
        )?),
        None => None,
    };
    Ok(Explanation {
        algorithm,
        solution,
        provenance,
        margins,
        marginal_thr,
        pruned_cells,
        robustness,
        spread: opts.spread,
    })
}

/// The task-name label of one module (`a+b`).
fn module_label(problem: &Problem, first: usize, last: usize) -> String {
    (first..=last)
        .map(|i| problem.chain.task(i).name.as_str())
        .collect::<Vec<_>>()
        .join("+")
}

fn fmt_factor(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else if v > 0.0 {
        "inf".to_string()
    } else {
        "-inf".to_string()
    }
}

/// The `pipemap-explain/v1` JSON document: throughput, mapping, and one
/// entry per stage carrying the chosen configuration, the exact margins
/// (`null` = no drift ever flips the mapping in that direction), the
/// runner-up alternative, the marginal throughput contribution, and both
/// solves' cell statistics. This is the file `pipemap doctor --margins`
/// and the live observatory consume.
pub fn explain_json(source: &str, problem: &Problem, ex: &Explanation) -> Value {
    let mut doc = Value::object();
    doc.set("schema", EXPLAIN_SCHEMA);
    doc.set("source", source);
    doc.set("algorithm", ex.algorithm);
    doc.set("throughput", ex.solution.throughput);
    doc.set("bottleneck", ex.margins.bottleneck);
    doc.set("min_exec_up", ex.margins.min_exec_up());
    doc.set(
        "mapping",
        crate::report::mapping_json(problem, &ex.solution.mapping),
    );
    let stages: Vec<Value> = ex
        .margins
        .stages
        .iter()
        .map(|s| {
            let mut st = Value::object();
            st.set("index", s.index);
            st.set("tasks", module_label(problem, s.first, s.last));
            st.set("first", s.first);
            st.set("last", s.last);
            st.set("offer", s.offer);
            st.set("instances", s.instances);
            st.set("instance_procs", s.instance_procs);
            st.set("response_s", s.response_s);
            st.set("effective_s", s.effective_s);
            st.set("slack", s.slack);
            st.set(
                "marginal_thr",
                ex.marginal_thr.get(s.index).copied().unwrap_or(0.0),
            );
            // Non-finite margins serialise as null by Value's convention.
            let mut m = Value::object();
            m.set("exec_up", s.exec_up);
            m.set("exec_down", s.exec_down);
            m.set("ecom_in_up", s.ecom_in_up);
            m.set("ecom_in_down", s.ecom_in_down);
            st.set("margins", m);
            if let Some(offer) = s.flip_offer {
                st.set("flip_offer", offer);
            }
            if let Some(cell) = ex.provenance.cells.get(s.index) {
                let mut c = Value::object();
                c.set("value", cell.value);
                c.set("exec_s", cell.exec_s);
                c.set("ecom_in_s", cell.ecom_in_s);
                c.set("ecom_out_s", cell.ecom_out_s);
                c.set("budget", cell.budget);
                st.set("chosen", c);
                if let Some(r) = &cell.runner_up {
                    let mut ru = Value::object();
                    ru.set("prev_len", r.prev_len);
                    ru.set("prev_procs", r.prev_procs);
                    ru.set("value", r.value);
                    st.set("runner_up", ru);
                }
            }
            st
        })
        .collect();
    doc.set("stages", Value::Array(stages));
    doc.set(
        "cells",
        cells_json(&ex.provenance.stage_cells, &ex.pruned_cells),
    );
    if let Some(r) = &ex.robustness {
        let mut o = Value::object();
        o.set("trials", r.trials);
        o.set("spread", ex.spread);
        o.set("regret_mean", r.regret.mean);
        o.set("regret_max", r.regret.max);
        o.set("clustering_changes", r.clustering_changes);
        doc.set("robustness", o);
    }
    doc
}

/// The pruning heatmap rows: the unpruned (exact) and pruned (production)
/// solves' per-stage cell statistics side by side.
fn cells_json(unpruned: &[StageCells], pruned: &[StageCells]) -> Value {
    let rows: Vec<Value> = unpruned
        .iter()
        .enumerate()
        .map(|(i, u)| {
            let mut o = Value::object();
            o.set("stage", u.stage);
            o.set("cells", u.cells);
            o.set("lookups", u.lookups);
            if let Some(p) = pruned.get(i) {
                o.set("pruned_cells", p.cells);
                o.set("pruned", p.pruned);
                o.set("pruned_lookups", p.lookups);
                o.set("skips", p.skips);
            }
            o
        })
        .collect();
    Value::Array(rows)
}

/// Multi-line human-readable explanation: the winning path with margins,
/// marginal contributions, runner-ups, the pruning heatmap, and (when
/// run) the Monte-Carlo cross-check.
pub fn render_explanation(problem: &Problem, ex: &Explanation) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{}: {}  -> {:.3} data sets/s (bottleneck: stage {})\n",
        ex.algorithm,
        crate::render::render_mapping(problem, &ex.solution.mapping),
        ex.solution.throughput,
        ex.margins.bottleneck
    ));
    out.push_str(
        "stage  tasks             cfg       eff s      slack  marginal/s  \
         exec margin        ecom-in margin     runner-up\n",
    );
    for s in &ex.margins.stages {
        let runner = ex
            .provenance
            .cells
            .get(s.index)
            .and_then(|c| c.runner_up.as_ref())
            .map(|r| format!("{}t x {}p @ {:.3}/s", r.prev_len, r.prev_procs, r.value))
            .unwrap_or_else(|| "-".to_string());
        let marginal = ex.marginal_thr.get(s.index).copied().unwrap_or(0.0);
        out.push_str(&format!(
            "{:<6} {:<16}  {:<8}  {:<9.4}  {:>5.2}  {:>10.3}  ({}, {})  ({}, {})  {}\n",
            s.index,
            module_label(problem, s.first, s.last),
            format!("{}x{}p", s.instances, s.instance_procs),
            s.effective_s,
            s.slack,
            marginal,
            fmt_factor(s.exec_down),
            fmt_factor(s.exec_up),
            fmt_factor(s.ecom_in_down),
            fmt_factor(s.ecom_in_up),
            runner,
        ));
    }
    let min_up = ex.margins.min_exec_up();
    if min_up.is_finite() {
        out.push_str(&format!(
            "tightest margin: any stage's execution cost growing {:.1}% flips the optimum\n",
            (min_up - 1.0) * 100.0
        ));
    } else {
        out.push_str("tightest margin: no single execution drift ever flips the optimum\n");
    }
    out.push_str(&render_heatmap(
        &ex.provenance.stage_cells,
        &ex.pruned_cells,
    ));
    if let Some(r) = &ex.robustness {
        out.push_str(&format!(
            "robustness (±{:.0}% on every cost, {} trials): regret mean {:.2}% max {:.2}%, \
             clustering changed in {}/{}\n",
            ex.spread * 100.0,
            r.trials,
            r.regret.mean * 100.0,
            r.regret.max * 100.0,
            r.clustering_changes,
            r.trials,
        ));
        out.push_str(
            "  (exact margins bound single-cost drift; the sampled regret prices \
             simultaneous drift of every cost)\n",
        );
    }
    out
}

/// The pruning heatmap: per stage, how much of the exact scan the pruned
/// production solve skipped (bar = skipped fraction of value lookups).
fn render_heatmap(unpruned: &[StageCells], pruned: &[StageCells]) -> String {
    if unpruned.is_empty() {
        return String::new();
    }
    let mut out = String::from("pruning heatmap (exact scan vs production solve):\n");
    for (i, u) in unpruned.iter().enumerate() {
        let Some(p) = pruned.get(i) else { continue };
        let saved = if u.lookups > 0 {
            1.0 - (p.lookups.min(u.lookups) as f64 / u.lookups as f64)
        } else {
            0.0
        };
        let bar: String = std::iter::repeat_n('█', (saved * 20.0).round() as usize).collect();
        out.push_str(&format!(
            "  stage {:<3} {:>9} lookups -> {:>9} ({:>5.1}% skipped, {} cells pruned) {}\n",
            u.stage,
            u.lookups,
            p.lookups,
            saved * 100.0,
            p.pruned,
            bar
        ));
    }
    out
}

/// The decision path as a Chrome trace (open in Perfetto or
/// `chrome://tracing`): one span per stage on a virtual per-data-set
/// timeline — `ts` is the cumulative response time into the pipeline,
/// `dur` the stage's own response — with the margins, slack, and chosen
/// configuration in `args`.
pub fn explain_trace_json(problem: &Problem, ex: &Explanation) -> Value {
    let mut events = Vec::new();
    let mut t_us = 0.0f64;
    for s in &ex.margins.stages {
        let mut args = Value::object();
        args.set("instances", s.instances);
        args.set("instance_procs", s.instance_procs);
        args.set("slack", s.slack);
        args.set("exec_up", s.exec_up);
        args.set("exec_down", s.exec_down);
        args.set("ecom_in_up", s.ecom_in_up);
        args.set("ecom_in_down", s.ecom_in_down);
        args.set(
            "marginal_thr",
            ex.marginal_thr.get(s.index).copied().unwrap_or(0.0),
        );
        let dur_us = (s.response_s * 1e6).max(1.0);
        let mut e = Value::object();
        e.set("name", module_label(problem, s.first, s.last));
        e.set("cat", "decision");
        e.set("ph", "X");
        e.set("ts", t_us);
        e.set("dur", dur_us);
        e.set("pid", 0u64);
        e.set("tid", s.index);
        e.set("args", args);
        events.push(e);
        t_us += dur_us;
    }
    let mut doc = Value::object();
    doc.set("traceEvents", Value::Array(events));
    doc.set("displayTimeUnit", "ms");
    doc
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipemap_chain::{ChainBuilder, Edge, Task};
    use pipemap_doctor::MarginSpec;
    use pipemap_model::{PolyEcom, PolyUnary};

    /// A chain whose optimum has real, finite margins: both tasks keep
    /// state (not replicable), so the 12 processors must genuinely split
    /// between two parallel stages and a modest drift re-balances them.
    fn problem() -> Problem {
        let chain = ChainBuilder::new()
            .task(Task::new("front", PolyUnary::new(0.0, 5.0, 0.02)).not_replicable())
            .edge(Edge::new(
                PolyUnary::new(0.0, 0.05, 0.0),
                PolyEcom::new(0.02, 0.3, 0.3, 0.01, 0.01),
            ))
            .task(Task::new("back", PolyUnary::new(0.05, 3.0, 0.02)).not_replicable())
            .build();
        Problem::new(chain, 12, 1e12)
    }

    #[test]
    fn explain_produces_margins_runner_ups_and_heatmap() {
        let p = problem();
        let ex = explain(&p, &ExplainOptions::default()).expect("solves");
        assert_eq!(ex.algorithm, "dp_mapping");
        assert_eq!(ex.margins.stages.len(), ex.solution.mapping.modules.len());
        assert_eq!(ex.marginal_thr.len(), ex.margins.stages.len());
        // The bottleneck has slack 1 and carries the marginal gain.
        let b = ex.margins.bottleneck;
        assert!((ex.margins.stages[b].slack - 1.0).abs() < 1e-9);
        if ex.margins.stages.len() > 1 {
            assert!(ex.marginal_thr[b] > 0.0, "{:?}", ex.marginal_thr);
        }
        // Both solves produced per-stage statistics in the same order.
        assert_eq!(ex.provenance.stage_cells.len(), ex.pruned_cells.len());
        let text = render_explanation(&p, &ex);
        assert!(text.contains("exec margin"), "{text}");
        assert!(text.contains("pruning heatmap"), "{text}");
        assert!(text.contains("front"), "{text}");
    }

    #[test]
    fn explain_json_round_trips_through_the_doctor_margin_parser() {
        let p = problem();
        let ex = explain(&p, &ExplainOptions::default()).expect("solves");
        let doc = explain_json("test.spec", &p, &ex);
        assert_eq!(
            doc.get("schema").and_then(Value::as_str),
            Some(EXPLAIN_SCHEMA)
        );
        let text = doc.to_json_pretty();
        let spec = MarginSpec::parse(&text).expect("doctor parses explain output");
        assert_eq!(spec.stages.len(), ex.margins.stages.len());
        for (ms, s) in spec.stages.iter().zip(&ex.margins.stages) {
            assert_eq!(ms.stage, s.index);
            // Infinities survive the null round-trip.
            assert_eq!(ms.exec_up.is_finite(), s.exec_up.is_finite());
            if s.exec_up.is_finite() {
                assert!((ms.exec_up - s.exec_up).abs() < 1e-12);
            }
            assert!((ms.exec_down - s.exec_down).abs() < 1e-12);
        }
    }

    #[test]
    fn assignment_mode_and_trace_export() {
        let p = problem();
        let ex = explain(
            &p,
            &ExplainOptions {
                cluster: false,
                ..ExplainOptions::default()
            },
        )
        .expect("solves");
        assert_eq!(ex.algorithm, "dp_assignment");
        assert_eq!(ex.margins.stages.len(), p.num_tasks());
        let trace = explain_trace_json(&p, &ex);
        let events = trace.get("traceEvents").and_then(Value::as_array).unwrap();
        assert_eq!(events.len(), p.num_tasks());
        assert_eq!(events[0].get("ph").and_then(Value::as_str), Some("X"));
        // Spans tile the virtual timeline.
        let ts1 = events[1].get("ts").and_then(Value::as_f64).unwrap();
        let d0 = events[0].get("dur").and_then(Value::as_f64).unwrap();
        assert!((ts1 - d0).abs() < 1e-9);
    }

    #[test]
    fn robustness_cross_checks_the_exact_margins() {
        let p = problem();
        // Spread 0: every trial reproduces the fitted model exactly, so
        // the Monte-Carlo regret must agree with the exact statement
        // that the mapping is optimal at gamma = 1.
        let ex = explain(
            &p,
            &ExplainOptions {
                robustness_trials: Some(4),
                spread: 0.0,
                ..ExplainOptions::default()
            },
        )
        .expect("solves");
        let r = ex.robustness.as_ref().expect("study ran");
        assert!(r.regret.max < 1e-9, "{:?}", r.regret);
        let text = render_explanation(&p, &ex);
        assert!(text.contains("robustness"), "{text}");
        let doc = explain_json("test.spec", &p, &ex);
        assert!(doc.get("robustness").is_some());

        // A spread far beyond the tightest margin must shift the optimum
        // in some trials — the sampled study agrees with the exact
        // analysis that such drift is *outside* the stability region.
        let tight = explain(
            &p,
            &ExplainOptions {
                robustness_trials: Some(16),
                spread: 0.9,
                ..ExplainOptions::default()
            },
        )
        .expect("solves");
        let min_up = tight.margins.min_exec_up();
        assert!(
            min_up.is_finite() && min_up < 1.9,
            "test premise: a ±90% spread escapes the margins (min_up {min_up})"
        );
        let r = tight.robustness.as_ref().expect("study ran");
        assert!(
            r.regret.max > 0.0 || r.clustering_changes > 0,
            "±90% drift should cost something: {r:?}"
        );
    }
}
