//! Markdown rendering of mapping reports — for CI artifacts and
//! EXPERIMENTS.md-style records.

use crate::mapper::MappingReport;
use crate::render::render_mapping;

/// Escape the characters markdown tables care about.
fn cell(s: impl AsRef<str>) -> String {
    s.as_ref().replace('|', "\\|")
}

/// A markdown table row for one report, matching [`table2_header`].
pub fn table2_row(report: &MappingReport) -> String {
    format!(
        "| {} | {} | {:.2} | {:.2} | {:+.2}% | {:.2} | {:.2} |",
        cell(&report.app),
        report.machine.mode.label(),
        report.predicted_throughput,
        report.measured.throughput,
        report.percent_difference(),
        report.data_parallel.throughput,
        report.optimal_over_data_parallel(),
    )
}

/// Header lines for a Table-2-style markdown table.
pub fn table2_header() -> String {
    "| program | comm | predicted/s | measured/s | diff | data-parallel/s | ratio |\n\
     |---|---|---|---|---|---|---|"
        .to_string()
}

/// A full markdown section for one report: summary line, mapping lines,
/// and the fit diagnostics.
pub fn report_markdown(report: &MappingReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "### {} — {}×{} ({})\n\n",
        cell(&report.app),
        report.machine.rows,
        report.machine.cols,
        report.machine.mode.label()
    ));
    out.push_str(&format!(
        "* model fit: mean {:.1}% / max {:.1}% over {} points\n",
        100.0 * report.fit_accuracy.mean_rel_error,
        100.0 * report.fit_accuracy.max_rel_error,
        report.fit_accuracy.points
    ));
    if let Some(opt) = &report.optimal {
        out.push_str(&format!(
            "* optimal (DP): `{}` → {:.2}/s\n",
            render_mapping(&report.fitted, &opt.mapping),
            opt.throughput
        ));
    }
    out.push_str(&format!(
        "* greedy: `{}` → {:.2}/s\n",
        render_mapping(&report.fitted, &report.greedy.mapping),
        report.greedy.throughput
    ));
    if let Some((m, thr)) = &report.feasible {
        out.push_str(&format!(
            "* feasible: `{}` → {:.2}/s\n",
            render_mapping(&report.fitted, m),
            thr
        ));
    }
    out.push_str(&format!(
        "* predicted {:.2}/s, measured {:.2}/s ({:+.2}%), data-parallel {:.2}/s (ratio {:.2})\n",
        report.predicted_throughput,
        report.measured.throughput,
        report.percent_difference(),
        report.data_parallel.throughput,
        report.optimal_over_data_parallel()
    ));
    out.push('\n');
    out.push_str(&table2_header());
    out.push('\n');
    out.push_str(&table2_row(report));
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::{auto_map, MapperOptions};
    use pipemap_machine::workload::TaskWorkload;
    use pipemap_machine::{AppWorkload, EdgeWorkload, MachineConfig};
    use pipemap_model::MemoryReq;

    fn report() -> MappingReport {
        let mut a = TaskWorkload::parallel("x|y", 3e6, 32);
        a.memory = MemoryReq::new(4e3, 0.5e6);
        let b = TaskWorkload::parallel("b", 5e6, 32);
        let app = AppWorkload::new("pipe|line", vec![a, b], vec![EdgeWorkload::aligned(1e5)]);
        let machine = MachineConfig::iwarp_message().with_geometry(4, 4);
        auto_map(&app, &machine, &MapperOptions::exact()).unwrap()
    }

    #[test]
    fn rows_align_with_header() {
        let r = report();
        // Count cell separators, not the escaped pipes inside cells.
        let unescaped = |s: &str| s.replace("\\|", "").matches('|').count();
        let header_cols = unescaped(table2_header().lines().next().unwrap());
        let row_cols = unescaped(&table2_row(&r));
        assert_eq!(header_cols, row_cols);
    }

    #[test]
    fn pipes_are_escaped() {
        let r = report();
        let row = table2_row(&r);
        assert!(row.contains("pipe\\|line"));
    }

    #[test]
    fn full_report_contains_the_essentials() {
        let r = report();
        let md = report_markdown(&r);
        assert!(md.starts_with("### "));
        assert!(md.contains("model fit"));
        assert!(md.contains("greedy:"));
        assert!(md.contains("predicted"));
        assert!(md.contains("| program |"));
    }
}
