//! The `pipemap resolve` command: incremental warm-start re-solving.
//!
//! Builds a retained cold-solve artifact from a spec, applies a drift
//! vector (explicit `--drift` factors or the fitted factors a doctor
//! report carries), re-solves incrementally, and *always* verifies the
//! result against a cold solve of the re-priced problem — the command
//! exists to demonstrate the bit-identity contract, so it measures it on
//! every run and reports the wall-clock speedup alongside.

use std::time::Instant;

use pipemap_chain::Problem;
use pipemap_core::{
    dp_assignment_with, dp_mapping_with, reprice_problem, CostDeltas, ResolveArtifact,
    ResolveMechanism, ResolveOutcome, Solution, SolveError, SolveOptions,
};
use pipemap_obs::Value;

use crate::render::render_mapping;
use crate::report::mapping_json;

/// Schema tag for `pipemap resolve --report json`.
pub const RESOLVE_SCHEMA: &str = pipemap_obs::schema::RESOLVE;

/// One end-to-end resolve run: the retained artifact's old optimum, the
/// incremental outcome, and the cold re-solve it was verified against.
pub struct ResolveRun {
    /// `"dp_mapping"` (cluster artifact) or `"dp_assignment"`.
    pub algorithm: &'static str,
    /// The artifact's optimum, priced on the *original* costs.
    pub old: Solution,
    /// The incremental re-solve result on the re-priced costs.
    pub outcome: ResolveOutcome,
    /// The cold solve of the re-priced problem (ground truth).
    pub cold: Solution,
    /// The re-priced problem itself (for rendering the new mapping).
    pub repriced: Problem,
    /// Wall time of the incremental re-solve alone (artifact excluded —
    /// it is the retained state the serving loop already holds).
    pub resolve_wall_s: f64,
    /// Wall time of the verification cold solve.
    pub cold_wall_s: f64,
    /// True when the incremental result matches the engine's contract
    /// against the cold solve: throughput bits always equal, and the
    /// mapping equal too except on a margin short-circuit, where the
    /// (provably still optimal) old mapping may be a value-tied alternate
    /// of the cold argmax. `false` is a bug.
    pub verified: bool,
    /// True when the incremental mapping equals the cold argmax exactly.
    /// Always true when verified on the suffix path; on a short-circuit
    /// it is false precisely when the re-priced problem has value-tied
    /// optima and the cold solve picked a different one.
    pub mapping_match: bool,
}

impl ResolveRun {
    /// Cold wall time over incremental wall time.
    pub fn speedup(&self) -> f64 {
        self.cold_wall_s / self.resolve_wall_s.max(1e-9)
    }
}

/// Build the artifact cold, re-solve against `deltas`, then cold-solve
/// the re-priced problem and check bit-identity.
pub fn run_resolve(
    problem: &Problem,
    deltas: &CostDeltas,
    assignment: bool,
    opts: &SolveOptions,
) -> Result<ResolveRun, SolveError> {
    let artifact = if assignment {
        ResolveArtifact::build_assignment(problem, opts)?
    } else {
        ResolveArtifact::build(problem, opts)?
    };
    run_resolve_on(&artifact, deltas)
}

/// Re-solve an already-built artifact against `deltas`, then cold-solve
/// the re-priced problem and check bit-identity. Only the incremental
/// re-solve is timed against the cold solve — the artifact is the
/// retained state the serving loop already holds.
pub fn run_resolve_on(
    artifact: &ResolveArtifact,
    deltas: &CostDeltas,
) -> Result<ResolveRun, SolveError> {
    let cluster = artifact.is_cluster();
    let opts = *artifact.options();
    let t0 = Instant::now();
    let outcome = artifact.resolve(deltas)?;
    let resolve_wall_s = t0.elapsed().as_secs_f64();

    let repriced = reprice_problem(artifact.problem(), deltas);
    let t1 = Instant::now();
    let cold = if cluster {
        dp_mapping_with(&repriced, &opts)?
    } else {
        dp_assignment_with(&repriced, &opts)?.0
    };
    let cold_wall_s = t1.elapsed().as_secs_f64();

    let thr_match = outcome.solution.throughput.to_bits() == cold.throughput.to_bits();
    let mapping_match = outcome.solution.mapping == cold.mapping;
    // The suffix path reproduces the cold argmax exactly; a margin
    // short-circuit proves the old mapping still optimal but may differ
    // from the cold argmax when value-tied optima exist — the bitwise
    // throughput equality is the tie's certificate.
    let verified =
        thr_match && (mapping_match || outcome.mechanism == ResolveMechanism::ShortCircuit);
    Ok(ResolveRun {
        algorithm: if cluster {
            "dp_mapping"
        } else {
            "dp_assignment"
        },
        old: artifact.solution().clone(),
        outcome,
        cold,
        repriced,
        resolve_wall_s,
        cold_wall_s,
        verified,
        mapping_match,
    })
}

/// Parse repeated `--drift` specs (`exec:IDX=FACTOR`, `icom:IDX=FACTOR`,
/// `ecom:IDX=FACTOR`) into a delta vector for a `k`-task chain. Indices
/// are task indices for `exec` and edge indices for `icom`/`ecom`.
pub fn parse_drift(k: usize, specs: &[String]) -> Result<CostDeltas, String> {
    let mut deltas = CostDeltas::identity(k);
    for spec in specs {
        apply_drift_spec(&mut deltas, k, spec)?;
    }
    Ok(deltas)
}

fn apply_drift_spec(deltas: &mut CostDeltas, k: usize, spec: &str) -> Result<(), String> {
    let bad = || format!("drift spec '{spec}' must look like exec:IDX=FACTOR");
    let (kind, rest) = spec.split_once(':').ok_or_else(bad)?;
    let (idx, factor) = rest.split_once('=').ok_or_else(bad)?;
    let idx: usize = idx
        .trim()
        .parse()
        .map_err(|_| format!("drift spec '{spec}': bad index '{idx}'"))?;
    let g: f64 = factor
        .trim()
        .parse()
        .map_err(|_| format!("drift spec '{spec}': bad factor '{factor}'"))?;
    if !(g.is_finite() && g > 0.0) {
        return Err(format!(
            "drift spec '{spec}': factor must be finite and positive"
        ));
    }
    let edges = k.saturating_sub(1);
    match kind {
        "exec" => {
            if idx >= k {
                return Err(format!(
                    "drift spec '{spec}': task index {idx} out of range (chain has {k} tasks)"
                ));
            }
            deltas.set_exec(idx, g);
        }
        "icom" => {
            if idx >= edges {
                return Err(format!(
                    "drift spec '{spec}': edge index {idx} out of range (chain has {edges} edges)"
                ));
            }
            deltas.set_icom(idx, g);
        }
        "ecom" => {
            if idx >= edges {
                return Err(format!(
                    "drift spec '{spec}': edge index {idx} out of range (chain has {edges} edges)"
                ));
            }
            deltas.set_ecom(idx, g);
        }
        other => {
            return Err(format!(
                "drift spec '{spec}': unknown kind '{other}' (want exec, icom or ecom)"
            ))
        }
    }
    Ok(())
}

/// Per-module `(service, transport)` warm-start factor vectors, `None`
/// meaning "no evidence".
pub type DoctorFactors = (Vec<Option<f64>>, Vec<Option<f64>>);

/// Extract the warm-start factor vectors (`recommendation.factors` from a
/// `pipemap doctor --report json` document): per-module service and
/// transport factors, `null` meaning "no evidence".
pub fn doctor_factors(report: &Value) -> Result<DoctorFactors, String> {
    let rec = report.get("recommendation").ok_or_else(|| {
        "doctor report carries no recommendation (give the doctor --spec and --mapping)".to_string()
    })?;
    let factors = rec
        .get("factors")
        .ok_or_else(|| "doctor recommendation carries no factors object".to_string())?;
    let pull = |name: &str| -> Result<Vec<Option<f64>>, String> {
        let arr = factors
            .get(name)
            .and_then(|v| v.as_array())
            .ok_or_else(|| format!("doctor factors object has no '{name}' array"))?;
        Ok(arr.iter().map(|v| v.as_f64()).collect())
    };
    Ok((pull("service")?, pull("transport")?))
}

fn mechanism_str(m: ResolveMechanism) -> &'static str {
    match m {
        ResolveMechanism::ShortCircuit => "short-circuit",
        ResolveMechanism::Suffix => "suffix",
    }
}

/// JSON report of a resolve run.
pub fn resolve_report_json(problem: &Problem, run: &ResolveRun, deltas: &CostDeltas) -> Value {
    let farr = |fs: &[f64]| Value::Array(fs.iter().map(|&g| Value::Number(g)).collect());
    let mut d = Value::object();
    d.set("exec", farr(deltas.exec()));
    d.set("icom", farr(deltas.icom()));
    d.set("ecom", farr(deltas.ecom()));

    let mut old = Value::object();
    old.set("throughput", run.old.throughput);
    old.set("mapping", mapping_json(problem, &run.old.mapping));

    let mut new = Value::object();
    new.set("throughput", run.outcome.solution.throughput);
    new.set(
        "mapping",
        mapping_json(&run.repriced, &run.outcome.solution.mapping),
    );

    let mut o = Value::object();
    o.set("schema", RESOLVE_SCHEMA);
    o.set("algorithm", run.algorithm);
    o.set("deltas", d);
    o.set("mechanism", mechanism_str(run.outcome.mechanism));
    o.set("frontier", run.outcome.frontier);
    o.set("cells", run.outcome.cells);
    o.set("changed", run.outcome.changed);
    o.set("old", old);
    o.set("new", new);
    o.set("cold_throughput", run.cold.throughput);
    o.set("resolve_wall_s", run.resolve_wall_s);
    o.set("cold_wall_s", run.cold_wall_s);
    o.set("speedup", run.speedup());
    o.set("verify_match", run.verified);
    o.set("mapping_match", run.mapping_match);
    o
}

/// Human-readable report of a resolve run.
pub fn render_resolve(problem: &Problem, run: &ResolveRun) -> String {
    let mut s = String::new();
    s.push_str(&format!("algorithm      {}\n", run.algorithm));
    s.push_str(&format!(
        "old optimum    {:.6}  {}\n",
        run.old.throughput,
        render_mapping(problem, &run.old.mapping)
    ));
    s.push_str(&format!(
        "new optimum    {:.6}  {}\n",
        run.outcome.solution.throughput,
        render_mapping(&run.repriced, &run.outcome.solution.mapping)
    ));
    s.push_str(&format!(
        "mechanism      {} (frontier {}, {} cells, mapping {})\n",
        mechanism_str(run.outcome.mechanism),
        run.outcome.frontier,
        run.outcome.cells,
        if run.outcome.changed {
            "changed"
        } else {
            "unchanged"
        },
    ));
    s.push_str(&format!(
        "wall           resolve {:.3} ms vs cold {:.3} ms  ({:.1}x)\n",
        run.resolve_wall_s * 1e3,
        run.cold_wall_s * 1e3,
        run.speedup()
    ));
    s.push_str(&format!(
        "verify         {}\n",
        if run.verified && run.mapping_match {
            "bit-identical to cold solve"
        } else if run.verified {
            "throughput bit-identical; cold argmax picked a value-tied alternate optimum"
        } else {
            "MISMATCH against cold solve (bug!)"
        }
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipemap_chain::{ChainBuilder, Edge, Task};
    use pipemap_model::{PolyEcom, PolyUnary};

    fn problem() -> Problem {
        let chain = ChainBuilder::new()
            .task(Task::new("a", PolyUnary::new(0.1, 6.0, 0.02)))
            .edge(Edge::new(
                PolyUnary::new(0.05, 0.0, 0.0),
                PolyEcom::new(0.2, 1.0, 1.0, 0.05, 0.05),
            ))
            .task(Task::new("b", PolyUnary::new(0.0, 10.0, 0.01)))
            .edge(Edge::new(
                PolyUnary::zero(),
                PolyEcom::new(0.1, 0.5, 0.5, 0.02, 0.02),
            ))
            .task(Task::new("c", PolyUnary::perfectly_parallel(3.0)))
            .build();
        Problem::new(chain, 20, 1e9)
    }

    #[test]
    fn drift_specs_parse_and_validate() {
        let d = parse_drift(3, &["exec:1=1.5".into(), "ecom:0=0.5".into()]).unwrap();
        assert_eq!(d.exec(), &[1.0, 1.5, 1.0]);
        assert_eq!(d.ecom(), &[0.5, 1.0]);
        assert!(parse_drift(3, &["exec:3=1.5".into()]).is_err());
        assert!(parse_drift(3, &["icom:2=1.5".into()]).is_err());
        assert!(parse_drift(3, &["exec:0=-1".into()]).is_err());
        assert!(parse_drift(3, &["exec:0".into()]).is_err());
        assert!(parse_drift(3, &["warp:0=2".into()]).is_err());
    }

    #[test]
    fn run_resolve_verifies_against_cold_solve() {
        let p = problem();
        let deltas = parse_drift(3, &["exec:1=1.8".into()]).unwrap();
        let run = run_resolve(&p, &deltas, false, &SolveOptions::default()).unwrap();
        assert!(run.verified, "incremental result must be bit-identical");
        assert_eq!(run.algorithm, "dp_mapping");
        let json = resolve_report_json(&p, &run, &deltas);
        assert_eq!(
            json.get("schema").unwrap().as_str().unwrap(),
            RESOLVE_SCHEMA
        );
        assert_eq!(json.get("verify_match").unwrap().as_bool(), Some(true));
        let text = render_resolve(&p, &run);
        assert!(text.contains("bit-identical"));
    }

    #[test]
    fn doctor_factors_round_trip() {
        let doc = Value::parse(
            r#"{"recommendation":{"factors":{"service":[1.5,null],"transport":[null,2.0]}}}"#,
        )
        .unwrap();
        let (service, transport) = doctor_factors(&doc).unwrap();
        assert_eq!(service, vec![Some(1.5), None]);
        assert_eq!(transport, vec![None, Some(2.0)]);
        assert!(doctor_factors(&Value::object()).is_err());
    }
}
